GO ?= go
BENCHTIME ?= 3x

.PHONY: ci fmt vet test test-determinism chaos bench bench-json bench-diff bench-smoke fuzz-smoke build

ci: fmt vet test test-determinism

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -race

# The fault-injection suite under the race detector: seeded fault
# models (netem), crash/loss switch faults (switchsim), reverse-plan
# safety (core/verify/explore), the controller's abort→verified-
# rollback path in both dispatch modes including the chaos soak, and
# the crash-restart sweeps (journal torn-tail recovery plus the engine
# killed at every dispatch boundary).
chaos:
	$(GO) test -race -count=1 -run 'Fault|Chaos|Crash|Rollback|Reverse|Abort|VirtualTime' \
		./internal/netem ./internal/switchsim ./internal/core \
		./internal/verify ./internal/explore ./internal/controller \
		./internal/journal
	$(GO) test -run '^$$' -bench '^BenchmarkE15Soak$$' -benchtime=1x .

bench:
	$(GO) test -bench=. -benchtime=10x -run '^$$' .

# Same seed => same explorer verdicts and event logs; -count=2 defeats
# test caching so the explorer-determinism tests actually run twice.
# The second pass runs under the race detector: the parallel explorer
# (Workers > 1) must stay bit-identical and race-free.
test-determinism:
	$(GO) test -run Explore -count=2 ./...
	$(GO) test -run Explore -count=2 -race ./...

# Machine-readable benchmark trajectory: run every benchmark with
# -benchmem and emit BENCH_10.json (name -> ns/op, allocs/op, domain
# metrics) for future PRs to diff against. No pipe on the `go test`
# line: a benchmark failure must fail the target, not vanish into
# tee's exit status (bench.out is left behind for debugging).
bench-json:
	$(GO) test -bench . -benchmem -benchtime=$(BENCHTIME) -run '^$$' ./... > bench.out
	@cat bench.out
	$(GO) run ./cmd/benchjson -out BENCH_10.json < bench.out
	@rm -f bench.out
	@echo "wrote BENCH_10.json"

# Perf trajectory between the previous PR's snapshot and this one:
# per-benchmark ns/op and allocs/op movement. Informational (CI runs
# it non-gating); add -fail-on-regress locally to gate.
bench-diff:
	$(GO) run ./cmd/benchjson -diff BENCH_9.json BENCH_10.json

# One iteration of every benchmark in the repo: catches benchmark rot
# without paying for a measurement run.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Ten seconds of coverage-guided fuzzing per fuzz target: the OpenFlow
# wire decoder, the explorer's trace replay/minimization, the plan
# wire codec's decode→encode identity, the partition codec that
# ships per-switch plan slices to the decentralized agents, and the
# CEGIS synthesizer's validate/round-trip invariant on random
# instances, plus the job journal's replay: arbitrary bytes must
# replay to the longest valid record prefix and never panic.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime=10s ./internal/openflow
	$(GO) test -run '^$$' -fuzz '^FuzzExploreTrace$$' -fuzztime=10s ./internal/explore
	$(GO) test -run '^$$' -fuzz '^FuzzPlanRoundTrip$$' -fuzztime=10s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzPartitionRoundTrip$$' -fuzztime=10s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzSynthRefine$$' -fuzztime=10s ./internal/synth
	$(GO) test -run '^$$' -fuzz '^FuzzJournalReplay$$' -fuzztime=10s ./internal/journal
