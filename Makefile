GO ?= go

.PHONY: ci fmt vet test bench bench-smoke build

ci: fmt vet test

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -race

bench:
	$(GO) test -bench=. -benchtime=10x -run '^$$' .

# One iteration of every benchmark in the repo: catches benchmark rot
# without paying for a measurement run.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...
