GO ?= go

.PHONY: ci fmt vet test bench build

ci: fmt vet test

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchtime=10x -run '^$$' .
