GO ?= go

.PHONY: ci fmt vet test test-determinism bench bench-smoke fuzz-smoke build

ci: fmt vet test test-determinism

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -race

bench:
	$(GO) test -bench=. -benchtime=10x -run '^$$' .

# Same seed => same explorer verdicts and event logs; -count=2 defeats
# test caching so the explorer-determinism tests actually run twice.
test-determinism:
	$(GO) test -run Explore -count=2 ./...

# One iteration of every benchmark in the repo: catches benchmark rot
# without paying for a measurement run.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Ten seconds of coverage-guided fuzzing per fuzz target: the OpenFlow
# wire decoder and the explorer's trace replay/minimization.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime=10s ./internal/openflow
	$(GO) test -run '^$$' -fuzz '^FuzzExploreTrace$$' -fuzztime=10s ./internal/explore
