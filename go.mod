module tsu

go 1.22
