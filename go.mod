module tsu

go 1.24
