// Package client is the typed Go SDK for the controller's /v1 REST
// surface (internal/api): batch update submission, dry-run
// verification, job status, and a streaming watch of round-by-round
// progress. Every binary and harness in this repository talks to the
// controller through this package — none hand-roll HTTP.
//
//	c := client.New("http://127.0.0.1:8080")
//	resp, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{
//		Updates: []api.FlowUpdate{{OldPath: old, NewPath: new, NWDst: "10.0.0.2"}},
//	})
//	events, err := c.Watch(ctx, resp.Updates[0].ID)
//	for ev := range events { ... } // rounds, then a terminal done/failed
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tsu/internal/api"
)

// Client talks to one controller.
type Client struct {
	base    string
	hc      *http.Client // request-scoped calls (honors timeout)
	stream  *http.Client // watch streams (no overall timeout)
	retries int
	backoff time.Duration

	custom  *http.Client   // set by WithHTTPClient, never mutated
	timeout *time.Duration // set by WithTimeout
}

// Option tunes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (proxies, TLS,
// test doubles). The given client is copied, never mutated; the watch
// stream uses the same configuration without the overall timeout.
// Composes with WithTimeout in either order.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.custom = hc }
}

// WithTimeout bounds each non-streaming request (default 30s; zero
// disables). Composes with WithHTTPClient in either order.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = &d }
}

// WithRetry retries idempotent (GET) requests up to n extra times on
// transport errors and 5xx responses, sleeping backoff between
// attempts.
func WithRetry(n int, backoff time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = n, backoff }
}

// New creates a client for the controller at baseURL (scheme + host,
// e.g. "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	hc := &http.Client{Timeout: 30 * time.Second}
	if c.custom != nil {
		cp := *c.custom
		hc = &cp
	}
	if c.timeout != nil {
		hc.Timeout = *c.timeout
	}
	c.hc = hc
	stream := *hc
	stream.Timeout = 0
	c.stream = &stream
	return c
}

// APIError is a non-2xx response decoded from the server's structured
// envelope.
type APIError struct {
	Status  int // HTTP status code
	Code    int // machine-readable api.Code* value (0 when absent)
	Message string
	// Plan is the best-so-far plan shape attached to synthesis
	// budget-exceeded errors (api.CodeSynthBudget); nil otherwise.
	Plan *api.PlanShape
}

func (e *APIError) Error() string {
	if e.Code != 0 {
		return fmt.Sprintf("api error %d (code %d): %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("api error %d: %s", e.Status, e.Message)
}

// do runs one request; GETs are retried per WithRetry.
func (c *Client) do(ctx context.Context, method, path string, body, into any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	attempts := 1
	if method == http.MethodGet {
		attempts += c.retries
	}
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			select {
			case <-time.After(c.backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 && method == http.MethodGet && try < attempts-1 {
			lastErr = decodeAPIError(resp)
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			return decodeAPIError(resp)
		}
		if into != nil {
			return json.NewDecoder(resp.Body).Decode(into)
		}
		return nil
	}
	return fmt.Errorf("client: %s %s: %w", method, path, lastErr)
}

func decodeAPIError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	apiErr := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	var envelope api.Error
	if json.Unmarshal(body, &envelope) == nil && envelope.Message != "" {
		apiErr.Message = envelope.Message
		apiErr.Code = envelope.Code
		apiErr.Plan = envelope.Plan
	}
	return apiErr
}

// SubmitBatch submits a batch of flow updates (POST /v1/updates).
// With req.DryRun the schedules are returned without executing
// anything.
func (c *Client) SubmitBatch(ctx context.Context, req api.BatchUpdateRequest) (*api.BatchUpdateResponse, error) {
	var resp api.BatchUpdateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/updates", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Verify plans the batch and verifies every schedule against the
// requested properties without touching the switches (POST /v1/verify).
func (c *Client) Verify(ctx context.Context, req api.VerifyRequest) (*api.VerifyResponse, error) {
	var resp api.VerifyResponse
	if err := c.do(ctx, http.MethodPost, "/v1/verify", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Explore plans the batch and runs the adversarial interleaving
// explorer against every schedule without touching the switches
// (POST /v1/explore): every FlowMod delivery interleaving of small
// rounds is checked exhaustively, large rounds are sampled with
// seeded uniform and heavy-tail-biased delivery orders, and
// violations come back as minimized event traces. Use Verify for a
// fast safe/unsafe verdict; use Explore when you need the concrete
// delivery order that breaks a schedule.
func (c *Client) Explore(ctx context.Context, req api.ExploreRequest) (*api.ExploreResponse, error) {
	var resp api.ExploreResponse
	if err := c.do(ctx, http.MethodPost, "/v1/explore", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Job fetches one job's status (GET /v1/updates/{id}).
func (c *Client) Job(ctx context.Context, id int) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/updates/%d", id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists jobs, optionally filtered by state ("queued", "running",
// "done", "failed"; empty lists everything).
func (c *Client) Jobs(ctx context.Context, state string) ([]api.JobStatus, error) {
	path := "/v1/updates"
	if state != "" {
		path += "?state=" + state
	}
	var out []api.JobStatus
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Healthz fetches the ops probe (GET /v1/healthz).
func (c *Client) Healthz(ctx context.Context) (*api.Healthz, error) {
	var h api.Healthz
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Switches lists the connected datapath ids (GET /v1/switches).
func (c *Client) Switches(ctx context.Context) ([]uint64, error) {
	var out []uint64
	if err := c.do(ctx, http.MethodGet, "/v1/switches", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// InstallPolicy installs a routing policy along a path
// (POST /v1/policies).
func (c *Client) InstallPolicy(ctx context.Context, req api.PolicyRequest) error {
	return c.do(ctx, http.MethodPost, "/v1/policies", req, nil)
}

// Watch subscribes to a job's progress stream
// (GET /v1/updates/{id}/watch). The returned channel replays rounds
// already executed, then delivers live rounds, and ends with a
// terminal done/failed event before closing. Cancel ctx to stop
// watching; the channel also closes if the stream breaks (callers
// needing a guaranteed verdict should fall back to Job, as Wait does).
func (c *Client) Watch(ctx context.Context, id int) (<-chan api.WatchEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/updates/%d/watch", c.base, id), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.stream.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeAPIError(resp)
	}
	events := make(chan api.WatchEvent, 16)
	go func() {
		defer close(events)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		var data bytes.Buffer
		flush := func() bool {
			if data.Len() == 0 {
				return true
			}
			var ev api.WatchEvent
			err := json.Unmarshal(data.Bytes(), &ev)
			data.Reset()
			if err != nil {
				return false
			}
			select {
			case events <- ev:
				return true
			case <-ctx.Done():
				return false
			}
		}
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if !flush() {
					return
				}
			case strings.HasPrefix(line, "data:"):
				data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
				// "event:" lines are redundant — the type rides in the data
				// payload; other SSE fields (id, retry, comments) are ignored.
			}
		}
		flush()
	}()
	return events, nil
}

// Wait blocks until the job finishes and returns its final status. It
// follows the watch stream and falls back to polling if the stream
// breaks before the terminal event. A failed job is reported in the
// returned status, not as an error.
func (c *Client) Wait(ctx context.Context, id int) (*api.JobStatus, error) {
	return c.WaitRounds(ctx, id, nil)
}

// WaitRounds is Wait with a per-round callback: onRound (when non-nil)
// is invoked for every round event the watch stream delivers, in
// order, before the final status is returned.
func (c *Client) WaitRounds(ctx context.Context, id int, onRound func(api.RoundStatus)) (*api.JobStatus, error) {
	return c.WaitProgress(ctx, id, onRound, nil)
}

// WaitProgress is Wait with callbacks at both progress granularities
// of the ack-driven dispatcher: onInstall fires for every confirmed
// per-switch install (carrying the dependency edge that released it),
// onRound for every completed layer. Either callback may be nil.
//
// The waiter survives controller restarts: when the watch stream
// breaks before a terminal event it reconnects (the stream replays
// the job's history on every connection, so replayed events are
// deduplicated by count and callbacks fire at most once per round and
// install). Consecutive fruitless reconnects are bounded by the
// WithRetry budget (default 3), sleeping the retry backoff between
// attempts; each delivered event resets the budget. Only after the
// budget is exhausted does it fall back to status polling.
func (c *Client) WaitProgress(ctx context.Context, id int, onRound func(api.RoundStatus), onInstall func(api.InstallStatus)) (*api.JobStatus, error) {
	retries := c.retries
	if retries == 0 {
		retries = 3
	}
	var roundsSeen, installsSeen int
	for failures := 0; failures <= retries; {
		events, err := c.Watch(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			failures++
			if !c.sleepBackoff(ctx) {
				return nil, ctx.Err()
			}
			continue
		}
		var rounds, installs int
		progressed := false
		for ev := range events {
			switch ev.Type {
			case api.EventRound:
				if ev.Round == nil {
					continue
				}
				if rounds++; rounds <= roundsSeen {
					continue // replayed prefix of a reconnect
				}
				roundsSeen, progressed = rounds, true
				if onRound != nil {
					onRound(*ev.Round)
				}
			case api.EventInstall:
				if ev.Install == nil {
					continue
				}
				if installs++; installs <= installsSeen {
					continue
				}
				installsSeen, progressed = installs, true
				if onInstall != nil {
					onInstall(*ev.Install)
				}
			case api.EventDone, api.EventFailed:
				// Terminal: the job endpoint is authoritative (it
				// carries timings and the full failure report).
				return c.pollTerminal(ctx, id)
			}
		}
		// Stream broke before a terminal event (controller restart,
		// proxy hiccup): reconnect, unless the caller gave up.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if progressed {
			failures = 0
		} else {
			failures++
		}
		if failures <= retries && !c.sleepBackoff(ctx) {
			return nil, ctx.Err()
		}
	}
	return c.pollTerminal(ctx, id)
}

// pollTerminal polls the job until it reaches a terminal state,
// tolerating a bounded run of transient errors (a restarting
// controller answers with connection refused for a moment).
func (c *Client) pollTerminal(ctx context.Context, id int) (*api.JobStatus, error) {
	var lastErr error
	for failures := 0; ; {
		st, err := c.Job(ctx, id)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			failures++
			lastErr = err
			if failures > 10 {
				return nil, lastErr
			}
		case st.Terminal():
			return st, nil
		default:
			failures = 0
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// sleepBackoff pauses for the retry backoff; false means ctx ended.
func (c *Client) sleepBackoff(ctx context.Context) bool {
	select {
	case <-time.After(c.backoff):
		return true
	case <-ctx.Done():
		return false
	}
}
