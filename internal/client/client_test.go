package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tsu/internal/api"
	"tsu/internal/client"
	"tsu/internal/experiments"
	"tsu/internal/topo"
)

// flowA/flowB are disjoint updates on a 4x4 grid (rows 1-4/5-8/9-12/
// 13-16): flow A rides rows 1-2, flow B rows 3-4.
var (
	flowA = api.FlowUpdate{
		OldPath: []uint64{1, 2, 3, 4}, NewPath: []uint64{1, 5, 6, 7, 8, 4},
		NWDst: "10.0.0.2", Algorithm: "peacock",
	}
	flowB = api.FlowUpdate{
		OldPath: []uint64{9, 10, 11, 12}, NewPath: []uint64{9, 13, 14, 15, 16, 12},
		NWDst: "10.0.0.9", Algorithm: "peacock",
	}
)

// gridBed boots a full deployment (controller, REST server, switch
// fleet) and returns its API client.
func gridBed(t *testing.T) (*experiments.Bed, *client.Client) {
	t.Helper()
	bed, err := experiments.NewBed(topo.Grid(4, 4), experiments.BedConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bed.Close)
	return bed, bed.Client
}

func TestClientRoundTrip(t *testing.T) {
	_, c := gridBed(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for _, f := range []api.FlowUpdate{flowA, flowB} {
		if err := c.InstallPolicy(ctx, api.PolicyRequest{Path: f.OldPath, NWDst: f.NWDst}); err != nil {
			t.Fatal(err)
		}
	}

	// Dry-run verification first.
	vr, err := c.Verify(ctx, api.VerifyRequest{
		Updates:    []api.FlowUpdate{flowA, flowB},
		Properties: []string{"no-blackhole", "relaxed-lf"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !vr.OK || len(vr.Results) != 2 {
		t.Fatalf("verify = %+v", vr)
	}

	// Batch submit; interval keeps the jobs alive long enough for the
	// watch to attach mid-flight.
	resp, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{
		Updates:  []api.FlowUpdate{flowA, flowB},
		Interval: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Updates) != 2 {
		t.Fatalf("accepted = %+v", resp.Updates)
	}

	// SSE watch: rounds arrive in order and the stream ends with the
	// terminal event.
	events, err := c.Watch(ctx, resp.Updates[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	var rounds []int
	terminal := ""
	for ev := range events {
		switch ev.Type {
		case api.EventRound:
			if terminal != "" {
				t.Fatal("round event after terminal event")
			}
			rounds = append(rounds, ev.Round.Round)
		case api.EventDone, api.EventFailed:
			terminal = ev.Type
		}
	}
	if terminal != api.EventDone {
		t.Fatalf("terminal = %q", terminal)
	}
	if len(rounds) != len(resp.Updates[0].Rounds) {
		t.Fatalf("rounds seen %v, want %d", rounds, len(resp.Updates[0].Rounds))
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("rounds out of order: %v", rounds)
		}
	}

	// Wait on the second job, then list by state.
	st, err := c.Wait(ctx, resp.Updates[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.TotalDuration() <= 0 {
		t.Fatalf("job 2 = %+v", st)
	}
	done, err := c.Jobs(ctx, "done")
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("done jobs = %d", len(done))
	}
	running, err := c.Jobs(ctx, "running")
	if err != nil {
		t.Fatal(err)
	}
	if len(running) != 0 {
		t.Fatalf("running jobs = %d", len(running))
	}

	// Ops probes.
	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Switches != 16 {
		t.Fatalf("healthz = %+v", h)
	}
	sw, err := c.Switches(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw) != 16 {
		t.Fatalf("switches = %v", sw)
	}
}

// TestClientDecentralizedRoundTrip submits an update in decentralized
// mode through the wire and checks the job status reports the mode,
// the message-count breakdown (two control messages per switch, peer
// acks carrying the dependency edges), and the releasing predecessor
// on non-root installs.
func TestClientDecentralizedRoundTrip(t *testing.T) {
	_, c := gridBed(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := c.InstallPolicy(ctx, api.PolicyRequest{Path: flowA.OldPath, NWDst: flowA.NWDst}); err != nil {
		t.Fatal(err)
	}
	dec := flowA
	dec.Plan = "sparse"
	dec.Mode = "decentralized"
	resp, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{Updates: []api.FlowUpdate{dec}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, resp.Updates[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("job = %+v", st)
	}
	if st.Mode != "decentralized" {
		t.Fatalf("mode = %q, want decentralized", st.Mode)
	}
	if st.Messages == nil || st.Messages.Peer == 0 {
		t.Fatalf("messages = %+v, want peer acks", st.Messages)
	}
	if len(st.MessagesPerSwitch) == 0 {
		t.Fatal("per-switch message breakdown missing")
	}
	for _, mc := range st.MessagesPerSwitch {
		if mc.Ctrl != 2 {
			t.Fatalf("switch %d ctrl messages = %d, want 2 (push + report)", mc.Switch, mc.Ctrl)
		}
	}
	if len(st.Installs) != st.Plan.Nodes {
		t.Fatalf("installs = %d, want %d", len(st.Installs), st.Plan.Nodes)
	}
	for _, inst := range st.Installs {
		if inst.Layer > 0 && inst.ReleasedBy == 0 {
			t.Fatalf("install at %d (layer %d) lacks released_by", inst.Switch, inst.Layer)
		}
	}

	// An unknown mode must be rejected atomically.
	bad := flowA
	bad.Mode = "telepathic"
	if _, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{Updates: []api.FlowUpdate{bad}}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestClientExplore round-trips the adversarial interleaving explorer
// through the wire: the one-shot baseline on a path-reversal instance
// must come back with the transient loop as a minimized delivery
// trace, while the safe peacock schedule on the same instance is clean
// — both verdicts proved exhaustively, both reproducible via the seed.
func TestClientExplore(t *testing.T) {
	_, c := gridBed(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	reversal := api.FlowUpdate{
		OldPath: []uint64{1, 2, 3, 4, 5, 6},
		NewPath: []uint64{1, 5, 4, 3, 2, 6},
		NWDst:   "10.0.0.6",
	}
	unsafe, safe := reversal, reversal
	unsafe.Algorithm = "oneshot"
	safe.Algorithm = "peacock"

	resp, err := c.Explore(ctx, api.ExploreRequest{
		Updates:    []api.FlowUpdate{unsafe, safe},
		Properties: []string{"relaxed-lf", "no-blackhole"},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || len(resp.Results) != 2 {
		t.Fatalf("explore = %+v", resp)
	}
	one := resp.Results[0]
	if one.OK || !one.Exhaustive || one.Violation == nil {
		t.Fatalf("one-shot result = %+v", one)
	}
	if len(one.Violation.Trace) != 1 || one.Violation.Trace[0].Switch != 5 {
		t.Fatalf("minimized trace = %+v, want the single event at switch 5", one.Violation.Trace)
	}
	if one.Violation.Property != "RelaxedLoopFreedom" {
		t.Fatalf("violated property = %q", one.Violation.Property)
	}
	if peacock := resp.Results[1]; !peacock.OK || !peacock.Exhaustive || peacock.Events == 0 {
		t.Fatalf("peacock result = %+v", peacock)
	}

	// Unknown property names surface as the structured error.
	_, err = c.Explore(ctx, api.ExploreRequest{
		Updates:    []api.FlowUpdate{safe},
		Properties: []string{"nonsense"},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnknownProperty {
		t.Fatalf("explore with bad property = %v, want CodeUnknownProperty", err)
	}
}

func TestClientErrorPaths(t *testing.T) {
	_, c := gridBed(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	cases := []struct {
		name       string
		run        func() error
		wantStatus int
		wantCode   int
	}{
		{"bad-algorithm", func() error {
			bad := flowA
			bad.Algorithm = "magic"
			_, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{Updates: []api.FlowUpdate{bad}})
			return err
		}, http.StatusBadRequest, api.CodeUnknownAlgorithm},
		{"malformed-path", func() error {
			bad := flowA
			bad.NewPath = []uint64{1}
			_, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{Updates: []api.FlowUpdate{bad}})
			return err
		}, http.StatusBadRequest, api.CodeInvalidPath},
		{"empty-batch", func() error {
			_, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{})
			return err
		}, http.StatusBadRequest, api.CodeEmptyBatch},
		{"unknown-job", func() error {
			_, err := c.Job(ctx, 999)
			return err
		}, http.StatusNotFound, api.CodeUnknownJob},
		{"unknown-job-watch", func() error {
			_, err := c.Watch(ctx, 999)
			return err
		}, http.StatusNotFound, api.CodeUnknownJob},
		{"bad-state-filter", func() error {
			_, err := c.Jobs(ctx, "bogus")
			return err
		}, http.StatusBadRequest, api.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("error = %v (%T), want *client.APIError", err, err)
			}
			if apiErr.Status != tc.wantStatus || apiErr.Code != tc.wantCode {
				t.Fatalf("apiErr = %+v, want status %d code %d", apiErr, tc.wantStatus, tc.wantCode)
			}
		})
	}
}

// TestClientRetry pins the WithRetry contract: a transient 5xx on an
// idempotent GET is retried, a 4xx is not.
func TestClientRetry(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"transient","code":1014}`, http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","switches":3}`)) //nolint:errcheck // test write
	}))
	defer srv.Close()

	ctx := context.Background()
	c := client.New(srv.URL, client.WithRetry(2, time.Millisecond))
	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Switches != 3 || calls.Load() != 2 {
		t.Fatalf("healthz = %+v after %d calls", h, calls.Load())
	}

	// 4xx responses are terminal even with retries configured.
	calls.Store(0)
	srv404 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"nope","code":1009}`, http.StatusNotFound)
	}))
	defer srv404.Close()
	c404 := client.New(srv404.URL, client.WithRetry(3, time.Millisecond))
	if _, err := c404.Healthz(ctx); err == nil {
		t.Fatal("404 retried into success?")
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried %d times", calls.Load())
	}
}

// TestClientSynthBudget round-trips the per-request synthesis budget:
// a one-refinement budget cannot secure the update and must come back
// as a structured 400/CodeSynthBudget APIError carrying the
// best-so-far plan shape, while the default budget synthesizes a plan
// that executes to completion.
func TestClientSynthBudget(t *testing.T) {
	_, c := gridBed(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	update := flowA
	update.Algorithm = "synth"

	tight := update
	tight.SynthBudget = 1
	_, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{
		Updates: []api.FlowUpdate{tight},
		DryRun:  true,
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("tight budget: got %v, want *client.APIError", err)
	}
	if apiErr.Status != http.StatusBadRequest || apiErr.Code != api.CodeSynthBudget {
		t.Fatalf("tight budget: status=%d code=%d, want 400 / %d", apiErr.Status, apiErr.Code, api.CodeSynthBudget)
	}
	if apiErr.Plan == nil || apiErr.Plan.Nodes == 0 {
		t.Fatalf("budget error carries no best-so-far plan shape: %+v", apiErr.Plan)
	}

	// Default budget (0): full synthesis with the portfolio armed.
	if err := c.InstallPolicy(ctx, api.PolicyRequest{Path: update.OldPath, NWDst: update.NWDst}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.SubmitBatch(ctx, api.BatchUpdateRequest{Updates: []api.FlowUpdate{update}})
	if err != nil {
		t.Fatal(err)
	}
	acc := resp.Updates[0]
	if acc.Algorithm != "synth" {
		t.Fatalf("accepted algorithm = %q, want synth", acc.Algorithm)
	}
	if acc.Plan == nil || acc.Plan.Depth == 0 {
		t.Fatalf("accepted update has no plan shape: %+v", acc.Plan)
	}
	if acc.Guarantees == "" {
		t.Fatal("synth update reports no guarantees")
	}
	st, err := c.Wait(ctx, acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("synth job = %+v", st)
	}
}

// TestClientWaitSurvivesStreamDrop pins the restart-riding contract of
// WaitProgress: the first watch connection is dropped mid-job (as a
// restarting controller would), the waiter reconnects, the stream
// replays the rounds already delivered, and the per-round callback
// still fires exactly once per round before the terminal status comes
// back.
func TestClientWaitSurvivesStreamDrop(t *testing.T) {
	var conns atomic.Int32
	writeEvent := func(w http.ResponseWriter, ev api.WatchEvent) {
		b, _ := json.Marshal(ev)
		fmt.Fprintf(w, "data: %s\n\n", b)
		w.(http.Flusher).Flush()
	}
	round := func(n int) api.WatchEvent {
		return api.WatchEvent{Type: api.EventRound, Job: 7, Round: &api.RoundStatus{Round: n, Micros: 10}}
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/updates/7/watch":
			w.Header().Set("Content-Type", "text/event-stream")
			switch conns.Add(1) {
			case 1:
				// Two rounds, then the stream dies without a terminal
				// event — the client must reconnect, not give up.
				writeEvent(w, round(0))
				writeEvent(w, round(1))
			default:
				// Reconnect: history replays from the start, then the
				// job finishes.
				writeEvent(w, round(0))
				writeEvent(w, round(1))
				writeEvent(w, round(2))
				writeEvent(w, api.WatchEvent{Type: api.EventDone, Job: 7})
			}
		case "/v1/updates/7":
			w.Header().Set("Content-Type", "application/json")
			state := "running"
			if conns.Load() >= 2 {
				state = "done"
			}
			fmt.Fprintf(w, `{"id":7,"state":%q}`, state)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := client.New(srv.URL, client.WithRetry(3, time.Millisecond))
	var rounds []int
	st, err := c.WaitRounds(context.Background(), 7, func(r api.RoundStatus) {
		rounds = append(rounds, r.Round)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("state = %q, want done", st.State)
	}
	if len(rounds) != 3 || rounds[0] != 0 || rounds[1] != 1 || rounds[2] != 2 {
		t.Fatalf("rounds = %v, want [0 1 2] (replay deduplicated)", rounds)
	}
	if conns.Load() < 2 {
		t.Fatalf("connections = %d, want a reconnect", conns.Load())
	}
}

// TestClientWaitPollFallback: when every watch attempt fails outright,
// the waiter exhausts its bounded retries and still resolves the job
// by polling.
func TestClientWaitPollFallback(t *testing.T) {
	var watches atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/updates/3/watch":
			watches.Add(1)
			http.Error(w, `{"error":"no streams today","code":1000}`, http.StatusInternalServerError)
		case "/v1/updates/3":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"id":3,"state":"failed","failure":{"phase":"aborted"}}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := client.New(srv.URL, client.WithRetry(1, time.Millisecond))
	st, err := c.Wait(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" {
		t.Fatalf("state = %q, want failed", st.State)
	}
	if n := watches.Load(); n < 2 {
		t.Fatalf("watch attempts = %d, want the retry budget consumed", n)
	}
}
