package switchsim

import (
	"testing"
	"time"

	"tsu/internal/openflow"
)

func timedFM(ip string, prio uint16, port uint16, idle, hard uint16, flags uint16) *openflow.FlowMod {
	f := fm(openflow.FlowAdd, ip, prio, port)
	f.IdleTimeout = idle
	f.HardTimeout = hard
	f.Flags = flags
	return f
}

func TestExpireEntriesHardTimeout(t *testing.T) {
	var tbl FlowTable
	tbl.Apply(timedFM("10.0.0.2", 100, 3, 0, 2, openflow.FlagSendFlowRem)) // 2 units
	tbl.Apply(timedFM("10.0.0.3", 100, 4, 0, 0, 0))                        // never expires

	unit := 10 * time.Millisecond
	// Before the deadline: nothing expires.
	expired, _ := tbl.ExpireEntries(time.Now().Add(15*time.Millisecond), unit)
	if len(expired) != 0 {
		t.Fatalf("premature expiry: %v", expired)
	}
	expired, reasons := tbl.ExpireEntries(time.Now().Add(25*time.Millisecond), unit)
	if len(expired) != 1 || reasons[0] != openflow.FlowRemovedHardTimeout {
		t.Fatalf("expired = %v reasons = %v", expired, reasons)
	}
	if tbl.Len() != 1 {
		t.Fatalf("table len = %d", tbl.Len())
	}
}

func TestExpireEntriesIdleTimeout(t *testing.T) {
	var tbl FlowTable
	tbl.Apply(timedFM("10.0.0.2", 100, 3, 1, 0, 0)) // idle 1 unit
	unit := 20 * time.Millisecond

	// Keep hitting the entry: it must stay.
	base := time.Now()
	tbl.Lookup(nwDst("10.0.0.2"), 64)
	expired, _ := tbl.ExpireEntries(base.Add(10*time.Millisecond), unit)
	if len(expired) != 0 {
		t.Fatal("idle entry expired despite recent hit")
	}
	// No hits for > 1 unit: gone, reason idle.
	expired, reasons := tbl.ExpireEntries(time.Now().Add(50*time.Millisecond), unit)
	if len(expired) != 1 || reasons[0] != openflow.FlowRemovedIdleTimeout {
		t.Fatalf("expired = %v reasons = %v", expired, reasons)
	}
}

func TestExpireEntriesZeroTimeoutsNeverExpire(t *testing.T) {
	var tbl FlowTable
	tbl.Apply(timedFM("10.0.0.2", 100, 3, 0, 0, 0))
	expired, _ := tbl.ExpireEntries(time.Now().Add(time.Hour), time.Millisecond)
	if len(expired) != 0 || tbl.Len() != 1 {
		t.Fatal("permanent entry expired")
	}
}

func TestStatsCarryTimeouts(t *testing.T) {
	var tbl FlowTable
	tbl.Apply(timedFM("10.0.0.2", 100, 3, 7, 9, 0))
	stats := tbl.Stats()
	if len(stats) != 1 || stats[0].IdleTimeout != 7 || stats[0].HardTimeout != 9 {
		t.Fatalf("stats = %+v", stats)
	}
}
