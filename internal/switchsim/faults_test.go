package switchsim

import (
	"testing"

	"tsu/internal/metrics"
	"tsu/internal/openflow"
	"tsu/internal/topo"
)

// TestWipeEmptiesTable pins the crash semantics of the flow table: a
// wipe forgets every entry silently (no FLOW_REMOVED), and wiping an
// empty table is a no-op.
func TestWipeEmptiesTable(t *testing.T) {
	tbl := &FlowTable{}
	tbl.Apply(fm(openflow.FlowAdd, "10.0.0.1", 100, 1))
	tbl.Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, 2))
	if tbl.Len() != 2 {
		t.Fatalf("table has %d entries, want 2", tbl.Len())
	}
	tbl.Wipe()
	if tbl.Len() != 0 {
		t.Fatalf("wiped table has %d entries", tbl.Len())
	}
	tbl.Wipe()
	if tbl.Len() != 0 {
		t.Fatal("double wipe resurrected entries")
	}
}

// TestCrashFiresAtMostOnce pins the switch crash model: the fault
// fires exactly when the configured FlowMod count is reached, wipes
// the table when asked, counts one injected fault — and never fires
// again, so a reconnected switch works normally.
func TestCrashFiresAtMostOnce(t *testing.T) {
	injected := metrics.FaultsInjected.Value()
	f := NewFabric(topo.Linear(1))
	sw, err := NewSwitch(f, Config{Node: 1, Faults: Faults{DisconnectAfterFlowMods: 2, WipeTableOnCrash: true}})
	if err != nil {
		t.Fatal(err)
	}
	sw.Table().Apply(fm(openflow.FlowAdd, "10.0.0.1", 100, 1))
	if sw.crashIfDue(1) {
		t.Fatal("crash fired below its threshold")
	}
	if sw.Table().Len() != 1 {
		t.Fatal("table touched before the crash")
	}
	if !sw.crashIfDue(2) {
		t.Fatal("crash did not fire at its threshold")
	}
	if sw.Table().Len() != 0 {
		t.Fatal("crash with WipeTableOnCrash kept the table")
	}
	if got := metrics.FaultsInjected.Value() - injected; got != 1 {
		t.Fatalf("crash injected %d faults, want 1", got)
	}
	// The switch stays up after reconnecting: later installs must not
	// re-trigger the crash.
	if sw.crashIfDue(3) || sw.crashIfDue(2) {
		t.Fatal("crash fired twice")
	}
}

// TestCrashKeepsTableWithoutWipe covers the reconnect-with-state
// variant: the connection dies but the flow table survives.
func TestCrashKeepsTableWithoutWipe(t *testing.T) {
	f := NewFabric(topo.Linear(1))
	sw, err := NewSwitch(f, Config{Node: 1, Faults: Faults{DisconnectAfterFlowMods: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sw.Table().Apply(fm(openflow.FlowAdd, "10.0.0.1", 100, 1))
	if !sw.crashIfDue(1) {
		t.Fatal("crash did not fire")
	}
	if sw.Table().Len() != 1 {
		t.Fatal("crash without WipeTableOnCrash lost the table")
	}
}

// TestCrashDisabledByDefault: the zero fault model never crashes.
func TestCrashDisabledByDefault(t *testing.T) {
	f := NewFabric(topo.Linear(1))
	sw, err := NewSwitch(f, Config{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	for n := uint64(1); n <= 100; n++ {
		if sw.crashIfDue(n) {
			t.Fatalf("zero fault model crashed at flowmod %d", n)
		}
	}
}
