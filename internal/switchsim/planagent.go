package switchsim

import (
	"sort"
	"sync"
	"time"

	"tsu/internal/metrics"
	"tsu/internal/netem"
	"tsu/internal/planwire"
	"tsu/internal/topo"
)

// PeerAck is one switch-to-switch dependency notification of
// decentralized plan execution: the switch From confirms that plan
// node FromNode is installed, releasing one in-edge of node ToNode at
// the receiving switch. Acks ride the fabric directly between switches
// — the controller never sees them.
type PeerAck struct {
	Job      int
	From     topo.NodeID
	FromNode int
	ToNode   int
}

// planAgent is the switch-local executor of decentralized plans: it
// receives the switch's partition once, installs each owned node the
// moment all of that node's in-edge acks have arrived (the local
// verification of arXiv 1908.10086 — the in-edge predicate is all a
// switch ever checks), notifies DAG successors peer-to-peer, and sends
// the controller one terminal completion report.
//
// The agent is deliberately paranoid about the fabric's asynchrony:
// acks may arrive duplicated or reordered (idempotent via per-node
// seen sets), and may even arrive before the partition itself when a
// fast peer outruns this switch's slower control channel (buffered in
// early and replayed on partition receipt).
type planAgent struct {
	s *Switch

	mu    sync.Mutex
	jobs  map[int]*agentJob
	early map[int][]PeerAck // acks that raced ahead of their partition
}

// agentJob is one partition in execution.
type agentJob struct {
	push     *planwire.Push
	send     func(*planwire.Report) error
	received time.Time

	nodes []agentNode
	byIdx map[int]int // global plan index -> position in nodes

	acksSent, acksRecv, dups int
	done                     int
	reports                  []planwire.NodeReport
	finished                 bool
}

// agentNode tracks one owned plan node.
type agentNode struct {
	pos        int          // position in agentJob.nodes / push.Part.Nodes
	pending    map[int]bool // in-edge producer indices still unacked
	seen       map[int]bool // producer indices already counted (idempotence)
	releasedBy topo.NodeID
	started    bool
}

func newPlanAgent(s *Switch) *planAgent {
	return &planAgent{
		s:     s,
		jobs:  make(map[int]*agentJob),
		early: make(map[int][]PeerAck),
	}
}

// start installs a freshly received partition and begins executing it:
// root nodes (no in-edges) dispatch immediately, buffered early acks
// replay, and everything else waits for its peers. Duplicate pushes
// for a known job are ignored. send delivers the terminal report to
// the controller.
func (a *planAgent) start(push *planwire.Push, send func(*planwire.Report) error) {
	a.mu.Lock()
	if _, dup := a.jobs[push.Job]; dup {
		a.mu.Unlock()
		return
	}
	j := &agentJob{
		push:     push,
		send:     send,
		received: a.s.clock.Now(),
		nodes:    make([]agentNode, len(push.Part.Nodes)),
		byIdx:    make(map[int]int, len(push.Part.Nodes)),
	}
	for i, pn := range push.Part.Nodes {
		nd := agentNode{
			pos:     i,
			pending: make(map[int]bool, len(pn.InEdges)),
			seen:    make(map[int]bool, len(pn.InEdges)),
		}
		for _, e := range pn.InEdges {
			nd.pending[e.Index] = true
		}
		j.nodes[i] = nd
		j.byIdx[pn.Index] = i
	}
	a.jobs[push.Job] = j
	var starts []int
	for i := range j.nodes {
		if len(j.nodes[i].pending) == 0 {
			j.nodes[i].started = true
			starts = append(starts, i)
		}
	}
	// Replay acks that beat the partition here.
	for _, ack := range a.early[push.Job] {
		if nd := a.applyAckLocked(j, ack); nd != nil {
			starts = append(starts, nd.pos)
		}
	}
	delete(a.early, push.Job)
	// The partition itself counts as an empty job: report immediately.
	reportNow := len(j.nodes) == 0
	if reportNow {
		j.finished = true
	}
	a.mu.Unlock()
	for _, pos := range starts {
		go a.install(j, pos)
	}
	if reportNow {
		a.report(j)
	}
}

// deliver hands one peer ack to the agent. Unknown jobs buffer the ack
// — the partition may still be in flight on the control channel.
func (a *planAgent) deliver(ack PeerAck) {
	a.mu.Lock()
	j, ok := a.jobs[ack.Job]
	if !ok {
		a.early[ack.Job] = append(a.early[ack.Job], ack)
		a.mu.Unlock()
		return
	}
	nd := a.applyAckLocked(j, ack)
	a.mu.Unlock()
	if nd != nil {
		go a.install(j, nd.pos)
	}
}

// applyAckLocked records one ack and returns the node it released (its
// last in-edge confirmed), or nil. Duplicates and acks for unknown
// edges are absorbed. Caller holds a.mu.
func (a *planAgent) applyAckLocked(j *agentJob, ack PeerAck) *agentNode {
	pos, ok := j.byIdx[ack.ToNode]
	if !ok {
		return nil
	}
	nd := &j.nodes[pos]
	if !nd.pending[ack.FromNode] {
		if nd.seen[ack.FromNode] {
			j.dups++
		}
		return nil
	}
	delete(nd.pending, ack.FromNode)
	nd.seen[ack.FromNode] = true
	j.acksRecv++
	if len(nd.pending) == 0 && !nd.started {
		nd.started = true
		nd.releasedBy = ack.From
		return nd
	}
	return nil
}

// reset drops every in-flight job and buffered ack — the agent state
// of a crashed switch process. Install goroutines still running for a
// dropped job detect the reset (their job is no longer the registered
// one) and go silent: no acks, no report.
func (a *planAgent) reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.jobs = make(map[int]*agentJob)
	a.early = make(map[int][]PeerAck)
}

// install executes one released node: optional interval pause, the
// node's FlowMods against the live table (each paying the configured
// install latency), then the out-edge acks, and — when it was the
// switch's last node — the completion report.
func (a *planAgent) install(j *agentJob, pos int) {
	pn := j.push.Part.Nodes[pos]
	if j.push.Interval > 0 && len(pn.InEdges) > 0 {
		a.s.clock.Sleep(j.push.Interval)
	}
	started := a.s.clock.Now()
	flowMods := 0
	for _, fm := range j.push.Mods[pos] {
		a.s.src.Sleep(a.s.cfg.InstallLatency)
		if oferr := a.s.table.Apply(fm); oferr != nil {
			// A rejected FlowMod stalls the node (and with it every
			// dependent): the controller's progress timeout surfaces it.
			a.s.logger.Warn("plan install rejected", "job", j.push.Job, "node", pn.Index, "err", oferr.Error())
			return
		}
		applied := a.s.flowModsApplied.Add(1)
		flowMods++
		if a.s.crashIfDue(applied) {
			// The process died mid-node: no acks, no report. The
			// controller hears silence and must time the job out.
			a.s.dropConnection()
			return
		}
	}
	finished := a.s.clock.Now()

	// Draw each out-edge ack's fate exactly once, up front: the sends
	// count (taken under the lock for the report) and the delivery loop
	// (outside it) must agree on what was injected.
	fates := make([]netem.FaultDecision, len(pn.OutEdges))
	for i, e := range pn.OutEdges {
		if e.Switch == a.s.cfg.Node {
			continue // intra-switch release: not a fabric message
		}
		fates[i] = a.s.src.Fault(a.s.cfg.Faults.PeerAckFaults)
		if fates[i].Drop || fates[i].Dup || fates[i].Reordered {
			metrics.FaultsInjected.Inc()
		}
	}

	a.mu.Lock()
	if a.jobs[j.push.Job] != j {
		// The switch crashed (agent reset) while this node installed:
		// the revived process knows nothing of the job. Stay silent.
		a.mu.Unlock()
		return
	}
	nd := &j.nodes[pos]
	j.done++
	j.reports = append(j.reports, planwire.NodeReport{
		Index:      pn.Index,
		ReleasedBy: nd.releasedBy,
		FlowMods:   flowMods,
		Started:    started.Sub(j.received),
		Finished:   finished.Sub(j.received),
	})
	// Count peer sends under the lock so the report is consistent.
	sends := 0
	for i, e := range pn.OutEdges {
		if e.Switch == a.s.cfg.Node {
			continue // intra-switch release, no message
		}
		if a.s.cfg.Faults.DropPeerAcks || fates[i].Drop {
			continue // fault injection: install confirmed, ack lost
		}
		sends++
		if a.s.cfg.Faults.DuplicatePeerAcks || fates[i].Dup {
			sends++
		}
	}
	j.acksSent += sends
	last := j.done == len(j.nodes) && !j.finished
	if last {
		j.finished = true
	}
	a.mu.Unlock()

	for i, e := range pn.OutEdges {
		ack := PeerAck{Job: j.push.Job, From: a.s.cfg.Node, FromNode: pn.Index, ToNode: e.Index}
		if e.Switch == a.s.cfg.Node {
			// The successor lives on this very switch (e.g. its cleanup
			// node): release it locally, no fabric message involved.
			a.deliver(ack)
			continue
		}
		if a.s.cfg.Faults.DropPeerAcks || fates[i].Drop {
			continue
		}
		var extra time.Duration
		if fates[i].Reordered {
			extra = fates[i].Delay
		}
		a.s.fabric.deliverPeerAck(a.s, e.Switch, ack, extra)
		if a.s.cfg.Faults.DuplicatePeerAcks || fates[i].Dup {
			a.s.fabric.deliverPeerAck(a.s, e.Switch, ack, extra+fates[i].Delay)
		}
	}
	if last {
		a.report(j)
	}
}

// report sends the terminal completion report to the controller,
// nodes ordered by (finish offset, index) for determinism.
func (a *planAgent) report(j *agentJob) {
	a.mu.Lock()
	r := &planwire.Report{
		Job:      j.push.Job,
		Switch:   a.s.cfg.Node,
		AcksSent: j.acksSent,
		AcksRecv: j.acksRecv,
		DupAcks:  j.dups,
		Nodes:    append([]planwire.NodeReport(nil), j.reports...),
	}
	a.mu.Unlock()
	sort.Slice(r.Nodes, func(x, y int) bool {
		if r.Nodes[x].Finished != r.Nodes[y].Finished {
			return r.Nodes[x].Finished < r.Nodes[y].Finished
		}
		return r.Nodes[x].Index < r.Nodes[y].Index
	})
	if err := j.send(r); err != nil {
		a.s.logger.Warn("sending completion report failed", "job", j.push.Job, "err", err)
	}
}

// doneNodes returns the global plan-node indices the agent has
// completed for a job, ascending — the agent's contribution to a
// recovery StateReport. A job the agent has no memory of (never
// pushed, or wiped by a crash reset) yields nil.
func (a *planAgent) doneNodes(job int) []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	j, ok := a.jobs[job]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(j.reports))
	for _, nr := range j.reports {
		out = append(out, nr.Index)
	}
	sort.Ints(out)
	return out
}

// PlanAckStats exposes the agent's per-job ack counters for a job —
// test instrumentation for the idempotence and fault paths.
func (s *Switch) PlanAckStats(job int) (sent, recv, dups int, ok bool) {
	s.agent.mu.Lock()
	defer s.agent.mu.Unlock()
	j, found := s.agent.jobs[job]
	if !found {
		return 0, 0, 0, false
	}
	return j.acksSent, j.acksRecv, j.dups, true
}
