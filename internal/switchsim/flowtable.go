// Package switchsim simulates OpenFlow software switches (the OVS
// stand-in of the reproduction): each switch speaks the OpenFlow 1.0
// subset over a real TCP control connection, processes control messages
// strictly in order (which is what makes barrier replies meaningful),
// delays rule installation per a configurable latency distribution
// (after the PAM'15 measurements the paper cites), and forwards
// data-plane probe packets across an in-memory fabric wired from the
// shared topology.
//
// The paper's footnote limits the demo's claims to "the asynchronicity
// of the control channel" — exactly what this simulator reproduces:
// per-switch control latencies make FlowMods take effect out of order
// across switches, while barriers restore inter-round ordering.
package switchsim

import (
	"sort"
	"sync"
	"time"

	"tsu/internal/openflow"
)

// FlowEntry is one installed rule.
type FlowEntry struct {
	Match    openflow.Match
	Priority uint16
	Cookie   uint64
	Actions  []openflow.Action

	IdleTimeout uint16 // seconds of TimeoutUnit without a hit (0 = never)
	HardTimeout uint16 // seconds of TimeoutUnit since install (0 = never)
	Flags       uint16

	PacketCount uint64
	ByteCount   uint64

	installed time.Time
	lastHit   time.Time
}

// FlowTable is a single OpenFlow 1.0 flow table with priority matching.
// The zero value is an empty table ready for use. All methods are safe
// for concurrent use (the control loop writes while data-plane probes
// read).
type FlowTable struct {
	mu      sync.RWMutex
	entries []*FlowEntry
	nowFn   func() time.Time // nil = time.Now (wall clock)
}

// SetNow points the table's entry timestamps (install time, last hit)
// at a different time source — a simclock's Now for virtual-time
// simulations. Call before the table is in use.
func (t *FlowTable) SetNow(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nowFn = now
}

// now reads the table's time source. Caller must hold t.mu (read or
// write).
func (t *FlowTable) now() time.Time {
	if t.nowFn != nil {
		return t.nowFn()
	}
	return time.Now()
}

// Len returns the number of installed entries.
func (t *FlowTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Wipe removes every entry — the flow table of a switch that lost
// power. No FLOW_REMOVED messages are generated; a crashed switch
// cannot report what it forgot.
func (t *FlowTable) Wipe() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = nil
}

// Apply executes a FlowMod against the table, implementing the OF 1.0
// command semantics on this subset:
//
//   - ADD replaces any entry with identical match and priority;
//   - MODIFY/MODIFY_STRICT update the actions of entries with an equal
//     match (strict also requires equal priority) or insert the flow
//     when none matches, per the specification;
//   - DELETE/DELETE_STRICT remove entries with an equal match (strict
//     also requires equal priority).
//
// It returns an Error message to send back when the FlowMod is
// unacceptable, or nil.
func (t *FlowTable) Apply(fm *openflow.FlowMod) *openflow.Error {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch fm.Command {
	case openflow.FlowAdd:
		t.removeLocked(fm.Match, fm.Priority, true)
		t.insertLocked(fm)
	case openflow.FlowModify, openflow.FlowModifyStrict:
		strict := fm.Command == openflow.FlowModifyStrict
		modified := false
		for _, e := range t.entries {
			if e.Match == fm.Match && (!strict || e.Priority == fm.Priority) {
				e.Actions = fm.Actions
				e.Cookie = fm.Cookie
				modified = true
			}
		}
		if !modified {
			t.insertLocked(fm)
		}
	case openflow.FlowDelete, openflow.FlowDeleteStrict:
		strict := fm.Command == openflow.FlowDeleteStrict
		t.removeLocked(fm.Match, fm.Priority, strict)
	default:
		e := &openflow.Error{ErrType: openflow.ErrTypeFlowModFail, Code: openflow.ErrCodeBadType}
		e.SetXid(fm.Xid())
		return e
	}
	return nil
}

func (t *FlowTable) insertLocked(fm *openflow.FlowMod) {
	now := t.now()
	t.entries = append(t.entries, &FlowEntry{
		Match:       fm.Match,
		Priority:    fm.Priority,
		Cookie:      fm.Cookie,
		Actions:     fm.Actions,
		IdleTimeout: fm.IdleTimeout,
		HardTimeout: fm.HardTimeout,
		Flags:       fm.Flags,
		installed:   now,
		lastHit:     now,
	})
	// Highest priority first; stable order by insertion for ties.
	sort.SliceStable(t.entries, func(i, j int) bool {
		return t.entries[i].Priority > t.entries[j].Priority
	})
}

func (t *FlowTable) removeLocked(m openflow.Match, prio uint16, strict bool) {
	kept := t.entries[:0]
	for _, e := range t.entries {
		if e.Match == m && (!strict || e.Priority == prio) {
			continue
		}
		kept = append(kept, e)
	}
	t.entries = kept
}

// Lookup returns the actions of the highest-priority entry covering an
// untagged packet to nwDst, counting the hit; ok is false on a miss.
func (t *FlowTable) Lookup(nwDst uint32, packetBytes uint64) (actions []openflow.Action, ok bool) {
	return t.LookupKey(openflow.UntaggedPacket(nwDst), packetBytes)
}

// LookupKey returns the actions of the highest-priority entry covering
// the packet, counting the hit; ok is false on a table miss.
func (t *FlowTable) LookupKey(k openflow.PacketKey, packetBytes uint64) (actions []openflow.Action, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if e.Match.CoversKey(k) {
			e.PacketCount++
			e.ByteCount += packetBytes
			e.lastHit = t.now()
			return e.Actions, true
		}
	}
	return nil, false
}

// ExpireEntries removes entries whose idle or hard timeout elapsed,
// measuring timeouts in units of `unit` (the OpenFlow spec uses
// seconds; simulations shrink the unit for testability). It returns
// the expired entries and their reasons so the switch can emit
// FLOW_REMOVED notifications for entries flagged with FlagSendFlowRem.
func (t *FlowTable) ExpireEntries(now time.Time, unit time.Duration) (expired []FlowEntry, reasons []uint8) {
	if unit <= 0 {
		unit = time.Second
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.entries[:0]
	for _, e := range t.entries {
		switch {
		case e.HardTimeout > 0 && now.Sub(e.installed) >= time.Duration(e.HardTimeout)*unit:
			expired = append(expired, *e)
			reasons = append(reasons, openflow.FlowRemovedHardTimeout)
		case e.IdleTimeout > 0 && now.Sub(e.lastHit) >= time.Duration(e.IdleTimeout)*unit:
			expired = append(expired, *e)
			reasons = append(reasons, openflow.FlowRemovedIdleTimeout)
		default:
			kept = append(kept, e)
		}
	}
	t.entries = kept
	return expired, reasons
}

// Age returns how long the entry has been installed, for FLOW_REMOVED
// duration reporting.
func (e *FlowEntry) Age(now time.Time) time.Duration { return now.Sub(e.installed) }

// Stats snapshots the table as flow-stats entries (highest priority
// first).
func (t *FlowTable) Stats() []openflow.FlowStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	now := t.now()
	out := make([]openflow.FlowStats, 0, len(t.entries))
	for _, e := range t.entries {
		age := e.Age(now)
		out = append(out, openflow.FlowStats{
			Match:        e.Match,
			Priority:     e.Priority,
			Cookie:       e.Cookie,
			IdleTimeout:  e.IdleTimeout,
			HardTimeout:  e.HardTimeout,
			DurationSec:  uint32(age / time.Second),
			DurationNsec: uint32(age % time.Second),
			PacketCount:  e.PacketCount,
			ByteCount:    e.ByteCount,
			Actions:      e.Actions,
		})
	}
	return out
}

// Snapshot returns copies of the current entries (for assertions in
// tests and the experiment harness).
func (t *FlowTable) Snapshot() []FlowEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]FlowEntry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, *e)
	}
	return out
}
