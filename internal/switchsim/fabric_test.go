package switchsim

import (
	"net"
	"testing"

	"tsu/internal/openflow"
	"tsu/internal/topo"
)

// buildFabric creates a fabric over g with one switch per node (no
// control connections — tables are programmed directly).
func buildFabric(t *testing.T, g *topo.Graph) *Fabric {
	t.Helper()
	f := NewFabric(g)
	for _, n := range g.Nodes() {
		if _, err := NewSwitch(f, Config{Node: n}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// programPath installs flow rules along path for ip, delivering to host
// at the destination when host is non-empty.
func programPath(t *testing.T, f *Fabric, path topo.Path, ip string, host string) {
	t.Helper()
	pm := f.Ports()
	for i := 0; i+1 < len(path); i++ {
		port := pm.Port(path[i], path[i+1])
		if port == 0 {
			t.Fatalf("no port %d→%d", path[i], path[i+1])
		}
		f.Switch(path[i]).Table().Apply(fm(openflow.FlowAdd, ip, 100, port))
	}
	if host != "" {
		port, ok := pm.HostPort[path.Dst()][host]
		if !ok {
			t.Fatalf("no host port for %q on %d", host, path.Dst())
		}
		f.Switch(path.Dst()).Table().Apply(fm(openflow.FlowAdd, ip, 100, port))
	}
}

func TestFabricDeliversAlongPath(t *testing.T) {
	g := topo.Fig1()
	f := buildFabric(t, g)
	programPath(t, f, topo.Fig1OldPath, "10.0.0.2", "h2")
	res := f.Inject(1, nwDst("10.0.0.2"), 64)
	if res.Outcome != ProbeDelivered || res.Host != "h2" {
		t.Fatalf("probe = %+v", res)
	}
	if !res.Visited.Equal(topo.Fig1OldPath) {
		t.Fatalf("visited %v, want %v", res.Visited, topo.Fig1OldPath)
	}
	if !res.VisitedBefore(topo.Fig1Waypoint) {
		t.Fatal("waypoint crossing not detected")
	}
}

func TestFabricDropsOnMiss(t *testing.T) {
	g := topo.Linear(3)
	f := buildFabric(t, g)
	// Only switch 1 programmed: probe drops at 2.
	pm := f.Ports()
	f.Switch(1).Table().Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, pm.Port(1, 2)))
	res := f.Inject(1, nwDst("10.0.0.2"), 64)
	if res.Outcome != ProbeDropped {
		t.Fatalf("outcome = %v, want dropped", res.Outcome)
	}
	if !res.Visited.Equal(topo.Path{1, 2}) {
		t.Fatalf("visited = %v", res.Visited)
	}
}

func TestFabricDetectsLoop(t *testing.T) {
	g := topo.Linear(3)
	f := buildFabric(t, g)
	pm := f.Ports()
	// 1→2, 2→1: forwarding loop.
	f.Switch(1).Table().Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, pm.Port(1, 2)))
	f.Switch(2).Table().Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, pm.Port(2, 1)))
	res := f.Inject(1, nwDst("10.0.0.2"), 16)
	if res.Outcome != ProbeTTLExceeded {
		t.Fatalf("outcome = %v, want ttl-exceeded", res.Outcome)
	}
	if len(res.Visited) < 16 {
		t.Fatalf("loop walk too short: %v", res.Visited)
	}
}

func TestFabricDropsOnBadPort(t *testing.T) {
	g := topo.Linear(2)
	f := buildFabric(t, g)
	f.Switch(1).Table().Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, 99)) // no such port
	res := f.Inject(1, nwDst("10.0.0.2"), 8)
	if res.Outcome != ProbeDropped {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestFabricUnknownStartSwitch(t *testing.T) {
	g := topo.Linear(2)
	f := NewFabric(g) // no switches registered
	res := f.Inject(1, nwDst("10.0.0.2"), 8)
	if res.Outcome != ProbeDropped || len(res.Visited) != 0 {
		t.Fatalf("probe on empty fabric = %+v", res)
	}
}

func TestFabricDuplicateRegistration(t *testing.T) {
	g := topo.Linear(2)
	f := NewFabric(g)
	if _, err := NewSwitch(f, Config{Node: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSwitch(f, Config{Node: 1}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := NewSwitch(f, Config{Node: 99}); err == nil {
		t.Fatal("off-topology switch accepted")
	}
}

func TestProbeOutcomeString(t *testing.T) {
	for o, want := range map[ProbeOutcome]string{
		ProbeDelivered:   "delivered",
		ProbeDropped:     "dropped",
		ProbeTTLExceeded: "ttl-exceeded",
		ProbeOutcome(9):  "unknown",
	} {
		if o.String() != want {
			t.Fatalf("%d.String() = %q", o, o.String())
		}
	}
}

func TestSwitchFeatures(t *testing.T) {
	g := topo.Fig1()
	f := buildFabric(t, g)
	sw := f.Switch(3)
	fr := sw.features()
	if fr.DatapathID != 3 {
		t.Fatalf("dpid = %d", fr.DatapathID)
	}
	// Switch 3 on Fig1: neighbors 2, 4, 8, 9 → four ports, no host.
	if len(fr.Ports) != 4 {
		t.Fatalf("ports = %d, want 4 (%v)", len(fr.Ports), fr.Ports)
	}
	// Switch 1 carries host h1.
	fr1 := f.Switch(1).features()
	wantPorts := len(g.Neighbors(1)) + 1
	if len(fr1.Ports) != wantPorts {
		t.Fatalf("switch 1 ports = %d, want %d", len(fr1.Ports), wantPorts)
	}
}

func TestNwDstHelper(t *testing.T) {
	if nwDst("10.0.0.2") != 0x0a000002 {
		t.Fatalf("nwDst = %#x", nwDst("10.0.0.2"))
	}
}

func TestApplyActionsVLANRewrite(t *testing.T) {
	pkt := openflow.UntaggedPacket(nwDst("10.0.0.2"))
	port, ok := applyActions([]openflow.Action{
		openflow.ActionSetVLAN{VLAN: 9},
		openflow.ActionOutput{Port: 3},
	}, &pkt)
	if !ok || port != 3 {
		t.Fatalf("port = %d ok=%v", port, ok)
	}
	if pkt.VLAN != 9 {
		t.Fatalf("vlan = %d, want 9", pkt.VLAN)
	}
	port, ok = applyActions([]openflow.Action{openflow.ActionStripVLAN{}, openflow.ActionOutput{Port: 1}}, &pkt)
	if !ok || port != 1 || pkt.VLAN != openflow.VLANNone {
		t.Fatalf("strip failed: port=%d vlan=%d", port, pkt.VLAN)
	}
	if _, ok := applyActions([]openflow.Action{openflow.ActionSetVLAN{VLAN: 1}}, &pkt); ok {
		t.Fatal("action list without output must drop")
	}
}

func TestFabricTaggedWalk(t *testing.T) {
	// Ingress tags and sends 1→2; switch 2 has only a tagged rule to 3.
	g := topo.Linear(3)
	f := buildFabric(t, g)
	pm := f.Ports()
	ingress := &openflow.FlowMod{
		Match:    openflow.ExactNWDst(net.ParseIP("10.0.0.2")),
		Command:  openflow.FlowAdd,
		Priority: 100,
		Actions: []openflow.Action{
			openflow.ActionSetVLAN{VLAN: 5},
			openflow.ActionOutput{Port: pm.Port(1, 2)},
		},
	}
	f.Switch(1).Table().Apply(ingress)
	tagged := &openflow.FlowMod{
		Match:    openflow.ExactNWDstVLAN(net.ParseIP("10.0.0.2"), 5),
		Command:  openflow.FlowAdd,
		Priority: 110,
		Actions:  []openflow.Action{openflow.ActionOutput{Port: pm.Port(2, 3)}},
	}
	f.Switch(2).Table().Apply(tagged)
	res := f.Inject(1, nwDst("10.0.0.2"), 16)
	if res.Outcome != ProbeDropped || !res.Visited.Equal(topo.Path{1, 2, 3}) {
		t.Fatalf("tagged walk = %+v (3 has no rule: expected drop after 1→2→3)", res)
	}
	// Without the tag, switch 2 has no matching rule: drop at 2.
	f.Switch(1).Table().Apply(&openflow.FlowMod{
		Match:    openflow.ExactNWDst(net.ParseIP("10.0.0.2")),
		Command:  openflow.FlowModify,
		Priority: 100,
		Actions:  []openflow.Action{openflow.ActionOutput{Port: pm.Port(1, 2)}},
	})
	res = f.Inject(1, nwDst("10.0.0.2"), 16)
	if res.Outcome != ProbeDropped || !res.Visited.Equal(topo.Path{1, 2}) {
		t.Fatalf("untagged walk = %+v (expected drop at 2)", res)
	}
}
