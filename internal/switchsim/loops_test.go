package switchsim

import (
	"context"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"tsu/internal/ofconn"
	"tsu/internal/openflow"
	"tsu/internal/topo"
)

// fakeController accepts switch connections, runs the controller-side
// handshake, and records every FLOW_REMOVED per datapath — just enough
// controller for loop-group tests that need a live control channel.
type fakeController struct {
	addr string

	mu      sync.Mutex
	removed map[uint64]int
}

func newFakeController(t *testing.T, ctx context.Context) *fakeController {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	fc := &fakeController{addr: ln.Addr().String(), removed: make(map[uint64]int)}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				conn := ofconn.New(nc)
				defer conn.Close()
				fr, err := ofconn.HandshakeController(conn)
				if err != nil {
					return
				}
				for {
					m, err := conn.ReadMessage()
					if err != nil {
						return
					}
					if _, ok := m.(*openflow.FlowRemoved); ok {
						fc.mu.Lock()
						fc.removed[fr.DatapathID]++
						fc.mu.Unlock()
					}
				}
			}()
		}
	}()
	return fc
}

func (fc *fakeController) removedCount(dpid uint64) int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.removed[dpid]
}

// TestLoopGroupCapsGoroutines connects a fleet twice — once on the
// classic goroutine-per-duty layout, once on a shared LoopGroup — and
// demands the group save at least two long-lived goroutines per switch
// (the expiry ticker and the context watcher).
func TestLoopGroupCapsGoroutines(t *testing.T) {
	g := topo.Grid(8, 8)
	n := g.NumNodes()

	connect := func(ctx context.Context, addr string, lg *LoopGroup) []*Switch {
		fabric := NewFabric(g)
		sws := make([]*Switch, 0, n)
		for _, node := range g.Nodes() {
			sw, err := NewSwitch(fabric, Config{Node: node, TimeoutUnit: 50 * time.Millisecond, Loops: lg})
			if err != nil {
				t.Fatal(err)
			}
			if err := sw.Connect(ctx, addr); err != nil {
				t.Fatal(err)
			}
			sws = append(sws, sw)
		}
		return sws
	}
	settle := func() int {
		// Give just-spawned goroutines a few scheduler turns to park.
		for i := 0; i < 50; i++ {
			runtime.Gosched()
		}
		time.Sleep(10 * time.Millisecond)
		return runtime.NumGoroutine()
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	fc1 := newFakeController(t, ctx1)
	base1 := settle()
	classic := connect(ctx1, fc1.addr, nil)
	classicG := settle() - base1
	for _, sw := range classic {
		sw.Stop()
	}
	cancel1()
	settle()

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	fc2 := newFakeController(t, ctx2)
	lg := NewLoopGroup(ctx2, nil, 4)
	base2 := settle()
	grouped := connect(ctx2, fc2.addr, lg)
	groupG := settle() - base2

	if lg.Members() != n {
		t.Fatalf("group members = %d, want %d", lg.Members(), n)
	}
	// Classic: 3 switch-side goroutines per switch (+1 fake-controller
	// reader). Group: 1 per switch (+1 reader), pool fixed. The saving
	// must be at least 2 per switch, minus slack for scheduler noise.
	if saved := classicG - groupG; saved < 2*n-8 {
		t.Fatalf("loop group saved only %d goroutines for %d switches (classic %d, grouped %d), want >= %d",
			saved, n, classicG, groupG, 2*n-8)
	}

	// The shared sweep still expires flows: a hard-timeout entry on one
	// member must surface as FLOW_REMOVED at the controller.
	sw := grouped[0]
	fme := fm(openflow.FlowAdd, "10.0.0.2", 100, 3)
	fme.HardTimeout = 1
	fme.Flags = openflow.FlagSendFlowRem
	if oferr := sw.Table().Apply(fme); oferr != nil {
		t.Fatalf("apply: %v", oferr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fc2.removedCount(sw.DatapathID()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("loop-group sweep never delivered FLOW_REMOVED")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Stop unregisters: the group must forget stopped switches.
	for _, sw := range grouped {
		sw.Stop()
	}
	deadline = time.Now().Add(5 * time.Second)
	for lg.Members() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("group still tracks %d members after Stop", lg.Members())
		}
		time.Sleep(time.Millisecond)
	}
}
