package switchsim

import (
	"context"
	"runtime"
	"sync"
	"time"

	"tsu/internal/ofconn"
	"tsu/internal/simclock"
	"tsu/internal/topo"
)

// LoopGroup multiplexes the timed background duties of many simulated
// switches — flow-expiry sweeps and delayed peer-ack deliveries — onto
// a fixed pool of shared event loops under one clock. Without a group,
// every switch spends two long-lived goroutines beyond its blocking
// reader (an expiry ticker and a context watcher) plus one transient
// goroutine per peer ack in flight; a 100k-switch fleet pays for
// 300k+ goroutines before a single update runs. With a group, the
// fleet shares one timing loop, a fixed worker pool, and one
// connection watcher, capping the per-switch cost at the single
// blocking reader that net.Conn imposes.
//
// A group is bound to a context and a clock at construction; switches
// opt in via Config.Loops and should be driven by the same context
// and clock. Under a simclock.Sim the group's timers elapse in
// virtual time like everything else on the fabric.
type LoopGroup struct {
	clock simclock.Clock
	ctx   context.Context

	work chan groupEvent // due events awaiting a worker
	kick chan struct{}   // wakes the timing loop on a new head event

	mu      sync.Mutex
	members map[*Switch]*ofconn.Conn
	heap    []groupEvent // min-heap on (at, seq)
	seq     uint64
}

// groupEvent is one timed duty: a flow-expiry sweep of a member switch
// (sweep == true) or a delayed peer-ack delivery.
type groupEvent struct {
	at  time.Time
	seq uint64

	sweep bool
	sw    *Switch      // sweep: the swept switch; ack: the sender
	conn  *ofconn.Conn // sweep only: the connection carrying FLOW_REMOVED
	to    topo.NodeID  // ack only
	ack   PeerAck      // ack only
}

// NewLoopGroup starts a shared event-loop pool on the given clock.
// workers <= 0 selects GOMAXPROCS. The group runs until ctx is
// cancelled; cancellation closes every registered member's control
// connection so their blocked readers return.
func NewLoopGroup(ctx context.Context, clock simclock.Clock, workers int) *LoopGroup {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := &LoopGroup{
		clock:   simclock.Or(clock),
		ctx:     ctx,
		work:    make(chan groupEvent, 4*workers),
		kick:    make(chan struct{}, 1),
		members: make(map[*Switch]*ofconn.Conn),
	}
	go g.run()
	for i := 0; i < workers; i++ {
		go g.worker()
	}
	return g
}

// Members returns how many switches are currently registered.
func (g *LoopGroup) Members() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// register adopts a freshly connected switch: its expiry sweeps run on
// the group from now on (called by Switch.Connect).
func (g *LoopGroup) register(s *Switch, conn *ofconn.Conn) {
	first := g.clock.Now().Add(s.expiryPeriod())
	g.mu.Lock()
	g.members[s] = conn
	g.pushLocked(groupEvent{at: first, sweep: true, sw: s, conn: conn})
	g.mu.Unlock()
	g.wake()
}

// unregister drops a disconnected switch; its queued sweep dies at
// fire time when the membership check fails.
func (g *LoopGroup) unregister(s *Switch) {
	g.mu.Lock()
	delete(g.members, s)
	g.mu.Unlock()
}

// schedule queues a delayed peer-ack delivery.
func (g *LoopGroup) schedule(at time.Time, from *Switch, to topo.NodeID, ack PeerAck) {
	g.mu.Lock()
	g.pushLocked(groupEvent{at: at, sw: from, to: to, ack: ack})
	g.mu.Unlock()
	g.wake()
}

func (g *LoopGroup) wake() {
	select {
	case g.kick <- struct{}{}:
	default:
	}
}

// run is the timing loop: it pops due events to the workers and sleeps
// on the clock until the next deadline. The timer is re-armed only
// when the head moves earlier; a spurious fire is a harmless no-op.
func (g *LoopGroup) run() {
	var timerC <-chan time.Time
	var timerAt time.Time
	for {
		now := g.clock.Now()
		var next time.Time
		for {
			g.mu.Lock()
			if len(g.heap) == 0 || g.heap[0].at.After(now) {
				if len(g.heap) > 0 {
					next = g.heap[0].at
				} else {
					next = time.Time{}
				}
				g.mu.Unlock()
				break
			}
			ev := g.popLocked()
			g.mu.Unlock()
			select {
			case g.work <- ev:
			case <-g.ctx.Done():
				g.shutdown()
				return
			}
		}
		if !next.IsZero() && (timerC == nil || timerAt.After(next)) {
			timerC = g.clock.After(next.Sub(now))
			timerAt = next
		}
		select {
		case <-g.ctx.Done():
			g.shutdown()
			return
		case <-g.kick:
		case <-timerC:
			timerC = nil
		}
	}
}

// worker executes due events: table sweeps and ack deliveries.
func (g *LoopGroup) worker() {
	for {
		select {
		case <-g.ctx.Done():
			return
		case ev := <-g.work:
			if ev.sweep {
				g.sweepMember(ev)
			} else if tgt := ev.sw.fabric.Switch(ev.to); tgt != nil {
				tgt.agent.deliver(ev.ack)
			}
		}
	}
}

// sweepMember runs one expiry sweep and re-queues the next, unless the
// switch has disconnected (or reconnected on a different conn) since
// the sweep was scheduled.
func (g *LoopGroup) sweepMember(ev groupEvent) {
	g.mu.Lock()
	conn, live := g.members[ev.sw]
	g.mu.Unlock()
	if !live || conn != ev.conn {
		return
	}
	now := g.clock.Now()
	if err := ev.sw.sweepExpiry(ev.conn, now); err != nil {
		return // connection dead; the control loop will unregister
	}
	g.mu.Lock()
	g.pushLocked(groupEvent{at: now.Add(ev.sw.expiryPeriod()), sweep: true, sw: ev.sw, conn: ev.conn})
	g.mu.Unlock()
	g.wake()
}

// shutdown closes every member's control connection so their blocked
// readers return; queued events are abandoned.
func (g *LoopGroup) shutdown() {
	g.mu.Lock()
	conns := make([]*ofconn.Conn, 0, len(g.members))
	for _, c := range g.members {
		conns = append(conns, c)
	}
	g.members = make(map[*Switch]*ofconn.Conn)
	g.heap = nil
	g.mu.Unlock()
	for _, c := range conns {
		c.Close() //nolint:errcheck // teardown path
	}
}

// pushLocked inserts into the (at, seq) min-heap. Caller holds g.mu.
func (g *LoopGroup) pushLocked(ev groupEvent) {
	g.seq++
	ev.seq = g.seq
	g.heap = append(g.heap, ev)
	i := len(g.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventBefore(g.heap[i], g.heap[p]) {
			break
		}
		g.heap[i], g.heap[p] = g.heap[p], g.heap[i]
		i = p
	}
}

// popLocked removes the earliest event. Caller holds g.mu and has
// checked the heap is non-empty.
func (g *LoopGroup) popLocked() groupEvent {
	ev := g.heap[0]
	last := len(g.heap) - 1
	g.heap[0] = g.heap[last]
	g.heap = g.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(g.heap) && eventBefore(g.heap[l], g.heap[m]) {
			m = l
		}
		if r < len(g.heap) && eventBefore(g.heap[r], g.heap[m]) {
			m = r
		}
		if m == i {
			break
		}
		g.heap[i], g.heap[m] = g.heap[m], g.heap[i]
		i = m
	}
	return ev
}

func eventBefore(a, b groupEvent) bool {
	if !a.at.Equal(b.at) {
		return a.at.Before(b.at)
	}
	return a.seq < b.seq
}
