package switchsim

import (
	"net"
	"testing"

	"tsu/internal/openflow"
)

func fm(cmd openflow.FlowModCommand, ip string, prio uint16, port uint16) *openflow.FlowMod {
	return &openflow.FlowMod{
		Match:    openflow.ExactNWDst(net.ParseIP(ip)),
		Command:  cmd,
		Priority: prio,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{openflow.ActionOutput{Port: port}},
	}
}

func nwDst(ip string) uint32 {
	v4 := net.ParseIP(ip).To4()
	return uint32(v4[0])<<24 | uint32(v4[1])<<16 | uint32(v4[2])<<8 | uint32(v4[3])
}

func lookupPort(t *testing.T, tbl *FlowTable, ip string) uint16 {
	t.Helper()
	actions, ok := tbl.Lookup(nwDst(ip), 64)
	if !ok {
		t.Fatalf("lookup %s missed", ip)
	}
	port, ok := outputPort(actions)
	if !ok {
		t.Fatalf("entry for %s has no output action", ip)
	}
	return port
}

func TestFlowTableAddAndLookup(t *testing.T) {
	var tbl FlowTable
	if e := tbl.Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, 3)); e != nil {
		t.Fatal(e)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
	if got := lookupPort(t, &tbl, "10.0.0.2"); got != 3 {
		t.Fatalf("port = %d", got)
	}
	if _, ok := tbl.Lookup(nwDst("10.0.0.9"), 64); ok {
		t.Fatal("miss expected for other flow")
	}
}

func TestFlowTableAddReplacesSameMatchPriority(t *testing.T) {
	var tbl FlowTable
	tbl.Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, 3))
	tbl.Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, 7))
	if tbl.Len() != 1 {
		t.Fatalf("len = %d, want replacement", tbl.Len())
	}
	if got := lookupPort(t, &tbl, "10.0.0.2"); got != 7 {
		t.Fatalf("port = %d", got)
	}
}

func TestFlowTablePriorityOrder(t *testing.T) {
	var tbl FlowTable
	tbl.Apply(fm(openflow.FlowAdd, "10.0.0.2", 10, 1))
	// Wildcard-all entry at higher priority wins.
	wild := &openflow.FlowMod{
		Match:    openflow.Match{Wildcards: openflow.WildcardAll},
		Command:  openflow.FlowAdd,
		Priority: 200,
		Actions:  []openflow.Action{openflow.ActionOutput{Port: 9}},
	}
	tbl.Apply(wild)
	if got := lookupPort(t, &tbl, "10.0.0.2"); got != 9 {
		t.Fatalf("port = %d, want wildcard winner 9", got)
	}
}

func TestFlowTableModify(t *testing.T) {
	var tbl FlowTable
	tbl.Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, 3))
	tbl.Apply(fm(openflow.FlowModify, "10.0.0.2", 100, 5))
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
	if got := lookupPort(t, &tbl, "10.0.0.2"); got != 5 {
		t.Fatalf("port = %d", got)
	}
}

func TestFlowTableModifyInsertsWhenMissing(t *testing.T) {
	var tbl FlowTable
	tbl.Apply(fm(openflow.FlowModify, "10.0.0.2", 100, 5))
	if tbl.Len() != 1 {
		t.Fatalf("modify-as-add failed: len = %d", tbl.Len())
	}
	if got := lookupPort(t, &tbl, "10.0.0.2"); got != 5 {
		t.Fatalf("port = %d", got)
	}
}

func TestFlowTableModifyStrictRespectsPriority(t *testing.T) {
	var tbl FlowTable
	tbl.Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, 3))
	tbl.Apply(fm(openflow.FlowModifyStrict, "10.0.0.2", 50, 5)) // different priority: inserts
	if tbl.Len() != 2 {
		t.Fatalf("len = %d, want 2", tbl.Len())
	}
	if got := lookupPort(t, &tbl, "10.0.0.2"); got != 3 {
		t.Fatalf("port = %d, want higher-priority original", got)
	}
}

func TestFlowTableDelete(t *testing.T) {
	var tbl FlowTable
	tbl.Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, 3))
	tbl.Apply(fm(openflow.FlowAdd, "10.0.0.3", 100, 4))
	tbl.Apply(fm(openflow.FlowDelete, "10.0.0.2", 0, 0))
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
	if _, ok := tbl.Lookup(nwDst("10.0.0.2"), 64); ok {
		t.Fatal("deleted entry still matches")
	}
	if got := lookupPort(t, &tbl, "10.0.0.3"); got != 4 {
		t.Fatalf("surviving entry port = %d", got)
	}
}

func TestFlowTableDeleteStrict(t *testing.T) {
	var tbl FlowTable
	tbl.Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, 3))
	tbl.Apply(fm(openflow.FlowDeleteStrict, "10.0.0.2", 50, 0)) // wrong priority
	if tbl.Len() != 1 {
		t.Fatal("strict delete with wrong priority removed the entry")
	}
	tbl.Apply(fm(openflow.FlowDeleteStrict, "10.0.0.2", 100, 0))
	if tbl.Len() != 0 {
		t.Fatal("strict delete with right priority kept the entry")
	}
}

func TestFlowTableBadCommand(t *testing.T) {
	var tbl FlowTable
	bad := fm(openflow.FlowModCommand(9), "10.0.0.2", 1, 1)
	bad.SetXid(77)
	oferr := tbl.Apply(bad)
	if oferr == nil {
		t.Fatal("bad command accepted")
	}
	if oferr.Xid() != 77 || oferr.ErrType != openflow.ErrTypeFlowModFail {
		t.Fatalf("error = %+v", oferr)
	}
}

func TestFlowTableCounters(t *testing.T) {
	var tbl FlowTable
	tbl.Apply(fm(openflow.FlowAdd, "10.0.0.2", 100, 3))
	for i := 0; i < 5; i++ {
		tbl.Lookup(nwDst("10.0.0.2"), 100)
	}
	stats := tbl.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats len = %d", len(stats))
	}
	if stats[0].PacketCount != 5 || stats[0].ByteCount != 500 {
		t.Fatalf("counters = %d/%d", stats[0].PacketCount, stats[0].ByteCount)
	}
	snap := tbl.Snapshot()
	if len(snap) != 1 || snap[0].PacketCount != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestFlowTableConcurrentAccess(t *testing.T) {
	var tbl FlowTable
	done := make(chan bool)
	go func() {
		for i := 0; i < 500; i++ {
			tbl.Apply(fm(openflow.FlowAdd, "10.0.0.2", uint16(i%7+1), uint16(i)))
		}
		done <- true
	}()
	go func() {
		for i := 0; i < 500; i++ {
			tbl.Lookup(nwDst("10.0.0.2"), 64)
			tbl.Stats()
		}
		done <- true
	}()
	<-done
	<-done
}
