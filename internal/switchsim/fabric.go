package switchsim

import (
	"fmt"
	"sync"
	"time"

	"tsu/internal/openflow"
	"tsu/internal/topo"
)

// ProbeOutcome classifies a data-plane probe's fate.
type ProbeOutcome int

const (
	// ProbeDelivered: the probe reached a host port.
	ProbeDelivered ProbeOutcome = iota
	// ProbeDropped: a switch had no matching rule or an invalid port.
	ProbeDropped
	// ProbeTTLExceeded: the probe exceeded its hop budget (forwarding
	// loop).
	ProbeTTLExceeded
)

func (o ProbeOutcome) String() string {
	switch o {
	case ProbeDelivered:
		return "delivered"
	case ProbeDropped:
		return "dropped"
	case ProbeTTLExceeded:
		return "ttl-exceeded"
	}
	return "unknown"
}

// ProbeResult is the trace of one probe packet: every switch visited in
// order, the outcome, and the delivering host (when delivered).
type ProbeResult struct {
	Visited topo.Path
	Outcome ProbeOutcome
	Host    string
}

// VisitedBefore reports whether the probe crossed w before its final
// switch — the waypoint-enforcement predicate on delivered probes.
func (r *ProbeResult) VisitedBefore(w topo.NodeID) bool {
	for _, v := range r.Visited[:max(0, len(r.Visited)-1)] {
		if v == w {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fabric is the in-memory data plane: it wires simulated switches
// according to the topology's canonical port map and walks probe
// packets hop by hop. Each hop reads the current flow table of the
// switch it is at — exactly like a real packet, a probe in flight
// observes whatever mixture of old and new rules the asynchronous
// update has produced so far.
type Fabric struct {
	graph *topo.Graph
	ports *topo.PortMap

	mu       sync.RWMutex
	switches map[topo.NodeID]*Switch
}

// NewFabric builds the data plane for a topology.
func NewFabric(g *topo.Graph) *Fabric {
	return &Fabric{
		graph:    g,
		ports:    topo.NewPortMap(g),
		switches: make(map[topo.NodeID]*Switch),
	}
}

// Ports exposes the canonical port map (shared with the controller).
func (f *Fabric) Ports() *topo.PortMap { return f.ports }

// Graph returns the wired topology.
func (f *Fabric) Graph() *topo.Graph { return f.graph }

// register attaches a switch to the fabric (called by NewSwitch).
func (f *Fabric) register(s *Switch) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.graph.HasNode(s.NodeID()) {
		return fmt.Errorf("switchsim: switch %d not in topology", s.NodeID())
	}
	if _, dup := f.switches[s.NodeID()]; dup {
		return fmt.Errorf("switchsim: switch %d already registered", s.NodeID())
	}
	f.switches[s.NodeID()] = s
	return nil
}

// Switch returns the registered switch for a node, or nil.
func (f *Fabric) Switch(n topo.NodeID) *Switch {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.switches[n]
}

// deliverPeerAck carries one plan-agent ack from one switch to
// another: a goroutine pays the sender's PeerLatency on the sender's
// clock (a data-plane hop, not a controller round trip) plus any
// injected extra delay (fault reordering), then hands the ack to the
// target's agent. Delivery order across concurrent acks is whatever
// the latencies produce — the receiving agent is built to absorb
// reordering and duplication.
func (f *Fabric) deliverPeerAck(from *Switch, to topo.NodeID, ack PeerAck, extra time.Duration) {
	if g := from.cfg.Loops; g != nil {
		// Shared event loops: draw the hop latency now and queue a timed
		// delivery instead of parking a goroutine on a sleep.
		delay := from.src.Sample(from.cfg.PeerLatency) + extra
		g.schedule(from.clock.Now().Add(delay), from, to, ack)
		return
	}
	go func() {
		from.src.Sleep(from.cfg.PeerLatency)
		if extra > 0 {
			from.clock.Sleep(extra)
		}
		if tgt := f.Switch(to); tgt != nil {
			tgt.agent.deliver(ack)
		}
	}()
}

// probeSize is the byte size accounted per probe packet.
const probeSize = 64

// Inject walks an untagged probe for flow nwDst starting at switch
// `at` with the given hop budget. The walk is performed in the caller's
// goroutine; every hop consults the live flow table of the switch it
// reaches, and VLAN set/strip actions rewrite the probe in flight (the
// mechanism behind two-phase tagged updates).
func (f *Fabric) Inject(at topo.NodeID, nwDst uint32, ttl int) ProbeResult {
	var res ProbeResult
	pkt := openflow.UntaggedPacket(nwDst)
	cur := at
	for hops := 0; ; hops++ {
		sw := f.Switch(cur)
		if sw == nil {
			res.Outcome = ProbeDropped
			return res
		}
		res.Visited = append(res.Visited, cur)
		if hops >= ttl {
			res.Outcome = ProbeTTLExceeded
			return res
		}
		actions, ok := sw.Table().LookupKey(pkt, probeSize)
		if !ok {
			res.Outcome = ProbeDropped
			return res
		}
		port, ok := applyActions(actions, &pkt)
		if !ok {
			res.Outcome = ProbeDropped
			return res
		}
		if host, isHost := f.ports.PortHost[cur][port]; isHost {
			res.Outcome = ProbeDelivered
			res.Host = host
			return res
		}
		next, ok := f.ports.PortNeighbor[cur][port]
		if !ok {
			res.Outcome = ProbeDropped
			return res
		}
		cur = next
	}
}

// applyActions executes an action list against the packet in order and
// returns the first OUTPUT port reached (packet-field rewrites before
// it take effect, as in OpenFlow 1.0 action-list semantics).
func applyActions(actions []openflow.Action, pkt *openflow.PacketKey) (uint16, bool) {
	for _, a := range actions {
		switch act := a.(type) {
		case openflow.ActionSetVLAN:
			pkt.VLAN = act.VLAN
		case openflow.ActionStripVLAN:
			pkt.VLAN = openflow.VLANNone
		case openflow.ActionOutput:
			return act.Port, true
		}
	}
	return 0, false
}

// outputPort extracts the first OUTPUT action's port without applying
// field rewrites (used where only the forwarding target matters).
func outputPort(actions []openflow.Action) (uint16, bool) {
	for _, a := range actions {
		if out, ok := a.(openflow.ActionOutput); ok {
			return out.Port, true
		}
	}
	return 0, false
}
