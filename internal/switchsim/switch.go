package switchsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tsu/internal/metrics"
	"tsu/internal/netem"
	"tsu/internal/ofconn"
	"tsu/internal/openflow"
	"tsu/internal/planwire"
	"tsu/internal/simclock"
	"tsu/internal/topo"
)

// Faults injects switch misbehaviour for robustness testing. The
// boolean fields are deterministic always-on faults; the netem.Faults
// fields draw per-message fates from the switch's seeded Source, so a
// fixed seed pins the exact fault sequence.
type Faults struct {
	// DropBarriers makes the switch process barrier requests without
	// ever replying — the controller's round must time out.
	DropBarriers bool

	// DisconnectAfterFlowMods closes the control connection after the
	// N-th FlowMod has been applied (0 disables) — a mid-update switch
	// crash. The count includes FlowMods applied by the plan agent in
	// decentralized mode; the crash fires at most once per switch.
	DisconnectAfterFlowMods uint64

	// WipeTableOnCrash makes a DisconnectAfterFlowMods crash also
	// erase the flow table — the switch reconnects with the state of a
	// power-cycled box instead of a dropped TCP session.
	WipeTableOnCrash bool

	// DropPeerAcks makes the plan agent install its nodes but never
	// notify DAG successors — a decentralized job stalls and must
	// surface as a controller-side round timeout.
	DropPeerAcks bool

	// DuplicatePeerAcks sends every peer ack twice, exercising the
	// receiving agent's idempotence.
	DuplicatePeerAcks bool

	// FlowModFaults probabilistically corrupts the control channel's
	// FlowMod deliveries: Drop loses the message before the switch
	// processes it (a later barrier still replies — the switch never
	// knew), Dup applies it twice (OF 1.0 mods are idempotent),
	// Reordered holds it back by the drawn delay so control messages
	// behind it take effect first in wall/virtual time.
	FlowModFaults netem.Faults

	// BarrierFaults corrupts barrier replies: Drop swallows the reply
	// (the probabilistic cousin of DropBarriers), Dup sends it twice,
	// Reordered delays it.
	BarrierFaults netem.Faults

	// PeerAckFaults corrupts the plan agent's switch-to-switch acks:
	// the probabilistic generalization of DropPeerAcks and
	// DuplicatePeerAcks, plus reordering.
	PeerAckFaults netem.Faults
}

// Config parameterizes a simulated switch.
type Config struct {
	// Node is the switch's topology identity; the OpenFlow datapath ID
	// equals uint64(Node), matching the demo's integer datapath naming.
	Node topo.NodeID

	// InstallLatency delays each FlowMod before it takes effect in the
	// flow table (rule-installation cost; PAM'15-shaped distributions
	// recommended). Nil means instantaneous.
	InstallLatency netem.Latency

	// CtrlLatency delays every inbound control message before
	// processing, modelling control-channel propagation and switch
	// queueing. Per-switch variation of this latency is the asynchrony
	// that reorders updates across switches. Nil means none.
	CtrlLatency netem.Latency

	// PeerLatency delays each switch-to-switch plan-agent message (the
	// acks of decentralized execution) — a data-plane hop, typically
	// orders of magnitude below CtrlLatency. Nil means none.
	PeerLatency netem.Latency

	// Source provides the deterministic randomness for the latency
	// distributions; nil creates a per-switch source seeded by the
	// node ID.
	Source *netem.Source

	// Faults optionally injects misbehaviour (dropped barriers,
	// mid-update disconnects).
	Faults Faults

	// TimeoutUnit scales flow-entry idle/hard timeouts (the OpenFlow
	// spec counts them in seconds; simulations shrink the unit). Zero
	// selects one second.
	TimeoutUnit time.Duration

	// Clock is the time base for latencies, flow-entry timestamps and
	// timeout expiry. Nil selects the wall clock; a simclock.Sim puts
	// the whole switch on virtual time (its latencies then elapse only
	// when the simulation advances). When Source is also set, the
	// source's own clock wins for latency sleeps.
	Clock simclock.Clock

	// Loops optionally multiplexes this switch's timed background
	// duties (expiry sweeps, delayed peer acks, close-on-cancel) onto a
	// shared event-loop pool, capping the per-switch goroutine cost at
	// the one blocking connection reader. Large fleets should share a
	// single group built on the same clock and context. Nil keeps the
	// classic goroutine-per-duty layout.
	Loops *LoopGroup

	// Logger receives connection lifecycle events; nil discards them.
	Logger *slog.Logger
}

// Switch is one simulated OpenFlow switch.
type Switch struct {
	cfg    Config
	fabric *Fabric
	table  *FlowTable
	src    *netem.Source
	clock  simclock.Clock
	logger *slog.Logger
	agent  *planAgent

	flowModsApplied atomic.Uint64
	barriersSeen    atomic.Uint64
	packetOutsSeen  atomic.Uint64
	crashed         atomic.Bool

	mu     sync.Mutex
	conn   *ofconn.Conn
	cancel context.CancelFunc
	done   chan struct{}
}

// NewSwitch creates a switch and registers it on the fabric.
func NewSwitch(f *Fabric, cfg Config) (*Switch, error) {
	clock := simclock.Or(cfg.Clock)
	src := cfg.Source
	if src == nil {
		src = netem.NewSourceClock(int64(cfg.Node), clock)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	table := &FlowTable{}
	table.SetNow(clock.Now)
	s := &Switch{
		cfg:    cfg,
		fabric: f,
		table:  table,
		src:    src,
		clock:  clock,
		logger: logger.With("dpid", uint64(cfg.Node)),
	}
	s.agent = newPlanAgent(s)
	if err := f.register(s); err != nil {
		return nil, err
	}
	return s, nil
}

// NodeID returns the switch's topology identity.
func (s *Switch) NodeID() topo.NodeID { return s.cfg.Node }

// DatapathID returns the OpenFlow datapath identifier.
func (s *Switch) DatapathID() uint64 { return uint64(s.cfg.Node) }

// Table exposes the live flow table (data plane and tests read it).
func (s *Switch) Table() *FlowTable { return s.table }

// FlowModsApplied returns how many FlowMods have taken effect.
func (s *Switch) FlowModsApplied() uint64 { return s.flowModsApplied.Load() }

// BarriersSeen returns how many barrier requests were answered.
func (s *Switch) BarriersSeen() uint64 { return s.barriersSeen.Load() }

// PacketOutsSeen returns how many packet-out injections were started.
func (s *Switch) PacketOutsSeen() uint64 { return s.packetOutsSeen.Load() }

// features builds the switch's FEATURES_REPLY body from the fabric's
// port map.
func (s *Switch) features() *openflow.FeaturesReply {
	fr := &openflow.FeaturesReply{
		DatapathID: s.DatapathID(),
		NBuffers:   256,
		NTables:    1,
	}
	pm := s.fabric.Ports()
	for port, nb := range pm.PortNeighbor[s.cfg.Node] {
		fr.Ports = append(fr.Ports, openflow.PhyPort{
			PortNo: port,
			Name:   fmt.Sprintf("s%d-eth%d", s.cfg.Node, port),
			HWAddr: portHWAddr(s.DatapathID(), port),
			Peer:   uint32(nb),
		})
	}
	for port, host := range pm.PortHost[s.cfg.Node] {
		fr.Ports = append(fr.Ports, openflow.PhyPort{
			PortNo: port,
			Name:   fmt.Sprintf("s%d-%s", s.cfg.Node, host),
			HWAddr: portHWAddr(s.DatapathID(), port),
		})
	}
	return fr
}

func portHWAddr(dpid uint64, port uint16) [6]byte {
	return [6]byte{0x02, byte(dpid >> 16), byte(dpid >> 8), byte(dpid), byte(port >> 8), byte(port)}
}

// Connect dials the controller, runs the switch-side handshake, and
// starts the control loop in a background goroutine. It returns once
// the handshake completed. Stop (or ctx cancellation) terminates the
// loop.
func (s *Switch) Connect(ctx context.Context, controllerAddr string) error {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", controllerAddr)
	if err != nil {
		return fmt.Errorf("switchsim: dialing controller: %w", err)
	}
	conn := ofconn.New(nc)
	if err := ofconn.HandshakeSwitch(conn, s.features()); err != nil {
		conn.Close() //nolint:errcheck // already failing
		return fmt.Errorf("switchsim: handshake: %w", err)
	}
	loopCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})

	s.mu.Lock()
	s.conn = conn
	s.cancel = cancel
	s.done = done
	s.mu.Unlock()

	if g := s.cfg.Loops; g != nil {
		// Shared event loops own the expiry sweeps and close-on-cancel;
		// the blocking reader is the switch's only goroutine.
		g.register(s, conn)
		go func() {
			defer close(done)
			defer g.unregister(s)
			defer conn.Close() //nolint:errcheck // loop exit path
			s.controlLoop(loopCtx, conn)
		}()
		return nil
	}
	go func() {
		defer close(done)
		defer conn.Close() //nolint:errcheck // loop exit path
		s.controlLoop(loopCtx, conn)
	}()
	// Tear the connection down when the context dies so the blocking
	// read returns.
	go func() {
		<-loopCtx.Done()
		conn.Close() //nolint:errcheck // unblocking the reader
	}()
	go s.expiryLoop(loopCtx, conn)
	return nil
}

// timeoutUnit returns the configured flow-timeout unit (one second by
// default).
func (s *Switch) timeoutUnit() time.Duration {
	if s.cfg.TimeoutUnit > 0 {
		return s.cfg.TimeoutUnit
	}
	return time.Second
}

// expiryPeriod is the sweep cadence derived from the timeout unit.
func (s *Switch) expiryPeriod() time.Duration {
	period := s.timeoutUnit() / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	return period
}

// sweepExpiry runs one idle/hard-timeout sweep at the given instant
// and emits FLOW_REMOVED for expired entries that asked for it.
func (s *Switch) sweepExpiry(conn *ofconn.Conn, now time.Time) error {
	expired, reasons := s.table.ExpireEntries(now, s.timeoutUnit())
	for i, e := range expired {
		if e.Flags&openflow.FlagSendFlowRem == 0 {
			continue
		}
		age := e.Age(now)
		fr := &openflow.FlowRemoved{
			Match:        e.Match,
			Cookie:       e.Cookie,
			Priority:     e.Priority,
			Reason:       reasons[i],
			DurationSec:  uint32(age / time.Second),
			DurationNsec: uint32(age % time.Second),
			IdleTimeout:  e.IdleTimeout,
			PacketCount:  e.PacketCount,
			ByteCount:    e.ByteCount,
		}
		if _, err := conn.Send(fr); err != nil {
			return err
		}
	}
	return nil
}

// expiryLoop sweeps the flow table for idle/hard-timeout expiry and
// emits FLOW_REMOVED for entries that asked for it (per-switch layout;
// a LoopGroup runs the same sweep from its shared timing loop).
func (s *Switch) expiryLoop(ctx context.Context, conn *ofconn.Conn) {
	period := s.expiryPeriod()
	// The sweep paces itself on the switch's clock: on the wall clock
	// this behaves like the former ticker; on a simclock.Sim the sweep
	// fires as virtual time crosses each period boundary.
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-s.clock.After(period):
			if s.sweepExpiry(conn, now) != nil {
				return
			}
		}
	}
}

// crashIfDue fires the DisconnectAfterFlowMods crash once the applied
// count crosses the threshold, at most once per switch: the flow table
// is optionally wiped, the plan agent forgets its in-flight jobs (a
// dead process has no memory), and the caller must drop the control
// connection. Reconnecting afterwards works normally — the crash does
// not re-fire, so tests can model "dies after N installs, comes back
// with the table intact or wiped".
func (s *Switch) crashIfDue(applied uint64) bool {
	n := s.cfg.Faults.DisconnectAfterFlowMods
	if n == 0 || applied < n || !s.crashed.CompareAndSwap(false, true) {
		return false
	}
	metrics.FaultsInjected.Inc()
	if s.cfg.Faults.WipeTableOnCrash {
		s.table.Wipe()
	}
	s.agent.reset()
	s.logger.Warn("fault injection: switch crash",
		"after_flowmods", applied, "wiped", s.cfg.Faults.WipeTableOnCrash)
	return true
}

// dropConnection closes the live control connection — the crash as the
// controller observes it. The control loop's blocking read returns and
// the loop exits.
func (s *Switch) dropConnection() {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		conn.Close() //nolint:errcheck // crash path
	}
}

// Connected reports whether the control loop from the most recent
// Connect is still running. False before the first Connect, after
// Stop, and once the controller side drops the connection — switch
// keepers poll this to know when to redial.
func (s *Switch) Connected() bool {
	s.mu.Lock()
	done := s.done
	s.mu.Unlock()
	if done == nil {
		return false
	}
	select {
	case <-done:
		return false
	default:
		return true
	}
}

// Stop terminates the control loop and waits for it to exit. Safe to
// call multiple times or before Connect.
func (s *Switch) Stop() {
	s.mu.Lock()
	cancel, done, conn := s.cancel, s.done, s.conn
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if s.cfg.Loops != nil && conn != nil {
		// No per-switch context watcher in group mode: unblock the
		// reader directly.
		conn.Close() //nolint:errcheck // stop path
	}
	if done != nil {
		<-done
	}
}

// controlLoop processes control messages strictly in order — the
// property that gives BARRIER_REQUEST its semantics: when the reply is
// sent, every earlier FlowMod has been applied.
func (s *Switch) controlLoop(ctx context.Context, conn *ofconn.Conn) {
	for {
		m, err := conn.ReadMessage()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logger.Warn("control connection read failed", "err", err)
			}
			return
		}
		// Control-channel latency: everything this switch does lags by
		// its own per-message delay, which is what desynchronizes
		// switches from each other.
		s.src.Sleep(s.cfg.CtrlLatency)

		if err := s.handle(conn, m); err != nil {
			s.logger.Warn("handling message failed", "type", m.MsgType().String(), "err", err)
			return
		}
		if ctx.Err() != nil {
			return
		}
	}
}

func (s *Switch) handle(conn *ofconn.Conn, m openflow.Message) error {
	switch msg := m.(type) {
	case *openflow.FlowMod:
		fd := s.src.Fault(s.cfg.Faults.FlowModFaults)
		if fd.Drop {
			// Lost on the channel before the switch processed it: the
			// rule never lands, yet a later barrier still replies — the
			// switch cannot acknowledge a message it never saw.
			metrics.FaultsInjected.Inc()
			return nil
		}
		if fd.Reordered {
			// The serial control loop cannot literally overtake itself;
			// holding the message (and everything behind it) back models
			// the rule taking effect later relative to other switches.
			metrics.FaultsInjected.Inc()
			s.clock.Sleep(fd.Delay)
		}
		applications := 1
		if fd.Dup {
			metrics.FaultsInjected.Inc()
			applications = 2
		}
		for i := 0; i < applications; i++ {
			s.src.Sleep(s.cfg.InstallLatency)
			if oferr := s.table.Apply(msg); oferr != nil {
				return conn.WriteMessage(oferr)
			}
		}
		// A duplicated delivery is still one logical FlowMod: the
		// counter (and the crash threshold keyed on it) counts messages.
		applied := s.flowModsApplied.Add(1)
		if s.crashIfDue(applied) {
			return fmt.Errorf("fault injection: disconnecting after %d flowmods", applied)
		}
		return nil
	case *openflow.BarrierRequest:
		s.barriersSeen.Add(1)
		if s.cfg.Faults.DropBarriers {
			return nil // fault injection: swallow the reply
		}
		fd := s.src.Fault(s.cfg.Faults.BarrierFaults)
		if fd.Drop {
			metrics.FaultsInjected.Inc()
			return nil
		}
		if fd.Reordered {
			metrics.FaultsInjected.Inc()
			s.clock.Sleep(fd.Delay)
		}
		reply := &openflow.BarrierReply{}
		reply.SetXid(msg.Xid())
		if err := conn.WriteMessage(reply); err != nil {
			return err
		}
		if fd.Dup {
			metrics.FaultsInjected.Inc()
			s.clock.Sleep(fd.Delay)
			return conn.WriteMessage(reply)
		}
		return nil
	case *openflow.EchoRequest:
		reply := &openflow.EchoReply{Data: msg.Data}
		reply.SetXid(msg.Xid())
		return conn.WriteMessage(reply)
	case *openflow.StatsRequest:
		reply := &openflow.StatsReply{Kind: openflow.StatsFlow, Flows: s.table.Stats()}
		reply.SetXid(msg.Xid())
		return conn.WriteMessage(reply)
	case *openflow.PacketOut:
		// The payload's first four bytes carry the flow's nw_dst (the
		// probe convention of this repository). OFPP_TABLE means "run
		// through my own flow table", i.e. start the data-plane walk
		// here; a concrete port starts it at that port's neighbor.
		if len(msg.Data) < 4 {
			return nil
		}
		nwDst := uint32(msg.Data[0])<<24 | uint32(msg.Data[1])<<16 | uint32(msg.Data[2])<<8 | uint32(msg.Data[3])
		start := s.cfg.Node
		if port, ok := outputPort(msg.Actions); ok && port != openflow.PortTable {
			next, isSwitch := s.fabric.Ports().PortNeighbor[s.cfg.Node][port]
			if !isSwitch {
				return nil // host port or invalid: nothing to walk
			}
			start = next
		}
		// Walk asynchronously: a packet in flight must not stall the
		// control loop (and hence barrier ordering).
		go s.fabric.Inject(start, nwDst, 4*s.fabric.Graph().NumNodes())
		s.packetOutsSeen.Add(1)
		return nil
	case *openflow.Vendor:
		// Decentralized execution: the controller pushes this switch's
		// plan partition once; the agent takes over from there.
		if msg.Vendor != planwire.VendorID {
			s.logger.Warn("unknown vendor message", "vendor", msg.Vendor)
			return nil
		}
		// Recovery handshake: a restarted controller asks what this
		// switch knows about a flow; answer from the live flow table
		// and the plan agent's memory.
		if planwire.IsStateQuery(msg.Data) {
			q, err := planwire.DecodeStateQuery(msg.Data)
			if err != nil {
				s.logger.Warn("bad state query", "err", err)
				e := &openflow.Error{ErrType: openflow.ErrTypeBadRequest, Code: openflow.ErrCodeBadType}
				e.SetXid(msg.Xid())
				return conn.WriteMessage(e)
			}
			rep := s.stateReport(q)
			v := &openflow.Vendor{Vendor: planwire.VendorID, Data: rep.Encode()}
			_, err = conn.Send(v)
			return err
		}
		push, err := planwire.DecodePush(msg.Data)
		if err != nil || push.Part.Switch != s.cfg.Node {
			s.logger.Warn("bad plan push", "err", err)
			e := &openflow.Error{ErrType: openflow.ErrTypeBadRequest, Code: openflow.ErrCodeBadType}
			e.SetXid(msg.Xid())
			return conn.WriteMessage(e)
		}
		s.agent.start(push, func(r *planwire.Report) error {
			v := &openflow.Vendor{Vendor: planwire.VendorID, Data: r.Encode()}
			_, err := conn.Send(v)
			return err
		})
		return nil
	case *openflow.Hello:
		return nil
	case *openflow.EchoReply, *openflow.BarrierReply, *openflow.Error:
		// Replies flowing switch-ward are controller bugs; log & drop.
		s.logger.Warn("unexpected reply on switch", "type", m.MsgType().String())
		return nil
	default:
		e := &openflow.Error{ErrType: openflow.ErrTypeBadRequest, Code: openflow.ErrCodeBadType}
		e.SetXid(m.Xid())
		return conn.WriteMessage(e)
	}
}

// stateReport answers a recovery StateQuery from local state only: the
// flow table (is a rule for the queried flow installed, and out which
// port does it forward?) and the plan agent's per-job completion
// memory. This local view is all a restarted controller needs to
// reconstruct the job's global order ideal.
func (s *Switch) stateReport(q *planwire.StateQuery) *planwire.StateReport {
	rep := &planwire.StateReport{
		Job:       q.Job,
		Switch:    s.cfg.Node,
		AgentDone: s.agent.doneNodes(q.Job),
	}
	ip := net.IPv4(byte(q.NWDst>>24), byte(q.NWDst>>16), byte(q.NWDst>>8), byte(q.NWDst))
	want := openflow.ExactNWDst(ip)
	for _, e := range s.table.Snapshot() {
		if e.Match != want {
			continue
		}
		rep.RulePresent = true
		for _, a := range e.Actions {
			if out, ok := a.(openflow.ActionOutput); ok {
				rep.OutPort = out.Port
				break
			}
		}
		break
	}
	return rep
}
