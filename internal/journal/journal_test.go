package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func sampleAdmit(job int) Record {
	return Record{
		Kind: KindAdmit,
		Job:  job,
		Admit: &Admit{
			Algorithm:   "peacock",
			Interval:    5 * time.Millisecond,
			Mode:        0,
			Recoverable: true,
			Old:         []uint64{1, 2, 3, 7},
			New:         []uint64{1, 4, 5, 7},
			Waypoint:    4,
			NWDst:       0x0a000002,
			Props:       7,
			Cleanup:     []int{4, 6},
			Plan:        []byte{'T', 'S', 'U', 'P', 1, 0},
		},
	}
}

func openTemp(t *testing.T) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, path
}

func TestJournalRoundTrip(t *testing.T) {
	j, path := openTemp(t)
	recs := []Record{
		sampleAdmit(1),
		{Kind: KindAdmit, Job: 2, Admit: &Admit{Algorithm: "two-phase", Mode: 0}},
		{Kind: KindDispatched, Job: 1, Node: 0},
		{Kind: KindConfirmed, Job: 1, Node: 0},
		{Kind: KindDispatched, Job: 1, Node: 2},
		{Kind: KindTerminal, Job: 2, Done: false, Error: "switch s4 unreachable"},
		{Kind: KindTerminal, Job: 1, Done: true},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append(%v): %v", r.Kind, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got := j2.Replayed()
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, want := range recs {
		g := got[i]
		if g.Kind != want.Kind || g.Job != want.Job || g.Node != want.Node ||
			g.Done != want.Done || g.Error != want.Error {
			t.Errorf("record %d: got %+v want %+v", i, g, want)
		}
		if (g.Admit == nil) != (want.Admit == nil) {
			t.Fatalf("record %d: admit presence mismatch", i)
		}
		if g.Admit != nil {
			ga, wa := g.Admit, want.Admit
			if ga.Algorithm != wa.Algorithm || ga.Interval != wa.Interval ||
				ga.Mode != wa.Mode || ga.Recoverable != wa.Recoverable ||
				ga.Waypoint != wa.Waypoint || ga.NWDst != wa.NWDst || ga.Props != wa.Props {
				t.Errorf("record %d admit: got %+v want %+v", i, ga, wa)
			}
			if !equalU64(ga.Old, wa.Old) || !equalU64(ga.New, wa.New) {
				t.Errorf("record %d paths: got %v/%v want %v/%v", i, ga.Old, ga.New, wa.Old, wa.New)
			}
			if !equalInt(ga.Cleanup, wa.Cleanup) {
				t.Errorf("record %d cleanup: got %v want %v", i, ga.Cleanup, wa.Cleanup)
			}
			if !bytes.Equal(ga.Plan, wa.Plan) {
				t.Errorf("record %d plan bytes: got %x want %x", i, ga.Plan, wa.Plan)
			}
		}
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInt(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A torn tail — any truncation of the file after the last intact
// record — must replay the full prefix and never error or panic, and
// Open must truncate the garbage so subsequent appends are readable.
func TestJournalTornTail(t *testing.T) {
	j, path := openTemp(t)
	if err := j.Append(sampleAdmit(1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: KindDispatched, Job: 1, Node: 0}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := len(magic); cut < len(whole); cut++ {
		data := whole[:cut]
		recs, valid, err := Replay(data)
		if err != nil {
			t.Fatalf("cut=%d: Replay error: %v", cut, err)
		}
		if valid > cut {
			t.Fatalf("cut=%d: valid prefix %d exceeds input", cut, valid)
		}
		// The prefix must be record-aligned: replaying just the valid
		// prefix yields the same records.
		recs2, valid2, err := Replay(data[:valid])
		if err != nil || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("cut=%d: prefix not stable (err=%v valid=%d/%d recs=%d/%d)",
				cut, err, valid2, valid, len(recs2), len(recs))
		}
	}

	// Open on a torn file truncates and appends cleanly after the tail.
	torn := append([]byte(nil), whole[:len(whole)-3]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatalf("Open torn: %v", err)
	}
	if n := len(j2.Replayed()); n != 1 {
		t.Fatalf("torn replay: %d records, want 1 (admit only)", n)
	}
	if err := j2.Append(Record{Kind: KindTerminal, Job: 1, Done: true}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if n := len(j3.Replayed()); n != 2 {
		t.Fatalf("after torn-tail append: %d records, want 2", n)
	}
}

// A grouped dispatched delta must round-trip its node list and fold to
// exactly the same dispatched set as the equivalent per-node appends.
func TestJournalDispatchedBatchReplayEquivalence(t *testing.T) {
	nodes := []int{0, 1, 5, 6, 42}

	jb, pathB := openTemp(t)
	if err := jb.Append(sampleAdmit(1)); err != nil {
		t.Fatal(err)
	}
	if err := jb.Append(Record{Kind: KindDispatchedBatch, Job: 1, Nodes: nodes}); err != nil {
		t.Fatal(err)
	}
	if err := jb.Close(); err != nil {
		t.Fatal(err)
	}

	jp, pathP := openTemp2(t)
	if err := jp.Append(sampleAdmit(1)); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if err := jp.Append(Record{Kind: KindDispatched, Job: 1, Node: n}); err != nil {
			t.Fatal(err)
		}
	}
	if err := jp.Close(); err != nil {
		t.Fatal(err)
	}

	fold := func(path string) map[int]bool {
		j, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		set := make(map[int]bool)
		for _, r := range j.Replayed() {
			switch r.Kind {
			case KindDispatched:
				set[r.Node] = true
			case KindDispatchedBatch:
				for _, n := range r.Nodes {
					set[n] = true
				}
			}
		}
		return set
	}
	batched, perNode := fold(pathB), fold(pathP)
	if len(batched) != len(nodes) || len(perNode) != len(nodes) {
		t.Fatalf("fold sizes: batch=%d per-node=%d want %d", len(batched), len(perNode), len(nodes))
	}
	for _, n := range nodes {
		if !batched[n] || !perNode[n] {
			t.Fatalf("node %d missing (batch=%v per-node=%v)", n, batched[n], perNode[n])
		}
	}

	// The batch record itself round-trips its exact node list.
	j2, err := Open(pathB)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Replayed()
	if len(recs) != 2 || recs[1].Kind != KindDispatchedBatch || !equalInt(recs[1].Nodes, nodes) {
		t.Fatalf("batch replay: %+v, want nodes %v", recs, nodes)
	}
}

func openTemp2(t *testing.T) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "jobs2.journal")
	j, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, path
}

// A batch record is atomic under a torn tail: any truncation inside the
// frame drops the whole group — never a partial node list — and the
// preceding records replay intact.
func TestJournalTornTailMidBatch(t *testing.T) {
	j, path := openTemp(t)
	if err := j.Append(sampleAdmit(1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: KindDispatched, Job: 1, Node: 0}); err != nil {
		t.Fatal(err)
	}
	batchStart := j.Size()
	if err := j.Append(Record{Kind: KindDispatchedBatch, Job: 1, Nodes: []int{1, 2, 3, 7, 19}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int(batchStart); cut < len(whole); cut++ {
		recs, valid, err := Replay(whole[:cut])
		if err != nil {
			t.Fatalf("cut=%d: Replay error: %v", cut, err)
		}
		if valid != int(batchStart) || len(recs) != 2 {
			t.Fatalf("cut=%d: valid=%d recs=%d, want prefix %d with 2 records", cut, valid, len(recs), batchStart)
		}
		for _, r := range recs {
			if r.Kind == KindDispatchedBatch {
				t.Fatalf("cut=%d: partial batch surfaced: %+v", cut, r)
			}
		}
	}
}

// Flipping any single byte inside a record frame must not produce a
// bogus record: replay stops at or before the corrupted frame.
func TestJournalCRCCorruption(t *testing.T) {
	j, path := openTemp(t)
	if err := j.Append(sampleAdmit(1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: KindTerminal, Job: 1, Done: true}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(magic); i < len(whole); i++ {
		data := append([]byte(nil), whole...)
		data[i] ^= 0xff
		recs, _, err := Replay(data)
		if err != nil {
			t.Fatalf("flip@%d: Replay error: %v", i, err)
		}
		if len(recs) > 2 {
			t.Fatalf("flip@%d: %d records from corrupt input", i, len(recs))
		}
		// A flip in the first frame must not let record 0 decode as
		// valid with altered content AND a matching CRC: CRC32 catches
		// all single-byte flips within a frame.
		if len(recs) >= 1 && recs[0].Kind != KindAdmit {
			t.Fatalf("flip@%d: first record kind %v", i, recs[0].Kind)
		}
	}
}

func TestJournalBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	if err := os.WriteFile(path, []byte("BOGUS"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrJournal) {
		t.Fatalf("Open bad header: err=%v, want ErrJournal", err)
	}
}

func TestJournalCompact(t *testing.T) {
	j, path := openTemp(t)
	for i := 0; i < 100; i++ {
		if err := j.Append(Record{Kind: KindDispatched, Job: 1, Node: i}); err != nil {
			t.Fatal(err)
		}
	}
	big := j.Size()
	live := []Record{sampleAdmit(7), {Kind: KindDispatched, Job: 7, Node: 0}}
	if err := j.Compact(live); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if j.Size() >= big {
		t.Fatalf("compact did not shrink: %d -> %d", big, j.Size())
	}
	// Appends continue on the compacted file.
	if err := j.Append(Record{Kind: KindTerminal, Job: 7, Done: true}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Replayed()
	if len(got) != 3 {
		t.Fatalf("after compact: %d records, want 3", len(got))
	}
	if got[0].Kind != KindAdmit || got[0].Job != 7 || got[2].Kind != KindTerminal {
		t.Fatalf("compacted contents wrong: %+v", got)
	}
}

// Crash fails every subsequent append with ErrCrashed: the file
// retains exactly the pre-crash bytes, like a kill -9, and callers
// with a write-ahead contract can see their record did not land.
func TestJournalCrash(t *testing.T) {
	j, path := openTemp(t)
	if err := j.Append(sampleAdmit(1)); err != nil {
		t.Fatal(err)
	}
	pre := j.Size()
	j.Crash()
	if err := j.Append(Record{Kind: KindTerminal, Job: 1, Done: true}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash append: err = %v, want ErrCrashed", err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if j.Size() != pre {
		t.Fatalf("post-crash append changed size: %d -> %d", pre, j.Size())
	}
	j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := len(j2.Replayed()); n != 1 {
		t.Fatalf("post-crash replay: %d records, want 1", n)
	}
}

func TestJournalOnAppend(t *testing.T) {
	j, _ := openTemp(t)
	defer j.Close()
	var kinds []Kind
	j.SetOnAppend(func(r Record) { kinds = append(kinds, r.Kind) })
	j.Append(sampleAdmit(1))                                 //nolint:errcheck
	j.Append(Record{Kind: KindDispatched, Job: 1})           //nolint:errcheck
	j.Append(Record{Kind: KindTerminal, Job: 1, Done: true}) //nolint:errcheck
	want := []Kind{KindAdmit, KindDispatched, KindTerminal}
	if len(kinds) != len(want) {
		t.Fatalf("hook saw %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", kinds, want)
		}
	}
}

// The per-node delta append path must not allocate: it runs once per
// FlowMod dispatch on the engine's hot path.
func TestJournalAppendAllocs(t *testing.T) {
	j, _ := openTemp(t)
	defer j.Close()
	if err := j.Append(sampleAdmit(1)); err != nil {
		t.Fatal(err)
	}
	rec := Record{Kind: KindDispatched, Job: 1, Node: 3}
	// Warm the scratch buffer, then pin.
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("delta append allocates %.1f/op, want 0", allocs)
	}
}

// FuzzJournalReplay: replay never panics on adversarial bytes; every
// decoded record re-encodes to frame bytes that decode identically
// (decode→encode identity); and the valid prefix is stable under
// re-replay.
func FuzzJournalReplay(f *testing.F) {
	seed := append([]byte(nil), magic[:]...)
	seed = appendRecord(seed, sampleAdmit(1))
	seed = appendRecord(seed, Record{Kind: KindDispatched, Job: 1, Node: 0})
	seed = appendRecord(seed, Record{Kind: KindDispatchedBatch, Job: 1, Nodes: []int{1, 2, 4, 9}})
	seed = appendRecord(seed, Record{Kind: KindConfirmed, Job: 1, Node: 0})
	seed = appendRecord(seed, Record{Kind: KindTerminal, Job: 1, Error: "rollback"})
	f.Add(seed)
	f.Add(magic[:])
	f.Add([]byte{})
	f.Add(append(append([]byte(nil), magic[:]...), 0x03, 0x01, 0x00, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := Replay(data)
		if err != nil {
			return // bad header: fine, as long as no panic
		}
		if valid > len(data) {
			t.Fatalf("valid prefix %d exceeds input %d", valid, len(data))
		}
		// Prefix stability.
		recs2, valid2, err2 := Replay(data[:valid])
		if err2 != nil || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("unstable prefix: err=%v valid=%d/%d recs=%d/%d",
				err2, valid2, valid, len(recs2), len(recs))
		}
		// Decode→encode identity: re-encoding the decoded records must
		// reproduce the valid prefix byte-for-byte (canonical varints
		// guarantee a unique encoding per record).
		buf := append([]byte(nil), magic[:]...)
		for _, r := range recs {
			buf = appendRecord(buf, r)
		}
		if !bytes.Equal(buf, data[:valid]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", buf, data[:valid])
		}
	})
}

// BenchmarkJournalCompaction measures the snapshot+truncate path under
// large job state — the journal a 100k-switch soak tier accumulates:
// many live jobs, each with its admit spec, a wide grouped dispatched
// frontier, and a long confirmed tail. Reported metrics: ns/op for one
// full Compact (encode + write + fsync + rename) plus the snapshot
// size it writes.
func BenchmarkJournalCompaction(b *testing.B) {
	const (
		jobs      = 96
		batchW    = 512 // grouped dispatched frontier per job
		confirmed = 256 // confirmed deltas per job
	)
	live := make([]Record, 0, jobs*(confirmed+2))
	batch := make([]int, batchW)
	for i := range batch {
		batch[i] = i
	}
	for job := 1; job <= jobs; job++ {
		live = append(live, sampleAdmit(job))
		live = append(live, Record{Kind: KindDispatchedBatch, Job: job, Nodes: batch})
		for n := 0; n < confirmed; n++ {
			live = append(live, Record{Kind: KindConfirmed, Job: job, Node: n})
		}
	}
	path := filepath.Join(b.TempDir(), "jobs.journal")
	j, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	if err := j.Compact(live); err != nil {
		b.Fatal(err)
	}
	snapshot := j.Size()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Compact(live); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(snapshot), "snapshot_bytes")
	b.ReportMetric(float64(len(live)), "records")
}

func BenchmarkJournalAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "jobs.journal")
	j, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(sampleAdmit(1)); err != nil {
		b.Fatal(err)
	}
	rec := Record{Kind: KindDispatched, Job: 1, Node: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
