// Package journal is the controller's write-ahead job journal: an
// append-only binary log of job state transitions that survives a
// controller crash, so a restarted engine can tell exactly which jobs
// were queued, which were mid-flight (and how far their dispatched and
// confirmed frontiers had advanced), and which had already retired.
//
// The record taxonomy mirrors the engine's lifecycle:
//
//   - admit: the job's full recovery spec, written before anything is
//     dispatched — id, algorithm, interval, mode, and (for recoverable
//     single-flow jobs) the update instance, the flow match, the
//     property set, and the execution DAG in the canonical plan codec,
//     plus which DAG nodes are cleanup nodes.
//   - dispatched / confirmed: one per-node delta each, appended the
//     moment the engine marks the node dispatched (write-ahead: the
//     record hits the file before the FlowMod leaves) or confirmed.
//     When one barrier reply releases a whole frontier, the engine
//     groups the newly-ready nodes into a single dispatched-batch
//     record — one append and one fsync window instead of k — that
//     replays exactly like k per-node dispatched deltas.
//   - terminal: the job retired (done, or failed with an error).
//
// Framing follows the house codec style (canonical uvarints, strict
// decoding): each record is `uvarint(len(payload)) || payload ||
// crc32(payload)`, after a fixed "TSUJ"+version header. Replay accepts
// the longest valid prefix — a torn tail (truncated frame, bad CRC,
// malformed payload) ends replay without error, exactly the state a
// kill -9 mid-append leaves behind — and Open truncates the tail so
// new appends continue from the last intact record.
//
// Appends are fsync-batched: admit and terminal records sync
// immediately (they gate correctness decisions on restart), per-node
// deltas sync every syncEvery appends. The delta append path is
// allocation-free in steady state (see the alloc pin in the tests).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// ErrJournal marks malformed journal data; match with errors.Is.
var ErrJournal = errors.New("malformed journal")

// magic and version open every journal file.
var magic = [5]byte{'T', 'S', 'U', 'J', 1}

// Record kinds.
type Kind uint8

const (
	KindAdmit      Kind = 1
	KindDispatched Kind = 2
	KindConfirmed  Kind = 3
	KindTerminal   Kind = 4
	// KindDispatchedBatch is a grouped dispatched delta: one record (and
	// one fsync window) covering every node a single barrier reply
	// released, semantically identical to that many KindDispatched
	// records in ascending node order.
	KindDispatchedBatch Kind = 5
)

func (k Kind) String() string {
	switch k {
	case KindAdmit:
		return "admit"
	case KindDispatched:
		return "dispatched"
	case KindConfirmed:
		return "confirmed"
	case KindTerminal:
		return "terminal"
	case KindDispatchedBatch:
		return "dispatched-batch"
	}
	return "unknown"
}

// Admit is the recovery spec journaled at admission. Recoverable jobs
// (single-flow scheduled or planned updates) carry everything needed
// to rebuild the execution DAG and its rollback spec; non-recoverable
// shapes (joint updates, two-phase) journal only their identity and
// fail on restart when caught non-terminal.
type Admit struct {
	Algorithm string
	Interval  time.Duration
	Mode      uint8 // controller-driven (0) or decentralized (1)

	// Recoverable gates the fields below.
	Recoverable bool

	// Old and New are the update instance's paths (datapath ids in
	// forwarding order); Waypoint is 0 when the policy has none.
	Old, New []uint64
	Waypoint uint64

	// NWDst identifies the flow (IPv4 in host byte order); the engine
	// rebuilds the exact-match from it.
	NWDst uint32

	// Props is the property set the rollback must uphold
	// (core.Property bits).
	Props uint64

	// Cleanup lists the DAG node indices that are garbage-collection
	// nodes (ascending).
	Cleanup []int

	// Plan is the execution DAG in the canonical plan codec
	// (core.EncodePlan), covering update and cleanup nodes alike.
	Plan []byte
}

// Record is one journal entry.
type Record struct {
	Kind Kind
	Job  int

	// Node is the plan-node index of dispatched/confirmed deltas.
	Node int

	// Nodes are the plan-node indices of a grouped dispatched delta,
	// strictly ascending (the codec delta-encodes gaps, like
	// Admit.Cleanup).
	Nodes []int

	// Done and Error describe terminal records.
	Done  bool
	Error string

	// Admit is set on admit records.
	Admit *Admit
}

// syncEvery batches fsyncs on the delta path: at most this many
// dispatched/confirmed appends ride between two syncs. Admit and
// terminal records always sync.
const syncEvery = 32

// Journal is an open write-ahead journal. Safe for concurrent use.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	buf      []byte // reused append scratch: frame head + payload + crc
	size     int64
	unsynced int
	crashed  bool
	replayed []Record
	onAppend func(Record)
}

// Open opens (or creates) the journal at path, replays the longest
// valid record prefix, and truncates any torn tail so appends continue
// from the last intact record. The replayed records are available via
// Replayed.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, fmt.Errorf("journal: read: %w", err)
	}
	j := &Journal{f: f, path: path}
	if len(data) == 0 {
		if _, err := f.Write(magic[:]); err != nil {
			f.Close() //nolint:errcheck // already failing
			return nil, fmt.Errorf("journal: writing header: %w", err)
		}
		j.size = int64(len(magic))
		return j, nil
	}
	recs, valid, err := Replay(data)
	if err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, err
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close() //nolint:errcheck // already failing
			return nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, fmt.Errorf("journal: seek: %w", err)
	}
	j.size = int64(valid)
	j.replayed = recs
	return j, nil
}

// Replay decodes records from raw journal bytes, returning the decoded
// records and the byte length of the valid prefix. A short or corrupt
// header is an error; a torn tail after a valid header is not — replay
// simply stops there. Replay never panics on adversarial input.
func Replay(data []byte) (recs []Record, valid int, err error) {
	if len(data) < len(magic) || [5]byte(data[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("journal: bad header: %w", ErrJournal)
	}
	off := len(magic)
	for off < len(data) {
		n, ln := binary.Uvarint(data[off:])
		if ln <= 0 || n > uint64(len(data)) {
			break // torn length
		}
		head := off + ln
		if head+int(n)+4 > len(data) {
			break // torn payload or CRC
		}
		payload := data[head : head+int(n)]
		want := binary.BigEndian.Uint32(data[head+int(n):])
		if crc32.ChecksumIEEE(payload) != want {
			break // corrupt frame
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			break // well-framed garbage: still a torn tail, not a panic
		}
		recs = append(recs, rec)
		off = head + int(n) + 4
	}
	return recs, off, nil
}

// Replayed returns the records Open recovered from the file, in append
// order. The slice is owned by the journal; do not mutate.
func (j *Journal) Replayed() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Size returns the journal's current byte size.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// SetOnAppend installs a hook invoked after each record is appended,
// outside the journal lock — the hook may call Crash to simulate the
// process dying right after the record hit the file (crash-at-boundary
// suites count dispatched records here). Call before the journal is in
// use.
func (j *Journal) SetOnAppend(fn func(Record)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.onAppend = fn
}

// ErrCrashed is returned by Append after Crash. Callers with a
// write-ahead contract must treat it as "the record is NOT durable":
// in particular the engine refuses to dispatch a node whose
// dispatched delta failed to journal.
var ErrCrashed = errors.New("journal: crashed")

// Crash simulates the process dying at this instant: every future
// Append fails with ErrCrashed, and Sync and Compact become silent
// no-ops, so whatever bytes reached the file so far are exactly what
// a restarted controller will replay. Test instrumentation — a real
// kill needs no cooperation.
func (j *Journal) Crash() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.crashed = true
}

// Append journals one record. Admit and terminal records sync to disk
// before returning; per-node deltas are write-through to the OS but
// fsync-batched. The delta path reuses the journal's scratch buffer
// and allocates nothing in steady state.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	if j.crashed {
		j.mu.Unlock()
		return ErrCrashed
	}
	j.buf = appendRecord(j.buf[:0], rec)
	if _, err := j.f.Write(j.buf); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(j.buf))
	j.unsynced++
	if rec.Kind == KindAdmit || rec.Kind == KindTerminal || j.unsynced >= syncEvery {
		if err := j.f.Sync(); err != nil {
			j.mu.Unlock()
			return fmt.Errorf("journal: sync: %w", err)
		}
		j.unsynced = 0
	}
	fn := j.onAppend
	j.mu.Unlock()
	if fn != nil {
		fn(rec)
	}
	return nil
}

// Sync flushes batched delta appends to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.crashed || j.unsynced == 0 {
		return nil
	}
	j.unsynced = 0
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Compact atomically replaces the journal's contents with the given
// records — the snapshot+truncate step a recovered controller runs
// once the replayed state has been folded, so the file stays
// proportional to live state instead of total history. The replacement
// is crash-safe: records are written to a temp file, synced, and
// renamed over the journal.
func (j *Journal) Compact(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.crashed {
		return nil
	}
	tmp, err := os.CreateTemp(dirOf(j.path), ".journal-compact-*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
	buf := append([]byte(nil), magic[:]...)
	for _, rec := range recs {
		buf = appendRecord(buf, rec)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close() //nolint:errcheck // already failing
		return fmt.Errorf("journal: compact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //nolint:errcheck // already failing
		return fmt.Errorf("journal: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact reopen: %w", err)
	}
	j.f.Close() //nolint:errcheck // superseded by the compacted file
	j.f = f
	j.size = int64(len(buf))
	j.unsynced = 0
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if !j.crashed && j.unsynced > 0 {
		j.f.Sync() //nolint:errcheck // best effort on close
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// appendRecord frames one record onto buf: uvarint payload length,
// payload, big-endian CRC32 of the payload.
func appendRecord(buf []byte, rec Record) []byte {
	start := len(buf)
	// Reserve a maximal (10-byte) length prefix, encode the payload in
	// place, then move it down over the canonical-length prefix — one
	// pass, no second buffer.
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	payloadStart := len(buf)
	buf = appendPayload(buf, rec)
	payload := buf[payloadStart:]
	var head [10]byte
	hn := binary.PutUvarint(head[:], uint64(len(payload)))
	copy(buf[start:], head[:hn])
	n := copy(buf[start+hn:], payload)
	buf = buf[:start+hn+n]
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf[start+hn:]))
	return append(buf, crc[:]...)
}

// appendPayload encodes a record's payload (kind byte first).
func appendPayload(buf []byte, rec Record) []byte {
	buf = append(buf, byte(rec.Kind))
	buf = binary.AppendUvarint(buf, uint64(rec.Job))
	switch rec.Kind {
	case KindDispatched, KindConfirmed:
		buf = binary.AppendUvarint(buf, uint64(rec.Node))
	case KindDispatchedBatch:
		buf = binary.AppendUvarint(buf, uint64(len(rec.Nodes)))
		prev := -1
		for _, idx := range rec.Nodes {
			if prev < 0 {
				buf = binary.AppendUvarint(buf, uint64(idx))
			} else {
				buf = binary.AppendUvarint(buf, uint64(idx-prev-1))
			}
			prev = idx
		}
	case KindTerminal:
		done := byte(0)
		if rec.Done {
			done = 1
		}
		buf = append(buf, done)
		buf = binary.AppendUvarint(buf, uint64(len(rec.Error)))
		buf = append(buf, rec.Error...)
	case KindAdmit:
		a := rec.Admit
		buf = binary.AppendUvarint(buf, uint64(len(a.Algorithm)))
		buf = append(buf, a.Algorithm...)
		buf = binary.AppendUvarint(buf, uint64(a.Interval))
		buf = append(buf, a.Mode)
		flags := byte(0)
		if a.Recoverable {
			flags |= 1
		}
		buf = append(buf, flags)
		if a.Recoverable {
			buf = binary.AppendUvarint(buf, uint64(len(a.Old)))
			for _, v := range a.Old {
				buf = binary.AppendUvarint(buf, v)
			}
			buf = binary.AppendUvarint(buf, uint64(len(a.New)))
			for _, v := range a.New {
				buf = binary.AppendUvarint(buf, v)
			}
			buf = binary.AppendUvarint(buf, a.Waypoint)
			buf = binary.BigEndian.AppendUint32(buf, a.NWDst)
			buf = binary.AppendUvarint(buf, a.Props)
			// Cleanup indices delta-encoded like the plan codec's deps:
			// first absolute, then gaps minus one.
			buf = binary.AppendUvarint(buf, uint64(len(a.Cleanup)))
			prev := -1
			for _, idx := range a.Cleanup {
				if prev < 0 {
					buf = binary.AppendUvarint(buf, uint64(idx))
				} else {
					buf = binary.AppendUvarint(buf, uint64(idx-prev-1))
				}
				prev = idx
			}
			buf = binary.AppendUvarint(buf, uint64(len(a.Plan)))
			buf = append(buf, a.Plan...)
		}
	}
	return buf
}

// maxList bounds decoded list lengths (paths, cleanup sets, plan and
// error byte lengths) against adversarial payloads.
const maxList = 1 << 26

// decodeRecord parses one record payload with the house sticky-cursor
// discipline: canonical uvarints only, trailing bytes rejected.
func decodeRecord(payload []byte) (Record, error) {
	d := decoder{buf: payload}
	rec := Record{Kind: Kind(d.byte())}
	rec.Job = int(d.uvarint())
	switch rec.Kind {
	case KindDispatched, KindConfirmed:
		rec.Node = int(d.uvarint())
	case KindDispatchedBatch:
		n := d.uvarint()
		if n > maxList {
			return rec, fmt.Errorf("journal: %d-node dispatch batch: %w", n, ErrJournal)
		}
		prev := -1
		for i := 0; i < int(n) && d.err == nil; i++ {
			// Wrapping int arithmetic on both sides keeps decode→encode
			// identity even for adversarial out-of-range gaps.
			prev += int(d.uvarint()) + 1
			rec.Nodes = append(rec.Nodes, prev)
		}
	case KindTerminal:
		rec.Done = d.byte() == 1
		n := d.uvarint()
		if n > maxList {
			return rec, fmt.Errorf("journal: %d-byte error string: %w", n, ErrJournal)
		}
		rec.Error = string(d.take(int(n)))
	case KindAdmit:
		a := &Admit{}
		n := d.uvarint()
		if n > maxList {
			return rec, fmt.Errorf("journal: %d-byte algorithm: %w", n, ErrJournal)
		}
		a.Algorithm = string(d.take(int(n)))
		a.Interval = time.Duration(d.uvarint())
		a.Mode = d.byte()
		flags := d.byte()
		a.Recoverable = flags&1 != 0
		if a.Recoverable {
			a.Old = d.idList()
			a.New = d.idList()
			a.Waypoint = d.uvarint()
			if b := d.take(4); b != nil {
				a.NWDst = binary.BigEndian.Uint32(b)
			}
			a.Props = d.uvarint()
			cn := d.uvarint()
			if cn > maxList {
				return rec, fmt.Errorf("journal: %d cleanup nodes: %w", cn, ErrJournal)
			}
			prev := -1
			for i := 0; i < int(cn) && d.err == nil; i++ {
				v := int(d.uvarint())
				if prev < 0 {
					prev = v
				} else {
					prev += v + 1
				}
				a.Cleanup = append(a.Cleanup, prev)
			}
			pn := d.uvarint()
			if pn > maxList {
				return rec, fmt.Errorf("journal: %d-byte plan: %w", pn, ErrJournal)
			}
			a.Plan = append([]byte(nil), d.take(int(pn))...)
		}
		rec.Admit = a
	default:
		return rec, fmt.Errorf("journal: record kind %d: %w", rec.Kind, ErrJournal)
	}
	if d.err != nil {
		return rec, d.err
	}
	if d.off != len(d.buf) {
		return rec, fmt.Errorf("journal: %d trailing bytes: %w", len(d.buf)-d.off, ErrJournal)
	}
	return rec, nil
}

// decoder is the sticky-error cursor of the house codec style. Unlike
// encoding/binary's Uvarint it rejects non-minimal encodings, so every
// record has exactly one byte representation (decode→encode identity).
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("journal: truncated record: %w", ErrJournal)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	out := d.buf[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 || (n > 1 && d.buf[d.off+n-1] == 0) {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) idList() []uint64 {
	n := d.uvarint()
	if n > maxList {
		d.fail()
		return nil
	}
	var out []uint64
	for i := 0; i < int(n) && d.err == nil; i++ {
		out = append(out, d.uvarint())
	}
	return out
}
