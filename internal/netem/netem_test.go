package netem

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if d := Fixed(3 * time.Millisecond).Sample(rng); d != 3*time.Millisecond {
		t.Fatalf("fixed sample = %v", d)
	}
	if d := Fixed(-5).Sample(rng); d != 0 {
		t.Fatalf("negative fixed = %v", d)
	}
	if Fixed(time.Second).String() == "" {
		t.Fatal("empty string")
	}
}

func TestUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := Uniform{Min: time.Millisecond, Max: 4 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := u.Sample(rng)
		if d < u.Min || d > u.Max {
			t.Fatalf("uniform sample %v outside [%v,%v]", d, u.Min, u.Max)
		}
	}
	// Swapped bounds are tolerated.
	sw := Uniform{Min: 4 * time.Millisecond, Max: time.Millisecond}
	for i := 0; i < 100; i++ {
		d := sw.Sample(rng)
		if d < time.Millisecond || d > 4*time.Millisecond {
			t.Fatalf("swapped-bounds sample %v", d)
		}
	}
	if d := (Uniform{Min: 5, Max: 5}).Sample(rng); d != 5 {
		t.Fatalf("degenerate uniform = %v", d)
	}
	if d := (Uniform{Min: -10, Max: -5}).Sample(rng); d < 0 {
		t.Fatalf("negative uniform = %v", d)
	}
}

func TestNormalNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := Normal{Mean: time.Millisecond, Stddev: 2 * time.Millisecond}
	for i := 0; i < 2000; i++ {
		if d := n.Sample(rng); d < 0 {
			t.Fatalf("normal sample negative: %v", d)
		}
	}
}

func TestNormalMeanRoughlyRight(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := Normal{Mean: 10 * time.Millisecond, Stddev: time.Millisecond}
	var sum time.Duration
	const iters = 5000
	for i := 0; i < iters; i++ {
		sum += n.Sample(rng)
	}
	mean := sum / iters
	if mean < 9*time.Millisecond || mean > 11*time.Millisecond {
		t.Fatalf("empirical mean %v, want ≈10ms", mean)
	}
}

func TestParetoBoundsAndTail(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Pareto{Scale: time.Millisecond, Alpha: 1.2}
	sawTail := false
	for i := 0; i < 5000; i++ {
		d := p.Sample(rng)
		if d < p.Scale {
			t.Fatalf("pareto sample %v below scale", d)
		}
		if d > 100*time.Millisecond {
			t.Fatalf("pareto sample %v above default cap", d)
		}
		if d > 10*time.Millisecond {
			sawTail = true
		}
	}
	if !sawTail {
		t.Fatal("heavy tail never materialized in 5000 samples")
	}
	if d := (Pareto{Scale: 0}).Sample(rng); d != 0 {
		t.Fatalf("zero-scale pareto = %v", d)
	}
	capd := Pareto{Scale: time.Millisecond, Alpha: 0.5, Cap: 2 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		if d := capd.Sample(rng); d > 2*time.Millisecond {
			t.Fatalf("cap violated: %v", d)
		}
	}
}

func TestSourceDeterminism(t *testing.T) {
	a, b := NewSource(99), NewSource(99)
	dist := Uniform{Min: 0, Max: time.Second}
	for i := 0; i < 100; i++ {
		if a.Sample(dist) != b.Sample(dist) {
			t.Fatal("same-seed sources disagree")
		}
	}
	if a.Int63n(1000) != b.Int63n(1000) {
		t.Fatal("Int63n disagrees")
	}
}

func TestSourceNilDist(t *testing.T) {
	s := NewSource(1)
	if d := s.Sample(nil); d != 0 {
		t.Fatalf("nil dist sample = %v", d)
	}
	if d := s.Sleep(nil); d != 0 {
		t.Fatalf("nil dist sleep = %v", d)
	}
}

func TestSourceConcurrentUse(t *testing.T) {
	s := NewSource(7)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				s.Sample(Uniform{Min: 0, Max: time.Microsecond})
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestSleepActuallySleeps(t *testing.T) {
	s := NewSource(8)
	start := time.Now()
	d := s.Sleep(Fixed(5 * time.Millisecond))
	if d != 5*time.Millisecond {
		t.Fatalf("sleep returned %v", d)
	}
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("slept only %v", elapsed)
	}
}

// TestQuickAllDistributionsNonNegative property-tests the invariant
// every Latency implementation promises.
func TestQuickAllDistributionsNonNegative(t *testing.T) {
	f := func(seed int64, a, b int32, alpha float64) bool {
		rng := rand.New(rand.NewSource(seed))
		dists := []Latency{
			Fixed(time.Duration(a)),
			Uniform{Min: time.Duration(a), Max: time.Duration(b)},
			Normal{Mean: time.Duration(a), Stddev: time.Duration(b)},
			Pareto{Scale: time.Duration(a), Alpha: alpha},
		}
		for _, d := range dists {
			for i := 0; i < 20; i++ {
				if d.Sample(rng) < 0 {
					return false
				}
			}
			if d.String() == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultDeterminism(t *testing.T) {
	f := Faults{DropProb: 0.2, DupProb: 0.1, ReorderProb: 0.3, ReorderDelay: Fixed(2 * time.Millisecond)}
	draw := func(seed int64, n int) []FaultDecision {
		src := NewSource(seed)
		out := make([]FaultDecision, n)
		for i := range out {
			out[i] = src.Fault(f)
		}
		return out
	}
	a, b := draw(42, 500), draw(42, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across same-seed sources: %+v vs %+v", i, a[i], b[i])
		}
	}
	// The model must actually inject: with these rates, 500 draws
	// without a single fault would be a broken generator.
	some := false
	for _, d := range a {
		if d.Drop || d.Dup || d.Reordered {
			some = true
		}
		if d.Drop && (d.Dup || d.Reordered || d.Delay != 0) {
			t.Fatalf("dropped message carries extra fates: %+v", d)
		}
		if (d.Dup || d.Reordered) && d.Delay <= 0 {
			t.Fatalf("dup/reordered decision without delay: %+v", d)
		}
	}
	if !some {
		t.Fatal("no fault injected in 500 draws")
	}
	if c := draw(43, 500); func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestFaultZeroModelInjectsNothing(t *testing.T) {
	src := NewSource(7)
	for i := 0; i < 100; i++ {
		if d := src.Fault(Faults{}); d != (FaultDecision{}) {
			t.Fatalf("zero model injected %+v", d)
		}
	}
	if (Faults{}).Active() {
		t.Fatal("zero model reports active")
	}
}
