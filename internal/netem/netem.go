// Package netem models the asynchrony of the SDN control channel: the
// per-message latencies that make FlowMods "take effect out of order"
// across switches (the paper's core problem statement), and the
// rule-installation delays of real switches (Kuzniar, Peresini, Kostic,
// PAM'15 — cited by the paper — report variable, sometimes
// heavy-tailed flow-table update latencies).
//
// All randomness is drawn from explicitly seeded sources so that every
// experiment in this repository is reproducible run-to-run.
package netem

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"tsu/internal/simclock"
)

// Latency is a samplable delay distribution.
type Latency interface {
	// Sample draws one delay; implementations never return a negative
	// duration.
	Sample(rng *rand.Rand) time.Duration
	String() string
}

// Fixed is a constant delay (zero models an ideal channel).
type Fixed time.Duration

// Sample returns the constant delay.
func (f Fixed) Sample(*rand.Rand) time.Duration {
	if f < 0 {
		return 0
	}
	return time.Duration(f)
}

func (f Fixed) String() string { return fmt.Sprintf("fixed(%v)", time.Duration(f)) }

// Uniform draws uniformly from [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

// Sample draws from the interval; a degenerate interval behaves like
// Fixed(Min).
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	lo, hi := u.Min, u.Max
	if hi < lo {
		lo, hi = hi, lo
	}
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)+1))
}

func (u Uniform) String() string { return fmt.Sprintf("uniform(%v..%v)", u.Min, u.Max) }

// Normal draws from a truncated-at-zero normal distribution — the
// common-case model for control-channel RTT jitter.
type Normal struct {
	Mean, Stddev time.Duration
}

// Sample draws one delay, truncating negatives to zero.
func (n Normal) Sample(rng *rand.Rand) time.Duration {
	d := time.Duration(rng.NormFloat64()*float64(n.Stddev) + float64(n.Mean))
	if d < 0 {
		return 0
	}
	return d
}

func (n Normal) String() string { return fmt.Sprintf("normal(μ=%v,σ=%v)", n.Mean, n.Stddev) }

// Pareto draws from a bounded Pareto distribution — the heavy-tailed
// model for switch rule-installation latency (occasional multi-ms
// stalls, after the PAM'15 measurements).
type Pareto struct {
	Scale time.Duration // minimum delay (x_m)
	Alpha float64       // tail index; smaller = heavier tail
	Cap   time.Duration // upper bound; zero means 100× scale
}

// Sample draws one delay.
func (p Pareto) Sample(rng *rand.Rand) time.Duration {
	scale := p.Scale
	if scale <= 0 {
		return 0
	}
	alpha := p.Alpha
	if alpha <= 0 {
		alpha = 1.5
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	d := time.Duration(float64(scale) / math.Pow(u, 1/alpha))
	capAt := p.Cap
	if capAt <= 0 {
		capAt = 100 * scale
	}
	if d > capAt {
		d = capAt
	}
	return d
}

func (p Pareto) String() string {
	return fmt.Sprintf("pareto(xm=%v,α=%.2f)", p.Scale, p.Alpha)
}

// Source is a mutex-guarded seeded random source usable from many
// goroutines (switches sample concurrently). Delays elapse on the
// source's clock: the wall clock by default, or a simclock.Sim so that
// sampled latencies cost virtual instead of wall-clock time.
type Source struct {
	mu    sync.Mutex
	rng   *rand.Rand
	clock simclock.Clock
}

// NewSource returns a deterministic source for the seed, sleeping on
// the wall clock.
func NewSource(seed int64) *Source {
	return NewSourceClock(seed, nil)
}

// NewSourceClock returns a deterministic source whose Sleep elapses on
// the given clock (nil selects the wall clock).
func NewSourceClock(seed int64, c simclock.Clock) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed)), clock: simclock.Or(c)}
}

// Sample draws from dist using the guarded RNG.
func (s *Source) Sample(dist Latency) time.Duration {
	if dist == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return dist.Sample(s.rng)
}

// Int63n draws a uniform integer in [0, n) using the guarded RNG.
func (s *Source) Int63n(n int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Int63n(n)
}

// Sleep samples dist and sleeps that long on the source's clock (no-op
// for zero delays).
func (s *Source) Sleep(dist Latency) time.Duration {
	d := s.Sample(dist)
	if d > 0 {
		s.clock.Sleep(d)
	}
	return d
}

// Float64 draws a uniform float in [0, 1) using the guarded RNG.
func (s *Source) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}

// Faults is a seeded probabilistic fault model for one message class
// of the control channel (FlowMods toward switches, acks back, peer
// releases between switches). Each message independently draws its
// fate from the owning Source, so a fixed seed pins the exact fault
// sequence — fault experiments are reproducible like latency ones.
//
// The zero value injects nothing.
type Faults struct {
	// DropProb is the probability a message is silently lost.
	DropProb float64

	// DupProb is the probability a message is delivered twice (the
	// duplicate follows after ReorderDelay). Idempotent receivers —
	// OpenFlow MODIFY, the plan agents' seen-set — must absorb it.
	DupProb float64

	// ReorderProb is the probability a message is held back by an
	// extra ReorderDelay, letting later messages overtake it.
	ReorderProb float64

	// ReorderDelay is the extra delay of reordered (and duplicated)
	// deliveries; nil means 1ms fixed.
	ReorderDelay Latency
}

// Active reports whether the model can inject any fault.
func (f Faults) Active() bool {
	return f.DropProb > 0 || f.DupProb > 0 || f.ReorderProb > 0
}

func (f Faults) String() string {
	return fmt.Sprintf("faults(drop=%.3f dup=%.3f reorder=%.3f)", f.DropProb, f.DupProb, f.ReorderProb)
}

// FaultDecision is one message's drawn fate.
type FaultDecision struct {
	// Drop: the message never arrives.
	Drop bool
	// Dup: deliver the message a second time, Delay after the first.
	Dup bool
	// Reordered: hold the first delivery back by Delay, letting later
	// messages overtake it.
	Reordered bool
	// Delay: the extra latency — before first delivery when Reordered,
	// before the duplicate when Dup. Zero when neither fired.
	Delay time.Duration
}

// Fault draws one message's fate from the model. All draws come from
// the guarded RNG in a fixed order (drop, dup, reorder, delay), so a
// single-goroutine caller gets a bit-reproducible fault sequence per
// seed.
func (s *Source) Fault(f Faults) FaultDecision {
	if !f.Active() {
		return FaultDecision{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var d FaultDecision
	if f.DropProb > 0 && s.rng.Float64() < f.DropProb {
		d.Drop = true
		return d
	}
	if f.DupProb > 0 && s.rng.Float64() < f.DupProb {
		d.Dup = true
	}
	if f.ReorderProb > 0 && s.rng.Float64() < f.ReorderProb {
		d.Reordered = true
	}
	if d.Reordered || d.Dup {
		dist := f.ReorderDelay
		if dist == nil {
			dist = Fixed(time.Millisecond)
		}
		d.Delay = dist.Sample(s.rng)
	}
	return d
}
