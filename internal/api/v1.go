// Package api defines the wire schema of the controller's versioned
// /v1 REST surface: batch flow-update submission, job status and
// streaming watch events, dry-run verification, and the operational
// probes. The server (internal/controller) and the typed SDK
// (internal/client) share these types, so a request marshalled by the
// client is by construction the request the server decodes.
//
// The legacy paper-schema routes (POST /update, GET /update/{id}, ...)
// remain available as thin adapters over the same v1 core; their types
// live with the server.
package api

import (
	"time"

	"tsu/internal/topo"
)

// Error is the structured error envelope every handler returns on
// failure: a human-readable message plus a machine-readable code (one
// of the Code* constants below), alongside the HTTP status.
type Error struct {
	Message string `json:"error"`
	Code    int    `json:"code"`
	// Plan carries the best-so-far plan shape when a synthesis budget
	// is exceeded (CodeSynthBudget); nil otherwise.
	Plan *PlanShape `json:"plan,omitempty"`
}

// Machine-readable error codes carried in Error.Code.
const (
	// CodeInvalidJSON: the request body is not valid JSON.
	CodeInvalidJSON = 1001
	// CodeInvalidPath: a path is malformed (shorter than 2 nodes,
	// repeated nodes, endpoint mismatch between old and new).
	CodeInvalidPath = 1002
	// CodeInvalidWaypoint: the waypoint is not strictly interior to
	// both paths.
	CodeInvalidWaypoint = 1003
	// CodeInvalidMatch: the flow match (nw_dst) is not an IPv4 address.
	CodeInvalidMatch = 1004
	// CodeUnknownAlgorithm: the algorithm name is not registered.
	CodeUnknownAlgorithm = 1005
	// CodeInvalidInterval: the inter-round interval is negative.
	CodeInvalidInterval = 1006
	// CodeEmptyBatch: the batch contains no updates.
	CodeEmptyBatch = 1007
	// CodeScheduleFailed: the scheduler rejected the instance (e.g.
	// wayup without a waypoint).
	CodeScheduleFailed = 1008
	// CodeUnknownJob: no job with the requested id.
	CodeUnknownJob = 1009
	// CodeBadRequest: other malformed request input (bad job id, bad
	// dpid, unknown filter value, ...).
	CodeBadRequest = 1010
	// CodeQueueFull: the engine's admission limit is reached.
	CodeQueueFull = 1011
	// CodeUnknownProperty: a verify property name is not recognized.
	CodeUnknownProperty = 1012
	// CodeSwitchUnavailable: a referenced switch is not connected or
	// not in the topology.
	CodeSwitchUnavailable = 1013
	// CodeInternal: unexpected server-side failure.
	CodeInternal = 1014
	// CodeSynthBudget: the per-request synthesis budget was exceeded
	// before the "synth" scheduler found a verified plan; Error.Plan
	// holds the best-so-far plan shape.
	CodeSynthBudget = 1015
)

// FlowUpdate is one entry of a batch: migrate one flow from its old
// path to its new path. Paths list datapath ids in forwarding order.
type FlowUpdate struct {
	OldPath []uint64 `json:"oldpath"`
	NewPath []uint64 `json:"newpath"`
	// Waypoint is an optional middlebox that must never be bypassed
	// (0 = none); it must lie strictly inside both paths.
	Waypoint uint64 `json:"wp,omitempty"`
	// Algorithm selects the scheduler: any registered name (see
	// core.Names) or "two-phase". Empty picks wayup when a waypoint is
	// set, peacock otherwise.
	Algorithm string `json:"algorithm,omitempty"`
	// NWDst identifies the flow (IPv4 destination), e.g. "10.0.0.2".
	NWDst string `json:"nw_dst"`
	// Properties optionally names the transient-consistency
	// properties the scheduler must preserve ("no-blackhole",
	// "waypoint", "relaxed-lf", "strong-lf"); empty uses the
	// scheduler's defaults. Schedulers that take a property target
	// (sequential, optimal) honor it.
	Properties []string `json:"properties,omitempty"`
	// Plan selects the execution-plan shape: "layered" (or empty)
	// executes the schedule's rounds as a layered dependency DAG —
	// bit-identical to global-barrier rounds — while "sparse" asks the
	// scheduler for a pruned DAG whose edges are only those its safety
	// argument needs (falling back to layered when the scheduler has
	// no sparse form). The response's PlanShape reports what ran.
	Plan string `json:"plan,omitempty"`
	// Mode selects the dispatch path: "controller" (or empty) keeps
	// the controller in the loop for every happens-before edge, while
	// "decentralized" broadcasts per-switch plan partitions once and
	// lets the switches release each other peer-to-peer, reporting
	// back only on completion.
	Mode string `json:"mode,omitempty"`
	// SynthBudget caps the CEGIS refinements when Algorithm is
	// "synth" (0 = server default, which also arms the heuristic
	// portfolio fallback). A positive budget runs pure synthesis; if
	// the oracle still finds violations past it, the request fails
	// with a 400/CodeSynthBudget error whose Plan field reports the
	// best-so-far plan shape.
	SynthBudget int `json:"synth_budget,omitempty"`
}

// PlanShape summarizes an execution plan's DAG on the wire: how many
// per-switch installs it has, how many happens-before edges, its
// depth (layers — for a round schedule, the round count), width (peak
// install parallelism), critical path (sequential barrier waits on
// the longest dependency chain), and whether edges were pruned below
// the layered closure.
type PlanShape struct {
	Nodes        int  `json:"nodes"`
	Edges        int  `json:"edges"`
	Depth        int  `json:"depth"`
	Width        int  `json:"width"`
	CriticalPath int  `json:"critical_path"`
	Sparse       bool `json:"sparse,omitempty"`
}

// InstallStatus reports one confirmed per-switch install of the
// ack-driven dispatcher, including the dependency edge that released
// it: ReleasedBy is the switch whose barrier reply unblocked this
// install (0 for installs with no dependencies).
type InstallStatus struct {
	Switch     uint64 `json:"switch"`
	Layer      int    `json:"layer"`
	ReleasedBy uint64 `json:"released_by,omitempty"`
	FlowMods   int    `json:"flowmods"`
	Cleanup    bool   `json:"cleanup,omitempty"`
	Micros     int64  `json:"us"`
}

// BatchUpdateRequest is the body of POST /v1/updates: a batch of flow
// updates plus batch-level options. Both validation and admission are
// atomic — if any entry is invalid or the engine cannot admit the
// whole batch, nothing is submitted.
type BatchUpdateRequest struct {
	Updates []FlowUpdate `json:"updates"`
	// Interval pauses between rounds, in milliseconds.
	Interval int `json:"interval,omitempty"`
	// Cleanup appends a garbage-collection round per flow deleting the
	// old policy's stale rules.
	Cleanup bool `json:"cleanup,omitempty"`
	// DryRun computes and returns the schedules without submitting
	// anything to the engine or the switches.
	DryRun bool `json:"dry_run,omitempty"`
}

// AcceptedUpdate reports one accepted (or dry-run planned) flow update.
type AcceptedUpdate struct {
	// ID is the job id to poll or watch (0 on dry-run).
	ID         int        `json:"id,omitempty"`
	Algorithm  string     `json:"algorithm"`
	Rounds     [][]uint64 `json:"rounds,omitempty"`
	Guarantees string     `json:"guarantees"`
	Compromise bool       `json:"loop_freedom_compromised,omitempty"`
	// Plan is the execution DAG's shape (depth, width, critical path).
	Plan *PlanShape `json:"plan,omitempty"`
}

// BatchUpdateResponse is the body answering POST /v1/updates.
type BatchUpdateResponse struct {
	DryRun  bool             `json:"dry_run,omitempty"`
	Updates []AcceptedUpdate `json:"updates"`
}

// RoundStatus reports one executed round.
type RoundStatus struct {
	Round    int      `json:"round"`
	Switches []uint64 `json:"switches"`
	Micros   int64    `json:"us"`
	Cleanup  bool     `json:"cleanup,omitempty"`
}

// Duration returns the round's wall-clock time.
func (r RoundStatus) Duration() time.Duration {
	return time.Duration(r.Micros) * time.Microsecond
}

// MessageCount is one switch's message tally for a job: Ctrl counts
// controller↔switch messages (FlowMods, barriers and replies, or
// partition push + completion report), Peer counts direct
// switch↔switch dependency acks (decentralized mode only).
type MessageCount struct {
	Switch uint64 `json:"switch,omitempty"`
	Ctrl   int    `json:"ctrl"`
	Peer   int    `json:"peer,omitempty"`
}

// StuckNode is one installed-but-not-rolled-back switch in a failure
// report, with the switches whose uninstall must come first (the
// reverse plan's unmet dependencies).
type StuckNode struct {
	Switch    uint64   `json:"switch"`
	WaitingOn []uint64 `json:"waiting_on,omitempty"`
}

// FailureReport is the structured outcome of a job that aborted
// mid-plan, attached to JobStatus when State is "failed". Phase tells
// how far recovery got: "aborted" (nothing to roll back, or a job
// shape the engine cannot reverse), "rolled-back" (the reverse plan
// verified safe and every installed node was undone), "rollback-
// failed" (verified but execution failed partway), or "stuck" (the
// reverse plan did not verify safe; rules were left in place).
type FailureReport struct {
	Phase string `json:"phase"`
	// TriggeringFault describes the failure that aborted the plan.
	TriggeringFault string `json:"triggering_fault,omitempty"`
	// Installed lists the switches whose installs were confirmed
	// before the abort; RolledBack lists the switches undone (it may
	// exceed Installed — dispatched-but-unconfirmed nodes are reversed
	// too, with idempotent undo mods).
	Installed  []uint64 `json:"installed,omitempty"`
	RolledBack []uint64 `json:"rolled_back,omitempty"`
	// RollbackVerified reports whether the reverse plan passed
	// verification before anything was undone.
	RollbackVerified bool `json:"rollback_verified,omitempty"`
	// Stuck lists installed nodes left in place with their blocking
	// dependencies (phases "stuck" and "rollback-failed").
	Stuck []StuckNode `json:"stuck,omitempty"`
}

// JobStatus reports a job's progress (GET /v1/updates/{id}).
type JobStatus struct {
	ID          int           `json:"id"`
	State       string        `json:"state"` // queued | running | done | failed
	Algorithm   string        `json:"algorithm"`
	Error       string        `json:"error,omitempty"`
	TotalMicros int64         `json:"total_us"`
	Rounds      []RoundStatus `json:"rounds"`
	// Mode is the dispatch path that ran ("controller" or
	// "decentralized").
	Mode string `json:"mode,omitempty"`
	// Plan is the execution DAG's shape.
	Plan *PlanShape `json:"plan,omitempty"`
	// Installs is the per-switch install trace in confirmation order;
	// each entry records which dependency edge released the install.
	Installs []InstallStatus `json:"installs,omitempty"`
	// Messages is the job's total message tally; MessagesPerSwitch
	// breaks it down by switch in ascending switch order.
	Messages          *MessageCount  `json:"messages,omitempty"`
	MessagesPerSwitch []MessageCount `json:"messages_per_switch,omitempty"`
	// Failure is the structured abort outcome (failed jobs only).
	Failure *FailureReport `json:"failure,omitempty"`
	// Recovered marks a job reconstructed from the journal after a
	// controller restart; Adopted additionally marks a mid-flight job
	// whose journal and switch state reconciled, so execution resumed
	// from the recovered frontier instead of rolling back.
	Recovered bool `json:"recovered,omitempty"`
	Adopted   bool `json:"adopted,omitempty"`
}

// TotalDuration returns the job's wall-clock time (zero while
// unfinished).
func (s JobStatus) TotalDuration() time.Duration {
	return time.Duration(s.TotalMicros) * time.Microsecond
}

// Terminal reports whether the job has finished (done or failed).
func (s JobStatus) Terminal() bool { return s.State == "done" || s.State == "failed" }

// Watch event types (WatchEvent.Type).
const (
	// EventInstall: one per-switch install confirmed (Install is set).
	EventInstall = "install"
	// EventRound: one round (layer) completed (Round is set).
	EventRound = "round"
	// EventDone: the job finished successfully (terminal).
	EventDone = "done"
	// EventFailed: the job failed (terminal; Error is set).
	EventFailed = "failed"
)

// WatchEvent is one Server-Sent Event of GET /v1/updates/{id}/watch.
// A watch replays the installs and rounds already executed, then
// streams live progress, and always ends with a terminal done/failed
// event.
type WatchEvent struct {
	Type        string         `json:"type"`
	Job         int            `json:"job"`
	Round       *RoundStatus   `json:"round,omitempty"`
	Install     *InstallStatus `json:"install,omitempty"`
	Error       string         `json:"error,omitempty"`
	TotalMicros int64          `json:"total_us,omitempty"`
}

// VerifyRequest is the body of POST /v1/verify: plan the batch and
// verify every schedule against the requested transient-consistency
// properties — a pure dry run, nothing reaches the switches.
type VerifyRequest struct {
	Updates []FlowUpdate `json:"updates"`
	// Properties to check: "no-blackhole", "waypoint", "relaxed-lf",
	// "strong-lf". Empty verifies each schedule's own guarantees (the
	// one-shot baseline, which guarantees nothing, is checked against
	// the consistent schedulers' properties so the dry run shows what
	// would break).
	Properties []string `json:"properties,omitempty"`
	// Samples per round when the exact subset search exceeds its
	// budget (0 = verifier default).
	Samples int `json:"samples,omitempty"`
	// Seed makes sampled verification reproducible.
	Seed int64 `json:"seed,omitempty"`
}

// Violation is a found counterexample: a reachable transient state
// whose forwarding walk violates a property.
type Violation struct {
	Round    int      `json:"round"`
	Property string   `json:"property"`
	Walk     []uint64 `json:"walk"`
	// Updated lists the in-flight switches of the violating subset.
	Updated []uint64 `json:"updated,omitempty"`
}

// VerifyResult is one flow's verification verdict.
type VerifyResult struct {
	Algorithm  string     `json:"algorithm"`
	Rounds     [][]uint64 `json:"rounds"`
	Guarantees string     `json:"guarantees"`
	Properties string     `json:"properties"` // what was actually checked
	OK         bool       `json:"ok"`
	Exact      bool       `json:"exact"` // exhaustive vs sampled
	// Plan is the shape of the verified execution DAG; sparse plans
	// are verified over every order ideal instead of round states.
	Plan      *PlanShape `json:"plan,omitempty"`
	Violation *Violation `json:"violation,omitempty"`
}

// VerifyResponse answers POST /v1/verify. OK is the conjunction over
// all results.
type VerifyResponse struct {
	OK      bool           `json:"ok"`
	Results []VerifyResult `json:"results"`
}

// ExploreRequest is the body of POST /v1/explore: plan the batch and
// run the adversarial interleaving explorer against every schedule —
// a pure dry run, nothing reaches the switches. Where /v1/verify
// answers "is this schedule safe?", /v1/explore answers "show me the
// FlowMod delivery trace that breaks it": it enumerates every
// delivery interleaving of small rounds (exhaustively, a proof) and
// samples seeded uniform plus heavy-tail-biased delivery orders for
// large ones, checking transient security after every single event.
type ExploreRequest struct {
	Updates []FlowUpdate `json:"updates"`
	// Properties to check after every event: "no-blackhole",
	// "waypoint", "relaxed-lf", "strong-lf". The same precedence as
	// /v1/verify applies: per-update properties, then this set, then
	// the schedule's own guarantees (one-shot gets the consistent
	// schedulers' properties, so the dry run shows what breaks).
	Properties []string `json:"properties,omitempty"`
	// MaxExhaustive bounds the round size explored exhaustively
	// (0 = explorer default, 18; capped at 20).
	MaxExhaustive int `json:"max_exhaustive,omitempty"`
	// Samples is the number of delivery orders replayed per
	// larger-than-exhaustive round (0 = explorer default, 256).
	Samples int `json:"samples,omitempty"`
	// Seed makes sampled exploration reproducible.
	Seed int64 `json:"seed,omitempty"`
}

// TraceEvent is one FlowMod taking effect at one switch.
type TraceEvent struct {
	Round  int    `json:"round"`
	Switch uint64 `json:"switch"`
}

// TraceViolation is a found counterexample: a minimized FlowMod
// delivery trace whose replay violates a property.
type TraceViolation struct {
	Round    int    `json:"round"`
	Property string `json:"property"`
	// Trace is the minimized delivery sequence: replaying exactly
	// these events after the earlier rounds still violates, and
	// dropping any single event makes it pass.
	Trace []TraceEvent `json:"trace"`
	Walk  []uint64     `json:"walk"`
	// Updated lists the violating state's in-flight switches.
	Updated []uint64 `json:"updated,omitempty"`
}

// ExploreResult is one flow's exploration verdict.
type ExploreResult struct {
	Algorithm  string     `json:"algorithm"`
	Rounds     [][]uint64 `json:"rounds"`
	Guarantees string     `json:"guarantees"`
	Properties string     `json:"properties"` // what was actually checked
	OK         bool       `json:"ok"`
	// Exhaustive: every round's full interleaving space was covered
	// (the verdict is a proof); otherwise sampled orders were replayed.
	Exhaustive bool `json:"exhaustive"`
	// Events counts per-event property checks performed.
	Events int `json:"events"`
	// Plan is the shape of the explored execution DAG.
	Plan      *PlanShape      `json:"plan,omitempty"`
	Violation *TraceViolation `json:"violation,omitempty"`
}

// ExploreResponse answers POST /v1/explore. OK is the conjunction
// over all results.
type ExploreResponse struct {
	OK      bool            `json:"ok"`
	Results []ExploreResult `json:"results"`
}

// PolicyRequest installs a complete routing policy along a path
// (POST /v1/policies): every switch forwards the flow to its
// successor; the final switch delivers to the named host when set.
type PolicyRequest struct {
	Path  []uint64 `json:"path"`
	NWDst string   `json:"nw_dst"`
	Host  string   `json:"host,omitempty"`
}

// FromPath converts a topology path to its wire form.
func FromPath(p topo.Path) []uint64 {
	out := make([]uint64, len(p))
	for i, n := range p {
		out[i] = uint64(n)
	}
	return out
}

// ToPath converts a wire path back to a topology path.
func ToPath(ids []uint64) topo.Path {
	p := make(topo.Path, len(ids))
	for i, v := range ids {
		p[i] = topo.NodeID(v)
	}
	return p
}

// FromRounds converts a schedule's rounds to their wire form.
func FromRounds(rounds [][]topo.NodeID) [][]uint64 {
	out := make([][]uint64, len(rounds))
	for i, r := range rounds {
		out[i] = FromPath(topo.Path(r))
	}
	return out
}

// Healthz answers GET /v1/healthz — the load-balancer/ops probe.
type Healthz struct {
	Status string `json:"status"` // always "ok" when the handler answers
	// Switches is the number of connected datapaths.
	Switches int `json:"switches"`
	// QueueDepth counts jobs admitted but not yet executing.
	QueueDepth int `json:"queue_depth"`
	// Running counts jobs currently executing rounds.
	Running int `json:"running"`
	// Workers is the engine's concurrency limit.
	Workers int `json:"workers"`
	// UptimeMicros is how long the controller has been running, on its
	// own clock (virtual under simulated time).
	UptimeMicros int64 `json:"uptime_us,omitempty"`
	// Journal reports the job journal's state; nil when the controller
	// runs without durability.
	Journal *JournalStatus `json:"journal,omitempty"`
	// RecoveredJobs counts non-terminal jobs the last restart brought
	// back (re-queued, adopted, or rolled back); AdoptedJobs counts the
	// subset resumed from their recovered frontier.
	RecoveredJobs int `json:"recovered_jobs,omitempty"`
	AdoptedJobs   int `json:"adopted_jobs,omitempty"`
	// Dispatch reports the sharded dispatch path's live state.
	Dispatch *DispatchHealth `json:"dispatch,omitempty"`
}

// DispatchHealth describes the sharded ack-driven dispatch path: how
// deep the ready queue is, how many installs each shard currently has
// on the wire, and how well writes and journal appends are batching.
type DispatchHealth struct {
	// Shards is the number of dispatch event loops (switch connections
	// map to shards by dpid).
	Shards int `json:"shards"`
	// ReadyDepth counts installs journaled and released but not yet
	// handed to a shard.
	ReadyDepth int64 `json:"ready_depth"`
	// InFlight is the per-shard count of installs written to a switch
	// and awaiting a barrier reply.
	InFlight []int64 `json:"in_flight"`
	// BatchedWrites counts coalesced buffered writes; BatchMeanMsgs and
	// BatchMaxMsgs describe how many OpenFlow messages each carried.
	BatchedWrites uint64  `json:"batched_writes"`
	BatchMeanMsgs float64 `json:"batch_mean_msgs"`
	BatchMaxMsgs  uint64  `json:"batch_max_msgs"`
	// JournalBatchMean and JournalBatchMax describe the width (nodes per
	// append) of grouped dispatched-delta journal records.
	JournalBatchMean float64 `json:"journal_batch_mean"`
	JournalBatchMax  uint64  `json:"journal_batch_max"`
	// AcksDropped counts barrier replies that found the job's ack
	// channel full (the install is then resolved by its round timeout).
	AcksDropped uint64 `json:"acks_dropped"`
}

// Uptime returns the controller's uptime as a duration.
func (h Healthz) Uptime() time.Duration {
	return time.Duration(h.UptimeMicros) * time.Microsecond
}

// JournalStatus describes the controller's write-ahead job journal.
type JournalStatus struct {
	Enabled   bool   `json:"enabled"`
	Path      string `json:"path,omitempty"`
	SizeBytes int64  `json:"size_bytes,omitempty"`
}
