package metrics

import (
	"math/bits"
	"sync/atomic"
)

// Gauge is a process-wide level indicator, safe for concurrent use:
// unlike a Counter it goes down as well as up. The sharded dispatcher
// tracks its queue depths and in-flight installs with gauges; the
// /v1/healthz probe reads them live.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set forces the gauge to n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicHistBuckets bounds the power-of-two bucket range: bucket i
// counts observations whose bit length is i (0, 1, 2-3, 4-7, ...), and
// the last bucket absorbs everything beyond 2^18.
const atomicHistBuckets = 20

// AtomicHist is a concurrency-safe size histogram with power-of-two
// buckets — the cheap shape for "how wide are the coalesced batches"
// style questions asked from many goroutines at once. Observe is a
// handful of atomic adds; there is no lock and no allocation. For the
// offline, full-resolution analysis path use Histogram instead.
type AtomicHist struct {
	n, sum  atomic.Int64
	max     atomic.Int64
	buckets [atomicHistBuckets]atomic.Int64
}

// Observe records one value (negatives clamp to zero).
func (h *AtomicHist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.n.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	i := bits.Len64(uint64(v))
	if i >= atomicHistBuckets {
		i = atomicHistBuckets - 1
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations.
func (h *AtomicHist) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *AtomicHist) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (zero when empty).
func (h *AtomicHist) Max() int64 { return h.max.Load() }

// Mean returns the average observed value (zero when empty).
func (h *AtomicHist) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Buckets returns a snapshot of the power-of-two bucket counts: index
// i holds the number of observations v with bits.Len64(v) == i.
func (h *AtomicHist) Buckets() []int64 {
	out := make([]int64, atomicHistBuckets)
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Dispatch-path instruments, fed by the controller's sharded
// dispatcher and surfaced on /v1/healthz:
var (
	// DispatchReadyDepth gauges how many journaled installs are queued
	// (released and write-ahead logged, waiting for their send slot or
	// interval pause) across all running jobs.
	DispatchReadyDepth Gauge

	// DispatchBatchMsgs sizes the coalesced southbound writes: OpenFlow
	// messages (FlowMods plus barriers) per buffered connection write.
	DispatchBatchMsgs AtomicHist

	// JournalBatchWidth sizes the grouped dispatched-delta appends:
	// plan nodes covered per write-ahead journal record.
	JournalBatchWidth AtomicHist

	// DispatchAcksDropped counts install acknowledgements dropped on a
	// full ack channel — a stale reply outliving its job, or severe
	// backpressure; a dropped live ack surfaces as a barrier timeout.
	DispatchAcksDropped Counter
)
