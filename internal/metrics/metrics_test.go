package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram must be all zeros")
	}
	if h.Summary() == "" {
		t.Fatal("summary empty")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.N() != 100 {
		t.Fatalf("n = %d", h.N())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := h.Percentile(50); got < 49*time.Millisecond || got > 51*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(95); got < 94*time.Millisecond || got > 96*time.Millisecond {
		t.Fatalf("p95 = %v", got)
	}
	if h.Percentile(0) != h.Min() || h.Percentile(100) != h.Max() {
		t.Fatal("percentile extremes wrong")
	}
}

func TestHistogramUnsortedInsertions(t *testing.T) {
	var h Histogram
	for _, ms := range []int{50, 10, 90, 30, 70} {
		h.Record(time.Duration(ms) * time.Millisecond)
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 90*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Interleave recording and querying: sorted flag must reset.
	h.Record(5 * time.Millisecond)
	if h.Min() != 5*time.Millisecond {
		t.Fatal("sorted flag stale after Record")
	}
}

func TestRound(t *testing.T) {
	if got := Round(123456 * time.Nanosecond); got != 120*time.Microsecond {
		t.Fatalf("Round(123.456µs) = %v", got)
	}
	if got := Round(2345 * time.Millisecond); got != 2345*time.Millisecond {
		t.Fatalf("Round(2.345s) = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("algo", "rounds", "time")
	tbl.AddRow("wayup", 3, 1500*time.Microsecond)
	tbl.AddRow("oneshot", 1, 2.5)
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "algo") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "wayup") || !strings.Contains(lines[2], "1.5ms") {
		t.Fatalf("row: %q", lines[2])
	}
	if !strings.Contains(lines[3], "2.50") {
		t.Fatalf("float row: %q", lines[3])
	}
	// Columns aligned: "rounds" column starts at the same offset.
	idx0 := strings.Index(lines[0], "rounds")
	for _, ln := range lines[2:] {
		if len(ln) < idx0 {
			t.Fatalf("short row %q", ln)
		}
	}
}

func TestTableFprintPropagatesWrites(t *testing.T) {
	tbl := NewTable("a")
	tbl.AddRow(1)
	var sb strings.Builder
	if err := tbl.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() == 0 {
		t.Fatal("nothing written")
	}
}
