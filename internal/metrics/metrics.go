// Package metrics provides the small measurement toolkit the
// experiment harness uses: duration histograms with percentile
// summaries and fixed-width text tables matching the repository's
// experiment output format.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Histogram accumulates duration samples. The zero value is ready to
// use. Not safe for concurrent use; callers aggregate per goroutine.
type Histogram struct {
	samples []time.Duration
	sorted  bool
}

// Record adds a sample.
func (h *Histogram) Record(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Merge folds another histogram's samples into h — the aggregation
// step when workers accumulate per-shard histograms.
func (h *Histogram) Merge(o *Histogram) {
	h.samples = append(h.samples, o.samples...)
	h.sorted = false
}

func (h *Histogram) sortSamples() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank; zero when empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(p/100*float64(len(h.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return h.samples[rank]
}

// Min returns the smallest sample (zero when empty).
func (h *Histogram) Min() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	return h.samples[0]
}

// Max returns the largest sample (zero when empty).
func (h *Histogram) Max() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	return h.samples[len(h.samples)-1]
}

// Mean returns the arithmetic mean (zero when empty).
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Summary renders "n=… mean=… p50=… p95=… max=…".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s max=%s",
		h.N(), Round(h.Mean()), Round(h.Percentile(50)), Round(h.Percentile(95)), Round(h.Max()))
}

// Round trims a duration to a readable precision (10µs granularity
// under a second, 1ms above).
func Round(d time.Duration) time.Duration {
	if d < time.Second {
		return d.Round(10 * time.Microsecond)
	}
	return d.Round(time.Millisecond)
}

// Table renders fixed-width experiment tables.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = Round(v).String()
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b) // strings.Builder never errors
	return b.String()
}
