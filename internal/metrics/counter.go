package metrics

import "sync/atomic"

// Counter is a process-wide monotonic event counter, safe for
// concurrent use. The fault-and-recovery layer increments the package
// counters below from the controller engine and the fault injectors;
// tests and experiments read (or Swap-reset) them to assert how often
// each recovery path fired.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Swap resets the counter to zero and returns the previous count —
// the idiom for per-run deltas in tests and experiments.
func (c *Counter) Swap() int64 { return c.v.Swap(0) }

// Fault-and-recovery counters, incremented across the repository:
var (
	// FaultsInjected counts messages the fault model dropped,
	// duplicated or reordered (netem.Faults decisions that fired,
	// plus switchsim crashes).
	FaultsInjected Counter

	// InstallsRolledBack counts per-switch installs undone by an
	// executed rollback plan.
	InstallsRolledBack Counter

	// Aborts counts jobs that aborted mid-plan (whether or not the
	// subsequent rollback verified safe).
	Aborts Counter

	// Stalls counts jobs that ended stuck: aborted with a rollback
	// that did not verify safe (or failed mid-rollback), leaving
	// installed nodes in place.
	Stalls Counter

	// JobsRecovered counts non-terminal jobs a restarted controller
	// reconstructed from its journal (queued re-admissions plus
	// mid-flight reconciliations).
	JobsRecovered Counter

	// JobsAdopted counts recovered mid-flight jobs whose journal and
	// switch state agreed, letting the engine resume dispatch from the
	// recovered frontier instead of rolling back.
	JobsAdopted Counter

	// RecoveryRollbacks counts recovered mid-flight jobs that fell into
	// the verified rollback path (journal/switch discrepancy, or
	// unreachable switches).
	RecoveryRollbacks Counter
)
