package trace

import (
	"context"
	"net"
	"testing"
	"time"

	"tsu/internal/controller"
	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/openflow"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// liveBed wires a controller and a full switch fleet over loopback TCP
// with jittery control channels, installs the old Fig.1 policy, and
// returns everything needed to run updates under live probing.
type liveBed struct {
	ctrl   *controller.Controller
	fabric *switchsim.Fabric
}

func newLiveBed(t *testing.T, jitter netem.Latency, install netem.Latency) *liveBed {
	t.Helper()
	g := topo.Fig1()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	ctrl, err := controller.New(controller.Config{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := ctrl.Start(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fabric := switchsim.NewFabric(g)
	for _, n := range g.Nodes() {
		sw, err := switchsim.NewSwitch(fabric, switchsim.Config{
			Node:           n,
			CtrlLatency:    jitter,
			InstallLatency: install,
			Source:         netem.NewSource(int64(n) * 7919),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Connect(ctx, addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sw.Stop)
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, 10*time.Second)
	defer waitCancel()
	if err := ctrl.WaitForSwitches(waitCtx, g.NumNodes()); err != nil {
		t.Fatal(err)
	}

	installCtx, installCancel := context.WithTimeout(ctx, 30*time.Second)
	defer installCancel()
	match := openflow.ExactNWDst(net.ParseIP("10.0.0.2"))
	if err := ctrl.InstallPath(installCtx, topo.Fig1OldPath, match, "h2"); err != nil {
		t.Fatal(err)
	}
	return &liveBed{ctrl: ctrl, fabric: fabric}
}

// runUpdateUnderProbes executes the schedule while probing, returning
// the probe stats collected strictly during the update window.
func runUpdateUnderProbes(t *testing.T, bed *liveBed, sched *core.Schedule, in *core.Instance) Stats {
	t.Helper()
	match := openflow.ExactNWDst(net.ParseIP("10.0.0.2"))
	prober := NewProber(bed.fabric, Config{
		Ingress:  1,
		NWDst:    0x0a000002,
		Waypoint: topo.Fig1Waypoint,
		Interval: 50 * time.Microsecond,
	})
	stop := prober.Start(context.Background())
	job, err := bed.ctrl.Engine().Submit(in, sched, match, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	return stop()
}

// TestLiveWayUpNeverViolatesWaypoint is the demo's headline: under a
// jittery asynchronous control channel, the WayUp schedule keeps every
// delivered probe crossing the waypoint, with no blackholes, while the
// one-shot baseline (TestLiveOneShotViolates) does not.
func TestLiveWayUpNeverViolatesWaypoint(t *testing.T) {
	bed := newLiveBed(t,
		netem.Uniform{Min: 0, Max: 2 * time.Millisecond},
		netem.Uniform{Min: 500 * time.Microsecond, Max: 2 * time.Millisecond})
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	st := runUpdateUnderProbes(t, bed, sched, in)
	if st.Sent < 50 {
		t.Fatalf("too few probes (%d) to be meaningful", st.Sent)
	}
	if st.Violations() != 0 {
		t.Fatalf("wayup violated transit security: %+v (first: %+v)", st, st.FirstViolation)
	}
	// And the final state forwards on the new path.
	res := bed.fabric.Inject(1, 0x0a000002, 64)
	if res.Outcome != switchsim.ProbeDelivered || !res.Visited.Equal(topo.Fig1NewPath) {
		t.Fatalf("final path = %+v", res)
	}
}

// TestLiveOneShotViolates demonstrates the problem the paper solves:
// without rounds and barriers, some interleaving of rule installations
// lets probes bypass the waypoint or blackhole. A single run may get
// lucky, so several attempts with distinct seeds are allowed; across
// them the baseline must violate at least once (with Fig.1's dangerous
// ordering — new-path switches gaining rules before their upstreams —
// violations are the overwhelmingly common case).
func TestLiveOneShotViolates(t *testing.T) {
	violations := 0
	const attempts = 5
	for i := 0; i < attempts; i++ {
		bed := newLiveBed(t,
			netem.Uniform{Min: 0, Max: 4 * time.Millisecond},
			netem.Uniform{Min: 500 * time.Microsecond, Max: 4 * time.Millisecond})
		in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
		st := runUpdateUnderProbes(t, bed, core.OneShot(in), in)
		violations += st.Violations()
	}
	if violations == 0 {
		t.Fatalf("one-shot produced zero violations across %d jittered runs", attempts)
	}
}
