package trace

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/openflow"
	"tsu/internal/simclock"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// virtualFig1Fabric builds the Fig.1 data plane on a virtual clock with
// the old policy installed directly into the flow tables (no TCP, no
// goroutines — everything that follows happens inside the sim's event
// loop).
func virtualFig1Fabric(t *testing.T, sim *simclock.Sim) *switchsim.Fabric {
	t.Helper()
	g := topo.Fig1()
	fabric := switchsim.NewFabric(g)
	for _, n := range g.Nodes() {
		if _, err := switchsim.NewSwitch(fabric, switchsim.Config{Node: n, Clock: sim}); err != nil {
			t.Fatal(err)
		}
	}
	match := openflow.ExactNWDst(fig1FlowIP())
	ports := fabric.Ports()
	path := topo.Fig1OldPath
	for i := 0; i+1 < len(path); i++ {
		applyMod(t, fabric, path[i], match, ports.Port(path[i], path[i+1]))
	}
	applyMod(t, fabric, path.Dst(), match, ports.HostPort[path.Dst()]["h2"])
	return fabric
}

func fig1FlowIP() []byte { return []byte{10, 0, 0, 2} }

func applyMod(t *testing.T, f *switchsim.Fabric, node topo.NodeID, match openflow.Match, port uint16) {
	t.Helper()
	if port == 0 {
		t.Fatalf("no port wired out of switch %d", node)
	}
	fm := &openflow.FlowMod{
		Match:    match,
		Command:  openflow.FlowAdd,
		Priority: 100,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{openflow.ActionOutput{Port: port}},
	}
	if oferr := f.Switch(node).Table().Apply(fm); oferr != nil {
		t.Fatalf("applying flowmod at %d: %v", node, oferr.Error())
	}
}

// runVirtualLiveUpdate executes the WayUp Fig.1 update entirely in
// virtual time: per round, every switch's FlowMod takes effect at a
// seeded random instant; barriers separate rounds (round r+1's
// deliveries start after round r's last); a probe fires every 50µs of
// virtual time throughout. It returns the probe stats plus a
// bit-exact event log of every rule install and every probe.
func runVirtualLiveUpdate(t *testing.T, seed int64) (Stats, string) {
	t.Helper()
	sim := simclock.NewSim(time.Time{})
	fabric := virtualFig1Fabric(t, sim)
	src := netem.NewSourceClock(seed, sim)
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}

	var log strings.Builder
	match := openflow.ExactNWDst(fig1FlowIP())
	ports := fabric.Ports()
	jitter := netem.Uniform{Min: 0, Max: 3 * time.Millisecond}
	install := netem.Uniform{Min: 500 * time.Microsecond, Max: 2 * time.Millisecond}

	// Materialize every delivery upfront (sampling order is the
	// deterministic round order); rounds barrier on the previous
	// round's slowest install.
	base := time.Duration(0)
	for r, round := range sched.Rounds {
		roundEnd := base
		for _, v := range round {
			v := v
			at := base + src.Sample(jitter) + src.Sample(install)
			if at > roundEnd {
				roundEnd = at
			}
			r := r
			sim.Schedule(at, func() {
				succ, _ := in.NewSucc(v)
				applyMod(t, fabric, v, match, ports.Port(v, succ))
				fmt.Fprintf(&log, "t=%v round=%d install sw=%d\n", sim.Now().Sub(simclock.Epoch), r, v)
			})
		}
		base = roundEnd
	}
	end := base + time.Millisecond // trailing window after the last install

	prober := NewProber(fabric, Config{
		Ingress:  1,
		NWDst:    0x0a000002,
		Waypoint: topo.Fig1Waypoint,
		Interval: 50 * time.Microsecond,
		Clock:    sim,
	})
	var tick func()
	tick = func() {
		res := prober.Probe()
		fmt.Fprintf(&log, "t=%v probe %s %v\n", sim.Now().Sub(simclock.Epoch), res.Outcome, res.Visited)
		if sim.Now().Before(simclock.Epoch.Add(end)) {
			sim.Schedule(50*time.Microsecond, tick)
		}
	}
	sim.Schedule(0, tick)
	sim.Run()
	return prober.Stats(), log.String()
}

// TestVirtualLiveUpdateBitIdentical is the regression test for the
// wall-clock coupling that used to live in Prober.Run: a traced live
// update on the virtual clock is bit-identical across two runs with
// the same seed — same probes, same outcomes, same timestamps, same
// install order.
func TestVirtualLiveUpdateBitIdentical(t *testing.T) {
	const seed = 42
	st1, log1 := runVirtualLiveUpdate(t, seed)
	st2, log2 := runVirtualLiveUpdate(t, seed)
	if log1 != log2 {
		t.Fatalf("same seed produced different event logs:\nrun1:\n%s\nrun2:\n%s", log1, log2)
	}
	if st1.Sent != st2.Sent || st1.Delivered != st2.Delivered ||
		st1.Bypasses != st2.Bypasses || st1.Loops != st2.Loops || st1.Drops != st2.Drops {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
	if st1.Sent == 0 || st1.Delivered == 0 {
		t.Fatalf("virtual run sent %d probes, delivered %d — probing never ran", st1.Sent, st1.Delivered)
	}
	// WayUp preserves waypoint enforcement in every interleaving, and
	// this one is pinned by the seed.
	if st1.Bypasses != 0 {
		t.Fatalf("wayup bypassed the waypoint under the virtual clock: %+v", st1)
	}
}

// TestVirtualProberScheduleOn pins the deterministic event-driven
// prober: same seed (here: same schedule of installs), same stats,
// twice.
func TestVirtualProberScheduleOn(t *testing.T) {
	run := func() Stats {
		sim := simclock.NewSim(time.Time{})
		fabric := virtualFig1Fabric(t, sim)
		p := NewProber(fabric, Config{
			Ingress:  1,
			NWDst:    0x0a000002,
			Waypoint: topo.Fig1Waypoint,
			Interval: 100 * time.Microsecond,
			Clock:    sim,
		})
		p.ScheduleOn(sim, sim.Now().Add(5*time.Millisecond))
		sim.Run()
		return p.Stats()
	}
	s1, s2 := run(), run()
	if s1.Sent != s2.Sent || s1.Delivered != s2.Delivered || s1.Violations() != s2.Violations() {
		t.Fatalf("ScheduleOn stats diverged: %+v vs %+v", s1, s2)
	}
	if s1.Sent != 50 {
		t.Fatalf("expected 50 probes over 5ms at 100µs, got %d", s1.Sent)
	}
	if s1.Violations() != 0 {
		t.Fatalf("steady old policy should deliver via waypoint: %+v", s1)
	}
}
