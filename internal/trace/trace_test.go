package trace

import (
	"context"
	"net"
	"testing"
	"time"

	"tsu/internal/openflow"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

func nwDst(ip string) uint32 {
	v4 := net.ParseIP(ip).To4()
	return uint32(v4[0])<<24 | uint32(v4[1])<<16 | uint32(v4[2])<<8 | uint32(v4[3])
}

func addRule(t *testing.T, f *switchsim.Fabric, node topo.NodeID, ip string, port uint16) {
	t.Helper()
	fmod := &openflow.FlowMod{
		Match:    openflow.ExactNWDst(net.ParseIP(ip)),
		Command:  openflow.FlowAdd,
		Priority: 100,
		Actions:  []openflow.Action{openflow.ActionOutput{Port: port}},
	}
	if e := f.Switch(node).Table().Apply(fmod); e != nil {
		t.Fatal(e)
	}
}

// fig1Fabric programs the old Fig.1 policy on a fresh fabric.
func fig1Fabric(t *testing.T) *switchsim.Fabric {
	t.Helper()
	g := topo.Fig1()
	f := switchsim.NewFabric(g)
	for _, n := range g.Nodes() {
		if _, err := switchsim.NewSwitch(f, switchsim.Config{Node: n}); err != nil {
			t.Fatal(err)
		}
	}
	pm := f.Ports()
	path := topo.Fig1OldPath
	for i := 0; i+1 < len(path); i++ {
		addRule(t, f, path[i], "10.0.0.2", pm.Port(path[i], path[i+1]))
	}
	addRule(t, f, 12, "10.0.0.2", pm.HostPort[12]["h2"])
	return f
}

func TestProbeCleanDelivery(t *testing.T) {
	f := fig1Fabric(t)
	p := NewProber(f, Config{Ingress: 1, NWDst: nwDst("10.0.0.2"), Waypoint: 3})
	res := p.Probe()
	if res.Outcome != switchsim.ProbeDelivered {
		t.Fatalf("probe = %+v", res)
	}
	st := p.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Violations() != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.FirstViolation != nil {
		t.Fatal("clean run recorded a violation")
	}
}

func TestProbeDetectsBypass(t *testing.T) {
	f := fig1Fabric(t)
	// A probe entering at switch 4 rides the old-path tail 4→5→6→12
	// and is delivered without ever crossing waypoint 3 — the prober
	// must flag it as a bypass.
	p := NewProber(f, Config{Ingress: 4, NWDst: nwDst("10.0.0.2"), Waypoint: 3})
	res := p.Probe()
	if res.Outcome != switchsim.ProbeDelivered {
		t.Fatalf("probe = %+v", res)
	}
	st := p.Stats()
	if st.Bypasses != 1 || st.Violations() != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.FirstViolation == nil {
		t.Fatal("violation not recorded")
	}
}

func TestProbeDetectsLoopAndDrop(t *testing.T) {
	g := topo.Linear(3)
	f := switchsim.NewFabric(g)
	for _, n := range g.Nodes() {
		if _, err := switchsim.NewSwitch(f, switchsim.Config{Node: n}); err != nil {
			t.Fatal(err)
		}
	}
	pm := f.Ports()
	p := NewProber(f, Config{Ingress: 1, NWDst: nwDst("10.0.0.2"), TTL: 12})

	// No rules at all: drop at switch 1.
	p.Probe()
	if st := p.Stats(); st.Drops != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Loop 1↔2.
	addRule(t, f, 1, "10.0.0.2", pm.Port(1, 2))
	addRule(t, f, 2, "10.0.0.2", pm.Port(2, 1))
	p.Probe()
	if st := p.Stats(); st.Loops != 1 || st.Violations() != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProberRunUntilCancelled(t *testing.T) {
	f := fig1Fabric(t)
	p := NewProber(f, Config{Ingress: 1, NWDst: nwDst("10.0.0.2"), Waypoint: 3, Interval: 200 * time.Microsecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	st := p.Run(ctx)
	if st.Sent < 10 {
		t.Fatalf("only %d probes in 30ms at 200µs interval", st.Sent)
	}
	if st.Violations() != 0 {
		t.Fatalf("violations on a static network: %+v", st)
	}
}

func TestProberStartStop(t *testing.T) {
	f := fig1Fabric(t)
	p := NewProber(f, Config{Ingress: 1, NWDst: nwDst("10.0.0.2"), Interval: 100 * time.Microsecond})
	stop := p.Start(context.Background())
	time.Sleep(10 * time.Millisecond)
	st := stop()
	if st.Sent == 0 {
		t.Fatal("no probes sent")
	}
	again := stop // stopping twice must not hang or double-close
	_ = again
}

func TestConfigDefaults(t *testing.T) {
	f := fig1Fabric(t)
	p := NewProber(f, Config{Ingress: 1, NWDst: 1})
	if p.cfg.Interval != 100*time.Microsecond {
		t.Fatalf("default interval = %v", p.cfg.Interval)
	}
	if p.cfg.TTL != 4*12 {
		t.Fatalf("default ttl = %d", p.cfg.TTL)
	}
}
