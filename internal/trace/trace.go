// Package trace measures transient data-plane behaviour during live
// updates: it continuously injects probe packets into the simulated
// fabric while the controller's rounds are in flight and classifies
// every probe — delivered via the waypoint, delivered around it
// (security violation), dropped (blackhole), or stuck in a forwarding
// loop. This is the measurement harness behind the violation
// experiments (E1, E3, E7 in internal/experiments): one-shot updates produce
// violations under channel asynchrony, scheduled updates do not.
package trace

import (
	"context"
	"runtime"
	"sync"
	"time"

	"tsu/internal/simclock"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// Config parameterizes a prober.
type Config struct {
	// Ingress is the switch probes enter at (the source's edge switch).
	Ingress topo.NodeID
	// NWDst is the probed flow's destination address.
	NWDst uint32
	// Waypoint, when non-zero, marks deliveries that bypassed it as
	// violations.
	Waypoint topo.NodeID
	// Interval is the gap between probes (default 100µs).
	Interval time.Duration
	// TTL is the hop budget per probe (default 4× topology size).
	TTL int
	// Clock paces the probes. Nil selects the wall clock; a
	// simclock.Sim makes probing elapse in virtual time (pair Run with
	// another goroutine advancing the clock, or use ScheduleOn for the
	// fully deterministic event-driven form).
	Clock simclock.Clock
}

// Stats aggregates probe outcomes. Bypasses counts probes that reached
// the destination without crossing the waypoint; Loops counts probes
// that exhausted their TTL; Drops counts blackholed probes.
type Stats struct {
	Sent      int
	Delivered int
	Bypasses  int
	Loops     int
	Drops     int

	// FirstViolation records the earliest violating probe's path (for
	// diagnosis); nil when clean.
	FirstViolation *switchsim.ProbeResult
}

// Violations returns the total count of consistency violations
// observed (bypasses + loops + drops).
func (s Stats) Violations() int { return s.Bypasses + s.Loops + s.Drops }

// Prober injects probes into a fabric until stopped.
type Prober struct {
	fabric *switchsim.Fabric
	cfg    Config

	mu    sync.Mutex
	stats Stats
}

// NewProber builds a prober over the fabric.
func NewProber(f *switchsim.Fabric, cfg Config) *Prober {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Microsecond
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 4 * f.Graph().NumNodes()
	}
	cfg.Clock = simclock.Or(cfg.Clock)
	return &Prober{fabric: f, cfg: cfg}
}

// Probe sends a single probe and accounts its outcome.
func (p *Prober) Probe() switchsim.ProbeResult {
	res := p.fabric.Inject(p.cfg.Ingress, p.cfg.NWDst, p.cfg.TTL)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Sent++
	violation := false
	switch res.Outcome {
	case switchsim.ProbeDelivered:
		p.stats.Delivered++
		if p.cfg.Waypoint != 0 && !res.VisitedBefore(p.cfg.Waypoint) {
			p.stats.Bypasses++
			violation = true
		}
	case switchsim.ProbeTTLExceeded:
		p.stats.Loops++
		violation = true
	case switchsim.ProbeDropped:
		p.stats.Drops++
		violation = true
	}
	if violation && p.stats.FirstViolation == nil {
		r := res
		p.stats.FirstViolation = &r
	}
	return res
}

// Run injects probes every Interval until ctx is done and returns the
// accumulated stats, pacing itself on the prober's clock. On a virtual
// clock every interval is slept exactly (the simulation advances it).
// On the wall clock, tickers and time.Sleep both coalesce to the
// runtime/kernel timer resolution (about a millisecond), which would
// starve sub-millisecond probe rates of samples; short real intervals
// are therefore paced by yielding the processor between probes while
// watching the wall clock.
func (p *Prober) Run(ctx context.Context) Stats {
	const sleepFloor = 200 * time.Microsecond
	clock := p.cfg.Clock
	_, virtual := clock.(*simclock.Sim)
	next := clock.Now()
	for {
		select {
		case <-ctx.Done():
			return p.Stats()
		default:
		}
		p.Probe()
		next = next.Add(p.cfg.Interval)
		if virtual || p.cfg.Interval >= sleepFloor {
			// Wait through the clock but stay cancellable: on a
			// virtual clock a bare Sleep would park until somebody
			// advances the sim, which may never happen once the
			// driver shuts down.
			if d := next.Sub(clock.Now()); d > 0 {
				select {
				case <-ctx.Done():
					return p.Stats()
				case <-clock.After(d):
				}
			}
			continue
		}
		for clock.Now().Before(next) {
			runtime.Gosched()
		}
	}
}

// ScheduleOn runs the prober in event-driven form on a virtual clock:
// one probe event every Interval, from the sim's current instant until
// `until` (inclusive start, exclusive end). The probes fire inside the
// sim's event loop in deterministic (time, seq) order against every
// other scheduled event — this is the form the reproducibility tests
// and the virtual experiment harness use. ScheduleOn returns
// immediately; drive the sim and then read Stats.
func (p *Prober) ScheduleOn(sim *simclock.Sim, until time.Time) {
	var tick func()
	tick = func() {
		p.Probe()
		if sim.Now().Add(p.cfg.Interval).Before(until) {
			sim.Schedule(p.cfg.Interval, tick)
		}
	}
	sim.Schedule(0, tick)
}

// Start launches Run in a goroutine; the returned stop function halts
// probing and returns the stats.
func (p *Prober) Start(ctx context.Context) (stop func() Stats) {
	probeCtx, cancel := context.WithCancel(ctx)
	done := make(chan Stats, 1)
	go func() { done <- p.Run(probeCtx) }()
	return func() Stats {
		cancel()
		return <-done
	}
}

// Stats snapshots the current counters.
func (p *Prober) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
