// Package synth synthesizes update plans by counterexample-guided
// inductive synthesis (CEGIS) instead of running a fixed heuristic.
//
// The loop proposes the least-constrained candidate first — the
// empty-edge plan, installing every pending switch concurrently — and
// asks the adversary for a reason it is wrong: explore.PlanCounterexample
// returns a violating order ideal (a reachable transient state of the
// candidate DAG), exhaustively for small ideal spaces and via sampled,
// minimized linear extensions past the budget. The violating ideal S
// maps back to a small candidate set of blocking happens-before edges
// u→v with v ∈ S, u ∉ S (core.PlanDraft.BlockingEdges): adding one
// makes every ideal containing the violation unreachable, permanently.
// Candidates are scored by whether u's install repairs the violating
// state and by the depth the draft would grow to; the best edge is
// added and the loop repeats. A candidate that survives the sampled
// explorer is cross-checked against verify.PlanCounterexample (a
// different seed and a larger exhaustive budget) before it is
// accepted, so the synthesizer's certificate is at least as strong as
// the repo's verifier.
//
// Progress is monotone — each accepted counterexample adds a new edge
// and shrinks the reachable ideal space — so synthesis terminates
// within k·(k-1)/2 refinements for k pending switches; Options.Budget
// cuts it off earlier, returning *BudgetError with the best plan so
// far. Every refinement is recorded in a Transcript whose Fingerprint
// is deterministic in (instance, properties, Options.Seed) and
// independent of Options.Workers.
//
// Plan is the portfolio entry point: it runs Synthesize and also every
// registered heuristic whose guarantees cover the requested
// properties, returning whichever plan wins on (depth, edges) — so the
// synthesized result is never worse than the heuristics, and the
// heuristics back it up when CEGIS hits a budget or a dead end. The
// package registers the portfolio as scheduler core.AlgoSynth, so the
// controller, /v1/updates, verify/explore, decentralized partitioning
// and the CLIs can select "synth" like any other algorithm.
package synth

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"tsu/internal/core"
	"tsu/internal/explore"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

// DefaultBudget is the refinement cap when Options.Budget is zero —
// far above what any instance in the repo needs (iterations track the
// pending count, not its square), while still bounding a runaway loop.
const DefaultBudget = 4096

// Options configures a synthesis run. The zero value is ready to use.
type Options struct {
	// Budget caps accepted counterexamples — equivalently, added
	// happens-before edges. Exceeding it returns *BudgetError carrying
	// the best plan so far. Zero selects DefaultBudget.
	Budget int

	// QuickSamples is the cheap first-pass oracle sample count per
	// candidate plan; only a clean quick pass pays for the full pass.
	// Zero selects 32.
	QuickSamples int

	// Samples is the confirmation-pass sample count, used by both the
	// full explorer pass and the verify cross-check. Zero selects 256.
	Samples int

	// MaxExhaustive bounds the explorer's exhaustive ideal enumeration
	// (2^MaxExhaustive states); see explore.Options.MaxExhaustive.
	// Zero selects the explorer default (18).
	MaxExhaustive int

	// MaxCandidates caps the blocking-edge candidates scored per
	// refinement. Zero selects 256.
	MaxCandidates int

	// Seed derives every oracle seed. Synthesis is deterministic in
	// (instance, props, Options with the same Seed).
	Seed int64

	// Workers is forwarded to the verify cross-check; plan-path
	// verdicts are worker-independent, so it never changes the result
	// or the transcript fingerprint.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = DefaultBudget
	}
	if o.QuickSamples <= 0 {
		o.QuickSamples = 32
	}
	if o.Samples <= 0 {
		o.Samples = 256
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 256
	}
	return o
}

// ErrInfeasible marks instances where no dependency DAG can keep the
// requested properties: the empty and the fully-updated states are in
// every plan's ideal space, so a violation there is final.
var ErrInfeasible = errors.New("synth: no plan can satisfy the requested properties")

// ErrDeadEnd marks a refinement dead end: the current counterexample
// ideal admits no blocking edge without closing a cycle. The instance
// may still have safe plans; the portfolio falls back to heuristics.
var ErrDeadEnd = errors.New("synth: refinement dead end")

// BudgetError reports that Options.Budget refinements were accepted
// and the oracle still finds violations. Best is the latest candidate
// plan — structurally valid and executable, but not verified safe.
type BudgetError struct {
	Budget     int
	Best       *core.Plan
	Transcript *Transcript
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("synth: budget of %d refinements exceeded (best so far %s)", e.Budget, e.Best)
}

// Step records one CEGIS refinement.
type Step struct {
	Iter        int
	CexSize     int           // violating ideal size
	CexSwitches []topo.NodeID // violating ideal, ascending switch IDs
	Violated    core.Property
	OracleLevel string // "explore-quick", "explore-full" or "verify"
	OracleExact bool   // counterexample came from exhaustive enumeration
	Checked     int    // oracle state checks spent this iteration
	Candidates  int    // blocking edges considered
	EdgeFrom    topo.NodeID
	EdgeTo      topo.NodeID // chosen edge: EdgeFrom's barrier before EdgeTo's FlowMod
	Repaired    bool        // adding EdgeFrom to the ideal repairs its state
	DepthAfter  int
	OracleNanos int64 // wall clock; excluded from Fingerprint
}

// Transcript is the full refinement history of one synthesis run.
type Transcript struct {
	Algorithm string
	Props     core.Property
	Seed      int64
	Steps     []Step
	Iters     int // == len(Steps): accepted counterexamples
	Checked   int // total oracle state checks, all iterations
	Exact     bool
	// Source names where the returned plan came from: "cegis",
	// "portfolio:<name>" (a heuristic beat the synthesized plan) or
	// "fallback:<name>" (synthesis failed; a heuristic covered it).
	Source  string
	Final   string        // final plan shape (core.Plan.String())
	Elapsed time.Duration // wall clock; excluded from Fingerprint
}

// Fingerprint returns a stable hash of everything decision-relevant in
// the transcript — every counterexample, every chosen edge, the final
// plan — excluding wall-clock times. Identical across Workers settings
// and across runs with the same (instance, props, Options).
func (t *Transcript) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%s|%s|%d|%d|%t", t.Props, t.Seed, t.Source, t.Final, t.Iters, t.Checked, t.Exact)
	for _, s := range t.Steps {
		fmt.Fprintf(h, "|%d:%d:%v:%s:%s:%t:%d:%d:%d->%d:%t:%d",
			s.Iter, s.CexSize, s.CexSwitches, s.Violated, s.OracleLevel, s.OracleExact,
			s.Checked, s.Candidates, s.EdgeFrom, s.EdgeTo, s.Repaired, s.DepthAfter)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// String renders a one-line summary.
func (t *Transcript) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "synth %s: %d refinements, %d checks, %s", t.Props, t.Iters, t.Checked, t.Source)
	if t.Exact {
		b.WriteString(", exact")
	}
	if t.Final != "" {
		fmt.Fprintf(&b, " -> %s", t.Final)
	}
	return b.String()
}

// DefaultProps resolves the synthesis target: props itself when
// non-zero, else blackhole freedom and relaxed loop freedom, plus
// waypoint enforcement when the instance has a waypoint.
func DefaultProps(in *core.Instance, props core.Property) core.Property {
	if props != 0 {
		return props
	}
	p := core.NoBlackhole | core.RelaxedLoopFreedom
	if in.Waypoint != 0 {
		p |= core.WaypointEnforcement
	}
	return p
}

// Synthesize runs the CEGIS loop on its own (no heuristic portfolio)
// and returns the synthesized plan with its transcript. Errors:
// ErrInfeasible (wrapped) when no DAG can help, ErrDeadEnd (wrapped)
// when a counterexample admits no acyclic blocking edge, *BudgetError
// past Options.Budget. The transcript is returned in every case.
func Synthesize(in *core.Instance, props core.Property, opts Options) (*core.Plan, *Transcript, error) {
	opts = opts.withDefaults()
	props = DefaultProps(in, props)
	tr := &Transcript{Algorithm: core.AlgoSynth, Props: props, Seed: opts.Seed, Source: "cegis"}
	start := time.Now()
	defer func() { tr.Elapsed = time.Since(start) }()

	// The empty and fully-updated states are order ideals of every
	// plan; a violation there cannot be scheduled away.
	if v := in.CheckState(in.NewState(), props); v != 0 {
		return nil, tr, fmt.Errorf("initial state violates %s: %w", v, ErrInfeasible)
	}
	if v := in.CheckState(in.StateOf(in.Pending()...), props); v != 0 {
		return nil, tr, fmt.Errorf("final state violates %s: %w", v, ErrInfeasible)
	}

	draft := core.NewPlanDraft(in)
	st := in.NewState() // scratch for repair scoring
	for iter := 0; ; iter++ {
		plan := draft.Plan(core.AlgoSynth, props)
		o, err := oracle(in, plan, props, opts, iter)
		tr.Checked += o.checked
		if err != nil {
			tr.Final = plan.String()
			return nil, tr, err
		}
		if o.ideal == nil {
			tr.Exact = o.exact
			tr.Iters = len(tr.Steps)
			tr.Final = plan.String()
			return plan, tr, nil
		}
		if len(o.ideal) == 0 || len(o.ideal) == plan.NumNodes() {
			// Oracle re-derived an endpoint violation (possible only if
			// the pre-flight and the walker disagree — a bug trap).
			tr.Final = plan.String()
			return nil, tr, fmt.Errorf("endpoint state violates %s: %w", o.violated, ErrInfeasible)
		}
		if len(tr.Steps) >= opts.Budget {
			tr.Iters = len(tr.Steps)
			tr.Final = plan.String()
			return nil, tr, &BudgetError{Budget: opts.Budget, Best: plan, Transcript: tr}
		}

		// Map the ideal from plan-node indices to draft indices.
		ideal := make([]int, len(o.ideal))
		for i, pn := range o.ideal {
			ideal[i] = draft.IndexOf(plan.Nodes[pn].Switch)
		}
		cands := draft.BlockingEdges(ideal, opts.MaxCandidates)
		if len(cands) == 0 {
			tr.Final = plan.String()
			return nil, tr, fmt.Errorf("counterexample %v admits no acyclic blocking edge: %w",
				switchesOf(draft, ideal), ErrDeadEnd)
		}
		u, v, repaired := chooseEdge(in, draft, props, st, ideal, cands)
		if err := draft.AddEdge(u, v); err != nil {
			// Unreachable: BlockingEdges pre-filters cycles and duplicates.
			tr.Final = plan.String()
			return nil, tr, fmt.Errorf("synth: %w", err)
		}
		tr.Steps = append(tr.Steps, Step{
			Iter:        iter,
			CexSize:     len(ideal),
			CexSwitches: switchesOf(draft, ideal),
			Violated:    o.violated,
			OracleLevel: o.level,
			OracleExact: o.exact,
			Checked:     o.checked,
			Candidates:  len(cands),
			EdgeFrom:    draft.Switch(u),
			EdgeTo:      draft.Switch(v),
			Repaired:    repaired,
			DepthAfter:  draft.Depth(),
			OracleNanos: o.nanos,
		})
	}
}

// oracleResult is one escalating counterexample search over a
// candidate plan. ideal == nil means clean; exact then marks a proof
// (exhaustive enumeration at some level). With a counterexample, exact
// marks a minimum violating ideal.
type oracleResult struct {
	ideal    []int // plan-node indices, ascending
	violated core.Property
	level    string
	exact    bool
	checked  int
	nanos    int64
}

// oracle asks for a counterexample with escalating effort: a quick
// sampled explorer pass, then the full sampled pass, then the verify
// cross-check under a different seed and a larger exhaustive budget.
// An exhaustive clean verdict at any level short-circuits.
func oracle(in *core.Instance, p *core.Plan, props core.Property, opts Options, iter int) (oracleResult, error) {
	var r oracleResult
	start := time.Now()
	defer func() { r.nanos = time.Since(start).Nanoseconds() }()
	base := opts.Seed ^ (int64(iter+1) * 0x5E3779B97F4A7C15)

	eo := explore.Options{
		Props:         props,
		MaxExhaustive: opts.MaxExhaustive,
		Samples:       opts.QuickSamples,
		Seed:          base + 1,
		Workers:       1,
	}
	cex, exhaustive, err := explore.PlanCounterexample(in, p, eo)
	r.level = "explore-quick"
	if err != nil {
		return r, err
	}
	if cex != nil {
		r.ideal, r.violated, r.exact, r.checked = cex.Nodes, cex.Violated, cex.Exact, cex.Checked
		if r.ideal == nil {
			r.ideal = []int{}
		}
		return r, nil
	}
	if exhaustive {
		r.exact = true
		return r, nil
	}

	eo.Samples = opts.Samples
	eo.Seed = base + 2
	cex, _, err = explore.PlanCounterexample(in, p, eo)
	r.level = "explore-full"
	if err != nil {
		return r, err
	}
	if cex != nil {
		r.ideal, r.violated, r.exact, r.checked = cex.Nodes, cex.Violated, cex.Exact, cex.Checked
		if r.ideal == nil {
			r.ideal = []int{}
		}
		return r, nil
	}

	nodes, violated, exact := verify.PlanCounterexample(in, p, props, verify.Options{
		Samples: opts.Samples,
		Seed:    base + 3,
		Workers: opts.Workers,
	})
	r.level = "verify"
	if nodes != nil {
		r.ideal, r.violated = nodes, violated
		return r, nil
	}
	r.exact = exact
	return r, nil
}

// chooseEdge scores the blocking-edge candidates and returns the
// winner: prefer edges whose source install repairs the violating
// state (the ideal plus u checks clean), then the smallest resulting
// draft depth, then the candidates' deterministic order.
func chooseEdge(in *core.Instance, draft *core.PlanDraft, props core.Property, st core.State, ideal []int, cands [][2]int) (u, v int, repaired bool) {
	for i := range st {
		st[i] = 0
	}
	for _, d := range ideal {
		in.Mark(st, draft.Switch(d))
	}
	bestU, bestV := cands[0][0], cands[0][1]
	bestRepaired, bestDepth := false, 0
	for i, e := range cands {
		cu, cv := e[0], e[1]
		ui := in.NodeIndex(draft.Switch(cu))
		st.Set(ui)
		rep := in.CheckState(st, props) == 0
		st.Clear(ui)
		depth := draft.DepthWithEdge(cu, cv)
		if i == 0 || better(rep, depth, bestRepaired, bestDepth) {
			bestU, bestV, bestRepaired, bestDepth = cu, cv, rep, depth
		}
	}
	return bestU, bestV, bestRepaired
}

// better reports whether candidate (rep, depth) beats the incumbent.
func better(rep bool, depth int, bestRep bool, bestDepth int) bool {
	if rep != bestRep {
		return rep
	}
	return depth < bestDepth
}

func switchesOf(draft *core.PlanDraft, ideal []int) []topo.NodeID {
	out := make([]topo.NodeID, len(ideal))
	for i, d := range ideal {
		out[i] = draft.Switch(d)
	}
	return out
}

// Plan is the portfolio entry point: it synthesizes a plan for the
// requested properties and pits it against every registered heuristic
// whose guarantees cover them, returning the winner on (depth, edges)
// — ties go to the synthesized plan. The returned plan always carries
// Algorithm == core.AlgoSynth and Guarantees == the resolved property
// set; Transcript.Source records which construction won. A *BudgetError
// or dead end falls back to the best heuristic when one exists, and is
// returned unchanged otherwise.
func Plan(in *core.Instance, props core.Property, opts Options) (*core.Plan, *Transcript, error) {
	props = DefaultProps(in, props)
	plan, tr, err := Synthesize(in, props, opts)
	hname, hplan := bestHeuristic(in, props)
	switch {
	case err != nil && hplan == nil:
		return nil, tr, err
	case err != nil:
		tr.Source = "fallback:" + hname
		plan = hplan
	case hplan != nil && (hplan.Depth() < plan.Depth() ||
		(hplan.Depth() == plan.Depth() && hplan.NumEdges() < plan.NumEdges())):
		tr.Source = "portfolio:" + hname
		plan = hplan
	}
	adopted := *plan
	adopted.Algorithm = core.AlgoSynth
	adopted.Guarantees = props
	adopted.LoopFreedomCompromised = false
	tr.Final = adopted.String()
	return &adopted, tr, nil
}

// bestHeuristic returns the best registered non-synth plan whose
// schedule guarantees cover props, preferring sparse DAGs where the
// scheduler offers them; ("", nil) when no heuristic qualifies.
func bestHeuristic(in *core.Instance, props core.Property) (string, *core.Plan) {
	var bestName string
	var best *core.Plan
	for _, name := range core.Names() {
		if name == core.AlgoSynth {
			continue
		}
		sch, err := core.Lookup(name)
		if err != nil || !sch.Applicable(in) {
			continue
		}
		s, err := sch.Schedule(in, props)
		if err != nil || !s.Guarantees.Has(props) {
			continue
		}
		hp := core.PlanFromSchedule(s)
		if ps, ok := sch.(core.PlanScheduler); ok {
			if sp, err := ps.Plan(in, props); err == nil {
				hp = sp
			}
		}
		if best == nil || hp.Depth() < best.Depth() ||
			(hp.Depth() == best.Depth() && hp.NumEdges() < best.NumEdges()) {
			bestName, best = name, hp
		}
	}
	return bestName, best
}

// scheduler registers the portfolio under core.AlgoSynth.
type scheduler struct{}

// Schedule returns the synthesized plan's layered view: rounds are the
// plan's longest-path layers. Safe because the layered closure of a
// plan's layers only adds constraints — its ideal space is a subset of
// the verified plan's.
func (scheduler) Schedule(in *core.Instance, props core.Property) (*core.Schedule, error) {
	p, _, err := Plan(in, props, Options{})
	if err != nil {
		return nil, err
	}
	return &core.Schedule{
		Rounds:     p.Layers(),
		Algorithm:  core.AlgoSynth,
		Guarantees: p.Guarantees,
	}, nil
}

// Plan implements core.PlanScheduler with the synthesized sparse DAG.
func (scheduler) Plan(in *core.Instance, props core.Property) (*core.Plan, error) {
	p, _, err := Plan(in, props, Options{})
	return p, err
}

// Applicable implements core.Scheduler; synthesis applies everywhere.
func (scheduler) Applicable(*core.Instance) bool { return true }

func init() { core.Register(core.AlgoSynth, scheduler{}) }
