package synth

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"tsu/internal/core"
	"tsu/internal/topo"
)

// FuzzSynthRefine throws random two-path instances at the CEGIS loop
// and checks the refinement invariants that hold regardless of whether
// synthesis converges: whatever plan comes out (final or best-so-far
// on budget overrun) must Validate against the instance and round-trip
// the binary plan codec bit-for-bit.
func FuzzSynthRefine(f *testing.F) {
	f.Add(int64(1), uint8(4), true)
	f.Add(int64(2), uint8(9), false)
	f.Add(int64(42), uint8(0), true)
	f.Fuzz(func(t *testing.T, seed int64, n uint8, waypoint bool) {
		size := 4 + int(n%12)
		rng := rand.New(rand.NewSource(seed))
		ti := topo.RandomTwoPath(rng, size, waypoint)
		in, err := core.NewInstance(ti.Old, ti.New, ti.Waypoint)
		if err != nil {
			t.Skip()
		}
		plan, _, err := Synthesize(in, 0, Options{Budget: 64, Seed: seed, QuickSamples: 8, Samples: 32})
		if err != nil {
			var be *BudgetError
			switch {
			case errors.As(err, &be):
				plan = be.Best
			case errors.Is(err, ErrInfeasible) || errors.Is(err, ErrDeadEnd):
				return
			default:
				t.Fatalf("Synthesize: %v", err)
			}
		}
		if err := plan.Validate(in); err != nil {
			t.Fatalf("synthesized plan invalid: %v", err)
		}
		enc := core.EncodePlan(plan)
		dec, err := core.DecodePlan(enc)
		if err != nil {
			t.Fatalf("DecodePlan: %v", err)
		}
		if !bytes.Equal(enc, core.EncodePlan(dec)) {
			t.Fatal("plan codec round-trip not stable")
		}
	})
}
