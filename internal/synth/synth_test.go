package synth

import (
	"errors"
	"math/rand"
	"testing"

	"tsu/internal/core"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

func fig1(t testing.TB) *core.Instance {
	t.Helper()
	return core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
}

func fromTwoPath(t testing.TB, ti topo.TwoPathInstance) *core.Instance {
	t.Helper()
	in, err := core.NewInstance(ti.Old, ti.New, ti.Waypoint)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func fatTreeInstance(t testing.TB, k int, seed int64) *core.Instance {
	t.Helper()
	g := topo.FatTree(k)
	ti, err := topo.RandomFatTreePolicy(rand.New(rand.NewSource(seed)), g)
	if err != nil {
		t.Fatal(err)
	}
	return fromTwoPath(t, ti)
}

// TestSynthesizedPlansVerifyClean is the property test of the CEGIS
// loop: every synthesized plan's full ideal space must verify clean
// for its guarantees — exhaustively (via the Walker's single-flip DFS)
// whenever the ideal space fits the verifier's budget, sampled above.
func TestSynthesizedPlansVerifyClean(t *testing.T) {
	cases := []struct {
		name string
		in   *core.Instance
	}{
		{"fig1", fig1(t)},
		{"reversal8", fromTwoPath(t, topo.Reversal(8))},
		{"staircase9", fromTwoPath(t, topo.Staircase(9))},
		{"nested9", fromTwoPath(t, topo.Nested(9))},
		{"comb4x3", fromTwoPath(t, topo.Comb(4, 3))},
		{"comb6x4", fromTwoPath(t, topo.Comb(6, 4))},
		{"fattree4", fatTreeInstance(t, 4, 1)},
		{"fattree8", fatTreeInstance(t, 8, 2)},
		{"comb12x8", fromTwoPath(t, topo.Comb(12, 8))},
	}
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ti := topo.RandomTwoPath(rng, 10, seed%2 == 0)
		cases = append(cases, struct {
			name string
			in   *core.Instance
		}{"random10", fromTwoPath(t, ti)})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, tr, err := Plan(tc.in, 0, Options{Seed: 1})
			if err != nil {
				t.Fatalf("Plan: %v", err)
			}
			if err := plan.Validate(tc.in); err != nil {
				t.Fatalf("synthesized plan invalid: %v", err)
			}
			if plan.Algorithm != core.AlgoSynth {
				t.Fatalf("plan algorithm = %q, want %q", plan.Algorithm, core.AlgoSynth)
			}
			rep := verify.Plan(tc.in, plan, plan.Guarantees, verify.Options{Seed: 99})
			if !rep.OK() {
				t.Fatalf("synthesized plan unsafe (%s): %v", tr, rep.FirstViolation())
			}
			// Ideal spaces that fit the exhaustive budget must be
			// proven, not sampled.
			if plan.NumNodes() <= 18 && !rep.Exact() {
				t.Fatalf("plan with %d nodes verified inexactly", plan.NumNodes())
			}
		})
	}
}

// TestSynthDepthDominatesHeuristics checks the acceptance bar: on
// Fig.1, a fat-tree policy and Comb(12,8), the synthesized plan's
// depth never exceeds any registered heuristic's plan depth for the
// same guarantees, and beats at least one of them strictly.
func TestSynthDepthDominatesHeuristics(t *testing.T) {
	instances := []struct {
		name string
		in   *core.Instance
	}{
		{"fig1", fig1(t)},
		{"fattree8", fatTreeInstance(t, 8, 2)},
		{"comb12x8", fromTwoPath(t, topo.Comb(12, 8))},
	}
	strictly := false
	for _, tc := range instances {
		rep, err := Compare(tc.in, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: Compare: %v", tc.name, err)
		}
		if len(rep.Rows) == 0 {
			t.Fatalf("%s: no comparable heuristics", tc.name)
		}
		for _, row := range rep.Rows {
			if row.DepthGap < 0 {
				t.Errorf("%s: synth depth %d exceeds %s depth %d (props %s)",
					tc.name, row.Synth.Depth, row.Algorithm, row.Heuristic.Depth, row.Guarantees)
			}
			if row.DepthGap > 0 {
				strictly = true
			}
		}
		t.Logf("%s:\n%s", tc.name, rep.Table())
	}
	if !strictly {
		t.Error("synthesized plans never strictly beat any heuristic's depth")
	}
}

// TestSynthDeterministic pins the transcript fingerprint per seed and
// checks it is identical for Workers 1 and 4: synthesis is a function
// of (instance, props, seed) alone.
func TestSynthDeterministic(t *testing.T) {
	pinned := map[string]map[int64]string{
		"fig1":    {1: "793cf3adbc2973b6", 7: "df0f51d2eeb6e984"},
		"comb4x3": {1: "98d73aa230e74315", 7: "5103ade48f23741f"},
	}
	instances := map[string]*core.Instance{
		"fig1":    fig1(t),
		"comb4x3": fromTwoPath(t, topo.Comb(4, 3)),
	}
	for name, in := range instances {
		for seed := range pinned[name] {
			var fps []string
			for _, workers := range []int{1, 4} {
				_, tr, err := Plan(in, 0, Options{Seed: seed, Workers: workers})
				if err != nil {
					t.Fatalf("%s seed %d workers %d: %v", name, seed, workers, err)
				}
				fps = append(fps, tr.Fingerprint())
			}
			if fps[0] != fps[1] {
				t.Fatalf("%s seed %d: fingerprint differs across workers: %s vs %s", name, seed, fps[0], fps[1])
			}
			if want := pinned[name][seed]; want != "" && fps[0] != want {
				t.Errorf("%s seed %d: fingerprint %s, pinned %s", name, seed, fps[0], want)
			}
			t.Logf("%s seed %d: %s", name, seed, fps[0])
		}
	}
}

// TestSynthBudgetError checks the structured budget overrun: the
// best-so-far plan must be a valid (if unverified) execution plan and
// the transcript must record exactly Budget refinements.
func TestSynthBudgetError(t *testing.T) {
	in := fig1(t)
	_, _, err := Synthesize(in, 0, Options{Budget: 1, Seed: 1})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("Synthesize with budget 1: got %v, want *BudgetError", err)
	}
	if be.Best == nil {
		t.Fatal("BudgetError.Best is nil")
	}
	if err := be.Best.Validate(in); err != nil {
		t.Fatalf("best-so-far plan invalid: %v", err)
	}
	if be.Transcript == nil || len(be.Transcript.Steps) != 1 {
		t.Fatalf("transcript records %d steps, want 1", len(be.Transcript.Steps))
	}
}

// TestSynthRegistered checks the first-class scheduler surface: synth
// resolves through the registry, schedules layered rounds that verify
// clean, and offers a sparse DAG via the PlanScheduler capability.
func TestSynthRegistered(t *testing.T) {
	in := fig1(t)
	found := false
	for _, name := range core.Names() {
		if name == core.AlgoSynth {
			found = true
		}
	}
	if !found {
		t.Fatalf("%q not in registry: %v", core.AlgoSynth, core.Names())
	}
	s, err := core.ScheduleByName(in, core.AlgoSynth, 0)
	if err != nil {
		t.Fatalf("ScheduleByName: %v", err)
	}
	if s.Guarantees == 0 {
		t.Fatal("synth schedule guarantees nothing")
	}
	if rep := verify.Guarantees(in, s, verify.Options{}); !rep.OK() {
		t.Fatalf("synth schedule unsafe: %v", rep.FirstViolation())
	}
	p, err := core.PlanByName(in, core.AlgoSynth, 0, true)
	if err != nil {
		t.Fatalf("PlanByName sparse: %v", err)
	}
	if rep := verify.Plan(in, p, p.Guarantees, verify.Options{}); !rep.OK() {
		t.Fatalf("synth sparse plan unsafe: %v", rep.FirstViolation())
	}
}

// TestCompareReport sanity-checks the gap table on Fig.1.
func TestCompareReport(t *testing.T) {
	rep, err := Compare(fig1(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, row := range rep.Rows {
		seen[row.Algorithm] = true
		if row.Synth.Nodes != row.Heuristic.Nodes {
			t.Errorf("%s: node counts differ: %d vs %d", row.Algorithm, row.Synth.Nodes, row.Heuristic.Nodes)
		}
		if row.DepthGap != row.Heuristic.Depth-row.Synth.Depth {
			t.Errorf("%s: inconsistent depth gap", row.Algorithm)
		}
	}
	for _, want := range []string{core.AlgoPeacock, core.AlgoWayUp, core.AlgoGreedySLF} {
		if !seen[want] {
			t.Errorf("gap table misses %s (rows: %v)", want, seen)
		}
	}
	if tbl := rep.Table(); len(tbl) == 0 {
		t.Error("empty table rendering")
	}
}
