package synth

import (
	"fmt"
	"strings"

	"tsu/internal/core"
)

// PlanMetrics is the cost profile of one execution plan under both
// dispatch modes: Ctrl counts controller-mode control-channel messages
// (FlowMod + barrier request + barrier reply per install, matching the
// engine's accounting), Peer counts decentralized-mode peer acks (one
// per happens-before edge whose endpoints are different switches; the
// control channel then costs a flat push + report per switch either
// way, so Peer is where plans differ).
type PlanMetrics struct {
	Nodes        int
	Edges        int
	Depth        int
	Width        int
	CriticalPath int
	Ctrl         int
	Peer         int
}

// MetricsOf profiles a plan.
func MetricsOf(p *core.Plan) PlanMetrics {
	m := PlanMetrics{
		Nodes:        p.NumNodes(),
		Edges:        p.NumEdges(),
		Depth:        p.Depth(),
		Width:        p.Width(),
		CriticalPath: p.CriticalPath(),
		Ctrl:         3 * p.NumNodes(),
	}
	for _, nd := range p.Nodes {
		for _, d := range nd.Deps {
			if p.Nodes[d].Switch != nd.Switch {
				m.Peer++
			}
		}
	}
	return m
}

// GapRow quantifies one heuristic's optimality gap against the
// synthesized plan for the same guarantees: every Gap field is
// heuristic-minus-synth, so positive numbers are what the heuristic
// overpays. The portfolio construction of Plan makes DepthGap ≥ 0.
type GapRow struct {
	Algorithm   string
	Guarantees  core.Property
	Heuristic   PlanMetrics
	Synth       PlanMetrics
	DepthGap    int
	EdgeGap     int
	CriticalGap int
	CtrlGap     int
	PeerGap     int
	SynthSource string // Transcript.Source of the synthesized plan
	SynthExact  bool
	SynthIters  int
}

// CompareReport is the per-scheduler optimality-gap table for one
// instance.
type CompareReport struct {
	Instance string
	Rows     []GapRow
}

// Compare synthesizes, for each registered heuristic scheduler that
// applies to the instance and guarantees a non-empty property set, a
// plan targeting exactly that scheduler's guarantees (synthesis runs
// once per distinct property set), and tabulates the heuristic's gaps
// against it. The heuristic side uses the scheduler's sparse DAG when
// it offers one, its layered plan otherwise. Schedulers that fail to
// schedule, and the guarantee-free one-shot baseline, are skipped.
func Compare(in *core.Instance, opts Options) (*CompareReport, error) {
	rep := &CompareReport{Instance: in.String()}
	type synthResult struct {
		plan *core.Plan
		tr   *Transcript
	}
	cache := make(map[core.Property]synthResult)
	for _, name := range core.Names() {
		if name == core.AlgoSynth {
			continue
		}
		sch, err := core.Lookup(name)
		if err != nil || !sch.Applicable(in) {
			continue
		}
		s, err := sch.Schedule(in, 0)
		if err != nil || s.Guarantees == 0 {
			continue
		}
		hp := core.PlanFromSchedule(s)
		if ps, ok := sch.(core.PlanScheduler); ok {
			if sp, err := ps.Plan(in, 0); err == nil {
				hp = sp
			}
		}
		res, ok := cache[s.Guarantees]
		if !ok {
			plan, tr, err := Plan(in, s.Guarantees, opts)
			if err != nil {
				return nil, fmt.Errorf("synth: comparing against %s: %w", name, err)
			}
			res = synthResult{plan: plan, tr: tr}
			cache[s.Guarantees] = res
		}
		hm, sm := MetricsOf(hp), MetricsOf(res.plan)
		rep.Rows = append(rep.Rows, GapRow{
			Algorithm:   name,
			Guarantees:  s.Guarantees,
			Heuristic:   hm,
			Synth:       sm,
			DepthGap:    hm.Depth - sm.Depth,
			EdgeGap:     hm.Edges - sm.Edges,
			CriticalGap: hm.CriticalPath - sm.CriticalPath,
			CtrlGap:     hm.Ctrl - sm.Ctrl,
			PeerGap:     hm.Peer - sm.Peer,
			SynthSource: res.tr.Source,
			SynthExact:  res.tr.Exact,
			SynthIters:  res.tr.Iters,
		})
	}
	return rep, nil
}

// Table renders the report as a fixed-width table.
func (r *CompareReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "optimality gaps vs synthesized plan — %s\n", r.Instance)
	fmt.Fprintf(&b, "%-11s %-24s %6s %6s %6s %6s %6s | %6s %6s %6s %6s %6s | %s\n",
		"algorithm", "guarantees", "depth", "edges", "crit", "ctrl", "peer",
		"Δdepth", "Δedges", "Δcrit", "Δctrl", "Δpeer", "synth")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-11s %-24s %6d %6d %6d %6d %6d | %6d %6d %6d %6d %6d | %s iters=%d exact=%t\n",
			row.Algorithm, row.Guarantees.String(),
			row.Heuristic.Depth, row.Heuristic.Edges, row.Heuristic.CriticalPath, row.Heuristic.Ctrl, row.Heuristic.Peer,
			row.DepthGap, row.EdgeGap, row.CriticalGap, row.CtrlGap, row.PeerGap,
			row.SynthSource, row.SynthIters, row.SynthExact)
	}
	return b.String()
}
