// Package ofconn provides OpenFlow connection plumbing over a byte
// stream: message framing (reading exactly one length-prefixed message
// at a time), concurrent-safe writing, transaction-id allocation, and
// the version/features handshake both ends of the control channel run.
//
// The control channel is a TCP connection per switch; TCP preserves
// ordering per switch, so the asynchrony the paper battles is across
// switches (different RTTs, queueing, install latencies) — which is
// exactly what the simulator injects (see internal/netem and
// internal/switchsim).
package ofconn

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tsu/internal/openflow"
)

// Conn frames OpenFlow messages over a net.Conn. Reads must come from a
// single goroutine; writes may come from many.
type Conn struct {
	nc net.Conn
	br *bufio.Reader

	writeMu sync.Mutex
	xid     atomic.Uint32

	closeOnce sync.Once
	closeErr  error
}

// New wraps a network connection.
func New(nc net.Conn) *Conn {
	return &Conn{nc: nc, br: bufio.NewReaderSize(nc, 64<<10)}
}

// NextXid allocates a fresh non-zero transaction id.
func (c *Conn) NextXid() uint32 {
	for {
		if x := c.xid.Add(1); x != 0 {
			return x
		}
	}
}

// ReadMessage reads and decodes exactly one message.
func (c *Conn) ReadMessage() (openflow.Message, error) {
	var hdr [openflow.HeaderLen]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	h, err := openflow.ParseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	buf := make([]byte, h.Length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(c.br, buf[openflow.HeaderLen:]); err != nil {
		return nil, fmt.Errorf("ofconn: reading %s body: %w", h.Type, err)
	}
	return openflow.Decode(buf)
}

// wirePool recycles encode buffers across connections: the live
// deployment path encodes every outgoing message into a pooled buffer
// via openflow.AppendTo, so steady-state writes do not allocate per
// message.
var wirePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// WriteMessage encodes and writes one message. It is safe for
// concurrent use; each message is written atomically. Encoding runs
// through a pooled buffer (see openflow.AppendTo): no per-message
// allocation in steady state.
func (c *Conn) WriteMessage(m openflow.Message) error {
	bp := wirePool.Get().(*[]byte)
	wire, err := openflow.AppendTo((*bp)[:0], m)
	if err != nil {
		wirePool.Put(bp)
		return err
	}
	c.writeMu.Lock()
	_, err = c.nc.Write(wire)
	c.writeMu.Unlock()
	*bp = wire[:0] // keep any growth for the next message
	wirePool.Put(bp)
	return err
}

// Batch accumulates the wire encodings of several messages for one
// coalesced write. The zero value is ready to use; a Batch retained
// across flushes keeps its grown buffer, so steady-state batched
// writes do not allocate. A Batch is not safe for concurrent use —
// the dispatcher owns one per connection per shard.
type Batch struct {
	buf []byte
	n   int
}

// Reset empties the batch, keeping the buffer.
func (b *Batch) Reset() { b.buf, b.n = b.buf[:0], 0 }

// Len returns the number of messages accumulated.
func (b *Batch) Len() int { return b.n }

// Bytes returns the accumulated wire size.
func (b *Batch) Bytes() int { return len(b.buf) }

// BatchMark is a snapshot of a Batch's fill state, taken with Mark
// and restored with Truncate.
type BatchMark struct{ off, n int }

// Mark snapshots the batch state; Truncate(m) discards everything
// added after the snapshot — the idiom for dropping one logical group
// (a node's FlowMods plus barrier) whose encoding failed partway.
func (b *Batch) Mark() BatchMark { return BatchMark{len(b.buf), b.n} }

// Truncate rewinds the batch to a Mark snapshot.
func (b *Batch) Truncate(m BatchMark) { b.buf, b.n = b.buf[:m.off], m.n }

// Add appends one message's encoding to the batch. The message is
// encoded immediately, so the caller may reuse it (e.g. re-stamping a
// shared BarrierRequest's xid between Adds). On error the batch is
// unchanged.
func (b *Batch) Add(m openflow.Message) error {
	wire, err := openflow.AppendTo(b.buf, m)
	if err != nil {
		return err
	}
	b.buf = wire
	b.n++
	return nil
}

// WriteBatch writes every message accumulated in b as a single
// buffered write — one syscall (and one TCP segment train) for the
// whole group instead of one per message — then resets b. Writing an
// empty batch is a no-op. Safe for concurrent use with WriteMessage;
// the batch is written atomically with respect to other writers.
func (c *Conn) WriteBatch(b *Batch) error {
	if b.n == 0 {
		return nil
	}
	c.writeMu.Lock()
	_, err := c.nc.Write(b.buf)
	c.writeMu.Unlock()
	b.Reset()
	return err
}

// Send allocates a transaction id for m, writes it, and returns the id.
func (c *Conn) Send(m openflow.Message) (uint32, error) {
	m.SetXid(c.NextXid())
	if err := c.WriteMessage(m); err != nil {
		return 0, err
	}
	return m.Xid(), nil
}

// SetReadDeadline bounds the next ReadMessage.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Close closes the underlying connection once.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

// handshakeTimeout bounds each handshake step.
const handshakeTimeout = 10 * time.Second

// HandshakeController runs the controller side of the OpenFlow
// handshake: exchange HELLO, then request features; returns the
// switch's features reply (datapath id and ports).
func HandshakeController(c *Conn) (*openflow.FeaturesReply, error) {
	if _, err := c.Send(&openflow.Hello{}); err != nil {
		return nil, fmt.Errorf("ofconn: sending hello: %w", err)
	}
	if err := c.SetReadDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return nil, err
	}
	defer c.SetReadDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	m, err := c.ReadMessage()
	if err != nil {
		return nil, fmt.Errorf("ofconn: awaiting hello: %w", err)
	}
	if _, ok := m.(*openflow.Hello); !ok {
		return nil, fmt.Errorf("ofconn: expected HELLO, got %s", m.MsgType())
	}
	reqXid, err := c.Send(&openflow.FeaturesRequest{})
	if err != nil {
		return nil, fmt.Errorf("ofconn: sending features request: %w", err)
	}
	for {
		m, err := c.ReadMessage()
		if err != nil {
			return nil, fmt.Errorf("ofconn: awaiting features reply: %w", err)
		}
		switch fr := m.(type) {
		case *openflow.FeaturesReply:
			if fr.Xid() != reqXid {
				return nil, fmt.Errorf("ofconn: features reply xid %d, want %d", fr.Xid(), reqXid)
			}
			return fr, nil
		case *openflow.EchoRequest:
			reply := &openflow.EchoReply{Data: fr.Data}
			reply.SetXid(fr.Xid())
			if err := c.WriteMessage(reply); err != nil {
				return nil, err
			}
		case *openflow.Error:
			return nil, fmt.Errorf("ofconn: switch reported %w during handshake", fr)
		default:
			return nil, fmt.Errorf("ofconn: unexpected %s during handshake", m.MsgType())
		}
	}
}

// HandshakeSwitch runs the switch side: exchange HELLO, answer the
// features request with the given reply body.
func HandshakeSwitch(c *Conn, features *openflow.FeaturesReply) error {
	if _, err := c.Send(&openflow.Hello{}); err != nil {
		return fmt.Errorf("ofconn: sending hello: %w", err)
	}
	if err := c.SetReadDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return err
	}
	defer c.SetReadDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	m, err := c.ReadMessage()
	if err != nil {
		return fmt.Errorf("ofconn: awaiting hello: %w", err)
	}
	if _, ok := m.(*openflow.Hello); !ok {
		return fmt.Errorf("ofconn: expected HELLO, got %s", m.MsgType())
	}
	m, err = c.ReadMessage()
	if err != nil {
		return fmt.Errorf("ofconn: awaiting features request: %w", err)
	}
	req, ok := m.(*openflow.FeaturesRequest)
	if !ok {
		return fmt.Errorf("ofconn: expected FEATURES_REQUEST, got %s", m.MsgType())
	}
	features.SetXid(req.Xid())
	return c.WriteMessage(features)
}

// FormatDpid formats a datapath id the way OpenFlow tooling prints it
// (16 hex digits), for logs and REST payloads.
func FormatDpid(dpid uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[dpid&0xf]
		dpid >>= 4
	}
	return string(b[:])
}
