package ofconn

import (
	"net"
	"sync"
	"testing"
	"time"

	"tsu/internal/openflow"
)

// pipePair returns two connected Conns over loopback TCP. Real TCP
// (not net.Pipe) because the handshake legitimately has both sides
// write HELLO before reading — fine with kernel socket buffers,
// deadlock on an unbuffered in-memory pipe.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	acceptc := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		acceptc <- accepted{c, err}
	}()
	a, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-acceptc
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	ca, cb := New(a), New(acc.c)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

func TestReadWriteMessage(t *testing.T) {
	ca, cb := pipePair(t)
	go func() {
		m := &openflow.EchoRequest{Data: []byte("hello")}
		m.SetXid(42)
		ca.WriteMessage(m) //nolint:errcheck // test writer
	}()
	m, err := cb.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	echo, ok := m.(*openflow.EchoRequest)
	if !ok || echo.Xid() != 42 || string(echo.Data) != "hello" {
		t.Fatalf("got %+v", m)
	}
}

func TestReadMessageAcrossPartialWrites(t *testing.T) {
	// Framing must survive byte-dribbled delivery.
	a, b := net.Pipe()
	cb := New(b)
	defer a.Close()
	defer cb.Close()

	m := &openflow.EchoRequest{Data: []byte("fragmented-payload")}
	m.SetXid(7)
	wire, err := openflow.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, chunk := range [][]byte{wire[:3], wire[3:10], wire[10:]} {
			a.Write(chunk) //nolint:errcheck // test writer
			time.Sleep(time.Millisecond)
		}
	}()
	got, err := cb.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if echo := got.(*openflow.EchoRequest); string(echo.Data) != "fragmented-payload" {
		t.Fatalf("got %+v", got)
	}
}

func TestReadMessageBackToBack(t *testing.T) {
	// Two messages in one write must be framed separately.
	a, b := net.Pipe()
	cb := New(b)
	defer a.Close()
	defer cb.Close()

	m1 := &openflow.BarrierRequest{}
	m1.SetXid(1)
	m2 := &openflow.BarrierReply{}
	m2.SetXid(2)
	w1, _ := openflow.Encode(m1)
	w2, _ := openflow.Encode(m2)
	go a.Write(append(w1, w2...)) //nolint:errcheck // test writer

	first, err := cb.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	second, err := cb.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if first.MsgType() != openflow.TypeBarrierRequest || second.MsgType() != openflow.TypeBarrierReply {
		t.Fatalf("order: %s then %s", first.MsgType(), second.MsgType())
	}
}

func TestNextXidUniqueUnderConcurrency(t *testing.T) {
	c := New(nil2())
	defer c.Close()
	const n = 64
	const per = 1000
	var mu sync.Mutex
	seen := make(map[uint32]bool, n*per)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint32, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, c.NextXid())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, x := range local {
				if x == 0 {
					t.Error("zero xid allocated")
				}
				if seen[x] {
					t.Errorf("duplicate xid %d", x)
				}
				seen[x] = true
			}
		}()
	}
	wg.Wait()
}

// nil2 returns a throwaway connection for xid-only tests.
func nil2() net.Conn {
	a, b := net.Pipe()
	go func() { _ = b }()
	return a
}

func TestHandshakeBothSides(t *testing.T) {
	ca, cb := pipePair(t)
	features := &openflow.FeaturesReply{DatapathID: 42, NTables: 1}

	errc := make(chan error, 1)
	go func() { errc <- HandshakeSwitch(cb, features) }()

	got, err := HandshakeController(ca)
	if err != nil {
		t.Fatal(err)
	}
	if got.DatapathID != 42 {
		t.Fatalf("dpid = %d", got.DatapathID)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestHandshakeControllerRejectsNonHello(t *testing.T) {
	ca, cb := pipePair(t)
	go func() {
		// Drain the controller's hello, then send garbage.
		cb.ReadMessage() //nolint:errcheck // test peer
		m := &openflow.BarrierRequest{}
		m.SetXid(1)
		cb.WriteMessage(m) //nolint:errcheck // test peer
	}()
	if _, err := HandshakeController(ca); err == nil {
		t.Fatal("non-hello accepted")
	}
}

func TestHandshakeSurvivesEchoDuringFeatures(t *testing.T) {
	ca, cb := pipePair(t)
	errc := make(chan error, 1)
	go func() {
		// Switch side: hello, read hello, read features request, but
		// interleave an echo request before the features reply.
		if _, err := cb.Send(&openflow.Hello{}); err != nil {
			errc <- err
			return
		}
		if _, err := cb.ReadMessage(); err != nil { // controller hello
			errc <- err
			return
		}
		req, err := cb.ReadMessage() // features request
		if err != nil {
			errc <- err
			return
		}
		if _, err := cb.Send(&openflow.EchoRequest{Data: []byte("mid")}); err != nil {
			errc <- err
			return
		}
		if _, err := cb.ReadMessage(); err != nil { // echo reply
			errc <- err
			return
		}
		fr := &openflow.FeaturesReply{DatapathID: 9}
		fr.SetXid(req.Xid())
		errc <- cb.WriteMessage(fr)
	}()
	fr, err := HandshakeController(ca)
	if err != nil {
		t.Fatal(err)
	}
	if fr.DatapathID != 9 {
		t.Fatalf("dpid = %d", fr.DatapathID)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestFormatDpid(t *testing.T) {
	if got := FormatDpid(3); got != "0000000000000003" {
		t.Fatalf("FormatDpid(3) = %q", got)
	}
	if got := FormatDpid(0xdeadbeef); got != "00000000deadbeef" {
		t.Fatalf("FormatDpid = %q", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	a, _ := net.Pipe()
	c := New(a)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
