package controller

import (
	"context"
	"net"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/openflow"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// testbed is a full in-process deployment: controller listening on
// loopback TCP, one simulated switch per topology node, all connected
// and handshaken.
type testbed struct {
	ctrl   *Controller
	fabric *switchsim.Fabric
	addr   string
	cancel context.CancelFunc
}

func newTestbed(t testing.TB, g *topo.Graph, swCfg func(topo.NodeID) switchsim.Config) *testbed {
	t.Helper()
	return newTestbedWithConfig(t, g, Config{Topology: g}, swCfg)
}

func newTestbedWithConfig(t testing.TB, g *topo.Graph, ctrlCfg Config, swCfg func(topo.NodeID) switchsim.Config) *testbed {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ctrl, err := New(ctrlCfg)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	addr, err := ctrl.Start(ctx, "127.0.0.1:0")
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	fabric := switchsim.NewFabric(g)
	for _, n := range g.Nodes() {
		cfg := switchsim.Config{Node: n}
		if swCfg != nil {
			cfg = swCfg(n)
		}
		sw, err := switchsim.NewSwitch(fabric, cfg)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		if err := sw.Connect(ctx, addr); err != nil {
			cancel()
			t.Fatal(err)
		}
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, 10*time.Second)
	defer waitCancel()
	if err := ctrl.WaitForSwitches(waitCtx, g.NumNodes()); err != nil {
		cancel()
		t.Fatal(err)
	}
	tb := &testbed{ctrl: ctrl, fabric: fabric, addr: addr, cancel: cancel}
	t.Cleanup(func() {
		cancel()
		for _, n := range g.Nodes() {
			if sw := fabric.Switch(n); sw != nil {
				sw.Stop()
			}
		}
	})
	return tb
}

func flowMatch(ip string) openflow.Match { return openflow.ExactNWDst(net.ParseIP(ip)) }

func nwDstOf(ip string) uint32 {
	v4 := net.ParseIP(ip).To4()
	return uint32(v4[0])<<24 | uint32(v4[1])<<16 | uint32(v4[2])<<8 | uint32(v4[3])
}

func TestHandshakeAndRegistry(t *testing.T) {
	tb := newTestbed(t, topo.Fig1(), nil)
	dps := tb.ctrl.Datapaths()
	if len(dps) != 12 {
		t.Fatalf("datapaths = %v", dps)
	}
	for i, dpid := range dps {
		if dpid != uint64(i+1) {
			t.Fatalf("datapaths = %v, want 1..12 sorted", dps)
		}
	}
}

func TestInstallPathAndProbe(t *testing.T) {
	tb := newTestbed(t, topo.Fig1(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tb.ctrl.InstallPath(ctx, topo.Fig1OldPath, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatal(err)
	}
	res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if res.Outcome != switchsim.ProbeDelivered || res.Host != "h2" {
		t.Fatalf("probe = %+v", res)
	}
	if !res.Visited.Equal(topo.Fig1OldPath) {
		t.Fatalf("visited %v", res.Visited)
	}
}

func TestBarrierWaitsForSlowInstall(t *testing.T) {
	// With a 30ms install latency, the barrier reply must not arrive
	// before the FlowMod has been applied.
	g := topo.Linear(2)
	tb := newTestbed(t, g, func(n topo.NodeID) switchsim.Config {
		return switchsim.Config{Node: n, InstallLatency: netem.Fixed(30 * time.Millisecond)}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	fmod, err := tb.ctrl.PathFlowMod(1, 2, flowMatch("10.0.0.2"), openflow.FlowAdd)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := tb.ctrl.SendFlowMod(1, fmod); err != nil {
		t.Fatal(err)
	}
	if err := tb.ctrl.Barrier(ctx, 1); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 25*time.Millisecond {
		t.Fatalf("barrier returned after %v, before the 30ms install", elapsed)
	}
	if tb.fabric.Switch(1).Table().Len() != 1 {
		t.Fatal("rule not installed after barrier")
	}
}

func TestUpdateJobWayUpFig1(t *testing.T) {
	tb := newTestbed(t, topo.Fig1(), func(n topo.NodeID) switchsim.Config {
		return switchsim.Config{
			Node:           n,
			InstallLatency: netem.Uniform{Min: time.Millisecond, Max: 3 * time.Millisecond},
			CtrlLatency:    netem.Uniform{Min: 0, Max: 2 * time.Millisecond},
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tb.ctrl.InstallPath(ctx, topo.Fig1OldPath, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatal(err)
	}

	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	job, err := tb.ctrl.Engine().Submit(in, sched, flowMatch("10.0.0.2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if job.State() != JobDone {
		t.Fatalf("job state = %v", job.State())
	}
	timings := job.Timings()
	if len(timings) != sched.NumRounds() {
		t.Fatalf("timings for %d rounds, want %d", len(timings), sched.NumRounds())
	}
	for _, rt := range timings {
		if rt.Duration() <= 0 {
			t.Fatalf("round %d has non-positive duration", rt.Round)
		}
		if rt.FlowMods != len(rt.Switches) {
			t.Fatalf("round %d flowmods = %d, switches = %d", rt.Round, rt.FlowMods, len(rt.Switches))
		}
	}
	if job.TotalDuration() <= 0 {
		t.Fatal("total duration missing")
	}

	// The data plane must now follow the new path.
	res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if res.Outcome != switchsim.ProbeDelivered {
		t.Fatalf("post-update probe = %+v", res)
	}
	if !res.Visited.Equal(topo.Fig1NewPath) {
		t.Fatalf("post-update path %v, want %v", res.Visited, topo.Fig1NewPath)
	}

	// Barrier accounting: every updated switch saw at least one
	// barrier from its rounds (plus one from InstallPath for old-path
	// switches).
	for _, n := range sched.Rounds[0] {
		if tb.fabric.Switch(n).BarriersSeen() == 0 {
			t.Fatalf("switch %d saw no barrier", n)
		}
	}
}

func TestUpdateJobIntervalBetweenRounds(t *testing.T) {
	g := topo.Fig1()
	tb := newTestbed(t, g, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tb.ctrl.InstallPath(ctx, topo.Fig1OldPath, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatal(err)
	}
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumRounds() < 2 {
		t.Skipf("need >= 2 rounds, got %d", sched.NumRounds())
	}
	const interval = 20 * time.Millisecond
	job, err := tb.ctrl.Engine().Submit(in, sched, flowMatch("10.0.0.2"), interval)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(sched.NumRounds()-1) * interval
	if job.TotalDuration() < want {
		t.Fatalf("total %v < %v: interval not honored", job.TotalDuration(), want)
	}
}

func TestEngineRejectsMismatchedSchedule(t *testing.T) {
	tb := newTestbed(t, topo.Linear(4), nil)
	in := core.MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 2, 3, 4}, 0)
	bad := &core.Schedule{Algorithm: "bogus", Rounds: [][]topo.NodeID{{1}}}
	if _, err := tb.ctrl.Engine().Submit(in, bad, flowMatch("10.0.0.2"), 0); err == nil {
		t.Fatal("mismatched schedule accepted")
	}
}

func TestJobFailsOnDisconnectedSwitch(t *testing.T) {
	// Only switches 1..3 of a 4-node ring connect; updating switch 4
	// (reachable in the topology, absent on the wire) must fail the
	// job at execution.
	g := topo.Ring(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrl, err := New(Config{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := ctrl.Start(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fabric := switchsim.NewFabric(g)
	for _, n := range []topo.NodeID{1, 2, 3} {
		sw, err := switchsim.NewSwitch(fabric, switchsim.Config{Node: n})
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Connect(ctx, addr); err != nil {
			t.Fatal(err)
		}
		defer sw.Stop()
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, 5*time.Second)
	defer waitCancel()
	if err := ctrl.WaitForSwitches(waitCtx, 3); err != nil {
		t.Fatal(err)
	}

	// New path routes through switch 4, which never connected: the
	// engine's first round updates new-only switch 4 and must fail.
	in := core.MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 4, 3}, 0)
	sched, err := core.Peacock(in)
	if err != nil {
		t.Fatal(err)
	}
	job, err := ctrl.Engine().Submit(in, sched, flowMatch("10.0.0.2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	jctx, jcancel := context.WithTimeout(ctx, 10*time.Second)
	defer jcancel()
	if err := job.Wait(jctx); err == nil {
		t.Fatal("job against disconnected switch succeeded")
	}
	if job.State() != JobFailed {
		t.Fatalf("state = %v, want failed", job.State())
	}
}

func TestFlowStatsRoundTrip(t *testing.T) {
	tb := newTestbed(t, topo.Linear(3), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tb.ctrl.InstallPath(ctx, topo.Path{1, 2, 3}, flowMatch("10.0.0.2"), ""); err != nil {
		t.Fatal(err)
	}
	flows, err := tb.ctrl.FlowStats(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 {
		t.Fatalf("flows = %+v", flows)
	}
	if flows[0].Match.NWDstIP().String() != "10.0.0.2" {
		t.Fatalf("flow match = %v", flows[0].Match.NWDstIP())
	}
}

func TestWaitForSwitchesTimeout(t *testing.T) {
	g := topo.Linear(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrl, err := New(Config{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Start(ctx, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer waitCancel()
	if err := ctrl.WaitForSwitches(waitCtx, 2); err == nil {
		t.Fatal("wait should time out with no switches")
	}
}

func TestNewRequiresTopology(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("controller without topology accepted")
	}
}

// FlowIPForTest is the demo flow destination used across REST tests.
const FlowIPForTest = "10.0.0.2"

func TestFlowRemovedNotification(t *testing.T) {
	// A rule with a hard timeout and the send-flow-removed flag expires
	// on the switch and surfaces as a FLOW_REMOVED at the controller.
	g := topo.Linear(2)
	tb := newTestbed(t, g, func(n topo.NodeID) switchsim.Config {
		return switchsim.Config{Node: n, TimeoutUnit: 20 * time.Millisecond}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fmod, err := tb.ctrl.PathFlowMod(1, 2, flowMatch("10.0.0.2"), openflow.FlowAdd)
	if err != nil {
		t.Fatal(err)
	}
	fmod.HardTimeout = 2 // 2 × 20ms
	fmod.Flags = openflow.FlagSendFlowRem
	if err := tb.ctrl.SendFlowMod(1, fmod); err != nil {
		t.Fatal(err)
	}
	if err := tb.ctrl.Barrier(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if tb.fabric.Switch(1).Table().Len() != 1 {
		t.Fatal("rule not installed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for tb.ctrl.FlowRemovedCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no FLOW_REMOVED after expiry (table len %d)", tb.fabric.Switch(1).Table().Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tb.fabric.Switch(1).Table().Len() != 0 {
		t.Fatal("expired rule still installed")
	}
}

func TestFlowExpiryWithoutFlagStaysSilent(t *testing.T) {
	g := topo.Linear(2)
	tb := newTestbed(t, g, func(n topo.NodeID) switchsim.Config {
		return switchsim.Config{Node: n, TimeoutUnit: 10 * time.Millisecond}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fmod, err := tb.ctrl.PathFlowMod(1, 2, flowMatch("10.0.0.2"), openflow.FlowAdd)
	if err != nil {
		t.Fatal(err)
	}
	fmod.HardTimeout = 1
	if err := tb.ctrl.SendFlowMod(1, fmod); err != nil {
		t.Fatal(err)
	}
	if err := tb.ctrl.Barrier(ctx, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tb.fabric.Switch(1).Table().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("rule never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := tb.ctrl.FlowRemovedCount(); got != 0 {
		t.Fatalf("unexpected FLOW_REMOVED count %d without the flag", got)
	}
}
