package controller

import (
	"context"
	"fmt"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// BenchmarkEngineDisjointFlows measures the dispatcher's gain: flows
// on disjoint switch sets (a grid, one row pair per flow) are
// submitted together and one iteration is the wall-clock until all
// complete. The serial sub-benchmarks (EngineWorkers=1) are the
// paper's FIFO engine; concurrent is the conflict-aware default. With
// a realistic per-switch rule-install latency the concurrent engine
// finishes the 4-flow batch in roughly a quarter of the serial
// wall-clock; the 64-flow arms are the sharded dispatcher's scale
// tier — 640 switches, 64 simultaneous jobs multiplexed over the
// fixed shard pool.
//
//	go test ./internal/controller -bench EngineDisjointFlows -benchtime 5x
func BenchmarkEngineDisjointFlows(b *testing.B) {
	for _, bc := range []struct {
		name    string
		flows   int
		workers int
	}{
		// Arm names must not end in `-<digits>`: benchjson strips a
		// trailing dash-number as the GOMAXPROCS suffix.
		{"serial", benchFlows, 1},
		{"concurrent", benchFlows, 8},
		{"serial-64flows", 64, 1},
		{"concurrent-64flows", 64, 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			benchmarkDisjointFlows(b, bc.flows, bc.workers)
		})
	}
}

const benchFlows = 4

// benchFlow is one of the disjoint updates: flow k owns grid rows 2k
// and 2k+1 of a (2*flows)x5 grid (node id = row*5 + col + 1). The old
// path runs along the even row; the new path detours through the odd
// row.
func benchFlow(k int) (fwd, back *core.Instance, nwDst string) {
	base := topo.NodeID(2 * k * 5)
	old := topo.Path{base + 1, base + 2, base + 3, base + 4, base + 5}
	detour := topo.Path{base + 1, base + 6, base + 7, base + 8, base + 9, base + 10, base + 5}
	return core.MustInstance(old, detour, 0), core.MustInstance(detour, old, 0),
		fmt.Sprintf("10.0.%d.2", k)
}

func benchmarkDisjointFlows(b *testing.B, flows, workers int) {
	g := topo.Grid(2*flows, 5)
	tb := newTestbedWithConfig(b, g, Config{Topology: g, EngineWorkers: workers},
		func(n topo.NodeID) switchsim.Config {
			return switchsim.Config{
				Node:           n,
				InstallLatency: netem.Fixed(3 * time.Millisecond),
				Source:         netem.NewSource(int64(n)),
			}
		})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs := make([]*Job, 0, flows)
		for k := 0; k < flows; k++ {
			fwd, back, nwDst := benchFlow(k)
			in := fwd
			if i%2 == 1 {
				in = back // alternate direction so every iteration has work
			}
			sched, err := core.Peacock(in)
			if err != nil {
				b.Fatal(err)
			}
			job, err := tb.ctrl.Engine().Submit(in, sched, flowMatch(nwDst), 0)
			if err != nil {
				b.Fatal(err)
			}
			jobs = append(jobs, job)
		}
		for _, job := range jobs {
			if err := job.Wait(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}
