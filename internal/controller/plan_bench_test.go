package controller

import (
	"context"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/simclock"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// BenchmarkPlanDispatch measures what the ack-driven dispatcher buys
// under heavy-tailed switch latencies (netem bounded-Pareto installs,
// the PAM'15 stall model): a Comb(12, 8) update — twelve independent
// detour chains of eight switches each — executed on a full live
// deployment (controller + 121 TCP switches) in virtual time.
//
// round-barrier runs GreedySLF's nine lock-step rounds as a layered
// plan: every round waits for the slowest switch of every unrelated
// chain, so each of the nine barriers pays a fresh straggler. The
// sparse plan (depth 2, critical path 1) releases each spine switch
// the moment its own chain acks, so stragglers stall only their own
// branch and overlap. Completion is reported as virtual milliseconds
// per update (vclock_ms/op); the sparse plan completes the same
// update more than 2x faster.
//
//	go test ./internal/controller -bench PlanDispatch -benchtime 5x
func BenchmarkPlanDispatch(b *testing.B) {
	for _, bc := range []struct {
		name   string
		sparse bool
	}{
		{"round-barrier", false},
		{"sparse-plan", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			benchmarkPlanDispatch(b, bc.sparse)
		})
	}
}

const (
	benchCombK     = 12
	benchCombChain = 8
)

// benchParetoInstall is the heavy-tailed rule-install latency every
// switch draws from: 1ms floor, tail index 2, 500ms stalls at the cap.
var benchParetoInstall = netem.Pareto{Scale: time.Millisecond, Alpha: 2.0, Cap: 500 * time.Millisecond}

func benchmarkPlanDispatch(b *testing.B, sparse bool) {
	ti := topo.Comb(benchCombK, benchCombChain)
	fwd := core.MustInstance(ti.Old, ti.New, 0)
	back := core.MustInstance(ti.New, ti.Old, 0)

	sim := simclock.NewSim(time.Time{})
	// A generous idle window: with ~100 concurrent TCP flows the
	// driver must not release the next virtual timestamp while sends
	// are still in kernel flight, or stragglers get billed virtual
	// time they never modelled.
	stop := sim.AutoAdvance(3 * time.Millisecond)
	defer stop()
	tb := newTestbedWithConfig(b, ti.Graph, Config{Topology: ti.Graph, Clock: sim},
		func(n topo.NodeID) switchsim.Config {
			return switchsim.Config{
				Node:           n,
				InstallLatency: benchParetoInstall,
				Clock:          sim,
			}
		})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	match := flowMatch("10.0.0.2")
	if err := tb.ctrl.InstallPath(ctx, fwd.Old, match, ""); err != nil {
		b.Fatal(err)
	}

	sched, err := core.GreedySLF(fwd)
	if err != nil {
		b.Fatal(err)
	}
	plan := core.SparsePlan(fwd, sched)
	if !plan.Sparse || plan.Depth() != 2 {
		b.Fatalf("comb sparse plan = %s, want a depth-2 sparse DAG", plan)
	}
	backSched, err := core.GreedySLF(back)
	if err != nil {
		b.Fatal(err)
	}

	var virtual time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var job *Job
		if sparse {
			job, err = tb.ctrl.Engine().SubmitPlan(fwd, plan, match, SubmitOptions{})
		} else {
			job, err = tb.ctrl.Engine().Submit(fwd, sched, match, 0)
		}
		if err != nil {
			b.Fatal(err)
		}
		if err := job.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		virtual += job.TotalDuration()

		// Roll back (unmeasured) so the next iteration updates again.
		b.StopTimer()
		undo, err := tb.ctrl.Engine().Submit(back, backSched, match, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := undo.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "vclock_ms/op")
}
