package controller

import (
	"context"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/simclock"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// BenchmarkPlanDispatch measures what each dispatch refinement buys
// under heavy-tailed switch latencies (netem bounded-Pareto installs,
// the PAM'15 stall model) and a WAN-grade control channel: a
// Comb(12, 8) update — twelve independent detour chains of eight
// switches each — executed on a full live deployment (controller + 121
// TCP switches) in virtual time, with every controller↔switch message
// paying benchCtrlLatency and every switch↔switch ack paying
// benchPeerLatency (ctrl-RTT ≫ hop-latency, the regime of a remote
// controller over in-fabric peers).
//
// Four arms:
//
//	round-barrier          GreedySLF's nine lock-step rounds as a
//	                       layered plan: every round pays two control
//	                       RTTs plus the slowest switch of every
//	                       unrelated chain — nine barriers, nine
//	                       stragglers, eighteen serialized RTTs.
//	sparse-plan            the controller-driven sparse DAG (depth 2,
//	                       critical path 1): stragglers only stall
//	                       their own branch, but every node still pays
//	                       its FlowMod + barrier on the control
//	                       channel — four serialized RTTs end to end.
//	decentralized-layered  the same nine-layer DAG executed by the
//	                       switches themselves (depth 9 ≥ 5): one
//	                       partition broadcast, then every
//	                       happens-before edge is a sub-millisecond
//	                       peer ack instead of two control RTTs. The
//	                       control channel appears exactly once on the
//	                       critical path.
//	decentralized-sparse   the sparse DAG peer-to-peer: both
//	                       optimizations compose.
//
// Completion is reported as virtual milliseconds per update
// (vclock_ms/op). The headline target: decentralized-layered — a
// depth-9 chain of dependencies — beats the controller-driven sparse
// plan by ≥3x, because chain depth costs hop latency instead of
// control RTTs.
//
//	go test ./internal/controller -bench PlanDispatch -benchtime 5x
func BenchmarkPlanDispatch(b *testing.B) {
	for _, bc := range []struct {
		name   string
		sparse bool
		mode   ExecMode
	}{
		{"round-barrier", false, ModeController},
		{"sparse-plan", true, ModeController},
		{"decentralized-layered", false, ModeDecentralized},
		{"decentralized-sparse", true, ModeDecentralized},
	} {
		b.Run(bc.name, func(b *testing.B) {
			benchmarkPlanDispatch(b, bc.sparse, bc.mode)
		})
	}
}

const (
	benchCombK     = 12
	benchCombChain = 8
)

// benchParetoInstall is the heavy-tailed rule-install latency every
// switch draws from: 1ms floor, tail index 2, 500ms stalls at the cap.
var benchParetoInstall = netem.Pareto{Scale: time.Millisecond, Alpha: 2.0, Cap: 500 * time.Millisecond}

// benchCtrlLatency is the one-way controller↔switch delivery latency:
// a remote (WAN) controller. benchPeerLatency is the switch↔switch
// hop for decentralized acks: an in-fabric data-plane neighbor,
// three orders of magnitude closer.
var (
	benchCtrlLatency = netem.Fixed(200 * time.Millisecond)
	benchPeerLatency = netem.Fixed(200 * time.Microsecond)
)

func benchmarkPlanDispatch(b *testing.B, sparse bool, mode ExecMode) {
	ti := topo.Comb(benchCombK, benchCombChain)
	fwd := core.MustInstance(ti.Old, ti.New, 0)
	back := core.MustInstance(ti.New, ti.Old, 0)

	sim := simclock.NewSim(time.Time{})
	// A generous idle window: with ~100 concurrent TCP flows the
	// driver must not release the next virtual timestamp while sends
	// are still in kernel flight, or stragglers get billed virtual
	// time they never modelled.
	stop := sim.AutoAdvance(3 * time.Millisecond)
	defer stop()
	tb := newTestbedWithConfig(b, ti.Graph, Config{Topology: ti.Graph, Clock: sim},
		func(n topo.NodeID) switchsim.Config {
			return switchsim.Config{
				Node:           n,
				InstallLatency: benchParetoInstall,
				CtrlLatency:    benchCtrlLatency,
				PeerLatency:    benchPeerLatency,
				Clock:          sim,
			}
		})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	match := flowMatch("10.0.0.2")
	if err := tb.ctrl.InstallPath(ctx, fwd.Old, match, ""); err != nil {
		b.Fatal(err)
	}

	sched, err := core.GreedySLF(fwd)
	if err != nil {
		b.Fatal(err)
	}
	var plan *core.Plan
	if sparse {
		plan = core.SparsePlan(fwd, sched)
		if !plan.Sparse || plan.Depth() != 2 {
			b.Fatalf("comb sparse plan = %s, want a depth-2 sparse DAG", plan)
		}
	} else if mode == ModeDecentralized {
		// The depth target of the decentralized arm: a genuinely deep
		// dependency chain, so the win cannot come from plan shape.
		if d := core.PlanFromSchedule(sched).Depth(); d < 5 {
			b.Fatalf("comb layered plan depth = %d, want >= 5", d)
		}
	}
	backSched, err := core.GreedySLF(back)
	if err != nil {
		b.Fatal(err)
	}

	var virtual time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var job *Job
		if sparse {
			job, err = tb.ctrl.Engine().SubmitPlan(fwd, plan, match, SubmitOptions{Mode: mode})
		} else {
			job, err = tb.ctrl.Engine().SubmitOpts(fwd, sched, match, SubmitOptions{Mode: mode})
		}
		if err != nil {
			b.Fatal(err)
		}
		if err := job.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		virtual += job.TotalDuration()

		// Roll back (unmeasured) so the next iteration updates again.
		b.StopTimer()
		undo, err := tb.ctrl.Engine().Submit(back, backSched, match, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := undo.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "vclock_ms/op")
}
