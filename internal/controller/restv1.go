package controller

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tsu/internal/api"
	"tsu/internal/core"
	"tsu/internal/explore"
	"tsu/internal/metrics"
	"tsu/internal/openflow"
	"tsu/internal/synth"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

// This file implements the versioned /v1 REST surface (see
// internal/api for the wire schema):
//
//	POST /v1/updates          batch flow-update submission (+ dry-run)
//	GET  /v1/updates          job list, ?state= filtering
//	GET  /v1/updates/{id}     job status
//	GET  /v1/updates/{id}/watch  round-by-round progress as SSE
//	POST /v1/verify           schedule + verify without touching switches
//	POST /v1/explore          schedule + adversarial interleaving explorer
//	POST /v1/policies         install a routing policy along a path
//	GET  /v1/healthz          ops probe (switches, queue depth)
//	GET  /v1/switches         connected datapath ids
//
// The legacy paper-schema routes in rest.go are thin adapters over the
// same planning/submission core.

// handlerError carries the HTTP status and machine-readable code a
// failed request maps to; plan optionally attaches a best-so-far plan
// shape (synthesis budget exceeded).
type handlerError struct {
	status int
	code   int
	msg    string
	plan   *api.PlanShape
}

func (e *handlerError) Error() string { return e.msg }

func errf(status, code int, format string, args ...any) *handlerError {
	return &handlerError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// writeErr renders any error as the structured envelope; plain errors
// become 500/CodeInternal.
func writeErr(w http.ResponseWriter, err error) {
	if he, ok := err.(*handlerError); ok {
		writeJSON(w, he.status, api.Error{Message: he.msg, Code: he.code, Plan: he.plan})
		return
	}
	writeJSON(w, http.StatusInternalServerError, api.Error{Message: err.Error(), Code: api.CodeInternal})
}

// plannedUpdate is one validated batch entry with its computed
// schedule and execution plan. Algo is "two-phase" (Sched and DAG
// nil) or a registry name; Props is the entry's requested property
// set (0 when unset). DAG is the execution plan: the schedule's
// lossless layered conversion by default, the scheduler's sparse DAG
// when the entry asked for plan "sparse" and the scheduler provides
// one.
type plannedUpdate struct {
	In    *core.Instance
	Match openflow.Match
	Algo  string
	Sched *core.Schedule
	DAG   *core.Plan
	Props core.Property
	Mode  ExecMode
}

// planUpdate validates one FlowUpdate and computes its schedule. All
// request validation the engine used to discover mid-job lives here:
// malformed paths, off-path waypoints, bad matches and unknown
// algorithms are rejected before anything is admitted.
//
// forVerify relaxes the property contract: on the execution path a
// scheduler that cannot guarantee the requested properties is a 400,
// but on the dry-run verify path those properties are exactly what the
// caller wants checked (reporting what a baseline would break is the
// endpoint's purpose).
func planUpdate(u api.FlowUpdate, forVerify bool) (*plannedUpdate, error) {
	ip := net.ParseIP(u.NWDst)
	if ip == nil || ip.To4() == nil {
		return nil, errf(http.StatusBadRequest, api.CodeInvalidMatch, "nw_dst %q is not an IPv4 address", u.NWDst)
	}
	in, err := core.NewInstance(api.ToPath(u.OldPath), api.ToPath(u.NewPath), topo.NodeID(u.Waypoint))
	if err != nil {
		code := api.CodeInvalidPath
		if errors.Is(err, core.ErrWaypoint) {
			code = api.CodeInvalidWaypoint
		}
		return nil, errf(http.StatusBadRequest, code, "invalid update: %v", err)
	}
	props, err := core.ParseProperties(u.Properties)
	if err != nil {
		return nil, errf(http.StatusBadRequest, api.CodeUnknownProperty, "%v", err)
	}
	switch u.Plan {
	case "", "layered", "sparse":
	default:
		return nil, errf(http.StatusBadRequest, api.CodeBadRequest,
			"plan %q unknown (want layered or sparse)", u.Plan)
	}
	mode, ok := ParseExecMode(u.Mode)
	if !ok {
		return nil, errf(http.StatusBadRequest, api.CodeBadRequest,
			"mode %q unknown (want controller or decentralized)", u.Mode)
	}
	p := &plannedUpdate{In: in, Match: openflow.ExactNWDst(ip), Algo: u.Algorithm, Props: props, Mode: mode}
	if u.Algorithm == "two-phase" {
		// Per-packet consistency: every packet rides exactly one
		// policy end to end, which subsumes all four per-flow
		// transient properties — any request is satisfied.
		return p, nil
	}
	if u.Algorithm != "" {
		if _, err := core.Lookup(u.Algorithm); err != nil {
			return nil, errf(http.StatusBadRequest, api.CodeUnknownAlgorithm, "%v", err)
		}
	}
	if u.Algorithm == core.AlgoSynth {
		return planSynthUpdate(p, in, u, props)
	}
	sched, err := core.ScheduleByName(in, u.Algorithm, props)
	if err != nil {
		return nil, errf(http.StatusBadRequest, api.CodeScheduleFailed, "scheduling failed: %v", err)
	}
	// On the execution path, requested properties are a contract, not
	// a hint: schedulers with fixed guarantees (peacock, oneshot, ...)
	// ignore the props argument, so reject rather than execute an
	// update that does not preserve what the client demanded.
	if !forVerify && props != 0 && !sched.Guarantees.Has(props) {
		return nil, errf(http.StatusBadRequest, api.CodeScheduleFailed,
			"scheduler %q guarantees %s, which does not cover the requested %s",
			sched.Algorithm, sched.Guarantees, props)
	}
	p.Algo = sched.Algorithm
	p.Sched = sched
	// Execution plan: the lossless layered conversion by default; the
	// sparse DAG on request, derived from the schedule just computed
	// (the PlanScheduler capability gates which algorithms' rounds
	// justify the derivation — never re-running the scheduler, so the
	// reported rounds and the executed DAG come from the same run).
	// Schedulers without a sparse form fall back to layered —
	// PlanShape.Sparse reports what ran.
	p.DAG = core.PlanFromSchedule(sched)
	if u.Plan == "sparse" {
		if sch, err := core.Lookup(p.Algo); err == nil {
			if _, capable := sch.(core.PlanScheduler); capable {
				p.DAG = core.SparsePlan(in, sched)
			}
		}
	}
	return p, nil
}

// planSynthUpdate plans an update through the CEGIS synthesizer,
// honoring the per-request refinement budget: a positive SynthBudget
// runs pure synthesis and surfaces a budget overrun as a structured
// 400/CodeSynthBudget carrying the best-so-far plan shape; zero runs
// the heuristic-backed portfolio with server defaults. The synthesized
// sparse DAG executes directly when the entry asked for plan "sparse";
// the layered view of its layers otherwise.
func planSynthUpdate(p *plannedUpdate, in *core.Instance, u api.FlowUpdate, props core.Property) (*plannedUpdate, error) {
	if u.SynthBudget < 0 {
		return nil, errf(http.StatusBadRequest, api.CodeBadRequest, "synth_budget %d is negative", u.SynthBudget)
	}
	sprops := synth.DefaultProps(in, props)
	var (
		plan *core.Plan
		err  error
	)
	if u.SynthBudget > 0 {
		plan, _, err = synth.Synthesize(in, sprops, synth.Options{Budget: u.SynthBudget})
	} else {
		plan, _, err = synth.Plan(in, sprops, synth.Options{})
	}
	if err != nil {
		var be *synth.BudgetError
		if errors.As(err, &be) {
			he := errf(http.StatusBadRequest, api.CodeSynthBudget,
				"synthesis budget of %d refinements exceeded after %d counterexamples", be.Budget, be.Transcript.Iters)
			he.plan = planShape(be.Best)
			return nil, he
		}
		return nil, errf(http.StatusBadRequest, api.CodeScheduleFailed, "synthesis failed: %v", err)
	}
	p.Algo = core.AlgoSynth
	p.Sched = &core.Schedule{Rounds: plan.Layers(), Algorithm: core.AlgoSynth, Guarantees: plan.Guarantees}
	// The generic path re-derives a sparse DAG from the schedule; here
	// the synthesized DAG itself is the artifact, so it executes as-is
	// on request instead of being reconstructed.
	p.DAG = core.PlanFromSchedule(p.Sched)
	if u.Plan == "sparse" {
		p.DAG = plan
	}
	return p, nil
}

// planShape converts a plan's DAG shape to the wire form.
func planShape(p *core.Plan) *api.PlanShape {
	if p == nil {
		return nil
	}
	return &api.PlanShape{
		Nodes:        p.NumNodes(),
		Edges:        p.NumEdges(),
		Depth:        p.Depth(),
		Width:        p.Width(),
		CriticalPath: p.CriticalPath(),
		Sparse:       p.Sparse,
	}
}

// planBatch validates a whole batch atomically: the first invalid
// entry rejects the batch and nothing is submitted.
func planBatch(req api.BatchUpdateRequest, forVerify bool) ([]*plannedUpdate, error) {
	if req.Interval < 0 {
		return nil, errf(http.StatusBadRequest, api.CodeInvalidInterval, "interval %d ms is negative", req.Interval)
	}
	if len(req.Updates) == 0 {
		return nil, errf(http.StatusBadRequest, api.CodeEmptyBatch, "batch contains no updates")
	}
	plans := make([]*plannedUpdate, len(req.Updates))
	for i, u := range req.Updates {
		p, err := planUpdate(u, forVerify)
		if err != nil {
			if he, ok := err.(*handlerError); ok {
				wrapped := errf(he.status, he.code, "updates[%d]: %s", i, he.msg)
				wrapped.plan = he.plan
				return nil, wrapped
			}
			return nil, err
		}
		plans[i] = p
	}
	return plans, nil
}

// accepted converts a plan (and its job, nil on dry-run) to the wire
// shape.
func accepted(p *plannedUpdate, job *Job) api.AcceptedUpdate {
	out := api.AcceptedUpdate{Algorithm: p.Algo}
	if job != nil {
		out.ID = job.ID
	}
	if p.Sched != nil {
		out.Rounds = api.FromRounds(p.Sched.Rounds)
		out.Guarantees = p.Sched.Guarantees.String()
		out.Compromise = p.Sched.LoopFreedomCompromised
		out.Plan = planShape(p.DAG)
	} else {
		out.Guarantees = "PerPacketConsistency"
	}
	return out
}

// prepareSpec builds one planned update's execution DAG (no
// admission): two-phase and layered plans go through the round
// builders, sparse plans through the per-node builder.
func (c *Controller) prepareSpec(p *plannedUpdate, opts SubmitOptions) (jobSpec, error) {
	var ep execPlan
	var err error
	algo := p.Algo
	switch {
	case p.Sched == nil:
		algo = "two-phase"
		var rounds []execRound
		if rounds, err = c.engine.buildTwoPhaseRounds(p.In, p.Match, TwoPhaseTag, opts); err == nil {
			ep = layeredExecPlan(rounds)
		}
	case p.DAG != nil && p.DAG.Sparse:
		ep, err = c.engine.buildPlanNodes(p.In, p.DAG, p.Match, opts)
	default:
		var rounds []execRound
		if rounds, err = c.engine.buildScheduleRounds(p.In, p.Sched, p.Match, opts); err == nil {
			ep = layeredExecPlan(rounds)
		}
	}
	if err != nil {
		return jobSpec{}, errf(http.StatusBadRequest, api.CodeBadRequest, "%v", err)
	}
	spec := jobSpec{algorithm: algo, plan: ep, interval: opts.Interval, mode: p.Mode}
	// Scheduled updates are reversible mid-plan (see SubmitOpts/
	// SubmitPlan); two-phase jobs are not — their tagged mods have no
	// reverse plan, matching SubmitTwoPhase.
	if p.Sched != nil {
		spec.rollback = &rollbackSpec{in: p.In, match: p.Match, props: p.Sched.Guarantees}
	}
	return spec, nil
}

// submitPlanned builds and admits a group of planned updates
// atomically: either every update becomes a job or none does.
func (c *Controller) submitPlanned(plans []*plannedUpdate, opts SubmitOptions) ([]*Job, error) {
	specs := make([]jobSpec, len(plans))
	for i, p := range plans {
		spec, err := c.prepareSpec(p, opts)
		if err != nil {
			if he, ok := err.(*handlerError); ok && len(plans) > 1 {
				return nil, errf(he.status, he.code, "updates[%d]: %s", i, he.msg)
			}
			return nil, err
		}
		specs[i] = spec
	}
	jobs, err := c.engine.enqueueAll(specs)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			return nil, errf(http.StatusServiceUnavailable, api.CodeQueueFull, "%v", err)
		}
		return nil, errf(http.StatusBadRequest, api.CodeBadRequest, "%v", err)
	}
	return jobs, nil
}

func (c *Controller) handleV1SubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchUpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, errf(http.StatusBadRequest, api.CodeInvalidJSON, "invalid JSON: %v", err))
		return
	}
	plans, err := planBatch(req, false)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := api.BatchUpdateResponse{DryRun: req.DryRun, Updates: make([]api.AcceptedUpdate, 0, len(plans))}
	if req.DryRun {
		for _, p := range plans {
			resp.Updates = append(resp.Updates, accepted(p, nil))
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	opts := SubmitOptions{Interval: time.Duration(req.Interval) * time.Millisecond, Cleanup: req.Cleanup}
	jobs, err := c.submitPlanned(plans, opts)
	if err != nil {
		writeErr(w, err)
		return
	}
	for i, p := range plans {
		resp.Updates = append(resp.Updates, accepted(p, jobs[i]))
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// v1JobStatus converts a Job to the wire shape.
func v1JobStatus(job *Job) api.JobStatus {
	depth, width, critical, sparse := job.PlanShape()
	st := api.JobStatus{
		ID:          job.ID,
		State:       job.State().String(),
		Algorithm:   job.Algorithm,
		Mode:        job.Mode.String(),
		TotalMicros: job.TotalDuration().Microseconds(),
		Rounds:      []api.RoundStatus{},
		Plan: &api.PlanShape{
			Nodes:        job.NumInstalls(),
			Edges:        job.NumEdges(),
			Depth:        depth,
			Width:        width,
			CriticalPath: critical,
			Sparse:       sparse,
		},
	}
	st.Recovered = job.Recovered
	st.Adopted = job.Adopted
	if err := job.Err(); err != nil {
		st.Error = err.Error()
	}
	if f := job.Failure(); f != nil {
		st.Failure = v1FailureReport(f)
	}
	for _, t := range job.Timings() {
		st.Rounds = append(st.Rounds, v1RoundStatus(t))
	}
	for _, it := range job.Installs() {
		st.Installs = append(st.Installs, v1InstallStatus(it))
	}
	if total, per := job.Messages(); total.Ctrl > 0 || total.Peer > 0 {
		st.Messages = &api.MessageCount{Ctrl: total.Ctrl, Peer: total.Peer}
		switches := make([]topo.NodeID, 0, len(per))
		for n := range per {
			switches = append(switches, n)
		}
		sort.Slice(switches, func(a, b int) bool { return switches[a] < switches[b] })
		for _, n := range switches {
			st.MessagesPerSwitch = append(st.MessagesPerSwitch,
				api.MessageCount{Switch: uint64(n), Ctrl: per[n].Ctrl, Peer: per[n].Peer})
		}
	}
	return st
}

// v1FailureReport converts a job's abort outcome to the wire shape.
func v1FailureReport(f *FailureReport) *api.FailureReport {
	out := &api.FailureReport{
		Phase:            f.Phase,
		TriggeringFault:  f.TriggeringFault,
		Installed:        api.FromPath(topo.Path(f.Installed)),
		RolledBack:       api.FromPath(topo.Path(f.RolledBack)),
		RollbackVerified: f.RollbackVerified,
	}
	for _, s := range f.Stuck {
		out.Stuck = append(out.Stuck, api.StuckNode{
			Switch:    uint64(s.Switch),
			WaitingOn: api.FromPath(topo.Path(s.WaitingOn)),
		})
	}
	return out
}

func v1InstallStatus(it InstallTiming) api.InstallStatus {
	return api.InstallStatus{
		Switch:     uint64(it.Node),
		Layer:      it.Layer,
		ReleasedBy: uint64(it.ReleasedBy),
		FlowMods:   it.FlowMods,
		Cleanup:    it.Cleanup,
		Micros:     it.Duration().Microseconds(),
	}
}

func v1RoundStatus(t RoundTiming) api.RoundStatus {
	sw := make([]uint64, len(t.Switches))
	for i, n := range t.Switches {
		sw[i] = uint64(n)
	}
	return api.RoundStatus{Round: t.Round, Switches: sw, Micros: t.Duration().Microseconds(), Cleanup: t.Cleanup}
}

func (c *Controller) handleV1JobStatus(w http.ResponseWriter, r *http.Request) {
	job, err := c.jobFromPath(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v1JobStatus(job))
}

func (c *Controller) jobFromPath(r *http.Request) (*Job, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, errf(http.StatusBadRequest, api.CodeBadRequest, "bad job id %q", r.PathValue("id"))
	}
	job, ok := c.engine.Job(id)
	if !ok {
		return nil, errf(http.StatusNotFound, api.CodeUnknownJob, "job %d unknown", id)
	}
	return job, nil
}

func (c *Controller) handleV1Jobs(w http.ResponseWriter, r *http.Request) {
	stateFilter := r.URL.Query().Get("state")
	if stateFilter != "" {
		if _, ok := ParseJobState(stateFilter); !ok {
			writeErr(w, errf(http.StatusBadRequest, api.CodeBadRequest,
				"unknown state %q (want queued, running, done or failed)", stateFilter))
			return
		}
	}
	out := []api.JobStatus{}
	for _, j := range c.engine.Jobs() {
		if stateFilter != "" && j.State().String() != stateFilter {
			continue
		}
		out = append(out, v1JobStatus(j))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleV1Watch streams a job's progress as Server-Sent Events:
// already-executed rounds replay first, live rounds follow, and the
// stream always ends with a terminal done/failed event.
func (c *Controller) handleV1Watch(w http.ResponseWriter, r *http.Request) {
	job, err := c.jobFromPath(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, errf(http.StatusInternalServerError, api.CodeInternal, "response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	events := job.Subscribe()
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			we := api.WatchEvent{Job: job.ID}
			switch {
			case ev.Install != nil:
				we.Type = api.EventInstall
				is := v1InstallStatus(*ev.Install)
				we.Install = &is
			case ev.Round != nil:
				we.Type = api.EventRound
				rs := v1RoundStatus(*ev.Round)
				we.Round = &rs
			case ev.State == JobDone:
				we.Type = api.EventDone
				we.TotalMicros = job.TotalDuration().Microseconds()
			default:
				we.Type = api.EventFailed
				if ev.Err != nil {
					we.Error = ev.Err.Error()
				}
			}
			data, err := json.Marshal(we)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", we.Type, data); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleV1Verify plans the batch and verifies every schedule against
// the requested properties — a pure dry run, nothing reaches the
// engine or the switches.
func (c *Controller) handleV1Verify(w http.ResponseWriter, r *http.Request) {
	var req api.VerifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, errf(http.StatusBadRequest, api.CodeInvalidJSON, "invalid JSON: %v", err))
		return
	}
	plans, err := planBatch(api.BatchUpdateRequest{Updates: req.Updates}, true)
	if err != nil {
		writeErr(w, err)
		return
	}
	reqProps, err := core.ParseProperties(req.Properties)
	if err != nil {
		writeErr(w, errf(http.StatusBadRequest, api.CodeUnknownProperty, "%v", err))
		return
	}
	// Layered entries share one parallel round-verification pool;
	// sparse entries are verified over their full ideal space (order
	// ideals of the DAG) by verify.Plan instead — each update is
	// checked exactly once, under the semantics of the plan it would
	// execute.
	taskProps := make([]core.Property, len(plans))
	taskIdx := make([]int, len(plans)) // plan index -> batch task index, -1 for sparse
	var tasks []verify.Task
	for i, p := range plans {
		if p.Sched == nil {
			writeErr(w, errf(http.StatusBadRequest, api.CodeScheduleFailed,
				"updates[%d]: two-phase has no round schedule to verify", i))
			return
		}
		taskProps[i] = checkProps(p, reqProps)
		taskIdx[i] = -1
		if p.DAG == nil || !p.DAG.Sparse {
			taskIdx[i] = len(tasks)
			tasks = append(tasks, verify.Task{Instance: p.In, Schedule: p.Sched, Props: taskProps[i]})
		}
	}
	vopts := verify.Options{Samples: req.Samples, Seed: req.Seed}
	batched := verify.Batch(tasks, vopts)
	reports := make([]*verify.Report, len(plans))
	for i, p := range plans {
		if taskIdx[i] >= 0 {
			reports[i] = batched[taskIdx[i]]
		} else {
			reports[i] = verify.Plan(p.In, p.DAG, taskProps[i], vopts)
		}
	}
	resp := api.VerifyResponse{OK: true, Results: make([]api.VerifyResult, 0, len(reports))}
	for i, rep := range reports {
		res := api.VerifyResult{
			Algorithm:  plans[i].Algo,
			Rounds:     api.FromRounds(plans[i].Sched.Rounds),
			Guarantees: plans[i].Sched.Guarantees.String(),
			Properties: taskProps[i].String(),
			OK:         rep.OK(),
			Exact:      rep.Exact(),
			Plan:       planShape(plans[i].DAG),
		}
		if !res.OK {
			resp.OK = false
		}
		for _, rr := range rep.Rounds {
			if rr.Violation != nil {
				res.Violation = &api.Violation{
					Round:    rr.Round,
					Property: rr.Violation.Violated.String(),
					Walk:     api.FromPath(rr.Violation.Walk),
					Updated:  api.FromPath(plans[i].In.StateNodes(rr.Violation.Updated)),
				}
				break
			}
		}
		resp.Results = append(resp.Results, res)
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkProps resolves the property set a dry-run endpoint checks for
// one planned update. Precedence: the entry's own properties, then the
// request-level set, then the schedule's guarantees; schedules that
// guarantee nothing (one-shot) are checked against what the consistent
// schedulers provide, so the dry run shows what would break.
func checkProps(p *plannedUpdate, reqProps core.Property) core.Property {
	props := p.Props
	if props == 0 {
		props = reqProps
	}
	if props == 0 {
		props = p.Sched.Guarantees
	}
	if props == 0 {
		props = core.NoBlackhole | core.RelaxedLoopFreedom
		if p.In.Waypoint != 0 {
			props |= core.WaypointEnforcement
		}
	}
	return props
}

// handleV1Explore plans the batch and runs the adversarial
// interleaving explorer against every schedule — like /v1/verify a
// pure dry run, but answering with minimized FlowMod delivery traces
// instead of a bare verdict (see internal/explore for the
// order/state duality that makes the exhaustive mode a proof).
func (c *Controller) handleV1Explore(w http.ResponseWriter, r *http.Request) {
	var req api.ExploreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, errf(http.StatusBadRequest, api.CodeInvalidJSON, "invalid JSON: %v", err))
		return
	}
	plans, err := planBatch(api.BatchUpdateRequest{Updates: req.Updates}, true)
	if err != nil {
		writeErr(w, err)
		return
	}
	reqProps, err := core.ParseProperties(req.Properties)
	if err != nil {
		writeErr(w, errf(http.StatusBadRequest, api.CodeUnknownProperty, "%v", err))
		return
	}
	for i, p := range plans {
		if p.Sched == nil {
			writeErr(w, errf(http.StatusBadRequest, api.CodeScheduleFailed,
				"updates[%d]: two-phase has no round schedule to explore", i))
			return
		}
	}
	// Fan the per-update explorations over the CPUs (like verify.Batch
	// does for the sibling endpoint); each exploration is independent
	// and deterministic, so results merge back in index order.
	reps := make([]*explore.Report, len(plans))
	errs := make([]error, len(plans))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(plans) {
		workers = len(plans)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for range workers {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(plans) {
					return
				}
				p := plans[i]
				// Workers: 1 — this loop already fans out across
				// updates; nesting explore's own round pool would
				// oversubscribe the CPUs.
				eopts := explore.Options{
					Props:         checkProps(p, reqProps),
					MaxExhaustive: req.MaxExhaustive,
					Samples:       req.Samples,
					Seed:          req.Seed,
					Workers:       1,
				}
				if p.DAG != nil && p.DAG.Sparse {
					// Sparse plans: the adversary ranges over the
					// DAG's order ideals, not round states.
					reps[i], errs[i] = explore.Plan(p.In, p.DAG, eopts)
				} else {
					reps[i], errs[i] = explore.Schedule(p.In, p.Sched, eopts)
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// The schedule came from the server's own planner; a
			// structural mismatch here is a server bug, not bad input.
			writeErr(w, errf(http.StatusInternalServerError, api.CodeInternal, "updates[%d]: %v", i, err))
			return
		}
	}
	resp := api.ExploreResponse{OK: true, Results: make([]api.ExploreResult, 0, len(plans))}
	for i, p := range plans {
		rep := reps[i]
		res := api.ExploreResult{
			Algorithm:  p.Algo,
			Rounds:     api.FromRounds(p.Sched.Rounds),
			Guarantees: p.Sched.Guarantees.String(),
			Properties: rep.Properties.String(),
			OK:         rep.OK(),
			Exhaustive: rep.Exhaustive(),
			Events:     rep.Events(),
			Plan:       planShape(p.DAG),
		}
		if v := rep.FirstViolation(); v != nil {
			resp.OK = false
			tv := &api.TraceViolation{
				Round:    v.Round,
				Property: v.Violated.String(),
				Trace:    make([]api.TraceEvent, 0, len(v.Trace)),
				Walk:     api.FromPath(v.Walk),
				Updated:  api.FromPath(topo.Path(v.Updated)),
			}
			for _, e := range v.Trace {
				tv.Trace = append(tv.Trace, api.TraceEvent{Round: e.Round, Switch: uint64(e.Switch)})
			}
			res.Violation = tv
		}
		resp.Results = append(resp.Results, res)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Controller) handleV1Policies(w http.ResponseWriter, r *http.Request) {
	var req api.PolicyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, errf(http.StatusBadRequest, api.CodeInvalidJSON, "invalid JSON: %v", err))
		return
	}
	ip := net.ParseIP(req.NWDst)
	if ip == nil || ip.To4() == nil {
		writeErr(w, errf(http.StatusBadRequest, api.CodeInvalidMatch, "nw_dst %q is not an IPv4 address", req.NWDst))
		return
	}
	path := api.ToPath(req.Path)
	if err := path.Validate(); err != nil {
		writeErr(w, errf(http.StatusBadRequest, api.CodeInvalidPath, "invalid path: %v", err))
		return
	}
	if err := c.InstallPath(r.Context(), path, openflow.ExactNWDst(ip), req.Host); err != nil {
		writeErr(w, errf(http.StatusBadGateway, api.CodeSwitchUnavailable, "installing policy: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"result": "ok"})
}

func (c *Controller) handleV1Healthz(w http.ResponseWriter, _ *http.Request) {
	h := api.Healthz{
		Status:       "ok",
		Switches:     len(c.Datapaths()),
		QueueDepth:   c.engine.QueueDepth(),
		Running:      c.engine.RunningCount(),
		Workers:      c.engine.Workers(),
		UptimeMicros: c.Uptime().Microseconds(),
	}
	if jl := c.cfg.Journal; jl != nil {
		h.Journal = &api.JournalStatus{Enabled: true, Path: jl.Path(), SizeBytes: jl.Size()}
	}
	if stats, ok := c.engine.Recovery(); ok {
		h.RecoveredJobs = stats.Recovered()
		h.AdoptedJobs = stats.Adopted
	}
	ds := c.engine.disp.stats()
	h.Dispatch = &api.DispatchHealth{
		Shards:           ds.Shards,
		ReadyDepth:       ds.ReadyDepth,
		InFlight:         ds.InFlight,
		BatchedWrites:    uint64(metrics.DispatchBatchMsgs.Count()),
		BatchMeanMsgs:    metrics.DispatchBatchMsgs.Mean(),
		BatchMaxMsgs:     uint64(metrics.DispatchBatchMsgs.Max()),
		JournalBatchMean: metrics.JournalBatchWidth.Mean(),
		JournalBatchMax:  uint64(metrics.JournalBatchWidth.Max()),
		AcksDropped:      uint64(metrics.DispatchAcksDropped.Value()),
	}
	writeJSON(w, http.StatusOK, h)
}
