package controller

import (
	"context"
	"net/http"
	"testing"
	"time"

	"tsu/internal/api"
	"tsu/internal/core"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// fig1NoWpInstance is the Fig.1 update without a waypoint — the
// instance whose sparse Peacock plan has two independent chains
// (7,8 → 1 and 9,10,11 → 3).
func fig1NoWpInstance(t testing.TB) *core.Instance {
	t.Helper()
	return core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, 0)
}

// TestSubmitPlanSparseDispatch runs a sparse plan through the live
// ack-driven engine: the final forwarding state is the new path, every
// install is confirmed exactly once, each install's ReleasedBy names
// one of its plan dependencies, and the synthesized per-layer round
// timings arrive in order.
func TestSubmitPlanSparseDispatch(t *testing.T) {
	tb := newTestbed(t, topo.Fig1(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	in := fig1NoWpInstance(t)
	if err := tb.ctrl.InstallPath(ctx, in.Old, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatal(err)
	}
	plan, err := core.PlanByName(in, core.AlgoPeacock, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Sparse {
		t.Fatalf("expected a sparse plan, got %s", plan)
	}
	job, err := tb.ctrl.Engine().SubmitPlan(in, plan, flowMatch("10.0.0.2"), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	depth, width, critical, sparse := job.PlanShape()
	if !sparse || depth != plan.Depth() || width != plan.Width() || critical != plan.CriticalPath() {
		t.Fatalf("job shape = (%d,%d,%d,%t), want plan's (%d,%d,%d,true)",
			depth, width, critical, sparse, plan.Depth(), plan.Width(), plan.CriticalPath())
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if res.Outcome != switchsim.ProbeDelivered || !res.Visited.Equal(in.New) {
		t.Fatalf("final path = %+v", res)
	}

	installs := job.Installs()
	if len(installs) != plan.NumNodes() {
		t.Fatalf("%d installs, want %d", len(installs), plan.NumNodes())
	}
	depsOf := map[topo.NodeID]map[topo.NodeID]bool{}
	for _, nd := range plan.Nodes {
		m := map[topo.NodeID]bool{}
		for _, d := range nd.Deps {
			m[plan.Nodes[d].Switch] = true
		}
		depsOf[nd.Switch] = m
	}
	confirmed := map[topo.NodeID]bool{}
	for _, it := range installs {
		if confirmed[it.Node] {
			t.Fatalf("switch %d installed twice", it.Node)
		}
		// Dependencies confirmed before the dependent (acks are
		// recorded in confirmation order).
		for d := range depsOf[it.Node] {
			if !confirmed[d] {
				t.Fatalf("install %d confirmed before its dependency %d", it.Node, d)
			}
		}
		confirmed[it.Node] = true
		if len(depsOf[it.Node]) == 0 {
			if it.ReleasedBy != 0 {
				t.Fatalf("root install %d claims release by %d", it.Node, it.ReleasedBy)
			}
		} else if !depsOf[it.Node][it.ReleasedBy] {
			t.Fatalf("install %d released by %d, not one of its deps %v",
				it.Node, it.ReleasedBy, depsOf[it.Node])
		}
	}

	timings := job.Timings()
	if len(timings) != plan.Depth() {
		t.Fatalf("%d layer timings, want %d", len(timings), plan.Depth())
	}
	for i, rt := range timings {
		if rt.Round != i {
			t.Fatalf("layer timings out of order: %v", timings)
		}
	}
}

// TestSubmitPlanLayeredMatchesSchedule pins that submitting a layered
// plan behaves exactly like submitting the schedule: same rounds, same
// per-layer switch sets.
func TestSubmitPlanLayeredMatchesSchedule(t *testing.T) {
	tb := newTestbed(t, topo.Fig1(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	jobS, err := tb.ctrl.Engine().Submit(in, sched, flowMatch("10.0.0.2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := jobS.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	jobP, err := tb.ctrl.Engine().SubmitPlan(core.MustInstance(in.New, in.Old, topo.Fig1Waypoint),
		core.PlanFromSchedule(mustSchedule(t, core.MustInstance(in.New, in.Old, topo.Fig1Waypoint))),
		flowMatch("10.0.0.2"), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := jobP.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if jobS.NumRounds() != len(jobS.Timings()) || jobP.NumRounds() != len(jobP.Timings()) {
		t.Fatalf("rounds: schedule %d/%d, plan %d/%d",
			jobS.NumRounds(), len(jobS.Timings()), jobP.NumRounds(), len(jobP.Timings()))
	}
	if _, _, _, sparse := jobP.PlanShape(); sparse {
		t.Fatal("layered plan reported sparse")
	}
}

func mustSchedule(t *testing.T, in *core.Instance) *core.Schedule {
	t.Helper()
	s, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestV1SparsePlanOnTheWire drives the sparse plan end to end over
// REST: the batch response reports the pruned shape, the job status
// carries the install trace with its releasing edges, and the final
// state is correct.
func TestV1SparsePlanOnTheWire(t *testing.T) {
	tb, srv := restTestbed(t)
	_ = tb
	if resp, body := postJSON(t, srv.URL+"/v1/policies", api.PolicyRequest{
		Path: []uint64{1, 2, 3, 4, 5, 6, 12}, NWDst: "10.0.0.2", Host: "h2",
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("policy: %d %s", resp.StatusCode, body)
	}
	u := api.FlowUpdate{
		OldPath:   []uint64{1, 2, 3, 4, 5, 6, 12},
		NewPath:   []uint64{1, 7, 8, 3, 9, 10, 11, 12},
		Algorithm: "peacock",
		NWDst:     "10.0.0.2",
		Plan:      "sparse",
	}
	resp, body := postJSON(t, srv.URL+"/v1/updates", api.BatchUpdateRequest{Updates: []api.FlowUpdate{u}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var br api.BatchUpdateResponse
	decodeInto(t, body, &br)
	acc := br.Updates[0]
	if acc.Plan == nil || !acc.Plan.Sparse {
		t.Fatalf("accepted plan shape = %+v, want sparse", acc.Plan)
	}
	if acc.Plan.Nodes != 7 || acc.Plan.Edges != 5 || acc.Plan.Depth != 2 || acc.Plan.CriticalPath != 1 {
		t.Fatalf("plan shape = %+v, want 7 nodes / 5 edges / depth 2 / critical 1", acc.Plan)
	}

	var st api.JobStatus
	deadline := time.Now().Add(20 * time.Second)
	for {
		if code := getJSON(t, srv.URL+"/v1/updates/"+itoa(acc.ID), &st); code != http.StatusOK {
			t.Fatalf("status: %d", code)
		}
		if st.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("job = %+v", st)
	}
	if st.Plan == nil || !st.Plan.Sparse || st.Plan.Nodes != 7 {
		t.Fatalf("status plan shape = %+v", st.Plan)
	}
	if len(st.Installs) != 7 {
		t.Fatalf("%d installs on the wire, want 7", len(st.Installs))
	}
	releasers := map[uint64]bool{}
	for _, inst := range st.Installs {
		releasers[inst.ReleasedBy] = true
	}
	// The old-path switches 1 and 3 must have been released by one of
	// their chain dependencies (a new-only switch), not by a global
	// barrier.
	for _, inst := range st.Installs {
		switch inst.Switch {
		case 1:
			if inst.ReleasedBy != 7 && inst.ReleasedBy != 8 {
				t.Fatalf("switch 1 released by %d, want 7 or 8", inst.ReleasedBy)
			}
		case 3:
			if inst.ReleasedBy != 9 && inst.ReleasedBy != 10 && inst.ReleasedBy != 11 {
				t.Fatalf("switch 3 released by %d, want 9, 10 or 11", inst.ReleasedBy)
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
