package controller

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"slices"
	"sort"
	"strconv"
	"sync"
	"time"

	"tsu/internal/core"
	"tsu/internal/journal"
	"tsu/internal/metrics"
	"tsu/internal/openflow"
	"tsu/internal/topo"
)

// ErrQueueFull reports that the engine's admission limit is reached;
// match with errors.Is.
var ErrQueueFull = errors.New("controller: update queue full")

// JobState is the lifecycle of an update job.
type JobState int

const (
	// JobQueued: admitted, waiting on conflicting predecessors or a
	// worker slot.
	JobQueued JobState = iota
	// JobRunning: rounds in flight.
	JobRunning
	// JobDone: all rounds confirmed by barriers.
	JobDone
	// JobFailed: a round failed (send error or barrier timeout).
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	}
	return "unknown"
}

// ParseJobState maps a state name back to its JobState.
func ParseJobState(s string) (JobState, bool) {
	for _, st := range []JobState{JobQueued, JobRunning, JobDone, JobFailed} {
		if st.String() == s {
			return st, true
		}
	}
	return 0, false
}

// RoundTiming records one executed round: which switches were touched
// and how long the round took from first FlowMod sent to last barrier
// reply received — the paper's "update time of flow tables" metric,
// measured per round.
type RoundTiming struct {
	Round    int
	Switches []topo.NodeID
	FlowMods int
	Cleanup  bool // true for the stale-rule garbage-collection round
	Started  time.Time
	Finished time.Time
}

// Duration returns the round's wall-clock time.
func (rt RoundTiming) Duration() time.Duration { return rt.Finished.Sub(rt.Started) }

// InstallTiming records one confirmed install of the ack-driven
// dispatcher: which switch was updated, the dependency edge that
// released it (the predecessor whose barrier reply arrived last —
// zero for installs dispatched immediately), and the span from first
// FlowMod sent to barrier reply received. The sequence of
// InstallTimings is the job's execution trace at per-node-barrier
// granularity; RoundTimings aggregate it per layer for the round view.
type InstallTiming struct {
	Node       topo.NodeID
	Layer      int
	ReleasedBy topo.NodeID // 0 when the install had no dependencies
	FlowMods   int
	Cleanup    bool
	Started    time.Time
	Finished   time.Time
}

// Duration returns the install's wall-clock time.
func (it InstallTiming) Duration() time.Duration { return it.Finished.Sub(it.Started) }

// JobEvent is one progress notification delivered to Subscribe
// channels: a confirmed install (Install non-nil), a completed layer
// (Round non-nil, State JobRunning), or the terminal state (both nil,
// State JobDone/JobFailed).
type JobEvent struct {
	Round   *RoundTiming
	Install *InstallTiming
	State   JobState
	Err     error // set on terminal failure
}

// targetedMod is one FlowMod addressed to one switch.
type targetedMod struct {
	node topo.NodeID
	fm   *openflow.FlowMod
}

// execRound is a fully materialized round: the FlowMods to send and
// the switches to barrier afterwards. Builders still assemble rounds
// (schedules, joint updates and two-phase are naturally round-shaped);
// layeredExecPlan converts them to the execution DAG the dispatcher
// runs.
type execRound struct {
	mods    []targetedMod
	cleanup bool
}

func (r *execRound) switches() []topo.NodeID {
	seen := make(map[topo.NodeID]bool, len(r.mods))
	var out []topo.NodeID
	for _, m := range r.mods {
		if !seen[m.node] {
			seen[m.node] = true
			out = append(out, m.node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// execNode is one per-switch install of a job's execution DAG: the
// FlowMods to send to one switch, the node indices whose barriers must
// arrive first, and the node's layer (longest dependency chain) for
// the aggregated round view.
type execNode struct {
	node    topo.NodeID
	mods    []targetedMod
	deps    []int
	layer   int
	cleanup bool
}

// execPlan is a job's materialized execution DAG plus its shape. dag
// mirrors the nodes 1:1 as a bare core.Plan so the dispatcher reuses
// core.PlanRun's allocation-free release bookkeeping.
type execPlan struct {
	nodes    []execNode
	depth    int
	width    int
	critical int
	sparse   bool
	dag      *core.Plan
}

// finish builds the bookkeeping DAG from the nodes' deps and derives
// the per-node layers and the shape from it — core.Plan's layering is
// the single implementation.
func (p *execPlan) finish() {
	p.dag = &core.Plan{Nodes: make([]core.PlanNode, len(p.nodes))}
	for i := range p.nodes {
		p.dag.Nodes[i] = core.PlanNode{Switch: p.nodes[i].node, Deps: p.nodes[i].deps}
	}
	for i, l := range p.dag.NodeLayers() {
		p.nodes[i].layer = l
	}
	p.depth = p.dag.Depth()
	p.width = p.dag.Width()
	p.critical = p.dag.CriticalPath()
}

// layeredExecPlan converts barrier rounds to the equivalent layered
// DAG — ack-driven dispatch of it is exactly the paper's round loop,
// each round's sends released by the previous round's last barrier
// reply. The dependency structure comes from core.PlanFromSchedule's
// canonical conversion (one node per (round, switch)); this function
// only attaches each node's FlowMods and cleanup flag.
func layeredExecPlan(rounds []execRound) execPlan {
	sched := &core.Schedule{Rounds: make([][]topo.NodeID, len(rounds))}
	for r, round := range rounds {
		sched.Rounds[r] = round.switches()
	}
	dag := core.PlanFromSchedule(sched)
	var p execPlan
	p.nodes = make([]execNode, len(dag.Nodes))
	i := 0
	for r, round := range rounds {
		byNode := make(map[topo.NodeID]int, len(sched.Rounds[r]))
		for range sched.Rounds[r] {
			nd := dag.Nodes[i]
			p.nodes[i] = execNode{node: nd.Switch, deps: nd.Deps, cleanup: round.cleanup}
			byNode[nd.Switch] = i
			i++
		}
		for _, m := range round.mods {
			k := byNode[m.node]
			p.nodes[k].mods = append(p.nodes[k].mods, m)
		}
	}
	p.finish()
	return p
}

// Job is one queued update: the REST message object of the paper,
// carrying the per-switch OpenFlow messages for every round.
type Job struct {
	ID        int
	Algorithm string
	Interval  time.Duration // pause before a released non-root install (REST "interval")
	Mode      ExecMode      // dispatch path (controller-driven or decentralized)

	plan execPlan

	// Conflict footprint, immutable after construction: the switches
	// this job touches and the flow matches it programs. Two jobs
	// conflict when either set intersects; the dispatcher serializes
	// conflicting jobs in submission order and runs disjoint jobs
	// concurrently.
	nodes   map[topo.NodeID]struct{}
	matches map[openflow.Match]struct{}

	// rollback, immutable after construction, carries what the abort
	// path needs to build and verify a reverse plan. Nil for jobs the
	// engine cannot roll back (joint updates, two-phase), which fail
	// plain on mid-plan errors.
	rollback *rollbackSpec

	// Recovered marks a job reconstructed from the journal after a
	// controller restart; Adopted additionally marks a mid-flight job
	// whose journal and switch state agreed, so execution resumed from
	// the recovered frontier instead of rolling back. Both are set
	// before the job launches and immutable after.
	Recovered bool
	Adopted   bool

	// preConfirmed, set only on adopted jobs, marks the plan nodes the
	// reconciliation proved already applied: execute confirms them
	// synthetically and resumes dispatch from the frontier they
	// release.
	preConfirmed []bool

	mu       sync.Mutex
	state    JobState
	err      error
	failure  *FailureReport
	timings  []RoundTiming
	installs []InstallTiming
	msgs     map[topo.NodeID]MessageStats
	events   []JobEvent // publish log, replayed to late subscribers
	started  time.Time
	finished time.Time
	done     chan struct{}
	subs     []chan JobEvent
}

// NumRounds returns the number of layers the job's execution DAG has
// (including a cleanup layer, when requested) — for a round schedule,
// exactly its round count.
func (j *Job) NumRounds() int { return j.plan.depth }

// NumInstalls returns the number of per-switch installs of the job's
// execution DAG.
func (j *Job) NumInstalls() int { return len(j.plan.nodes) }

// NumEdges returns the number of happens-before edges of the job's
// execution DAG.
func (j *Job) NumEdges() int {
	e := 0
	for _, nd := range j.plan.nodes {
		e += len(nd.deps)
	}
	return e
}

// PlanShape reports the execution DAG's shape: depth (layers), width
// (peak install parallelism), critical path (sequential barrier waits
// on the longest chain), and whether the DAG is sparse (ack-driven
// past layer barriers) rather than layered.
func (j *Job) PlanShape() (depth, width, critical int, sparse bool) {
	return j.plan.depth, j.plan.width, j.plan.critical, j.plan.sparse
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure cause for JobFailed jobs.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Failure returns the structured failure report of a JobFailed job
// that aborted mid-plan (nil otherwise): the recovery phase reached,
// the triggering fault, and the installed/rolled-back node sets.
func (j *Job) Failure() *FailureReport {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failure == nil {
		return nil
	}
	f := *j.failure
	return &f
}

// Timings returns the per-round (per-layer) timings recorded so far.
func (j *Job) Timings() []RoundTiming {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]RoundTiming, len(j.timings))
	copy(out, j.timings)
	return out
}

// Installs returns the per-switch install trace recorded so far, in
// barrier-confirmation order: each entry names the dependency edge
// that released the install.
func (j *Job) Installs() []InstallTiming {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]InstallTiming, len(j.installs))
	copy(out, j.installs)
	return out
}

// TotalDuration returns the job's wall-clock time from first round
// start to last barrier (zero while unfinished).
func (j *Job) TotalDuration() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() || j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started)
}

// Wait blocks until the job reaches JobDone or JobFailed (or ctx ends).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Subscribe returns a channel of progress events: installs and rounds
// already executed are replayed first (in publish order), then live
// events stream as barriers arrive, and the channel ends with a
// terminal JobDone/JobFailed event before closing. The channel is
// buffered for the job's full event count, so a slow reader never
// blocks the engine.
func (j *Job) Subscribe() <-chan JobEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan JobEvent, len(j.plan.nodes)+j.plan.depth+2)
	for _, ev := range j.events {
		ch <- ev
	}
	if j.state == JobDone || j.state == JobFailed {
		ch <- JobEvent{State: j.state, Err: j.err}
		close(ch)
		return ch
	}
	j.subs = append(j.subs, ch)
	return ch
}

// footprint fills the job's conflict sets from its execution DAG.
func (j *Job) footprint() {
	j.nodes = make(map[topo.NodeID]struct{})
	j.matches = make(map[openflow.Match]struct{})
	for _, nd := range j.plan.nodes {
		for _, m := range nd.mods {
			j.nodes[m.node] = struct{}{}
			j.matches[m.fm.Match] = struct{}{}
		}
	}
}

// conflictsWith reports whether the two jobs may not execute
// concurrently: they touch a common switch or program a common flow.
func (j *Job) conflictsWith(other *Job) bool {
	a, b := j.nodes, other.nodes
	if len(b) < len(a) {
		a, b = b, a
	}
	for n := range a {
		if _, ok := b[n]; ok {
			return true
		}
	}
	ma, mb := j.matches, other.matches
	if len(mb) < len(ma) {
		ma, mb = mb, ma
	}
	for m := range ma {
		if _, ok := mb[m]; ok {
			return true
		}
	}
	return false
}

// maxAdmitted bounds the number of unfinished jobs the engine accepts
// (the successor of the seed's 128-slot FIFO queue).
const maxAdmitted = 128

// Engine is the controller's update dispatcher. The paper's demo
// processes its message queue strictly FIFO; this engine keeps that
// ordering exactly where it matters — jobs that touch a common switch
// or program a common flow execute in submission order — and runs
// conflict-free jobs concurrently on a bounded worker pool, so
// independent flows no longer wait behind each other's barriers.
type Engine struct {
	c       *Controller
	workers int
	sem     chan struct{} // worker-pool slots
	disp    *dispatcher   // sharded southbound dispatch path

	mu      sync.Mutex
	ctx     context.Context // set by run; jobs launch once available
	nextID  int
	jobs    map[int]*Job
	active  []*Job // unfinished jobs in submission order
	pending []*launch
	queued  int // admitted, not yet executing
	running int // executing rounds

	// recovery holds the stats of the last Recover run (nil before).
	recovery *RecoveryStats
}

// launch pairs an admitted job with the done channels of the earlier
// conflicting jobs it must wait for.
type launch struct {
	job  *Job
	deps []<-chan struct{}
}

func newEngine(c *Controller, workers int) *Engine {
	if workers <= 0 {
		workers = defaultEngineWorkers
	}
	e := &Engine{
		c:       c,
		workers: workers,
		sem:     make(chan struct{}, workers),
		jobs:    make(map[int]*Job),
	}
	e.disp = newDispatcher(e, c.cfg.DispatchShards)
	return e
}

// defaultEngineWorkers is the engine's default concurrency: update
// execution is barrier-bound (network waits), not CPU-bound, so the
// default does not track GOMAXPROCS.
const defaultEngineWorkers = 8

// admitSpec builds a job's journal admission record: identity always,
// plus — for recoverable jobs — everything Recover needs to rebuild
// the execution DAG and its rollback spec.
func admitSpec(job *Job) *journal.Admit {
	a := &journal.Admit{
		Algorithm: job.Algorithm,
		Interval:  job.Interval,
		Mode:      uint8(job.Mode),
	}
	spec := job.rollback
	if spec == nil {
		return a
	}
	a.Recoverable = true
	a.Old = make([]uint64, len(spec.in.Old))
	for i, n := range spec.in.Old {
		a.Old[i] = uint64(n)
	}
	a.New = make([]uint64, len(spec.in.New))
	for i, n := range spec.in.New {
		a.New[i] = uint64(n)
	}
	a.Waypoint = uint64(spec.in.Waypoint)
	a.NWDst = spec.match.NWDst
	a.Props = uint64(spec.props)
	for i := range job.plan.nodes {
		if job.plan.nodes[i].cleanup {
			a.Cleanup = append(a.Cleanup, i)
		}
	}
	// The journaled DAG is the job's full execution DAG — update and
	// cleanup nodes alike — so recovery rebuilds exactly the plan that
	// was running, not a re-derivation that could differ.
	dag := *job.plan.dag
	dag.Algorithm = job.Algorithm
	dag.Guarantees = spec.props
	dag.Sparse = job.plan.sparse
	a.Plan = core.EncodePlan(&dag)
	return a
}

// journalAdmit makes an admitted job durable before anything can be
// dispatched for it. Recovered jobs are already in the journal and are
// not re-admitted.
func (e *Engine) journalAdmit(job *Job) {
	jl := e.c.cfg.Journal
	if jl == nil || job.Recovered {
		return
	}
	if err := jl.Append(journal.Record{Kind: journal.KindAdmit, Job: job.ID, Admit: admitSpec(job)}); err != nil {
		e.c.logger.Warn("journal admit failed", "job", job.ID, "err", err)
	}
}

// errJournalWriteAhead fails a job whose next dispatch could not be
// made durable first. The switches never saw the undispatched mods, so
// the already-dispatched prefix aborts through the normal path.
var errJournalWriteAhead = errors.New("journal write-ahead append failed; refusing to dispatch")

// journalDelta records one write-behind per-node transition (confirmed
// deltas): a failed append costs restart efficiency, never safety, so
// it is logged and tolerated.
func (e *Engine) journalDelta(kind journal.Kind, job, node int) {
	jl := e.c.cfg.Journal
	if jl == nil {
		return
	}
	if err := jl.Append(journal.Record{Kind: kind, Job: job, Node: node}); err != nil {
		e.c.logger.Warn("journal delta failed", "job", job, "node", node, "err", err)
	}
}

// journalDispatchBatch write-aheads one released wave as a single
// grouped dispatched-delta record (one append and one fsync window for
// the whole wave; a lone node journals as a plain dispatched delta). A
// false return means the wave could not be made durable — the caller
// MUST NOT dispatch any of it: the journal's dispatched set has to
// stay a superset of what any switch can have seen, or a restarted
// controller would never reconcile that switch's state. nodes must be
// strictly ascending (the batch codec delta-encodes the gaps).
func (e *Engine) journalDispatchBatch(job int, nodes []int) bool {
	jl := e.c.cfg.Journal
	if jl == nil {
		return true
	}
	metrics.JournalBatchWidth.Observe(int64(len(nodes)))
	rec := journal.Record{Kind: journal.KindDispatched, Job: job}
	if len(nodes) == 1 {
		rec.Node = nodes[0]
	} else {
		rec.Kind = journal.KindDispatchedBatch
		rec.Nodes = nodes
	}
	if err := jl.Append(rec); err != nil {
		e.c.logger.Warn("journal write-ahead failed; wave not dispatched", "job", job, "nodes", len(nodes), "err", err)
		return false
	}
	return true
}

// journalTerminal records a job's terminal phase. A shutdown
// cancellation is deliberately NOT journaled as terminal: a cancelled
// job is live state the restarted controller must recover; marking it
// finished would defeat recovery.
func (e *Engine) journalTerminal(job *Job, jobErr error) {
	jl := e.c.cfg.Journal
	if jl == nil || errors.Is(jobErr, context.Canceled) {
		return
	}
	rec := journal.Record{Kind: journal.KindTerminal, Job: job.ID, Done: jobErr == nil}
	if jobErr != nil {
		rec.Error = jobErr.Error()
	}
	if err := jl.Append(rec); err != nil {
		e.c.logger.Warn("journal terminal failed", "job", job.ID, "err", err)
	}
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// QueueDepth counts jobs admitted but not yet executing rounds.
func (e *Engine) QueueDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queued
}

// RunningCount counts jobs currently executing rounds.
func (e *Engine) RunningCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.running
}

// Submit enqueues a single-policy update job for the instance using
// the given schedule; the flow is identified by match.
func (e *Engine) Submit(in *core.Instance, s *core.Schedule, match openflow.Match, interval time.Duration) (*Job, error) {
	return e.SubmitOpts(in, s, match, SubmitOptions{Interval: interval})
}

// SubmitOptions tunes job construction.
type SubmitOptions struct {
	// Interval pauses between rounds (the REST message's "interval").
	Interval time.Duration

	// Cleanup appends a garbage-collection round after the update:
	// switches on the old path that are off the new path delete the
	// flow's stale rule. Those switches are unreachable for the flow
	// once the update completes, so the extra round cannot violate any
	// transient property.
	Cleanup bool

	// Mode selects the dispatch path: ModeController (default) routes
	// every happens-before edge through controller-side barriers;
	// ModeDecentralized broadcasts per-switch plan partitions once and
	// lets the switches coordinate peer-to-peer.
	Mode ExecMode
}

// SubmitOpts is Submit with full options.
func (e *Engine) SubmitOpts(in *core.Instance, s *core.Schedule, match openflow.Match, opts SubmitOptions) (*Job, error) {
	rounds, err := e.buildScheduleRounds(in, s, match, opts)
	if err != nil {
		return nil, err
	}
	return e.enqueue(jobSpec{
		algorithm: s.Algorithm,
		plan:      layeredExecPlan(rounds),
		interval:  opts.Interval,
		mode:      opts.Mode,
		rollback:  &rollbackSpec{in: in, match: match, props: s.Guarantees},
	})
}

// SubmitPlan enqueues a single-policy update job executing the given
// dependency plan: each switch's FlowMod is issued the moment its
// predecessors' barriers arrive. A layered plan behaves exactly like
// SubmitOpts on the equivalent round schedule; a sparse plan lets
// independent branches proceed past each other's stragglers.
func (e *Engine) SubmitPlan(in *core.Instance, p *core.Plan, match openflow.Match, opts SubmitOptions) (*Job, error) {
	ep, err := e.buildPlanNodes(in, p, match, opts)
	if err != nil {
		return nil, err
	}
	return e.enqueue(jobSpec{
		algorithm: p.Algorithm,
		plan:      ep,
		interval:  opts.Interval,
		mode:      opts.Mode,
		rollback:  &rollbackSpec{in: in, match: match, props: p.Guarantees},
	})
}

// buildPlanNodes materializes a dependency plan for one flow: one
// execution node per plan node, plus cleanup nodes (depending on every
// sink, so stale-rule deletion happens strictly after the update)
// when requested. Building is pure — nothing is admitted.
func (e *Engine) buildPlanNodes(in *core.Instance, p *core.Plan, match openflow.Match, opts SubmitOptions) (execPlan, error) {
	if err := p.Validate(in); err != nil {
		return execPlan{}, fmt.Errorf("controller: plan does not fit instance: %w", err)
	}
	ep := execPlan{sparse: p.Sparse, nodes: make([]execNode, 0, len(p.Nodes))}
	for _, nd := range p.Nodes {
		fm, err := e.updateFlowMod(in, nd.Switch, match)
		if err != nil {
			return execPlan{}, err
		}
		deps := make([]int, len(nd.Deps))
		copy(deps, nd.Deps)
		ep.nodes = append(ep.nodes, execNode{
			node: nd.Switch,
			mods: []targetedMod{{node: nd.Switch, fm: fm}},
			deps: deps,
		})
	}
	if opts.Cleanup {
		if r, ok := cleanupRound(in, match); ok {
			sinks := planSinks(ep.nodes)
			for _, m := range r.mods {
				ep.nodes = append(ep.nodes, execNode{
					node:    m.node,
					mods:    []targetedMod{m},
					deps:    sinks,
					cleanup: true,
				})
			}
		}
	}
	ep.finish()
	return ep, nil
}

// planSinks returns the indices of nodes no other node depends on.
func planSinks(nodes []execNode) []int {
	hasSucc := make([]bool, len(nodes))
	for _, nd := range nodes {
		for _, d := range nd.deps {
			hasSucc[d] = true
		}
	}
	var sinks []int
	for i := range nodes {
		if !hasSucc[i] {
			sinks = append(sinks, i)
		}
	}
	return sinks
}

// buildScheduleRounds materializes a schedule's rounds for one flow:
// the per-switch FlowMods plus the optional cleanup round. Building is
// pure — nothing is admitted.
func (e *Engine) buildScheduleRounds(in *core.Instance, s *core.Schedule, match openflow.Match, opts SubmitOptions) ([]execRound, error) {
	if err := s.Validate(in); err != nil {
		return nil, fmt.Errorf("controller: schedule does not fit instance: %w", err)
	}
	rounds := make([]execRound, 0, s.NumRounds()+1)
	for _, round := range s.Rounds {
		var r execRound
		for _, node := range round {
			fm, err := e.updateFlowMod(in, node, match)
			if err != nil {
				return nil, err
			}
			r.mods = append(r.mods, targetedMod{node: node, fm: fm})
		}
		rounds = append(rounds, r)
	}
	if opts.Cleanup {
		if r, ok := cleanupRound(in, match); ok {
			rounds = append(rounds, r)
		}
	}
	return rounds, nil
}

// SubmitJoint enqueues several policies as one job: per joint round,
// every flow's FlowMods for that round are sent together (switches
// shared by multiple flows receive their batch in one burst), then the
// union of touched switches is barriered once.
func (e *Engine) SubmitJoint(ju *core.JointUpdate, matches []openflow.Match, opts SubmitOptions) (*Job, error) {
	if len(matches) != len(ju.Instances) {
		return nil, fmt.Errorf("controller: %d matches for %d policies", len(matches), len(ju.Instances))
	}
	for f, in := range ju.Instances {
		if err := ju.Schedules[f].Validate(in); err != nil {
			return nil, fmt.Errorf("controller: policy %d: %w", f, err)
		}
	}
	numRounds := ju.NumRounds()
	rounds := make([]execRound, 0, numRounds+1)
	for i := 0; i < numRounds; i++ {
		var r execRound
		// Deterministic order: by switch, then by flow.
		byNode := ju.Round(i)
		nodes := make([]topo.NodeID, 0, len(byNode))
		for n := range byNode {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		for _, n := range nodes {
			for _, fu := range byNode[n] {
				fm, err := e.updateFlowMod(ju.Instances[fu.Flow], n, matches[fu.Flow])
				if err != nil {
					return nil, err
				}
				r.mods = append(r.mods, targetedMod{node: n, fm: fm})
			}
		}
		rounds = append(rounds, r)
	}
	if opts.Cleanup {
		var cr execRound
		for f, in := range ju.Instances {
			if r, ok := cleanupRound(in, matches[f]); ok {
				cr.mods = append(cr.mods, r.mods...)
			}
		}
		if len(cr.mods) > 0 {
			cr.cleanup = true
			rounds = append(rounds, cr)
		}
	}
	return e.enqueue(jobSpec{algorithm: "joint-" + ju.Schedules[0].Algorithm, plan: layeredExecPlan(rounds), interval: opts.Interval, mode: opts.Mode})
}

// updateFlowMod builds the round FlowMod for one switch of one flow:
// point the flow at the switch's new-path successor. MODIFY is used
// (the rule exists under the old policy); for new-path-only switches
// the OF 1.0 MODIFY semantics insert the missing rule.
func (e *Engine) updateFlowMod(in *core.Instance, node topo.NodeID, match openflow.Match) (*openflow.FlowMod, error) {
	succ, ok := in.NewSucc(node)
	if !ok {
		return nil, fmt.Errorf("switch %d has no new-path successor", node)
	}
	return e.c.PathFlowMod(node, succ, match, openflow.FlowModify)
}

// cleanupRound builds the garbage-collection round: delete the flow's
// rule from old-path switches that are off the new path.
func cleanupRound(in *core.Instance, match openflow.Match) (execRound, bool) {
	var r execRound
	for _, node := range in.Old {
		if in.OnNew(node) {
			continue
		}
		fm := &openflow.FlowMod{
			Match:    match,
			Command:  openflow.FlowDelete,
			BufferID: openflow.NoBuffer,
			OutPort:  openflow.PortNone,
		}
		r.mods = append(r.mods, targetedMod{node: node, fm: fm})
	}
	if len(r.mods) == 0 {
		return execRound{}, false
	}
	r.cleanup = true
	return r, true
}

// jobSpec is one prepared submission: execution DAG built, not yet
// admitted.
type jobSpec struct {
	algorithm string
	plan      execPlan
	interval  time.Duration
	mode      ExecMode
	rollback  *rollbackSpec
}

// enqueue admits a single job (see enqueueAll).
func (e *Engine) enqueue(spec jobSpec) (*Job, error) {
	jobs, err := e.enqueueAll([]jobSpec{spec})
	if err != nil {
		return nil, err
	}
	return jobs[0], nil
}

// enqueueAll admits several jobs atomically: either the whole group
// fits under the admission limit and every job is admitted in order
// (consecutive ids), or nothing is and ErrQueueFull is returned. Per
// job it records the done channels of every earlier unfinished
// conflicting job — including earlier members of the same group — and
// hands the job to a dispatcher goroutine. Disjoint jobs proceed
// immediately, bounded only by the worker pool.
func (e *Engine) enqueueAll(specs []jobSpec) ([]*Job, error) {
	jobs := make([]*Job, len(specs))
	for i, s := range specs {
		jobs[i] = &Job{
			Algorithm: s.algorithm,
			Interval:  s.interval,
			Mode:      s.mode,
			plan:      s.plan,
			rollback:  s.rollback,
			done:      make(chan struct{}),
		}
		jobs[i].footprint()
	}
	e.mu.Lock()
	if len(e.active)+len(jobs) > maxAdmitted {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %d active + %d submitted > %d",
			ErrQueueFull, len(e.active), len(jobs), maxAdmitted)
	}
	launches := make([]*launch, len(jobs))
	for i, job := range jobs {
		e.nextID++
		job.ID = e.nextID
		e.jobs[job.ID] = job
		var deps []<-chan struct{}
		for _, prev := range e.active {
			if prev.conflictsWith(job) {
				deps = append(deps, prev.done)
			}
		}
		e.active = append(e.active, job)
		e.queued++
		launches[i] = &launch{job: job, deps: deps}
	}
	ctx := e.ctx
	if ctx == nil {
		e.pending = append(e.pending, launches...)
		e.mu.Unlock()
		for _, job := range jobs {
			e.journalAdmit(job)
		}
		return jobs, nil
	}
	e.mu.Unlock()
	// Admission is journaled (and synced) before any dispatcher
	// goroutine launches: a job either never reached the journal (and
	// sent nothing), or is durably recoverable.
	for _, job := range jobs {
		e.journalAdmit(job)
	}
	for _, l := range launches {
		go e.runJob(ctx, l.job, l.deps)
	}
	return jobs, nil
}

// Job looks a job up by ID.
func (e *Engine) Job(id int) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs returns all known jobs in submission order.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Job, 0, len(e.jobs))
	for id := 1; id <= e.nextID; id++ {
		if j, ok := e.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// run starts the dispatcher: jobs admitted before the controller
// started are launched now; later submissions launch directly from
// enqueue.
func (e *Engine) run(ctx context.Context) {
	e.disp.start(ctx)
	e.mu.Lock()
	e.ctx = ctx
	pending := e.pending
	e.pending = nil
	e.mu.Unlock()
	for _, l := range pending {
		go e.runJob(ctx, l.job, l.deps)
	}
}

// runJob drives one job: wait for conflicting predecessors, claim a
// worker slot, execute the rounds, release.
func (e *Engine) runJob(ctx context.Context, job *Job, deps []<-chan struct{}) {
	for _, d := range deps {
		select {
		case <-d:
		case <-ctx.Done():
			e.fail(job, ctx.Err())
			e.retire(job, false)
			return
		}
	}
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.fail(job, ctx.Err())
		e.retire(job, false)
		return
	}
	e.mu.Lock()
	e.queued--
	e.running++
	e.mu.Unlock()
	// An adopted decentralized job resumes controller-driven: the
	// switches' plan agents lost their peer protocol state with the old
	// controller process, but the update FlowMods are idempotent
	// MODIFYs, so ack-driven dispatch from the recovered frontier is
	// safe and makes progress. The pprof label tags the job's event
	// loop (and everything it blocks on) in CPU and goroutine profiles.
	pprof.Do(ctx, pprof.Labels("tsu_job", strconv.Itoa(job.ID)), func(ctx context.Context) {
		if job.Mode == ModeDecentralized && !job.Adopted {
			e.executeDecentralized(ctx, job)
		} else {
			e.execute(ctx, job)
		}
	})
	<-e.sem
	e.retire(job, true)
}

// retire removes a finished job from the active set and fixes the
// queue counters. started reports whether the job consumed a worker
// slot (reached execute).
func (e *Engine) retire(job *Job, started bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, j := range e.active {
		if j == job {
			e.active = append(e.active[:i], e.active[i+1:]...)
			break
		}
	}
	// The job stays queryable in e.jobs, but it can no longer be a
	// conflict predecessor — drop the footprint so long-lived
	// controllers don't accumulate it for every job ever submitted.
	job.nodes, job.matches = nil, nil
	if started {
		e.running--
	} else {
		e.queued--
	}
}

// publish delivers an event to every subscriber; on terminal events
// the subscriber channels are closed and dropped. Non-terminal events
// are appended to the job's publish log for late-subscriber replay.
// Caller must hold j.mu.
func publishLocked(j *Job, ev JobEvent) {
	terminal := ev.State == JobDone || ev.State == JobFailed
	if !terminal {
		j.events = append(j.events, ev)
	}
	for _, ch := range j.subs {
		ch <- ev // buffered for the full event count, never blocks
		if terminal {
			close(ch)
		}
	}
	if terminal {
		j.subs = nil
	}
}

// fail marks the job failed and notifies waiters and subscribers.
func (e *Engine) fail(job *Job, err error) {
	e.journalTerminal(job, err)
	job.mu.Lock()
	job.state = JobFailed
	job.err = err
	job.finished = e.c.clock.Now()
	publishLocked(job, JobEvent{State: JobFailed, Err: err})
	job.mu.Unlock()
	close(job.done)
	e.c.logger.Warn("update job failed", "job", job.ID, "err", err)
}

// nodeAck is one install's outcome, delivered to the job's event loop
// as a value: by a connection read loop resolving a barrier sink, by a
// dispatch shard reporting a write failure or a fence bounce, or (in
// executeRollback, which keeps its own private channel) by a rollback
// goroutine. sent reports whether any FlowMod may have left for the
// switch before the error — such a node may have taken effect even
// without a barrier reply, so the rollback prefix must include it.
// job filters stale acks on the pooled ack channels; rollback's
// private channels leave it zero.
type nodeAck struct {
	job      int
	idx      int
	flowMods int
	started  time.Time
	finished time.Time
	sent     bool
	err      error
}

// execute runs one job's execution DAG ack-driven: every node whose
// dependencies are confirmed gets its FlowMod(s) sent followed by a
// barrier request, and each barrier reply immediately releases the
// installs it unblocks — per-node barriers instead of per-round
// barriers, so a slow switch stalls only its own dependents. For a
// layered DAG this is exactly the loop §2 of the paper narrates
// (round r+1's sends released by round r's last barrier reply),
// including removing each switch from the waiting set as its reply
// arrives; for a sparse DAG independent branches overtake each
// other's stragglers.
//
// Dispatch runs on the engine's sharded path (see dispatch.go): the
// job's single event loop releases nodes, journals each release wave
// as one grouped write-ahead append, and hands sends to the shard
// owning each switch connection; barrier replies come back as plain
// values from the connection read loops. Steady state the loop spawns
// no goroutines and allocates nothing per install.
func (e *Engine) execute(ctx context.Context, job *Job) {
	job.mu.Lock()
	job.state = JobRunning
	job.started = e.c.clock.Now()
	job.mu.Unlock()

	n := len(job.plan.nodes)
	if n > 0 && !e.runDAG(ctx, job) {
		return // terminal state already published by runDAG
	}

	e.journalTerminal(job, nil)
	job.mu.Lock()
	job.state = JobDone
	job.finished = e.c.clock.Now()
	publishLocked(job, JobEvent{State: JobDone})
	job.mu.Unlock()
	close(job.done)
	e.c.logger.Info("update job done", "job", job.ID,
		"installs", n, "depth", job.plan.depth, "sparse", job.plan.sparse)
}

// runDAG is the job's dispatch event loop. It returns true when every
// install confirmed; false when the job reached a terminal failure
// (already published). Single-threaded by construction: all release
// bookkeeping, journaling decisions and timeout synthesis happen here,
// with shards doing only coalesced I/O.
func (e *Engine) runDAG(ctx context.Context, job *Job) bool {
	n := len(job.plan.nodes)
	st := e.disp.acquire(n)
	prog := newPlanProgress(job)

	// Release the roots. On a fresh job this is exactly the roots; on
	// an adopted job the reconciliation's pre-confirmed ideal (down-
	// closed, so its members release in dependency order from the
	// roots) is confirmed synthetically inside collectWave, and real
	// dispatch resumes from the frontier it releases.
	e.collectWave(job, st, prog, prog.start(), 0)
	if !e.dispatchWave(job, st) {
		// The initial wave never became durable and nothing was handed
		// to a shard: the switches saw none of this job, so fail plain
		// instead of aborting.
		e.disp.release(st)
		e.fail(job, errJournalWriteAhead)
		return false
	}
	e.pump(ctx, job, st)

	// Timers are single re-armed channels over FIFO queues, not one
	// timer per install: deadlines (sendq dues) are pushed in
	// nondecreasing order, so the head is always the earliest live
	// target. A timer armed for an already-resolved entry fires
	// spuriously and re-arms — never early, never missed.
	var timerC, dueC <-chan time.Time
	var timerAt, dueAt time.Time

	for st.nDone < n {
		for st.deads.len() > 0 {
			if i, _ := st.deads.peek(); st.status[int(i)] != nsInflight {
				st.deads.pop()
				continue
			}
			break
		}
		if st.deads.len() > 0 {
			if _, dl := st.deads.peek(); timerC == nil || timerAt.After(dl) {
				timerC = e.c.clock.After(dl.Sub(e.c.clock.Now()))
				timerAt = dl
			}
		}
		if st.sendq.len() > 0 && st.failing == nil {
			if _, due := st.sendq.peek(); dueC == nil || dueAt.After(due) {
				dueC = e.c.clock.After(due.Sub(e.c.clock.Now()))
				dueAt = due
			}
		}

		select {
		case a := <-st.acks:
			e.handleAck(ctx, job, st, prog, a)
		case <-timerC:
			timerC = nil
			e.expireDeadlines(ctx, job, st, e.c.clock.Now())
		case <-dueC:
			dueC = nil // pump below releases the due installs
		case <-ctx.Done():
			// Engine shutdown: abandon the dispatch state (stragglers
			// may still write to its ack channel) and fail the job, the
			// exact semantics of the old per-goroutine path.
			e.abandon(job, st)
			e.fail(job, ctx.Err())
			return false
		}
		// Coalesce: fold every ack already queued into the same release
		// wave, so one journal append and one shard hand-off cycle cover
		// all of them.
	drained:
		for {
			select {
			case a := <-st.acks:
				e.handleAck(ctx, job, st, prog, a)
			default:
				break drained
			}
		}
		if st.failing == nil {
			if !e.dispatchWave(job, st) {
				e.noteFailure(ctx, job, st, errJournalWriteAhead)
			}
			e.pump(ctx, job, st)
		}
		if st.failing != nil && st.fences == 0 {
			break // every shard bounced its fence: the dispatched set is final
		}
	}

	if st.failing != nil {
		e.abort(ctx, job, st.failing, st.dispatched, st.confirmed)
		e.disp.release(st)
		return false
	}
	e.disp.release(st)
	return true
}

// collectWave folds a just-released node set into the pending wave.
// Pre-confirmed nodes (adopted jobs) are confirmed synthetically with
// zero-duration installs and their releases folded recursively; the
// scratch ring owns the traversal because prog.confirm reuses the
// released slice's backing array across calls.
func (e *Engine) collectWave(job *Job, st *jobDispatch, prog *planProgress, released []int, by topo.NodeID) {
	for _, s := range released {
		st.releasedBy[s] = by
		st.ready.push(int32(s))
	}
	for st.ready.len() > 0 {
		i := int(st.ready.pop())
		if i < len(job.preConfirmed) && job.preConfirmed[i] {
			st.dispatched[i] = true
			st.confirmed[i] = true
			st.status[i] = nsDone
			st.nDone++
			nd := &job.plan.nodes[i]
			now := e.c.clock.Now()
			for _, s := range prog.confirm(i, InstallTiming{
				Node:     nd.node,
				Layer:    nd.layer,
				Cleanup:  nd.cleanup,
				Started:  now,
				Finished: now,
			}) {
				st.releasedBy[s] = 0
				st.ready.push(int32(s))
			}
			continue
		}
		st.wave = append(st.wave, i)
	}
}

// dispatchWave makes the pending wave durable as one grouped
// dispatched-delta append, then queues every node for its send slot:
// immediately, or after the job's interval pause for non-root layers
// (the same pause the old per-goroutine path slept before sending). A
// false return means the journal refused the write-ahead — nothing of
// the wave may be dispatched.
func (e *Engine) dispatchWave(job *Job, st *jobDispatch) bool {
	if len(st.wave) == 0 {
		return true
	}
	slices.Sort(st.wave) // the batch codec wants ascending node order
	if !e.journalDispatchBatch(job.ID, st.wave) {
		st.wave = st.wave[:0]
		return false
	}
	var due time.Time
	if job.Interval > 0 {
		due = e.c.clock.Now().Add(job.Interval)
	}
	for _, i := range st.wave {
		st.dispatched[i] = true
		st.status[i] = nsQueued
		if job.Interval > 0 && job.plan.nodes[i].layer > 0 {
			st.sendq.push(int32(i), due)
		} else {
			st.sendNow.push(int32(i))
		}
	}
	metrics.DispatchReadyDepth.Add(int64(len(st.wave)))
	st.wave = st.wave[:0]
	return true
}

// pump hands queued installs to their shards: everything released
// without a pause immediately, plus any paused install whose due time
// arrived.
func (e *Engine) pump(ctx context.Context, job *Job, st *jobDispatch) {
	for st.sendNow.len() > 0 {
		if i := int(st.sendNow.pop()); st.status[i] == nsQueued {
			e.sendToShard(ctx, job, st, i)
		}
	}
	if st.sendq.len() == 0 {
		return
	}
	now := e.c.clock.Now()
	for st.sendq.len() > 0 {
		i32, due := st.sendq.peek()
		i := int(i32)
		if st.status[i] != nsQueued {
			st.sendq.pop()
			continue
		}
		if due.After(now) {
			return
		}
		st.sendq.pop()
		e.sendToShard(ctx, job, st, i)
	}
}

// sendToShard marks one install in flight, arms its barrier deadline,
// and hands it to the shard owning its switch connection. The
// RoundTimeout deadline runs on the controller's injected clock, like
// every other engine wait, so virtual-clock runs time out at
// RoundTimeout *virtual* time instead of hanging for 30 wall-clock
// seconds.
func (e *Engine) sendToShard(ctx context.Context, job *Job, st *jobDispatch, i int) {
	nd := &job.plan.nodes[i]
	st.status[i] = nsInflight
	metrics.DispatchReadyDepth.Dec()
	sh := e.disp.shardFor(uint64(nd.node))
	e.disp.inflight[sh].Inc()
	st.deads.push(int32(i), e.c.clock.Now().Add(e.c.cfg.RoundTimeout))
	select {
	case e.disp.shards[sh].reqs <- shardReq{job: job, st: st, idx: i}:
	case <-ctx.Done():
		// Shutdown: the shard loops may be gone; the event loop's ctx
		// branch abandons the job on its next turn.
	}
}

// handleAck processes one install outcome (or fence bounce) from the
// job's ack channel.
func (e *Engine) handleAck(ctx context.Context, job *Job, st *jobDispatch, prog *planProgress, a nodeAck) {
	if a.job != job.ID {
		return // stale ack from the pooled channel's previous owner
	}
	if a.idx == fenceIdx {
		st.fences--
		if st.fences == 0 {
			e.finalizeCancel(job, st)
		}
		return
	}
	i := a.idx
	if st.status[i] != nsInflight {
		return // duplicate: a reply racing a synthesized timeout or a write error
	}
	nd := &job.plan.nodes[i]
	st.status[i] = nsDone
	st.nDone++
	e.disp.inflight[e.disp.shardFor(uint64(nd.node))].Dec()
	if a.err != nil {
		if !a.sent {
			// Provably nothing left for the switch (skipped after the
			// cancel, or its encoding failed): it cannot have taken
			// effect. Everything else stays dispatched — a write error
			// does not prove the switch never saw the message, and the
			// undo FlowMods are idempotent, so over-covering is safe.
			st.dispatched[i] = false
		}
		e.noteFailure(ctx, job, st, a.err)
		return
	}
	// A successful install is recorded even when it lands after the
	// first failure: the rollback prefix must be exact, and a node that
	// confirmed between the error and the fence did take effect.
	st.confirmed[i] = true
	e.journalDelta(journal.KindConfirmed, job.ID, i)
	// Control messages per confirmed install: the FlowMods plus the
	// barrier request and its reply.
	job.addMessages(nd.node, MessageStats{Ctrl: a.flowMods + 2})
	rel := prog.confirm(i, InstallTiming{
		Node:       nd.node,
		Layer:      nd.layer,
		ReleasedBy: st.releasedBy[i],
		FlowMods:   a.flowMods,
		Cleanup:    nd.cleanup,
		Started:    a.started,
		Finished:   a.finished,
	})
	// Release: every install the ack unblocks joins the next wave —
	// unless the job is aborting, in which case confirmations are only
	// recorded, never acted on.
	if st.failing == nil {
		e.collectWave(job, st, prog, rel, nd.node)
	}
}

// expireDeadlines synthesizes barrier-timeout failures for every
// in-flight install whose deadline passed — the event-loop equivalent
// of the old per-goroutine clock.After race against the barrier reply.
// The dead entry's sink stays registered; a late reply finds the node
// already done and is dropped.
func (e *Engine) expireDeadlines(ctx context.Context, job *Job, st *jobDispatch, now time.Time) {
	for st.deads.len() > 0 {
		i32, dl := st.deads.peek()
		i := int(i32)
		if st.status[i] != nsInflight {
			st.deads.pop()
			continue
		}
		if dl.After(now) {
			return
		}
		st.deads.pop()
		nd := &job.plan.nodes[i]
		st.status[i] = nsDone
		st.nDone++
		e.disp.inflight[e.disp.shardFor(uint64(nd.node))].Dec()
		e.noteFailure(ctx, job, st, fmt.Errorf("install at %d (layer %d): barrier reply: %w", nd.node, nd.layer, context.DeadlineExceeded))
	}
}

// noteFailure records the job's first failure and fences every shard:
// shards process their queues in order, so once each fence bounces
// back, no FlowMod of this job can reach a wire anymore — only then is
// the dispatched set final and the abort safe to start.
func (e *Engine) noteFailure(ctx context.Context, job *Job, st *jobDispatch, err error) {
	if st.failing != nil {
		return
	}
	st.failing = err
	st.cancelled.Store(true)
	st.fences = len(e.disp.shards)
	for _, sh := range e.disp.shards {
		select {
		case sh.reqs <- shardReq{job: job, st: st, idx: fenceIdx}:
		case <-ctx.Done():
			st.fences-- // the shard loop exited; it cannot write anything anyway
		}
	}
	if st.fences == 0 {
		e.finalizeCancel(job, st)
	}
}

// finalizeCancel runs once the last fence bounced: every still-queued
// node provably never reached a wire (dispatched reverts to false —
// matching the old path's cancelled-during-pause semantics), and every
// in-flight node may have (dispatched stays true) but gets no further
// barrier wait — the prompt equivalent of the old cancel-drain.
func (e *Engine) finalizeCancel(job *Job, st *jobDispatch) {
	for i := range st.status {
		switch st.status[i] {
		case nsQueued:
			st.status[i] = nsDone
			st.nDone++
			st.dispatched[i] = false
			metrics.DispatchReadyDepth.Dec()
		case nsInflight:
			st.status[i] = nsDone
			st.nDone++
			e.disp.inflight[e.disp.shardFor(uint64(job.plan.nodes[i].node))].Dec()
		}
	}
}

// abandon corrects the dispatch gauges for a job cut off by engine
// shutdown and marks its state unrecyclable (late acks may still
// arrive on its channel).
func (e *Engine) abandon(job *Job, st *jobDispatch) {
	st.abandoned = true
	for i := range st.status {
		switch st.status[i] {
		case nsQueued:
			metrics.DispatchReadyDepth.Dec()
		case nsInflight:
			e.disp.inflight[e.disp.shardFor(uint64(job.plan.nodes[i].node))].Dec()
		}
	}
}
