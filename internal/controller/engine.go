package controller

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tsu/internal/core"
	"tsu/internal/openflow"
	"tsu/internal/topo"
)

// ErrQueueFull reports that the engine's admission limit is reached;
// match with errors.Is.
var ErrQueueFull = errors.New("controller: update queue full")

// JobState is the lifecycle of an update job.
type JobState int

const (
	// JobQueued: admitted, waiting on conflicting predecessors or a
	// worker slot.
	JobQueued JobState = iota
	// JobRunning: rounds in flight.
	JobRunning
	// JobDone: all rounds confirmed by barriers.
	JobDone
	// JobFailed: a round failed (send error or barrier timeout).
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	}
	return "unknown"
}

// ParseJobState maps a state name back to its JobState.
func ParseJobState(s string) (JobState, bool) {
	for _, st := range []JobState{JobQueued, JobRunning, JobDone, JobFailed} {
		if st.String() == s {
			return st, true
		}
	}
	return 0, false
}

// RoundTiming records one executed round: which switches were touched
// and how long the round took from first FlowMod sent to last barrier
// reply received — the paper's "update time of flow tables" metric,
// measured per round.
type RoundTiming struct {
	Round    int
	Switches []topo.NodeID
	FlowMods int
	Cleanup  bool // true for the stale-rule garbage-collection round
	Started  time.Time
	Finished time.Time
}

// Duration returns the round's wall-clock time.
func (rt RoundTiming) Duration() time.Duration { return rt.Finished.Sub(rt.Started) }

// JobEvent is one progress notification delivered to Subscribe
// channels: a completed round (Round non-nil, State JobRunning) or the
// terminal state (Round nil, State JobDone/JobFailed).
type JobEvent struct {
	Round *RoundTiming
	State JobState
	Err   error // set on terminal failure
}

// targetedMod is one FlowMod addressed to one switch.
type targetedMod struct {
	node topo.NodeID
	fm   *openflow.FlowMod
}

// execRound is a fully materialized round: the FlowMods to send and
// the switches to barrier afterwards.
type execRound struct {
	mods    []targetedMod
	cleanup bool
}

func (r *execRound) switches() []topo.NodeID {
	seen := make(map[topo.NodeID]bool, len(r.mods))
	var out []topo.NodeID
	for _, m := range r.mods {
		if !seen[m.node] {
			seen[m.node] = true
			out = append(out, m.node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Job is one queued update: the REST message object of the paper,
// carrying the per-switch OpenFlow messages for every round.
type Job struct {
	ID        int
	Algorithm string
	Interval  time.Duration // pause between rounds (REST "interval")

	rounds []execRound

	// Conflict footprint, immutable after construction: the switches
	// this job touches and the flow matches it programs. Two jobs
	// conflict when either set intersects; the dispatcher serializes
	// conflicting jobs in submission order and runs disjoint jobs
	// concurrently.
	nodes   map[topo.NodeID]struct{}
	matches map[openflow.Match]struct{}

	mu       sync.Mutex
	state    JobState
	err      error
	timings  []RoundTiming
	started  time.Time
	finished time.Time
	done     chan struct{}
	subs     []chan JobEvent
}

// NumRounds returns the number of rounds the job will execute
// (including a cleanup round, when requested).
func (j *Job) NumRounds() int { return len(j.rounds) }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure cause for JobFailed jobs.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Timings returns the per-round timings recorded so far.
func (j *Job) Timings() []RoundTiming {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]RoundTiming, len(j.timings))
	copy(out, j.timings)
	return out
}

// TotalDuration returns the job's wall-clock time from first round
// start to last barrier (zero while unfinished).
func (j *Job) TotalDuration() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() || j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started)
}

// Wait blocks until the job reaches JobDone or JobFailed (or ctx ends).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Subscribe returns a channel of progress events: rounds already
// executed are replayed first, then live rounds stream as they
// complete, and the channel ends with a terminal JobDone/JobFailed
// event before closing. The channel is buffered for the job's full
// event count, so a slow reader never blocks the engine.
func (j *Job) Subscribe() <-chan JobEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan JobEvent, len(j.rounds)+2)
	for i := range j.timings {
		t := j.timings[i]
		ch <- JobEvent{Round: &t, State: JobRunning}
	}
	if j.state == JobDone || j.state == JobFailed {
		ch <- JobEvent{State: j.state, Err: j.err}
		close(ch)
		return ch
	}
	j.subs = append(j.subs, ch)
	return ch
}

// footprint fills the job's conflict sets from its rounds.
func (j *Job) footprint() {
	j.nodes = make(map[topo.NodeID]struct{})
	j.matches = make(map[openflow.Match]struct{})
	for _, r := range j.rounds {
		for _, m := range r.mods {
			j.nodes[m.node] = struct{}{}
			j.matches[m.fm.Match] = struct{}{}
		}
	}
}

// conflictsWith reports whether the two jobs may not execute
// concurrently: they touch a common switch or program a common flow.
func (j *Job) conflictsWith(other *Job) bool {
	a, b := j.nodes, other.nodes
	if len(b) < len(a) {
		a, b = b, a
	}
	for n := range a {
		if _, ok := b[n]; ok {
			return true
		}
	}
	ma, mb := j.matches, other.matches
	if len(mb) < len(ma) {
		ma, mb = mb, ma
	}
	for m := range ma {
		if _, ok := mb[m]; ok {
			return true
		}
	}
	return false
}

// maxAdmitted bounds the number of unfinished jobs the engine accepts
// (the successor of the seed's 128-slot FIFO queue).
const maxAdmitted = 128

// Engine is the controller's update dispatcher. The paper's demo
// processes its message queue strictly FIFO; this engine keeps that
// ordering exactly where it matters — jobs that touch a common switch
// or program a common flow execute in submission order — and runs
// conflict-free jobs concurrently on a bounded worker pool, so
// independent flows no longer wait behind each other's barriers.
type Engine struct {
	c       *Controller
	workers int
	sem     chan struct{} // worker-pool slots

	mu      sync.Mutex
	ctx     context.Context // set by run; jobs launch once available
	nextID  int
	jobs    map[int]*Job
	active  []*Job // unfinished jobs in submission order
	pending []*launch
	queued  int // admitted, not yet executing
	running int // executing rounds
}

// launch pairs an admitted job with the done channels of the earlier
// conflicting jobs it must wait for.
type launch struct {
	job  *Job
	deps []<-chan struct{}
}

func newEngine(c *Controller, workers int) *Engine {
	if workers <= 0 {
		workers = defaultEngineWorkers
	}
	return &Engine{
		c:       c,
		workers: workers,
		sem:     make(chan struct{}, workers),
		jobs:    make(map[int]*Job),
	}
}

// defaultEngineWorkers is the engine's default concurrency: update
// execution is barrier-bound (network waits), not CPU-bound, so the
// default does not track GOMAXPROCS.
const defaultEngineWorkers = 8

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// QueueDepth counts jobs admitted but not yet executing rounds.
func (e *Engine) QueueDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queued
}

// RunningCount counts jobs currently executing rounds.
func (e *Engine) RunningCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.running
}

// Submit enqueues a single-policy update job for the instance using
// the given schedule; the flow is identified by match.
func (e *Engine) Submit(in *core.Instance, s *core.Schedule, match openflow.Match, interval time.Duration) (*Job, error) {
	return e.SubmitOpts(in, s, match, SubmitOptions{Interval: interval})
}

// SubmitOptions tunes job construction.
type SubmitOptions struct {
	// Interval pauses between rounds (the REST message's "interval").
	Interval time.Duration

	// Cleanup appends a garbage-collection round after the update:
	// switches on the old path that are off the new path delete the
	// flow's stale rule. Those switches are unreachable for the flow
	// once the update completes, so the extra round cannot violate any
	// transient property.
	Cleanup bool
}

// SubmitOpts is Submit with full options.
func (e *Engine) SubmitOpts(in *core.Instance, s *core.Schedule, match openflow.Match, opts SubmitOptions) (*Job, error) {
	rounds, err := e.buildScheduleRounds(in, s, match, opts)
	if err != nil {
		return nil, err
	}
	return e.enqueue(s.Algorithm, rounds, opts.Interval)
}

// buildScheduleRounds materializes a schedule's rounds for one flow:
// the per-switch FlowMods plus the optional cleanup round. Building is
// pure — nothing is admitted.
func (e *Engine) buildScheduleRounds(in *core.Instance, s *core.Schedule, match openflow.Match, opts SubmitOptions) ([]execRound, error) {
	if err := s.Validate(in); err != nil {
		return nil, fmt.Errorf("controller: schedule does not fit instance: %w", err)
	}
	rounds := make([]execRound, 0, s.NumRounds()+1)
	for _, round := range s.Rounds {
		var r execRound
		for _, node := range round {
			fm, err := e.updateFlowMod(in, node, match)
			if err != nil {
				return nil, err
			}
			r.mods = append(r.mods, targetedMod{node: node, fm: fm})
		}
		rounds = append(rounds, r)
	}
	if opts.Cleanup {
		if r, ok := cleanupRound(in, match); ok {
			rounds = append(rounds, r)
		}
	}
	return rounds, nil
}

// SubmitJoint enqueues several policies as one job: per joint round,
// every flow's FlowMods for that round are sent together (switches
// shared by multiple flows receive their batch in one burst), then the
// union of touched switches is barriered once.
func (e *Engine) SubmitJoint(ju *core.JointUpdate, matches []openflow.Match, opts SubmitOptions) (*Job, error) {
	if len(matches) != len(ju.Instances) {
		return nil, fmt.Errorf("controller: %d matches for %d policies", len(matches), len(ju.Instances))
	}
	for f, in := range ju.Instances {
		if err := ju.Schedules[f].Validate(in); err != nil {
			return nil, fmt.Errorf("controller: policy %d: %w", f, err)
		}
	}
	numRounds := ju.NumRounds()
	rounds := make([]execRound, 0, numRounds+1)
	for i := 0; i < numRounds; i++ {
		var r execRound
		// Deterministic order: by switch, then by flow.
		byNode := ju.Round(i)
		nodes := make([]topo.NodeID, 0, len(byNode))
		for n := range byNode {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		for _, n := range nodes {
			for _, fu := range byNode[n] {
				fm, err := e.updateFlowMod(ju.Instances[fu.Flow], n, matches[fu.Flow])
				if err != nil {
					return nil, err
				}
				r.mods = append(r.mods, targetedMod{node: n, fm: fm})
			}
		}
		rounds = append(rounds, r)
	}
	if opts.Cleanup {
		var cr execRound
		for f, in := range ju.Instances {
			if r, ok := cleanupRound(in, matches[f]); ok {
				cr.mods = append(cr.mods, r.mods...)
			}
		}
		if len(cr.mods) > 0 {
			cr.cleanup = true
			rounds = append(rounds, cr)
		}
	}
	return e.enqueue("joint-"+ju.Schedules[0].Algorithm, rounds, opts.Interval)
}

// updateFlowMod builds the round FlowMod for one switch of one flow:
// point the flow at the switch's new-path successor. MODIFY is used
// (the rule exists under the old policy); for new-path-only switches
// the OF 1.0 MODIFY semantics insert the missing rule.
func (e *Engine) updateFlowMod(in *core.Instance, node topo.NodeID, match openflow.Match) (*openflow.FlowMod, error) {
	succ, ok := in.NewSucc(node)
	if !ok {
		return nil, fmt.Errorf("switch %d has no new-path successor", node)
	}
	return e.c.PathFlowMod(node, succ, match, openflow.FlowModify)
}

// cleanupRound builds the garbage-collection round: delete the flow's
// rule from old-path switches that are off the new path.
func cleanupRound(in *core.Instance, match openflow.Match) (execRound, bool) {
	var r execRound
	for _, node := range in.Old {
		if in.OnNew(node) {
			continue
		}
		fm := &openflow.FlowMod{
			Match:    match,
			Command:  openflow.FlowDelete,
			BufferID: openflow.NoBuffer,
			OutPort:  openflow.PortNone,
		}
		r.mods = append(r.mods, targetedMod{node: node, fm: fm})
	}
	if len(r.mods) == 0 {
		return execRound{}, false
	}
	r.cleanup = true
	return r, true
}

// jobSpec is one prepared submission: rounds built, not yet admitted.
type jobSpec struct {
	algorithm string
	rounds    []execRound
	interval  time.Duration
}

// enqueue admits a single job (see enqueueAll).
func (e *Engine) enqueue(algorithm string, rounds []execRound, interval time.Duration) (*Job, error) {
	jobs, err := e.enqueueAll([]jobSpec{{algorithm: algorithm, rounds: rounds, interval: interval}})
	if err != nil {
		return nil, err
	}
	return jobs[0], nil
}

// enqueueAll admits several jobs atomically: either the whole group
// fits under the admission limit and every job is admitted in order
// (consecutive ids), or nothing is and ErrQueueFull is returned. Per
// job it records the done channels of every earlier unfinished
// conflicting job — including earlier members of the same group — and
// hands the job to a dispatcher goroutine. Disjoint jobs proceed
// immediately, bounded only by the worker pool.
func (e *Engine) enqueueAll(specs []jobSpec) ([]*Job, error) {
	jobs := make([]*Job, len(specs))
	for i, s := range specs {
		jobs[i] = &Job{
			Algorithm: s.algorithm,
			Interval:  s.interval,
			rounds:    s.rounds,
			done:      make(chan struct{}),
		}
		jobs[i].footprint()
	}
	e.mu.Lock()
	if len(e.active)+len(jobs) > maxAdmitted {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %d active + %d submitted > %d",
			ErrQueueFull, len(e.active), len(jobs), maxAdmitted)
	}
	launches := make([]*launch, len(jobs))
	for i, job := range jobs {
		e.nextID++
		job.ID = e.nextID
		e.jobs[job.ID] = job
		var deps []<-chan struct{}
		for _, prev := range e.active {
			if prev.conflictsWith(job) {
				deps = append(deps, prev.done)
			}
		}
		e.active = append(e.active, job)
		e.queued++
		launches[i] = &launch{job: job, deps: deps}
	}
	ctx := e.ctx
	if ctx == nil {
		e.pending = append(e.pending, launches...)
		e.mu.Unlock()
		return jobs, nil
	}
	e.mu.Unlock()
	for _, l := range launches {
		go e.runJob(ctx, l.job, l.deps)
	}
	return jobs, nil
}

// Job looks a job up by ID.
func (e *Engine) Job(id int) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs returns all known jobs in submission order.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Job, 0, len(e.jobs))
	for id := 1; id <= e.nextID; id++ {
		if j, ok := e.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// run starts the dispatcher: jobs admitted before the controller
// started are launched now; later submissions launch directly from
// enqueue.
func (e *Engine) run(ctx context.Context) {
	e.mu.Lock()
	e.ctx = ctx
	pending := e.pending
	e.pending = nil
	e.mu.Unlock()
	for _, l := range pending {
		go e.runJob(ctx, l.job, l.deps)
	}
}

// runJob drives one job: wait for conflicting predecessors, claim a
// worker slot, execute the rounds, release.
func (e *Engine) runJob(ctx context.Context, job *Job, deps []<-chan struct{}) {
	for _, d := range deps {
		select {
		case <-d:
		case <-ctx.Done():
			e.fail(job, ctx.Err())
			e.retire(job, false)
			return
		}
	}
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.fail(job, ctx.Err())
		e.retire(job, false)
		return
	}
	e.mu.Lock()
	e.queued--
	e.running++
	e.mu.Unlock()
	e.execute(ctx, job)
	<-e.sem
	e.retire(job, true)
}

// retire removes a finished job from the active set and fixes the
// queue counters. started reports whether the job consumed a worker
// slot (reached execute).
func (e *Engine) retire(job *Job, started bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, j := range e.active {
		if j == job {
			e.active = append(e.active[:i], e.active[i+1:]...)
			break
		}
	}
	// The job stays queryable in e.jobs, but it can no longer be a
	// conflict predecessor — drop the footprint so long-lived
	// controllers don't accumulate it for every job ever submitted.
	job.nodes, job.matches = nil, nil
	if started {
		e.running--
	} else {
		e.queued--
	}
}

// publish delivers an event to every subscriber; on terminal events
// the subscriber channels are closed and dropped. Caller must hold
// j.mu.
func publishLocked(j *Job, ev JobEvent) {
	terminal := ev.State == JobDone || ev.State == JobFailed
	for _, ch := range j.subs {
		ch <- ev // buffered for the full event count, never blocks
		if terminal {
			close(ch)
		}
	}
	if terminal {
		j.subs = nil
	}
}

// fail marks the job failed and notifies waiters and subscribers.
func (e *Engine) fail(job *Job, err error) {
	job.mu.Lock()
	job.state = JobFailed
	job.err = err
	job.finished = e.c.clock.Now()
	publishLocked(job, JobEvent{State: JobFailed, Err: err})
	job.mu.Unlock()
	close(job.done)
	e.c.logger.Warn("update job failed", "job", job.ID, "err", err)
}

// execute runs one job's rounds. For every round it sends each
// switch's FlowMod(s), then a barrier request to every switch of the
// round, and only proceeds when every barrier reply has arrived —
// synchronizing the asynchronous channel at round granularity. This is
// precisely the loop §2 of the paper narrates, including removing each
// switch from the waiting set as its barrier reply arrives.
func (e *Engine) execute(ctx context.Context, job *Job) {
	job.mu.Lock()
	job.state = JobRunning
	job.started = e.c.clock.Now()
	job.mu.Unlock()

	for roundIdx, round := range job.rounds {
		switches := round.switches()
		timing := RoundTiming{
			Round:    roundIdx,
			Switches: switches,
			Cleanup:  round.cleanup,
			Started:  e.c.clock.Now(),
		}

		// 1. Send every FlowMod of the round.
		for _, tm := range round.mods {
			if err := e.c.SendFlowMod(uint64(tm.node), tm.fm); err != nil {
				e.fail(job, fmt.Errorf("round %d: sending flowmod to %d: %w", roundIdx, tm.node, err))
				return
			}
			timing.FlowMods++
		}

		// 2. Barrier every touched switch; remove a switch from the
		// waiting set as its reply arrives.
		waits := make(map[topo.NodeID]<-chan struct{}, len(switches))
		for _, node := range switches {
			done, err := e.c.BarrierAsync(uint64(node))
			if err != nil {
				e.fail(job, fmt.Errorf("round %d: barrier to %d: %w", roundIdx, node, err))
				return
			}
			waits[node] = done
		}
		roundCtx, cancel := context.WithTimeout(ctx, e.c.cfg.RoundTimeout)
		for node, done := range waits {
			select {
			case <-done:
			case <-roundCtx.Done():
				cancel()
				e.fail(job, fmt.Errorf("round %d: barrier reply from %d: %w", roundIdx, node, roundCtx.Err()))
				return
			}
		}
		cancel()
		timing.Finished = e.c.clock.Now()

		job.mu.Lock()
		job.timings = append(job.timings, timing)
		publishLocked(job, JobEvent{Round: &timing, State: JobRunning})
		job.mu.Unlock()

		if job.Interval > 0 && roundIdx+1 < len(job.rounds) {
			select {
			case <-e.c.clock.After(job.Interval):
			case <-ctx.Done():
				e.fail(job, ctx.Err())
				return
			}
		}
	}

	job.mu.Lock()
	job.state = JobDone
	job.finished = e.c.clock.Now()
	publishLocked(job, JobEvent{State: JobDone})
	job.mu.Unlock()
	close(job.done)
	e.c.logger.Info("update job done", "job", job.ID, "rounds", len(job.rounds))
}
