package controller

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"tsu/internal/core"
	"tsu/internal/openflow"
	"tsu/internal/topo"
)

// JobState is the lifecycle of an update job.
type JobState int

const (
	// JobQueued: waiting in the engine's message queue.
	JobQueued JobState = iota
	// JobRunning: rounds in flight.
	JobRunning
	// JobDone: all rounds confirmed by barriers.
	JobDone
	// JobFailed: a round failed (send error or barrier timeout).
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	}
	return "unknown"
}

// RoundTiming records one executed round: which switches were touched
// and how long the round took from first FlowMod sent to last barrier
// reply received — the paper's "update time of flow tables" metric,
// measured per round.
type RoundTiming struct {
	Round    int
	Switches []topo.NodeID
	FlowMods int
	Cleanup  bool // true for the stale-rule garbage-collection round
	Started  time.Time
	Finished time.Time
}

// Duration returns the round's wall-clock time.
func (rt RoundTiming) Duration() time.Duration { return rt.Finished.Sub(rt.Started) }

// targetedMod is one FlowMod addressed to one switch.
type targetedMod struct {
	node topo.NodeID
	fm   *openflow.FlowMod
}

// execRound is a fully materialized round: the FlowMods to send and
// the switches to barrier afterwards.
type execRound struct {
	mods    []targetedMod
	cleanup bool
}

func (r *execRound) switches() []topo.NodeID {
	seen := make(map[topo.NodeID]bool, len(r.mods))
	var out []topo.NodeID
	for _, m := range r.mods {
		if !seen[m.node] {
			seen[m.node] = true
			out = append(out, m.node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Job is one queued update: the REST message object of the paper,
// carrying the per-switch OpenFlow messages for every round.
type Job struct {
	ID        int
	Algorithm string
	Interval  time.Duration // pause between rounds (REST "interval")

	rounds []execRound

	mu       sync.Mutex
	state    JobState
	err      error
	timings  []RoundTiming
	started  time.Time
	finished time.Time
	done     chan struct{}
}

// NumRounds returns the number of rounds the job will execute
// (including a cleanup round, when requested).
func (j *Job) NumRounds() int { return len(j.rounds) }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure cause for JobFailed jobs.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Timings returns the per-round timings recorded so far.
func (j *Job) Timings() []RoundTiming {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]RoundTiming, len(j.timings))
	copy(out, j.timings)
	return out
}

// TotalDuration returns the job's wall-clock time from first round
// start to last barrier (zero while unfinished).
func (j *Job) TotalDuration() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started)
}

// Wait blocks until the job reaches JobDone or JobFailed (or ctx ends).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SubmitOptions tunes job construction.
type SubmitOptions struct {
	// Interval pauses between rounds (the REST message's "interval").
	Interval time.Duration

	// Cleanup appends a garbage-collection round after the update:
	// switches on the old path that are off the new path delete the
	// flow's stale rule. Those switches are unreachable for the flow
	// once the update completes, so the extra round cannot violate any
	// transient property.
	Cleanup bool
}

// Engine is the controller's update message queue: jobs execute
// strictly one at a time, each as a sequence of barrier-delimited
// rounds (§2 of the paper).
type Engine struct {
	c *Controller

	mu     sync.Mutex
	nextID int
	jobs   map[int]*Job
	queue  chan *Job
}

func newEngine(c *Controller) *Engine {
	return &Engine{c: c, jobs: make(map[int]*Job), queue: make(chan *Job, 128)}
}

// Submit enqueues a single-policy update job for the instance using
// the given schedule; the flow is identified by match.
func (e *Engine) Submit(in *core.Instance, s *core.Schedule, match openflow.Match, interval time.Duration) (*Job, error) {
	return e.SubmitOpts(in, s, match, SubmitOptions{Interval: interval})
}

// SubmitOpts is Submit with full options.
func (e *Engine) SubmitOpts(in *core.Instance, s *core.Schedule, match openflow.Match, opts SubmitOptions) (*Job, error) {
	if err := s.Validate(in); err != nil {
		return nil, fmt.Errorf("controller: schedule does not fit instance: %w", err)
	}
	rounds := make([]execRound, 0, s.NumRounds()+1)
	for _, round := range s.Rounds {
		var r execRound
		for _, node := range round {
			fm, err := e.updateFlowMod(in, node, match)
			if err != nil {
				return nil, err
			}
			r.mods = append(r.mods, targetedMod{node: node, fm: fm})
		}
		rounds = append(rounds, r)
	}
	if opts.Cleanup {
		if r, ok := cleanupRound(in, match); ok {
			rounds = append(rounds, r)
		}
	}
	return e.enqueue(s.Algorithm, rounds, opts.Interval)
}

// SubmitJoint enqueues several policies as one job: per joint round,
// every flow's FlowMods for that round are sent together (switches
// shared by multiple flows receive their batch in one burst), then the
// union of touched switches is barriered once.
func (e *Engine) SubmitJoint(ju *core.JointUpdate, matches []openflow.Match, opts SubmitOptions) (*Job, error) {
	if len(matches) != len(ju.Instances) {
		return nil, fmt.Errorf("controller: %d matches for %d policies", len(matches), len(ju.Instances))
	}
	for f, in := range ju.Instances {
		if err := ju.Schedules[f].Validate(in); err != nil {
			return nil, fmt.Errorf("controller: policy %d: %w", f, err)
		}
	}
	numRounds := ju.NumRounds()
	rounds := make([]execRound, 0, numRounds+1)
	for i := 0; i < numRounds; i++ {
		var r execRound
		// Deterministic order: by switch, then by flow.
		byNode := ju.Round(i)
		nodes := make([]topo.NodeID, 0, len(byNode))
		for n := range byNode {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		for _, n := range nodes {
			for _, fu := range byNode[n] {
				fm, err := e.updateFlowMod(ju.Instances[fu.Flow], n, matches[fu.Flow])
				if err != nil {
					return nil, err
				}
				r.mods = append(r.mods, targetedMod{node: n, fm: fm})
			}
		}
		rounds = append(rounds, r)
	}
	if opts.Cleanup {
		var cr execRound
		for f, in := range ju.Instances {
			if r, ok := cleanupRound(in, matches[f]); ok {
				cr.mods = append(cr.mods, r.mods...)
			}
		}
		if len(cr.mods) > 0 {
			cr.cleanup = true
			rounds = append(rounds, cr)
		}
	}
	return e.enqueue("joint-"+ju.Schedules[0].Algorithm, rounds, opts.Interval)
}

// updateFlowMod builds the round FlowMod for one switch of one flow:
// point the flow at the switch's new-path successor. MODIFY is used
// (the rule exists under the old policy); for new-path-only switches
// the OF 1.0 MODIFY semantics insert the missing rule.
func (e *Engine) updateFlowMod(in *core.Instance, node topo.NodeID, match openflow.Match) (*openflow.FlowMod, error) {
	succ, ok := in.NewSucc(node)
	if !ok {
		return nil, fmt.Errorf("switch %d has no new-path successor", node)
	}
	return e.c.PathFlowMod(node, succ, match, openflow.FlowModify)
}

// cleanupRound builds the garbage-collection round: delete the flow's
// rule from old-path switches that are off the new path.
func cleanupRound(in *core.Instance, match openflow.Match) (execRound, bool) {
	var r execRound
	for _, node := range in.Old {
		if in.OnNew(node) {
			continue
		}
		fm := &openflow.FlowMod{
			Match:    match,
			Command:  openflow.FlowDelete,
			BufferID: openflow.NoBuffer,
			OutPort:  openflow.PortNone,
		}
		r.mods = append(r.mods, targetedMod{node: node, fm: fm})
	}
	if len(r.mods) == 0 {
		return execRound{}, false
	}
	r.cleanup = true
	return r, true
}

func (e *Engine) enqueue(algorithm string, rounds []execRound, interval time.Duration) (*Job, error) {
	e.mu.Lock()
	e.nextID++
	job := &Job{
		ID:        e.nextID,
		Algorithm: algorithm,
		Interval:  interval,
		rounds:    rounds,
		done:      make(chan struct{}),
	}
	e.jobs[job.ID] = job
	e.mu.Unlock()
	select {
	case e.queue <- job:
		return job, nil
	default:
		e.mu.Lock()
		delete(e.jobs, job.ID)
		e.mu.Unlock()
		return nil, fmt.Errorf("controller: update queue full")
	}
}

// Job looks a job up by ID.
func (e *Engine) Job(id int) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs returns all known jobs in submission order.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Job, 0, len(e.jobs))
	for id := 1; id <= e.nextID; id++ {
		if j, ok := e.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// run processes the queue until ctx is cancelled.
func (e *Engine) run(ctx context.Context) {
	for {
		select {
		case job := <-e.queue:
			e.execute(ctx, job)
		case <-ctx.Done():
			return
		}
	}
}

// execute runs one job's rounds. For every round it sends each
// switch's FlowMod(s), then a barrier request to every switch of the
// round, and only proceeds when every barrier reply has arrived —
// synchronizing the asynchronous channel at round granularity. This is
// precisely the loop §2 of the paper narrates, including removing each
// switch from the waiting set as its barrier reply arrives.
func (e *Engine) execute(ctx context.Context, job *Job) {
	job.mu.Lock()
	job.state = JobRunning
	job.started = time.Now()
	job.mu.Unlock()

	fail := func(err error) {
		job.mu.Lock()
		job.state = JobFailed
		job.err = err
		job.finished = time.Now()
		job.mu.Unlock()
		close(job.done)
		e.c.logger.Warn("update job failed", "job", job.ID, "err", err)
	}

	for roundIdx, round := range job.rounds {
		switches := round.switches()
		timing := RoundTiming{
			Round:    roundIdx,
			Switches: switches,
			Cleanup:  round.cleanup,
			Started:  time.Now(),
		}

		// 1. Send every FlowMod of the round.
		for _, tm := range round.mods {
			if err := e.c.SendFlowMod(uint64(tm.node), tm.fm); err != nil {
				fail(fmt.Errorf("round %d: sending flowmod to %d: %w", roundIdx, tm.node, err))
				return
			}
			timing.FlowMods++
		}

		// 2. Barrier every touched switch; remove a switch from the
		// waiting set as its reply arrives.
		waits := make(map[topo.NodeID]<-chan struct{}, len(switches))
		for _, node := range switches {
			done, err := e.c.BarrierAsync(uint64(node))
			if err != nil {
				fail(fmt.Errorf("round %d: barrier to %d: %w", roundIdx, node, err))
				return
			}
			waits[node] = done
		}
		roundCtx, cancel := context.WithTimeout(ctx, e.c.cfg.RoundTimeout)
		for node, done := range waits {
			select {
			case <-done:
			case <-roundCtx.Done():
				cancel()
				fail(fmt.Errorf("round %d: barrier reply from %d: %w", roundIdx, node, roundCtx.Err()))
				return
			}
		}
		cancel()
		timing.Finished = time.Now()

		job.mu.Lock()
		job.timings = append(job.timings, timing)
		job.mu.Unlock()

		if job.Interval > 0 && roundIdx+1 < len(job.rounds) {
			select {
			case <-time.After(job.Interval):
			case <-ctx.Done():
				fail(ctx.Err())
				return
			}
		}
	}

	job.mu.Lock()
	job.state = JobDone
	job.finished = time.Now()
	job.mu.Unlock()
	close(job.done)
	e.c.logger.Info("update job done", "job", job.ID, "rounds", len(job.rounds))
}
