package controller

import (
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"time"

	"tsu/internal/api"
	"tsu/internal/core"
	"tsu/internal/openflow"
)

// UpdateRequest is the REST message of the paper (§2): header fields
// naming the old route, the new route, the waypoint and the inter-round
// interval, plus the algorithm selector and the flow identity
// (destination address) this reproduction adds explicitly. Paths list
// datapath numbers "in the way they are passed by the network packets
// along the route".
//
// This legacy route survives as a thin adapter over the v1 surface:
// POST /update is a one-entry POST /v1/updates (see restv1.go and
// internal/api).
type UpdateRequest struct {
	OldPath  []uint64 `json:"oldpath"`
	NewPath  []uint64 `json:"newpath"`
	Waypoint uint64   `json:"wp,omitempty"`
	Interval int      `json:"interval,omitempty"` // milliseconds between rounds
	// Algorithm selects the scheduler: any name registered with the
	// core scheduler registry (see core.Names; wayup is the default
	// when wp is set, peacock otherwise), or "two-phase" (tagged
	// per-packet consistency).
	Algorithm string `json:"algorithm,omitempty"`
	// NWDst identifies the flow (IPv4 destination), e.g. "10.0.0.2".
	NWDst string `json:"nw_dst"`
	// Cleanup appends a garbage-collection round deleting the old
	// policy's stale rules.
	Cleanup bool `json:"cleanup,omitempty"`
}

// UpdateResponse reports the accepted job.
type UpdateResponse struct {
	ID         int        `json:"id"`
	Algorithm  string     `json:"algorithm"`
	Rounds     [][]uint64 `json:"rounds"`
	Guarantees string     `json:"guarantees"`
	Compromise bool       `json:"loop_freedom_compromised,omitempty"`
}

// JobStatus reports a job's progress.
type JobStatus struct {
	ID          int           `json:"id"`
	State       string        `json:"state"`
	Algorithm   string        `json:"algorithm"`
	Error       string        `json:"error,omitempty"`
	TotalMicros int64         `json:"total_us"`
	Rounds      []RoundStatus `json:"rounds"`
}

// RoundStatus reports one executed round.
type RoundStatus struct {
	Round    int      `json:"round"`
	Switches []uint64 `json:"switches"`
	Micros   int64    `json:"us"`
}

// FlowEntryRequest is the ofctl_rest-style single-rule request
// (POST /stats/flowentry/add|modify|delete), the base app the paper's
// own app extends.
type FlowEntryRequest struct {
	Dpid     uint64 `json:"dpid"`
	Priority uint16 `json:"priority,omitempty"`
	Match    struct {
		NWDst string `json:"nw_dst"`
	} `json:"match"`
	Actions []struct {
		Type string `json:"type"`
		Port uint16 `json:"port"`
	} `json:"actions"`
}

// PolicyRequest installs a complete routing policy along a path: every
// switch forwards the flow to its successor, and the final switch
// delivers to the named host (optional). This is how the old policy is
// brought up before an update (the controller owns the topology's port
// map, so clients need not). Wire-identical to api.PolicyRequest; the
// legacy route and POST /v1/policies share one handler.
type PolicyRequest struct {
	Path  []uint64 `json:"path"`
	NWDst string   `json:"nw_dst"`
	Host  string   `json:"host,omitempty"`
}

// RESTHandler serves the controller's HTTP API: the versioned /v1
// surface plus the legacy paper-schema routes as adapters over it.
func (c *Controller) RESTHandler() http.Handler {
	mux := http.NewServeMux()
	// v1 (restv1.go).
	mux.HandleFunc("POST /v1/updates", c.handleV1SubmitBatch)
	mux.HandleFunc("GET /v1/updates", c.handleV1Jobs)
	mux.HandleFunc("GET /v1/updates/{id}", c.handleV1JobStatus)
	mux.HandleFunc("GET /v1/updates/{id}/watch", c.handleV1Watch)
	mux.HandleFunc("POST /v1/verify", c.handleV1Verify)
	mux.HandleFunc("POST /v1/explore", c.handleV1Explore)
	mux.HandleFunc("POST /v1/policies", c.handleV1Policies)
	mux.HandleFunc("GET /v1/healthz", c.handleV1Healthz)
	mux.HandleFunc("GET /v1/switches", c.handleSwitches)
	// Legacy paper-schema adapters.
	mux.HandleFunc("POST /update", c.handleUpdate)
	mux.HandleFunc("GET /update/{id}", c.handleJobStatus)
	mux.HandleFunc("GET /updates", c.handleJobs)
	mux.HandleFunc("GET /switches", c.handleSwitches)
	mux.HandleFunc("POST /policy", c.handleV1Policies)
	mux.HandleFunc("POST /stats/flowentry/{op}", c.handleFlowEntry)
	mux.HandleFunc("GET /stats/flow/{dpid}", c.handleFlowStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // response writer errors are the client's problem
}

// ScheduleFor builds the schedule for an instance using the named
// algorithm via the core scheduler registry ("" picks wayup when a
// waypoint is present, else peacock).
func ScheduleFor(in *core.Instance, algorithm string) (*core.Schedule, error) {
	return core.ScheduleByName(in, algorithm, 0)
}

// handleUpdate adapts the paper's single-flow update message onto the
// v1 planning/submission core: one entry, same validation, same
// engine.
func (c *Controller) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, errf(http.StatusBadRequest, api.CodeInvalidJSON, "invalid JSON: %v", err))
		return
	}
	if req.Interval < 0 {
		writeErr(w, errf(http.StatusBadRequest, api.CodeInvalidInterval, "interval %d ms is negative", req.Interval))
		return
	}
	p, err := planUpdate(api.FlowUpdate{
		OldPath:   req.OldPath,
		NewPath:   req.NewPath,
		Waypoint:  req.Waypoint,
		Algorithm: req.Algorithm,
		NWDst:     req.NWDst,
	}, false)
	if err != nil {
		writeErr(w, err)
		return
	}
	opts := SubmitOptions{Interval: time.Duration(req.Interval) * time.Millisecond, Cleanup: req.Cleanup}
	jobs, err := c.submitPlanned([]*plannedUpdate{p}, opts)
	if err != nil {
		writeErr(w, err)
		return
	}
	acc := accepted(p, jobs[0])
	writeJSON(w, http.StatusAccepted, UpdateResponse{
		ID:         acc.ID,
		Algorithm:  acc.Algorithm,
		Rounds:     acc.Rounds,
		Guarantees: acc.Guarantees,
		Compromise: acc.Compromise,
	})
}

// TwoPhaseTag is the VLAN id the REST layer uses to mark the new
// policy version in two-phase updates.
const TwoPhaseTag uint16 = 2016

func jobStatus(job *Job) JobStatus {
	st := JobStatus{
		ID:          job.ID,
		State:       job.State().String(),
		Algorithm:   job.Algorithm,
		TotalMicros: job.TotalDuration().Microseconds(),
	}
	if err := job.Err(); err != nil {
		st.Error = err.Error()
	}
	for _, t := range job.Timings() {
		sw := make([]uint64, len(t.Switches))
		for i, n := range t.Switches {
			sw[i] = uint64(n)
		}
		st.Rounds = append(st.Rounds, RoundStatus{Round: t.Round, Switches: sw, Micros: t.Duration().Microseconds()})
	}
	return st
}

func (c *Controller) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, err := c.jobFromPath(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobStatus(job))
}

func (c *Controller) handleJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := c.engine.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, jobStatus(j))
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Controller) handleSwitches(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Datapaths())
}

func (c *Controller) handleFlowEntry(w http.ResponseWriter, r *http.Request) {
	op := r.PathValue("op")
	var cmd openflow.FlowModCommand
	switch op {
	case "add":
		cmd = openflow.FlowAdd
	case "modify":
		cmd = openflow.FlowModify
	case "delete":
		cmd = openflow.FlowDelete
	default:
		writeErr(w, errf(http.StatusNotFound, api.CodeBadRequest, "unknown flowentry op %q", op))
		return
	}
	var req FlowEntryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, errf(http.StatusBadRequest, api.CodeInvalidJSON, "invalid JSON: %v", err))
		return
	}
	ip := net.ParseIP(req.Match.NWDst)
	if ip == nil || ip.To4() == nil {
		writeErr(w, errf(http.StatusBadRequest, api.CodeInvalidMatch, "match.nw_dst %q is not an IPv4 address", req.Match.NWDst))
		return
	}
	fm := &openflow.FlowMod{
		Match:    openflow.ExactNWDst(ip),
		Command:  cmd,
		Priority: req.Priority,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
	}
	if fm.Priority == 0 {
		fm.Priority = c.cfg.FlowPriority
	}
	for _, a := range req.Actions {
		if a.Type != "OUTPUT" {
			writeErr(w, errf(http.StatusBadRequest, api.CodeBadRequest, "unsupported action type %q", a.Type))
			return
		}
		fm.Actions = append(fm.Actions, openflow.ActionOutput{Port: a.Port})
	}
	if err := c.SendFlowMod(req.Dpid, fm); err != nil {
		writeErr(w, errf(http.StatusNotFound, api.CodeSwitchUnavailable, "%v", err))
		return
	}
	if err := c.Barrier(r.Context(), req.Dpid); err != nil {
		writeErr(w, errf(http.StatusGatewayTimeout, api.CodeSwitchUnavailable, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"result": "ok"})
}

func (c *Controller) handleFlowStats(w http.ResponseWriter, r *http.Request) {
	dpid, err := strconv.ParseUint(r.PathValue("dpid"), 10, 64)
	if err != nil {
		writeErr(w, errf(http.StatusBadRequest, api.CodeBadRequest, "bad dpid %q", r.PathValue("dpid")))
		return
	}
	flows, err := c.FlowStats(r.Context(), dpid)
	if err != nil {
		writeErr(w, errf(http.StatusNotFound, api.CodeSwitchUnavailable, "%v", err))
		return
	}
	type entry struct {
		Priority uint16 `json:"priority"`
		NWDst    string `json:"nw_dst"`
		OutPort  uint16 `json:"out_port"`
		Packets  uint64 `json:"packet_count"`
	}
	out := make([]entry, 0, len(flows))
	for _, f := range flows {
		e := entry{Priority: f.Priority, NWDst: f.Match.NWDstIP().String(), Packets: f.PacketCount}
		for _, a := range f.Actions {
			if o, ok := a.(openflow.ActionOutput); ok {
				e.OutPort = o.Port
				break
			}
		}
		out = append(out, e)
	}
	writeJSON(w, http.StatusOK, out)
}
