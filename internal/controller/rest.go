package controller

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"tsu/internal/core"
	"tsu/internal/openflow"
	"tsu/internal/topo"
)

// UpdateRequest is the REST message of the paper (§2): header fields
// naming the old route, the new route, the waypoint and the inter-round
// interval, plus the algorithm selector and the flow identity
// (destination address) this reproduction adds explicitly. Paths list
// datapath numbers "in the way they are passed by the network packets
// along the route".
type UpdateRequest struct {
	OldPath  []uint64 `json:"oldpath"`
	NewPath  []uint64 `json:"newpath"`
	Waypoint uint64   `json:"wp,omitempty"`
	Interval int      `json:"interval,omitempty"` // milliseconds between rounds
	// Algorithm selects the scheduler: any name registered with the
	// core scheduler registry (see core.Names; wayup is the default
	// when wp is set, peacock otherwise), or "two-phase" (tagged
	// per-packet consistency).
	Algorithm string `json:"algorithm,omitempty"`
	// NWDst identifies the flow (IPv4 destination), e.g. "10.0.0.2".
	NWDst string `json:"nw_dst"`
	// Cleanup appends a garbage-collection round deleting the old
	// policy's stale rules.
	Cleanup bool `json:"cleanup,omitempty"`
}

// UpdateResponse reports the accepted job.
type UpdateResponse struct {
	ID         int        `json:"id"`
	Algorithm  string     `json:"algorithm"`
	Rounds     [][]uint64 `json:"rounds"`
	Guarantees string     `json:"guarantees"`
	Compromise bool       `json:"loop_freedom_compromised,omitempty"`
}

// JobStatus reports a job's progress.
type JobStatus struct {
	ID          int           `json:"id"`
	State       string        `json:"state"`
	Algorithm   string        `json:"algorithm"`
	Error       string        `json:"error,omitempty"`
	TotalMicros int64         `json:"total_us"`
	Rounds      []RoundStatus `json:"rounds"`
}

// RoundStatus reports one executed round.
type RoundStatus struct {
	Round    int      `json:"round"`
	Switches []uint64 `json:"switches"`
	Micros   int64    `json:"us"`
}

// FlowEntryRequest is the ofctl_rest-style single-rule request
// (POST /stats/flowentry/add|modify|delete), the base app the paper's
// own app extends.
type FlowEntryRequest struct {
	Dpid     uint64 `json:"dpid"`
	Priority uint16 `json:"priority,omitempty"`
	Match    struct {
		NWDst string `json:"nw_dst"`
	} `json:"match"`
	Actions []struct {
		Type string `json:"type"`
		Port uint16 `json:"port"`
	} `json:"actions"`
}

// PolicyRequest installs a complete routing policy along a path: every
// switch forwards the flow to its successor, and the final switch
// delivers to the named host (optional). This is how the old policy is
// brought up before an update (the controller owns the topology's port
// map, so clients need not).
type PolicyRequest struct {
	Path  []uint64 `json:"path"`
	NWDst string   `json:"nw_dst"`
	Host  string   `json:"host,omitempty"`
}

// RESTHandler serves the controller's HTTP API.
func (c *Controller) RESTHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /update", c.handleUpdate)
	mux.HandleFunc("GET /update/{id}", c.handleJobStatus)
	mux.HandleFunc("GET /updates", c.handleJobs)
	mux.HandleFunc("GET /switches", c.handleSwitches)
	mux.HandleFunc("POST /policy", c.handlePolicy)
	mux.HandleFunc("POST /stats/flowentry/{op}", c.handleFlowEntry)
	mux.HandleFunc("GET /stats/flow/{dpid}", c.handleFlowStats)
	return mux
}

func (c *Controller) handlePolicy(w http.ResponseWriter, r *http.Request) {
	var req PolicyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	ip := net.ParseIP(req.NWDst)
	if ip == nil || ip.To4() == nil {
		httpError(w, http.StatusBadRequest, "nw_dst %q is not an IPv4 address", req.NWDst)
		return
	}
	path := toNodePath(req.Path)
	if err := path.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid path: %v", err)
		return
	}
	if err := c.InstallPath(r.Context(), path, openflow.ExactNWDst(ip), req.Host); err != nil {
		httpError(w, http.StatusBadGateway, "installing policy: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"result": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // response writer errors are the client's problem
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func toNodePath(ids []uint64) topo.Path {
	p := make(topo.Path, len(ids))
	for i, v := range ids {
		p[i] = topo.NodeID(v)
	}
	return p
}

func fromNodeRounds(rounds [][]topo.NodeID) [][]uint64 {
	out := make([][]uint64, len(rounds))
	for i, r := range rounds {
		out[i] = make([]uint64, len(r))
		for j, n := range r {
			out[i][j] = uint64(n)
		}
	}
	return out
}

// ScheduleFor builds the schedule for an instance using the named
// algorithm via the core scheduler registry ("" picks wayup when a
// waypoint is present, else peacock).
func ScheduleFor(in *core.Instance, algorithm string) (*core.Schedule, error) {
	return core.ScheduleByName(in, algorithm, 0)
}

func (c *Controller) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	ip := net.ParseIP(req.NWDst)
	if ip == nil || ip.To4() == nil {
		httpError(w, http.StatusBadRequest, "nw_dst %q is not an IPv4 address", req.NWDst)
		return
	}
	in, err := core.NewInstance(toNodePath(req.OldPath), toNodePath(req.NewPath), topo.NodeID(req.Waypoint))
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid update: %v", err)
		return
	}
	opts := SubmitOptions{Interval: time.Duration(req.Interval) * time.Millisecond, Cleanup: req.Cleanup}

	if req.Algorithm == "two-phase" {
		job, err := c.engine.SubmitTwoPhase(in, openflow.ExactNWDst(ip), TwoPhaseTag, opts)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusAccepted, UpdateResponse{
			ID:         job.ID,
			Algorithm:  "two-phase",
			Guarantees: "PerPacketConsistency",
		})
		return
	}

	sched, err := ScheduleFor(in, req.Algorithm)
	if err != nil {
		httpError(w, http.StatusBadRequest, "scheduling failed: %v", err)
		return
	}
	job, err := c.engine.SubmitOpts(in, sched, openflow.ExactNWDst(ip), opts)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, UpdateResponse{
		ID:         job.ID,
		Algorithm:  sched.Algorithm,
		Rounds:     fromNodeRounds(sched.Rounds),
		Guarantees: sched.Guarantees.String(),
		Compromise: sched.LoopFreedomCompromised,
	})
}

// TwoPhaseTag is the VLAN id the REST layer uses to mark the new
// policy version in two-phase updates.
const TwoPhaseTag uint16 = 2016

func jobStatus(job *Job) JobStatus {
	st := JobStatus{
		ID:          job.ID,
		State:       job.State().String(),
		Algorithm:   job.Algorithm,
		TotalMicros: job.TotalDuration().Microseconds(),
	}
	if err := job.Err(); err != nil {
		st.Error = err.Error()
	}
	for _, t := range job.Timings() {
		sw := make([]uint64, len(t.Switches))
		for i, n := range t.Switches {
			sw[i] = uint64(n)
		}
		st.Rounds = append(st.Rounds, RoundStatus{Round: t.Round, Switches: sw, Micros: t.Duration().Microseconds()})
	}
	return st
}

func (c *Controller) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	job, ok := c.engine.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "job %d unknown", id)
		return
	}
	writeJSON(w, http.StatusOK, jobStatus(job))
}

func (c *Controller) handleJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := c.engine.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, jobStatus(j))
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Controller) handleSwitches(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Datapaths())
}

func (c *Controller) handleFlowEntry(w http.ResponseWriter, r *http.Request) {
	op := r.PathValue("op")
	var cmd openflow.FlowModCommand
	switch op {
	case "add":
		cmd = openflow.FlowAdd
	case "modify":
		cmd = openflow.FlowModify
	case "delete":
		cmd = openflow.FlowDelete
	default:
		httpError(w, http.StatusNotFound, "unknown flowentry op %q", op)
		return
	}
	var req FlowEntryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	ip := net.ParseIP(req.Match.NWDst)
	if ip == nil || ip.To4() == nil {
		httpError(w, http.StatusBadRequest, "match.nw_dst %q is not an IPv4 address", req.Match.NWDst)
		return
	}
	fm := &openflow.FlowMod{
		Match:    openflow.ExactNWDst(ip),
		Command:  cmd,
		Priority: req.Priority,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
	}
	if fm.Priority == 0 {
		fm.Priority = c.cfg.FlowPriority
	}
	for _, a := range req.Actions {
		if a.Type != "OUTPUT" {
			httpError(w, http.StatusBadRequest, "unsupported action type %q", a.Type)
			return
		}
		fm.Actions = append(fm.Actions, openflow.ActionOutput{Port: a.Port})
	}
	if err := c.SendFlowMod(req.Dpid, fm); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	if err := c.Barrier(r.Context(), req.Dpid); err != nil {
		httpError(w, http.StatusGatewayTimeout, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"result": "ok"})
}

func (c *Controller) handleFlowStats(w http.ResponseWriter, r *http.Request) {
	dpid, err := strconv.ParseUint(r.PathValue("dpid"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad dpid %q", r.PathValue("dpid"))
		return
	}
	flows, err := c.FlowStats(r.Context(), dpid)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	type entry struct {
		Priority uint16 `json:"priority"`
		NWDst    string `json:"nw_dst"`
		OutPort  uint16 `json:"out_port"`
		Packets  uint64 `json:"packet_count"`
	}
	out := make([]entry, 0, len(flows))
	for _, f := range flows {
		e := entry{Priority: f.Priority, NWDst: f.Match.NWDstIP().String(), Packets: f.PacketCount}
		for _, a := range f.Actions {
			if o, ok := a.(openflow.ActionOutput); ok {
				e.OutPort = o.Port
				break
			}
		}
		out = append(out, e)
	}
	writeJSON(w, http.StatusOK, out)
}
