package controller

import (
	"context"
	"fmt"
	"sort"

	"tsu/internal/core"
	"tsu/internal/metrics"
	"tsu/internal/openflow"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

// This file is the engine's abort-and-recover path. When a job fails
// mid-plan — a barrier timeout, a dead switch, a stalled decentralized
// run — the already-installed nodes form an order ideal of the
// execution DAG (nodes only dispatch after their dependencies
// confirm). The engine reverses exactly that prefix with
// core.Plan.Reverse, re-verifies the reverse plan's order ideals with
// verify.Plan like any forward plan, and only when that check passes
// executes the rollback: every transient state on the way back down is
// then a state the forward plan could already reach on its way up, so
// a verified-safe update stays safe through its own abort. When the
// reverse plan does not verify (one-shot plans whose installed prefix
// admits unsafe sub-ideals), the job instead reports a stuck state
// with the precise per-node unmet dependencies and leaves the rules in
// place — a wrong rollback is worse than a frozen, diagnosable one.

// Failure-report phases, in escalation order.
const (
	// PhaseAborted: the job failed mid-plan and no rollback was
	// attempted (nothing installed, or a job shape — joint, two-phase
	// — the engine cannot reverse).
	PhaseAborted = "aborted"
	// PhaseRolledBack: the reverse plan verified safe and every
	// installed node was undone; the network is back on the old
	// configuration.
	PhaseRolledBack = "rolled-back"
	// PhaseRollbackFailed: the reverse plan verified safe but its
	// execution failed partway; Installed minus RolledBack is still in
	// effect.
	PhaseRollbackFailed = "rollback-failed"
	// PhaseStuck: the reverse plan did not verify safe; nothing was
	// undone and Stuck lists each installed node's unmet rollback
	// dependencies.
	PhaseStuck = "stuck"
)

// FailureReport is the structured outcome of an aborted job, surfaced
// on GET /v1/updates/{id} and through the client SDK.
type FailureReport struct {
	// Phase is one of the Phase* constants.
	Phase string
	// TriggeringFault describes the failure that aborted the plan.
	TriggeringFault string
	// Installed lists the switches whose installs were confirmed
	// before the abort (the exact barrier-confirmed set).
	Installed []topo.NodeID
	// RolledBack lists the switches whose installs were undone. It may
	// exceed Installed: nodes whose FlowMods were sent but never
	// confirmed are rolled back too (the undo mods are idempotent).
	RolledBack []topo.NodeID
	// RollbackVerified reports whether the reverse plan passed
	// verification (true even when its execution later failed).
	RollbackVerified bool
	// Stuck, for PhaseStuck/PhaseRollbackFailed, lists installed nodes
	// left in place with the dependencies blocking their uninstall.
	Stuck []StuckNode
}

// StuckNode is one installed-but-not-rolled-back switch and the
// switches whose uninstall must come first (its installed forward-plan
// successors — the reverse plan's unmet dependencies).
type StuckNode struct {
	Switch    topo.NodeID
	WaitingOn []topo.NodeID
}

// rollbackSpec carries what the abort path needs to build, verify and
// execute a reverse plan for a single-flow job. Immutable.
type rollbackSpec struct {
	in    *core.Instance
	match openflow.Match
	props core.Property // the forward plan's guarantees (0 = none promised)
}

// rollbackProps resolves the property set a rollback must uphold: the
// forward guarantees, or — for one-shot plans that promise nothing —
// the instance's natural property set, so "verified safe" keeps
// meaning something and unordered prefixes are genuinely refused.
func (s *rollbackSpec) rollbackProps() core.Property {
	if s.props != 0 {
		return s.props
	}
	p := core.NoBlackhole | core.RelaxedLoopFreedom
	if s.in.Waypoint != 0 {
		p |= core.WaypointEnforcement
	}
	return p
}

// abort handles a mid-plan failure: record the exact installed set,
// verify the reverse plan of the dispatched prefix, and either execute
// the rollback or report the job stuck. dispatched marks nodes whose
// FlowMods may have reached their switch (a down-closed superset of
// confirmed); confirmed marks barrier-confirmed installs.
func (e *Engine) abort(ctx context.Context, job *Job, cause error, dispatched, confirmed []bool) {
	metrics.Aborts.Inc()
	report := &FailureReport{
		Phase:           PhaseAborted,
		TriggeringFault: cause.Error(),
		Installed:       planSetSwitches(job, confirmed),
	}
	spec := job.rollback
	if spec == nil || !anySet(dispatched) {
		e.failWithReport(job, cause, report)
		return
	}
	if err := e.verifyRollback(job, spec, dispatched); err != nil {
		metrics.Stalls.Inc()
		report.Phase = PhaseStuck
		report.Stuck = stuckNodes(job, dispatched, nil)
		e.failWithReport(job, fmt.Errorf("%w; rollback refused: %v", cause, err), report)
		return
	}
	report.RollbackVerified = true
	rolledBack, undone, rbErr := e.executeRollback(ctx, job, spec, dispatched)
	report.RolledBack = rolledBack
	if rbErr != nil {
		metrics.Stalls.Inc()
		report.Phase = PhaseRollbackFailed
		report.Stuck = stuckNodes(job, dispatched, undone)
		e.failWithReport(job, fmt.Errorf("%w; rollback failed: %v", cause, rbErr), report)
		return
	}
	report.Phase = PhaseRolledBack
	e.failWithReport(job, cause, report)
}

// verifyRollback checks the reverse plan of the dispatched prefix of
// the job's update nodes. Cleanup nodes are excluded from the
// verified plan: they sit past every update node, so a dispatched
// cleanup node implies the network is fully on the new path, where
// re-adding a stale old-path rule at an unreachable switch is
// unobservable — executeRollback undoes them first, restoring exactly
// the state space this verification covers.
func (e *Engine) verifyRollback(job *Job, spec *rollbackSpec, dispatched []bool) error {
	k := len(job.plan.nodes)
	for i := range job.plan.nodes {
		if job.plan.nodes[i].cleanup {
			k = i
			break
		}
	}
	props := spec.rollbackProps()
	fwd := &core.Plan{
		Algorithm:  job.Algorithm,
		Guarantees: props,
		Sparse:     job.plan.sparse,
		Nodes:      job.plan.dag.Nodes[:k],
	}
	rev, _, err := fwd.Reverse(dispatched[:k])
	if err != nil {
		return err
	}
	rep := verify.Plan(spec.in, rev, props, verify.Options{})
	if !rep.OK() {
		if cex := rep.FirstViolation(); cex != nil {
			return fmt.Errorf("reverse plan admits a transient %v violation", cex.Violated)
		}
		if rep.StructureErr != nil {
			return fmt.Errorf("reverse plan invalid: %w", rep.StructureErr)
		}
		return fmt.Errorf("reverse plan does not restore the old configuration")
	}
	return nil
}

// executeRollback undoes the dispatched prefix ack-driven along the
// full reverse DAG (cleanup undos first — they are the reverse plan's
// roots). Undo FlowMods are idempotent, so nodes that were dispatched
// but never took effect are harmless to "undo". Returns the switches
// undone in confirmation order and the per-node undone set.
func (e *Engine) executeRollback(ctx context.Context, job *Job, spec *rollbackSpec, dispatched []bool) (rolledBack []topo.NodeID, undone []bool, err error) {
	rev, fwd, err := job.plan.dag.Reverse(dispatched)
	if err != nil {
		return nil, nil, err
	}
	n := len(rev.Nodes)
	undone = make([]bool, len(dispatched))
	if n == 0 {
		return nil, undone, nil
	}
	mods := make([]*openflow.FlowMod, n)
	for j, fi := range fwd {
		fm, err := e.undoFlowMod(spec.in, job.plan.nodes[fi].node, spec.match)
		if err != nil {
			return nil, undone, err
		}
		mods[j] = fm
	}

	rbCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	acks := make(chan nodeAck, n) // buffered: stragglers never leak
	dispatch := func(j int) {
		go func() {
			node := rev.Nodes[j].Switch
			if err := e.c.SendFlowMod(uint64(node), mods[j]); err != nil {
				acks <- nodeAck{idx: j, err: fmt.Errorf("rollback at %d: sending flowmod: %w", node, err)}
				return
			}
			done, err := e.c.BarrierAsync(uint64(node))
			if err != nil {
				acks <- nodeAck{idx: j, err: fmt.Errorf("rollback at %d: barrier: %w", node, err)}
				return
			}
			select {
			case <-done:
			case <-e.c.clock.After(e.c.cfg.RoundTimeout):
				acks <- nodeAck{idx: j, err: fmt.Errorf("rollback at %d: barrier reply: %w", node, context.DeadlineExceeded)}
				return
			case <-rbCtx.Done():
				acks <- nodeAck{idx: j, err: fmt.Errorf("rollback at %d: barrier reply: %w", node, rbCtx.Err())}
				return
			}
			acks <- nodeAck{idx: j, flowMods: 1}
		}()
	}

	run := core.NewPlanRun(rev)
	ready := run.Reset(make([]int, 0, n))
	inflight := 0
	for _, j := range ready {
		inflight++
		dispatch(j)
	}
	var failure error
	for inflight > 0 {
		a := <-acks
		inflight--
		if a.err != nil {
			if failure == nil {
				failure = a.err
				cancel()
			}
			continue // drain
		}
		node := rev.Nodes[a.idx].Switch
		job.addMessages(node, MessageStats{Ctrl: a.flowMods + 2})
		metrics.InstallsRolledBack.Inc()
		rolledBack = append(rolledBack, node)
		undone[fwd[a.idx]] = true
		for _, s := range run.Complete(a.idx, ready[:0]) {
			if failure != nil {
				continue
			}
			inflight++
			dispatch(s)
		}
	}
	return rolledBack, undone, failure
}

// undoFlowMod builds the FlowMod that reverses one switch's update:
// old-path switches MODIFY the flow back toward their old-path
// successor (OF 1.0 MODIFY also re-inserts a rule a cleanup node
// deleted); new-path-only switches delete the rule the update
// inserted. Both are idempotent on a switch the forward plan never
// reached.
func (e *Engine) undoFlowMod(in *core.Instance, node topo.NodeID, match openflow.Match) (*openflow.FlowMod, error) {
	if succ, ok := in.OldSucc(node); ok {
		return e.c.PathFlowMod(node, succ, match, openflow.FlowModify)
	}
	return &openflow.FlowMod{
		Match:    match,
		Command:  openflow.FlowDelete,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
	}, nil
}

// failWithReport marks the job failed with a structured failure
// report attached.
func (e *Engine) failWithReport(job *Job, err error, report *FailureReport) {
	e.journalTerminal(job, err)
	job.mu.Lock()
	job.state = JobFailed
	job.err = err
	job.failure = report
	job.finished = e.c.clock.Now()
	publishLocked(job, JobEvent{State: JobFailed, Err: err})
	job.mu.Unlock()
	close(job.done)
	e.c.logger.Warn("update job aborted", "job", job.ID, "phase", report.Phase,
		"installed", len(report.Installed), "rolledBack", len(report.RolledBack), "err", err)
}

// stuckNodes lists the installed nodes left in place (installed minus
// undone; undone may be nil) with the installed successors whose
// uninstall must come first. Capped at 8 entries, like stallError.
func stuckNodes(job *Job, installed, undone []bool) []StuckNode {
	dag := job.plan.dag
	left := func(i int) bool { return installed[i] && (undone == nil || !undone[i]) }
	var out []StuckNode
	for i := range dag.Nodes {
		if !left(i) {
			continue
		}
		if len(out) >= 8 {
			break
		}
		var waits []topo.NodeID
		for s := i + 1; s < len(dag.Nodes); s++ {
			if !left(s) {
				continue
			}
			for _, d := range dag.Nodes[s].Deps {
				if d == i {
					waits = append(waits, dag.Nodes[s].Switch)
					break
				}
			}
		}
		out = append(out, StuckNode{Switch: dag.Nodes[i].Switch, WaitingOn: waits})
	}
	return out
}

// planSetSwitches maps a per-node bool set to its sorted switch list.
func planSetSwitches(job *Job, set []bool) []topo.NodeID {
	var out []topo.NodeID
	for i, ok := range set {
		if ok {
			out = append(out, job.plan.nodes[i].node)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// anySet reports whether any element is true.
func anySet(set []bool) bool {
	for _, ok := range set {
		if ok {
			return true
		}
	}
	return false
}

// downClosure returns the down-closed cover of confirmed: a confirmed
// node's dependencies must have taken effect at their switches (a
// switch only installs after its in-edge acks) even when their own
// completion reports were lost, so the rollback prefix includes them.
func downClosure(p *core.Plan, confirmed []bool) []bool {
	closed := make([]bool, len(confirmed))
	copy(closed, confirmed)
	for i := len(p.Nodes) - 1; i >= 0; i-- {
		if !closed[i] {
			continue
		}
		for _, d := range p.Nodes[i].Deps {
			closed[d] = true
		}
	}
	return closed
}
