package controller

// This file is the engine's crash-restart recovery path. The journal
// gives the restarted controller an exact, write-ahead record of every
// job's admission, dispatched/confirmed frontier, and terminal phase —
// but the network moved on without it: FlowMods that were in flight at
// the crash may or may not have landed. Per-switch local state is
// sufficient to close that gap (the insight of the local-verification
// line of work): each switch reports whether the flow's rule is
// installed and where it forwards, plus which plan nodes its plan
// agent completed, and from those local answers Recover reconstructs
// the job's global order ideal.
//
// The reconciliation decision per mid-flight job:
//
//   - adopt, when every plan switch reported, the applied set is
//     down-closed (an order ideal — a prefix the plan itself could
//     have produced), the journal's confirmed set is contained in it
//     (the network is at least as far along as the last fsync), and
//     every applied node is covered by a journaled dispatch or a plan-
//     agent completion (nothing took effect that nothing ordered).
//     The job resumes ack-driven dispatch with the applied set
//     pre-confirmed; re-sent FlowMods are idempotent MODIFYs.
//
//   - roll back, otherwise: switches unreachable, or the local
//     evidence contradicts the journal. The job falls into the
//     existing abort path with the down-closure of (journaled ∪
//     applied) as the dispatched prefix — the reverse plan is verified
//     against the same base∖I safety argument as any mid-plan abort,
//     so recovery is verified, never assumed.

import (
	"context"
	"fmt"
	"net"

	"tsu/internal/core"
	"tsu/internal/journal"
	"tsu/internal/metrics"
	"tsu/internal/openflow"
	"tsu/internal/planwire"
	"tsu/internal/topo"
)

// RecoveryStats summarizes one Engine.Recover run.
type RecoveryStats struct {
	// Replayed counts journal records read.
	Replayed int
	// Terminal counts jobs the journal already recorded finished.
	Terminal int
	// Requeued counts jobs re-admitted untouched (nothing dispatched
	// before the crash).
	Requeued int
	// Adopted counts mid-flight jobs resumed from their recovered
	// frontier.
	Adopted int
	// RolledBack counts mid-flight jobs sent to the verified rollback
	// path.
	RolledBack int
	// Failed counts non-recoverable jobs (joint, two-phase) that were
	// non-terminal at the crash and could only be marked failed.
	Failed int
}

// Recovered returns the number of non-terminal jobs the restart
// brought back to a live engine (every one reaches a terminal phase).
func (s RecoveryStats) Recovered() int { return s.Requeued + s.Adopted + s.RolledBack }

// recoveredJob is one journaled job folded from the replayed records.
type recoveredJob struct {
	id         int
	admit      *journal.Admit
	dispatched map[int]bool
	confirmed  map[int]bool
	terminal   bool
	done       bool
	errMsg     string
}

// relaunch is one live recovered job ready to run: either via the
// normal dispatcher (requeued/adopted) or via the rollback path.
type relaunch struct {
	job  *Job
	deps []<-chan struct{}

	// rollback, when set, routes the job to the abort path instead of
	// the dispatcher, with the recovered dispatched/applied sets.
	rollback   bool
	dispatched []bool
	applied    []bool
	cause      error
}

// Recover replays the configured journal and brings every journaled
// job back: terminal jobs become queryable stubs, untouched jobs are
// re-admitted, and mid-flight jobs are reconciled against live switch
// state — adopted and resumed when journal and switches agree, rolled
// back through the verified reverse-plan path when they don't. Call it
// after Start (the dispatcher must be running) and after the plan's
// switches have reconnected; switches that stay unreachable push their
// jobs onto the rollback path, which reports them stuck if they still
// cannot be reached. Recovered jobs finish asynchronously; Wait on
// them (or watch /v1/updates) for outcomes. The journal is compacted
// to the folded live state before any recovered job re-executes.
func (e *Engine) Recover(ctx context.Context) (RecoveryStats, error) {
	var stats RecoveryStats
	jl := e.c.cfg.Journal
	if jl == nil {
		return stats, nil
	}
	recs := jl.Replayed()
	stats.Replayed = len(recs)

	// Fold the record stream into per-job state.
	byID := make(map[int]*recoveredJob)
	var order []*recoveredJob
	maxID := 0
	for i := range recs {
		rec := &recs[i]
		if rec.Job > maxID {
			maxID = rec.Job
		}
		rj := byID[rec.Job]
		if rj == nil {
			rj = &recoveredJob{id: rec.Job, dispatched: make(map[int]bool), confirmed: make(map[int]bool)}
			byID[rec.Job] = rj
			order = append(order, rj)
		}
		switch rec.Kind {
		case journal.KindAdmit:
			rj.admit = rec.Admit
		case journal.KindDispatched:
			rj.dispatched[rec.Node] = true
		case journal.KindDispatchedBatch:
			for _, n := range rec.Nodes {
				rj.dispatched[n] = true
			}
		case journal.KindConfirmed:
			rj.confirmed[rec.Node] = true
		case journal.KindTerminal:
			rj.terminal = true
			rj.done = rec.Done
			rj.errMsg = rec.Error
		}
	}

	e.mu.Lock()
	if e.nextID < maxID {
		e.nextID = maxID
	}
	e.mu.Unlock()

	var launches []*relaunch
	var compacted []journal.Record
	for _, rj := range order {
		if rj.admit == nil {
			continue // deltas for a job whose admit record was lost: nothing to rebuild
		}
		if rj.terminal {
			stats.Terminal++
			e.addStub(rj, nil)
			continue
		}
		if !rj.admit.Recoverable {
			// Joint and two-phase jobs journal no recovery spec; caught
			// non-terminal they can only be reported failed.
			stats.Failed++
			e.addStub(rj, &FailureReport{
				Phase:           PhaseAborted,
				TriggeringFault: "controller restart: job shape is not recoverable",
			})
			continue
		}
		job, err := e.rebuildJob(rj)
		if err != nil {
			stats.Failed++
			e.c.logger.Warn("recovery: rebuilding job failed", "job", rj.id, "err", err)
			e.addStub(rj, &FailureReport{
				Phase:           PhaseAborted,
				TriggeringFault: fmt.Sprintf("controller restart: rebuild failed: %v", err),
			})
			continue
		}
		metrics.JobsRecovered.Inc()
		l := &relaunch{job: job}
		if len(rj.dispatched) == 0 {
			// Write-ahead discipline: no dispatched record means no
			// FlowMod left for this job. Re-admit it untouched.
			stats.Requeued++
		} else {
			e.reconcile(ctx, rj, l)
			if l.rollback {
				stats.RolledBack++
				metrics.RecoveryRollbacks.Inc()
			} else {
				stats.Adopted++
				metrics.JobsAdopted.Inc()
			}
		}
		launches = append(launches, l)
		compacted = append(compacted, liveRecords(rj, l)...)
	}

	// Admit the live jobs in id order, conflict deps recomputed exactly
	// like a fresh admission (recovered jobs may conflict with each
	// other or with jobs submitted since the restart).
	e.mu.Lock()
	for _, l := range launches {
		e.jobs[l.job.ID] = l.job
		for _, prev := range e.active {
			if prev.conflictsWith(l.job) {
				l.deps = append(l.deps, prev.done)
			}
		}
		e.active = append(e.active, l.job)
		e.queued++
	}
	e.recovery = &stats
	e.mu.Unlock()

	// Snapshot+truncate before anything re-executes: the journal now
	// holds exactly the live state, and new deltas append after it.
	if err := jl.Compact(compacted); err != nil {
		e.c.logger.Warn("recovery: journal compaction failed", "err", err)
	}

	for _, l := range launches {
		if l.rollback {
			go e.runRecoveryRollback(ctx, l)
		} else {
			go e.runJob(ctx, l.job, l.deps)
		}
	}
	return stats, nil
}

// Recovery returns the stats of the engine's last Recover run (ok
// false when recovery never ran).
func (e *Engine) Recovery() (RecoveryStats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.recovery == nil {
		return RecoveryStats{}, false
	}
	return *e.recovery, true
}

// addStub registers a terminal job reconstructed from the journal so
// the API keeps answering for it across the restart. A non-nil report
// marks the job failed-by-restart regardless of its journaled outcome.
func (e *Engine) addStub(rj *recoveredJob, report *FailureReport) {
	job := &Job{
		ID:        rj.id,
		Algorithm: rj.admit.Algorithm,
		Interval:  rj.admit.Interval,
		Mode:      ExecMode(rj.admit.Mode),
		Recovered: true,
		done:      make(chan struct{}),
	}
	switch {
	case report != nil:
		job.state = JobFailed
		job.err = fmt.Errorf("controller restart: %s", report.TriggeringFault)
		job.failure = report
	case rj.done:
		job.state = JobDone
	default:
		job.state = JobFailed
		job.err = fmt.Errorf("%s", rj.errMsg)
	}
	close(job.done)
	e.mu.Lock()
	if _, exists := e.jobs[job.ID]; !exists {
		e.jobs[job.ID] = job
	}
	e.mu.Unlock()
}

// rebuildJob reconstructs a recoverable job from its admission record:
// the update instance, the flow match, the journaled execution DAG
// (update and cleanup nodes alike, with their original dependencies),
// and the rollback spec.
func (e *Engine) rebuildJob(rj *recoveredJob) (*Job, error) {
	a := rj.admit
	old := make(topo.Path, len(a.Old))
	for i, v := range a.Old {
		old[i] = topo.NodeID(v)
	}
	newPath := make(topo.Path, len(a.New))
	for i, v := range a.New {
		newPath[i] = topo.NodeID(v)
	}
	in, err := core.NewInstance(old, newPath, topo.NodeID(a.Waypoint))
	if err != nil {
		return nil, fmt.Errorf("instance: %w", err)
	}
	match := openflow.ExactNWDst(nwDstIP(a.NWDst))
	dag, err := core.DecodePlan(a.Plan)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	cleanup := make(map[int]bool, len(a.Cleanup))
	for _, i := range a.Cleanup {
		cleanup[i] = true
	}
	// Rebuild the exec DAG directly from the journaled plan rather than
	// re-running the schedule/plan builders: the journaled DAG covers
	// the cleanup nodes with their recorded dependencies, so the
	// recovered job executes exactly the plan that was running.
	ep := execPlan{sparse: dag.Sparse, nodes: make([]execNode, 0, len(dag.Nodes))}
	for i, nd := range dag.Nodes {
		var fm *openflow.FlowMod
		if cleanup[i] {
			fm = &openflow.FlowMod{
				Match:    match,
				Command:  openflow.FlowDelete,
				BufferID: openflow.NoBuffer,
				OutPort:  openflow.PortNone,
			}
		} else {
			fm, err = e.updateFlowMod(in, nd.Switch, match)
			if err != nil {
				return nil, err
			}
		}
		ep.nodes = append(ep.nodes, execNode{
			node:    nd.Switch,
			mods:    []targetedMod{{node: nd.Switch, fm: fm}},
			deps:    append([]int(nil), nd.Deps...),
			cleanup: cleanup[i],
		})
	}
	ep.finish()
	job := &Job{
		ID:        rj.id,
		Algorithm: a.Algorithm,
		Interval:  a.Interval,
		Mode:      ExecMode(a.Mode),
		plan:      ep,
		rollback:  &rollbackSpec{in: in, match: match, props: core.Property(a.Props)},
		Recovered: true,
		done:      make(chan struct{}),
	}
	job.footprint()
	return job, nil
}

// nwDstIP rebuilds the flow's IPv4 address from its journaled word.
func nwDstIP(v uint32) net.IP {
	return net.IPv4(byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// reconcile decides a mid-flight job's fate by querying its switches
// and fills the relaunch accordingly: adopt (preConfirmed frontier)
// or rollback (dispatched prefix + applied set for the abort path).
func (e *Engine) reconcile(ctx context.Context, rj *recoveredJob, l *relaunch) {
	job := l.job
	n := len(job.plan.nodes)
	jdispatched := make([]bool, n)
	jconfirmed := make([]bool, n)
	for i := range jdispatched {
		jdispatched[i] = rj.dispatched[i]
		jconfirmed[i] = rj.confirmed[i]
	}

	reports, err := e.querySwitchState(ctx, job)
	if err != nil {
		e.c.logger.Warn("recovery: state query failed", "job", job.ID, "err", err)
	}
	applied, agentDone, allReported := e.appliedSet(job, reports)

	if allReported && adoptable(job.plan.dag, applied, jconfirmed, jdispatched, agentDone) {
		job.Adopted = true
		job.preConfirmed = applied
		e.c.logger.Info("recovery: adopting job", "job", job.ID,
			"applied", countSet(applied), "installs", n)
		return
	}

	// The rollback prefix over-covers on purpose: everything the
	// journal dispatched plus everything the switches show applied,
	// down-closed. Undo mods are idempotent, so over-covering is safe;
	// under-covering would leave unrecorded state behind.
	union := make([]bool, n)
	for i := range union {
		union[i] = jdispatched[i] || applied[i] || agentDone[i]
	}
	l.rollback = true
	l.dispatched = downClosure(job.plan.dag, union)
	l.applied = applied
	l.cause = fmt.Errorf("controller restart: mid-flight state not adoptable (%d/%d switches reported, %d applied)",
		len(reports), len(planSwitches(job)), countSet(applied))
	e.c.logger.Info("recovery: rolling back job", "job", job.ID,
		"reported", len(reports), "applied", countSet(applied))
}

// planSwitches returns the distinct switches of a job's exec DAG.
func planSwitches(job *Job) []topo.NodeID {
	seen := make(map[topo.NodeID]bool, len(job.plan.nodes))
	var out []topo.NodeID
	for i := range job.plan.nodes {
		n := job.plan.nodes[i].node
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// stateQueryAttempts bounds the query rounds per job; each round waits
// up to the controller's RoundTimeout on its clock.
const stateQueryAttempts = 3

// querySwitchState asks every switch of the job's plan for its local
// view of the flow, retrying switches that have not answered (they may
// still be reconnecting). Missing entries in the returned map mark
// switches that never answered.
func (e *Engine) querySwitchState(ctx context.Context, job *Job) (map[topo.NodeID]*planwire.StateReport, error) {
	switches := planSwitches(job)
	ch := make(chan *planwire.StateReport, len(switches))
	e.c.registerStateReports(job.ID, ch)
	defer e.c.unregisterStateReports(job.ID)

	want := make(map[topo.NodeID]bool, len(switches))
	for _, s := range switches {
		want[s] = true
	}
	reports := make(map[topo.NodeID]*planwire.StateReport, len(switches))
	data := (&planwire.StateQuery{Job: job.ID, NWDst: job.rollback.match.NWDst}).Encode()
	for attempt := 0; attempt < stateQueryAttempts && len(reports) < len(switches); attempt++ {
		for _, s := range switches {
			if reports[s] != nil {
				continue
			}
			if err := e.c.SendVendor(uint64(s), data); err != nil {
				// Not connected right now; it may reconnect before the
				// deadline or a later attempt.
				continue
			}
		}
		timeout := e.c.clock.After(e.c.cfg.RoundTimeout)
	collect:
		for len(reports) < len(switches) {
			select {
			case r := <-ch:
				if want[r.Switch] && reports[r.Switch] == nil {
					reports[r.Switch] = r
				}
			case <-timeout:
				break collect
			case <-ctx.Done():
				return reports, ctx.Err()
			}
		}
	}
	return reports, nil
}

// appliedSet derives, from the switches' local answers, which plan
// nodes have taken effect: an update node is applied iff the flow's
// rule is present and forwards to the node's new-path successor; a
// cleanup node is applied iff the rule is gone. agentDone marks nodes
// the owning switch's plan agent reported completed (decentralized
// runs). allReported is false when any plan switch never answered.
func (e *Engine) appliedSet(job *Job, reports map[topo.NodeID]*planwire.StateReport) (applied, agentDone []bool, allReported bool) {
	in := job.rollback.in
	n := len(job.plan.nodes)
	applied = make([]bool, n)
	agentDone = make([]bool, n)
	allReported = true
	for i := range job.plan.nodes {
		nd := &job.plan.nodes[i]
		r, ok := reports[nd.node]
		if !ok {
			allReported = false
			continue
		}
		for _, idx := range r.AgentDone {
			if idx >= 0 && idx < n && job.plan.nodes[idx].node == r.Switch {
				agentDone[idx] = true
			}
		}
		if nd.cleanup {
			applied[i] = !r.RulePresent
			continue
		}
		succ, ok := in.NewSucc(nd.node)
		if !ok {
			continue
		}
		applied[i] = r.RulePresent && r.OutPort == e.c.ports.Port(nd.node, succ)
	}
	return applied, agentDone, allReported
}

// adoptable decides whether a mid-flight job's recovered state is safe
// to resume from (see the file comment for the argument).
func adoptable(dag *core.Plan, applied, jconfirmed, jdispatched, agentDone []bool) bool {
	closure := downClosure(dag, applied)
	for i := range applied {
		if applied[i] != closure[i] {
			return false // not an order ideal: no plan prefix produces it
		}
		if jconfirmed[i] && !applied[i] {
			return false // journal saw a barrier reply the switch now denies
		}
		if applied[i] && !jdispatched[i] && !agentDone[i] {
			return false // state took effect that nothing on record ordered
		}
	}
	return true
}

func countSet(set []bool) int {
	n := 0
	for _, b := range set {
		if b {
			n++
		}
	}
	return n
}

// liveRecords builds a live job's compacted journal records: its
// admission plus the dispatched/confirmed deltas of its recovered
// frontier.
func liveRecords(rj *recoveredJob, l *relaunch) []journal.Record {
	recs := []journal.Record{{Kind: journal.KindAdmit, Job: rj.id, Admit: rj.admit}}
	n := len(l.job.plan.nodes)
	var batch []int // dispatched frontier, ascending: one grouped record
	for i := 0; i < n; i++ {
		confirmed := i < len(l.job.preConfirmed) && l.job.preConfirmed[i]
		if l.rollback {
			confirmed = i < len(l.applied) && l.applied[i]
		}
		dispatched := rj.dispatched[i] || confirmed ||
			(l.rollback && i < len(l.dispatched) && l.dispatched[i])
		if dispatched {
			batch = append(batch, i)
		}
		if confirmed {
			recs = append(recs, journal.Record{Kind: journal.KindConfirmed, Job: rj.id, Node: i})
		}
	}
	if len(batch) > 0 {
		recs = append(recs, journal.Record{Kind: journal.KindDispatchedBatch, Job: rj.id, Nodes: batch})
	}
	return recs
}

// runRecoveryRollback drives a recovered job straight into the abort
// path with the same dependency-wait and worker-slot discipline as a
// normal run: the reverse plan is verified before execution, exactly
// like any mid-plan abort.
func (e *Engine) runRecoveryRollback(ctx context.Context, l *relaunch) {
	job := l.job
	for _, d := range l.deps {
		select {
		case <-d:
		case <-ctx.Done():
			e.fail(job, ctx.Err())
			e.retire(job, false)
			return
		}
	}
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.fail(job, ctx.Err())
		e.retire(job, false)
		return
	}
	e.mu.Lock()
	e.queued--
	e.running++
	e.mu.Unlock()
	job.mu.Lock()
	job.state = JobRunning
	job.started = e.c.clock.Now()
	job.mu.Unlock()
	e.abort(ctx, job, l.cause, l.dispatched, l.applied)
	<-e.sem
	e.retire(job, true)
}
