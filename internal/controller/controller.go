// Package controller implements the SDN controller of the prototype:
// the Go counterpart of the paper's Ryu app "ofctl_rest_own.py". It
// accepts OpenFlow connections from switches, tracks datapaths, and
// executes policy updates as rounds of FlowMods delimited by barrier
// request/reply exchanges, exactly as §2 of the paper describes:
//
//	"In the current round, there are a set of switches which have to
//	be updated. The SDN controller retrieves the corresponding
//	OpenFlow message for every switch in the set and sends them out to
//	the switches. Later, the SDN controller sends a barrier request to
//	every switch of the set and waits for barrier replies. For every
//	barrier reply received by the SDN controller, it determines the
//	source switch. This switch is removed from the set of switches of
//	the current round [...]. If the set is empty, the current round
//	finishes and the SDN controller goes on to process the next round
//	[...]. If the message object does not have a next round, the SDN
//	controller deletes the message from the queue and starts
//	processing the next message."
//
// The REST API (rest.go) accepts the paper's update message schema.
package controller

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tsu/internal/journal"
	"tsu/internal/ofconn"
	"tsu/internal/openflow"
	"tsu/internal/planwire"
	"tsu/internal/simclock"
	"tsu/internal/topo"
)

// Config parameterizes the controller.
type Config struct {
	// Topology is the shared network map; port numbers for FlowMod
	// actions are derived from its canonical port map.
	Topology *topo.Graph

	// FlowPriority is the priority used for policy rules (default 100).
	FlowPriority uint16

	// RoundTimeout bounds one round's barrier collection (default 30s).
	RoundTimeout time.Duration

	// EngineWorkers bounds how many conflict-free update jobs execute
	// concurrently (default 8); 1 restores the strictly serial engine
	// of the paper's demo.
	EngineWorkers int

	// DispatchShards sets the size of the engine's dispatch-shard pool
	// (default GOMAXPROCS). Each shard owns a stable subset of switch
	// connections (dpid mod shards) and coalesces the FlowMods and
	// barriers of concurrently released installs on the same connection
	// into single buffered writes.
	DispatchShards int

	// Clock is the time base for round timings and inter-round pauses.
	// Nil selects the wall clock; a simclock.Sim (driven by
	// Sim.AutoAdvance, with the switches on the same clock) runs
	// updates in virtual time — barriers still synchronize on real
	// message acks, but every modelled latency and every reported
	// RoundTiming elapses on the virtual clock.
	Clock simclock.Clock

	// Journal, when non-nil, makes the engine durable: job admissions,
	// per-node dispatch/confirm deltas, and terminal phases are
	// journaled write-ahead, and Engine.Recover replays them after a
	// restart. Nil runs the engine in-memory only.
	Journal *journal.Journal

	// Logger receives lifecycle events; nil discards them.
	Logger *slog.Logger
}

// Controller accepts switch connections and executes update jobs.
type Controller struct {
	cfg    Config
	ports  *topo.PortMap
	clock  simclock.Clock
	logger *slog.Logger

	mu        sync.Mutex
	listener  net.Listener
	datapaths map[uint64]*datapath
	dpWaiters []chan struct{}

	// planReports routes decoded decentralized completion reports to
	// the job waiting on them, keyed by job ID; stateReports routes
	// recovery state reports the same way.
	planMu       sync.Mutex
	planReports  map[int]chan<- *planwire.Report
	stateReports map[int]chan<- *planwire.StateReport

	flowRemoved atomic.Uint64

	// started anchors the /v1/healthz uptime report.
	started time.Time

	engine *Engine
}

// datapath is one connected switch.
type datapath struct {
	dpid uint64
	conn *ofconn.Conn

	mu        sync.Mutex
	barriers  map[uint32]chan struct{}
	sinks     map[uint32]barrierSink // engine installs, resolved by xid
	statsWait map[uint32]chan []openflow.FlowStats
}

// New creates a controller for a topology.
func New(cfg Config) (*Controller, error) {
	if cfg.Topology == nil {
		return nil, errors.New("controller: topology required")
	}
	if cfg.FlowPriority == 0 {
		cfg.FlowPriority = 100
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 30 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	c := &Controller{
		cfg:       cfg,
		ports:     topo.NewPortMap(cfg.Topology),
		clock:     simclock.Or(cfg.Clock),
		logger:    cfg.Logger,
		datapaths: make(map[uint64]*datapath),
	}
	c.started = c.clock.Now()
	c.engine = newEngine(c, cfg.EngineWorkers)
	return c, nil
}

// Uptime reports how long the controller has been running, on its own
// clock (virtual under simclock).
func (c *Controller) Uptime() time.Duration { return c.clock.Now().Sub(c.started) }

// Start listens on addr ("127.0.0.1:0" for an ephemeral port), runs the
// accept loop and the update engine until ctx is cancelled, and returns
// the bound address.
func (c *Controller) Start(ctx context.Context, addr string) (string, error) {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return "", fmt.Errorf("controller: listen: %w", err)
	}
	c.mu.Lock()
	c.listener = ln
	c.mu.Unlock()

	go func() {
		<-ctx.Done()
		ln.Close() //nolint:errcheck // unblocking accept
	}()
	go c.acceptLoop(ctx, ln)
	go c.engine.run(ctx)
	return ln.Addr().String(), nil
}

func (c *Controller) acceptLoop(ctx context.Context, ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil {
				c.logger.Warn("accept failed", "err", err)
			}
			return
		}
		go c.serveSwitch(ctx, nc)
	}
}

func (c *Controller) serveSwitch(ctx context.Context, nc net.Conn) {
	conn := ofconn.New(nc)
	features, err := ofconn.HandshakeController(conn)
	if err != nil {
		c.logger.Warn("handshake failed", "peer", nc.RemoteAddr().String(), "err", err)
		conn.Close() //nolint:errcheck // already failing
		return
	}
	dp := &datapath{
		dpid:      features.DatapathID,
		conn:      conn,
		barriers:  make(map[uint32]chan struct{}),
		sinks:     make(map[uint32]barrierSink),
		statsWait: make(map[uint32]chan []openflow.FlowStats),
	}
	c.mu.Lock()
	if old, dup := c.datapaths[dp.dpid]; dup {
		old.conn.Close() //nolint:errcheck // superseded connection
	}
	c.datapaths[dp.dpid] = dp
	waiters := c.dpWaiters
	c.dpWaiters = nil
	c.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
	c.logger.Info("switch connected", "dpid", ofconn.FormatDpid(dp.dpid))

	go func() {
		<-ctx.Done()
		conn.Close() //nolint:errcheck // unblocking the reader
	}()
	c.readLoop(ctx, dp)

	c.mu.Lock()
	if c.datapaths[dp.dpid] == dp {
		delete(c.datapaths, dp.dpid)
	}
	c.mu.Unlock()
	conn.Close() //nolint:errcheck // loop exit
	c.logger.Info("switch disconnected", "dpid", ofconn.FormatDpid(dp.dpid))
}

func (c *Controller) readLoop(ctx context.Context, dp *datapath) {
	for {
		m, err := dp.conn.ReadMessage()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				c.logger.Warn("read failed", "dpid", dp.dpid, "err", err)
			}
			return
		}
		switch msg := m.(type) {
		case *openflow.BarrierReply:
			// Engine installs resolve through barrier sinks: the reply
			// becomes a plain ack value in the owning job's channel — no
			// goroutine ever waits per barrier. Everything else (rollback,
			// recovery, InstallPath) still uses the channel-close barriers.
			xid := msg.Xid()
			dp.mu.Lock()
			if s, ok := dp.sinks[xid]; ok {
				delete(dp.sinks, xid)
				dp.mu.Unlock()
				c.engine.disp.deliver(s, c.clock.Now())
				continue
			}
			ch := dp.barriers[xid]
			delete(dp.barriers, xid)
			dp.mu.Unlock()
			if ch != nil {
				close(ch)
			}
		case *openflow.StatsReply:
			dp.mu.Lock()
			ch := dp.statsWait[msg.Xid()]
			delete(dp.statsWait, msg.Xid())
			dp.mu.Unlock()
			if ch != nil {
				ch <- msg.Flows
			}
		case *openflow.EchoRequest:
			reply := &openflow.EchoReply{Data: msg.Data}
			reply.SetXid(msg.Xid())
			if err := dp.conn.WriteMessage(reply); err != nil {
				return
			}
		case *openflow.FlowRemoved:
			c.flowRemoved.Add(1)
			c.logger.Info("flow removed", "dpid", dp.dpid,
				"nw_dst", msg.Match.NWDstIP().String(), "reason", msg.Reason)
		case *openflow.PortStatus:
			c.logger.Info("port status", "dpid", dp.dpid,
				"port", msg.Port.PortNo, "reason", msg.Reason)
		case *openflow.Vendor:
			if msg.Vendor != planwire.VendorID {
				c.logger.Warn("unknown vendor message", "dpid", dp.dpid, "vendor", msg.Vendor)
				continue
			}
			if planwire.IsStateReport(msg.Data) {
				sr, err := planwire.DecodeStateReport(msg.Data)
				if err != nil {
					c.logger.Warn("malformed state report", "dpid", dp.dpid, "err", err)
					continue
				}
				c.planMu.Lock()
				ch := c.stateReports[sr.Job]
				c.planMu.Unlock()
				if ch == nil {
					c.logger.Warn("state report for unknown job", "dpid", dp.dpid, "job", sr.Job)
					continue
				}
				select {
				case ch <- sr: // buffered for one report per queried switch
				default:
					c.logger.Warn("dropping surplus state report", "dpid", dp.dpid, "job", sr.Job)
				}
				continue
			}
			r, err := planwire.DecodeReport(msg.Data)
			if err != nil {
				c.logger.Warn("malformed completion report", "dpid", dp.dpid, "err", err)
				continue
			}
			c.planMu.Lock()
			ch := c.planReports[r.Job]
			c.planMu.Unlock()
			if ch == nil {
				c.logger.Warn("completion report for unknown job", "dpid", dp.dpid, "job", r.Job)
				continue
			}
			select {
			case ch <- r: // buffered for one report per switch
			default: // more reports than switches: drop rather than stall the read loop
				c.logger.Warn("dropping surplus completion report", "dpid", dp.dpid, "job", r.Job)
			}
		case *openflow.Error:
			c.logger.Warn("switch reported error", "dpid", dp.dpid, "err", msg.Error())
		default:
			c.logger.Warn("unexpected message", "dpid", dp.dpid, "type", m.MsgType().String())
		}
	}
}

// Datapaths returns the connected datapath IDs in ascending order.
func (c *Controller) Datapaths() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, len(c.datapaths))
	for dpid := range c.datapaths {
		out = append(out, dpid)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// WaitForSwitches blocks until at least n switches are connected.
func (c *Controller) WaitForSwitches(ctx context.Context, n int) error {
	for {
		c.mu.Lock()
		have := len(c.datapaths)
		var waiter chan struct{}
		if have < n {
			waiter = make(chan struct{})
			c.dpWaiters = append(c.dpWaiters, waiter)
		}
		c.mu.Unlock()
		if waiter == nil {
			return nil
		}
		select {
		case <-waiter:
		case <-ctx.Done():
			return fmt.Errorf("controller: waiting for %d switches (%d connected): %w", n, have, ctx.Err())
		}
	}
}

func (c *Controller) datapath(dpid uint64) (*datapath, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dp, ok := c.datapaths[dpid]
	if !ok {
		return nil, fmt.Errorf("controller: datapath %d not connected", dpid)
	}
	return dp, nil
}

// SendFlowMod sends a FlowMod to a switch (fire and forget; ordering
// and completion are enforced with Barrier).
func (c *Controller) SendFlowMod(dpid uint64, fm *openflow.FlowMod) error {
	dp, err := c.datapath(dpid)
	if err != nil {
		return err
	}
	_, err = dp.conn.Send(fm)
	return err
}

// SendVendor sends a vendor/experimenter message carrying an opaque
// planwire payload to a switch — the decentralized engine's partition
// push channel.
func (c *Controller) SendVendor(dpid uint64, data []byte) error {
	dp, err := c.datapath(dpid)
	if err != nil {
		return err
	}
	_, err = dp.conn.Send(&openflow.Vendor{Vendor: planwire.VendorID, Data: data})
	return err
}

// registerPlanReports directs completion reports for a job to ch.
func (c *Controller) registerPlanReports(job int, ch chan<- *planwire.Report) {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	if c.planReports == nil {
		c.planReports = make(map[int]chan<- *planwire.Report)
	}
	c.planReports[job] = ch
}

// unregisterPlanReports stops routing a job's completion reports.
func (c *Controller) unregisterPlanReports(job int) {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	delete(c.planReports, job)
}

// registerStateReports directs recovery state reports for a job to ch.
func (c *Controller) registerStateReports(job int, ch chan<- *planwire.StateReport) {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	if c.stateReports == nil {
		c.stateReports = make(map[int]chan<- *planwire.StateReport)
	}
	c.stateReports[job] = ch
}

// unregisterStateReports stops routing a job's state reports.
func (c *Controller) unregisterStateReports(job int) {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	delete(c.stateReports, job)
}

// Barrier sends a BARRIER_REQUEST to the switch and blocks until its
// reply arrives (or ctx expires) — the synchronization primitive that
// ends an update round.
func (c *Controller) Barrier(ctx context.Context, dpid uint64) error {
	done, err := c.BarrierAsync(dpid)
	if err != nil {
		return err
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("controller: barrier to %d: %w", dpid, ctx.Err())
	}
}

// BarrierAsync sends a BARRIER_REQUEST and returns a channel closed
// when the reply arrives. The engine fans these out to all switches of
// a round and then waits.
func (c *Controller) BarrierAsync(dpid uint64) (<-chan struct{}, error) {
	dp, err := c.datapath(dpid)
	if err != nil {
		return nil, err
	}
	req := &openflow.BarrierRequest{}
	req.SetXid(dp.conn.NextXid())
	done := make(chan struct{})
	dp.mu.Lock()
	dp.barriers[req.Xid()] = done
	dp.mu.Unlock()
	if err := dp.conn.WriteMessage(req); err != nil {
		dp.mu.Lock()
		delete(dp.barriers, req.Xid())
		dp.mu.Unlock()
		return nil, err
	}
	return done, nil
}

// FlowStats fetches the switch's flow table contents.
func (c *Controller) FlowStats(ctx context.Context, dpid uint64) ([]openflow.FlowStats, error) {
	dp, err := c.datapath(dpid)
	if err != nil {
		return nil, err
	}
	req := &openflow.StatsRequest{
		Kind: openflow.StatsFlow,
		Flow: &openflow.FlowStatsRequest{
			Match:   openflow.Match{Wildcards: openflow.WildcardAll},
			TableID: 0xff,
			OutPort: openflow.PortNone,
		},
	}
	req.SetXid(dp.conn.NextXid())
	ch := make(chan []openflow.FlowStats, 1)
	dp.mu.Lock()
	dp.statsWait[req.Xid()] = ch
	dp.mu.Unlock()
	if err := dp.conn.WriteMessage(req); err != nil {
		dp.mu.Lock()
		delete(dp.statsWait, req.Xid())
		dp.mu.Unlock()
		return nil, err
	}
	select {
	case flows := <-ch:
		return flows, nil
	case <-ctx.Done():
		dp.mu.Lock()
		delete(dp.statsWait, req.Xid())
		dp.mu.Unlock()
		return nil, fmt.Errorf("controller: flow stats from %d: %w", dpid, ctx.Err())
	}
}

// PathFlowMod builds the FlowMod that makes switch `node` forward the
// flow toward `succ` (a neighboring switch on the path).
func (c *Controller) PathFlowMod(node, succ topo.NodeID, match openflow.Match, cmd openflow.FlowModCommand) (*openflow.FlowMod, error) {
	port := c.ports.Port(node, succ)
	if port == 0 {
		return nil, fmt.Errorf("controller: no port from %d to %d in topology", node, succ)
	}
	return &openflow.FlowMod{
		Match:    match,
		Command:  cmd,
		Priority: c.cfg.FlowPriority,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{openflow.ActionOutput{Port: port}},
	}, nil
}

// HostFlowMod builds the FlowMod that makes the destination switch
// deliver the flow to its attached host.
func (c *Controller) HostFlowMod(node topo.NodeID, host string, match openflow.Match, cmd openflow.FlowModCommand) (*openflow.FlowMod, error) {
	port, ok := c.ports.HostPort[node][host]
	if !ok {
		return nil, fmt.Errorf("controller: host %q not attached to switch %d", host, node)
	}
	return &openflow.FlowMod{
		Match:    match,
		Command:  cmd,
		Priority: c.cfg.FlowPriority,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{openflow.ActionOutput{Port: port}},
	}, nil
}

// InstallPath installs the flow's rules along a path: every switch
// forwards to its successor and the final switch delivers to host. It
// barriers every touched switch before returning, so the policy is
// fully active afterwards.
func (c *Controller) InstallPath(ctx context.Context, path topo.Path, match openflow.Match, host string) error {
	if err := path.Validate(); err != nil {
		return err
	}
	for i := 0; i+1 < len(path); i++ {
		fm, err := c.PathFlowMod(path[i], path[i+1], match, openflow.FlowAdd)
		if err != nil {
			return err
		}
		if err := c.SendFlowMod(uint64(path[i]), fm); err != nil {
			return err
		}
	}
	if host != "" {
		fm, err := c.HostFlowMod(path.Dst(), host, match, openflow.FlowAdd)
		if err != nil {
			return err
		}
		if err := c.SendFlowMod(uint64(path.Dst()), fm); err != nil {
			return err
		}
	}
	for _, n := range path {
		if err := c.Barrier(ctx, uint64(n)); err != nil {
			return err
		}
	}
	return nil
}

// Engine returns the update engine (job queue).
func (c *Controller) Engine() *Engine { return c.engine }

// Ports exposes the canonical port map.
func (c *Controller) Ports() *topo.PortMap { return c.ports }

// FlowRemovedCount returns how many FLOW_REMOVED notifications have
// arrived across all switches (entries expiring by idle/hard timeout).
func (c *Controller) FlowRemovedCount() uint64 { return c.flowRemoved.Load() }
