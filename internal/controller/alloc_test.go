//go:build !race

package controller

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"tsu/internal/ofconn"
	"tsu/internal/openflow"
	"tsu/internal/topo"
)

// discardConn is a net.Conn whose writes vanish and whose reads block
// until Close: the cheapest possible "switch" for exercising the
// dispatch path without I/O latency or a read loop.
type discardConn struct {
	closed chan struct{}
}

func newDiscardConn() *discardConn { return &discardConn{closed: make(chan struct{})} }

func (c *discardConn) Write(p []byte) (int, error) { return len(p), nil }
func (c *discardConn) Read(p []byte) (int, error) {
	<-c.closed
	return 0, net.ErrClosed
}
func (c *discardConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}
func (c *discardConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *discardConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *discardConn) SetDeadline(time.Time) error      { return nil }
func (c *discardConn) SetReadDeadline(time.Time) error  { return nil }
func (c *discardConn) SetWriteDeadline(time.Time) error { return nil }

const (
	allocSwitches = 64 // distinct fake switches (dpids 1..64)
	allocLayers   = 32 // chain length per switch: 64*32 = 2048 installs
)

// allocHarness is a controller with fake switch connections wired
// straight into the datapath table, plus a responder that resolves
// every registered barrier sink — the dispatch path end to end with
// zero network.
type allocHarness struct {
	c    *Controller
	e    *Engine
	plan execPlan
	stop func()
}

func newAllocHarness(t *testing.T) *allocHarness {
	t.Helper()
	g := topo.Grid(8, 8)
	c, err := New(Config{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.engine.disp.start(ctx)

	c.mu.Lock()
	for d := uint64(1); d <= allocSwitches; d++ {
		c.datapaths[d] = &datapath{
			dpid:      d,
			conn:      ofconn.New(newDiscardConn()),
			barriers:  make(map[uint32]chan struct{}),
			sinks:     make(map[uint32]barrierSink),
			statsWait: make(map[uint32]chan []openflow.FlowStats),
		}
	}
	dps := make([]*datapath, 0, allocSwitches)
	for _, dp := range c.datapaths {
		dps = append(dps, dp)
	}
	c.mu.Unlock()

	// Responder: what the per-connection read loop would do on each
	// BarrierReply, minus the wire. Scratch slice reused — the responder
	// allocates nothing in steady state, so it cannot pollute the pin.
	done := make(chan struct{})
	go func() {
		scratch := make([]barrierSink, 0, 256)
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, dp := range dps {
				dp.mu.Lock()
				for xid, s := range dp.sinks {
					delete(dp.sinks, xid)
					scratch = append(scratch, s)
				}
				dp.mu.Unlock()
			}
			if len(scratch) == 0 {
				runtime.Gosched()
				continue
			}
			now := c.clock.Now()
			for _, s := range scratch {
				c.engine.disp.deliver(s, now)
			}
			scratch = scratch[:0]
		}
	}()

	// The execution DAG: allocLayers update waves over allocSwitches
	// switches, each node released by the same switch's previous
	// install — a deep plan that exercises wave journaling, shard
	// coalescing and the deadline ring across many release cycles.
	var ep execPlan
	n := allocSwitches * allocLayers
	ep.nodes = make([]execNode, 0, n)
	for i := 0; i < n; i++ {
		node := topo.NodeID(i%allocSwitches + 1)
		fm := &openflow.FlowMod{
			Match:    flowMatch("10.9.0.2"),
			Command:  openflow.FlowModify,
			Priority: 100,
			BufferID: openflow.NoBuffer,
			OutPort:  openflow.PortNone,
			Actions:  []openflow.Action{openflow.ActionOutput{Port: 1}},
		}
		var deps []int
		if i >= allocSwitches {
			deps = []int{i - allocSwitches}
		}
		ep.nodes = append(ep.nodes, execNode{node: node, mods: []targetedMod{{node: node, fm: fm}}, deps: deps})
	}
	ep.finish()

	h := &allocHarness{c: c, e: c.engine, plan: ep}
	h.stop = func() {
		close(done)
		cancel()
	}
	return h
}

// runJob executes one full job on the dispatch path and waits for it.
func (h *allocHarness) runJob(t *testing.T, id int) {
	t.Helper()
	job := &Job{ID: id, Algorithm: "alloc-pin", plan: h.plan, done: make(chan struct{})}
	job.footprint()
	h.e.execute(context.Background(), job)
	if job.State() != JobDone {
		t.Fatalf("job %d: state %v, err %v", id, job.State(), job.Err())
	}
	if got := len(job.Installs()); got != len(h.plan.nodes) {
		t.Fatalf("job %d: %d installs confirmed, want %d", id, got, len(h.plan.nodes))
	}
}

// TestDispatchPathAllocs pins the sharded dispatch path at zero
// steady-state allocations and zero goroutines per install: after two
// warm-up jobs (pool, rings and batch buffers grown), a full
// 2048-install job costs only its per-job bookkeeping — the job
// object, its progress trace, one pooled-state acquire and at most a
// couple of re-armed timers — never anything proportional to the
// install count. The old goroutine-per-install path spent >6 heap
// allocations and one goroutine on every single install; a regression
// back to per-install costs blows the budget 25x over.
func TestDispatchPathAllocs(t *testing.T) {
	h := newAllocHarness(t)
	defer h.stop()

	h.runJob(t, 1) // warm: pools, rings, batch buffers, sink maps
	h.runJob(t, 2) // warm: steady-state shapes settled

	goroutines := runtime.NumGoroutine()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	before := ms.Mallocs
	h.runJob(t, 3)
	runtime.ReadMemStats(&ms)
	delta := ms.Mallocs - before

	n := uint64(len(h.plan.nodes))
	// Per-job bookkeeping (job, trace slices, layer aggregates, timer
	// re-arms) stays well under 512 mallocs; per-install leaks show up
	// as >= 2048.
	if delta >= n/4 {
		t.Fatalf("dispatching %d installs cost %d mallocs (%.2f/install), want < %d total",
			n, delta, float64(delta)/float64(n), n/4)
	}
	if after := runtime.NumGoroutine(); after > goroutines {
		t.Fatalf("dispatching grew the goroutine count %d -> %d; the dispatch path must not spawn per-install goroutines",
			goroutines, after)
	}
	t.Logf("%d installs: %d mallocs (%.3f/install)", n, delta, float64(delta)/float64(n))
}
