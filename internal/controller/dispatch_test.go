package controller

import (
	"context"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// gridFlowA and gridFlowB are the two disjoint update problems used
// by the dispatcher tests on a 4x4 grid (rows 1-4/5-8/9-12/13-16):
// flow A rides rows 1-2, flow B rows 3-4.
func gridFlowA() (*core.Instance, *core.Instance) {
	fwd := core.MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 5, 6, 7, 8, 4}, 0)
	back := core.MustInstance(topo.Path{1, 5, 6, 7, 8, 4}, topo.Path{1, 2, 3, 4}, 0)
	return fwd, back
}

func gridFlowB() *core.Instance {
	return core.MustInstance(topo.Path{9, 10, 11, 12}, topo.Path{9, 13, 14, 15, 16, 12}, 0)
}

// TestEngineDisjointJobsRunConcurrently proves both dispatcher
// properties at once:
//
//  1. Jobs with disjoint switch/match footprints overlap: a fast
//     disjoint job finishes while a slow job is still executing.
//  2. Overlapping jobs keep submission order: the second job on the
//     slow flow starts its rounds only after the first one's last
//     barrier.
func TestEngineDisjointJobsRunConcurrently(t *testing.T) {
	g := topo.Grid(4, 4)
	// Rows 1-2 (switches 1..8) answer slowly; rows 3-4 are instant.
	tb := newTestbedWithConfig(t, g, Config{Topology: g},
		func(n topo.NodeID) switchsim.Config {
			cfg := switchsim.Config{Node: n}
			if n <= 8 {
				cfg.CtrlLatency = netem.Fixed(75 * time.Millisecond)
			}
			return cfg
		})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	inA, inA2 := gridFlowA()
	inB := gridFlowB()
	schedule := func(in *core.Instance) *core.Schedule {
		s, err := core.Peacock(in)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	jobA, err := tb.ctrl.Engine().Submit(inA, schedule(inA), flowMatch("10.0.0.2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	jobA2, err := tb.ctrl.Engine().Submit(inA2, schedule(inA2), flowMatch("10.0.0.2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := tb.ctrl.Engine().Submit(inB, schedule(inB), flowMatch("10.0.0.9"), 0)
	if err != nil {
		t.Fatal(err)
	}

	// The disjoint fast job must complete while the slow flow's first
	// job is still in flight (its switches add >=150ms per round).
	if err := jobB.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if st := jobA.State(); st == JobDone || st == JobFailed {
		t.Fatalf("job A already %v when disjoint job B finished — no overlap", st)
	}

	if err := jobA2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if jobA.State() != JobDone {
		t.Fatalf("job A state %v after its successor finished", jobA.State())
	}

	// Per-flow FIFO: A2's first round starts only after A's last
	// barrier.
	tA, tA2 := jobA.Timings(), jobA2.Timings()
	if len(tA) == 0 || len(tA2) == 0 {
		t.Fatal("missing timings")
	}
	if tA2[0].Started.Before(tA[len(tA)-1].Finished) {
		t.Fatal("overlapping job A2 started before job A's last barrier")
	}
	// Submission order is preserved in the listing.
	jobs := tb.ctrl.Engine().Jobs()
	if len(jobs) != 3 || jobs[0].ID != jobA.ID || jobs[1].ID != jobA2.ID || jobs[2].ID != jobB.ID {
		t.Fatalf("jobs = %v", jobs)
	}
}

// TestEngineSerialWorkerPreservesCorrectness pins the workers=1
// configuration: everything still completes (the serial baseline the
// benchmark compares against).
func TestEngineSerialWorkerPreservesCorrectness(t *testing.T) {
	g := topo.Grid(4, 4)
	tb := newTestbedWithConfig(t, g, Config{Topology: g, EngineWorkers: 1}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	inA, _ := gridFlowA()
	inB := gridFlowB()
	sA, err := core.Peacock(inA)
	if err != nil {
		t.Fatal(err)
	}
	sB, err := core.Peacock(inB)
	if err != nil {
		t.Fatal(err)
	}
	jobA, err := tb.ctrl.Engine().Submit(inA, sA, flowMatch("10.0.0.2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := tb.ctrl.Engine().Submit(inB, sB, flowMatch("10.0.0.9"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := jobA.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := jobB.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// One worker slot: the two executions never overlapped.
	tA, tB := jobA.Timings(), jobB.Timings()
	aEnd := tA[len(tA)-1].Finished
	bEnd := tB[len(tB)-1].Finished
	if tB[0].Started.Before(aEnd) && tA[0].Started.Before(bEnd) {
		t.Fatal("jobs overlapped despite EngineWorkers=1")
	}
}

// TestJobSubscribeReplaysAndTerminates pins the watch contract the SSE
// endpoint builds on: a late subscriber sees every round exactly once
// in order, then the terminal event, then the channel closes.
func TestJobSubscribeReplaysAndTerminates(t *testing.T) {
	tb := newTestbed(t, topo.Fig1(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	job, err := tb.ctrl.Engine().Submit(in, sched, flowMatch("10.0.0.2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	early := job.Subscribe()
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	late := job.Subscribe() // after completion: pure replay

	for name, ch := range map[string]<-chan JobEvent{"early": early, "late": late} {
		var rounds []int
		var terminal *JobEvent
		for ev := range ch {
			if ev.Round != nil {
				rounds = append(rounds, ev.Round.Round)
				continue
			}
			ev := ev
			terminal = &ev
		}
		if len(rounds) != sched.NumRounds() {
			t.Fatalf("%s: saw %d round events, want %d", name, len(rounds), sched.NumRounds())
		}
		for i, r := range rounds {
			if r != i {
				t.Fatalf("%s: round events out of order: %v", name, rounds)
			}
		}
		if terminal == nil || terminal.State != JobDone {
			t.Fatalf("%s: terminal event = %+v", name, terminal)
		}
	}
}
