package controller

import (
	"context"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/openflow"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

func TestTwoPhaseEndToEnd(t *testing.T) {
	// Jittery channel; two-phase must deliver per-packet consistency:
	// every probe rides either the complete old or the complete new
	// policy, never a mixture.
	tb := newTestbed(t, topo.Fig1(), func(n topo.NodeID) switchsim.Config {
		return switchsim.Config{
			Node:           n,
			CtrlLatency:    netem.Uniform{Min: 0, Max: 2 * time.Millisecond},
			InstallLatency: netem.Uniform{Min: 500 * time.Microsecond, Max: 2 * time.Millisecond},
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tb.ctrl.InstallPath(ctx, topo.Fig1OldPath, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatal(err)
	}

	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	job, err := tb.ctrl.Engine().SubmitTwoPhase(in, flowMatch("10.0.0.2"), 2016, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if job.NumRounds() != 2 {
		t.Fatalf("two-phase rounds = %d, want 2 (prepare, commit)", job.NumRounds())
	}

	// Probe continuously during the update: every delivered probe's
	// path must equal exactly the old or the new path.
	stopc := make(chan struct{})
	violations := make(chan topo.Path, 1024)
	go func() {
		for {
			select {
			case <-stopc:
				close(violations)
				return
			default:
			}
			res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
			if res.Outcome != switchsim.ProbeDelivered ||
				(!res.Visited.Equal(topo.Fig1OldPath) && !res.Visited.Equal(topo.Fig1NewPath)) {
				select {
				case violations <- res.Visited:
				default:
				}
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	close(stopc)
	for bad := range violations {
		t.Fatalf("probe saw a policy mixture: %v", bad)
	}

	// Final state: packets are tagged at ingress and ride the new path.
	res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if !res.Visited.Equal(topo.Fig1NewPath) {
		t.Fatalf("final path %v, want %v", res.Visited, topo.Fig1NewPath)
	}
	// Intermediate new-path switches carry the tagged copy on top of
	// whatever untagged rule they had.
	sw8 := tb.fabric.Switch(8).Table().Snapshot()
	foundTagged := false
	for _, e := range sw8 {
		if e.Match.Wildcards&openflow.WildcardDLVLAN == 0 && e.Match.DLVLAN == 2016 {
			foundTagged = true
		}
	}
	if !foundTagged {
		t.Fatal("switch 8 lacks the tagged rule")
	}
}

func TestTwoPhaseCleanup(t *testing.T) {
	tb := newTestbed(t, topo.Fig1(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tb.ctrl.InstallPath(ctx, topo.Fig1OldPath, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatal(err)
	}
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	job, err := tb.ctrl.Engine().SubmitTwoPhase(in, flowMatch("10.0.0.2"), 7, SubmitOptions{Cleanup: true})
	if err != nil {
		t.Fatal(err)
	}
	if job.NumRounds() != 3 {
		t.Fatalf("rounds = %d, want 3", job.NumRounds())
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for _, n := range []topo.NodeID{2, 4, 5, 6} {
		if got := tb.fabric.Switch(n).Table().Len(); got != 0 {
			t.Fatalf("stale rule on old-only switch %d", n)
		}
	}
}

func TestTwoPhaseValidation(t *testing.T) {
	tb := newTestbed(t, topo.Linear(3), nil)
	in := core.MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 2, 3}, 0)
	if _, err := tb.ctrl.Engine().SubmitTwoPhase(in, flowMatch("10.0.0.2"), openflow.VLANNone, SubmitOptions{}); err == nil {
		t.Fatal("reserved tag accepted")
	}
	pinned := openflow.ExactNWDstVLAN([]byte{10, 0, 0, 2}, 5)
	if _, err := tb.ctrl.Engine().SubmitTwoPhase(in, pinned, 7, SubmitOptions{}); err == nil {
		t.Fatal("vlan-pinned match accepted")
	}
}
