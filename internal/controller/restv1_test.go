package controller

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tsu/internal/api"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

func fig1Update(algorithm string) api.FlowUpdate {
	return api.FlowUpdate{
		OldPath:   []uint64{1, 2, 3, 4, 5, 6, 12},
		NewPath:   []uint64{1, 7, 8, 3, 9, 10, 11, 12},
		Waypoint:  3,
		Algorithm: algorithm,
		NWDst:     "10.0.0.2",
	}
}

func decodeInto(t *testing.T, body []byte, into any) {
	t.Helper()
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
}

func TestV1BatchSubmitListAndHealthz(t *testing.T) {
	tb, srv := restTestbed(t)

	// Two flows over Fig.1, moving in opposite directions.
	if resp, body := postJSON(t, srv.URL+"/v1/policies", api.PolicyRequest{
		Path: []uint64{1, 2, 3, 4, 5, 6, 12}, NWDst: "10.0.0.2", Host: "h2",
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("policy: %d %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, srv.URL+"/v1/policies", api.PolicyRequest{
		Path: []uint64{1, 7, 8, 3, 9, 10, 11, 12}, NWDst: "10.0.0.9", Host: "h2",
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("policy: %d %s", resp.StatusCode, body)
	}
	second := api.FlowUpdate{
		OldPath:  []uint64{1, 7, 8, 3, 9, 10, 11, 12},
		NewPath:  []uint64{1, 2, 3, 4, 5, 6, 12},
		Waypoint: 3,
		NWDst:    "10.0.0.9",
	}
	resp, body := postJSON(t, srv.URL+"/v1/updates", api.BatchUpdateRequest{
		Updates: []api.FlowUpdate{fig1Update(""), second},
		Cleanup: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br api.BatchUpdateResponse
	decodeInto(t, body, &br)
	if len(br.Updates) != 2 {
		t.Fatalf("accepted %d updates", len(br.Updates))
	}
	for _, acc := range br.Updates {
		if acc.ID == 0 || acc.Algorithm != "wayup" {
			t.Fatalf("accepted = %+v", acc)
		}
	}

	// Both jobs complete; per-job status carries rounds incl. cleanup.
	deadline := time.Now().Add(20 * time.Second)
	for _, acc := range br.Updates {
		for {
			var st api.JobStatus
			if code := getJSON(t, fmt.Sprintf("%s/v1/updates/%d", srv.URL, acc.ID), &st); code != http.StatusOK {
				t.Fatalf("status code %d", code)
			}
			if st.State == "done" {
				if len(st.Rounds) != len(acc.Rounds)+1 {
					t.Fatalf("job %d rounds %d, want %d + cleanup", acc.ID, len(st.Rounds), len(acc.Rounds))
				}
				if !st.Rounds[len(st.Rounds)-1].Cleanup {
					t.Fatalf("job %d last round not flagged cleanup", acc.ID)
				}
				break
			}
			if st.State == "failed" || time.Now().After(deadline) {
				t.Fatalf("job %d state %q (%s)", acc.ID, st.State, st.Error)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Forwarding flipped for both flows.
	if res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64); !res.Visited.Equal(topo.Fig1NewPath) {
		t.Fatalf("flow A path %v", res.Visited)
	}
	if res := tb.fabric.Inject(1, nwDstOf("10.0.0.9"), 64); !res.Visited.Equal(topo.Fig1OldPath) {
		t.Fatalf("flow B path %v", res.Visited)
	}

	// List filtering.
	var done []api.JobStatus
	if code := getJSON(t, srv.URL+"/v1/updates?state=done", &done); code != http.StatusOK || len(done) != 2 {
		t.Fatalf("state=done: code %d, %d jobs", code, len(done))
	}
	var running []api.JobStatus
	if code := getJSON(t, srv.URL+"/v1/updates?state=running", &running); code != http.StatusOK || len(running) != 0 {
		t.Fatalf("state=running: code %d, %d jobs", code, len(running))
	}
	if code := getJSON(t, srv.URL+"/v1/updates?state=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("state=bogus code %d", code)
	}

	// Healthz.
	var h api.Healthz
	if code := getJSON(t, srv.URL+"/v1/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz code %d", code)
	}
	if h.Status != "ok" || h.Switches != 12 || h.QueueDepth != 0 || h.Workers != defaultEngineWorkers {
		t.Fatalf("healthz = %+v", h)
	}
	if h.Dispatch == nil {
		t.Fatal("healthz missing dispatch section")
	}
	if d := h.Dispatch; d.Shards < 1 || len(d.InFlight) != d.Shards || d.ReadyDepth != 0 {
		t.Fatalf("dispatch health = %+v", d)
	}
	// Two updates already executed through the sharded path, so the
	// batch histogram cannot be empty. (Metrics are process-global, so
	// assert floors, not exact counts.)
	if d := h.Dispatch; d.BatchedWrites == 0 || d.BatchMaxMsgs < 2 {
		t.Fatalf("dispatch batching not observed: %+v", d)
	}
}

func TestV1DryRunSubmitsNothing(t *testing.T) {
	_, srv := restTestbed(t)
	resp, body := postJSON(t, srv.URL+"/v1/updates", api.BatchUpdateRequest{
		Updates: []api.FlowUpdate{fig1Update("")},
		DryRun:  true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dry-run: %d %s", resp.StatusCode, body)
	}
	var br api.BatchUpdateResponse
	decodeInto(t, body, &br)
	if !br.DryRun || len(br.Updates) != 1 {
		t.Fatalf("response = %+v", br)
	}
	acc := br.Updates[0]
	if acc.ID != 0 || acc.Algorithm != "wayup" || len(acc.Rounds) == 0 {
		t.Fatalf("accepted = %+v", acc)
	}
	var jobs []api.JobStatus
	if code := getJSON(t, srv.URL+"/v1/updates", &jobs); code != http.StatusOK || len(jobs) != 0 {
		t.Fatalf("dry run created jobs: %v", jobs)
	}
}

func TestV1Verify(t *testing.T) {
	_, srv := restTestbed(t)

	// WayUp verifies clean against its own guarantees.
	resp, body := postJSON(t, srv.URL+"/v1/verify", api.VerifyRequest{
		Updates: []api.FlowUpdate{fig1Update("wayup")},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: %d %s", resp.StatusCode, body)
	}
	var vr api.VerifyResponse
	decodeInto(t, body, &vr)
	if !vr.OK || len(vr.Results) != 1 || !vr.Results[0].OK || vr.Results[0].Violation != nil {
		t.Fatalf("wayup verify = %+v", vr)
	}

	// One-shot on a waypoint instance must surface a violation with a
	// concrete counterexample walk.
	resp, body = postJSON(t, srv.URL+"/v1/verify", api.VerifyRequest{
		Updates: []api.FlowUpdate{fig1Update("oneshot")},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify oneshot: %d %s", resp.StatusCode, body)
	}
	decodeInto(t, body, &vr)
	if vr.OK || len(vr.Results) != 1 {
		t.Fatalf("oneshot verify = %+v", vr)
	}
	res := vr.Results[0]
	if res.OK || res.Violation == nil || len(res.Violation.Walk) == 0 || res.Violation.Property == "" {
		t.Fatalf("oneshot result = %+v", res)
	}

	// Per-update properties are check targets on this endpoint, not an
	// execution contract: asking what one-shot would break w.r.t.
	// waypoint enforcement must answer, not 400.
	perUpdate := fig1Update("oneshot")
	perUpdate.Properties = []string{"no-blackhole", "waypoint"}
	resp, body = postJSON(t, srv.URL+"/v1/verify", api.VerifyRequest{
		Updates: []api.FlowUpdate{perUpdate},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify per-update props: %d %s", resp.StatusCode, body)
	}
	decodeInto(t, body, &vr)
	if vr.OK || vr.Results[0].Violation == nil {
		t.Fatalf("per-update props verify = %+v", vr)
	}
	if got := vr.Results[0].Properties; got != "NoBlackhole|WaypointEnforcement" {
		t.Fatalf("checked properties = %q", got)
	}

	// Explicit properties override the schedule's own guarantees.
	resp, body = postJSON(t, srv.URL+"/v1/verify", api.VerifyRequest{
		Updates:    []api.FlowUpdate{fig1Update("wayup")},
		Properties: []string{"no-blackhole", "waypoint"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify props: %d %s", resp.StatusCode, body)
	}
	decodeInto(t, body, &vr)
	if got := vr.Results[0].Properties; got != "NoBlackhole|WaypointEnforcement" {
		t.Fatalf("checked properties = %q", got)
	}
}

func TestV1ErrorTable(t *testing.T) {
	_, srv := restTestbed(t)
	good := fig1Update("")
	cases := []struct {
		name       string
		url        string
		body       any
		wantStatus int
		wantCode   int
	}{
		{"bad-json", "/v1/updates", "{", http.StatusBadRequest, api.CodeInvalidJSON},
		{"empty-batch", "/v1/updates", api.BatchUpdateRequest{}, http.StatusBadRequest, api.CodeEmptyBatch},
		{"negative-interval", "/v1/updates", api.BatchUpdateRequest{
			Updates: []api.FlowUpdate{good}, Interval: -5,
		}, http.StatusBadRequest, api.CodeInvalidInterval},
		{"bad-ip", "/v1/updates", api.BatchUpdateRequest{
			Updates: []api.FlowUpdate{{OldPath: good.OldPath, NewPath: good.NewPath, NWDst: "nope"}},
		}, http.StatusBadRequest, api.CodeInvalidMatch},
		{"short-path", "/v1/updates", api.BatchUpdateRequest{
			Updates: []api.FlowUpdate{{OldPath: []uint64{1}, NewPath: []uint64{1, 2}, NWDst: "10.0.0.2"}},
		}, http.StatusBadRequest, api.CodeInvalidPath},
		{"waypoint-off-path", "/v1/updates", api.BatchUpdateRequest{
			Updates: []api.FlowUpdate{{OldPath: good.OldPath, NewPath: good.NewPath, Waypoint: 99, NWDst: "10.0.0.2"}},
		}, http.StatusBadRequest, api.CodeInvalidWaypoint},
		{"unknown-algorithm", "/v1/updates", api.BatchUpdateRequest{
			Updates: []api.FlowUpdate{{OldPath: good.OldPath, NewPath: good.NewPath, Algorithm: "magic", NWDst: "10.0.0.2"}},
		}, http.StatusBadRequest, api.CodeUnknownAlgorithm},
		{"wayup-needs-wp", "/v1/updates", api.BatchUpdateRequest{
			Updates: []api.FlowUpdate{{OldPath: []uint64{1, 2, 3}, NewPath: []uint64{1, 7, 8, 3}, Algorithm: "wayup", NWDst: "10.0.0.2"}},
		}, http.StatusBadRequest, api.CodeScheduleFailed},
		{"second-entry-invalid", "/v1/updates", api.BatchUpdateRequest{
			Updates: []api.FlowUpdate{good, {OldPath: []uint64{1}, NewPath: []uint64{1, 2}, NWDst: "10.0.0.2"}},
		}, http.StatusBadRequest, api.CodeInvalidPath},
		{"props-not-guaranteed", "/v1/updates", api.BatchUpdateRequest{
			Updates: []api.FlowUpdate{{OldPath: good.OldPath, NewPath: good.NewPath, Waypoint: 3, NWDst: "10.0.0.2",
				Algorithm: "peacock", Properties: []string{"waypoint"}}},
		}, http.StatusBadRequest, api.CodeScheduleFailed},
		{"bad-update-property", "/v1/updates", api.BatchUpdateRequest{
			Updates: []api.FlowUpdate{{OldPath: good.OldPath, NewPath: good.NewPath, NWDst: "10.0.0.2", Properties: []string{"magic"}}},
		}, http.StatusBadRequest, api.CodeUnknownProperty},
		{"verify-bad-property", "/v1/verify", api.VerifyRequest{
			Updates: []api.FlowUpdate{good}, Properties: []string{"magic"},
		}, http.StatusBadRequest, api.CodeUnknownProperty},
		{"verify-two-phase", "/v1/verify", api.VerifyRequest{
			Updates: []api.FlowUpdate{fig1Update("two-phase")},
		}, http.StatusBadRequest, api.CodeScheduleFailed},
		{"policy-bad-path", "/v1/policies", api.PolicyRequest{Path: []uint64{1}, NWDst: "10.0.0.2"}, http.StatusBadRequest, api.CodeInvalidPath},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if raw, isRaw := c.body.(string); isRaw {
				r, err := http.Post(srv.URL+c.url, "application/json", strings.NewReader(raw))
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				buf.ReadFrom(r.Body) //nolint:errcheck // test read
				r.Body.Close()
				resp, body = r, buf.Bytes()
			} else {
				resp, body = postJSON(t, srv.URL+c.url, c.body)
			}
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("status = %d (%s), want %d", resp.StatusCode, body, c.wantStatus)
			}
			var envelope api.Error
			decodeInto(t, body, &envelope)
			if envelope.Code != c.wantCode || envelope.Message == "" {
				t.Fatalf("envelope = %+v, want code %d", envelope, c.wantCode)
			}
		})
	}

	// Atomic validation: the second-entry-invalid case must not have
	// submitted its valid first entry.
	var jobs []api.JobStatus
	if code := getJSON(t, srv.URL+"/v1/updates", &jobs); code != http.StatusOK || len(jobs) != 0 {
		t.Fatalf("invalid batch leaked jobs: %v", jobs)
	}

	// Job lookup errors.
	if code := getJSON(t, srv.URL+"/v1/updates/999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job code %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/updates/abc", nil); code != http.StatusBadRequest {
		t.Fatalf("bad job id code %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/updates/999/watch", nil); code != http.StatusNotFound {
		t.Fatalf("watch unknown job code %d", code)
	}
}

// TestV1BatchAdmissionAtomic pins the admission contract: a batch
// larger than the engine's remaining capacity is rejected whole — no
// prefix of it leaks into execution.
func TestV1BatchAdmissionAtomic(t *testing.T) {
	_, srv := restTestbed(t)
	big := make([]api.FlowUpdate, 200) // maxAdmitted is 128
	for i := range big {
		big[i] = fig1Update("")
	}
	resp, body := postJSON(t, srv.URL+"/v1/updates", api.BatchUpdateRequest{Updates: big})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized batch: %d %s", resp.StatusCode, body)
	}
	var envelope api.Error
	decodeInto(t, body, &envelope)
	if envelope.Code != api.CodeQueueFull {
		t.Fatalf("code = %d, want %d", envelope.Code, api.CodeQueueFull)
	}
	var jobs []api.JobStatus
	if code := getJSON(t, srv.URL+"/v1/updates", &jobs); code != http.StatusOK || len(jobs) != 0 {
		t.Fatalf("rejected batch leaked %d jobs", len(jobs))
	}
}

// TestV1UpdateProperties pins that a per-update property selection
// reaches the scheduler: sequential scheduled for strong loop freedom
// reports it in its guarantees.
func TestV1UpdateProperties(t *testing.T) {
	_, srv := restTestbed(t)
	u := fig1Update("sequential")
	u.Properties = []string{"no-blackhole", "strong-lf"}
	resp, body := postJSON(t, srv.URL+"/v1/updates", api.BatchUpdateRequest{
		Updates: []api.FlowUpdate{u},
		DryRun:  true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dry-run: %d %s", resp.StatusCode, body)
	}
	var br api.BatchUpdateResponse
	decodeInto(t, body, &br)
	if g := br.Updates[0].Guarantees; !strings.Contains(g, "StrongLoopFreedom") {
		t.Fatalf("guarantees = %q, want StrongLoopFreedom included", g)
	}
}

// TestV1WatchStreamsRounds reads the raw SSE stream: every round
// event arrives in order, each as an `event:` line plus a `data:`
// JSON payload, and the stream terminates with a done event.
func TestV1WatchStreamsRounds(t *testing.T) {
	_, srv := restTestbed(t)
	resp, body := postJSON(t, srv.URL+"/v1/updates", api.BatchUpdateRequest{
		Updates:  []api.FlowUpdate{fig1Update("")},
		Interval: 10, // ms between rounds: keeps the job alive while we attach
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br api.BatchUpdateResponse
	decodeInto(t, body, &br)
	id := br.Updates[0].ID

	res, err := http.Get(fmt.Sprintf("%s/v1/updates/%d/watch", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var rounds []int
	var terminal string
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data:") {
			continue
		}
		var ev api.WatchEvent
		decodeInto(t, []byte(strings.TrimPrefix(line, "data:")), &ev)
		switch ev.Type {
		case api.EventRound:
			rounds = append(rounds, ev.Round.Round)
		case api.EventDone, api.EventFailed:
			terminal = ev.Type
		}
	}
	if terminal != api.EventDone {
		t.Fatalf("terminal event = %q (rounds %v)", terminal, rounds)
	}
	if len(rounds) != len(br.Updates[0].Rounds) {
		t.Fatalf("saw %d round events, want %d", len(rounds), len(br.Updates[0].Rounds))
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("rounds out of order: %v", rounds)
		}
	}
}

// TestV1FailureReportRoundTrip drives an abort end to end through the
// REST surface: a switch that drops barrier replies forces the engine
// to abort and attempt a rollback whose own barrier is equally lost,
// and GET /v1/updates/{id} must carry the structured failure report —
// phase, exact installed/rolled-back sets, and the stuck node with
// its blocking dependency list — in the wire shape the SDK decodes.
func TestV1FailureReportRoundTrip(t *testing.T) {
	g := topo.Fig1()
	tb := newTestbedWithConfig(t, g, Config{Topology: g, RoundTimeout: 400 * time.Millisecond},
		func(n topo.NodeID) switchsim.Config {
			cfg := switchsim.Config{Node: n}
			if n == 7 {
				cfg.Faults = switchsim.Faults{DropBarriers: true}
			}
			return cfg
		})
	srv := httptest.NewServer(tb.ctrl.RESTHandler())
	t.Cleanup(srv.Close)

	if resp, body := postJSON(t, srv.URL+"/v1/policies", api.PolicyRequest{
		Path: []uint64{1, 2, 3, 4, 5, 6, 12}, NWDst: "10.0.0.2", Host: "h2",
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("policy: %d %s", resp.StatusCode, body)
	}
	resp, body := postJSON(t, srv.URL+"/v1/updates", api.BatchUpdateRequest{
		Updates: []api.FlowUpdate{fig1Update("peacock")},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var br api.BatchUpdateResponse
	decodeInto(t, body, &br)
	if len(br.Updates) != 1 {
		t.Fatalf("accepted %d updates", len(br.Updates))
	}

	var st api.JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := getJSON(t, fmt.Sprintf("%s/v1/updates/%d", srv.URL, br.Updates[0].ID), &st); code != http.StatusOK {
			t.Fatalf("status code %d", code)
		}
		if st.State == "failed" || st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish: state %q", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != "failed" {
		t.Fatalf("state = %q, want failed", st.State)
	}
	if !strings.Contains(st.Error, "rollback failed") {
		t.Fatalf("error = %q", st.Error)
	}
	f := st.Failure
	if f == nil {
		t.Fatal("failed job status carries no failure report")
	}
	if f.Phase != PhaseRollbackFailed {
		t.Fatalf("phase = %q, want %q", f.Phase, PhaseRollbackFailed)
	}
	if !f.RollbackVerified {
		t.Fatal("reverse plan should have verified before execution")
	}
	if f.TriggeringFault == "" {
		t.Fatal("failure report names no triggering fault")
	}
	if len(f.Stuck) != 1 || f.Stuck[0].Switch != 7 {
		t.Fatalf("stuck = %+v, want exactly switch 7", f.Stuck)
	}
	asSet := func(ids []uint64) map[uint64]bool {
		m := make(map[uint64]bool, len(ids))
		for _, id := range ids {
			m[id] = true
		}
		return m
	}
	installed, rolledBack := asSet(f.Installed), asSet(f.RolledBack)
	if len(installed) == 0 {
		t.Fatal("failure report lists no installed switches")
	}
	if installed[7] || rolledBack[7] {
		t.Fatalf("switch 7 never confirmed: installed %v rolled back %v", f.Installed, f.RolledBack)
	}
	if len(installed) != len(rolledBack) {
		t.Fatalf("installed %v and rolled back %v differ", f.Installed, f.RolledBack)
	}
	for id := range installed {
		if !rolledBack[id] {
			t.Fatalf("installed switch %d missing from rolled back %v", id, f.RolledBack)
		}
	}
}
