package controller

import (
	"context"
	"strings"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// fig1Instance is the paper's running example with its waypoint.
func fig1Instance(t *testing.T) *core.Instance {
	t.Helper()
	return core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
}

// runPlanJob installs the old path and submits the given plan, waiting
// for the terminal state.
func runPlanJob(t *testing.T, tb *testbed, in *core.Instance, p *core.Plan, mode ExecMode) *Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tb.ctrl.InstallPath(ctx, in.Old, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatal(err)
	}
	job, err := tb.ctrl.Engine().SubmitPlan(in, p, flowMatch("10.0.0.2"), SubmitOptions{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	job.Wait(ctx)
	return job
}

// crossSwitchEdges counts the plan's happens-before edges whose
// endpoints live on different switches — the peer acks a clean
// decentralized run must send.
func crossSwitchEdges(p *core.Plan) int {
	cross := 0
	for i, nd := range p.Nodes {
		for _, d := range nd.Deps {
			if p.Nodes[d].Switch != p.Nodes[i].Switch {
				cross++
			}
		}
	}
	return cross
}

// TestDecentralizedMatchesControllerMode runs the same sparse plan
// through both dispatch paths and demands the observable outcome be
// the same: data plane on the new path, one install event per plan
// node with the releasing predecessor attached, layers published in
// order — while the decentralized run's control-channel traffic
// collapses to two messages per switch.
func TestDecentralizedMatchesControllerMode(t *testing.T) {
	in := fig1Instance(t)
	p, err := core.PlanByName(in, "peacock", 0, true)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		job  *Job
		path topo.Path
	}
	run := func(mode ExecMode) outcome {
		tb := newTestbed(t, topo.Fig1(), func(n topo.NodeID) switchsim.Config {
			return switchsim.Config{
				Node:           n,
				InstallLatency: netem.Uniform{Min: time.Millisecond, Max: 3 * time.Millisecond},
				PeerLatency:    netem.Fixed(500 * time.Microsecond),
			}
		})
		job := runPlanJob(t, tb, in, p, mode)
		if job.State() != JobDone {
			t.Fatalf("%v job state = %v (err %v)", mode, job.State(), job.Err())
		}
		res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
		if res.Outcome != switchsim.ProbeDelivered {
			t.Fatalf("%v post-update probe = %+v", mode, res)
		}
		return outcome{job: job, path: res.Visited}
	}

	ctrl := run(ModeController)
	dec := run(ModeDecentralized)

	if !ctrl.path.Equal(dec.path) {
		t.Fatalf("paths diverge: controller %v, decentralized %v", ctrl.path, dec.path)
	}
	if !dec.path.Equal(in.New) {
		t.Fatalf("decentralized path %v, want %v", dec.path, in.New)
	}
	if got, want := len(dec.job.Installs()), len(p.Nodes); got != want {
		t.Fatalf("decentralized installs = %d, want %d", got, want)
	}
	if got, want := len(dec.job.Timings()), len(ctrl.job.Timings()); got != want {
		t.Fatalf("decentralized rounds = %d, controller rounds = %d", got, want)
	}
	for i, inst := range dec.job.Installs() {
		if inst.Layer > 0 && inst.ReleasedBy == 0 {
			t.Fatalf("install %d (layer %d at switch %d) has no releasing predecessor", i, inst.Layer, inst.Node)
		}
		if inst.Finished.Before(inst.Started) {
			t.Fatalf("install %d finished before it started", i)
		}
	}

	ctrlTotal, _ := ctrl.job.Messages()
	decTotal, decPer := dec.job.Messages()
	if ctrlTotal.Peer != 0 {
		t.Fatalf("controller mode sent %d peer messages", ctrlTotal.Peer)
	}
	if want := crossSwitchEdges(p); decTotal.Peer != want {
		t.Fatalf("decentralized peer messages = %d, want %d (one per cross-switch edge)", decTotal.Peer, want)
	}
	for n, ms := range decPer {
		if ms.Ctrl != 2 {
			t.Fatalf("switch %d exchanged %d control messages, want 2 (push + report)", n, ms.Ctrl)
		}
	}
	if decTotal.Ctrl >= ctrlTotal.Ctrl {
		t.Fatalf("decentralized control traffic (%d) not below controller-driven (%d)", decTotal.Ctrl, ctrlTotal.Ctrl)
	}
}

// TestDecentralizedDuplicateAcksIdempotent doubles every peer ack on
// the wire; the agents must absorb the duplicates (counting them) and
// the update must still converge to the correct data plane.
func TestDecentralizedDuplicateAcksIdempotent(t *testing.T) {
	in := fig1Instance(t)
	p, err := core.PlanByName(in, "peacock", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	tb := newTestbed(t, topo.Fig1(), func(n topo.NodeID) switchsim.Config {
		return switchsim.Config{
			Node:        n,
			PeerLatency: netem.Uniform{Min: 0, Max: time.Millisecond},
			Faults:      switchsim.Faults{DuplicatePeerAcks: true},
		}
	})
	job := runPlanJob(t, tb, in, p, ModeDecentralized)
	if job.State() != JobDone {
		t.Fatalf("job state = %v (err %v)", job.State(), job.Err())
	}
	res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if res.Outcome != switchsim.ProbeDelivered || !res.Visited.Equal(in.New) {
		t.Fatalf("post-update probe = %+v", res)
	}
	dups := 0
	for _, n := range topo.Fig1().Nodes() {
		if _, _, d, ok := tb.fabric.Switch(n).PlanAckStats(job.ID); ok {
			dups += d
		}
	}
	if want := crossSwitchEdges(p); dups != want {
		t.Fatalf("absorbed %d duplicate acks, want %d (every cross-switch edge doubled)", dups, want)
	}
	total, _ := job.Messages()
	if want := 2 * crossSwitchEdges(p); total.Peer != want {
		t.Fatalf("peer messages = %d, want %d", total.Peer, want)
	}
}

// TestDecentralizedLostAckTimesOut drops every peer ack: installs with
// in-edges can never be released, so the job must fail with the
// progress timeout and a report naming the stuck installs.
func TestDecentralizedLostAckTimesOut(t *testing.T) {
	in := fig1Instance(t)
	p, err := core.PlanByName(in, "peacock", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Fig1()
	tb := newTestbedWithConfig(t, g, Config{Topology: g, RoundTimeout: 300 * time.Millisecond},
		func(n topo.NodeID) switchsim.Config {
			return switchsim.Config{Node: n, Faults: switchsim.Faults{DropPeerAcks: true}}
		})
	job := runPlanJob(t, tb, in, p, ModeDecentralized)
	if job.State() != JobFailed {
		t.Fatalf("job state = %v, want failed", job.State())
	}
	msg := job.Err().Error()
	if !strings.Contains(msg, "stalled") || !strings.Contains(msg, "unconfirmed") {
		t.Fatalf("failure report lacks stall diagnosis: %v", msg)
	}
	if !strings.Contains(msg, "awaiting") && !strings.Contains(msg, "ack or completion report lost") {
		t.Fatalf("failure report lacks dependency detail: %v", msg)
	}
}

// TestDecentralizedReorderedAcksConverge randomizes peer latency so
// acks overtake each other (and partitions, via slow control
// channels); the early-ack buffer must hold the race.
func TestDecentralizedReorderedAcksConverge(t *testing.T) {
	in := fig1Instance(t)
	p, err := core.PlanByName(in, "peacock", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	tb := newTestbed(t, topo.Fig1(), func(n topo.NodeID) switchsim.Config {
		return switchsim.Config{
			Node:        n,
			CtrlLatency: netem.Uniform{Min: 0, Max: 5 * time.Millisecond},
			PeerLatency: netem.Uniform{Min: 0, Max: 5 * time.Millisecond},
		}
	})
	job := runPlanJob(t, tb, in, p, ModeDecentralized)
	if job.State() != JobDone {
		t.Fatalf("job state = %v (err %v)", job.State(), job.Err())
	}
	res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if res.Outcome != switchsim.ProbeDelivered || !res.Visited.Equal(in.New) {
		t.Fatalf("post-update probe = %+v", res)
	}
}
