package controller

// E14: the crash-restart chaos suite. A two-flow run on the Fig. 1
// topology is killed at every dispatch boundary — the engine dies the
// instant the k-th dispatched record hits the journal — and a fresh
// controller recovers from the journal against the live switch fleet.
// The invariants, per boundary:
//
//   - every recovered job reaches a terminal phase: done (adopted and
//     completed, or requeued and re-run) or failed with a verified
//     rollback — never stuck, never an unverified or refused rollback;
//   - the data plane ends consistent per flow: probes deliver along
//     the old path or the new path in full, no blackholes, no
//     stitched-together routes;
//   - write-ahead holds: a job with no dispatched record recovers by
//     plain re-admission.
//
// Two sweeps share the runner. The virtual-clock sweep runs the
// workload fault-free under simclock/AutoAdvance — the controller
// crash is the injected fault — and exercises adopt-and-resume plus
// requeue. The wall-clock sweep adds the E13-style switch fault (a
// new-path-only switch crashes after its first FlowMod and wipes its
// table, then reconnects), so recovery composes with the verified
// reverse-plan rollback of PR 8; it runs on the wall clock because a
// rebooting switch takes real milliseconds the virtual driver would
// leap past.

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/journal"
	"tsu/internal/netem"
	"tsu/internal/simclock"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// crashRestartFlows are the two updates of the E14 run. Flow A is the
// paper's Fig. 1 reroute; flow B rides the 3→12 sub-routes. Switch 8 —
// new-path-only for A, untouched by B — carries the switch fault in
// the faulted sweep, so wiping it cannot damage B's rules.
var (
	crashFlowAOld = topo.Fig1OldPath
	crashFlowANew = topo.Fig1NewPath
	crashFlowBOld = topo.Path{3, 4, 5, 6, 12}
	crashFlowBNew = topo.Path{3, 9, 10, 11, 12}
)

const crashFaultSwitch topo.NodeID = 8

type crashRestartOpts struct {
	virtual bool // simclock + AutoAdvance, no switch fault
	faulted bool // wall clock + switch crash-wipe fault and reconnect
}

// crashRestartRun executes one boundary of a sweep: run the workload,
// kill engine and journal at the k-th dispatched record, restart,
// recover, and check every invariant. It reports whether the crash
// fired — once a boundary exceeds the run's dispatch count the
// workload just completes, and the sweep is done — plus the recovery
// stats for sweep-level coverage assertions.
func crashRestartRun(t *testing.T, boundary int, opts crashRestartOpts) (crashFired bool, stats RecoveryStats) {
	t.Helper()
	cfg := Config{Topology: topo.Fig1(), RoundTimeout: 700 * time.Millisecond}
	var sim *simclock.Sim
	if opts.virtual {
		sim = simclock.NewSim(time.Time{})
		stopDriver := sim.AutoAdvance(200 * time.Microsecond)
		defer stopDriver()
		cfg.Clock = sim
		cfg.RoundTimeout = 2 * time.Second
	}

	jpath := t.TempDir() + "/journal.wal"
	jl, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = jl

	g := cfg.Topology
	fabric := switchsim.NewFabric(g)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Phase 1: controller armed to die at the k-th dispatched record.
	// Crash before cancel: the journal stops taking records at the same
	// instant the engine loses its context, exactly like the process
	// dying mid-write.
	ctx1, cancel1 := context.WithCancel(ctx)
	defer cancel1()
	ctrl1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr1, err := ctrl1.Start(ctx1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var curAddr atomic.Value
	curAddr.Store(addr1)

	// Boundaries count dispatched *nodes*, whichever record shape
	// journaled them: a grouped dispatched-batch append advances the
	// counter by its whole width (the batch is atomic — there is no
	// boundary inside it to crash at).
	var dispatched atomic.Int32
	jl.SetOnAppend(func(r journal.Record) {
		var w int32
		switch r.Kind {
		case journal.KindDispatched:
			w = 1
		case journal.KindDispatchedBatch:
			w = int32(len(r.Nodes))
		default:
			return
		}
		if now := dispatched.Add(w); int(now) >= boundary && int(now-w) < boundary {
			jl.Crash()
			cancel1()
		}
	})

	switches := make(map[topo.NodeID]*switchsim.Switch, g.NumNodes())
	for _, n := range g.Nodes() {
		swCfg := switchsim.Config{Node: n}
		if opts.virtual {
			swCfg.Clock = sim
			swCfg.CtrlLatency = netem.Fixed(time.Millisecond)
			swCfg.InstallLatency = netem.Fixed(2 * time.Millisecond)
		}
		if opts.faulted && n == crashFaultSwitch {
			swCfg.Faults = switchsim.Faults{DisconnectAfterFlowMods: 1, WipeTableOnCrash: true}
		}
		sw, err := switchsim.NewSwitch(fabric, swCfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Connect(ctx, addr1); err != nil {
			t.Fatal(err)
		}
		defer sw.Stop()
		switches[n] = sw
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	if err := ctrl1.WaitForSwitches(waitCtx, g.NumNodes()); err != nil {
		t.Fatal(err)
	}
	waitCancel()

	// A keeper owns the faulted switch's connection for the rest of the
	// run: whenever the control loop dies — its own crash fault or a
	// controller kill — redial whichever controller is alive. The
	// rollback (or the resumed forward pass) must always find it back.
	swF := switches[crashFaultSwitch]
	if opts.faulted {
		go func() {
			for ctx.Err() == nil {
				if !swF.Connected() {
					time.Sleep(20 * time.Millisecond)             // reboot delay
					_ = swF.Connect(ctx, curAddr.Load().(string)) //nolint:errcheck // keeper retries
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	installCtx, installCancel := context.WithTimeout(ctx, 30*time.Second)
	if err := ctrl1.InstallPath(installCtx, crashFlowAOld, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl1.InstallPath(installCtx, crashFlowBOld, flowMatch("10.0.0.3"), "h2"); err != nil {
		t.Fatal(err)
	}
	installCancel()

	submit := func(old, new_ topo.Path, ip string) *Job {
		in := core.MustInstance(old, new_, 0)
		sched, err := core.Peacock(in)
		if err != nil {
			t.Fatal(err)
		}
		job, err := ctrl1.Engine().Submit(in, sched, flowMatch(ip), 0)
		if err != nil {
			t.Fatal(err)
		}
		return job
	}
	jobA := submit(crashFlowAOld, crashFlowANew, "10.0.0.2")
	jobB := submit(crashFlowBOld, crashFlowBNew, "10.0.0.3")

	// Both jobs settle in ctrl1's view — done, failed, or killed by the
	// boundary crash. Generous wall bound; virtual time flies.
	phase1Ctx, phase1Cancel := context.WithTimeout(context.Background(), 120*time.Second)
	_ = jobA.Wait(phase1Ctx) //nolint:errcheck // failure and cancellation are expected outcomes
	_ = jobB.Wait(phase1Ctx) //nolint:errcheck
	phase1Cancel()
	crashFired = int(dispatched.Load()) >= boundary

	if !crashFired {
		// The workload finished under this boundary: in the faulted
		// sweep flow A must have rolled back verified; the sweep is
		// complete either way.
		assertCrashRestartInvariants(t, boundary, []*Job{jobA, jobB})
		assertCrashRestartDataPlane(t, boundary, fabric)
		return false, stats
	}
	cancel1() // idempotent: the journal hook already fired

	// Phase 2: a fresh controller reopens the journal — torn tail and
	// all — and the fleet redials it.
	jl2, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Journal = jl2
	ctrl2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := ctrl2.Start(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	curAddr.Store(addr2)
	for _, sw := range switches {
		if opts.faulted && sw == swF {
			continue // the keeper owns every redial of the faulted switch
		}
		if err := sw.Connect(ctx, addr2); err != nil {
			t.Fatal(err)
		}
	}
	waitCtx2, waitCancel2 := context.WithTimeout(ctx, 60*time.Second)
	if err := ctrl2.WaitForSwitches(waitCtx2, g.NumNodes()); err != nil {
		t.Fatal(err)
	}
	waitCancel2()

	recoverCtx, recoverCancel := context.WithTimeout(ctx, 120*time.Second)
	defer recoverCancel()
	stats, err = ctrl2.Engine().Recover(recoverCtx)
	if err != nil {
		t.Fatalf("boundary %d: recover: %v", boundary, err)
	}
	if stats.Failed != 0 {
		t.Fatalf("boundary %d: %d recovered jobs marked unrecoverable: %+v", boundary, stats.Failed, stats)
	}
	if stats.Replayed == 0 {
		t.Fatalf("boundary %d: crash fired but the journal replayed nothing", boundary)
	}

	assertCrashRestartInvariants(t, boundary, ctrl2.Engine().Jobs())
	assertCrashRestartDataPlane(t, boundary, fabric)

	// The healthz surface agrees with the recovery outcome.
	if got, ok := ctrl2.Engine().Recovery(); !ok || got.Recovered() != stats.Recovered() {
		t.Fatalf("boundary %d: Recovery() = %+v ok=%v, want %+v", boundary, got, ok, stats)
	}
	return true, stats
}

// assertCrashRestartInvariants waits every job to a terminal phase and
// rejects all unverified outcomes.
func assertCrashRestartInvariants(t *testing.T, boundary int, jobs []*Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, job := range jobs {
		_ = job.Wait(ctx) //nolint:errcheck // a verified-rollback failure is a legal outcome
		st := job.State()
		if st != JobDone && st != JobFailed {
			t.Fatalf("boundary %d: job %d stuck in state %v", boundary, job.ID, st)
		}
		f := job.Failure()
		if f == nil {
			continue
		}
		switch f.Phase {
		case PhaseStuck, PhaseRollbackFailed:
			t.Fatalf("boundary %d: job %d ended %q (report %+v) — property violation", boundary, job.ID, f.Phase, f)
		case PhaseRolledBack:
			if !f.RollbackVerified {
				t.Fatalf("boundary %d: job %d rolled back without verification", boundary, job.ID)
			}
		}
	}
}

// assertCrashRestartDataPlane probes both flows: delivery along the
// old path or the new path in full, nothing in between.
func assertCrashRestartDataPlane(t *testing.T, boundary int, fabric *switchsim.Fabric) {
	t.Helper()
	cases := []struct {
		src      topo.NodeID
		nwDst    uint32
		old, new topo.Path
	}{
		{1, nwDstOf("10.0.0.2"), crashFlowAOld, crashFlowANew},
		{3, nwDstOf("10.0.0.3"), crashFlowBOld, crashFlowBNew},
	}
	for _, tc := range cases {
		res := fabric.Inject(tc.src, tc.nwDst, 64)
		if res.Outcome != switchsim.ProbeDelivered {
			t.Fatalf("boundary %d: probe from %d = %+v, want delivery", boundary, tc.src, res)
		}
		if !res.Visited.Equal(tc.old) && !res.Visited.Equal(tc.new) {
			t.Fatalf("boundary %d: probe from %d visited %v, want %v or %v in full",
				boundary, tc.src, res.Visited, tc.old, tc.new)
		}
	}
}

// crashRestartSweep kills the engine at dispatch boundary 1, 2, ...
// until a run completes uncrashed (the first boundary past the run's
// dispatch count is the uncrashed baseline), and returns the aggregate
// recovery stats.
func crashRestartSweep(t *testing.T, opts crashRestartOpts) RecoveryStats {
	t.Helper()
	const maxBoundaries = 64 // backstop far above the run's dispatch count
	var total RecoveryStats
	for boundary := 1; boundary <= maxBoundaries; boundary++ {
		fired, stats := crashRestartRun(t, boundary, opts)
		t.Logf("boundary %d: crash fired=%v recovered=%+v", boundary, fired, stats)
		total.Replayed += stats.Replayed
		total.Terminal += stats.Terminal
		total.Requeued += stats.Requeued
		total.Adopted += stats.Adopted
		total.RolledBack += stats.RolledBack
		total.Failed += stats.Failed
		if !fired {
			if boundary == 1 {
				t.Fatal("workload dispatched nothing; the sweep never crashed the engine")
			}
			return total
		}
	}
	t.Fatalf("run still dispatching after %d boundaries", maxBoundaries)
	return total
}

// TestCrashRestartRecovery sweeps the controller kill across every
// dispatch boundary of the fault-free run under simclock.
func TestCrashRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-restart sweep is not short")
	}
	total := crashRestartSweep(t, crashRestartOpts{virtual: true})
	// Coverage, not luck: boundary 1 catches flow B pre-dispatch
	// (requeue), and every mid-flight boundary must reconcile.
	if total.Requeued == 0 {
		t.Errorf("sweep never requeued an undispatched job: %+v", total)
	}
	if total.Adopted+total.RolledBack == 0 {
		t.Errorf("sweep never reconciled a mid-flight job: %+v", total)
	}
}

// TestCrashRestartFaultedRollback is the faulted sweep: the controller
// kill composes with a switch that crashes mid-update and wipes its
// table, so recovery lands on adopt-resume-then-abort or the verified
// reverse-plan path.
func TestCrashRestartFaultedRollback(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-restart sweep is not short")
	}
	total := crashRestartSweep(t, crashRestartOpts{faulted: true})
	if total.Requeued+total.Adopted+total.RolledBack == 0 {
		t.Errorf("faulted sweep recovered nothing: %+v", total)
	}
}
