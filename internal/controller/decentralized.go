package controller

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"tsu/internal/core"
	"tsu/internal/journal"
	"tsu/internal/openflow"
	"tsu/internal/planwire"
	"tsu/internal/topo"
)

// ExecMode selects how a job's execution DAG is dispatched.
type ExecMode int

const (
	// ModeController (the default) keeps the controller in the loop for
	// every happens-before edge: FlowMods, a barrier per node, and a
	// release decision on each barrier reply. Every edge costs control-
	// channel round trips.
	ModeController ExecMode = iota

	// ModeDecentralized broadcasts each switch's plan partition once
	// and lets the switches run the DAG themselves: a switch installs a
	// node when all of its in-edge acks have arrived and notifies its
	// DAG successors peer-to-peer (ez-Segway style). The controller
	// hears back exactly once per switch — the terminal completion
	// report.
	ModeDecentralized
)

func (m ExecMode) String() string {
	switch m {
	case ModeController:
		return "controller"
	case ModeDecentralized:
		return "decentralized"
	}
	return "unknown"
}

// ParseExecMode maps a mode name to its ExecMode. The empty string is
// the default (controller-driven).
func ParseExecMode(s string) (ExecMode, bool) {
	switch s {
	case "", "controller":
		return ModeController, true
	case "decentralized":
		return ModeDecentralized, true
	}
	return 0, false
}

// MessageStats counts the messages attributed to one switch during a
// job: Ctrl is controller↔switch traffic (FlowMods, barriers and
// replies, partition pushes, completion reports), Peer is direct
// switch↔switch traffic (dependency acks). The controller-driven mode
// has Peer == 0 by construction; the decentralized mode trades almost
// all Ctrl volume for Peer messages on short data-plane hops.
type MessageStats struct {
	Ctrl int
	Peer int
}

// add accumulates message counts for one switch. Safe for the
// dispatcher goroutine; readers go through Messages.
func (j *Job) addMessages(n topo.NodeID, ms MessageStats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.msgs == nil {
		j.msgs = make(map[topo.NodeID]MessageStats)
	}
	cur := j.msgs[n]
	cur.Ctrl += ms.Ctrl
	cur.Peer += ms.Peer
	j.msgs[n] = cur
}

// Messages returns the job's message-count breakdown: the total over
// all switches and a per-switch copy.
func (j *Job) Messages() (total MessageStats, perSwitch map[topo.NodeID]MessageStats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	perSwitch = make(map[topo.NodeID]MessageStats, len(j.msgs))
	for n, ms := range j.msgs {
		perSwitch[n] = ms
		total.Ctrl += ms.Ctrl
		total.Peer += ms.Peer
	}
	return total, perSwitch
}

// planProgress turns a stream of confirmed installs — in whatever
// order the dispatch path produces them — into the job's public trace:
// install events, per-layer RoundTimings published in layer order, and
// release bookkeeping on core.PlanRun. Both dispatch paths share it,
// so job status, SSE events and round timings are mode-agnostic.
type planProgress struct {
	job       *Job
	run       *core.PlanRun
	layers    []RoundTiming
	layerLeft []int
	nextRound int
	ready     []int
}

func newPlanProgress(job *Job) *planProgress {
	n := len(job.plan.nodes)
	p := &planProgress{
		job:       job,
		run:       core.NewPlanRun(job.plan.dag),
		layers:    make([]RoundTiming, job.plan.depth),
		layerLeft: make([]int, job.plan.depth),
		ready:     make([]int, 0, n),
	}
	for i := range p.layers {
		p.layers[i] = RoundTiming{Round: i, Cleanup: true}
	}
	for _, nd := range job.plan.nodes {
		p.layerLeft[nd.layer]++
	}
	// Per-layer and per-job traces are preallocated to their exact
	// final sizes, so the per-install hot path (confirm) never grows a
	// slice or rehashes a map.
	for i := range p.layers {
		p.layers[i].Switches = make([]topo.NodeID, 0, p.layerLeft[i])
	}
	job.mu.Lock()
	if job.installs == nil {
		job.installs = make([]InstallTiming, 0, n)
	}
	if job.timings == nil {
		job.timings = make([]RoundTiming, 0, job.plan.depth)
	}
	if job.events == nil {
		job.events = make([]JobEvent, 0, n+job.plan.depth+2)
	}
	if job.msgs == nil {
		job.msgs = make(map[topo.NodeID]MessageStats, len(job.nodes))
	}
	job.mu.Unlock()
	return p
}

// start resets the release bookkeeping and returns the root nodes.
func (p *planProgress) start() []int {
	p.ready = p.run.Reset(p.ready[:0])
	return p.ready
}

// confirm records one confirmed install: publishes the install event,
// aggregates it into its layer (a layer's RoundTiming publishes once
// the layer and all earlier layers are fully confirmed, keeping round
// events in order even when branches complete out of layer order), and
// returns the node indices the confirmation releases.
func (p *planProgress) confirm(idx int, install InstallTiming) []int {
	job := p.job
	job.mu.Lock()
	// The published event points into the job's install trace rather
	// than at the (escaping) parameter — with the trace preallocated,
	// appending a confirm is allocation-free.
	job.installs = append(job.installs, install)
	publishLocked(job, JobEvent{Install: &job.installs[len(job.installs)-1], State: JobRunning})
	job.mu.Unlock()

	nd := &job.plan.nodes[idx]
	lt := &p.layers[nd.layer]
	lt.Switches = append(lt.Switches, nd.node)
	lt.FlowMods += install.FlowMods
	lt.Cleanup = lt.Cleanup && nd.cleanup
	if lt.Started.IsZero() || install.Started.Before(lt.Started) {
		lt.Started = install.Started
	}
	if install.Finished.After(lt.Finished) {
		lt.Finished = install.Finished
	}
	p.layerLeft[nd.layer]--
	for p.nextRound < len(p.layers) && p.layerLeft[p.nextRound] == 0 {
		timing := p.layers[p.nextRound]
		sort.Slice(timing.Switches, func(a, b int) bool { return timing.Switches[a] < timing.Switches[b] })
		job.mu.Lock()
		job.timings = append(job.timings, timing)
		publishLocked(job, JobEvent{Round: &timing, State: JobRunning})
		job.mu.Unlock()
		p.nextRound++
	}

	p.ready = p.run.Complete(idx, p.ready[:0])
	return p.ready
}

// executeDecentralized runs one job by delegation: partition the
// execution DAG per switch, push every partition (with its FlowMods)
// in a single broadcast, then wait for one completion report per
// switch. The happens-before edges execute at the switches — each
// in-edge ack travels one data-plane hop instead of two control-
// channel round trips — so the controller's contribution to the
// critical path collapses to the initial push plus the final report.
//
// Reported installs flow through the same planProgress as the
// controller-driven path: install events still carry the releasing
// predecessor (as observed by the installing switch), layers still
// publish in order, and PlanRun bookkeeping still cross-checks that
// every reported install was actually released by its dependencies.
func (e *Engine) executeDecentralized(ctx context.Context, job *Job) {
	job.mu.Lock()
	job.state = JobRunning
	job.started = e.c.clock.Now()
	job.mu.Unlock()

	nodes := job.plan.nodes
	n := len(nodes)
	if n > 0 {
		// Self-describing partitions: the bookkeeping DAG plus the
		// job's metadata, so a switch (or a debugger on the wire) can
		// tell what it is executing.
		dag := *job.plan.dag
		dag.Algorithm = job.Algorithm
		dag.Sparse = job.plan.sparse
		parts := dag.Partition()

		reports := make(chan *planwire.Report, len(parts))
		e.c.registerPlanReports(job.ID, reports)
		defer e.c.unregisterPlanReports(job.ID)

		// A partition push hands the whole DAG to the switches at once:
		// every node is journaled dispatched in one grouped write-ahead
		// append (before any push leaves), so a recovering controller
		// knows the entire plan may have taken effect and reconciles all
		// of it against switch state.
		allNodes := make([]int, n)
		for i := range allNodes {
			allNodes[i] = i
		}
		if !e.journalDispatchBatch(job.ID, allNodes) {
			e.fail(job, errJournalWriteAhead)
			return
		}

		// Node completion offsets in reports are relative to partition
		// receipt; anchor them at the broadcast instant. The skew (one
		// control-channel delivery) is the same for every switch.
		broadcast := e.c.clock.Now()
		for i := range parts {
			part := &parts[i]
			push := &planwire.Push{Job: job.ID, Interval: job.Interval, Part: part}
			for _, pn := range part.Nodes {
				mods := make([]*openflow.FlowMod, 0, len(nodes[pn.Index].mods))
				for _, tm := range nodes[pn.Index].mods {
					mods = append(mods, tm.fm)
				}
				push.Mods = append(push.Mods, mods)
			}
			data, err := planwire.EncodePush(push)
			if err != nil {
				e.fail(job, fmt.Errorf("encoding partition for %d: %w", part.Switch, err))
				return
			}
			if err := e.c.SendVendor(uint64(part.Switch), data); err != nil {
				e.fail(job, fmt.Errorf("pushing partition to %d: %w", part.Switch, err))
				return
			}
		}

		prog := newPlanProgress(job)
		prog.start()
		confirmed := make([]bool, n)
		for remaining := n; remaining > 0; {
			var r *planwire.Report
			select {
			case r = <-reports:
			case <-e.c.clock.After(e.c.cfg.RoundTimeout):
				// No switch made terminal progress for a full timeout:
				// a peer ack or a report is lost, or an install stalled.
				// Roll back the down-closure of the confirmed set — a
				// confirmed node's dependencies took effect at their
				// switches even if their own reports were lost.
				// Installs at unreported crashed switches are invisible
				// to the controller and stay in place (see README).
				e.abort(ctx, job, stallError(job, confirmed, e.c.cfg.RoundTimeout),
					downClosure(job.plan.dag, confirmed), confirmed)
				return
			case <-ctx.Done():
				e.fail(job, ctx.Err())
				return
			}
			// Two control messages per switch, total: the partition
			// push and this report. Peer acks are the switch's own.
			job.addMessages(r.Switch, MessageStats{Ctrl: 2, Peer: r.AcksSent})
			for i := range r.Nodes {
				nr := &r.Nodes[i]
				if nr.Index < 0 || nr.Index >= n || confirmed[nr.Index] || nodes[nr.Index].node != r.Switch {
					e.abort(ctx, job, fmt.Errorf("malformed completion report from switch %d (node %d)", r.Switch, nr.Index),
						downClosure(job.plan.dag, confirmed), confirmed)
					return
				}
				confirmed[nr.Index] = true
				e.journalDelta(journal.KindConfirmed, job.ID, nr.Index)
				remaining--
				nd := &nodes[nr.Index]
				install := InstallTiming{
					Node:       nd.node,
					Layer:      nd.layer,
					ReleasedBy: nr.ReleasedBy,
					FlowMods:   nr.FlowMods,
					Cleanup:    nd.cleanup,
					Started:    broadcast.Add(nr.Started),
					Finished:   broadcast.Add(nr.Finished),
				}
				prog.confirm(nr.Index, install)
			}
		}
	}

	e.journalTerminal(job, nil)
	job.mu.Lock()
	job.state = JobDone
	job.finished = e.c.clock.Now()
	publishLocked(job, JobEvent{State: JobDone})
	job.mu.Unlock()
	close(job.done)
	e.c.logger.Info("update job done", "job", job.ID, "mode", job.Mode.String(),
		"installs", n, "depth", job.plan.depth, "sparse", job.plan.sparse)
}

// stallError builds the failure report for a stalled decentralized
// job: every unconfirmed node with the dependencies the controller has
// not seen confirmed either. A node whose dependencies all appear
// confirmed points at a lost in-edge ack (or an unreported producer
// switch) — exactly the fault-isolation hint an operator needs.
func stallError(job *Job, confirmed []bool, timeout time.Duration) error {
	var stuck []string
	missing := 0
	for i := range job.plan.nodes {
		if confirmed[i] {
			continue
		}
		missing++
		if len(stuck) >= 8 {
			continue // cap the report; the count still tells the scale
		}
		nd := &job.plan.nodes[i]
		var waits []string
		for _, d := range nd.deps {
			if !confirmed[d] {
				waits = append(waits, fmt.Sprintf("node %d@switch %d", d, job.plan.nodes[d].node))
			}
		}
		detail := "all dependencies confirmed — in-edge ack or completion report lost?"
		if len(waits) > 0 {
			detail = "awaiting " + strings.Join(waits, ", ")
		}
		stuck = append(stuck, fmt.Sprintf("node %d@switch %d (%s)", i, nd.node, detail))
	}
	return fmt.Errorf("decentralized execution stalled: no completion report within %v; %d/%d installs unconfirmed: %s: %w",
		timeout, missing, len(job.plan.nodes), strings.Join(stuck, "; "), context.DeadlineExceeded)
}
