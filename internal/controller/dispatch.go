package controller

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tsu/internal/metrics"
	"tsu/internal/ofconn"
	"tsu/internal/openflow"
	"tsu/internal/topo"
)

// This file is the engine's sharded dispatch path. The ack-driven
// dispatcher used to spawn one goroutine per plan node — send the
// FlowMods, send a barrier, park on the reply — which capped the
// engine far below the 100k-switch tier: every install cost a
// goroutine, a timer, and one write syscall per message. The sharded
// path removes all three:
//
//   - A fixed pool of dispatch shards (default GOMAXPROCS), each
//     owning a stable subset of switch connections (dpid % shards).
//     A shard drains its request channel, groups the ready installs
//     by connection, and writes each connection's FlowMods+barriers
//     as ONE coalesced buffered write (ofconn.Batch).
//   - Barrier replies are routed by the connection's read loop
//     straight into the owning job's ack channel as plain values
//     (datapath.sinks) — no goroutine ever waits per barrier.
//   - Per-job dispatch state (ack channel, rings, node-state bytes)
//     recycles through a pool, and barrier timeouts are synthesized
//     by the job's event loop from a FIFO deadline ring with a single
//     re-armed clock timer.
//
// Steady state the path runs zero goroutines and zero allocations per
// install (pinned by TestDispatchPathAllocs).

// fenceIdx marks a shardReq as a fence: the shard bounces it back
// through the job's ack channel after its current flush cycle. A
// failing job fences every shard before aborting — shards process
// requests in order, so once each fence returns, no FlowMod of the
// job can reach a wire anymore and the dispatched set is exact.
const fenceIdx = -1

// shardReq hands one ready install (or a fence) to the dispatch shard
// owning its switch connection. Plain values only: enqueueing never
// allocates.
type shardReq struct {
	job *Job
	st  *jobDispatch
	idx int
}

// barrierSink routes one in-flight install's BarrierReply from the
// connection read loop into the owning job's ack channel, as a value.
// Registered under datapath.mu keyed by the barrier xid, removed on
// delivery (or deregistered when the coalesced write fails).
type barrierSink struct {
	acks     chan<- nodeAck
	job      int
	idx      int32
	flowMods int32
	started  time.Time
}

// Node dispatch states, tracked per plan node by the job event loop.
// Acks are accepted only for nsInflight nodes, which dedupes the
// (rare) double ack: a write error racing a partial-write reply, or a
// reply racing a synthesized timeout.
const (
	nsIdle     byte = iota
	nsQueued        // journaled write-ahead, waiting for its send slot
	nsInflight      // handed to a shard; barrier reply or deadline pending
	nsDone          // ack consumed (confirmed, failed, or abandoned)
)

// dispatcher is the engine's shard pool plus the job-state recycler.
type dispatcher struct {
	e        *Engine
	shards   []*dispatchShard
	inflight []metrics.Gauge // per-shard in-flight installs
	pool     sync.Pool       // *jobDispatch
}

func newDispatcher(e *Engine, nshards int) *dispatcher {
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	d := &dispatcher{e: e, inflight: make([]metrics.Gauge, nshards)}
	for i := 0; i < nshards; i++ {
		d.shards = append(d.shards, &dispatchShard{
			d:     d,
			id:    i,
			reqs:  make(chan shardReq, 1024),
			conns: make(map[uint64]*connBatch),
		})
	}
	d.pool.New = func() any { return &jobDispatch{} }
	return d
}

// start launches the shard loops; they exit with ctx.
func (d *dispatcher) start(ctx context.Context) {
	for _, s := range d.shards {
		go s.run(ctx)
	}
}

// shardFor maps a switch connection to its owning shard — stable for
// the controller's lifetime, so a connection's writes are never
// contended across shards.
func (d *dispatcher) shardFor(dpid uint64) int { return int(dpid % uint64(len(d.shards))) }

// DispatchStats is a live snapshot of the dispatch path for
// /v1/healthz.
type DispatchStats struct {
	Shards     int
	ReadyDepth int64
	InFlight   []int64
}

func (d *dispatcher) stats() DispatchStats {
	s := DispatchStats{
		Shards:     len(d.shards),
		ReadyDepth: metrics.DispatchReadyDepth.Value(),
		InFlight:   make([]int64, len(d.shards)),
	}
	for i := range d.inflight {
		s.InFlight[i] = d.inflight[i].Value()
	}
	return s
}

// acquire returns a recycled (or fresh) per-job dispatch state sized
// for an n-node plan. The ack channel is sized so every live source —
// at most two acks per in-flight node plus one fence per shard — fits
// without blocking; leftover stale acks from a previous owner are
// drained here and ignored by the new owner's job-ID filter.
func (d *dispatcher) acquire(n int) *jobDispatch {
	st := d.pool.Get().(*jobDispatch)
	if need := 2*n + len(d.shards) + 16; cap(st.acks) < need {
		st.acks = make(chan nodeAck, need)
	}
drain:
	for {
		select {
		case <-st.acks:
		default:
			break drain
		}
	}
	st.cancelled.Store(false)
	st.abandoned = false
	st.dispatched = resizeBools(st.dispatched, n)
	st.confirmed = resizeBools(st.confirmed, n)
	st.status = resizeBytes(st.status, n)
	st.releasedBy = resizeNodes(st.releasedBy, n)
	st.wave = st.wave[:0]
	st.ready.reset()
	st.sendNow.reset()
	st.sendq.reset()
	st.deads.reset()
	st.nDone = 0
	st.fences = 0
	st.failing = nil
	return st
}

// release recycles a job's dispatch state unless the job abandoned it
// mid-flight (engine shutdown with acks still pending).
func (d *dispatcher) release(st *jobDispatch) {
	if st.abandoned {
		return
	}
	d.pool.Put(st)
}

// deliver is called from a connection read loop when a BarrierReply
// resolves a registered sink: the ack goes to the owning job as a
// value. Non-blocking — the ack channel is sized for every live
// source, so a full channel means the job is gone (stale reply) or
// wedged; either way a drop is safe (a live node would later fail on
// its deadline) and counted.
func (d *dispatcher) deliver(s barrierSink, now time.Time) {
	select {
	case s.acks <- nodeAck{job: s.job, idx: int(s.idx), flowMods: int(s.flowMods), sent: true, started: s.started, finished: now}:
	default:
		metrics.DispatchAcksDropped.Inc()
	}
}

// nack reports a failed (or skipped) install back to its job. sent
// follows the same rule as the old per-node goroutine: true unless
// provably nothing hit the wire for this node.
func (d *dispatcher) nack(r shardReq, sent bool, err error) {
	select {
	case r.st.acks <- nodeAck{job: r.job.ID, idx: r.idx, sent: sent, err: err}:
	default:
		metrics.DispatchAcksDropped.Inc()
	}
}

// jobDispatch is one job's pooled dispatch state, owned by the job's
// event loop (runDAG) except where noted.
type jobDispatch struct {
	acks      chan nodeAck
	cancelled atomic.Bool // set on failure; shards skip queued requests
	abandoned bool        // do not recycle (acks may still arrive)

	dispatched []bool // FlowMods possibly reached the switch
	confirmed  []bool // barrier reply received
	status     []byte // ns* per node
	releasedBy []topo.NodeID

	wave    []int     // current release wave (one grouped journal append)
	ready   intRing   // release-traversal scratch (see collectWave)
	sendNow intRing   // journaled, sendable immediately
	sendq   timedRing // journaled, paused until its interval due time
	deads   timedRing // in-flight barrier deadlines, FIFO

	nDone   int   // nodes that reached nsDone
	fences  int   // fences still out after a failure
	failing error // first failure; non-nil cancels dispatch
}

// dispatchShard owns a stable subset of switch connections and turns
// ready installs into coalesced writes.
type dispatchShard struct {
	d       *dispatcher
	id      int
	reqs    chan shardReq
	barrier openflow.BarrierRequest // re-stamped per install; encoded at Add time

	// Flush-cycle scratch, reused across cycles:
	order  []uint64 // dpids in first-seen order
	conns  map[uint64]*connBatch
	freeCB []*connBatch
	fences []shardReq
}

// connBatch groups one flush cycle's installs on one connection.
type connBatch struct {
	dp    *datapath
	batch ofconn.Batch
	reqs  []shardReq
	xids  []uint32
}

func (s *dispatchShard) run(ctx context.Context) {
	pprof.Do(ctx, pprof.Labels("tsu_dispatch_shard", strconv.Itoa(s.id)), s.loop)
}

// loop drains the request channel: block for the first request, then
// gather everything already queued, then flush — so installs released
// together coalesce into the same connection writes.
func (s *dispatchShard) loop(ctx context.Context) {
	for {
		var r shardReq
		select {
		case r = <-s.reqs:
		case <-ctx.Done():
			return
		}
		s.gather(r)
	drain:
		for {
			select {
			case r = <-s.reqs:
				s.gather(r)
			default:
				break drain
			}
		}
		s.flush(ctx)
	}
}

// gather files one request into its connection's batch.
func (s *dispatchShard) gather(r shardReq) {
	if r.idx < 0 {
		s.fences = append(s.fences, r)
		return
	}
	if r.st.cancelled.Load() {
		// The job failed after queueing this install: skip it without
		// touching a wire. sent=false — it cannot have taken effect.
		s.d.nack(r, false, context.Canceled)
		return
	}
	nd := &r.job.plan.nodes[r.idx]
	dpid := uint64(nd.node)
	cb := s.conns[dpid]
	if cb == nil {
		dp, err := s.d.e.c.datapath(dpid)
		if err != nil {
			s.d.nack(r, true, fmt.Errorf("install at %d (layer %d): sending flowmod: %w", nd.node, nd.layer, err))
			return
		}
		if n := len(s.freeCB); n > 0 {
			cb = s.freeCB[n-1]
			s.freeCB = s.freeCB[:n-1]
		} else {
			cb = &connBatch{}
		}
		cb.dp = dp
		cb.reqs = cb.reqs[:0]
		s.conns[dpid] = cb
		s.order = append(s.order, dpid)
	}
	cb.reqs = append(cb.reqs, r)
}

// flush writes every gathered connection batch, then bounces fences.
func (s *dispatchShard) flush(ctx context.Context) {
	now := s.d.e.c.clock.Now()
	for _, dpid := range s.order {
		cb := s.conns[dpid]
		delete(s.conns, dpid)
		s.flushConn(cb, now)
		cb.dp = nil
		s.freeCB = append(s.freeCB, cb)
	}
	s.order = s.order[:0]
	for _, f := range s.fences {
		select {
		case f.st.acks <- nodeAck{job: f.job.ID, idx: fenceIdx}:
		case <-ctx.Done():
		}
	}
	s.fences = s.fences[:0]
}

// flushConn encodes each install's FlowMods plus one barrier into the
// connection's batch — registering the barrier sink BEFORE the write,
// so a fast reply always finds it — and issues one coalesced write.
// On write error every sink of the batch is deregistered and every
// install nacked sent=true: a partial write may have reached the
// switch, and over-covering the rollback prefix is safe.
func (s *dispatchShard) flushConn(cb *connBatch, now time.Time) {
	dp := cb.dp
	cb.batch.Reset()
	cb.xids = cb.xids[:0]
	k := 0
	for _, r := range cb.reqs {
		nd := &r.job.plan.nodes[r.idx]
		mark := cb.batch.Mark()
		if err := s.encodeInstall(cb, dp, nd); err != nil {
			cb.batch.Truncate(mark)
			s.d.nack(r, false, fmt.Errorf("install at %d (layer %d): sending flowmod: %w", nd.node, nd.layer, err))
			continue
		}
		xid := dp.conn.NextXid()
		s.barrier.SetXid(xid)
		if err := cb.batch.Add(&s.barrier); err != nil {
			cb.batch.Truncate(mark)
			s.d.nack(r, false, fmt.Errorf("install at %d (layer %d): barrier: %w", nd.node, nd.layer, err))
			continue
		}
		dp.mu.Lock()
		dp.sinks[xid] = barrierSink{
			acks:     r.st.acks,
			job:      r.job.ID,
			idx:      int32(r.idx),
			flowMods: int32(len(nd.mods)),
			started:  now,
		}
		dp.mu.Unlock()
		cb.reqs[k] = r
		cb.xids = append(cb.xids, xid)
		k++
	}
	cb.reqs = cb.reqs[:k]
	if k == 0 {
		return
	}
	metrics.DispatchBatchMsgs.Observe(int64(cb.batch.Len()))
	if err := dp.conn.WriteBatch(&cb.batch); err != nil {
		dp.mu.Lock()
		for _, xid := range cb.xids {
			delete(dp.sinks, xid)
		}
		dp.mu.Unlock()
		for _, r := range cb.reqs {
			nd := &r.job.plan.nodes[r.idx]
			s.d.nack(r, true, fmt.Errorf("install at %d (layer %d): sending flowmod: %w", nd.node, nd.layer, err))
		}
	}
}

// encodeInstall appends one node's FlowMods to the batch.
func (s *dispatchShard) encodeInstall(cb *connBatch, dp *datapath, nd *execNode) error {
	for _, tm := range nd.mods {
		tm.fm.SetXid(dp.conn.NextXid())
		if err := cb.batch.Add(tm.fm); err != nil {
			return err
		}
	}
	return nil
}

// resizeBools returns a zeroed bool slice of length n, reusing b.
func resizeBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

func resizeBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

func resizeNodes(b []topo.NodeID, n int) []topo.NodeID {
	if cap(b) < n {
		return make([]topo.NodeID, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// intRing is a growable FIFO of node indices, pooled with its job
// state: steady-state pushes and pops do not allocate.
type intRing struct {
	buf  []int32
	head int
	n    int
}

func (r *intRing) reset()   { r.head, r.n = 0, 0 }
func (r *intRing) len() int { return r.n }

func (r *intRing) push(v int32) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *intRing) pop() int32 {
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

func (r *intRing) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 64
	}
	buf := make([]int32, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = buf, 0
}

// timedRing is a growable FIFO of (node, instant) pairs — the send
// queue (due instants) and the barrier deadline queue. Both queues are
// pushed in nondecreasing instant order, so the head is always the
// earliest.
type timedRing struct {
	idx  []int32
	at   []time.Time
	head int
	n    int
}

func (r *timedRing) reset()   { r.head, r.n = 0, 0 }
func (r *timedRing) len() int { return r.n }

func (r *timedRing) push(v int32, t time.Time) {
	if r.n == len(r.idx) {
		r.grow()
	}
	p := (r.head + r.n) % len(r.idx)
	r.idx[p], r.at[p] = v, t
	r.n++
}

func (r *timedRing) peek() (int32, time.Time) {
	return r.idx[r.head], r.at[r.head]
}

func (r *timedRing) pop() (int32, time.Time) {
	v, t := r.idx[r.head], r.at[r.head]
	r.head = (r.head + 1) % len(r.idx)
	r.n--
	return v, t
}

func (r *timedRing) grow() {
	size := 2 * len(r.idx)
	if size == 0 {
		size = 64
	}
	idx := make([]int32, size)
	at := make([]time.Time, size)
	for i := 0; i < r.n; i++ {
		p := (r.head + i) % len(r.idx)
		idx[i], at[i] = r.idx[p], r.at[p]
	}
	r.idx, r.at, r.head = idx, at, 0
}
