package controller

import (
	"fmt"

	"tsu/internal/core"
	"tsu/internal/openflow"
)

// SubmitTwoPhase enqueues the update as a tagged two-phase commit —
// the fallback HotNets'14 proposes for instances where waypoint
// enforcement and loop freedom cannot be reconciled by scheduling
// alone, and the strongest consistency available (per-packet
// consistency: every packet traverses exactly one policy, old or new):
//
//	Phase 1 (prepare): install the new policy's rules at every
//	  new-path switch, matching the flow *plus* a VLAN tag at higher
//	  priority. Untagged traffic is untouched. Barrier.
//
//	Phase 2 (commit): atomically rewrite the ingress switch's rule to
//	  tag packets and send them down the new path. From that moment
//	  every packet entering the network rides the tagged rules end to
//	  end; packets already in flight finish on the old rules. Barrier.
//
//	Phase 3 (optional, SubmitOptions.Cleanup): delete the stale
//	  untagged rules from old-path switches that are off the new path.
//
// The price relative to WayUp/Peacock is rule-table state (two rule
// versions coexist during the transition) and the tag header bits —
// the trade the update literature attributes to Reitblatt et al.'s
// two-phase mechanism.
func (e *Engine) SubmitTwoPhase(in *core.Instance, match openflow.Match, tag uint16, opts SubmitOptions) (*Job, error) {
	rounds, err := e.buildTwoPhaseRounds(in, match, tag, opts)
	if err != nil {
		return nil, err
	}
	return e.enqueue(jobSpec{algorithm: "two-phase", plan: layeredExecPlan(rounds), interval: opts.Interval, mode: opts.Mode})
}

// buildTwoPhaseRounds materializes the prepare/commit(/cleanup) rounds
// without admitting anything.
func (e *Engine) buildTwoPhaseRounds(in *core.Instance, match openflow.Match, tag uint16, opts SubmitOptions) ([]execRound, error) {
	if tag == openflow.VLANNone {
		return nil, fmt.Errorf("controller: tag 0x%04x is reserved for untagged traffic", openflow.VLANNone)
	}
	if match.Wildcards&openflow.WildcardDLVLAN == 0 {
		return nil, fmt.Errorf("controller: the flow match must not already pin a VLAN")
	}
	src := in.Src()

	tagged := match
	tagged.Wildcards &^= openflow.WildcardDLVLAN
	tagged.DLVLAN = tag

	// Phase 1: tagged copies of the new policy at every new-path
	// switch except the ingress (the ingress tags-and-forwards in
	// phase 2; a tagged rule there would never match, since packets
	// arrive untagged).
	var prepare execRound
	for i := 1; i+1 < len(in.New); i++ {
		node := in.New[i]
		succ, _ := in.NewSucc(node)
		fm, err := e.c.PathFlowMod(node, succ, tagged, openflow.FlowAdd)
		if err != nil {
			return nil, err
		}
		fm.Priority = e.c.cfg.FlowPriority + 10
		prepare.mods = append(prepare.mods, targetedMod{node: node, fm: fm})
	}

	// Phase 2: flip the ingress — tag, then forward toward the new
	// path's first hop.
	succ, ok := in.NewSucc(src)
	if !ok {
		return nil, fmt.Errorf("controller: source %d has no new-path successor", src)
	}
	commit, err := e.c.PathFlowMod(src, succ, match, openflow.FlowModify)
	if err != nil {
		return nil, err
	}
	commit.Actions = append([]openflow.Action{openflow.ActionSetVLAN{VLAN: tag}}, commit.Actions...)
	commitRound := execRound{mods: []targetedMod{{node: src, fm: commit}}}

	rounds := []execRound{}
	if len(prepare.mods) > 0 {
		rounds = append(rounds, prepare)
	}
	rounds = append(rounds, commitRound)
	if opts.Cleanup {
		if r, ok := cleanupRound(in, match); ok {
			rounds = append(rounds, r)
		}
	}
	return rounds, nil
}
