package controller

import (
	"context"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/simclock"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// TestLoopGroupDecentralizedVirtualClock runs a full decentralized
// update over a fleet whose switches share one switchsim.LoopGroup on
// a virtual clock: expiry sweeps, context teardown and — crucially —
// the peer acks of decentralized execution all ride the shared event
// loops instead of per-switch/per-ack goroutines. The update must
// converge to the new path with exactly one peer message per
// cross-switch DAG edge, and the modelled latencies must show up in
// virtual time.
func TestLoopGroupDecentralizedVirtualClock(t *testing.T) {
	sim := simclock.NewSim(time.Time{})
	stopDriver := sim.AutoAdvance(200 * time.Microsecond)
	defer stopDriver()

	g := topo.Fig1()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrl, err := New(Config{Topology: g, Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := ctrl.Start(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fabric := switchsim.NewFabric(g)
	lg := switchsim.NewLoopGroup(ctx, sim, 2)
	for _, n := range g.Nodes() {
		sw, err := switchsim.NewSwitch(fabric, switchsim.Config{
			Node:           n,
			InstallLatency: netem.Fixed(2 * time.Millisecond),
			PeerLatency:    netem.Fixed(500 * time.Microsecond),
			Clock:          sim,
			Loops:          lg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Connect(ctx, addr); err != nil {
			t.Fatal(err)
		}
		defer sw.Stop()
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	defer waitCancel()
	if err := ctrl.WaitForSwitches(waitCtx, g.NumNodes()); err != nil {
		t.Fatal(err)
	}
	if lg.Members() != g.NumNodes() {
		t.Fatalf("group members = %d, want %d", lg.Members(), g.NumNodes())
	}

	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	p, err := core.PlanByName(in, "peacock", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	installCtx, installCancel := context.WithTimeout(ctx, 60*time.Second)
	defer installCancel()
	if err := ctrl.InstallPath(installCtx, in.Old, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatal(err)
	}
	job, err := ctrl.Engine().SubmitPlan(in, p, flowMatch("10.0.0.2"), SubmitOptions{Mode: ModeDecentralized})
	if err != nil {
		t.Fatal(err)
	}
	jobCtx, jobCancel := context.WithTimeout(ctx, 60*time.Second)
	defer jobCancel()
	if err := job.Wait(jobCtx); err != nil {
		t.Fatal(err)
	}
	if job.State() != JobDone {
		t.Fatalf("job state = %v (err %v)", job.State(), job.Err())
	}

	res := fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if res.Outcome != switchsim.ProbeDelivered || !res.Visited.Equal(in.New) {
		t.Fatalf("post-update probe = %+v, want delivery via %v", res, in.New)
	}
	if got, want := len(job.Installs()), len(p.Nodes); got != want {
		t.Fatalf("installs = %d, want %d", got, want)
	}
	total, _ := job.Messages()
	if want := crossSwitchEdges(p); total.Peer != want {
		t.Fatalf("peer messages = %d, want %d (one per cross-switch edge)", total.Peer, want)
	}
	// Scheduled peer acks pay their latency on the virtual clock, so
	// the job's total virtual duration reflects the modelled delays.
	if got := job.TotalDuration(); got < 2*time.Millisecond {
		t.Fatalf("virtual total duration %v, want >= install latency", got)
	}
}
