package controller

import (
	"context"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/openflow"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

func TestCleanupRoundRemovesStaleRules(t *testing.T) {
	tb := newTestbed(t, topo.Fig1(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tb.ctrl.InstallPath(ctx, topo.Fig1OldPath, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatal(err)
	}

	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	job, err := tb.ctrl.Engine().SubmitOpts(in, sched, flowMatch("10.0.0.2"), SubmitOptions{Cleanup: true})
	if err != nil {
		t.Fatal(err)
	}
	if job.NumRounds() != sched.NumRounds()+1 {
		t.Fatalf("rounds = %d, want %d + cleanup", job.NumRounds(), sched.NumRounds())
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// Old-path-only switches (2, 4, 5, 6) must have empty tables now.
	for _, n := range []topo.NodeID{2, 4, 5, 6} {
		if got := tb.fabric.Switch(n).Table().Len(); got != 0 {
			t.Fatalf("stale rule still on switch %d (%d entries)", n, got)
		}
	}
	// New-path switches keep exactly one rule each, and forwarding
	// follows the new path.
	for _, n := range topo.Fig1NewPath {
		if got := tb.fabric.Switch(n).Table().Len(); got != 1 {
			t.Fatalf("switch %d has %d entries, want 1", n, got)
		}
	}
	res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if !res.Visited.Equal(topo.Fig1NewPath) {
		t.Fatalf("post-cleanup path %v", res.Visited)
	}

	// The cleanup round is flagged in the timings.
	timings := job.Timings()
	last := timings[len(timings)-1]
	if !last.Cleanup {
		t.Fatal("last round not flagged as cleanup")
	}
	for _, rt := range timings[:len(timings)-1] {
		if rt.Cleanup {
			t.Fatal("non-final round flagged as cleanup")
		}
	}
}

func TestCleanupSkippedWhenNothingStale(t *testing.T) {
	tb := newTestbed(t, topo.Linear(4), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Old and new paths cover the same switches (no old-only switch).
	old := topo.Path{1, 2, 3, 4}
	if err := tb.ctrl.InstallPath(ctx, old, flowMatch("10.0.0.2"), ""); err != nil {
		t.Fatal(err)
	}
	in := core.MustInstance(old, old, 0)
	sched := core.OneShot(in) // zero rounds: nothing pending
	job, err := tb.ctrl.Engine().SubmitOpts(in, sched, flowMatch("10.0.0.2"), SubmitOptions{Cleanup: true})
	if err != nil {
		t.Fatal(err)
	}
	if job.NumRounds() != 0 {
		t.Fatalf("no-op update with cleanup got %d rounds", job.NumRounds())
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitJointTwoFlows(t *testing.T) {
	// Two flows over Fig.1: h2 traffic migrates old→new; a second flow
	// (10.0.0.9) moves the opposite way. Rules are keyed by nw_dst so
	// they never interact.
	tb := newTestbed(t, topo.Fig1(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tb.ctrl.InstallPath(ctx, topo.Fig1OldPath, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatal(err)
	}
	if err := tb.ctrl.InstallPath(ctx, topo.Fig1NewPath, flowMatch("10.0.0.9"), "h2"); err != nil {
		t.Fatal(err)
	}

	inA := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	inB := core.MustInstance(topo.Fig1NewPath, topo.Fig1OldPath, topo.Fig1Waypoint)
	ju, err := core.NewJointUpdate([]*core.Instance{inA, inB}, core.MustScheduler(core.AlgoWayUp), 0)
	if err != nil {
		t.Fatal(err)
	}
	job, err := tb.ctrl.Engine().SubmitJoint(ju,
		[]openflow.Match{flowMatch("10.0.0.2"), flowMatch("10.0.0.9")},
		SubmitOptions{Cleanup: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if want := ju.NumRounds() + 1; job.NumRounds() != want {
		t.Fatalf("joint rounds = %d, want %d (incl cleanup)", job.NumRounds(), want)
	}

	// Each flow forwards along its own new path.
	resA := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if !resA.Visited.Equal(topo.Fig1NewPath) {
		t.Fatalf("flow A path %v, want %v", resA.Visited, topo.Fig1NewPath)
	}
	resB := tb.fabric.Inject(1, nwDstOf("10.0.0.9"), 64)
	if !resB.Visited.Equal(topo.Fig1OldPath) {
		t.Fatalf("flow B path %v, want %v", resB.Visited, topo.Fig1OldPath)
	}

	// Round FlowMod counts cover both flows.
	total := 0
	for _, rt := range job.Timings() {
		total += rt.FlowMods
	}
	if want := ju.TotalFlowMods(); total < want {
		t.Fatalf("flowmods executed %d < scheduled %d", total, want)
	}
}

func TestSubmitJointValidation(t *testing.T) {
	tb := newTestbed(t, topo.Fig1(), nil)
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	ju, err := core.NewJointUpdate([]*core.Instance{in}, core.MustScheduler(core.AlgoPeacock), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctrl.Engine().SubmitJoint(ju, nil, SubmitOptions{}); err == nil {
		t.Fatal("match-count mismatch accepted")
	}
}

func TestEngineRoundTimeoutOnSilentSwitch(t *testing.T) {
	// A switch that answers the handshake but then drops barriers
	// forces a round timeout; the job must fail, not hang.
	g := topo.Linear(3)
	tb := newTestbedWithConfig(t, g, Config{Topology: g, RoundTimeout: 300 * time.Millisecond},
		func(n topo.NodeID) switchsim.Config {
			cfg := switchsim.Config{Node: n}
			if n == 2 {
				cfg.Faults = switchsim.Faults{DropBarriers: true}
			}
			return cfg
		})
	// A direct barrier to the faulty switch must time out.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fmod, err := tb.ctrl.PathFlowMod(2, 3, flowMatch("10.0.0.2"), openflow.FlowAdd)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.ctrl.SendFlowMod(2, fmod); err != nil {
		t.Fatal(err)
	}
	bctx, bcancel := context.WithTimeout(ctx, 500*time.Millisecond)
	defer bcancel()
	if err := tb.ctrl.Barrier(bctx, 2); err == nil {
		t.Fatal("barrier to a barrier-dropping switch succeeded")
	}

	// And through the engine: a job touching switch 2 fails on the
	// round timeout.
	upd := core.MustInstance(topo.Path{1, 3}, topo.Path{1, 2, 3}, 0)
	sched, err := core.Peacock(upd)
	if err != nil {
		t.Fatal(err)
	}
	job, err := tb.ctrl.Engine().Submit(upd, sched, flowMatch("10.0.0.5"), 0)
	if err != nil {
		t.Fatal(err)
	}
	jctx, jcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer jcancel()
	if err := job.Wait(jctx); err == nil {
		t.Fatal("job through a silent switch succeeded")
	}
	if job.State() != JobFailed {
		t.Fatalf("state = %v", job.State())
	}
}

func TestFaultDisconnectMidUpdate(t *testing.T) {
	// A switch that dies after its first FlowMod: the engine must fail
	// the job (send error or barrier timeout) and the controller must
	// deregister the datapath.
	g := topo.Linear(3)
	tb := newTestbedWithConfig(t, g, Config{Topology: g, RoundTimeout: 500 * time.Millisecond},
		func(n topo.NodeID) switchsim.Config {
			cfg := switchsim.Config{Node: n}
			if n == 2 {
				cfg.Faults = switchsim.Faults{DisconnectAfterFlowMods: 1}
			}
			return cfg
		})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// First FlowMod consumed by the fault budget.
	fmod, err := tb.ctrl.PathFlowMod(2, 3, flowMatch("10.0.0.2"), openflow.FlowAdd)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.ctrl.SendFlowMod(2, fmod); err != nil {
		t.Fatal(err)
	}
	// The switch processes the FlowMod then disconnects; wait for
	// deregistration.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(tb.ctrl.Datapaths()) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("datapath 2 still registered: %v", tb.ctrl.Datapaths())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := tb.ctrl.Barrier(ctx, 2); err == nil {
		t.Fatal("barrier to a disconnected switch succeeded")
	}
}

func TestEngineProcessesJobsSequentially(t *testing.T) {
	// Two jobs flipping the same flow back and forth: the engine's
	// queue must execute them strictly in order, ending on job 2's
	// policy.
	tb := newTestbed(t, topo.Fig1(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tb.ctrl.InstallPath(ctx, topo.Fig1OldPath, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatal(err)
	}
	forward := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	backward := core.MustInstance(topo.Fig1NewPath, topo.Fig1OldPath, topo.Fig1Waypoint)
	s1, err := core.WayUp(forward)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := core.WayUp(backward)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := tb.ctrl.Engine().Submit(forward, s1, flowMatch("10.0.0.2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := tb.ctrl.Engine().Submit(backward, s2, flowMatch("10.0.0.2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if j1.State() != JobDone {
		t.Fatalf("job 1 state %v after job 2 done", j1.State())
	}
	// Strict ordering: job 1 finished before job 2 started its rounds.
	t1 := j1.Timings()
	t2 := j2.Timings()
	if len(t1) == 0 || len(t2) == 0 {
		t.Fatal("missing timings")
	}
	if t2[0].Started.Before(t1[len(t1)-1].Finished) {
		t.Fatal("job 2 started before job 1's last barrier")
	}
	// Net effect: back on the old path.
	res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if !res.Visited.Equal(topo.Fig1OldPath) {
		t.Fatalf("final path %v, want old path restored", res.Visited)
	}
	// Jobs listing preserves submission order.
	jobs := tb.ctrl.Engine().Jobs()
	if len(jobs) != 2 || jobs[0].ID != j1.ID || jobs[1].ID != j2.ID {
		t.Fatalf("jobs = %v", jobs)
	}
}
