package controller

import (
	"context"
	"net"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/openflow"
	"tsu/internal/simclock"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// TestVirtualClockUpdate puts a full live deployment — controller,
// twelve switches, loopback TCP — on a simclock.Sim driven by
// AutoAdvance, and runs the WayUp update with latencies that would
// cost seconds of wall time on the real clock. The update must
// complete, the reported round timings must be virtual (reflecting the
// modelled latencies), and the final forwarding state must be the new
// path.
func TestVirtualClockUpdate(t *testing.T) {
	sim := simclock.NewSim(time.Time{})
	stopDriver := sim.AutoAdvance(200 * time.Microsecond)
	defer stopDriver()

	g := topo.Fig1()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrl, err := New(Config{Topology: g, Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := ctrl.Start(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fabric := switchsim.NewFabric(g)
	const (
		ctrlLat    = 20 * time.Millisecond
		installLat = 30 * time.Millisecond
	)
	for _, n := range g.Nodes() {
		sw, err := switchsim.NewSwitch(fabric, switchsim.Config{
			Node:           n,
			CtrlLatency:    netem.Fixed(ctrlLat),
			InstallLatency: netem.Fixed(installLat),
			Clock:          sim,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Connect(ctx, addr); err != nil {
			t.Fatal(err)
		}
		defer sw.Stop()
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	defer waitCancel()
	if err := ctrl.WaitForSwitches(waitCtx, g.NumNodes()); err != nil {
		t.Fatal(err)
	}

	match := openflow.ExactNWDst(net.ParseIP("10.0.0.2"))
	installCtx, installCancel := context.WithTimeout(ctx, 60*time.Second)
	defer installCancel()
	if err := ctrl.InstallPath(installCtx, topo.Fig1OldPath, match, "h2"); err != nil {
		t.Fatal(err)
	}

	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	job, err := ctrl.Engine().Submit(in, sched, match, 0)
	if err != nil {
		t.Fatal(err)
	}
	jobCtx, jobCancel := context.WithTimeout(ctx, 60*time.Second)
	defer jobCancel()
	if err := job.Wait(jobCtx); err != nil {
		t.Fatal(err)
	}

	// Every round carries at least one FlowMod, which lags by the
	// control-channel plus install latency on the virtual clock; the
	// job's total must reflect those modelled delays even though no
	// comparable wall time passed.
	if got := job.TotalDuration(); got < ctrlLat+installLat {
		t.Fatalf("virtual total duration %v, want >= %v", got, ctrlLat+installLat)
	}
	for _, rt := range job.Timings() {
		if rt.Duration() <= 0 {
			t.Fatalf("round %d has non-positive virtual duration %v", rt.Round, rt.Duration())
		}
	}
	res := fabric.Inject(1, 0x0a000002, 64)
	if res.Outcome != switchsim.ProbeDelivered || !res.Visited.Equal(topo.Fig1NewPath) {
		t.Fatalf("final path after virtual-time update = %+v", res)
	}
}
