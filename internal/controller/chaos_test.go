package controller

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// TestChaosUpdatesUnderRandomFaults submits a stream of update jobs
// against a fleet where random switches drop barriers or crash
// mid-update. Invariants: the engine never hangs (every job reaches
// done or failed within its round timeout), jobs over healthy switches
// succeed, and the controller's datapath registry stays consistent.
func TestChaosUpdatesUnderRandomFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	g := topo.Fig1()
	faulty := map[topo.NodeID]switchsim.Faults{
		5:  {DropBarriers: true},
		10: {DisconnectAfterFlowMods: 1},
	}
	tb := newTestbedWithConfig(t, g, Config{Topology: g, RoundTimeout: 400 * time.Millisecond},
		func(n topo.NodeID) switchsim.Config {
			return switchsim.Config{
				Node:        n,
				CtrlLatency: netem.Uniform{Min: 0, Max: time.Millisecond},
				Faults:      faulty[n],
			}
		})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Installing across the barrier-dropping switch 5 must fail fast
	// (bounded context), not hang.
	fctx, fcancel := context.WithTimeout(ctx, 600*time.Millisecond)
	err := tb.ctrl.InstallPath(fctx, topo.Fig1OldPath, flowMatch("10.0.0.2"), "h2")
	fcancel()
	if err == nil {
		t.Fatal("install across a barrier-dropping switch succeeded")
	}

	// Healthy-path updates: avoid the faulty switches entirely.
	healthyOld := topo.Path{1, 2, 3, 9}
	healthyNew := topo.Path{1, 7, 8, 3, 9}
	ictx, icancel := context.WithTimeout(ctx, 10*time.Second)
	defer icancel()
	if err := tb.ctrl.InstallPath(ictx, healthyOld, flowMatch("10.0.0.7"), ""); err != nil {
		t.Fatalf("healthy install failed: %v", err)
	}
	for i := 0; i < 5; i++ {
		var in *core.Instance
		if i%2 == 0 {
			in = core.MustInstance(healthyOld, healthyNew, 0)
		} else {
			in = core.MustInstance(healthyNew, healthyOld, 0)
		}
		sched, err := core.Peacock(in)
		if err != nil {
			t.Fatal(err)
		}
		job, err := tb.ctrl.Engine().Submit(in, sched, flowMatch("10.0.0.7"), 0)
		if err != nil {
			t.Fatal(err)
		}
		jctx, jcancel := context.WithTimeout(ctx, 20*time.Second)
		err = job.Wait(jctx)
		jcancel()
		if err != nil {
			t.Fatalf("healthy job %d failed: %v", i, err)
		}
	}

	// Jobs crossing the faulty switches: must terminate (done or
	// failed), never hang.
	for i := 0; i < 4; i++ {
		old := topo.Path{1, 2, 3, 4, 5, 6, 12}
		new_ := topo.Path{1, 7, 8, 3, 9, 10, 11, 12}
		if rng.Intn(2) == 0 {
			old, new_ = new_, old
		}
		in := core.MustInstance(old, new_, 0)
		sched, err := core.Peacock(in)
		if err != nil {
			t.Fatal(err)
		}
		job, err := tb.ctrl.Engine().Submit(in, sched, flowMatch("10.0.0.2"), 0)
		if err != nil {
			t.Fatal(err)
		}
		jctx, jcancel := context.WithTimeout(ctx, 20*time.Second)
		_ = job.Wait(jctx) // failure is acceptable; hanging is not
		jcancel()
		if st := job.State(); st != JobDone && st != JobFailed {
			t.Fatalf("chaos job %d stuck in state %v", i, st)
		}
	}

	// Registry consistency: every remaining datapath answers stats.
	for _, dpid := range tb.ctrl.Datapaths() {
		sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
		_, err := tb.ctrl.FlowStats(sctx, dpid)
		scancel()
		if err != nil && dpid != 5 { // switch 5 answers stats (only barriers are dropped)
			t.Fatalf("datapath %d unresponsive after chaos: %v", dpid, err)
		}
	}
}
