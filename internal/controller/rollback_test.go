package controller

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/metrics"
	"tsu/internal/netem"
	"tsu/internal/simclock"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

// The abort tests migrate the Fig. 1 flow from the old route onto the
// new one. Switches 7..11 are new-path-only (their undo is a
// FlowDelete); 1 and 3 divert and are updated last.
func submitAbortJob(t *testing.T, tb *testbed, mode ExecMode) (*Job, *core.Schedule) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tb.ctrl.InstallPath(ctx, topo.Fig1OldPath, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatalf("installing old path: %v", err)
	}
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.Peacock(in)
	if err != nil {
		t.Fatal(err)
	}
	job, err := tb.ctrl.Engine().SubmitOpts(in, sched, flowMatch("10.0.0.2"), SubmitOptions{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return job, sched
}

// TestCrashMidPlanRollsBackVerified is the fault layer end to end:
// switch 8 crashes after applying its first (and only) update FlowMod,
// wiping its flow table, then reconnects. The job must abort on the
// lost barrier, verify the reverse plan of the dispatched prefix safe,
// execute it, and leave the data plane on the old path.
func TestCrashMidPlanRollsBackVerified(t *testing.T) {
	aborts, rolledBack := metrics.Aborts.Value(), metrics.InstallsRolledBack.Value()
	faults := map[topo.NodeID]switchsim.Faults{
		8: {DisconnectAfterFlowMods: 1, WipeTableOnCrash: true},
	}
	g := topo.Fig1()
	tb := newTestbedWithConfig(t, g, Config{Topology: g, RoundTimeout: 700 * time.Millisecond},
		func(n topo.NodeID) switchsim.Config {
			return switchsim.Config{Node: n, Faults: faults[n]}
		})

	// The crashed switch comes back: reconnect as soon as the fault has
	// fired, well inside the round timeout, so the rollback finds it.
	reconnCtx, reconnCancel := context.WithCancel(context.Background())
	defer reconnCancel()
	sw8 := tb.fabric.Switch(8)
	go func() {
		for sw8.FlowModsApplied() < 1 {
			select {
			case <-reconnCtx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
		time.Sleep(20 * time.Millisecond) // let the dying control loop exit
		if err := sw8.Connect(reconnCtx, tb.addr); err != nil && reconnCtx.Err() == nil {
			t.Errorf("reconnecting crashed switch: %v", err)
		}
	}()

	job, _ := submitAbortJob(t, tb, ModeController)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := job.Wait(ctx); err == nil {
		t.Fatal("job across a crashing switch succeeded")
	}
	f := job.Failure()
	if f == nil {
		t.Fatal("failed job has no failure report")
	}
	if f.Phase != PhaseRolledBack {
		t.Fatalf("phase = %q (report %+v), want %q", f.Phase, f, PhaseRolledBack)
	}
	if !f.RollbackVerified {
		t.Fatal("rollback executed without verification")
	}
	if len(f.RolledBack) == 0 {
		t.Fatal("rolled-back phase with empty rolled-back set")
	}
	// The data plane is back on the old configuration.
	res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if res.Outcome != switchsim.ProbeDelivered || !res.Visited.Equal(topo.Fig1OldPath) {
		t.Fatalf("post-rollback probe = %+v, want delivery along %v", res, topo.Fig1OldPath)
	}
	// New-path-only switches carry no leftover rules: 8 was wiped by
	// the crash (the delete it received is idempotent), the rest were
	// rolled back with FlowDeletes.
	for _, n := range []topo.NodeID{7, 8, 9, 10, 11} {
		if l := tb.fabric.Switch(n).Table().Len(); l != 0 {
			t.Fatalf("switch %d still holds %d rules after rollback", n, l)
		}
	}
	if metrics.Aborts.Value() <= aborts {
		t.Fatal("abort not counted")
	}
	if metrics.InstallsRolledBack.Value() <= rolledBack {
		t.Fatal("rolled-back installs not counted")
	}
}

// TestAbortReportsExactSetsAndStuckNodes pins the bookkeeping: with
// switch 7 dropping every barrier (forward and rollback), the sibling
// installs of round 1 confirm and are recorded, the rollback verifies
// but fails at 7, and the report lists exactly what stayed installed,
// what was undone, and what is stuck.
func TestAbortReportsExactSetsAndStuckNodes(t *testing.T) {
	stalls := metrics.Stalls.Value()
	faults := map[topo.NodeID]switchsim.Faults{7: {DropBarriers: true}}
	g := topo.Fig1()
	tb := newTestbedWithConfig(t, g, Config{Topology: g, RoundTimeout: 400 * time.Millisecond},
		func(n topo.NodeID) switchsim.Config {
			return switchsim.Config{Node: n, Faults: faults[n]}
		})
	job, sched := submitAbortJob(t, tb, ModeController)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := job.Wait(ctx)
	if err == nil {
		t.Fatal("job across a barrier-dropping switch succeeded")
	}
	if !strings.Contains(err.Error(), "rollback failed") {
		t.Fatalf("error %q does not name the failed rollback", err)
	}
	f := job.Failure()
	if f == nil {
		t.Fatal("failed job has no failure report")
	}
	if f.Phase != PhaseRollbackFailed {
		t.Fatalf("phase = %q (report %+v), want %q", f.Phase, f, PhaseRollbackFailed)
	}
	if !f.RollbackVerified {
		t.Fatal("rollback executed without verification")
	}
	// Installed is the exact confirmed set: every round-1 sibling of the
	// dropper confirmed (even though the job was already failing), 7
	// never did, later rounds were never released. Those siblings were
	// then successfully undone, and only 7 is left stuck.
	want := map[topo.NodeID]bool{}
	for _, n := range sched.Rounds[0] {
		if n != 7 {
			want[n] = true
		}
	}
	assertSet := func(name string, got []topo.NodeID) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s = %v, want round-1 siblings of 7 from %v", name, got, sched.Rounds[0])
		}
		for _, n := range got {
			if !want[n] {
				t.Fatalf("%s = %v contains unexpected switch %d", name, got, n)
			}
		}
	}
	assertSet("installed", f.Installed)
	assertSet("rolled back", f.RolledBack)
	if len(f.Stuck) != 1 || f.Stuck[0].Switch != 7 {
		t.Fatalf("stuck = %+v, want exactly switch 7", f.Stuck)
	}
	if metrics.Stalls.Value() <= stalls {
		t.Fatal("stuck job not counted")
	}
}

// newVirtualTestbed builds a testbed whose controller and switches all
// share one simclock.Sim driven by AutoAdvance.
func newVirtualTestbed(t *testing.T, roundTimeout time.Duration, faults map[topo.NodeID]switchsim.Faults) *testbed {
	t.Helper()
	sim := simclock.NewSim(time.Time{})
	stop := sim.AutoAdvance(200 * time.Microsecond)
	t.Cleanup(stop)
	g := topo.Fig1()
	return newTestbedWithConfig(t, g, Config{Topology: g, RoundTimeout: roundTimeout, Clock: sim},
		func(n topo.NodeID) switchsim.Config {
			return switchsim.Config{Node: n, Clock: sim, Faults: faults[n]}
		})
}

// TestVirtualTimeBarrierTimeout is the regression for the wall-clock
// barrier timeout: under a simclock with AutoAdvance, a dropped
// barrier must surface as a round timeout after RoundTimeout *virtual*
// time at near-zero wall cost. Before the fix the engine armed a
// wall-clock context for the barrier wait, so this test blocked for
// the full 30 wall-clock seconds.
func TestVirtualTimeBarrierTimeout(t *testing.T) {
	const roundTimeout = 30 * time.Second
	tb := newVirtualTestbed(t, roundTimeout, map[topo.NodeID]switchsim.Faults{
		7: {DropBarriers: true},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tb.ctrl.InstallPath(ctx, topo.Fig1OldPath, flowMatch("10.0.0.2"), "h2"); err != nil {
		t.Fatalf("installing old path: %v", err)
	}
	// One-shot: all nodes dispatch immediately; only 7's barrier is
	// lost. The unordered installed prefix admits unsafe sub-ideals, so
	// the rollback must be refused and the job reported stuck.
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	job, err := tb.ctrl.Engine().Submit(in, core.OneShot(in), flowMatch("10.0.0.2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer waitCancel()
	err = job.Wait(waitCtx)
	wall := time.Since(start)
	if err == nil {
		t.Fatal("job across a barrier-dropping switch succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap the barrier deadline", err)
	}
	if !strings.Contains(err.Error(), "rollback refused") {
		t.Fatalf("error %q does not name the refused rollback", err)
	}
	if virt := job.TotalDuration(); virt < roundTimeout {
		t.Fatalf("job failed after %v virtual time, want >= %v (timeout ran on the wall clock?)", virt, roundTimeout)
	}
	if wall >= roundTimeout/2 {
		t.Fatalf("virtual-time timeout burned %v wall time (want far below %v)", wall, roundTimeout)
	}
	f := job.Failure()
	if f == nil || f.Phase != PhaseStuck {
		t.Fatalf("failure = %+v, want phase %q", f, PhaseStuck)
	}
	if f.RollbackVerified {
		t.Fatal("refused rollback reported as verified")
	}
	if len(f.Stuck) == 0 {
		t.Fatal("stuck job reports no stuck nodes")
	}
}

// TestVirtualTimeDecentralizedStallRollback is the decentralized twin:
// a switch that installs but never releases its peers stalls the run;
// the controller times out on virtual time, rolls back the down-closed
// confirmed set, and restores the old path — still at near-zero wall
// cost.
func TestVirtualTimeDecentralizedStallRollback(t *testing.T) {
	const roundTimeout = 20 * time.Second
	tb := newVirtualTestbed(t, roundTimeout, map[topo.NodeID]switchsim.Faults{
		7: {DropPeerAcks: true},
	})
	job, _ := submitAbortJob(t, tb, ModeDecentralized)
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	err := job.Wait(ctx)
	wall := time.Since(start)
	if err == nil {
		t.Fatal("stalled decentralized job succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap the stall deadline", err)
	}
	if virt := job.TotalDuration(); virt < roundTimeout {
		t.Fatalf("job failed after %v virtual time, want >= %v", virt, roundTimeout)
	}
	if wall >= roundTimeout/2 {
		t.Fatalf("virtual-time stall burned %v wall time (want far below %v)", wall, roundTimeout)
	}
	f := job.Failure()
	if f == nil {
		t.Fatal("failed job has no failure report")
	}
	if f.Phase != PhaseRolledBack {
		t.Fatalf("phase = %q (report %+v), want %q", f.Phase, f, PhaseRolledBack)
	}
	if !f.RollbackVerified {
		t.Fatal("rollback executed without verification")
	}
	res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if res.Outcome != switchsim.ProbeDelivered || !res.Visited.Equal(topo.Fig1OldPath) {
		t.Fatalf("post-rollback probe = %+v, want delivery along %v", res, topo.Fig1OldPath)
	}
}

// TestChaosProbabilisticFaults soaks the control channel in seeded
// random faults: FlowMods duplicate and reorder (semantics-preserving
// for idempotent MODIFYs), barrier replies drop, duplicate and
// reorder. Every job must terminate — done, or failed with a
// structured report naming a known phase — and faults must actually
// have been injected. Per-switch sources are seeded by node ID, so the
// run is reproducible.
func TestChaosProbabilisticFaults(t *testing.T) {
	injected := metrics.FaultsInjected.Value()
	g := topo.Fig1()
	tb := newTestbedWithConfig(t, g, Config{Topology: g, RoundTimeout: 300 * time.Millisecond},
		func(n topo.NodeID) switchsim.Config {
			return switchsim.Config{
				Node: n,
				Faults: switchsim.Faults{
					FlowModFaults: netem.Faults{DupProb: 0.15, ReorderProb: 0.15, ReorderDelay: netem.Fixed(2 * time.Millisecond)},
					BarrierFaults: netem.Faults{DropProb: 0.10, DupProb: 0.10, ReorderProb: 0.10, ReorderDelay: netem.Fixed(2 * time.Millisecond)},
				},
			}
		})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	// The install barriers ride the same faulty channel; MODIFYs are
	// idempotent, so retry until a clean confirmation.
	installed := false
	for attempt := 0; attempt < 20 && !installed; attempt++ {
		ictx, icancel := context.WithTimeout(ctx, 2*time.Second)
		installed = tb.ctrl.InstallPath(ictx, topo.Fig1OldPath, flowMatch("10.0.0.2"), "h2") == nil
		icancel()
	}
	if !installed {
		t.Fatal("installing old path never confirmed under faults")
	}
	for i := 0; i < 6; i++ {
		oldP, newP := topo.Fig1OldPath, topo.Fig1NewPath
		if i%2 == 1 {
			oldP, newP = newP, oldP
		}
		in := core.MustInstance(oldP, newP, 0)
		sched, err := core.Peacock(in)
		if err != nil {
			t.Fatal(err)
		}
		job, err := tb.ctrl.Engine().Submit(in, sched, flowMatch("10.0.0.2"), 0)
		if err != nil {
			t.Fatal(err)
		}
		jctx, jcancel := context.WithTimeout(ctx, 30*time.Second)
		waitErr := job.Wait(jctx)
		jcancel()
		if st := job.State(); st != JobDone && st != JobFailed {
			t.Fatalf("chaos job %d stuck in state %v", i, st)
		}
		if waitErr != nil {
			f := job.Failure()
			if f == nil {
				t.Fatalf("chaos job %d failed without a failure report: %v", i, waitErr)
			}
			switch f.Phase {
			case PhaseAborted, PhaseRolledBack, PhaseRollbackFailed, PhaseStuck:
			default:
				t.Fatalf("chaos job %d reports unknown phase %q", i, f.Phase)
			}
		}
	}
	if metrics.FaultsInjected.Value() <= injected {
		t.Fatal("no faults were injected")
	}
}
