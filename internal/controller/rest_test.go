package controller

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tsu/internal/core"
	"tsu/internal/switchsim"
	"tsu/internal/topo"
)

func restTestbed(t *testing.T) (*testbed, *httptest.Server) {
	t.Helper()
	tb := newTestbed(t, topo.Fig1(), nil)
	srv := httptest.NewServer(tb.ctrl.RESTHandler())
	t.Cleanup(srv.Close)
	return tb, srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestRESTFullUpdateFlow(t *testing.T) {
	tb, srv := restTestbed(t)

	// Install the old policy via the ofctl_rest-style endpoints, hop by
	// hop — the way the original app would be driven.
	pm := tb.ctrl.Ports()
	for i := 0; i+1 < len(topo.Fig1OldPath); i++ {
		node, succ := topo.Fig1OldPath[i], topo.Fig1OldPath[i+1]
		req := map[string]any{
			"dpid":     uint64(node),
			"priority": 100,
			"match":    map[string]string{"nw_dst": "10.0.0.2"},
			"actions":  []map[string]any{{"type": "OUTPUT", "port": pm.Port(node, succ)}},
		}
		resp, body := postJSON(t, srv.URL+"/stats/flowentry/add", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("flowentry/add %d: %d %s", node, resp.StatusCode, body)
		}
	}
	hostReq := map[string]any{
		"dpid":    uint64(12),
		"match":   map[string]string{"nw_dst": "10.0.0.2"},
		"actions": []map[string]any{{"type": "OUTPUT", "port": pm.HostPort[12]["h2"]}},
	}
	if resp, body := postJSON(t, srv.URL+"/stats/flowentry/add", hostReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("host flowentry: %d %s", resp.StatusCode, body)
	}

	// Submit the paper's update message.
	update := UpdateRequest{
		OldPath:  []uint64{1, 2, 3, 4, 5, 6, 12},
		NewPath:  []uint64{1, 7, 8, 3, 9, 10, 11, 12},
		Waypoint: 3,
		Interval: 0,
		NWDst:    "10.0.0.2",
	}
	resp, body := postJSON(t, srv.URL+"/update", update)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("update: %d %s", resp.StatusCode, body)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Algorithm != "wayup" {
		t.Fatalf("default algorithm = %q, want wayup (waypoint present)", ur.Algorithm)
	}
	if len(ur.Rounds) == 0 {
		t.Fatal("no rounds returned")
	}

	// Poll until done.
	deadline := time.Now().Add(15 * time.Second)
	var st JobStatus
	for {
		if code := getJSON(t, fmt.Sprintf("%s/update/%d", srv.URL, ur.ID), &st); code != http.StatusOK {
			t.Fatalf("status code %d", code)
		}
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("job failed: %+v", st)
	}
	if len(st.Rounds) != len(ur.Rounds) {
		t.Fatalf("status rounds %d, schedule rounds %d", len(st.Rounds), len(ur.Rounds))
	}
	if st.TotalMicros <= 0 {
		t.Fatal("total time missing")
	}

	// Data plane follows the new path now.
	res := tb.fabric.Inject(1, nwDstOf("10.0.0.2"), 64)
	if res.Outcome != switchsim.ProbeDelivered || !res.Visited.Equal(topo.Fig1NewPath) {
		t.Fatalf("post-REST-update probe = %+v", res)
	}

	// Flow table dump via REST.
	var entries []map[string]any
	if code := getJSON(t, srv.URL+"/stats/flow/1", &entries); code != http.StatusOK {
		t.Fatalf("stats/flow code %d", code)
	}
	if len(entries) != 1 {
		t.Fatalf("switch 1 entries = %v", entries)
	}

	// Job list.
	var jobs []JobStatus
	if code := getJSON(t, srv.URL+"/updates", &jobs); code != http.StatusOK || len(jobs) != 1 {
		t.Fatalf("updates list: code %d, %v", code, jobs)
	}

	// Switch list.
	var dpids []uint64
	if code := getJSON(t, srv.URL+"/switches", &dpids); code != http.StatusOK || len(dpids) != 12 {
		t.Fatalf("switches: code %d, %v", code, dpids)
	}
}

func TestRESTValidation(t *testing.T) {
	_, srv := restTestbed(t)
	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"bad-json", "/update", "{", http.StatusBadRequest},
		{"bad-ip", "/update", UpdateRequest{OldPath: []uint64{1, 2}, NewPath: []uint64{1, 2}, NWDst: "nope"}, http.StatusBadRequest},
		{"bad-paths", "/update", UpdateRequest{OldPath: []uint64{1}, NewPath: []uint64{1, 2}, NWDst: "10.0.0.2"}, http.StatusBadRequest},
		{"bad-algo", "/update", UpdateRequest{OldPath: []uint64{1, 2, 3, 4, 5, 6, 12}, NewPath: []uint64{1, 7, 8, 3, 9, 10, 11, 12}, NWDst: "10.0.0.2", Algorithm: "magic"}, http.StatusBadRequest},
		{"wayup-needs-wp", "/update", UpdateRequest{OldPath: []uint64{1, 2, 3, 4, 5, 6, 12}, NewPath: []uint64{1, 7, 8, 3, 9, 10, 11, 12}, NWDst: "10.0.0.2", Algorithm: "wayup"}, http.StatusBadRequest},
		{"flowentry-bad-op", "/stats/flowentry/fry", FlowEntryRequest{}, http.StatusNotFound},
		{"flowentry-bad-ip", "/stats/flowentry/add", map[string]any{"dpid": 1, "match": map[string]string{"nw_dst": "x"}}, http.StatusBadRequest},
		{"flowentry-bad-action", "/stats/flowentry/add", map[string]any{"dpid": 1, "match": map[string]string{"nw_dst": "10.0.0.2"}, "actions": []map[string]any{{"type": "DROP"}}}, http.StatusBadRequest},
		{"flowentry-unknown-dpid", "/stats/flowentry/add", map[string]any{"dpid": 99, "match": map[string]string{"nw_dst": "10.0.0.2"}, "actions": []map[string]any{{"type": "OUTPUT", "port": 1}}}, http.StatusNotFound},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if s, isRaw := c.body.(string); isRaw {
				r, err := http.Post(srv.URL+c.url, "application/json", bytes.NewReader([]byte(s)))
				if err != nil {
					t.Fatal(err)
				}
				r.Body.Close()
				resp = r
			} else {
				resp, body = postJSON(t, srv.URL+c.url, c.body)
			}
			if resp.StatusCode != c.want {
				t.Fatalf("%s: code = %d (%s), want %d", c.url, resp.StatusCode, body, c.want)
			}
		})
	}
}

func TestRESTJobLookupErrors(t *testing.T) {
	_, srv := restTestbed(t)
	if code := getJSON(t, srv.URL+"/update/999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job code = %d", code)
	}
	if code := getJSON(t, srv.URL+"/update/abc", nil); code != http.StatusBadRequest {
		t.Fatalf("bad job id code = %d", code)
	}
	if code := getJSON(t, srv.URL+"/stats/flow/xyz", nil); code != http.StatusBadRequest {
		t.Fatalf("bad dpid code = %d", code)
	}
	if code := getJSON(t, srv.URL+"/stats/flow/77", nil); code != http.StatusNotFound {
		t.Fatalf("unknown dpid code = %d", code)
	}
}

func TestScheduleForSelection(t *testing.T) {
	inWP := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	s, err := ScheduleFor(inWP, "")
	if err != nil || s.Algorithm != "wayup" {
		t.Fatalf("default with wp = %v, %v", s, err)
	}
	inNoWP := core.MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 3}, 0)
	s, err = ScheduleFor(inNoWP, "")
	if err != nil || s.Algorithm != "peacock" {
		t.Fatalf("default without wp = %v, %v", s, err)
	}
	for _, algo := range []string{"wayup", "peacock", "greedy-slf", "oneshot"} {
		in := inWP
		s, err := ScheduleFor(in, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if s.Algorithm != algo {
			t.Fatalf("algorithm = %q, want %q", s.Algorithm, algo)
		}
	}
	if _, err := ScheduleFor(inWP, "nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRESTPolicyInstall(t *testing.T) {
	tb, srv := restTestbed(t)
	req := PolicyRequest{Path: []uint64{1, 2, 3, 4, 5, 6, 12}, NWDst: FlowIPForTest, Host: "h2"}
	resp, body := postJSON(t, srv.URL+"/policy", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policy: %d %s", resp.StatusCode, body)
	}
	res := tb.fabric.Inject(1, nwDstOf(FlowIPForTest), 64)
	if res.Outcome != switchsim.ProbeDelivered || res.Host != "h2" {
		t.Fatalf("probe after policy install = %+v", res)
	}
	// Validation errors.
	for name, bad := range map[string]PolicyRequest{
		"bad-ip":    {Path: []uint64{1, 2}, NWDst: "x"},
		"bad-path":  {Path: []uint64{1}, NWDst: FlowIPForTest},
		"bad-host":  {Path: []uint64{1, 2}, NWDst: FlowIPForTest, Host: "nope"},
		"bad-links": {Path: []uint64{1, 12}, NWDst: FlowIPForTest},
	} {
		resp, _ := postJSON(t, srv.URL+"/policy", bad)
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestRESTTwoPhaseAndCleanup(t *testing.T) {
	tb, srv := restTestbed(t)
	// Old policy via /policy.
	req := PolicyRequest{Path: []uint64{1, 2, 3, 4, 5, 6, 12}, NWDst: FlowIPForTest, Host: "h2"}
	if resp, body := postJSON(t, srv.URL+"/policy", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("policy: %d %s", resp.StatusCode, body)
	}
	update := UpdateRequest{
		OldPath:   []uint64{1, 2, 3, 4, 5, 6, 12},
		NewPath:   []uint64{1, 7, 8, 3, 9, 10, 11, 12},
		Waypoint:  3,
		Algorithm: "two-phase",
		NWDst:     FlowIPForTest,
		Cleanup:   true,
	}
	resp, body := postJSON(t, srv.URL+"/update", update)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("two-phase update: %d %s", resp.StatusCode, body)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Algorithm != "two-phase" || ur.Guarantees != "PerPacketConsistency" {
		t.Fatalf("response = %+v", ur)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		var st JobStatus
		if code := getJSON(t, fmt.Sprintf("%s/update/%d", srv.URL, ur.ID), &st); code != http.StatusOK {
			t.Fatalf("status code %d", code)
		}
		if st.State == "done" {
			if len(st.Rounds) != 3 { // prepare, commit, cleanup
				t.Fatalf("rounds = %d, want 3", len(st.Rounds))
			}
			break
		}
		if st.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	res := tb.fabric.Inject(1, nwDstOf(FlowIPForTest), 64)
	if !res.Visited.Equal(topo.Fig1NewPath) {
		t.Fatalf("final path = %v", res.Visited)
	}
	// Cleanup removed old-only rules.
	for _, n := range []topo.NodeID{2, 4, 5, 6} {
		if tb.fabric.Switch(n).Table().Len() != 0 {
			t.Fatalf("stale rule on switch %d after REST cleanup", n)
		}
	}
}
