package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// FromSpec builds a topology from a compact textual specification, the
// format the command-line tools share so that the controller and the
// switch fleet derive identical port maps:
//
//	fig1           — the paper's Figure 1 demo topology
//	linear:N       — chain of N switches
//	ring:N         — cycle of N switches
//	grid:RxC       — R×C mesh
//	fattree:K      — K-ary fat-tree (K even)
//	reversal:N     — reversal update family (graph holds both paths)
//	staircase:N    — staircase update family
//	nested:N       — nested update family
func FromSpec(spec string) (*Graph, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	switch name {
	case "fig1":
		if hasArg {
			return nil, fmt.Errorf("topo: fig1 takes no argument (got %q)", spec)
		}
		return Fig1(), nil
	case "linear", "ring", "reversal", "staircase", "nested", "fattree":
		n, err := specInt(spec, arg, hasArg)
		if err != nil {
			return nil, err
		}
		return buildSized(name, n)
	case "grid":
		if !hasArg {
			return nil, fmt.Errorf("topo: grid needs RxC (e.g. grid:3x4)")
		}
		rs, cs, ok := strings.Cut(arg, "x")
		if !ok {
			return nil, fmt.Errorf("topo: grid spec %q, want grid:RxC", spec)
		}
		r, err1 := strconv.Atoi(rs)
		c, err2 := strconv.Atoi(cs)
		if err1 != nil || err2 != nil || r < 1 || c < 1 {
			return nil, fmt.Errorf("topo: grid spec %q, want positive RxC", spec)
		}
		return Grid(r, c), nil
	default:
		return nil, fmt.Errorf("topo: unknown topology spec %q", spec)
	}
}

func specInt(spec, arg string, hasArg bool) (int, error) {
	if !hasArg {
		return 0, fmt.Errorf("topo: spec %q needs a size argument", spec)
	}
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("topo: spec %q needs a positive size", spec)
	}
	return n, nil
}

func buildSized(name string, n int) (g *Graph, err error) {
	defer func() {
		// The sized builders panic on out-of-range sizes; surface that
		// as an error for command-line use.
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("%v", r)
		}
	}()
	switch name {
	case "linear":
		return Linear(n), nil
	case "ring":
		return Ring(n), nil
	case "reversal":
		return Reversal(n).Graph, nil
	case "staircase":
		return Staircase(n).Graph, nil
	case "nested":
		return Nested(n).Graph, nil
	case "fattree":
		return FatTree(n), nil
	}
	return nil, fmt.Errorf("topo: unknown sized topology %q", name)
}

// UpdateFromSpec returns the update instance paths of a two-path
// family spec (reversal:N, staircase:N, nested:N), or ok=false for
// plain topologies.
func UpdateFromSpec(spec string) (TwoPathInstance, bool, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	switch name {
	case "reversal", "staircase", "nested":
	default:
		return TwoPathInstance{}, false, nil
	}
	n, err := specInt(spec, arg, hasArg)
	if err != nil {
		return TwoPathInstance{}, false, err
	}
	var inst TwoPathInstance
	err = func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%v", r)
			}
		}()
		switch name {
		case "reversal":
			inst = Reversal(n)
		case "staircase":
			inst = Staircase(n)
		case "nested":
			inst = Nested(n)
		}
		return nil
	}()
	if err != nil {
		return TwoPathInstance{}, false, err
	}
	return inst, true, nil
}
