package topo

import (
	"fmt"
	"math/rand"
)

// FatTree builds the classic k-ary fat-tree datacenter topology
// (Al-Fares et al.): (k/2)² core switches, k pods of k/2 aggregation
// and k/2 edge switches each, with one host attached per edge switch
// (h<edge-id>). Aggregation switch j of every pod connects to cores
// j·(k/2)+1 … (j+1)·(k/2); every edge switch connects to every
// aggregation switch of its pod.
//
// Node numbering: cores 1..(k/2)², then per pod p (0-based) the
// aggregation switches, then its edge switches.
func FatTree(k int) *Graph {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: FatTree(%d): k must be even and >= 2", k))
	}
	half := k / 2
	numCores := half * half
	g := NewGraph()
	core := func(i int) NodeID { return NodeID(i + 1) } // i in [0, numCores)
	agg := func(pod, j int) NodeID {
		return NodeID(numCores + pod*k + j + 1) // j in [0, half)
	}
	edge := func(pod, j int) NodeID {
		return NodeID(numCores + pod*k + half + j + 1)
	}
	for i := 0; i < numCores; i++ {
		g.AddNode(core(i))
	}
	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			g.AddNode(agg(pod, j))
			g.AddNode(edge(pod, j))
		}
		for j := 0; j < half; j++ {
			// Aggregation j uplinks to its core group.
			for c := j * half; c < (j+1)*half; c++ {
				mustLink(g, agg(pod, j), core(c))
			}
			// Full bipartite agg↔edge inside the pod.
			for e := 0; e < half; e++ {
				mustLink(g, agg(pod, j), edge(pod, e))
			}
		}
		for j := 0; j < half; j++ {
			mustHost(g, Host{Name: fmt.Sprintf("h%d", uint64(edge(pod, j))), Attach: edge(pod, j)})
		}
	}
	return g
}

func mustLink(g *Graph, a, b NodeID) {
	if err := g.AddLink(a, b); err != nil {
		panic(err)
	}
}

// FatTreeEdges returns the edge switches of a FatTree(k) graph in
// ascending ID order (the switches hosts attach to).
func FatTreeEdges(g *Graph) []NodeID {
	var out []NodeID
	for _, h := range g.Hosts() {
		out = append(out, h.Attach)
	}
	return out
}

// RandomFatTreePolicy draws an update instance between two random edge
// switches of different pods: the old and new paths climb to two
// different core switches (edge → agg → core → agg → edge), giving
// disjoint middles with shared endpoints — the standard traffic-
// engineering reroute in a datacenter fabric.
func RandomFatTreePolicy(rng *rand.Rand, g *Graph) (TwoPathInstance, error) {
	edges := FatTreeEdges(g)
	if len(edges) < 2 {
		return TwoPathInstance{}, fmt.Errorf("topo: fat-tree has %d edge switches, need >= 2", len(edges))
	}
	src := edges[rng.Intn(len(edges))]
	dst := src
	for dst == src {
		dst = edges[rng.Intn(len(edges))]
	}
	old, err := fatTreeRoute(rng, g, src, dst)
	if err != nil {
		return TwoPathInstance{}, err
	}
	var newPath Path
	for tries := 0; tries < 64; tries++ {
		p, err := fatTreeRoute(rng, g, src, dst)
		if err != nil {
			return TwoPathInstance{}, err
		}
		if !p.Equal(old) {
			newPath = p
			break
		}
	}
	if newPath == nil {
		return TwoPathInstance{}, fmt.Errorf("topo: could not draw a distinct second route %d→%d", src, dst)
	}
	return TwoPathInstance{Graph: g, Old: old, New: newPath}, nil
}

// fatTreeRoute picks a random valley-free route src→dst: up to a random
// aggregation switch, up to a random shared core, down the other side.
// Same-pod pairs route edge→agg→edge.
func fatTreeRoute(rng *rand.Rand, g *Graph, src, dst NodeID) (Path, error) {
	srcAggs := g.Neighbors(src) // edge switches only neighbor aggs
	dstAggs := g.Neighbors(dst)
	if len(srcAggs) == 0 || len(dstAggs) == 0 {
		return nil, fmt.Errorf("topo: switch %d or %d has no uplinks", src, dst)
	}
	// Same pod: one shared aggregation switch suffices.
	shared := intersect(srcAggs, dstAggs)
	if len(shared) > 0 {
		a := shared[rng.Intn(len(shared))]
		return Path{src, a, dst}, nil
	}
	// Pick the upward aggregation switch and one of its cores, then
	// derive the unique downward aggregation switch attached to that
	// core in the destination pod — every (up, core) pair yields a
	// valid route, so no rejection sampling is needed (at k=90 two
	// independently drawn aggs share a core group only 1 time in 45).
	up := srcAggs[rng.Intn(len(srcAggs))]
	cores := coresOf(g, up)
	if len(cores) == 0 {
		return nil, fmt.Errorf("topo: aggregation switch %d has no core uplinks", up)
	}
	c := cores[rng.Intn(len(cores))]
	dstSet := make(map[NodeID]bool, len(dstAggs))
	for _, a := range dstAggs {
		dstSet[a] = true
	}
	for _, down := range g.Neighbors(c) {
		if dstSet[down] {
			return Path{src, up, c, down, dst}, nil
		}
	}
	return nil, fmt.Errorf("topo: no valley-free route %d→%d", src, dst)
}

// coresOf returns an aggregation switch's core uplinks. An aggregation
// switch neighbors only cores and its own pod's edge switches, and
// under this package's numbering every core ID is smaller than every
// aggregation ID while every same-pod edge ID is larger — so the ID
// comparison alone separates them (no host scan; this runs on
// 10k-switch fabrics).
func coresOf(g *Graph, aggSwitch NodeID) []NodeID {
	var out []NodeID
	for _, n := range g.Neighbors(aggSwitch) {
		if n < aggSwitch {
			out = append(out, n)
		}
	}
	return out
}

func intersect(a, b []NodeID) []NodeID {
	set := make(map[NodeID]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	var out []NodeID
	for _, y := range b {
		if set[y] {
			out = append(out, y)
		}
	}
	return out
}
