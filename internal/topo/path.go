package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// Path is an ordered sequence of switches traversed by a flow, in the
// order packets pass them (as in the paper's REST schema: "the integer
// values are ordered in the list in the way they are passed by the
// network packets along the route").
type Path []NodeID

// ParsePath parses a comma- or whitespace-separated list of datapath
// IDs, e.g. "1,2,3" or "1 2 3".
func ParsePath(s string) (Path, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	})
	if len(fields) == 0 {
		return nil, fmt.Errorf("topo: empty path %q", s)
	}
	p := make(Path, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("topo: bad datapath id %q in path %q", f, s)
		}
		p = append(p, NodeID(v))
	}
	return p, nil
}

// String renders the path as "⟨1 2 3⟩"-style plain text: "1->2->3".
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, n := range p {
		parts[i] = strconv.FormatUint(uint64(n), 10)
	}
	return strings.Join(parts, "->")
}

// Src returns the first node. It panics on an empty path.
func (p Path) Src() NodeID { return p[0] }

// Dst returns the last node. It panics on an empty path.
func (p Path) Dst() NodeID { return p[len(p)-1] }

// Contains reports whether n appears on the path.
func (p Path) Contains(n NodeID) bool {
	return p.Index(n) >= 0
}

// Index returns the position of n on the path, or -1.
func (p Path) Index(n NodeID) int {
	for i, m := range p {
		if m == n {
			return i
		}
	}
	return -1
}

// Simple reports whether the path has no repeated node and at least one
// node.
func (p Path) Simple() bool {
	if len(p) == 0 {
		return false
	}
	seen := make(map[NodeID]bool, len(p))
	for _, n := range p {
		if seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}

// Successor returns the node following n on the path and true, or 0 and
// false when n is the last node or absent.
func (p Path) Successor(n NodeID) (NodeID, bool) {
	i := p.Index(n)
	if i < 0 || i+1 >= len(p) {
		return 0, false
	}
	return p[i+1], true
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	c := make(Path, len(p))
	copy(c, p)
	return c
}

// Equal reports whether p and q are the same sequence.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Validate checks the structural invariants required of a routing
// policy path: simple, at least two nodes (a source and a destination).
func (p Path) Validate() error {
	if len(p) < 2 {
		return fmt.Errorf("topo: path %v needs at least source and destination", p)
	}
	if !p.Simple() {
		return fmt.Errorf("topo: path %v is not simple", p)
	}
	return nil
}
