package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLinkCanonical(t *testing.T) {
	l1 := NewLink(5, 2)
	l2 := NewLink(2, 5)
	if l1 != l2 {
		t.Fatalf("NewLink not canonical: %v vs %v", l1, l2)
	}
	if l1.A != 2 || l1.B != 5 {
		t.Fatalf("NewLink order: got %v", l1)
	}
}

func TestLinkHasOther(t *testing.T) {
	l := NewLink(1, 2)
	if !l.Has(1) || !l.Has(2) || l.Has(3) {
		t.Fatalf("Has wrong for %v", l)
	}
	if l.Other(1) != 2 || l.Other(2) != 1 {
		t.Fatalf("Other wrong for %v", l)
	}
}

func TestLinkOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	NewLink(1, 2).Other(9)
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.AddNode(1)
	g.AddNode(1) // idempotent
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
	if err := g.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 2); err != nil { // idempotent
		t.Fatal(err)
	}
	if g.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d, want 1", g.NumLinks())
	}
	if !g.HasLink(2, 1) {
		t.Fatal("HasLink not symmetric")
	}
	if g.Degree(1) != 1 {
		t.Fatalf("Degree(1) = %d, want 1", g.Degree(1))
	}
}

func TestGraphSelfLinkRejected(t *testing.T) {
	g := NewGraph()
	if err := g.AddLink(3, 3); err == nil {
		t.Fatal("self-link accepted")
	}
}

func TestGraphZeroValueUsable(t *testing.T) {
	var g Graph
	g.AddNode(7)
	if !g.HasNode(7) {
		t.Fatal("zero-value graph unusable")
	}
}

func TestGraphHosts(t *testing.T) {
	g := Linear(3)
	if err := g.AddHost(Host{Name: "h1", Attach: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddHost(Host{Name: "hx", Attach: 99}); err == nil {
		t.Fatal("host on unknown switch accepted")
	}
	hs := g.Hosts()
	if len(hs) != 1 || hs[0].Name != "h1" {
		t.Fatalf("Hosts = %v", hs)
	}
}

func TestGraphNodesSorted(t *testing.T) {
	g := NewGraph()
	for _, n := range []NodeID{5, 1, 3, 2, 4} {
		g.AddNode(n)
	}
	nodes := g.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("Nodes not sorted: %v", nodes)
		}
	}
}

func TestGraphLinksDeterministic(t *testing.T) {
	g := Grid(3, 3)
	a := g.Links()
	b := g.Links()
	if len(a) != len(b) {
		t.Fatal("Links length changed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Links not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) != 12 { // 3x3 grid: 2*3 horizontal + 2*3 vertical
		t.Fatalf("grid links = %d, want 12", len(a))
	}
}

func TestConnected(t *testing.T) {
	g := Linear(5)
	if !g.Connected() {
		t.Fatal("linear should be connected")
	}
	g.AddNode(99)
	if g.Connected() {
		t.Fatal("isolated node should break connectivity")
	}
	if !NewGraph().Connected() {
		t.Fatal("empty graph considered connected by convention")
	}
}

func TestShortestPath(t *testing.T) {
	g := Ring(6)
	p, err := g.ShortestPath(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 { // 1-2-3-4 or 1-6-5-4, both length 4
		t.Fatalf("shortest 1→4 on ring(6) = %v (len %d), want 4 nodes", p, len(p))
	}
	if p.Src() != 1 || p.Dst() != 4 {
		t.Fatalf("endpoints wrong: %v", p)
	}
	if !g.ContainsPath(p) {
		t.Fatalf("path %v not in graph", p)
	}
	if _, err := g.ShortestPath(1, 99); err == nil {
		t.Fatal("path to unknown node accepted")
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := Linear(3)
	p, err := g.ShortestPath(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Path{2}) {
		t.Fatalf("self path = %v", p)
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	g := Linear(3)
	g.AddNode(50)
	if _, err := g.ShortestPath(1, 50); err == nil {
		t.Fatal("expected error for unreachable destination")
	}
}

func TestClone(t *testing.T) {
	g := Fig1()
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumLinks() != g.NumLinks() {
		t.Fatal("clone size mismatch")
	}
	if err := c.AddLink(1, 12); err != nil {
		t.Fatal(err)
	}
	if g.HasLink(1, 12) {
		t.Fatal("clone aliases original")
	}
	if len(c.Hosts()) != 2 {
		t.Fatalf("clone hosts = %v", c.Hosts())
	}
}

func TestParsePath(t *testing.T) {
	cases := []struct {
		in   string
		want Path
		ok   bool
	}{
		{"1,2,3", Path{1, 2, 3}, true},
		{"1 2 3", Path{1, 2, 3}, true},
		{"12", Path{12}, true},
		{"", nil, false},
		{"1,x,3", nil, false},
		{"-1,2", nil, false},
	}
	for _, c := range cases {
		got, err := ParsePath(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParsePath(%q) err = %v, ok want %v", c.in, err, c.ok)
		}
		if c.ok && !got.Equal(c.want) {
			t.Fatalf("ParsePath(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPathString(t *testing.T) {
	if s := (Path{1, 2, 3}).String(); s != "1->2->3" {
		t.Fatalf("String = %q", s)
	}
}

func TestPathQueries(t *testing.T) {
	p := Path{4, 7, 9}
	if p.Src() != 4 || p.Dst() != 9 {
		t.Fatal("Src/Dst wrong")
	}
	if p.Index(7) != 1 || p.Index(5) != -1 {
		t.Fatal("Index wrong")
	}
	if !p.Contains(9) || p.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if n, ok := p.Successor(4); !ok || n != 7 {
		t.Fatal("Successor(4) wrong")
	}
	if _, ok := p.Successor(9); ok {
		t.Fatal("Successor of destination should be absent")
	}
	if _, ok := p.Successor(123); ok {
		t.Fatal("Successor of absent node should be absent")
	}
}

func TestPathSimpleValidate(t *testing.T) {
	if !(Path{1, 2, 3}).Simple() {
		t.Fatal("simple path flagged non-simple")
	}
	if (Path{1, 2, 1}).Simple() {
		t.Fatal("repeated node not caught")
	}
	if (Path{}).Simple() {
		t.Fatal("empty path should not be simple")
	}
	if err := (Path{1, 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Path{1}).Validate(); err == nil {
		t.Fatal("single-node path validated")
	}
	if err := (Path{1, 2, 2}).Validate(); err == nil {
		t.Fatal("non-simple path validated")
	}
}

func TestPathCloneIndependent(t *testing.T) {
	p := Path{1, 2, 3}
	c := p.Clone()
	c[0] = 9
	if p[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestFig1Invariants(t *testing.T) {
	g := Fig1()
	if g.NumNodes() != 12 {
		t.Fatalf("Fig1 nodes = %d, want 12", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("Fig1 disconnected")
	}
	for _, p := range []Path{Fig1OldPath, Fig1NewPath} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if !g.ContainsPath(p) {
			t.Fatalf("Fig1 missing path %v", p)
		}
		if !p.Contains(Fig1Waypoint) {
			t.Fatalf("path %v misses waypoint", p)
		}
		if p.Src() != 1 || p.Dst() != 12 {
			t.Fatalf("path %v endpoints wrong", p)
		}
	}
	// Union of both routes covers all 12 switches (as drawn).
	seen := map[NodeID]bool{}
	for _, p := range []Path{Fig1OldPath, Fig1NewPath} {
		for _, n := range p {
			seen[n] = true
		}
	}
	if len(seen) != 12 {
		t.Fatalf("routes cover %d switches, want 12", len(seen))
	}
	hs := g.Hosts()
	if len(hs) != 2 || hs[0].Attach != 1 || hs[1].Attach != 12 {
		t.Fatalf("Fig1 hosts = %v", hs)
	}
}

func TestLinearRingGrid(t *testing.T) {
	if g := Linear(1); g.NumNodes() != 1 || g.NumLinks() != 0 {
		t.Fatal("Linear(1) wrong")
	}
	if g := Linear(5); g.NumLinks() != 4 {
		t.Fatal("Linear(5) wrong")
	}
	if g := Ring(5); g.NumLinks() != 5 {
		t.Fatal("Ring(5) wrong")
	}
	if g := Grid(2, 3); g.NumNodes() != 6 || g.NumLinks() != 7 {
		t.Fatalf("Grid(2,3) wrong: %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
}

func TestBuilderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Linear0":    func() { Linear(0) },
		"Ring2":      func() { Ring(2) },
		"Grid0":      func() { Grid(0, 3) },
		"Reversal3":  func() { Reversal(3) },
		"Staircase4": func() { Staircase(4) },
		"Random3":    func() { RandomTwoPath(rand.New(rand.NewSource(1)), 3, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReversalStructure(t *testing.T) {
	inst := Reversal(6)
	if !inst.Old.Equal(Path{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("old = %v", inst.Old)
	}
	if !inst.New.Equal(Path{1, 5, 4, 3, 2, 6}) {
		t.Fatalf("new = %v", inst.New)
	}
	if !inst.Graph.ContainsPath(inst.New) {
		t.Fatal("graph missing new path")
	}
}

func TestStaircaseStructure(t *testing.T) {
	inst := Staircase(8)
	if !inst.New.Equal(Path{1, 3, 2, 5, 4, 7, 6, 8}) {
		t.Fatalf("staircase new = %v", inst.New)
	}
	if err := inst.New.Validate(); err != nil {
		t.Fatal(err)
	}
	inst = Staircase(9)
	if err := inst.New.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.New.Dst() != 9 {
		t.Fatalf("staircase(9) dst = %v", inst.New.Dst())
	}
}

// TestRandomTwoPathInvariants property-tests the workload generator:
// both paths simple, same endpoints, waypoint interior to both when
// requested, and all path links present in the graph.
func TestRandomTwoPathInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	check := func(seed int64, rawN uint8, wantWP bool) bool {
		n := 4 + int(rawN%60)
		rng := rand.New(rand.NewSource(seed))
		inst := RandomTwoPath(rng, n, wantWP)
		if err := inst.Old.Validate(); err != nil {
			return false
		}
		if err := inst.New.Validate(); err != nil {
			return false
		}
		if inst.Old.Src() != inst.New.Src() || inst.Old.Dst() != inst.New.Dst() {
			return false
		}
		if !inst.Graph.ContainsPath(inst.Old) || !inst.Graph.ContainsPath(inst.New) {
			return false
		}
		if wantWP {
			w := inst.Waypoint
			if w == 0 {
				return false
			}
			for _, p := range []Path{inst.Old, inst.New} {
				i := p.Index(w)
				if i <= 0 || i >= len(p)-1 {
					return false
				}
			}
		} else if inst.Waypoint != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTwoPathDeterministicPerSeed(t *testing.T) {
	a := RandomTwoPath(rand.New(rand.NewSource(42)), 12, true)
	b := RandomTwoPath(rand.New(rand.NewSource(42)), 12, true)
	if !a.Old.Equal(b.Old) || !a.New.Equal(b.New) || a.Waypoint != b.Waypoint {
		t.Fatal("generator not deterministic for fixed seed")
	}
}

func TestNestedStructure(t *testing.T) {
	inst := Nested(10)
	if !inst.New.Equal(Path{1, 9, 6, 3, 10}) {
		t.Fatalf("nested(10) new = %v", inst.New)
	}
	if err := inst.New.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{7, 8, 9, 22, 100} {
		inst := Nested(n)
		if err := inst.New.Validate(); err != nil {
			t.Fatalf("Nested(%d): %v", n, err)
		}
		if inst.New.Dst() != NodeID(n) || inst.New.Src() != 1 {
			t.Fatalf("Nested(%d) endpoints wrong: %v", n, inst.New)
		}
		if !inst.Graph.ContainsPath(inst.New) {
			t.Fatalf("Nested(%d) graph missing new path", n)
		}
	}
}
