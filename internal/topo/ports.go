package topo

// PortMap assigns deterministic OpenFlow port numbers to every switch's
// attachments: ports 1..k go to the switch's neighbors in ascending
// node-ID order, followed by one port per attached host in host
// insertion order. Both the controller (computing FlowMod output
// actions) and the switch simulator (wiring its data-plane ports)
// derive the same mapping from the shared topology, mirroring how the
// demo's Mininet script and Ryu app share the topology file.
type PortMap struct {
	// NeighborPort[s][n] is the port on switch s that faces neighbor n.
	NeighborPort map[NodeID]map[NodeID]uint16
	// PortNeighbor[s][p] is the switch reached from s via port p.
	PortNeighbor map[NodeID]map[uint16]NodeID
	// HostPort[s][h] is the port on switch s that faces attached host h.
	HostPort map[NodeID]map[string]uint16
	// PortHost[s][p] is the host reached from s via port p.
	PortHost map[NodeID]map[uint16]string
}

// NewPortMap derives the canonical port assignment for a graph.
func NewPortMap(g *Graph) *PortMap {
	pm := &PortMap{
		NeighborPort: make(map[NodeID]map[NodeID]uint16),
		PortNeighbor: make(map[NodeID]map[uint16]NodeID),
		HostPort:     make(map[NodeID]map[string]uint16),
		PortHost:     make(map[NodeID]map[uint16]string),
	}
	for _, s := range g.Nodes() {
		pm.NeighborPort[s] = make(map[NodeID]uint16)
		pm.PortNeighbor[s] = make(map[uint16]NodeID)
		pm.HostPort[s] = make(map[string]uint16)
		pm.PortHost[s] = make(map[uint16]string)
		port := uint16(1)
		for _, n := range g.Neighbors(s) {
			pm.NeighborPort[s][n] = port
			pm.PortNeighbor[s][port] = n
			port++
		}
	}
	for _, h := range g.Hosts() {
		s := h.Attach
		port := uint16(len(pm.PortNeighbor[s]) + len(pm.PortHost[s]) + 1)
		pm.HostPort[s][h.Name] = port
		pm.PortHost[s][port] = h.Name
	}
	return pm
}

// Port returns the port on switch s facing neighbor n (0 when absent).
func (pm *PortMap) Port(s, n NodeID) uint16 { return pm.NeighborPort[s][n] }

// NumPorts returns how many ports switch s exposes.
func (pm *PortMap) NumPorts(s NodeID) int {
	return len(pm.PortNeighbor[s]) + len(pm.PortHost[s])
}
