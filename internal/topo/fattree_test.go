package topo

import (
	"math/rand"
	"testing"
)

func TestFatTreeStructure(t *testing.T) {
	g := FatTree(4)
	// k=4: 4 cores, 4 pods × (2 agg + 2 edge) = 20 switches.
	if g.NumNodes() != 20 {
		t.Fatalf("nodes = %d, want 20", g.NumNodes())
	}
	// Links: core-agg 4 pods × 2 agg × 2 cores = 16; agg-edge 4 pods ×
	// 2×2 = 16. Total 32.
	if g.NumLinks() != 32 {
		t.Fatalf("links = %d, want 32", g.NumLinks())
	}
	if !g.Connected() {
		t.Fatal("fat-tree disconnected")
	}
	// One host per edge switch: 8 hosts.
	if len(g.Hosts()) != 8 {
		t.Fatalf("hosts = %d, want 8", len(g.Hosts()))
	}
	// Cores (1..4) have degree k (one uplink from one agg per pod).
	for c := NodeID(1); c <= 4; c++ {
		if g.Degree(c) != 4 {
			t.Fatalf("core %d degree = %d, want 4", c, g.Degree(c))
		}
	}
	// Edge switches neighbor exactly the half aggs of their pod.
	for _, e := range FatTreeEdges(g) {
		if g.Degree(e) != 2 {
			t.Fatalf("edge %d degree = %d, want 2", e, g.Degree(e))
		}
	}
}

func TestFatTreeSizes(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8} {
		g := FatTree(k)
		half := k / 2
		wantNodes := half*half + k*k // cores + k pods × (k/2+k/2)
		if g.NumNodes() != wantNodes {
			t.Fatalf("FatTree(%d) nodes = %d, want %d", k, g.NumNodes(), wantNodes)
		}
		if len(g.Hosts()) != k*half {
			t.Fatalf("FatTree(%d) hosts = %d, want %d", k, len(g.Hosts()), k*half)
		}
	}
}

func TestFatTreePanicsOnOddK(t *testing.T) {
	for _, k := range []int{0, 1, 3, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("FatTree(%d) did not panic", k)
				}
			}()
			FatTree(k)
		}()
	}
}

func TestRandomFatTreePolicy(t *testing.T) {
	g := FatTree(4)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		inst, err := RandomFatTreePolicy(rng, g)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Path{inst.Old, inst.New} {
			if err := p.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !g.ContainsPath(p) {
				t.Fatalf("trial %d: route %v not in graph", trial, p)
			}
		}
		if inst.Old.Src() != inst.New.Src() || inst.Old.Dst() != inst.New.Dst() {
			t.Fatalf("trial %d: endpoint mismatch %v vs %v", trial, inst.Old, inst.New)
		}
		if inst.Old.Equal(inst.New) {
			t.Fatalf("trial %d: routes identical", trial)
		}
		// Valley-free: 3 hops same-pod or 5 hops cross-pod.
		if l := len(inst.Old); l != 3 && l != 5 {
			t.Fatalf("trial %d: route length %d", trial, l)
		}
	}
}

func TestFatTreePoliciesSchedulable(t *testing.T) {
	// Fat-tree reroutes must be schedulable by the core library (the
	// E9-style datacenter workload).
	g := FatTree(4)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		inst, err := RandomFatTreePolicy(rng, g)
		if err != nil {
			t.Fatal(err)
		}
		// The instance is exercised through the core package in
		// integration tests; here pin the structural invariant the
		// schedulers rely on: shared endpoints, simple paths.
		if inst.Old.Src() == inst.Old.Dst() {
			t.Fatal("degenerate route")
		}
	}
}
