// Package topo provides the network topology substrate for transiently
// secure update scheduling: node and link identities, undirected
// switch graphs, simple-path utilities, and the topology generators
// used throughout the experiments (including the paper's Figure 1
// twelve-switch demo topology).
//
// Switches are identified by OpenFlow datapath IDs (NodeID). Graphs are
// small and dense enough that adjacency maps keep the code simple; the
// hot paths of the repository (schedule computation, verification) work
// on paths, not on the full graph.
package topo

import (
	"fmt"
	"sort"
)

// NodeID identifies a switch by its OpenFlow datapath ID. Hosts are not
// nodes; they attach to edge switches (see Host).
type NodeID uint64

// Link is an undirected edge between two switches. Links are stored
// with A < B so that a Link value is canonical and usable as a map key.
type Link struct {
	A, B NodeID
}

// NewLink returns the canonical (ordered) link between a and b.
func NewLink(a, b NodeID) Link {
	if b < a {
		a, b = b, a
	}
	return Link{A: a, B: b}
}

// Has reports whether n is one of the link's endpoints.
func (l Link) Has(n NodeID) bool { return l.A == n || l.B == n }

// Other returns the endpoint of l that is not n. It panics if n is not
// an endpoint; callers are expected to have checked Has.
func (l Link) Other(n NodeID) NodeID {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	panic(fmt.Sprintf("topo: node %d not on link %v", n, l))
}

func (l Link) String() string { return fmt.Sprintf("%d-%d", l.A, l.B) }

// Host is an end host attached to an edge switch, as in the demo setup
// (h1 on s1, h2 on s12).
type Host struct {
	Name   string
	Attach NodeID
}

// Graph is an undirected multigraph-free switch topology. The zero
// value is an empty graph ready for use.
type Graph struct {
	nodes map[NodeID]bool
	adj   map[NodeID]map[NodeID]bool
	hosts []Host
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes: make(map[NodeID]bool),
		adj:   make(map[NodeID]map[NodeID]bool),
	}
}

// AddNode inserts a switch. Adding an existing node is a no-op.
func (g *Graph) AddNode(n NodeID) {
	if g.nodes == nil {
		g.nodes = make(map[NodeID]bool)
		g.adj = make(map[NodeID]map[NodeID]bool)
	}
	if !g.nodes[n] {
		g.nodes[n] = true
		g.adj[n] = make(map[NodeID]bool)
	}
}

// AddLink inserts an undirected link, adding missing endpoints.
// Self-links are rejected.
func (g *Graph) AddLink(a, b NodeID) error {
	if a == b {
		return fmt.Errorf("topo: self-link on node %d", a)
	}
	g.AddNode(a)
	g.AddNode(b)
	g.adj[a][b] = true
	g.adj[b][a] = true
	return nil
}

// AddHost attaches a host to a switch that must already exist.
func (g *Graph) AddHost(h Host) error {
	if !g.nodes[h.Attach] {
		return fmt.Errorf("topo: host %q attaches to unknown switch %d", h.Name, h.Attach)
	}
	g.hosts = append(g.hosts, h)
	return nil
}

// Hosts returns the attached hosts in insertion order.
func (g *Graph) Hosts() []Host {
	out := make([]Host, len(g.hosts))
	copy(out, g.hosts)
	return out
}

// HasNode reports whether n is a switch of the graph.
func (g *Graph) HasNode(n NodeID) bool { return g.nodes[n] }

// HasLink reports whether an undirected link a-b exists.
func (g *Graph) HasLink(a, b NodeID) bool { return g.adj[a][b] }

// NumNodes returns the switch count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the undirected link count.
func (g *Graph) NumLinks() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// Nodes returns all switches in ascending ID order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighbors returns the neighbors of n in ascending ID order.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.adj[n]))
	for m := range g.adj[n] {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Links returns all links in canonical order (sorted by A, then B).
func (g *Graph) Links() []Link {
	seen := make(map[Link]bool)
	out := make([]Link, 0, g.NumLinks())
	for a, nb := range g.adj {
		for b := range nb {
			l := NewLink(a, b)
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Degree returns the number of neighbors of n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// Connected reports whether the graph is connected (the empty graph is
// considered connected).
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	var start NodeID
	for n := range g.nodes {
		start = n
		break
	}
	seen := map[NodeID]bool{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for m := range g.adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return len(seen) == len(g.nodes)
}

// ShortestPath returns one shortest path from src to dst by hop count
// (BFS, deterministic tie-break by ascending neighbor ID), or an error
// if dst is unreachable.
func (g *Graph) ShortestPath(src, dst NodeID) (Path, error) {
	if !g.nodes[src] || !g.nodes[dst] {
		return nil, fmt.Errorf("topo: shortest path %d→%d: unknown endpoint", src, dst)
	}
	if src == dst {
		return Path{src}, nil
	}
	prev := map[NodeID]NodeID{src: src}
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range g.Neighbors(n) {
			if _, ok := prev[m]; ok {
				continue
			}
			prev[m] = n
			if m == dst {
				var rev Path
				for at := dst; at != src; at = prev[at] {
					rev = append(rev, at)
				}
				rev = append(rev, src)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev, nil
			}
			queue = append(queue, m)
		}
	}
	return nil, fmt.Errorf("topo: no path %d→%d", src, dst)
}

// ContainsPath reports whether every consecutive pair of p is a link of
// the graph.
func (g *Graph) ContainsPath(p Path) bool {
	for i := 0; i+1 < len(p); i++ {
		if !g.HasLink(p[i], p[i+1]) {
			return false
		}
	}
	for _, n := range p {
		if !g.HasNode(n) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for n := range g.nodes {
		c.AddNode(n)
	}
	for a, nb := range g.adj {
		for b := range nb {
			c.adj[a][b] = true
		}
	}
	c.hosts = append(c.hosts, g.hosts...)
	return c
}
