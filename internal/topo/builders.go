package topo

import (
	"fmt"
	"math/rand"
)

// Fig1Waypoint is the waypoint switch of the paper's Figure 1 ("Black
// Node s3 is the waypoint").
const Fig1Waypoint NodeID = 3

// Fig1OldPath and Fig1NewPath reconstruct the solid (old) and dashed
// (new) routes of Figure 1. The text fixes twelve switches, h1 on s1,
// h2 on s12 and the waypoint s3 on both routes; the exact drawn
// permutation is not recoverable from the paper text, so the
// reconstruction routes the old policy over switches 1..6 and the new
// policy over 7..11, both through the waypoint.
var (
	Fig1OldPath = Path{1, 2, 3, 4, 5, 6, 12}
	Fig1NewPath = Path{1, 7, 8, 3, 9, 10, 11, 12}
)

// Fig1 builds the paper's Figure 1 demo topology: 12 switches, the old
// and new routes as links, and hosts h1 (s1) and h2 (s12).
func Fig1() *Graph {
	g := NewGraph()
	for n := NodeID(1); n <= 12; n++ {
		g.AddNode(n)
	}
	for _, p := range []Path{Fig1OldPath, Fig1NewPath} {
		for i := 0; i+1 < len(p); i++ {
			if err := g.AddLink(p[i], p[i+1]); err != nil {
				panic(err) // static paths; cannot self-link
			}
		}
	}
	mustHost(g, Host{Name: "h1", Attach: 1})
	mustHost(g, Host{Name: "h2", Attach: 12})
	return g
}

func mustHost(g *Graph, h Host) {
	if err := g.AddHost(h); err != nil {
		panic(err)
	}
}

// Linear builds a chain topology 1-2-...-n, the canonical substrate for
// the two-path update model (nodes are identified with their old-path
// position).
func Linear(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("topo: Linear(%d): need n >= 1", n))
	}
	g := NewGraph()
	g.AddNode(1)
	for i := 2; i <= n; i++ {
		if err := g.AddLink(NodeID(i-1), NodeID(i)); err != nil {
			panic(err)
		}
	}
	return g
}

// Ring builds a cycle topology 1-2-...-n-1.
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("topo: Ring(%d): need n >= 3", n))
	}
	g := Linear(n)
	if err := g.AddLink(NodeID(n), 1); err != nil {
		panic(err)
	}
	return g
}

// Grid builds a rows×cols mesh with row-major IDs starting at 1.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("topo: Grid(%d,%d): need positive dims", rows, cols))
	}
	g := NewGraph()
	id := func(r, c int) NodeID { return NodeID(r*cols + c + 1) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(id(r, c))
			if c > 0 {
				if err := g.AddLink(id(r, c-1), id(r, c)); err != nil {
					panic(err)
				}
			}
			if r > 0 {
				if err := g.AddLink(id(r-1, c), id(r, c)); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// TwoPathInstance is a randomly generated update scenario: a topology
// containing an old and a new simple path between a common source and
// destination, optionally sharing a waypoint. It is the workload
// generator for the scheduling experiments (E3, E4).
type TwoPathInstance struct {
	Graph    *Graph
	Old, New Path
	Waypoint NodeID // 0 when the instance has no waypoint constraint
}

// RandomTwoPath generates an instance over n switches using rng. The
// old path is ⟨1..k⟩ for k = oldLen; the new path is a random simple
// path from 1 to k over the full node set (it may revisit old-path
// nodes in any order — the hard cases for loop freedom). If waypoint is
// true, a shared interior node is selected as waypoint and both paths
// are forced through it.
//
// The generator guarantees: both paths simple, same endpoints, and (if
// requested) the waypoint strictly interior to both.
func RandomTwoPath(rng *rand.Rand, n int, waypoint bool) TwoPathInstance {
	if n < 4 {
		panic(fmt.Sprintf("topo: RandomTwoPath(n=%d): need n >= 4", n))
	}
	old := make(Path, n)
	for i := range old {
		old[i] = NodeID(i + 1)
	}
	src, dst := old[0], old[n-1]

	var wp NodeID
	if waypoint {
		wp = old[1+rng.Intn(n-2)] // strictly interior on the old path
	}

	// Interior candidates for the new path: every node except the
	// endpoints. A random subset, in random order, forms the new route;
	// the waypoint (if any) is forced in.
	interior := make([]NodeID, 0, n-2)
	for _, v := range old[1 : n-1] {
		interior = append(interior, v)
	}
	rng.Shuffle(len(interior), func(i, j int) { interior[i], interior[j] = interior[j], interior[i] })
	keep := rng.Intn(len(interior) + 1)
	chosen := interior[:keep]
	if wp != 0 {
		found := false
		for _, v := range chosen {
			if v == wp {
				found = true
				break
			}
		}
		if !found {
			chosen = append(chosen, wp)
		}
	}
	newPath := make(Path, 0, len(chosen)+2)
	newPath = append(newPath, src)
	newPath = append(newPath, chosen...)
	newPath = append(newPath, dst)

	g := NewGraph()
	for _, v := range old {
		g.AddNode(v)
	}
	for _, p := range []Path{old, newPath} {
		for i := 0; i+1 < len(p); i++ {
			if err := g.AddLink(p[i], p[i+1]); err != nil {
				panic(err)
			}
		}
	}
	return TwoPathInstance{Graph: g, Old: old, New: newPath, Waypoint: wp}
}

// Reversal builds the adversarial family where the new path visits the
// old path's interior in reverse order: old ⟨1..n⟩, new
// ⟨1, n-1, n-2, ..., 2, n⟩. Strong loop freedom struggles here while
// relaxed loop freedom finishes in a constant number of rounds.
func Reversal(n int) TwoPathInstance {
	if n < 4 {
		panic(fmt.Sprintf("topo: Reversal(%d): need n >= 4", n))
	}
	old := make(Path, n)
	for i := range old {
		old[i] = NodeID(i + 1)
	}
	newPath := make(Path, 0, n)
	newPath = append(newPath, 1)
	for v := n - 1; v >= 2; v-- {
		newPath = append(newPath, NodeID(v))
	}
	newPath = append(newPath, NodeID(n))
	return instanceFromPaths(old, newPath, 0)
}

// Staircase builds the interleaved adversarial family old ⟨1..n⟩, new
// ⟨1, 3, 2, 5, 4, 7, 6, ..., n⟩: every second new edge points backward
// on the old path, forcing dependency chains for strong loop freedom.
func Staircase(n int) TwoPathInstance {
	if n < 5 {
		panic(fmt.Sprintf("topo: Staircase(%d): need n >= 5", n))
	}
	old := make(Path, n)
	for i := range old {
		old[i] = NodeID(i + 1)
	}
	newPath := Path{1}
	// Pairs (2k+1, 2k): visit the odd node, then step back to the even
	// node, then jump two ahead.
	for hi := 3; hi < n; hi += 2 {
		newPath = append(newPath, NodeID(hi), NodeID(hi-1))
	}
	newPath = append(newPath, NodeID(n))
	return instanceFromPaths(old, newPath, 0)
}

// Nested builds the family that separates strong from relaxed loop
// freedom by round count: old ⟨1..n⟩, new ⟨1, n-1, n-4, n-7, ..., n⟩.
// Every new edge between interior targets jumps back by three, so the
// two skipped old-path switches keep forwarding into the span forever;
// under strong loop freedom each backward rule may only activate after
// the next inner one (Θ(n) rounds, even for the exact-optimal
// scheduler), while relaxed loop freedom finishes in three rounds:
// once the source shortcuts to n-1, the whole interior is off the walk
// and flips at once.
func Nested(n int) TwoPathInstance {
	if n < 7 {
		panic(fmt.Sprintf("topo: Nested(%d): need n >= 7", n))
	}
	old := make(Path, n)
	for i := range old {
		old[i] = NodeID(i + 1)
	}
	newPath := Path{1}
	for v := n - 1; v >= 2; v -= 3 {
		newPath = append(newPath, NodeID(v))
	}
	newPath = append(newPath, NodeID(n))
	return instanceFromPaths(old, newPath, 0)
}

// Comb builds the branch-parallel family that separates round
// barriers from ack-driven dependency plans: the old path runs along
// a spine ⟨1, 2, ..., 2k+1⟩ and the new path detours every even spine
// switch through its own fresh chain of length chainLen —
//
//	old  1 ──── 2 ──── 3 ──── 4 ──── 5 ...
//	new  1 ─ d₁…d_L ─ 3 ─ d₁…d_L ─ 5 ...
//
// Each of the k detours is independent of every other: the true
// dependency of odd spine switch 2i+1 is only its own detour chain
// gaining rules, so a sparse plan has depth 2 while lock-step rounds
// (strong loop freedom updates one detour position per round) need
// chainLen+1 barriers — the instance where a single slow switch
// stalling every unrelated branch costs the most.
func Comb(k, chainLen int) TwoPathInstance {
	if k < 1 || chainLen < 1 {
		panic(fmt.Sprintf("topo: Comb(%d, %d): need k >= 1 and chainLen >= 1", k, chainLen))
	}
	spine := 2*k + 1
	old := make(Path, spine)
	for i := range old {
		old[i] = NodeID(i + 1)
	}
	newPath := Path{1}
	for i := 0; i < k; i++ {
		for j := 1; j <= chainLen; j++ {
			newPath = append(newPath, NodeID(spine+i*chainLen+j))
		}
		newPath = append(newPath, NodeID(2*i+3))
	}
	return instanceFromPaths(old, newPath, 0)
}

func instanceFromPaths(old, newPath Path, wp NodeID) TwoPathInstance {
	g := NewGraph()
	for _, v := range old {
		g.AddNode(v)
	}
	for _, v := range newPath {
		g.AddNode(v)
	}
	for _, p := range []Path{old, newPath} {
		for i := 0; i+1 < len(p); i++ {
			if err := g.AddLink(p[i], p[i+1]); err != nil {
				panic(err)
			}
		}
	}
	return TwoPathInstance{Graph: g, Old: old, New: newPath, Waypoint: wp}
}
