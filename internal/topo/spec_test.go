package topo

import "testing"

func TestFromSpecValid(t *testing.T) {
	cases := map[string]int{ // spec → expected node count
		"fig1":        12,
		"linear:5":    5,
		"ring:6":      6,
		"grid:2x3":    6,
		"reversal:8":  8,
		"staircase:9": 9,
		"nested:10":   10,
	}
	for spec, nodes := range cases {
		g, err := FromSpec(spec)
		if err != nil {
			t.Fatalf("FromSpec(%q): %v", spec, err)
		}
		if g.NumNodes() != nodes {
			t.Fatalf("FromSpec(%q) nodes = %d, want %d", spec, g.NumNodes(), nodes)
		}
	}
}

func TestFromSpecInvalid(t *testing.T) {
	for _, spec := range []string{
		"", "bogus", "fig1:3", "linear", "linear:x", "linear:-1", "linear:0",
		"grid", "grid:3", "grid:ax2", "grid:0x3", "ring:2", "nested:3",
	} {
		if _, err := FromSpec(spec); err == nil {
			t.Fatalf("FromSpec(%q) accepted", spec)
		}
	}
}

func TestUpdateFromSpec(t *testing.T) {
	inst, ok, err := UpdateFromSpec("reversal:8")
	if err != nil || !ok {
		t.Fatalf("reversal:8: ok=%v err=%v", ok, err)
	}
	if inst.Old.Src() != 1 || inst.Old.Dst() != 8 {
		t.Fatalf("instance = %+v", inst)
	}
	if _, ok, err := UpdateFromSpec("fig1"); ok || err != nil {
		t.Fatalf("fig1 should not be a two-path spec (ok=%v err=%v)", ok, err)
	}
	if _, _, err := UpdateFromSpec("nested:2"); err == nil {
		t.Fatal("nested:2 accepted")
	}
	if _, _, err := UpdateFromSpec("reversal:x"); err == nil {
		t.Fatal("reversal:x accepted")
	}
}
