package core_test

import (
	"fmt"

	"tsu/internal/core"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

// ExampleWayUp schedules a waypoint-preserving update and verifies it.
func ExampleWayUp() {
	in, _ := core.NewInstance(
		topo.Path{1, 2, 3, 4, 5}, // old route, firewall at 3
		topo.Path{1, 6, 3, 7, 5}, // new route, same firewall
		3,
	)
	sched, _ := core.WayUp(in)
	fmt.Println(sched)
	fmt.Println(verify.Guarantees(in, sched, verify.Options{}).OK())
	// Output:
	// wayup[3 rounds: {6 7} {3} {1}]
	// true
}

// ExamplePeacock shows relaxed-loop-freedom scheduling collapsing an
// adversarial migration into three rounds.
func ExamplePeacock() {
	inst := topo.Reversal(16)
	in, _ := core.NewInstance(inst.Old, inst.New, 0)
	sched, _ := core.Peacock(in)
	fmt.Println(sched.NumRounds(), "rounds for", in.NumPending(), "switches")
	// Output:
	// 3 rounds for 15 switches
}

// ExampleOneShot demonstrates why naive updates are unsafe: the
// verifier exhibits a reachable transient state that loops.
func ExampleOneShot() {
	in, _ := core.NewInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 0)
	report := verify.Schedule(in, core.OneShot(in), core.RelaxedLoopFreedom, verify.Options{})
	fmt.Println(report.OK())
	fmt.Println(report.FirstViolation().Violated)
	// Output:
	// false
	// RelaxedLoopFreedom
}

// ExampleOptimal finds the provably minimal round count for a small
// instance.
func ExampleOptimal() {
	in, _ := core.NewInstance(topo.Path{1, 2, 3, 4, 5}, topo.Path{1, 4, 3, 2, 5}, 0)
	sched, _ := core.Optimal(in, core.NoBlackhole|core.RelaxedLoopFreedom)
	fmt.Println(sched.NumRounds())
	// Output:
	// 3
}

// ExampleFeasible decides whether waypoint enforcement and loop
// freedom can be reconciled at all for an instance.
func ExampleFeasible() {
	in, _ := core.NewInstance(topo.Path{1, 2, 4, 6, 8}, topo.Path{1, 4, 2, 6, 8}, 4)
	ok, _ := core.Feasible(in, core.NoBlackhole|core.WaypointEnforcement|core.RelaxedLoopFreedom)
	fmt.Println(ok)
	// Output:
	// true
}
