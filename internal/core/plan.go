package core

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"

	"tsu/internal/topo"
)

// Plan is a dependency DAG of per-switch updates: node i's FlowMod may
// be issued as soon as every dependency's barrier reply has arrived —
// per-node barriers instead of per-round barriers. It is the
// generalization of Schedule's global-barrier rounds: a round schedule
// converts losslessly to a *layered* plan (every switch of round r
// depends on every switch of round r-1, see PlanFromSchedule), while a
// sparse plan keeps only the edges a property proof needs, so a single
// slow switch stalls just its own dependents instead of the whole
// update.
//
// # Reachable transient states
//
// During execution a node is *issued* once all its dependencies are
// confirmed, and its FlowMod takes effect at an arbitrary instant
// between issue and barrier reply. The rule states reachable under
// every interleaving are exactly the down-closed node sets (order
// ideals) of the DAG: if D is the confirmed set (down-closed by
// construction) then any subset of the issued frontier may have taken
// effect, and D ∪ (subset of frontier) is again down-closed;
// conversely any down-closed S is reached by confirming S minus its
// maximal elements and letting exactly max(S) — an antichain cut —
// take effect. For a layered plan the ideals are "all earlier layers
// plus any subset of the current layer": precisely the round
// semantics, which is why layered-plan verification and exploration
// are bit-identical to the round machinery.
//
// Nodes are stored in topological order: every dependency index is
// strictly smaller than the node's own index (Validate enforces this,
// and the wire codec relies on it).
type Plan struct {
	// Algorithm names the scheduler that produced the plan.
	Algorithm string

	// Guarantees is the property set promised to hold in every
	// reachable transient state (every order ideal) of this plan.
	Guarantees Property

	// LoopFreedomCompromised mirrors Schedule.LoopFreedomCompromised.
	LoopFreedomCompromised bool

	// Sparse marks plans whose edge set was pruned below the layered
	// closure (emitted by a PlanScheduler).
	Sparse bool

	// Rollback marks reverse plans produced by Reverse: nodes *undo*
	// their switch's update, so the network starts from the installed
	// prefix and walks back toward the old configuration. Verification
	// and exploration interpret an ideal I of a rollback plan as the
	// network state base∖I where base is the set of switches the plan
	// covers. Rollback plans cover a subset of the instance's pending
	// set (Validate relaxes the exact-cover check) and never cross the
	// wire — rollback always executes controller-driven.
	Rollback bool

	// Nodes holds one entry per pending switch, in topological order.
	Nodes []PlanNode
}

// PlanNode is one per-switch update of a Plan.
type PlanNode struct {
	// Switch receives this node's FlowMod.
	Switch topo.NodeID

	// Deps lists the indices (into Plan.Nodes, each strictly smaller
	// than this node's own index) whose barriers must arrive before
	// this node's FlowMod is issued. Sorted ascending, no duplicates.
	Deps []int
}

// PlanScheduler is the optional scheduler capability of emitting a
// genuinely sparse dependency plan — edges only where the scheduler's
// own safety argument needs ordering. Schedulers without it are
// covered by PlanFromSchedule's lossless layered conversion.
type PlanScheduler interface {
	// Plan computes a dependency plan for the instance; props as in
	// Scheduler.Schedule.
	Plan(in *Instance, props Property) (*Plan, error)
}

// PlanFromSchedule converts a round schedule to its layered plan:
// every switch of round r depends on every switch of round r-1
// (transitively, on all earlier rounds). The conversion is lossless —
// the plan's order ideals are exactly the schedule's reachable round
// states, and Rounds recovers the original rounds.
func PlanFromSchedule(s *Schedule) *Plan {
	p := &Plan{
		Algorithm:              s.Algorithm,
		Guarantees:             s.Guarantees,
		LoopFreedomCompromised: s.LoopFreedomCompromised,
	}
	total := 0
	for _, r := range s.Rounds {
		total += len(r)
	}
	p.Nodes = make([]PlanNode, 0, total)
	prevStart, prevEnd := 0, 0
	for _, round := range s.Rounds {
		start := len(p.Nodes)
		for _, v := range round {
			var deps []int
			if prevEnd > prevStart {
				deps = make([]int, 0, prevEnd-prevStart)
				for d := prevStart; d < prevEnd; d++ {
					deps = append(deps, d)
				}
			}
			p.Nodes = append(p.Nodes, PlanNode{Switch: v, Deps: deps})
		}
		prevStart, prevEnd = start, len(p.Nodes)
	}
	return p
}

// NumNodes returns the number of per-switch updates in the plan.
func (p *Plan) NumNodes() int { return len(p.Nodes) }

// NumEdges returns the total number of dependency edges.
func (p *Plan) NumEdges() int {
	e := 0
	for _, n := range p.Nodes {
		e += len(n.Deps)
	}
	return e
}

// layerOf returns each node's layer — the longest dependency chain
// ending at it, roots at 0 — and the plan depth (number of layers).
func (p *Plan) layerOf() ([]int, int) {
	layer := make([]int, len(p.Nodes))
	depth := 0
	for i, n := range p.Nodes {
		l := 0
		for _, d := range n.Deps {
			if layer[d]+1 > l {
				l = layer[d] + 1
			}
		}
		layer[i] = l
		if l+1 > depth {
			depth = l + 1
		}
	}
	return layer, depth
}

// Depth returns the number of layers — the length, in installs, of the
// longest dependency chain. A layered plan's depth is its round count.
func (p *Plan) Depth() int {
	_, depth := p.layerOf()
	return depth
}

// NodeLayers returns each node's layer, aligned with Nodes — the
// per-node view behind Layers, exposed for executors that track their
// own node metadata (the controller engine).
func (p *Plan) NodeLayers() []int {
	layer, _ := p.layerOf()
	return layer
}

// Width returns the size of the largest layer — the plan's peak
// install parallelism.
func (p *Plan) Width() int {
	layer, depth := p.layerOf()
	if depth == 0 {
		return 0
	}
	counts := make([]int, depth)
	for _, l := range layer {
		counts[l]++
	}
	w := 0
	for _, c := range counts {
		if c > w {
			w = c
		}
	}
	return w
}

// CriticalPath returns the number of barrier waits on the longest
// dependency chain — Depth()-1, the count of sequential
// ack-before-issue hops before the last install of the chain can be
// sent. Zero for plans whose installs all dispatch immediately.
func (p *Plan) CriticalPath() int {
	if d := p.Depth(); d > 0 {
		return d - 1
	}
	return 0
}

// Layers groups the switches by layer (longest-path depth), each layer
// in node order. For a layered plan this reproduces the rounds; for a
// sparse plan it is the plan's natural display form.
func (p *Plan) Layers() [][]topo.NodeID {
	layer, depth := p.layerOf()
	out := make([][]topo.NodeID, depth)
	for i, n := range p.Nodes {
		out[layer[i]] = append(out[layer[i]], n.Switch)
	}
	return out
}

// Rounds reports whether the plan is layered — its dependency closure
// equals the all-earlier-layers closure, so its order ideals are
// exactly round states — and, when it is, returns the rounds. Sparse
// plans return (nil, false).
func (p *Plan) Rounds() ([][]topo.NodeID, bool) {
	n := len(p.Nodes)
	if n == 0 {
		return nil, true
	}
	layer, depth := p.layerOf()
	words := (n + 63) / 64
	// closure[i] = the set of nodes reachable through deps from i.
	closure := make([]uint64, n*words)
	for i, nd := range p.Nodes {
		ci := closure[i*words : (i+1)*words]
		for _, d := range nd.Deps {
			cd := closure[d*words : (d+1)*words]
			for w := range ci {
				ci[w] |= cd[w]
			}
			ci[d>>6] |= 1 << (uint(d) & 63)
		}
	}
	// prefix[l] = all nodes in layers < l.
	prefix := make([]uint64, words)
	for l := 0; l < depth; l++ {
		for i := range p.Nodes {
			if layer[i] != l {
				continue
			}
			ci := closure[i*words : (i+1)*words]
			for w := range prefix {
				if ci[w]&prefix[w] != prefix[w] {
					return nil, false
				}
			}
		}
		for i := range p.Nodes {
			if layer[i] == l {
				prefix[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	rounds := make([][]topo.NodeID, depth)
	for i, nd := range p.Nodes {
		rounds[layer[i]] = append(rounds[layer[i]], nd.Switch)
	}
	return rounds, true
}

// Schedule returns the round-schedule view of a layered plan, or
// (nil, false) for a sparse plan. It is the inverse of
// PlanFromSchedule.
func (p *Plan) Schedule() (*Schedule, bool) {
	rounds, ok := p.Rounds()
	if !ok {
		return nil, false
	}
	return &Schedule{
		Rounds:                 rounds,
		Algorithm:              p.Algorithm,
		Guarantees:             p.Guarantees,
		LoopFreedomCompromised: p.LoopFreedomCompromised,
	}, true
}

// String renders the plan shape compactly, e.g.
// "peacock[plan 7 nodes 5 edges depth 2 width 5 sparse]".
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[plan %d nodes %d edges depth %d width %d",
		p.Algorithm, p.NumNodes(), p.NumEdges(), p.Depth(), p.Width())
	if p.Sparse {
		b.WriteString(" sparse")
	}
	b.WriteByte(']')
	return b.String()
}

// Validate checks the structural contract between a plan and its
// instance: nodes are in topological order (deps sorted ascending,
// unique, strictly below the node), no switch appears twice, and the
// node set is exactly the instance's pending set. Rollback plans
// relax the last check to a subset — they uninstall only the prefix
// that had been installed when the forward plan aborted.
func (p *Plan) Validate(in *Instance) error {
	seen := make(map[topo.NodeID]bool, len(p.Nodes))
	for i, n := range p.Nodes {
		if seen[n.Switch] {
			return fmt.Errorf("core: switch %d planned twice", n.Switch)
		}
		seen[n.Switch] = true
		if !in.NeedsUpdate(n.Switch) {
			return fmt.Errorf("core: switch %d planned but needs no update", n.Switch)
		}
		prev := -1
		for _, d := range n.Deps {
			if d <= prev {
				return fmt.Errorf("core: plan node %d deps not strictly ascending", i)
			}
			if d >= i {
				return fmt.Errorf("core: plan node %d depends on node %d (not topological)", i, d)
			}
			prev = d
		}
	}
	if !p.Rollback && len(seen) != in.NumPending() {
		return fmt.Errorf("core: plan covers %d of %d pending switches", len(seen), in.NumPending())
	}
	return nil
}

// Reverse builds the rollback plan for an aborted execution of p:
// installed[i] reports whether node i's FlowMod took effect before the
// abort. The installed set must be an order ideal (down-closed — a
// dependency of an installed node is itself installed); executions
// that only dispatch after all dependencies confirm produce exactly
// such prefixes. The result uninstalls the installed nodes in the
// opposite order: reverse node j undoes forward node installed[last-j],
// and depends on the (reversed positions of the) installed forward
// nodes that depended on it — each forward edge u→v with both ends
// installed becomes the reverse edge v'→u'. The reverse plan's order
// ideals are the complements (within the installed set) of the forward
// plan's sub-ideals, so every transient state of a verified rollback
// is a state the forward plan could already reach on its way up.
//
// The second result maps reverse node index to forward node index.
func (p *Plan) Reverse(installed []bool) (*Plan, []int, error) {
	if len(installed) != len(p.Nodes) {
		return nil, nil, fmt.Errorf("core: Reverse: installed covers %d of %d nodes", len(installed), len(p.Nodes))
	}
	if p.Rollback {
		return nil, nil, fmt.Errorf("core: Reverse of a rollback plan")
	}
	// Position of forward node i in the reverse plan, -1 if absent.
	pos := make([]int, len(p.Nodes))
	n := 0
	for i, nd := range p.Nodes {
		pos[i] = -1
		if !installed[i] {
			continue
		}
		for _, d := range nd.Deps {
			if !installed[d] {
				return nil, nil, fmt.Errorf("core: Reverse: installed set not down-closed: node %d (switch %d) installed but dependency %d (switch %d) is not",
					i, p.Nodes[i].Switch, d, p.Nodes[d].Switch)
			}
		}
		n++
	}
	rev := &Plan{
		Algorithm:              p.Algorithm,
		Guarantees:             p.Guarantees,
		LoopFreedomCompromised: p.LoopFreedomCompromised,
		Sparse:                 p.Sparse,
		Rollback:               true,
		Nodes:                  make([]PlanNode, 0, n),
	}
	fwd := make([]int, 0, n)
	// Emit installed nodes in descending forward order: every forward
	// successor (index > i) lands at a smaller reverse index, keeping
	// the topological invariant.
	for i := len(p.Nodes) - 1; i >= 0; i-- {
		if !installed[i] {
			continue
		}
		pos[i] = len(rev.Nodes)
		rev.Nodes = append(rev.Nodes, PlanNode{Switch: p.Nodes[i].Switch})
		fwd = append(fwd, i)
	}
	// Reverse each installed forward edge d→i into i'→d' (reverse node
	// pos[d] depends on pos[i]). Forward deps are ascending in d, so
	// walking nodes in forward order appends each reverse node's deps
	// in descending pos[i] order... collect then sort.
	for i, nd := range p.Nodes {
		if !installed[i] {
			continue
		}
		for _, d := range nd.Deps {
			rn := &rev.Nodes[pos[d]]
			rn.Deps = append(rn.Deps, pos[i])
		}
	}
	for j := range rev.Nodes {
		sortedUniqueInts(&rev.Nodes[j].Deps)
	}
	return rev, fwd, nil
}

// BaseState returns the network state a rollback plan starts from: all
// switches the plan covers marked updated. An ideal I of the rollback
// plan corresponds to network state BaseState∖I.
func (p *Plan) BaseState(in *Instance) State {
	s := in.NewState()
	for _, nd := range p.Nodes {
		if i := in.NodeIndex(nd.Switch); i >= 0 {
			s.Set(i)
		}
	}
	return s
}

// VisitIdeals enumerates every order ideal (down-closed node set) of
// the plan exactly once — the plan's reachable transient states. The
// enumeration is a DFS over include/exclude decisions on minimal
// elements, so consecutive callbacks change the current set one node
// at a time: flip(i, on) reports each single-node change (pair it with
// Walker.Flip for incremental re-walks), and visit is called once per
// ideal, with the current set equal to that ideal. visit returning
// false aborts; VisitIdeals reports whether the enumeration ran to
// completion. The DFS is deterministic: branches always pick the
// smallest eligible node index.
func (p *Plan) VisitIdeals(flip func(node int, on bool), visit func() bool) bool {
	n := len(p.Nodes)
	words := (n + 63) / 64
	scratch := make([]uint64, 2*words)
	included, excluded := scratch[:words], scratch[words:]
	has := func(s []uint64, i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }
	set := func(s []uint64, i int) { s[i>>6] |= 1 << (uint(i) & 63) }
	unset := func(s []uint64, i int) { s[i>>6] &^= 1 << (uint(i) & 63) }
	eligible := func(i int) bool {
		if has(included, i) || has(excluded, i) {
			return false
		}
		for _, d := range p.Nodes[i].Deps {
			if !has(included, d) {
				return false
			}
		}
		return true
	}
	var rec func() bool
	rec = func() bool {
		m := -1
		for i := 0; i < n; i++ {
			if eligible(i) {
				m = i
				break
			}
		}
		if m == -1 {
			return visit()
		}
		set(included, m)
		flip(m, true)
		if !rec() {
			return false
		}
		flip(m, false)
		unset(included, m)
		set(excluded, m)
		if !rec() {
			return false
		}
		unset(excluded, m)
		return true
	}
	return rec()
}

// PlanRun is the reusable bookkeeping of an ack-driven dispatcher over
// a plan's DAG: it tracks per-node unmet-dependency counts and hands
// out newly released nodes as completions arrive. The successor
// adjacency is flattened at construction; Reset and Complete allocate
// nothing (callers pass and reuse the ready buffer), so the per-barrier
// hot path of the controller engine — and of the explorer's sampled
// linear extensions — is allocation-free in steady state.
//
// A PlanRun is single-goroutine state; the engine serializes
// completions through its ack loop before touching it.
type PlanRun struct {
	numDeps   []int32
	succStart []int32
	succ      []int32
	indeg     []int32
	remaining int
}

// NewPlanRun builds dispatch bookkeeping for the plan. The returned
// run is unstarted; call Reset before the first Complete.
func NewPlanRun(p *Plan) *PlanRun {
	n := len(p.Nodes)
	r := &PlanRun{
		numDeps:   make([]int32, n),
		succStart: make([]int32, n+1),
		indeg:     make([]int32, n),
	}
	for i, nd := range p.Nodes {
		r.numDeps[i] = int32(len(nd.Deps))
		for _, d := range nd.Deps {
			r.succStart[d+1]++
		}
	}
	for i := 0; i < n; i++ {
		r.succStart[i+1] += r.succStart[i]
	}
	r.succ = make([]int32, r.succStart[n])
	fill := make([]int32, n)
	copy(fill, r.succStart[:n])
	for i, nd := range p.Nodes {
		for _, d := range nd.Deps {
			r.succ[fill[d]] = int32(i)
			fill[d]++
		}
	}
	return r
}

// NumNodes returns the number of plan nodes the run tracks.
func (r *PlanRun) NumNodes() int { return len(r.numDeps) }

// Remaining returns how many nodes have not yet completed.
func (r *PlanRun) Remaining() int { return r.remaining }

// Reset re-arms the run and appends the initially released nodes (no
// dependencies) to ready, returning the extended slice. With a
// pre-grown buffer it does not allocate.
func (r *PlanRun) Reset(ready []int) []int {
	copy(r.indeg, r.numDeps)
	r.remaining = len(r.numDeps)
	for i, d := range r.indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	return ready
}

// Complete records node i's barrier reply and appends every node it
// releases (dependencies now all confirmed) to ready, returning the
// extended slice. With a pre-grown buffer it does not allocate.
func (r *PlanRun) Complete(i int, ready []int) []int {
	r.remaining--
	for _, s := range r.succ[r.succStart[i]:r.succStart[i+1]] {
		r.indeg[s]--
		if r.indeg[s] == 0 {
			ready = append(ready, int(s))
		}
	}
	return ready
}

// maxSparseCheckStates bounds the exhaustive walk-property proof
// SparsePlan runs on a derived plan; larger ideal spaces rest on the
// walk-projection argument plus a seeded sampled spot-check.
const maxSparseCheckStates = 1 << 20

// sparseSpotSamples is the number of seeded linear extensions the
// spot-check replays when the ideal space exceeds the exhaustive
// budget.
const sparseSpotSamples = 64

// SparsePlan derives a sparse dependency plan from a round schedule
// using the dependency reasoning the walk-based schedulers (Peacock,
// GreedySLF) already encode, then proves it safe before returning it:
//
//   - Rule-availability edges: a switch v that is on the old path
//     depends on every new-path-only switch along its new-rule chain
//     (the maximal run of new-only pending switches its new successor
//     chain enters). Those are the only switches that can transiently
//     lack a rule, and v's flip is what routes the forwarding walk
//     into them — nothing else ever reaches them, so no other
//     ordering involving them is needed (Peacock's L1).
//   - Ordering edges: the walk-relevant switches (those on the old
//     path) keep exactly the relative order the schedule gave them —
//     each depends on every walk-relevant switch of the previous
//     walk-relevant round. Projected onto these switches, the plan's
//     order ideals are therefore precisely the schedule's round
//     states, so the scheduler's own per-round safety argument (L2's
//     forward landings, GreedySLF's double-edge test) carries over.
//
// What the derivation drops is the global barrier: a new-only switch
// no longer gates unrelated branches, only the consumer whose chain
// needs its rule.
//
// Soundness. In any order ideal S of the derived DAG the forwarding
// walk equals the walk of a schedule-reachable round state: the walk
// enters a new-only chain only through its flipped consumer, whose
// chain edges force the whole chain into S (down-closure), so the
// walk is a function of S's walk-relevant projection — and the
// ordering edges make that projection exactly a round prefix plus a
// subset of one round. Every walk-based guarantee (blackhole, relaxed
// loop freedom, waypoint) therefore carries over from the schedule.
// Strong loop freedom additionally constrains rules at unreachable
// switches, where early new-only flips add edges round semantics
// delayed; SparsePlan decides it with the polynomial double-edge test
// per walk-relevant round, with every new-only switch modelled as
// permanently in flight (a superset of the reachable rule graphs).
// The walk properties are additionally proven exhaustively — every
// order ideal through Walker.Check — whenever the ideal space fits
// the budget, and spot-checked over seeded linear extensions past it.
// Any failed or refuted check falls back to the layered plan, so
// SparsePlan never weakens the schedule's contract.
func SparsePlan(in *Instance, s *Schedule) *Plan {
	layered := PlanFromSchedule(s)
	n := len(layered.Nodes)
	if n == 0 {
		return layered
	}
	sparse := &Plan{
		Algorithm:              s.Algorithm,
		Guarantees:             s.Guarantees,
		LoopFreedomCompromised: s.LoopFreedomCompromised,
		Sparse:                 true,
		Nodes:                  make([]PlanNode, 0, n),
	}
	idxOf := make(map[topo.NodeID]int, n)
	onOld := func(v topo.NodeID) bool { return in.OnOld(v) }
	// prevWalk tracks the node indices of the last round that
	// contained walk-relevant switches.
	var prevWalk, curWalk []int
	for _, round := range s.Rounds {
		curWalk = curWalk[:0]
		for _, v := range round {
			i := len(sparse.Nodes)
			idxOf[v] = i
			var deps []int
			if onOld(v) {
				deps = append(deps, prevWalk...)
				// Rule-availability: follow v's new-rule chain through
				// new-only pending switches.
				for w, ok := in.NewSucc(v); ok && in.NewOnly(w) && in.NeedsUpdate(w); w, ok = in.NewSucc(w) {
					if j, scheduled := idxOf[w]; scheduled {
						deps = append(deps, j)
					}
				}
				curWalk = append(curWalk, i)
			}
			sortedUniqueInts(&deps)
			sparse.Nodes = append(sparse.Nodes, PlanNode{Switch: v, Deps: deps})
		}
		if len(curWalk) > 0 {
			prevWalk = append(prevWalk[:0], curWalk...)
		}
	}
	if err := sparse.Validate(in); err != nil {
		return layered
	}
	if _, layeredAlready := sparse.Rounds(); layeredAlready {
		// No edge was actually pruned; keep the canonical layered form.
		return layered
	}
	if !sparseSafe(in, sparse, s) {
		return layered
	}
	return sparse
}

// sparseSafe decides whether the derived sparse plan provably keeps
// the schedule's guarantees (see the soundness note on SparsePlan).
func sparseSafe(in *Instance, p *Plan, s *Schedule) bool {
	props := s.Guarantees
	if props == 0 {
		return true
	}
	if props.Has(StrongLoopFreedom) && !sparseStrongLFSafe(in, s) {
		return false
	}
	walkProps := props &^ StrongLoopFreedom
	if walkProps == 0 {
		return true
	}
	if ok, complete := planWalkCheck(in, p, walkProps, maxSparseCheckStates); complete {
		return ok
	}
	// Ideal space past the exhaustive budget: soundness rests on the
	// walk-projection argument; the seeded spot-check guards the
	// implementation.
	return planSpotCheck(in, p, walkProps)
}

// sparseStrongLFSafe runs the polynomial double-edge test per
// walk-relevant round with every new-only pending switch modelled as
// permanently in flight — a superset of the rule graphs any sparse
// ideal can produce (removing a new-only switch's rule only removes
// edges), so passing proves strong loop freedom for the sparse plan.
func sparseStrongLFSafe(in *Instance, s *Schedule) bool {
	var newOnly []topo.NodeID
	for _, v := range in.Pending() {
		if in.NewOnly(v) {
			newOnly = append(newOnly, v)
		}
	}
	done := in.NewState()
	inflight := make([]topo.NodeID, 0, in.NumPending())
	for _, round := range s.Rounds {
		inflight = inflight[:0]
		for _, v := range round {
			if !in.NewOnly(v) {
				inflight = append(inflight, v)
			}
		}
		if len(inflight) == 0 {
			continue
		}
		walkCount := len(inflight)
		inflight = append(inflight, newOnly...)
		if !in.RoundSafeStrongLF(done, inflight) {
			return false
		}
		in.Mark(done, inflight[:walkCount]...)
	}
	return true
}

// sortedUniqueInts sorts *xs ascending and removes duplicates in place.
func sortedUniqueInts(xs *[]int) {
	s := *xs
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	*xs = out
}

// planWalkCheck exhaustively checks props in every order ideal of the
// plan, up to budget states. complete reports whether the verdict is
// decisive: either a violation was found (ok false) or the full ideal
// space was enumerated clean (ok true); complete false means the
// budget ran out first.
func planWalkCheck(in *Instance, p *Plan, props Property, budget int) (ok, complete bool) {
	w := in.NewWalker()
	idx := make([]int, len(p.Nodes))
	for i, nd := range p.Nodes {
		idx[i] = in.NodeIndex(nd.Switch)
	}
	states := 0
	violated := false
	finished := p.VisitIdeals(
		func(node int, _ bool) { w.Flip(idx[node]) },
		func() bool {
			states++
			if states > budget {
				return false
			}
			if w.Check(props) != 0 {
				violated = true
				return false
			}
			return true
		})
	if violated {
		return false, true
	}
	if !finished {
		return false, false
	}
	return true, true
}

// planSpotCheck replays sparseSpotSamples seeded linear extensions of
// the plan, checking props after every event (each prefix is an order
// ideal). It is the cheap insurance behind the structural soundness
// argument for plans whose ideal space exceeds the exhaustive budget.
func planSpotCheck(in *Instance, p *Plan, props Property) bool {
	w := in.NewWalker()
	idx := make([]int, len(p.Nodes))
	for i, nd := range p.Nodes {
		idx[i] = in.NodeIndex(nd.Switch)
	}
	rng := rand.New(rand.NewSource(1))
	run := NewPlanRun(p)
	ready := make([]int, 0, len(p.Nodes))
	for s := 0; s < sparseSpotSamples; s++ {
		w.Reset(nil)
		if w.Check(props) != 0 {
			return false
		}
		ready = run.Reset(ready[:0])
		for len(ready) > 0 {
			k := rng.Intn(len(ready))
			i := ready[k]
			ready[k] = ready[len(ready)-1]
			ready = run.Complete(i, ready[:len(ready)-1])
			w.Flip(idx[i])
			if w.Check(props) != 0 {
				return false
			}
		}
	}
	return true
}

// sparsePlanner wraps a Scheduler whose round construction justifies
// the SparsePlan derivation, adding the PlanScheduler capability.
type sparsePlanner struct{ Scheduler }

// Plan implements PlanScheduler via the scheduler's own rounds.
func (sp sparsePlanner) Plan(in *Instance, props Property) (*Plan, error) {
	s, err := sp.Schedule(in, props)
	if err != nil {
		return nil, err
	}
	return SparsePlan(in, s), nil
}

// PlanByName resolves name through the registry ("" selects
// DefaultAlgorithm) and computes an execution plan. When sparse is set
// and the scheduler implements PlanScheduler the sparse DAG is
// returned; otherwise the schedule's lossless layered plan.
func PlanByName(in *Instance, name string, props Property, sparse bool) (*Plan, error) {
	if name == "" {
		name = DefaultAlgorithm(in)
	}
	sch, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if sparse {
		if ps, ok := sch.(PlanScheduler); ok {
			return ps.Plan(in, props)
		}
	}
	s, err := sch.Schedule(in, props)
	if err != nil {
		return nil, err
	}
	return PlanFromSchedule(s), nil
}

// IdealStates enumerates the plan's reachable transient states as
// instance States, ascending by (popcount, node-index mask) — the
// analogue of enumerating a round's subsets. Intended for tests and
// small plans; it materializes every ideal. Plans with more than 64
// nodes return nil.
func (p *Plan) IdealStates(in *Instance) []State {
	if len(p.Nodes) > 64 {
		return nil
	}
	var masks []uint64
	var cur uint64
	p.VisitIdeals(
		func(node int, on bool) {
			if on {
				cur |= 1 << uint(node)
			} else {
				cur &^= 1 << uint(node)
			}
		},
		func() bool {
			masks = append(masks, cur)
			return true
		})
	for i := 1; i < len(masks); i++ {
		for j := i; j > 0 && idealLess(masks[j], masks[j-1]); j-- {
			masks[j-1], masks[j] = masks[j], masks[j-1]
		}
	}
	out := make([]State, len(masks))
	for k, m := range masks {
		st := in.NewState()
		for i := 0; i < len(p.Nodes); i++ {
			if m&(1<<uint(i)) != 0 {
				in.Mark(st, p.Nodes[i].Switch)
			}
		}
		out[k] = st
	}
	return out
}

func idealLess(a, b uint64) bool {
	ca, cb := bits.OnesCount64(a), bits.OnesCount64(b)
	if ca != cb {
		return ca < cb
	}
	return a < b
}
