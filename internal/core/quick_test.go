package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tsu/internal/topo"
)

// TestQuickSchedulerContract property-tests the full scheduler suite:
// for arbitrary generated instances, every scheduler's output is a
// valid partition of the pending set and exhaustively satisfies its
// declared guarantees in every reachable transient state.
func TestQuickSchedulerContract(t *testing.T) {
	check := func(seed int64, rawN uint8, withWaypoint bool) bool {
		n := 4 + int(rawN%10)
		rng := rand.New(rand.NewSource(seed))
		ti := topo.RandomTwoPath(rng, n, withWaypoint)
		in := MustInstance(ti.Old, ti.New, ti.Waypoint)

		schedulers := []func(*Instance) (*Schedule, error){
			Peacock,
			GreedySLF,
			func(in *Instance) (*Schedule, error) { return Sequential(in, NoBlackhole|RelaxedLoopFreedom) },
		}
		if withWaypoint {
			schedulers = append(schedulers, WayUp)
		}
		for _, schedule := range schedulers {
			s, err := schedule(in)
			if err != nil {
				return false
			}
			if err := s.Validate(in); err != nil {
				return false
			}
			props := s.Guarantees
			done := in.NewState()
			for _, round := range s.Rounds {
				if len(round) > 16 {
					return true // exhaustive check infeasible; sizes here keep rounds small
				}
				if bruteForceRound(in, done, round, props) != 0 {
					return false
				}
				in.Mark(done, round...)
			}
			walk, outcome := in.Walk(done)
			if outcome != Reached || !walk.Equal(in.New) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWalkDeterminism: the forwarding walk is a pure function of
// the updated-set — repeated evaluation agrees, and the walk's length
// is bounded by the node count plus one (a revisit ends it).
func TestQuickWalkDeterminism(t *testing.T) {
	check := func(seed int64, rawN uint8, mask uint16) bool {
		n := 4 + int(rawN%12)
		rng := rand.New(rand.NewSource(seed))
		ti := topo.RandomTwoPath(rng, n, false)
		in := MustInstance(ti.Old, ti.New, 0)
		st := in.NewState()
		for i, v := range in.Pending() {
			if mask&(1<<uint(i%16)) != 0 && i < 16 {
				in.Mark(st, v)
			}
		}
		w1, o1 := in.Walk(st)
		w2, o2 := in.Walk(st)
		if o1 != o2 || !w1.Equal(w2) {
			return false
		}
		return len(w1) <= len(in.Nodes())+1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubsetClosure: round safety is downward closed — if the
// checker accepts a round, it accepts every subset of it (the property
// the optimal solver's pruning relies on).
func TestQuickSubsetClosure(t *testing.T) {
	check := func(seed int64, rawN uint8, sub uint16) bool {
		n := 4 + int(rawN%8)
		rng := rand.New(rand.NewSource(seed))
		ti := topo.RandomTwoPath(rng, n, true)
		in := MustInstance(ti.Old, ti.New, ti.Waypoint)
		round := in.Pending()
		if len(round) == 0 || len(round) > 12 {
			return true
		}
		props := NoBlackhole | WaypointEnforcement | RelaxedLoopFreedom
		cex, exact := in.CheckRound(nil, round, props, 0)
		if !exact || cex != nil {
			return true // full round unsafe: nothing to check
		}
		var subset []topo.NodeID
		for i, v := range round {
			if i < 16 && sub&(1<<uint(i)) != 0 {
				subset = append(subset, v)
			}
		}
		subCex, subExact := in.CheckRound(nil, subset, props, 0)
		return subExact && subCex == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
