//go:build !race

package core

import (
	"testing"

	"tsu/internal/topo"
)

// TestWalkAllocs pins the forwarding-walk allocation budget:
// Instance.Walk allocates exactly the returned path (≤ 1 alloc), and
// the Walker's incremental Flip/Check cycle allocates nothing — the
// hot loops of the explorer and verifier run allocation-free.
func TestWalkAllocs(t *testing.T) {
	ti := topo.Reversal(64)
	in := MustInstance(ti.Old, ti.New, 0)
	pending := in.Pending()
	st := in.StateOf(pending[:len(pending)/2]...)

	if got := testing.AllocsPerRun(200, func() {
		in.Walk(st)
	}); got > 1 {
		t.Fatalf("Instance.Walk = %.1f allocs/op, want <= 1 (the returned path)", got)
	}

	props := NoBlackhole | RelaxedLoopFreedom | StrongLoopFreedom
	w := in.NewWalker()
	w.Reset(nil)
	i := in.NodeIndex(pending[len(pending)/2])
	if got := testing.AllocsPerRun(200, func() {
		w.Flip(i)
		w.Check(props)
		w.Flip(i)
		w.Check(props)
	}); got != 0 {
		t.Fatalf("Walker Flip+Check = %.1f allocs/op, want 0", got)
	}

	rc := NewRoundChecker()
	s, err := Peacock(in)
	if err != nil {
		t.Fatal(err)
	}
	done := in.NewState()
	rc.Check(in, done, s.Rounds[0], NoBlackhole|RelaxedLoopFreedom, 0) // warm the buffers
	if got := testing.AllocsPerRun(200, func() {
		rc.Check(in, done, s.Rounds[0], NoBlackhole|RelaxedLoopFreedom, 0)
	}); got != 0 {
		t.Fatalf("RoundChecker.Check (safe round) = %.1f allocs/op, want 0", got)
	}
}

// TestPlanRunAllocs pins the ack-driven dispatcher's per-barrier hot
// path at zero steady-state allocations: with the successor adjacency
// flattened at construction and the ready buffer pre-grown, a full
// Reset-and-drain cycle over the plan — one Complete per barrier
// reply — allocates nothing.
func TestPlanRunAllocs(t *testing.T) {
	ti := topo.Reversal(64)
	in := MustInstance(ti.Old, ti.New, 0)
	s, err := Peacock(in)
	if err != nil {
		t.Fatal(err)
	}
	p := SparsePlan(in, s)
	run := NewPlanRun(p)
	ready := make([]int, 0, p.NumNodes())
	queue := make([]int, 0, p.NumNodes())
	drain := func() {
		ready = run.Reset(ready[:0])
		queue = append(queue[:0], ready...)
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			ready = run.Complete(i, ready[:0])
			queue = append(queue, ready...)
		}
	}
	drain() // warm the buffers
	if run.Remaining() != 0 {
		t.Fatalf("drain left %d nodes", run.Remaining())
	}
	if got := testing.AllocsPerRun(200, drain); got != 0 {
		t.Fatalf("PlanRun Reset+Complete drain = %.1f allocs/op, want 0", got)
	}
}
