package core

import (
	"testing"

	"tsu/internal/topo"
)

func TestPlanDraftAddEdge(t *testing.T) {
	in := fig1Instance(t)
	d := NewPlanDraft(in)
	if d.NumNodes() != len(in.Pending()) {
		t.Fatalf("draft has %d nodes, want %d", d.NumNodes(), len(in.Pending()))
	}
	if d.NumEdges() != 0 || d.Depth() != 1 {
		t.Fatalf("empty draft: edges=%d depth=%d, want 0 and 1", d.NumEdges(), d.Depth())
	}
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if err := d.AddEdge(1, 2); err != nil {
		t.Fatalf("AddEdge(1,2): %v", err)
	}
	if !d.HasEdge(0, 1) || d.HasEdge(1, 0) {
		t.Fatal("HasEdge direction confused")
	}
	if d.Depth() != 3 {
		t.Fatalf("depth after chain = %d, want 3", d.Depth())
	}
	for _, bad := range [][2]int{{2, 0}, {1, 1}, {0, 1}, {-1, 0}, {0, d.NumNodes()}} {
		if err := d.AddEdge(bad[0], bad[1]); err == nil {
			t.Errorf("AddEdge(%d,%d) accepted; want cycle/self-loop/dup/range error", bad[0], bad[1])
		}
	}
	if d.NumEdges() != 2 {
		t.Fatalf("rejected edges mutated draft: %d edges", d.NumEdges())
	}
}

func TestPlanDraftDepthWithEdge(t *testing.T) {
	in := fig1Instance(t)
	d := NewPlanDraft(in)
	if got := d.DepthWithEdge(0, 1); got != 2 {
		t.Fatalf("DepthWithEdge(0,1) on empty draft = %d, want 2", got)
	}
	// Probing must not mutate.
	if d.NumEdges() != 0 || d.Depth() != 1 {
		t.Fatal("DepthWithEdge mutated the draft")
	}
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := d.DepthWithEdge(1, 2); got != 3 {
		t.Fatalf("DepthWithEdge(1,2) = %d, want 3", got)
	}
	// A parallel constraint at the same level keeps depth flat.
	if got := d.DepthWithEdge(0, 2); got != 2 {
		t.Fatalf("DepthWithEdge(0,2) = %d, want 2", got)
	}
}

func TestPlanDraftPlan(t *testing.T) {
	in := fig1Instance(t)
	d := NewPlanDraft(in)
	if err := d.AddEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(3, 1); err != nil {
		t.Fatal(err)
	}
	p := d.Plan(AlgoSynth, NoBlackhole)
	if err := p.Validate(in); err != nil {
		t.Fatalf("draft plan invalid: %v", err)
	}
	if p.NumEdges() != 2 || p.Depth() != 2 {
		t.Fatalf("plan edges=%d depth=%d, want 2 and 2", p.NumEdges(), p.Depth())
	}
	// The emitted dependencies must express exactly the draft edges:
	// the node for draft index 0 depends on the node for draft index 3.
	idx := make(map[topo.NodeID]int, p.NumNodes())
	for i, nd := range p.Nodes {
		idx[nd.Switch] = i
	}
	n0 := p.Nodes[idx[d.Switch(0)]]
	if len(n0.Deps) != 1 || p.Nodes[n0.Deps[0]].Switch != d.Switch(3) {
		t.Fatalf("node %v deps = %v, want exactly its draft predecessor %v", n0.Switch, n0.Deps, d.Switch(3))
	}
}

func TestPlanDraftBlockingEdges(t *testing.T) {
	in := fig1Instance(t)
	d := NewPlanDraft(in)
	ideal := []int{0, 2}
	cands := d.BlockingEdges(ideal, 0)
	if len(cands) == 0 {
		t.Fatal("no blocking edges for non-full ideal on empty draft")
	}
	inIdeal := map[int]bool{0: true, 2: true}
	seen := map[[2]int]bool{}
	for _, e := range cands {
		u, v := e[0], e[1]
		if inIdeal[u] || !inIdeal[v] {
			t.Fatalf("candidate %v->%v does not block ideal {0,2}", u, v)
		}
		if seen[e] {
			t.Fatalf("duplicate candidate %v", e)
		}
		seen[e] = true
	}
	// Capping keeps the deterministic prefix.
	capped := d.BlockingEdges(ideal, 2)
	if len(capped) != 2 || capped[0] != cands[0] || capped[1] != cands[1] {
		t.Fatalf("capped candidates %v are not a prefix of %v", capped, cands[:2])
	}
	// Existing and cycle-forming edges are excluded.
	if err := d.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	for _, e := range d.BlockingEdges([]int{0}, 0) {
		if e == [2]int{1, 0} {
			t.Fatal("existing edge offered as candidate")
		}
		if e[0] == 0 {
			t.Fatal("cycle-forming candidate offered")
		}
	}
}
