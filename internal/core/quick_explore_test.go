// Extends quick_test.go with the adversarial-interleaving property:
// it lives in the external test package because it pits every
// registered scheduler against internal/explore, which imports core.
package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tsu/internal/core"
	"tsu/internal/explore"
	"tsu/internal/topo"
)

// TestQuickExploreSchedulerInterleavings property-tests the scheduler
// suite against the exhaustive interleaving explorer: for random small
// instances, every registered scheduler's output either survives *all*
// FlowMod delivery interleavings the explorer enumerates, or its
// property contract (Schedule.Guarantees) correctly declares the
// violated property absent — i.e. the explorer may only ever break
// properties the scheduler never promised.
func TestQuickExploreSchedulerInterleavings(t *testing.T) {
	allProps := core.NoBlackhole | core.WaypointEnforcement |
		core.RelaxedLoopFreedom | core.StrongLoopFreedom
	check := func(seed int64, rawN uint8, withWaypoint bool) bool {
		n := 4 + int(rawN%9)
		rng := rand.New(rand.NewSource(seed))
		ti := topo.RandomTwoPath(rng, n, withWaypoint)
		in := core.MustInstance(ti.Old, ti.New, ti.Waypoint)
		if in.NumPending() == 0 {
			return true
		}
		props := allProps
		if in.Waypoint == 0 {
			props &^= core.WaypointEnforcement
		}
		for _, name := range core.Names() {
			scheduler := core.MustScheduler(name)
			if !scheduler.Applicable(in) {
				continue
			}
			s, err := scheduler.Schedule(in, 0)
			if err != nil {
				// A scheduler may decline an instance (e.g. jointly
				// infeasible property targets); declining is not a
				// contract violation.
				continue
			}
			if err := s.Validate(in); err != nil {
				t.Logf("%s produced invalid schedule on %v: %v", name, in, err)
				return false
			}
			// Check the full property lattice, exhaustively: rounds at
			// these sizes always fit MaxExhaustive.
			rep, err := explore.Schedule(in, s, explore.Options{Props: props, MaxExhaustive: 14})
			if err != nil {
				t.Logf("explore failed on %s %v: %v", name, in, err)
				return false
			}
			if !rep.Exhaustive() {
				t.Logf("%s round exceeded the exhaustive budget on n=%d", name, n)
				return false
			}
			for _, rr := range rep.Rounds {
				if rr.Violation == nil {
					continue
				}
				// The adversary broke something: the scheduler's
				// contract must not have promised it.
				if broken := rr.Violation.Violated & s.Guarantees; broken != 0 {
					t.Logf("%s guarantees %s but the adversary broke %s on %v: %v",
						name, s.Guarantees, broken, in, rr.Violation)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Rand:     rand.New(rand.NewSource(0x5EED)),
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
