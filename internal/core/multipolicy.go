package core

import (
	"fmt"
	"sort"

	"tsu/internal/topo"
)

// JointUpdate schedules several policies together, the extension the
// paper points to ("more work on multiple policies", Dudycz et al.
// DSN'16 / Ludwig et al. SIGMETRICS'16). Flows are distinguished on the
// wire by their match keys, so rules of different policies never
// interact and each policy keeps its own scheduler's transient
// guarantee; the joint problem is about *round economy*: executing the
// per-flow rounds in a common barrier cadence and batching FlowMods so
// a switch is touched as few times as possible.
type JointUpdate struct {
	Instances []*Instance
	Schedules []*Schedule
}

// FlowUpdate identifies one switch update of one flow within a joint
// round.
type FlowUpdate struct {
	Flow   int // index into Instances/Schedules
	Switch topo.NodeID
}

// NewJointUpdate schedules every instance with the provided scheduler
// (see Register / Lookup for dispatch by name). props == 0 selects the
// scheduler's default property set.
func NewJointUpdate(instances []*Instance, scheduler Scheduler, props Property) (*JointUpdate, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("core: joint update needs at least one policy")
	}
	j := &JointUpdate{Instances: instances}
	for i, in := range instances {
		s, err := scheduler.Schedule(in, props)
		if err != nil {
			return nil, fmt.Errorf("core: joint update: policy %d: %w", i, err)
		}
		j.Schedules = append(j.Schedules, s)
	}
	return j, nil
}

// NumRounds returns the joint (left-aligned) round count: the maximum
// per-flow round count, since independent flows share barrier rounds.
func (j *JointUpdate) NumRounds() int {
	max := 0
	for _, s := range j.Schedules {
		if s.NumRounds() > max {
			max = s.NumRounds()
		}
	}
	return max
}

// SequentialRounds returns the round count of the naive alternative
// that updates one policy after another: the sum of per-flow rounds.
func (j *JointUpdate) SequentialRounds() int {
	total := 0
	for _, s := range j.Schedules {
		total += s.NumRounds()
	}
	return total
}

// Round returns the flow updates of joint round i (0-based,
// left-aligned: flow f contributes its round i when it has one),
// grouped by switch so the controller can batch FlowMods per switch.
// Switch keys iterate deterministically via sorted order of the
// returned slice.
func (j *JointUpdate) Round(i int) map[topo.NodeID][]FlowUpdate {
	out := make(map[topo.NodeID][]FlowUpdate)
	for f, s := range j.Schedules {
		if i >= s.NumRounds() {
			continue
		}
		for _, v := range s.Round(i) {
			out[v] = append(out[v], FlowUpdate{Flow: f, Switch: v})
		}
	}
	return out
}

// SwitchTouches returns, per switch, the number of joint rounds in
// which the switch receives at least one FlowMod — the "can't touch
// this" economy metric: fewer touches mean fewer barrier exchanges and
// fewer rule-table churn windows per switch.
func (j *JointUpdate) SwitchTouches() map[topo.NodeID]int {
	touches := make(map[topo.NodeID]int)
	for i := 0; i < j.NumRounds(); i++ {
		for sw := range j.Round(i) {
			touches[sw]++
		}
	}
	return touches
}

// TotalFlowMods returns the total number of switch updates across all
// flows.
func (j *JointUpdate) TotalFlowMods() int {
	total := 0
	for _, s := range j.Schedules {
		total += s.NumUpdates()
	}
	return total
}

// TouchSummary returns the switches sorted by descending touch count,
// ties by ascending switch ID — the table the multi-policy experiment
// prints.
func (j *JointUpdate) TouchSummary() []struct {
	Switch  topo.NodeID
	Touches int
} {
	touches := j.SwitchTouches()
	out := make([]struct {
		Switch  topo.NodeID
		Touches int
	}, 0, len(touches))
	for sw, t := range touches {
		out = append(out, struct {
			Switch  topo.NodeID
			Touches int
		}{sw, t})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Touches != out[b].Touches {
			return out[a].Touches > out[b].Touches
		}
		return out[a].Switch < out[b].Switch
	})
	return out
}
