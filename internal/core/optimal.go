package core

import (
	"fmt"
	"math/bits"

	"tsu/internal/topo"
)

// MaxOptimalPending bounds the instance size the exact solvers accept
// by default. Minimal-round search explores O(3^k) (state, round)
// pairs for k pending switches.
const MaxOptimalPending = 12

// MaxFeasiblePending bounds the sequential-feasibility decision, which
// memoises over 2^k done-sets.
const MaxFeasiblePending = 20

// Optimal computes a schedule with the provably minimal number of
// rounds satisfying props in every reachable transient state, via
// breadth-first search over done-sets with exact round-safety as the
// transition oracle. It returns an error when the instance exceeds
// MaxOptimalPending or when no schedule satisfies props at all (for
// example, waypoint enforcement combined with loop freedom is not
// always jointly feasible — HotNets'14).
//
// Safety is downward closed (a violating subset of a round is a
// violating subset of every superset round), which the search exploits:
// any round containing an individually unsafe switch is skipped without
// re-checking.
func Optimal(in *Instance, props Property) (*Schedule, error) {
	pending := in.Pending()
	k := len(pending)
	if k > MaxOptimalPending {
		return nil, fmt.Errorf("core: optimal solver limited to %d pending switches, instance has %d", MaxOptimalPending, k)
	}
	s := &Schedule{Algorithm: AlgoOptimal, Guarantees: props}
	if k == 0 {
		return s, nil
	}
	idx := make(map[topo.NodeID]int, k)
	for i, v := range pending {
		idx[v] = i
	}
	maskNodes := func(mask uint32) []topo.NodeID {
		out := make([]topo.NodeID, 0, bits.OnesCount32(mask))
		for i, v := range pending {
			if mask&(1<<uint(i)) != 0 {
				out = append(out, v)
			}
		}
		return out
	}
	maskState := func(mask uint32) State {
		st := in.NewState()
		for i, v := range pending {
			if mask&(1<<uint(i)) != 0 {
				in.Mark(st, v)
			}
		}
		return st
	}
	full := uint32(1)<<uint(k) - 1
	type prev struct {
		state uint32
		round uint32
	}
	parent := make(map[uint32]prev, 1<<uint(k))
	visited := map[uint32]bool{0: true}
	frontier := []uint32{0}
	for len(frontier) > 0 && !visited[full] {
		var next []uint32
		for _, m := range frontier {
			done := maskState(m)
			rem := full &^ m
			// Downward closure: precompute unsafe singletons at m.
			var unsafe uint32
			for i := 0; i < k; i++ {
				b := uint32(1) << uint(i)
				if rem&b == 0 {
					continue
				}
				cex, exact := in.CheckRound(done, maskNodes(b), props, 0)
				if !exact || cex != nil {
					unsafe |= b
				}
			}
			for sub := rem; sub > 0; sub = (sub - 1) & rem {
				if sub&unsafe != 0 || visited[m|sub] {
					continue
				}
				if bits.OnesCount32(sub) > 1 {
					cex, exact := in.CheckRound(done, maskNodes(sub), props, 0)
					if !exact || cex != nil {
						continue
					}
				}
				to := m | sub
				visited[to] = true
				parent[to] = prev{state: m, round: sub}
				next = append(next, to)
			}
		}
		frontier = next
	}
	if !visited[full] {
		return nil, fmt.Errorf("core: no schedule satisfies %s for %v", props, in)
	}
	var rounds [][]topo.NodeID
	for m := full; m != 0; {
		p := parent[m]
		rounds = append(rounds, maskNodes(p.round))
		m = p.state
	}
	for i, j := 0, len(rounds)-1; i < j; i, j = i+1, j-1 {
		rounds[i], rounds[j] = rounds[j], rounds[i]
	}
	s.Rounds = rounds
	return s, nil
}

// Feasible decides whether any schedule satisfies props in every
// reachable transient state. A batched schedule is safe iff its
// singleton sequentialisation is safe (every prefix state of the
// sequentialisation is a subset state of the batched schedule), so the
// decision reduces to the existence of a safe sequential update order,
// searched with memoisation over done-sets.
func Feasible(in *Instance, props Property) (bool, error) {
	pending := in.Pending()
	k := len(pending)
	if k > MaxFeasiblePending {
		return false, fmt.Errorf("core: feasibility decision limited to %d pending switches, instance has %d", MaxFeasiblePending, k)
	}
	if k == 0 {
		return true, nil
	}
	full := uint32(1)<<uint(k) - 1
	memo := make(map[uint32]bool, 1<<uint(k))
	var canFinish func(m uint32) bool
	canFinish = func(m uint32) bool {
		if m == full {
			return true
		}
		if r, ok := memo[m]; ok {
			return r
		}
		memo[m] = false // cycle guard; overwritten below
		done := in.NewState()
		for i, v := range pending {
			if m&(1<<uint(i)) != 0 {
				in.Mark(done, v)
			}
		}
		ok := false
		for i, v := range pending {
			b := uint32(1) << uint(i)
			if m&b != 0 {
				continue
			}
			cex, exact := in.CheckRound(done, []topo.NodeID{v}, props, 0)
			if exact && cex == nil && canFinish(m|b) {
				ok = true
				break
			}
		}
		memo[m] = ok
		return ok
	}
	return canFinish(0), nil
}
