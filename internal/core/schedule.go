package core

import (
	"fmt"
	"strings"

	"tsu/internal/topo"
)

// Schedule partitions the switches needing updates into rounds. The
// controller installs round i's FlowMods concurrently, then exchanges
// barriers with every touched switch before starting round i+1, so the
// reachable transient states are exactly: all earlier rounds applied
// plus any subset of the current round.
type Schedule struct {
	// Rounds holds the switches updated per round, in execution order.
	Rounds [][]topo.NodeID

	// Algorithm names the scheduler that produced this schedule (one
	// of the registered names, see Names).
	Algorithm string

	// Guarantees is the property set the scheduler promises to hold in
	// every reachable transient state of this schedule.
	Guarantees Property

	// LoopFreedomCompromised is set by WayUp when waypoint enforcement
	// and loop freedom were jointly infeasible for the instance
	// (HotNets'14 shows such instances exist); waypoint enforcement is
	// preserved, transient loops may occur in the flagged rounds.
	LoopFreedomCompromised bool
}

// NumRounds returns the number of rounds.
func (s *Schedule) NumRounds() int { return len(s.Rounds) }

// NumUpdates returns the total number of switch updates.
func (s *Schedule) NumUpdates() int {
	total := 0
	for _, r := range s.Rounds {
		total += len(r)
	}
	return total
}

// Round returns the switches of round i (0-based).
func (s *Schedule) Round(i int) []topo.NodeID { return s.Rounds[i] }

// String renders the schedule compactly, e.g.
// "wayup[3 rounds: {7 8 9} {1 2 3} {4}]".
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%d rounds:", s.Algorithm, len(s.Rounds))
	for _, r := range s.Rounds {
		b.WriteString(" {")
		for i, v := range r {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte('}')
	}
	b.WriteByte(']')
	return b.String()
}

// Validate checks the structural contract between a schedule and its
// instance: rounds are non-empty, no switch appears twice, and the
// union of all rounds is exactly the instance's pending set.
func (s *Schedule) Validate(in *Instance) error {
	seen := make(map[topo.NodeID]bool)
	for i, r := range s.Rounds {
		if len(r) == 0 {
			return fmt.Errorf("core: schedule round %d is empty", i)
		}
		for _, v := range r {
			if seen[v] {
				return fmt.Errorf("core: switch %d scheduled twice", v)
			}
			seen[v] = true
			if !in.NeedsUpdate(v) {
				return fmt.Errorf("core: switch %d scheduled but needs no update", v)
			}
		}
	}
	if len(seen) != in.NumPending() {
		return fmt.Errorf("core: schedule covers %d of %d pending switches", len(seen), in.NumPending())
	}
	return nil
}

// StateAfter returns the updated-set after the first n rounds have
// completed, as a State of the given instance.
func (s *Schedule) StateAfter(in *Instance, n int) State {
	st := in.NewState()
	for i := 0; i < n && i < len(s.Rounds); i++ {
		in.Mark(st, s.Rounds[i]...)
	}
	return st
}
