package core_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"tsu/internal/core"
	"tsu/internal/topo"
	"tsu/internal/verify"
)

func TestLookupUnknownName(t *testing.T) {
	if _, err := core.Lookup("nope"); err == nil {
		t.Fatal("unknown scheduler name accepted")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error %v does not name the unknown scheduler", err)
	}
	if _, err := core.ScheduleByName(core.MustInstance(topo.Path{1, 2}, topo.Path{1, 2}, 0), "nope", 0); err == nil {
		t.Fatal("ScheduleByName accepted an unknown name")
	}
}

func TestMustSchedulerPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustScheduler on unknown name did not panic")
		}
	}()
	core.MustScheduler("nope")
}

func TestNamesStableAndComplete(t *testing.T) {
	names := core.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for i := 0; i < 3; i++ {
		again := core.Names()
		if len(again) != len(names) {
			t.Fatalf("Names() unstable: %v vs %v", names, again)
		}
		for j := range names {
			if names[j] != again[j] {
				t.Fatalf("Names() unstable: %v vs %v", names, again)
			}
		}
	}
	want := []string{core.AlgoGreedySLF, core.AlgoOneShot, core.AlgoOptimal, core.AlgoPeacock, core.AlgoSequential, core.AlgoWayUp}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("built-in scheduler %q missing from Names() = %v", w, names)
		}
	}
}

func TestRegisterRejectsDuplicatesAndNil(t *testing.T) {
	for name, reg := range map[string]func(){
		"dup":   func() { core.Register(core.AlgoPeacock, core.SchedulerFunc(nil)) },
		"empty": func() { core.Register("", core.SchedulerFunc(nil)) },
		"nil":   func() { core.Register("fresh-name", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s registration did not panic", name)
				}
			}()
			reg()
		}()
	}
}

func TestDefaultAlgorithm(t *testing.T) {
	withWP := core.MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 2, 4, 3}, 2)
	if got := core.DefaultAlgorithm(withWP); got != core.AlgoWayUp {
		t.Fatalf("default with waypoint = %q", got)
	}
	noWP := core.MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 3}, 0)
	if got := core.DefaultAlgorithm(noWP); got != core.AlgoPeacock {
		t.Fatalf("default without waypoint = %q", got)
	}
	s, err := core.ScheduleByName(withWP, "", 0)
	if err != nil || s.Algorithm != core.AlgoWayUp {
		t.Fatalf("ScheduleByName(\"\") = %v, %v", s, err)
	}
}

func TestSchedulerFuncApplicable(t *testing.T) {
	f := core.SchedulerFunc(func(in *core.Instance, _ core.Property) (*core.Schedule, error) {
		return core.OneShot(in), nil
	})
	if !f.Applicable(nil) {
		t.Fatal("SchedulerFunc must apply everywhere")
	}
}

// TestRegistryOutputsVerify is the registry's contract test: every
// registered scheduler, run through the registry on the Figure 1
// instance and on a random fat-tree instance, produces a schedule that
// passes the verifier (checked against the schedule's own guarantees,
// in parallel).
func TestRegistryOutputsVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ft := topo.FatTree(4)
	var ftInstance *core.Instance
	for ftInstance == nil || ftInstance.NumPending() == 0 {
		ti, err := topo.RandomFatTreePolicy(rng, ft)
		if err != nil {
			t.Fatal(err)
		}
		ftInstance = core.MustInstance(ti.Old, ti.New, 0)
	}
	cases := map[string]*core.Instance{
		"fig1":    core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint),
		"fattree": ftInstance,
	}
	for caseName, in := range cases {
		for _, name := range core.Names() {
			t.Run(caseName+"/"+name, func(t *testing.T) {
				sched, err := core.Lookup(name)
				if err != nil {
					t.Fatal(err)
				}
				if !sched.Applicable(in) {
					t.Skipf("%s not applicable to %v", name, in)
				}
				s, err := sched.Schedule(in, 0)
				if err != nil {
					t.Fatalf("%s failed on %v: %v", name, in, err)
				}
				if s.Algorithm != name {
					t.Fatalf("schedule reports algorithm %q, registered as %q", s.Algorithm, name)
				}
				if rep := verify.Guarantees(in, s, verify.Options{}); !rep.OK() {
					t.Fatalf("%s schedule failed verification: %v", name, rep)
				}
			})
		}
	}
}
