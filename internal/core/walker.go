package core

import (
	"tsu/internal/topo"
)

// Walker is a reusable scratch context for checking many related rule
// states of one instance without allocating: it owns a rule-state
// bitset, the current forwarding walk, and the per-node bookkeeping the
// incremental re-walk needs. The explorer's Gray-code enumeration and
// the verifier's sampling fallback drive it with Flip — toggling one
// switch and re-walking only from the first position whose next hop
// changed — so the amortized cost per checked state is a handful of
// steps instead of a full walk from the source.
//
// The incremental argument: a switch's updated-bit is read exactly once
// per walk, at the switch itself (see nextHopIdx). Flipping switch i
// therefore leaves the walk unchanged unless i lies on it; when it
// does, the prefix up to i is still valid and only the suffix from i
// needs recomputation. Flipping a non-pending switch never changes any
// walk (its bit is never read).
//
// A Walker is single-goroutine scratch; use one per worker. The zero
// value is not usable — construct with NewWalker (and Bind) or
// Instance.NewWalker.
type Walker struct {
	in *Instance
	st State // current rule state (the updated-set)

	path    []int32 // walk as dense node indices, in visit order
	posOf   []int32 // node index -> position in path, -1 when off-walk
	outcome Outcome
	loopAt  int32 // first repeated node when outcome == Looped

	color []uint8 // rule-cycle scratch (strong loop freedom)
	marks []int32 // nodes colored during the last cycle check
}

// NewWalker returns an unbound Walker; Bind attaches it to an instance
// before use. The buffers grow to the largest instance seen and are
// reused across Bind calls — a pool of Walkers amortizes to zero
// allocations.
func NewWalker() *Walker { return &Walker{} }

// NewWalker returns a Walker bound to the instance, reset to the empty
// state.
func (in *Instance) NewWalker() *Walker { return NewWalker().Bind(in) }

// Bind attaches the walker to an instance, growing its buffers as
// needed, and resets it to the empty rule state. Binding to the same
// instance again is equivalent to Reset(nil).
func (w *Walker) Bind(in *Instance) *Walker {
	n := len(in.nodeOf)
	w.in = in
	if cap(w.st) < in.words {
		w.st = make(State, in.words)
	}
	w.st = w.st[:in.words]
	if cap(w.posOf) < n {
		w.posOf = make([]int32, n)
		w.color = make([]uint8, n)
	}
	w.posOf = w.posOf[:n]
	w.color = w.color[:n]
	for i := range w.posOf {
		w.posOf[i] = -1
	}
	w.path = w.path[:0]
	w.Reset(nil)
	return w
}

// Reset sets the walker's rule state to a copy of done (nil: the empty
// state) and recomputes the full walk from the source.
func (w *Walker) Reset(done State) {
	for i := range w.st {
		w.st[i] = 0
	}
	copy(w.st, done)
	for _, i := range w.path {
		w.posOf[i] = -1
	}
	w.path = w.path[:0]
	i := w.in.srcIdx
	w.path = append(w.path, i)
	w.posOf[i] = 0
	w.resume(i)
}

// resume continues the walk from node i, which is already the last
// element of w.path, until it reaches the destination, drops, or loops.
func (w *Walker) resume(i int32) {
	in := w.in
	for {
		if i == in.dstIdx {
			w.outcome = Reached
			return
		}
		next, ok := in.nextHopIdx(i, w.st)
		if !ok {
			w.outcome = Dropped
			return
		}
		if w.posOf[next] >= 0 {
			w.outcome = Looped
			w.loopAt = next
			return
		}
		w.path = append(w.path, next)
		w.posOf[next] = int32(len(w.path) - 1)
		i = next
	}
}

// Flip toggles switch index i (see Instance.NodeIndex) in the rule
// state and incrementally repairs the walk: if i is not on the current
// walk — or is not a pending switch, whose bit is never read — the walk
// is unchanged; otherwise the walk is truncated to i's position and
// recomputed from there. Negative indices are ignored.
func (w *Walker) Flip(i int) {
	if i < 0 {
		return
	}
	if w.st.Has(i) {
		w.st.Clear(i)
	} else {
		w.st.Set(i)
	}
	if !w.in.pendingBits.Has(i) {
		return
	}
	p := w.posOf[i]
	if p < 0 {
		return
	}
	for _, j := range w.path[p+1:] {
		w.posOf[j] = -1
	}
	w.path = w.path[:p+1]
	w.resume(int32(i))
}

// Outcome returns the current walk's classification.
func (w *Walker) Outcome() Outcome { return w.outcome }

// State returns the walker's current rule state. The returned bitset
// aliases the walker's scratch: treat it as read-only and copy it
// (Instance.CloneState) before the next Flip or Reset if it must
// outlive them.
func (w *Walker) State() State { return w.st }

// Len returns the current walk's length in switches (excluding the
// repeated tail of a looped walk).
func (w *Walker) Len() int { return len(w.path) }

// Path materializes the current walk, following the same convention as
// Instance.Walk: a looped walk ends with the first repeated switch
// included twice. Path allocates — it is for reporting, not hot loops.
func (w *Walker) Path() topo.Path {
	out := make(topo.Path, 0, len(w.path)+1)
	for _, i := range w.path {
		out = append(out, w.in.nodeOf[i])
	}
	if w.outcome == Looped {
		out = append(out, w.in.nodeOf[w.loopAt])
	}
	return out
}

// Check evaluates the requested properties in the walker's current rule
// state without allocating — the scratch-buffered equivalent of
// Instance.CheckState on Walker.State().
func (w *Walker) Check(props Property) Property {
	var violated Property
	switch w.outcome {
	case Dropped:
		if props.Has(NoBlackhole) {
			violated |= NoBlackhole
		}
	case Looped:
		if props.Has(RelaxedLoopFreedom) {
			violated |= RelaxedLoopFreedom
		}
	case Reached:
		if props.Has(WaypointEnforcement) && w.in.wpIdx >= 0 && w.posOf[w.in.wpIdx] < 0 {
			violated |= WaypointEnforcement
		}
	}
	if props.Has(StrongLoopFreedom) && w.ruleCycle() {
		violated |= StrongLoopFreedom
	}
	return violated
}

// ruleCycle reports whether the full rule graph of the walker's current
// state contains a directed cycle — Instance.hasRuleCycle over the
// walker's scratch, iterative so it never allocates. The rule graph is
// functional (at most one successor per switch), so each white chain is
// followed once, marking grey on the way down; reaching a grey node is
// a cycle, reaching black or a dead end is not, and the visited chain
// is blackened either way.
func (w *Walker) ruleCycle() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	in := w.in
	n := len(in.nodeOf)
	for i := range w.color {
		w.color[i] = white
	}
	for s := 0; s < n; s++ {
		if w.color[s] != white {
			continue
		}
		w.marks = w.marks[:0]
		j := int32(s)
		for {
			w.color[j] = grey
			w.marks = append(w.marks, j)
			next, ok := in.nextHopIdx(j, w.st)
			if !ok || w.color[next] == black {
				break
			}
			if w.color[next] == grey {
				return true
			}
			j = next
		}
		for _, m := range w.marks {
			w.color[m] = black
		}
	}
	return false
}
