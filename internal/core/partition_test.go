package core

import (
	"bytes"
	"reflect"
	"testing"

	"tsu/internal/topo"
)

// testPlans builds one plan per registered scheduler on Fig.1, both
// layered and (where the scheduler supports it) sparse.
func testPlans(t testing.TB) []*Plan {
	t.Helper()
	in := MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	var plans []*Plan
	for _, name := range Names() {
		for _, sparse := range []bool{false, true} {
			p, err := PlanByName(in, name, 0, sparse)
			if err != nil {
				continue
			}
			plans = append(plans, p)
		}
	}
	if len(plans) == 0 {
		t.Fatal("no schedulers produced a plan")
	}
	return plans
}

// TestPartitionAssembleIdentity is the losslessness proof behind
// decentralized execution: partitioning a plan and reassembling the
// partitions yields the identical plan — same nodes, same edges, same
// metadata — so the partial order (and with it the reachable order
// ideals) is unchanged by who carries the acks.
func TestPartitionAssembleIdentity(t *testing.T) {
	for _, p := range testPlans(t) {
		parts := p.Partition()
		for i := 1; i < len(parts); i++ {
			if parts[i-1].Switch >= parts[i].Switch {
				t.Fatalf("%s: partitions not ascending by switch", p)
			}
		}
		got, err := AssemblePlan(parts)
		if err != nil {
			t.Fatalf("%s: AssemblePlan: %v", p, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("%s: reassembled plan differs:\n got %+v\nwant %+v", p, got, p)
		}
	}
}

// TestPartitionEdgeInvariants checks the per-partition view: in-edges
// strictly below the node, out-edges strictly above, both ascending,
// and the totals match the plan's edge count in both directions.
func TestPartitionEdgeInvariants(t *testing.T) {
	for _, p := range testPlans(t) {
		ins, outs := 0, 0
		for _, sp := range p.Partition() {
			for _, pn := range sp.Nodes {
				prev := -1
				for _, e := range pn.InEdges {
					if e.Index <= prev || e.Index >= pn.Index {
						t.Fatalf("%s: node %d bad in-edge %d", p, pn.Index, e.Index)
					}
					prev = e.Index
					ins++
				}
				prev = pn.Index
				for _, e := range pn.OutEdges {
					if e.Index <= prev || e.Index >= p.NumNodes() {
						t.Fatalf("%s: node %d bad out-edge %d", p, pn.Index, e.Index)
					}
					prev = e.Index
					outs++
				}
			}
		}
		if ins != p.NumEdges() || outs != p.NumEdges() {
			t.Fatalf("%s: %d in-edges, %d out-edges, want %d each", p, ins, outs, p.NumEdges())
		}
	}
}

// TestPartitionCodecRoundTrip checks decode(encode(sp)) == sp and the
// canonical byte identity encode(decode(b)) == b on real partitions.
func TestPartitionCodecRoundTrip(t *testing.T) {
	for _, p := range testPlans(t) {
		for _, sp := range p.Partition() {
			enc := EncodePartition(&sp)
			dec, err := DecodePartition(enc)
			if err != nil {
				t.Fatalf("%s switch %d: decode: %v", p, sp.Switch, err)
			}
			if !reflect.DeepEqual(dec, &sp) {
				t.Fatalf("%s switch %d: decode mismatch:\n got %+v\nwant %+v", p, sp.Switch, dec, sp)
			}
			if re := EncodePartition(dec); !bytes.Equal(re, enc) {
				t.Fatalf("%s switch %d: re-encode not identity", p, sp.Switch)
			}
		}
	}
}

// clonePartitions deep-copies via the codec (which the round-trip test
// proves lossless), so tamper tests can mutate freely.
func clonePartitions(t *testing.T, parts []SwitchPartition) []SwitchPartition {
	t.Helper()
	out := make([]SwitchPartition, len(parts))
	for i := range parts {
		sp, err := DecodePartition(EncodePartition(&parts[i]))
		if err != nil {
			t.Fatalf("clone: %v", err)
		}
		out[i] = *sp
	}
	return out
}

// TestAssemblePlanRejectsTampering exercises the cross-partition
// consistency checks: each corruption must be caught, never silently
// produce a different DAG.
func TestAssemblePlanRejectsTampering(t *testing.T) {
	in := MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	p, err := PlanByName(in, "peacock", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	base := p.Partition()
	if len(base) < 2 {
		t.Fatal("want at least two partitions")
	}
	tamper := []struct {
		name string
		mut  func([]SwitchPartition) []SwitchPartition
	}{
		{"metadata mismatch", func(ps []SwitchPartition) []SwitchPartition {
			ps[1].Algorithm = "other"
			return ps
		}},
		{"node owned twice", func(ps []SwitchPartition) []SwitchPartition {
			ps[1].Nodes = append(ps[1].Nodes, ps[0].Nodes[0])
			return ps
		}},
		{"missing partition", func(ps []SwitchPartition) []SwitchPartition {
			return ps[1:]
		}},
		{"dropped out-edge mirror", func(ps []SwitchPartition) []SwitchPartition {
			for i := range ps {
				for j := range ps[i].Nodes {
					if len(ps[i].Nodes[j].OutEdges) > 0 {
						ps[i].Nodes[j].OutEdges = ps[i].Nodes[j].OutEdges[1:]
						return ps
					}
				}
			}
			t.Fatal("no out-edge to drop")
			return ps
		}},
		{"in-edge names wrong owner", func(ps []SwitchPartition) []SwitchPartition {
			for i := range ps {
				for j := range ps[i].Nodes {
					if len(ps[i].Nodes[j].InEdges) > 0 {
						ps[i].Nodes[j].InEdges[0].Switch += 1000
						return ps
					}
				}
			}
			t.Fatal("no in-edge to corrupt")
			return ps
		}},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := AssemblePlan(tc.mut(clonePartitions(t, base))); err == nil {
				t.Fatal("tampered partitions assembled without error")
			}
		})
	}
	// The untampered clone still assembles — the tamper cases fail for
	// their own reasons, not because cloning is lossy.
	if _, err := AssemblePlan(clonePartitions(t, base)); err != nil {
		t.Fatalf("clean clone failed to assemble: %v", err)
	}
}

// TestDecodePartitionRejects covers the codec's malformed-input
// surface: every rejection must wrap ErrPartitionWire.
func TestDecodePartitionRejects(t *testing.T) {
	in := MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	p, err := PlanByName(in, "peacock", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	parts := p.Partition()
	valid := EncodePartition(&parts[len(parts)-1])
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      []byte("NOPE" + string(valid[4:])),
		"bad version":    append(append([]byte{}, "TSQP\x02"...), valid[5:]...),
		"truncated":      valid[:len(valid)-1],
		"trailing bytes": append(append([]byte{}, valid...), 0),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodePartition(data); err == nil {
				t.Fatal("malformed input decoded without error")
			}
		})
	}
}
