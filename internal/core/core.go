// Package core implements the paper's primary contribution: transiently
// consistent network-update scheduling for asynchronous SDNs.
//
// An update replaces an old routing policy (a simple path from a source
// to a destination, optionally through a waypoint) with a new one. The
// controller cannot install the new rules atomically: FlowMod commands
// travel over an asynchronous control channel and take effect in
// arbitrary order. A schedule therefore partitions the switches into
// rounds; within a round updates commute in any order, and rounds are
// separated by OpenFlow barrier request/reply exchanges (see
// internal/controller). A schedule is transiently consistent for a
// property when the property holds in every reachable intermediate
// state — i.e. for every prefix of completed rounds plus every subset
// of the in-flight round.
//
// The package provides the update model (Instance, Schedule), the
// per-state forwarding walk, exact round-safety primitives, and the
// schedulers demonstrated by the paper: WayUp (waypoint enforcement,
// after Ludwig et al., HotNets'14), Peacock (relaxed loop freedom,
// after Ludwig et al., PODC'15), a strong-loop-freedom greedy, the
// one-shot baseline, and exact minimal-round solvers for small
// instances.
package core

import (
	"fmt"
	"strings"
)

// Property is a bit set of transient-consistency properties. Properties
// are checked on every reachable intermediate state of a schedule.
type Property uint8

const (
	// NoBlackhole: the forwarding walk from the source never reaches a
	// switch without a matching rule (no transient packet drops).
	NoBlackhole Property = 1 << iota

	// WaypointEnforcement: every forwarding walk that reaches the
	// destination traverses the waypoint first (the paper's
	// "transiently secure" property; firewalls/IDS are never bypassed).
	WaypointEnforcement

	// RelaxedLoopFreedom: the forwarding walk from the source never
	// revisits a switch. Stale rules at switches no longer reachable
	// from the source may form loops (the PODC'15 relaxation).
	RelaxedLoopFreedom

	// StrongLoopFreedom: no directed cycle exists anywhere in the
	// combined rule graph, reachable or not.
	StrongLoopFreedom
)

// Has reports whether p includes every property of q.
func (p Property) Has(q Property) bool { return p&q == q }

// String renders the property set, e.g. "NoBlackhole|WaypointEnforcement".
func (p Property) String() string {
	if p == 0 {
		return "None"
	}
	var parts []string
	for _, e := range []struct {
		bit  Property
		name string
	}{
		{NoBlackhole, "NoBlackhole"},
		{WaypointEnforcement, "WaypointEnforcement"},
		{RelaxedLoopFreedom, "RelaxedLoopFreedom"},
		{StrongLoopFreedom, "StrongLoopFreedom"},
	} {
		if p.Has(e.bit) {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, "|")
}

// ParseProperty maps a wire/CLI property name ("no-blackhole",
// "waypoint", "relaxed-lf", "strong-lf") to its Property bit.
func ParseProperty(name string) (Property, error) {
	switch strings.TrimSpace(name) {
	case "no-blackhole":
		return NoBlackhole, nil
	case "waypoint":
		return WaypointEnforcement, nil
	case "relaxed-lf":
		return RelaxedLoopFreedom, nil
	case "strong-lf":
		return StrongLoopFreedom, nil
	}
	return 0, fmt.Errorf("core: unknown property %q", name)
}

// ParseProperties folds a list of property names into one bit set.
func ParseProperties(names []string) (Property, error) {
	var p Property
	for _, n := range names {
		bit, err := ParseProperty(n)
		if err != nil {
			return 0, err
		}
		p |= bit
	}
	return p, nil
}
