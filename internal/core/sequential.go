package core

import (
	"fmt"

	"tsu/internal/topo"
)

// Sequential schedules the update one switch per round under the given
// walk-based properties, picking at each step the first individually
// safe pending switch in new-path order (verified by the exact subset
// checker). This is the cautious-operator baseline — trivially correct,
// maximally slow — and the ablation for round batching: its round count
// equals the number of pending switches whenever it completes, versus
// Peacock's small constants.
//
// It fails when no individually safe switch exists (for waypoint-plus-
// loop-freedom combinations that are jointly infeasible).
func Sequential(in *Instance, props Property) (*Schedule, error) {
	s := &Schedule{Algorithm: AlgoSequential, Guarantees: props}
	pending := in.Pending()
	remaining := make(map[topo.NodeID]bool, len(pending))
	for _, v := range pending {
		remaining[v] = true
	}
	done := in.NewState()
	for len(remaining) > 0 {
		var pick topo.NodeID
		found := false
		for _, v := range pending {
			if !remaining[v] {
				continue
			}
			cex, exact := in.CheckRound(done, []topo.NodeID{v}, props, 0)
			if exact && cex == nil {
				pick = v
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: sequential stalled with %d pending switches on %v (props %s)", len(remaining), in, props)
		}
		s.Rounds = append(s.Rounds, []topo.NodeID{pick})
		in.Mark(done, pick)
		delete(remaining, pick)
	}
	return s, nil
}
