package core

import (
	"fmt"
	"sort"

	"tsu/internal/topo"
)

// SwitchPartition is one switch's share of a decentralized plan: the
// nodes that switch installs, each with the in-edges it must wait for
// (keyed by the predecessor switch that will send the ack) and the
// out-edges it must notify once its own install is confirmed. The
// partitions of a plan carry the complete DAG — every dependency edge
// appears exactly once as an in-edge at its consumer and once as an
// out-edge at its producer — so AssemblePlan reconstructs the original
// Plan, which is how tests prove the reachable ideal space is
// untouched by decentralization: the edges, not who relays the ack,
// define the partial order.
type SwitchPartition struct {
	// Switch owns and executes every node in this partition.
	Switch topo.NodeID

	// Algorithm, Guarantees, Sparse and LoopFreedomCompromised mirror
	// the plan's metadata so a partition is self-describing.
	Algorithm              string
	Guarantees             Property
	Sparse                 bool
	LoopFreedomCompromised bool

	// NumNodes is the global plan's node count — the agent needs it
	// only for sanity bounds, AssemblePlan for sizing the rebuilt plan.
	NumNodes int

	// Nodes lists this switch's plan nodes ascending by global index.
	// A switch usually owns one node; cleanup rounds can add a second.
	Nodes []PartitionNode
}

// PartitionNode is one plan node as seen by its owning switch.
type PartitionNode struct {
	// Index is the node's index in the global plan (Plan.Nodes).
	Index int

	// InEdges are the dependencies: the node's install may proceed the
	// moment an ack for every listed edge has arrived. Sorted ascending
	// by Index; every Index is strictly below the node's own.
	InEdges []PartitionEdge

	// OutEdges are the successors to notify once this node's install is
	// confirmed. Sorted ascending by Index; every Index is strictly
	// above the node's own.
	OutEdges []PartitionEdge
}

// PartitionEdge is one dependency edge endpoint at a peer switch.
type PartitionEdge struct {
	// Switch is the peer that owns the node at Index — for an in-edge
	// the predecessor the ack arrives from, for an out-edge the
	// successor the ack is sent to.
	Switch topo.NodeID

	// Index is the peer node's index in the global plan.
	Index int
}

// Partition splits the plan into per-switch partitions, ascending by
// switch id. Every dependency edge d→i of the plan appears exactly
// twice: as an in-edge {Switch of d, d} on node i and as an out-edge
// {Switch of i, i} on node d. The split is deterministic and lossless
// — AssemblePlan inverts it.
func (p *Plan) Partition() []SwitchPartition {
	byNode := make(map[topo.NodeID]*SwitchPartition)
	var order []topo.NodeID
	part := func(v topo.NodeID) *SwitchPartition {
		sp := byNode[v]
		if sp == nil {
			sp = &SwitchPartition{
				Switch:                 v,
				Algorithm:              p.Algorithm,
				Guarantees:             p.Guarantees,
				Sparse:                 p.Sparse,
				LoopFreedomCompromised: p.LoopFreedomCompromised,
				NumNodes:               len(p.Nodes),
			}
			byNode[v] = sp
			order = append(order, v)
		}
		return sp
	}
	type slot struct {
		sp  *SwitchPartition
		idx int
	}
	nodeAt := make(map[int]slot, len(p.Nodes))
	// First pass: create every node in global index order, so each
	// partition's Nodes come out ascending, and record in-edges (deps
	// are already sorted ascending).
	for i, nd := range p.Nodes {
		sp := part(nd.Switch)
		pn := PartitionNode{Index: i}
		for _, d := range nd.Deps {
			pn.InEdges = append(pn.InEdges, PartitionEdge{Switch: p.Nodes[d].Switch, Index: d})
		}
		sp.Nodes = append(sp.Nodes, pn)
		nodeAt[i] = slot{sp, len(sp.Nodes) - 1}
	}
	// Second pass: mirror each edge as an out-edge at its producer.
	// Iterating consumers in index order appends each producer's
	// out-edges ascending by successor index. (Resolved through the
	// slot map, not pointers — first-pass appends may have moved the
	// Nodes backing arrays.)
	for i, nd := range p.Nodes {
		for _, d := range nd.Deps {
			s := nodeAt[d]
			pr := &s.sp.Nodes[s.idx]
			pr.OutEdges = append(pr.OutEdges, PartitionEdge{Switch: nd.Switch, Index: i})
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	out := make([]SwitchPartition, 0, len(order))
	for _, v := range order {
		out = append(out, *byNode[v])
	}
	return out
}

// AssemblePlan reconstructs the plan from its per-switch partitions,
// validating that they are mutually consistent: the metadata agrees,
// every global node index is owned exactly once, in-edges name the
// true owner of their predecessor, and every in-edge is mirrored by an
// out-edge at the producer (and vice versa). It is the concrete proof
// vehicle for decentralized execution — AssemblePlan(p.Partition())
// equals p, so the partitions define the same partial order and hence
// the same reachable order ideals.
func AssemblePlan(parts []SwitchPartition) (*Plan, error) {
	if len(parts) == 0 {
		return &Plan{}, nil
	}
	ref := parts[0]
	p := &Plan{
		Algorithm:              ref.Algorithm,
		Guarantees:             ref.Guarantees,
		Sparse:                 ref.Sparse,
		LoopFreedomCompromised: ref.LoopFreedomCompromised,
	}
	n := ref.NumNodes
	if n < 0 || n > maxPlanWireNodes {
		return nil, fmt.Errorf("core: partition claims %d plan nodes", n)
	}
	p.Nodes = make([]PlanNode, n)
	owned := make([]bool, n)
	total := 0
	for _, sp := range parts {
		if sp.Algorithm != ref.Algorithm || sp.Guarantees != ref.Guarantees ||
			sp.Sparse != ref.Sparse || sp.LoopFreedomCompromised != ref.LoopFreedomCompromised ||
			sp.NumNodes != ref.NumNodes {
			return nil, fmt.Errorf("core: partition of switch %d disagrees on plan metadata", sp.Switch)
		}
		for _, pn := range sp.Nodes {
			if pn.Index < 0 || pn.Index >= n {
				return nil, fmt.Errorf("core: switch %d owns out-of-range node %d", sp.Switch, pn.Index)
			}
			if owned[pn.Index] {
				return nil, fmt.Errorf("core: node %d owned twice", pn.Index)
			}
			owned[pn.Index] = true
			total++
			nd := PlanNode{Switch: sp.Switch}
			for _, e := range pn.InEdges {
				nd.Deps = append(nd.Deps, e.Index)
			}
			p.Nodes[pn.Index] = nd
		}
	}
	if total != n {
		return nil, fmt.Errorf("core: partitions cover %d of %d nodes", total, n)
	}
	// Cross-validate edge endpoints and the out-edge mirror now that
	// every owner is known.
	outSeen := make(map[[2]int]bool)
	for _, sp := range parts {
		for _, pn := range sp.Nodes {
			for _, e := range pn.OutEdges {
				if e.Index <= pn.Index || e.Index >= n {
					return nil, fmt.Errorf("core: node %d out-edge to %d not topological", pn.Index, e.Index)
				}
				if p.Nodes[e.Index].Switch != e.Switch {
					return nil, fmt.Errorf("core: node %d out-edge names switch %d for node %d (owner %d)",
						pn.Index, e.Switch, e.Index, p.Nodes[e.Index].Switch)
				}
				key := [2]int{pn.Index, e.Index}
				if outSeen[key] {
					return nil, fmt.Errorf("core: duplicate out-edge %d→%d", pn.Index, e.Index)
				}
				outSeen[key] = true
			}
			for _, e := range pn.InEdges {
				if e.Index >= pn.Index || e.Index < 0 {
					return nil, fmt.Errorf("core: node %d in-edge from %d not topological", pn.Index, e.Index)
				}
				if p.Nodes[e.Index].Switch != e.Switch {
					return nil, fmt.Errorf("core: node %d in-edge names switch %d for node %d (owner %d)",
						pn.Index, e.Switch, e.Index, p.Nodes[e.Index].Switch)
				}
			}
		}
	}
	edges := 0
	for i, nd := range p.Nodes {
		prev := -1
		for _, d := range nd.Deps {
			if d <= prev {
				return nil, fmt.Errorf("core: node %d in-edges not strictly ascending", i)
			}
			prev = d
			if !outSeen[[2]int{d, i}] {
				return nil, fmt.Errorf("core: edge %d→%d has no out-edge mirror", d, i)
			}
			edges++
		}
	}
	if edges != len(outSeen) {
		return nil, fmt.Errorf("core: %d out-edges mirror %d in-edges", len(outSeen), edges)
	}
	return p, nil
}
