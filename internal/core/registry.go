package core

import (
	"fmt"
	"sort"
	"sync"
)

// Canonical names of the built-in schedulers. Every dispatch-by-name
// site in the repository goes through this registry; adding a scheduler
// means one Register call in this file (or an init in the scheduler's
// own file) — controllers, CLIs, experiments and examples pick it up
// automatically.
const (
	AlgoWayUp      = "wayup"
	AlgoPeacock    = "peacock"
	AlgoGreedySLF  = "greedy-slf"
	AlgoSequential = "sequential"
	AlgoOneShot    = "oneshot"
	AlgoOptimal    = "optimal"

	// AlgoSynth is the counterexample-guided plan synthesizer
	// (internal/synth). It registers itself from that package's init so
	// core stays free of explorer dependencies; binaries that want it
	// import tsu/internal/synth.
	AlgoSynth = "synth"
)

// Scheduler is the uniform interface over every update algorithm.
//
// Schedule computes a transiently consistent schedule for the instance.
// props requests the property set for parameterized schedulers
// (Sequential, Optimal); fixed-property algorithms (WayUp, Peacock,
// GreedySLF, OneShot) ignore it. props == 0 selects the scheduler's
// default property set.
//
// Applicable is a cheap structural precheck (e.g. WayUp needs a
// waypoint, Optimal a small pending set); Schedule may still fail on an
// applicable instance when the requested properties are infeasible.
type Scheduler interface {
	Schedule(in *Instance, props Property) (*Schedule, error)
	Applicable(in *Instance) bool
}

// SchedulerFunc adapts a plain scheduling function to the Scheduler
// interface; it reports every instance as applicable.
type SchedulerFunc func(in *Instance, props Property) (*Schedule, error)

// Schedule implements Scheduler.
func (f SchedulerFunc) Schedule(in *Instance, props Property) (*Schedule, error) {
	return f(in, props)
}

// Applicable implements Scheduler; always true.
func (f SchedulerFunc) Applicable(*Instance) bool { return true }

// condScheduler pairs a scheduling function with an applicability test.
type condScheduler struct {
	schedule   func(in *Instance, props Property) (*Schedule, error)
	applicable func(in *Instance) bool
}

func (c condScheduler) Schedule(in *Instance, props Property) (*Schedule, error) {
	return c.schedule(in, props)
}

func (c condScheduler) Applicable(in *Instance) bool { return c.applicable(in) }

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Scheduler)
)

// Register adds a scheduler under the given name. It panics on an empty
// name, a nil scheduler, or a duplicate registration — all programmer
// errors caught at init time.
func Register(name string, s Scheduler) {
	if name == "" {
		panic("core: Register with empty scheduler name")
	}
	if s == nil {
		panic("core: Register with nil scheduler")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: scheduler %q registered twice", name))
	}
	registry[name] = s
}

// Lookup returns the scheduler registered under name, or an error
// listing the known names.
func Lookup(name string) (Scheduler, error) {
	registryMu.RLock()
	s, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown scheduler %q (registered: %v)", name, Names())
	}
	return s, nil
}

// MustScheduler is Lookup for statically known names; it panics on an
// unknown name.
func MustScheduler(name string) Scheduler {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultAlgorithm picks the scheduler an empty algorithm selector
// resolves to: WayUp when the instance has a waypoint to guard,
// Peacock otherwise.
func DefaultAlgorithm(in *Instance) string {
	if in.Waypoint != 0 {
		return AlgoWayUp
	}
	return AlgoPeacock
}

// ScheduleByName resolves name through the registry ("" selects
// DefaultAlgorithm) and computes the schedule. props == 0 selects the
// scheduler's default property set.
func ScheduleByName(in *Instance, name string, props Property) (*Schedule, error) {
	if name == "" {
		name = DefaultAlgorithm(in)
	}
	s, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return s.Schedule(in, props)
}

// walkPropsOr returns props, defaulting to the walk-based pair the
// cautious baselines target.
func walkPropsOr(props Property) Property {
	if props != 0 {
		return props
	}
	return NoBlackhole | RelaxedLoopFreedom
}

// optimalPropsOr returns props, defaulting to blackhole and loop
// freedom plus waypoint enforcement when the instance has one.
func optimalPropsOr(in *Instance, props Property) Property {
	if props != 0 {
		return props
	}
	p := NoBlackhole | RelaxedLoopFreedom
	if in.Waypoint != 0 {
		p |= WaypointEnforcement
	}
	return p
}

func init() {
	Register(AlgoWayUp, condScheduler{
		schedule:   func(in *Instance, _ Property) (*Schedule, error) { return WayUp(in) },
		applicable: func(in *Instance) bool { return in.Waypoint != 0 },
	})
	// Peacock and GreedySLF carry the PlanScheduler capability: their
	// round constructions are exactly the dependency reasoning
	// SparsePlan prunes edges with (L1/L2 walk arguments, the
	// double-edge test), so they emit genuinely sparse DAGs.
	Register(AlgoPeacock, sparsePlanner{SchedulerFunc(func(in *Instance, _ Property) (*Schedule, error) {
		return Peacock(in)
	})})
	Register(AlgoGreedySLF, sparsePlanner{SchedulerFunc(func(in *Instance, _ Property) (*Schedule, error) {
		return GreedySLF(in)
	})})
	Register(AlgoSequential, SchedulerFunc(func(in *Instance, props Property) (*Schedule, error) {
		return Sequential(in, walkPropsOr(props))
	}))
	Register(AlgoOneShot, SchedulerFunc(func(in *Instance, _ Property) (*Schedule, error) {
		return OneShot(in), nil
	}))
	Register(AlgoOptimal, condScheduler{
		schedule: func(in *Instance, props Property) (*Schedule, error) {
			return Optimal(in, optimalPropsOr(in, props))
		},
		applicable: func(in *Instance) bool { return in.NumPending() <= MaxOptimalPending },
	})
}
