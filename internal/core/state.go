package core

import (
	"math/bits"

	"tsu/internal/topo"
)

// State is the set of switches whose update has taken effect, stored as
// a dense bitset with one bit per node of the owning Instance (bit i
// corresponds to Instance.NodeAt(i)). States are created through
// Instance.NewState / Instance.StateOf and are only meaningful for the
// instance that produced them. A nil State is the empty set.
//
// All operations are shift-and-mask on uint64 words: membership is one
// load, cloning is a copy, and the hot paths (Walk, CheckRound,
// RoundSafeStrongLF) never touch a map or allocate per step.
type State []uint64

// Has reports whether bit i is set. Out-of-range bits (including any
// query against a nil State) read as unset.
func (s State) Has(i int) bool {
	w := uint(i) >> 6
	return int(w) < len(s) && s[w]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i. The State must have been allocated wide enough
// (Instance.NewState always is).
func (s State) Set(i int) { s[uint(i)>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s State) Clear(i int) { s[uint(i)>>6] &^= 1 << (uint(i) & 63) }

// Clone returns a copy of the state.
func (s State) Clone() State {
	if s == nil {
		return nil
	}
	c := make(State, len(s))
	copy(c, s)
	return c
}

// Count returns the number of set bits.
func (s State) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// NewState returns an empty State sized for the instance's node set.
func (in *Instance) NewState() State { return make(State, in.words) }

// CloneState returns a full-width copy of s; a nil s yields an empty
// state (unlike State.Clone, the result is always writable via Set).
func (in *Instance) CloneState(s State) State {
	c := make(State, in.words)
	copy(c, s)
	return c
}

// StateOf builds a State containing the given switches. Switches not on
// either path are ignored.
func (in *Instance) StateOf(nodes ...topo.NodeID) State {
	s := in.NewState()
	in.Mark(s, nodes...)
	return s
}

// Mark adds the given switches to the state. Switches not on either
// path are ignored.
func (in *Instance) Mark(s State, nodes ...topo.NodeID) {
	for _, v := range nodes {
		if i, ok := in.idxOf[v]; ok {
			s.Set(int(i))
		}
	}
}

// Updated reports whether switch v is in the state.
func (in *Instance) Updated(s State, v topo.NodeID) bool {
	i, ok := in.idxOf[v]
	return ok && s.Has(int(i))
}

// StateNodes lists the switches in the state, ascending by ID.
func (in *Instance) StateNodes(s State) []topo.NodeID {
	out := make([]topo.NodeID, 0, s.Count())
	for i, v := range in.nodeOf {
		if s.Has(i) {
			out = append(out, v)
		}
	}
	return out
}

// NumNodes returns the number of switches on the union of both paths.
func (in *Instance) NumNodes() int { return len(in.nodeOf) }

// NodeIndex returns v's dense index in [0, NumNodes), or -1 when v lies
// on neither path.
func (in *Instance) NodeIndex(v topo.NodeID) int {
	if i, ok := in.idxOf[v]; ok {
		return int(i)
	}
	return -1
}

// NodeAt returns the switch with dense index i (the inverse of
// NodeIndex).
func (in *Instance) NodeAt(i int) topo.NodeID { return in.nodeOf[i] }
