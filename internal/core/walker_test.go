package core

import (
	"math/rand"
	"testing"

	"tsu/internal/topo"
)

// walkerTestInstances is a deterministic mix of instance shapes: the
// Fig.1 scenario, path reversals (transient loops), and random
// two-path instances with and without waypoints.
func walkerTestInstances(t *testing.T) []*Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	ins := []*Instance{
		MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint),
		MustInstance(topo.Reversal(8).Old, topo.Reversal(8).New, 0),
		MustInstance(topo.Reversal(70).Old, topo.Reversal(70).New, 0), // multi-word states
	}
	for i := 0; i < 12; i++ {
		ti := topo.RandomTwoPath(rng, 6+rng.Intn(20), i%2 == 0)
		ins = append(ins, MustInstance(ti.Old, ti.New, ti.Waypoint))
	}
	return ins
}

// TestWalkerMatchesWalk drives a Walker through long random flip
// sequences and checks, after every flip, that its outcome, path, and
// property verdicts are identical to a fresh Instance.Walk/CheckState
// on the same rule state — the incremental re-walk must be
// indistinguishable from a full walk.
func TestWalkerMatchesWalk(t *testing.T) {
	props := NoBlackhole | RelaxedLoopFreedom | WaypointEnforcement | StrongLoopFreedom
	rng := rand.New(rand.NewSource(7))
	for _, in := range walkerTestInstances(t) {
		w := in.NewWalker()
		st := in.NewState()
		n := in.NumNodes()
		for step := 0; step < 400; step++ {
			i := rng.Intn(n)
			w.Flip(i)
			if st.Has(i) {
				st.Clear(i)
			} else {
				st.Set(i)
			}
			wantPath, wantOutcome := in.Walk(st)
			if got := w.Outcome(); got != wantOutcome {
				t.Fatalf("%v after flips: walker outcome %v, walk says %v (state %v)", in, got, wantOutcome, in.StateNodes(st))
			}
			if got := w.Path(); !got.Equal(wantPath) {
				t.Fatalf("%v: walker path %v, walk says %v", in, got, wantPath)
			}
			if got, want := w.Check(props), in.CheckState(st, props); got != want {
				t.Fatalf("%v: walker check %s, CheckState says %s (state %v)", in, got, want, in.StateNodes(st))
			}
		}
	}
}

// TestWalkerReset checks Reset rebases the walker on an arbitrary done
// state, and Bind rebinds the same walker across instances of
// different sizes.
func TestWalkerReset(t *testing.T) {
	props := NoBlackhole | RelaxedLoopFreedom | WaypointEnforcement
	rng := rand.New(rand.NewSource(11))
	w := NewWalker()
	for _, in := range walkerTestInstances(t) {
		w.Bind(in)
		pending := in.Pending()
		for trial := 0; trial < 20; trial++ {
			done := in.NewState()
			for _, v := range pending {
				if rng.Intn(2) == 0 {
					in.Mark(done, v)
				}
			}
			w.Reset(done)
			wantPath, wantOutcome := in.Walk(done)
			if w.Outcome() != wantOutcome || !w.Path().Equal(wantPath) {
				t.Fatalf("%v: reset walker (%v, %v) != walk (%v, %v)", in, w.Outcome(), w.Path(), wantOutcome, wantPath)
			}
			if got, want := w.Check(props), in.CheckState(done, props); got != want {
				t.Fatalf("%v: reset check %s != %s", in, got, want)
			}
		}
	}
}

// TestRoundCheckerReuse runs the same verification twice through one
// RoundChecker, interleaved across instances, and requires identical
// verdicts to fresh CheckRound calls — the scratch reuse must not leak
// state between rounds or instances.
func TestRoundCheckerReuse(t *testing.T) {
	props := NoBlackhole | RelaxedLoopFreedom | WaypointEnforcement
	rc := NewRoundChecker()
	for _, in := range walkerTestInstances(t) {
		for _, algo := range []string{AlgoOneShot, AlgoPeacock} {
			s, err := ScheduleByName(in, algo, 0)
			if err != nil {
				t.Fatal(err)
			}
			done := in.NewState()
			for _, round := range s.Rounds {
				wantCex, wantExact := in.CheckRound(done, round, props, 0)
				gotCex, gotExact := rc.Check(in, done, round, props, 0)
				if gotExact != wantExact {
					t.Fatalf("%v %s: reused checker exact=%t, fresh says %t", in, algo, gotExact, wantExact)
				}
				if (gotCex == nil) != (wantCex == nil) {
					t.Fatalf("%v %s: reused checker cex=%v, fresh says %v", in, algo, gotCex, wantCex)
				}
				if gotCex != nil {
					if gotCex.Violated != wantCex.Violated || !gotCex.Walk.Equal(wantCex.Walk) {
						t.Fatalf("%v %s: reused checker %v, fresh %v", in, algo, gotCex, wantCex)
					}
				}
				in.Mark(done, round...)
			}
		}
	}
}
