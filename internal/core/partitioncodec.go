package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tsu/internal/topo"
)

// Binary wire codec for SwitchPartition: the canonical serialization
// the controller broadcasts to each switch's plan-agent in
// decentralized mode. Like the plan codec it is versioned and strictly
// canonical — decode(encode(sp)) == sp and encode(decode(b)) == b for
// every valid b — so it is fuzzable for round-trip identity
// (FuzzPartitionRoundTrip).
//
//	magic "TSQP", version 1
//	uvarint switch id
//	uvarint len(algorithm), algorithm bytes
//	byte guarantees, byte flags (bit0 sparse, bit1 lf-compromised)
//	uvarint numNodes (global plan size)
//	uvarint len(nodes)
//	per node: uvarint global index as delta (first absolute, then
//	          gaps-1 — enforces strictly ascending),
//	          uvarint numIn; per in-edge: uvarint peer switch,
//	          uvarint index delta (first absolute, then gaps-1;
//	          all strictly below the node index),
//	          uvarint numOut; per out-edge: uvarint peer switch,
//	          uvarint index delta (first is gap-1 past the node
//	          index, then gaps-1; all strictly above the node index
//	          and below numNodes)
const (
	partitionMagic   = "TSQP"
	partitionVersion = 1
)

// ErrPartitionWire marks malformed partition wire bytes; match with
// errors.Is.
var ErrPartitionWire = errors.New("malformed partition wire encoding")

// AppendTo appends the partition's canonical wire encoding to buf and
// returns the extended slice.
func (sp *SwitchPartition) AppendTo(buf []byte) []byte {
	buf = append(buf, partitionMagic...)
	buf = append(buf, partitionVersion)
	buf = binary.AppendUvarint(buf, uint64(sp.Switch))
	buf = binary.AppendUvarint(buf, uint64(len(sp.Algorithm)))
	buf = append(buf, sp.Algorithm...)
	buf = append(buf, byte(sp.Guarantees))
	var flags byte
	if sp.Sparse {
		flags |= 1
	}
	if sp.LoopFreedomCompromised {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(sp.NumNodes))
	buf = binary.AppendUvarint(buf, uint64(len(sp.Nodes)))
	prevNode := -1
	for _, pn := range sp.Nodes {
		if prevNode < 0 {
			buf = binary.AppendUvarint(buf, uint64(pn.Index))
		} else {
			buf = binary.AppendUvarint(buf, uint64(pn.Index-prevNode-1))
		}
		prevNode = pn.Index
		buf = binary.AppendUvarint(buf, uint64(len(pn.InEdges)))
		prev := -1
		for k, e := range pn.InEdges {
			buf = binary.AppendUvarint(buf, uint64(e.Switch))
			if k == 0 {
				buf = binary.AppendUvarint(buf, uint64(e.Index))
			} else {
				buf = binary.AppendUvarint(buf, uint64(e.Index-prev-1))
			}
			prev = e.Index
		}
		buf = binary.AppendUvarint(buf, uint64(len(pn.OutEdges)))
		prev = pn.Index
		for _, e := range pn.OutEdges {
			buf = binary.AppendUvarint(buf, uint64(e.Switch))
			buf = binary.AppendUvarint(buf, uint64(e.Index-prev-1))
			prev = e.Index
		}
	}
	return buf
}

// EncodePartition returns the partition's canonical wire encoding.
func EncodePartition(sp *SwitchPartition) []byte { return sp.AppendTo(nil) }

// DecodePartition parses a canonical partition wire encoding. It
// rejects — with an error wrapping ErrPartitionWire, never a panic —
// trailing bytes, non-topological edge indices, and non-canonical
// varints, so every successful decode re-encodes to identical bytes.
// Cross-partition consistency (edge mirrors, true owners) is
// AssemblePlan's job; a single partition cannot see it.
func DecodePartition(data []byte) (*SwitchPartition, error) {
	d := planDecoder{buf: data}
	if string(d.take(len(partitionMagic))) != partitionMagic {
		return nil, fmt.Errorf("core: bad magic: %w", ErrPartitionWire)
	}
	if v := d.byte(); v != partitionVersion {
		return nil, fmt.Errorf("core: partition version %d: %w", v, ErrPartitionWire)
	}
	sp := &SwitchPartition{Switch: topo.NodeID(d.uvarint())}
	algoLen := d.uvarint()
	if algoLen > 1<<10 {
		return nil, fmt.Errorf("core: algorithm name %d bytes: %w", algoLen, ErrPartitionWire)
	}
	sp.Algorithm = string(d.take(int(algoLen)))
	sp.Guarantees = Property(d.byte())
	flags := d.byte()
	if flags&^3 != 0 {
		return nil, fmt.Errorf("core: unknown partition flags %#x: %w", flags, ErrPartitionWire)
	}
	sp.Sparse = flags&1 != 0
	sp.LoopFreedomCompromised = flags&2 != 0
	numNodes := d.uvarint()
	if numNodes > maxPlanWireNodes {
		return nil, fmt.Errorf("core: %d plan nodes: %w", numNodes, ErrPartitionWire)
	}
	sp.NumNodes = int(numNodes)
	owned := d.uvarint()
	if owned > numNodes {
		return nil, fmt.Errorf("core: partition owns %d of %d nodes: %w", owned, numNodes, ErrPartitionWire)
	}
	if d.err == nil && owned > 0 {
		sp.Nodes = make([]PartitionNode, 0, min(int(owned), 1<<12))
	}
	// index reads one bounded edge/node index varint, applying the
	// delta encoding against prev (-1 for the absolute first value).
	index := func(prev int) int {
		v := d.uvarint()
		if v > maxPlanWireNodes {
			if d.err == nil {
				d.err = fmt.Errorf("core: index varint %d: %w", v, ErrPartitionWire)
			}
			return 0
		}
		return prev + 1 + int(v)
	}
	prevNode := -1
	for i := 0; i < int(owned) && d.err == nil; i++ {
		pn := PartitionNode{Index: index(prevNode)}
		if pn.Index >= sp.NumNodes {
			return nil, fmt.Errorf("core: node index %d of %d: %w", pn.Index, sp.NumNodes, ErrPartitionWire)
		}
		prevNode = pn.Index
		numIn := d.uvarint()
		if numIn > uint64(pn.Index) {
			return nil, fmt.Errorf("core: node %d with %d in-edges: %w", pn.Index, numIn, ErrPartitionWire)
		}
		prev := -1
		for k := 0; k < int(numIn) && d.err == nil; k++ {
			e := PartitionEdge{Switch: topo.NodeID(d.uvarint())}
			e.Index = index(prev)
			if e.Index >= pn.Index {
				return nil, fmt.Errorf("core: node %d in-edge from %d: %w", pn.Index, e.Index, ErrPartitionWire)
			}
			prev = e.Index
			pn.InEdges = append(pn.InEdges, e)
		}
		numOut := d.uvarint()
		if numOut > numNodes {
			return nil, fmt.Errorf("core: node %d with %d out-edges: %w", pn.Index, numOut, ErrPartitionWire)
		}
		prev = pn.Index
		for k := 0; k < int(numOut) && d.err == nil; k++ {
			e := PartitionEdge{Switch: topo.NodeID(d.uvarint())}
			e.Index = index(prev)
			if e.Index >= sp.NumNodes {
				return nil, fmt.Errorf("core: node %d out-edge to %d: %w", pn.Index, e.Index, ErrPartitionWire)
			}
			prev = e.Index
			pn.OutEdges = append(pn.OutEdges, e)
		}
		sp.Nodes = append(sp.Nodes, pn)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("core: %d trailing bytes: %w", len(d.buf)-d.off, ErrPartitionWire)
	}
	return sp, nil
}
