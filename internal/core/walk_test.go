package core

import (
	"testing"

	"tsu/internal/topo"
)

func TestWalkInitialFollowsOldPath(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 5, 3, 4}, 0)
	path, outcome := in.Walk(nil)
	if outcome != Reached {
		t.Fatalf("outcome = %v", outcome)
	}
	if !path.Equal(topo.Path{1, 2, 3, 4}) {
		t.Fatalf("walk = %v", path)
	}
}

func TestWalkFinalFollowsNewPath(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 5, 3, 4}, 0)
	st := in.StateOf(in.Pending()...)
	path, outcome := in.Walk(st)
	if outcome != Reached {
		t.Fatalf("outcome = %v", outcome)
	}
	if !path.Equal(topo.Path{1, 5, 3, 4}) {
		t.Fatalf("walk = %v", path)
	}
}

func TestWalkDropAtRulelessNewOnlySwitch(t *testing.T) {
	// Update 1 but not the new-only switch 5: packets reach 5 and drop.
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 5, 3, 4}, 0)
	path, outcome := in.Walk(in.StateOf(1))
	if outcome != Dropped {
		t.Fatalf("outcome = %v, want dropped", outcome)
	}
	if !path.Equal(topo.Path{1, 5}) {
		t.Fatalf("walk = %v", path)
	}
}

func TestWalkLoop(t *testing.T) {
	// Old 1→2→3→4, new 1→3→2→4. Updating only 3 (rule 3→2) loops:
	// 1→2→3→2.
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 0)
	path, outcome := in.Walk(in.StateOf(3))
	if outcome != Looped {
		t.Fatalf("outcome = %v, want looped", outcome)
	}
	last := path[len(path)-1]
	if path.Index(last) == len(path)-1 {
		t.Fatalf("looped walk %v should end at a repeated switch", path)
	}
}

func TestWalkFuncMatchesWalk(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 0)
	st := in.StateOf(1, 3)
	w1, o1 := in.Walk(st)
	w2, o2 := in.WalkFunc(func(v topo.NodeID) bool { return in.Updated(st, v) })
	if o1 != o2 || !w1.Equal(w2) {
		t.Fatalf("Walk = %v (%v), WalkFunc = %v (%v)", w1, o1, w2, o2)
	}
}

func TestNextHopResolution(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 5, 3, 4}, 0)
	upd := func(updated ...topo.NodeID) func(topo.NodeID) bool {
		st := in.StateOf(updated...)
		return func(v topo.NodeID) bool { return in.Updated(st, v) }
	}
	// Pending switch before update: old rule.
	if n, ok := in.NextHop(1, upd()); !ok || n != 2 {
		t.Fatalf("NextHop(1, pre) = %d,%v", n, ok)
	}
	// Pending switch after update: new rule.
	if n, ok := in.NextHop(1, upd(1)); !ok || n != 5 {
		t.Fatalf("NextHop(1, post) = %d,%v", n, ok)
	}
	// New-only switch before update: no rule.
	if _, ok := in.NextHop(5, upd()); ok {
		t.Fatal("NextHop(5, pre) should drop")
	}
	if n, ok := in.NextHop(5, upd(5)); !ok || n != 3 {
		t.Fatalf("NextHop(5, post) = %d,%v", n, ok)
	}
	// Non-pending shared switch: single rule regardless.
	if n, ok := in.NextHop(3, upd()); !ok || n != 4 {
		t.Fatalf("NextHop(3) = %d,%v", n, ok)
	}
	// Old-only switch: old rule always.
	if n, ok := in.NextHop(2, upd(1, 5)); !ok || n != 3 {
		t.Fatalf("NextHop(2) = %d,%v", n, ok)
	}
	// Destination: terminal.
	if _, ok := in.NextHop(4, upd()); ok {
		t.Fatal("NextHop(dst) should be terminal")
	}
}

func TestCheckStateWaypointBypass(t *testing.T) {
	// Old 1→2(w)→3→4, new 1→3→2(w)→4. Updating only 1: walk 1→3→2→4?
	// No — 3 keeps its old rule 3→4, so the walk is 1→3→4, bypassing
	// waypoint 2.
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 2)
	violated := in.CheckState(in.StateOf(1), NoBlackhole|WaypointEnforcement|RelaxedLoopFreedom)
	if !violated.Has(WaypointEnforcement) {
		t.Fatalf("violated = %v, want waypoint bypass", violated)
	}
	if violated.Has(NoBlackhole) || violated.Has(RelaxedLoopFreedom) {
		t.Fatalf("violated = %v, unexpected extra violations", violated)
	}
}

func TestCheckStateWaypointOKOnLoop(t *testing.T) {
	// A looping state never delivers packets, so waypoint enforcement
	// is not violated even though the loop is.
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 2)
	violated := in.CheckState(in.StateOf(3), WaypointEnforcement|RelaxedLoopFreedom)
	if violated.Has(WaypointEnforcement) {
		t.Fatal("waypoint flagged on a looping walk")
	}
	if !violated.Has(RelaxedLoopFreedom) {
		t.Fatal("loop not flagged")
	}
}

func TestCheckStateReachableLoopViolatesBoth(t *testing.T) {
	// Old 1→2→3→4, new 1→3→2→4: state {1,3}: walk 1→3→2→3 — a loop
	// reachable from the source violates relaxed and strong loop
	// freedom alike.
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 0)
	vio := in.CheckState(in.StateOf(1, 3), StrongLoopFreedom|RelaxedLoopFreedom)
	if !vio.Has(StrongLoopFreedom) || !vio.Has(RelaxedLoopFreedom) {
		t.Fatalf("violated = %v, want both loop properties", vio)
	}
}

func TestCheckStateStaleCycleViolatesOnlyStrong(t *testing.T) {
	// Old 1→..→8, new ⟨1,7,5,2,8⟩, state {1,5}: the walk is 1→7→8
	// (reached via 7's still-old rule, loop-free), but the stale
	// region holds the cycle 5→2→3→4→5 (5's new rule plus old rules).
	// This is exactly the state relaxed loop freedom permits and
	// strong loop freedom forbids.
	in := MustInstance(topo.Path{1, 2, 3, 4, 5, 6, 7, 8}, topo.Path{1, 7, 5, 2, 8}, 0)
	st := in.StateOf(1, 5)
	walk, outcome := in.Walk(st)
	if outcome != Reached || !walk.Equal(topo.Path{1, 7, 8}) {
		t.Fatalf("walk = %v (%v), want 1->7->8 reached", walk, outcome)
	}
	vio := in.CheckState(st, StrongLoopFreedom|RelaxedLoopFreedom|NoBlackhole)
	if !vio.Has(StrongLoopFreedom) {
		t.Fatalf("violated = %v, want strong-LF (stale cycle 5→2→3→4→5)", vio)
	}
	if vio.Has(RelaxedLoopFreedom) || vio.Has(NoBlackhole) {
		t.Fatalf("violated = %v, relaxed/blackhole must pass", vio)
	}
}

// TestCheckStateLoopConsistency cross-checks the two loop notions over
// every state of a fixed instance: a looping walk implies a strong
// violation too, and a relaxed violation requires a looping walk.
func TestCheckStateLoopConsistency(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4, 5, 6}, topo.Path{1, 4, 3, 6}, 0)
	pend := in.Pending()
	for mask := 0; mask < 1<<len(pend); mask++ {
		st := in.NewState()
		for i, v := range pend {
			if mask&(1<<i) != 0 {
				in.Mark(st, v)
			}
		}
		vio := in.CheckState(st, StrongLoopFreedom|RelaxedLoopFreedom)
		_, outcome := in.Walk(st)
		if outcome == Looped && !vio.Has(StrongLoopFreedom) {
			t.Fatalf("state %v: reachable loop must be a strong-LF violation", in.StateNodes(st))
		}
		if vio.Has(RelaxedLoopFreedom) && outcome != Looped {
			t.Fatalf("state %v: relaxed violation without a looping walk", in.StateNodes(st))
		}
	}
}

func TestStateHelpers(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 5, 3, 4}, 0)
	s := in.StateOf(1, 5)
	if !in.Updated(s, 1) || !in.Updated(s, 5) || in.Updated(s, 3) {
		t.Fatal("StateOf/Updated wrong")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
	if got := in.StateNodes(s); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("StateNodes = %v", got)
	}
	c := s.Clone()
	in.Mark(c, 3)
	if in.Updated(s, 3) {
		t.Fatal("Clone aliases")
	}
	c.Clear(in.NodeIndex(3))
	if in.Updated(c, 3) {
		t.Fatal("Clear failed")
	}
	// Switches off both paths are ignored by Mark and read as absent.
	in.Mark(c, 99)
	if in.Updated(c, 99) {
		t.Fatal("unknown switch marked")
	}
	// A nil State is the empty set.
	if State(nil).Has(7) || State(nil).Count() != 0 || State(nil).Clone() != nil {
		t.Fatal("nil State semantics wrong")
	}
}

func TestNodeIndexRoundTrip(t *testing.T) {
	in := MustInstance(topo.Path{1, 9, 3, 4}, topo.Path{1, 5, 3, 4}, 0)
	if in.NumNodes() != 5 { // union {1, 3, 4, 5, 9}
		t.Fatalf("NumNodes = %d", in.NumNodes())
	}
	for i := 0; i < in.NumNodes(); i++ {
		if in.NodeIndex(in.NodeAt(i)) != i {
			t.Fatalf("NodeIndex(NodeAt(%d)) = %d", i, in.NodeIndex(in.NodeAt(i)))
		}
	}
	if in.NodeIndex(77) != -1 {
		t.Fatal("NodeIndex of unknown switch should be -1")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{Reached: "reached", Dropped: "dropped", Looped: "looped", Outcome(9): "unknown"} {
		if o.String() != want {
			t.Fatalf("Outcome(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}
