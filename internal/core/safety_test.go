package core

import (
	"math/rand"
	"testing"

	"tsu/internal/topo"
)

// bruteForceRound checks all 2^|round| subsets of a round against
// CheckState — the independent oracle the fast checkers are validated
// against.
func bruteForceRound(in *Instance, done State, round []topo.NodeID, props Property) Property {
	var violated Property
	for mask := 0; mask < 1<<len(round); mask++ {
		st := in.CloneState(done)
		for i, v := range round {
			if mask&(1<<i) != 0 {
				in.Mark(st, v)
			}
		}
		violated |= in.CheckState(st, props)
	}
	return violated
}

func TestRoundSafeStrongLFMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		inst := topo.RandomTwoPath(rng, 4+rng.Intn(8), false)
		in := MustInstance(inst.Old, inst.New, 0)
		pending := in.Pending()
		if len(pending) == 0 {
			continue
		}
		// Random done set and round over the remainder.
		done := in.NewState()
		var rest []topo.NodeID
		for _, v := range pending {
			if rng.Intn(3) == 0 {
				in.Mark(done, v)
			} else {
				rest = append(rest, v)
			}
		}
		var round []topo.NodeID
		for _, v := range rest {
			if rng.Intn(2) == 0 {
				round = append(round, v)
			}
		}
		if len(round) == 0 {
			continue
		}
		fast := in.RoundSafeStrongLF(done, round)
		brute := bruteForceRound(in, done, round, StrongLoopFreedom) == 0
		if fast != brute {
			t.Fatalf("instance %v done %v round %v: double-edge says safe=%v, brute force says %v",
				in, in.StateNodes(done), round, fast, brute)
		}
	}
}

func TestCheckRoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	props := NoBlackhole | RelaxedLoopFreedom | WaypointEnforcement
	for trial := 0; trial < 300; trial++ {
		inst := topo.RandomTwoPath(rng, 4+rng.Intn(8), true)
		in := MustInstance(inst.Old, inst.New, inst.Waypoint)
		pending := in.Pending()
		if len(pending) == 0 {
			continue
		}
		done := in.NewState()
		var rest []topo.NodeID
		for _, v := range pending {
			if rng.Intn(3) == 0 {
				in.Mark(done, v)
			} else {
				rest = append(rest, v)
			}
		}
		var round []topo.NodeID
		for _, v := range rest {
			if rng.Intn(2) == 0 {
				round = append(round, v)
			}
		}
		if len(round) == 0 {
			continue
		}
		cex, exact := in.CheckRound(done, round, props, 0)
		if !exact {
			t.Fatalf("budget exhausted on tiny instance %v", in)
		}
		brute := bruteForceRound(in, done, round, props)
		if (cex == nil) != (brute == 0) {
			t.Fatalf("instance %v done %v round %v: checker cex=%v, brute violations=%v",
				in, in.StateNodes(done), round, cex, brute)
		}
		if cex != nil {
			// The counterexample must be a real reachable state
			// exhibiting the claimed violation.
			if got := in.CheckState(cex.Updated, props); !got.Has(cex.Violated) {
				t.Fatalf("counterexample state %v does not violate %v (violates %v)",
					in.StateNodes(cex.Updated), cex.Violated, got)
			}
			// And its updated set must be done ∪ subset(round).
			inRound := map[topo.NodeID]bool{}
			for _, v := range round {
				inRound[v] = true
			}
			for _, v := range in.StateNodes(cex.Updated) {
				if !in.Updated(done, v) && !inRound[v] {
					t.Fatalf("counterexample updates switch %d outside done∪round", v)
				}
			}
		}
	}
}

func TestCheckRoundDetectsDrop(t *testing.T) {
	// Round = {1} while new-only 5 still pending: subset {1} drops at 5.
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 5, 3, 4}, 0)
	cex, exact := in.CheckRound(nil, []topo.NodeID{1}, NoBlackhole, 0)
	if !exact || cex == nil || cex.Violated != NoBlackhole {
		t.Fatalf("cex = %v exact=%v, want blackhole", cex, exact)
	}
	if cex.Walk[len(cex.Walk)-1] != 5 {
		t.Fatalf("drop walk = %v, want it to end at 5", cex.Walk)
	}
}

func TestCheckRoundDetectsBypass(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 2)
	cex, exact := in.CheckRound(nil, in.Pending(), WaypointEnforcement, 0)
	if !exact || cex == nil || cex.Violated != WaypointEnforcement {
		t.Fatalf("cex = %v, want bypass", cex)
	}
	if cex.Walk[len(cex.Walk)-1] != in.Dst() {
		t.Fatalf("bypass walk = %v, must end at destination", cex.Walk)
	}
}

func TestCheckRoundDetectsLoop(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 0)
	cex, exact := in.CheckRound(nil, in.Pending(), RelaxedLoopFreedom, 0)
	if !exact || cex == nil || cex.Violated != RelaxedLoopFreedom {
		t.Fatalf("cex = %v, want loop", cex)
	}
	repeated := cex.Walk[len(cex.Walk)-1]
	if cex.Walk.Index(repeated) == len(cex.Walk)-1 {
		t.Fatalf("loop walk %v should end at a repeated switch", cex.Walk)
	}
}

func TestCheckRoundSafeSingleton(t *testing.T) {
	// Updating the last pending switch of the new path alone is always
	// safe.
	in := MustInstance(topo.Path{1, 2, 3, 4, 5, 6}, topo.Path{1, 5, 4, 3, 2, 6}, 0)
	cex, exact := in.CheckRound(nil, []topo.NodeID{2}, NoBlackhole|RelaxedLoopFreedom, 0)
	if !exact || cex != nil {
		t.Fatalf("singleton {2} flagged: %v", cex)
	}
}

func TestCheckRoundEmptyRound(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 3}, 0)
	cex, exact := in.CheckRound(nil, nil, NoBlackhole|RelaxedLoopFreedom|WaypointEnforcement, 0)
	if !exact || cex != nil {
		t.Fatalf("empty round flagged: %v", cex)
	}
}

func TestCheckRoundBudgetExhaustion(t *testing.T) {
	inst := topo.Reversal(24)
	in := MustInstance(inst.Old, inst.New, 0)
	_, exact := in.CheckRound(nil, in.Pending(), RelaxedLoopFreedom|NoBlackhole, 8)
	if exact {
		t.Fatal("budget of 8 steps cannot be enough for 22 pending switches")
	}
}

func TestStrongLFCounterExampleIsReal(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4, 5, 6, 7, 8}, topo.Path{1, 7, 5, 2, 8}, 0)
	round := in.Pending()
	if in.RoundSafeStrongLF(nil, round) {
		t.Fatal("one-shot round over a backward instance must be strong-LF unsafe")
	}
	cex, exact := in.CheckRound(nil, round, StrongLoopFreedom, 0)
	if !exact || cex == nil {
		t.Fatal("expected strong-LF counterexample")
	}
	if got := in.CheckState(cex.Updated, StrongLoopFreedom); !got.Has(StrongLoopFreedom) {
		t.Fatalf("counterexample state %v has no rule cycle", in.StateNodes(cex.Updated))
	}
}
