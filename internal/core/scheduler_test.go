package core

import (
	"math/rand"
	"testing"

	"tsu/internal/topo"
)

// verifyScheduleBrute validates a schedule's structure and exhaustively
// checks props over every reachable transient state (all subsets of
// every round on top of the completed prefix). Rounds above 2^18
// subsets would be too slow; the instances used here keep rounds small.
func verifyScheduleBrute(t *testing.T, in *Instance, s *Schedule, props Property) {
	t.Helper()
	if err := s.Validate(in); err != nil {
		t.Fatalf("%s: invalid schedule: %v", s.Algorithm, err)
	}
	done := in.NewState()
	for i, round := range s.Rounds {
		if len(round) > 18 {
			t.Fatalf("%s: round %d too large for brute force (%d)", s.Algorithm, i, len(round))
		}
		if violated := bruteForceRound(in, done, round, props); violated != 0 {
			t.Fatalf("%s: round %d (%v) violates %v on %v\nschedule: %v",
				s.Algorithm, i, round, violated, in, s)
		}
		in.Mark(done, round...)
	}
	// Final state must realize the new path.
	walk, outcome := in.Walk(done)
	if outcome != Reached || !walk.Equal(in.New) {
		t.Fatalf("%s: final walk %v (%v), want new path %v", s.Algorithm, walk, outcome, in.New)
	}
}

func randomInstance(rng *rand.Rand, n int, waypoint bool) *Instance {
	inst := topo.RandomTwoPath(rng, n, waypoint)
	return MustInstance(inst.Old, inst.New, inst.Waypoint)
}

func TestOneShotStructure(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 0)
	s := OneShot(in)
	if s.NumRounds() != 1 || s.NumUpdates() != in.NumPending() {
		t.Fatalf("oneshot = %v", s)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if s.Guarantees != 0 {
		t.Fatal("oneshot must not claim guarantees")
	}
}

func TestOneShotNoPending(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 2, 3}, 0)
	s := OneShot(in)
	if s.NumRounds() != 0 {
		t.Fatalf("no-op update got %d rounds", s.NumRounds())
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestOneShotViolatesOnAdversarialInstance(t *testing.T) {
	// The whole point of the paper: one-shot updates are transiently
	// inconsistent. On the reversal family a subset state loops.
	inst := topo.Reversal(8)
	in := MustInstance(inst.Old, inst.New, 0)
	s := OneShot(in)
	violated := bruteForceRound(in, nil, s.Rounds[0], RelaxedLoopFreedom|NoBlackhole)
	if violated == 0 {
		t.Fatal("one-shot on reversal(8) should violate transient consistency")
	}
}

func TestGreedySLFOnFamilies(t *testing.T) {
	cases := map[string]*Instance{
		"fig1":         MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint),
		"reversal8":    func() *Instance { i := topo.Reversal(8); return MustInstance(i.Old, i.New, 0) }(),
		"staircase9":   func() *Instance { i := topo.Staircase(9); return MustInstance(i.Old, i.New, 0) }(),
		"disjoint":     MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 5, 6, 4}, 0),
		"identical":    MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 2, 3}, 0),
		"two-switch":   MustInstance(topo.Path{1, 2}, topo.Path{1, 2}, 0),
		"direct-hop":   MustInstance(topo.Path{1, 2, 3, 4, 5}, topo.Path{1, 5}, 0),
		"full-reorder": MustInstance(topo.Path{1, 2, 3, 4, 5, 6}, topo.Path{1, 4, 2, 5, 3, 6}, 0),
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			s, err := GreedySLF(in)
			if err != nil {
				t.Fatal(err)
			}
			verifyScheduleBrute(t, in, s, NoBlackhole|StrongLoopFreedom|RelaxedLoopFreedom)
		})
	}
}

func TestGreedySLFRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		in := randomInstance(rng, 4+rng.Intn(10), false)
		s, err := GreedySLF(in)
		if err != nil {
			t.Fatalf("greedy-slf failed on %v: %v", in, err)
		}
		verifyScheduleBrute(t, in, s, NoBlackhole|StrongLoopFreedom|RelaxedLoopFreedom)
	}
}

func TestPeacockOnFamilies(t *testing.T) {
	cases := map[string]*Instance{
		"fig1":         MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint),
		"reversal8":    func() *Instance { i := topo.Reversal(8); return MustInstance(i.Old, i.New, 0) }(),
		"reversal12":   func() *Instance { i := topo.Reversal(12); return MustInstance(i.Old, i.New, 0) }(),
		"staircase9":   func() *Instance { i := topo.Staircase(9); return MustInstance(i.Old, i.New, 0) }(),
		"staircase14":  func() *Instance { i := topo.Staircase(14); return MustInstance(i.Old, i.New, 0) }(),
		"disjoint":     MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 5, 6, 4}, 0),
		"identical":    MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 2, 3}, 0),
		"direct-hop":   MustInstance(topo.Path{1, 2, 3, 4, 5}, topo.Path{1, 5}, 0),
		"full-reorder": MustInstance(topo.Path{1, 2, 3, 4, 5, 6}, topo.Path{1, 4, 2, 5, 3, 6}, 0),
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			s, err := Peacock(in)
			if err != nil {
				t.Fatal(err)
			}
			verifyScheduleBrute(t, in, s, NoBlackhole|RelaxedLoopFreedom)
		})
	}
}

func TestPeacockRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		in := randomInstance(rng, 4+rng.Intn(10), false)
		s, err := Peacock(in)
		if err != nil {
			t.Fatalf("peacock failed on %v: %v", in, err)
		}
		verifyScheduleBrute(t, in, s, NoBlackhole|RelaxedLoopFreedom)
	}
}

func TestPeacockReversalRoundsConstant(t *testing.T) {
	// On the reversal family relaxed loop freedom needs a constant
	// number of rounds (flip the two forward switches, then everything
	// else off the new walk) — the PODC'15 shape.
	for _, n := range []int{8, 16, 32, 64} {
		inst := topo.Reversal(n)
		in := MustInstance(inst.Old, inst.New, 0)
		s, err := Peacock(in)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumRounds() > 3 {
			t.Fatalf("peacock reversal(%d) used %d rounds, want <= 3", n, s.NumRounds())
		}
	}
}

func TestPeacockFewerOrEqualRoundsThanGreedySLF(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		in := randomInstance(rng, 6+rng.Intn(10), false)
		p, err := Peacock(in)
		if err != nil {
			t.Fatal(err)
		}
		g, err := GreedySLF(in)
		if err != nil {
			t.Fatal(err)
		}
		// Not a theorem per instance, but grossly inverted results
		// would indicate a regression; allow slack of one round.
		if p.NumRounds() > g.NumRounds()+1 {
			t.Fatalf("peacock %d rounds vs greedy-slf %d on %v", p.NumRounds(), g.NumRounds(), in)
		}
	}
}

func TestWayUpFig1(t *testing.T) {
	in := MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	s, err := WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	verifyScheduleBrute(t, in, s, NoBlackhole|WaypointEnforcement)
	if s.LoopFreedomCompromised {
		t.Fatal("fig1 should admit a loop-free waypoint schedule")
	}
	verifyScheduleBrute(t, in, s, NoBlackhole|WaypointEnforcement|RelaxedLoopFreedom)
}

func TestWayUpRequiresWaypoint(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 3}, 0)
	if _, err := WayUp(in); err == nil {
		t.Fatal("wayup without waypoint must fail")
	}
}

func TestWayUpRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		in := randomInstance(rng, 4+rng.Intn(10), true)
		s, err := WayUp(in)
		if err != nil {
			t.Fatalf("wayup failed on %v: %v", in, err)
		}
		verifyScheduleBrute(t, in, s, NoBlackhole|WaypointEnforcement)
		if !s.LoopFreedomCompromised {
			verifyScheduleBrute(t, in, s, NoBlackhole|WaypointEnforcement|RelaxedLoopFreedom)
		}
	}
}

func TestWayUpDangerousSwitchLast(t *testing.T) {
	// Old 1→2→3(w)→4→5, new 1→3(w)→2→4... no: build an instance with
	// a dangerous switch: pre-waypoint on old, post-waypoint on new.
	// Old ⟨1,2,3,4,5⟩ with w=3; new ⟨1,3,2,5⟩: switch 2 is pre-w on
	// old (index 1 < 2) and post-w on new (index 2 > 1) — dangerous.
	in := MustInstance(topo.Path{1, 2, 3, 4, 5}, topo.Path{1, 3, 2, 5}, 3)
	s, err := WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	verifyScheduleBrute(t, in, s, NoBlackhole|WaypointEnforcement)
	// Switch 2 must come strictly after switch 1's round (1 routes
	// through w first).
	roundOf := map[topo.NodeID]int{}
	for i, r := range s.Rounds {
		for _, v := range r {
			roundOf[v] = i
		}
	}
	if roundOf[2] <= roundOf[1] {
		t.Fatalf("dangerous switch 2 scheduled in round %d, not after source round %d\n%v",
			roundOf[2], roundOf[1], s)
	}
}

func TestOptimalMinimalAndSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	props := NoBlackhole | RelaxedLoopFreedom
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, 4+rng.Intn(5), false)
		if in.NumPending() > 8 {
			continue
		}
		opt, err := Optimal(in, props)
		if err != nil {
			t.Fatalf("optimal failed on %v: %v", in, err)
		}
		verifyScheduleBrute(t, in, opt, props)
		// Optimality: no scheduler may beat it.
		p, err := Peacock(in)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumRounds() < opt.NumRounds() {
			t.Fatalf("peacock (%d rounds) beat optimal (%d) on %v", p.NumRounds(), opt.NumRounds(), in)
		}
	}
}

func TestOptimalRejectsOversizedInstance(t *testing.T) {
	inst := topo.Reversal(MaxOptimalPending + 4)
	in := MustInstance(inst.Old, inst.New, 0)
	if _, err := Optimal(in, RelaxedLoopFreedom); err == nil {
		t.Fatal("optimal must reject oversized instances")
	}
}

func TestOptimalNoPending(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 2, 3}, 0)
	s, err := Optimal(in, NoBlackhole|RelaxedLoopFreedom)
	if err != nil || s.NumRounds() != 0 {
		t.Fatalf("no-op optimal = %v, %v", s, err)
	}
}

func TestFeasibleAlwaysForRelaxedLF(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, 4+rng.Intn(8), false)
		if in.NumPending() > MaxFeasiblePending {
			continue
		}
		ok, err := Feasible(in, NoBlackhole|RelaxedLoopFreedom)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("relaxed loop freedom must always be feasible, failed on %v", in)
		}
	}
}

func TestFeasibleMatchesOptimalExistence(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	props := NoBlackhole | WaypointEnforcement | RelaxedLoopFreedom
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 4+rng.Intn(5), true)
		if in.NumPending() > 8 {
			continue
		}
		feasible, err := Feasible(in, props)
		if err != nil {
			t.Fatal(err)
		}
		_, optErr := Optimal(in, props)
		if feasible != (optErr == nil) {
			t.Fatalf("feasible=%v but optimal err=%v on %v", feasible, optErr, in)
		}
	}
}

func TestScheduleValidateCatchesBadSchedules(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 0)
	cases := map[string]*Schedule{
		"empty-round":   {Rounds: [][]topo.NodeID{{1}, {}, {3, 2}}},
		"dup-switch":    {Rounds: [][]topo.NodeID{{1, 3}, {3, 2}}},
		"not-pending":   {Rounds: [][]topo.NodeID{{1, 3}, {2, 4}}},
		"missing-nodes": {Rounds: [][]topo.NodeID{{1}}},
	}
	for name, s := range cases {
		if err := s.Validate(in); err == nil {
			t.Fatalf("%s: bad schedule validated", name)
		}
	}
}

func TestScheduleStateAfterAndString(t *testing.T) {
	// Old 1→2→3→4, new 1→3→2→4: pending = {1, 3, 2}.
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 0)
	s := &Schedule{Algorithm: "x", Rounds: [][]topo.NodeID{{1, 2}, {3}}}
	st := s.StateAfter(in, 1)
	if !in.Updated(st, 1) || !in.Updated(st, 2) || in.Updated(st, 3) {
		t.Fatalf("StateAfter(1) = %v", in.StateNodes(st))
	}
	if s.StateAfter(in, 0).Count() != 0 {
		t.Fatal("StateAfter(0) must be empty")
	}
	if s.StateAfter(in, 5).Count() != 3 {
		t.Fatal("StateAfter beyond rounds must include everything")
	}
	if s.String() != "x[2 rounds: {1 2} {3}]" {
		t.Fatalf("String = %q", s.String())
	}
	if s.NumUpdates() != 3 {
		t.Fatal("NumUpdates wrong")
	}
	if len(s.Round(1)) != 1 {
		t.Fatal("Round accessor wrong")
	}
}

func TestJointUpdate(t *testing.T) {
	mk := func(old, new topo.Path) *Instance { return MustInstance(old, new, 0) }
	instances := []*Instance{
		mk(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}),
		mk(topo.Path{1, 2, 3, 4}, topo.Path{1, 5, 6, 4}),
	}
	j, err := NewJointUpdate(instances, MustScheduler(AlgoPeacock), 0)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRounds() < 1 || j.NumRounds() > j.SequentialRounds() {
		t.Fatalf("joint rounds %d vs sequential %d", j.NumRounds(), j.SequentialRounds())
	}
	total := 0
	for i := 0; i < j.NumRounds(); i++ {
		for _, ups := range j.Round(i) {
			total += len(ups)
		}
	}
	if total != j.TotalFlowMods() {
		t.Fatalf("rounds cover %d updates, want %d", total, j.TotalFlowMods())
	}
	touches := j.SwitchTouches()
	summary := j.TouchSummary()
	if len(summary) != len(touches) {
		t.Fatal("summary size mismatch")
	}
	for i := 1; i < len(summary); i++ {
		if summary[i-1].Touches < summary[i].Touches {
			t.Fatal("summary not sorted by touches")
		}
	}
}

func TestJointUpdateErrors(t *testing.T) {
	if _, err := NewJointUpdate(nil, MustScheduler(AlgoPeacock), 0); err == nil {
		t.Fatal("empty joint update accepted")
	}
	in := MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 3}, 0)
	if _, err := NewJointUpdate([]*Instance{in}, MustScheduler(AlgoWayUp), 0); err == nil {
		t.Fatal("scheduler error not propagated")
	}
}
