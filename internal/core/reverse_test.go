package core

import (
	"fmt"
	"testing"

	"tsu/internal/topo"
)

// fig1Plan builds the Peacock execution plan for the Fig. 1 instance.
func fig1Plan(t *testing.T) (*Instance, *Plan) {
	t.Helper()
	in := MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := Peacock(in)
	if err != nil {
		t.Fatal(err)
	}
	return in, PlanFromSchedule(sched)
}

func TestReverseFullPlan(t *testing.T) {
	in, p := fig1Plan(t)
	installed := make([]bool, len(p.Nodes))
	for i := range installed {
		installed[i] = true
	}
	rev, fwd, err := p.Reverse(installed)
	if err != nil {
		t.Fatal(err)
	}
	if !rev.Rollback {
		t.Fatal("reverse plan not marked Rollback")
	}
	if len(rev.Nodes) != len(p.Nodes) || len(fwd) != len(p.Nodes) {
		t.Fatalf("reverse covers %d nodes, want %d", len(rev.Nodes), len(p.Nodes))
	}
	// fwd maps reverse positions back to forward nodes, same switch.
	for j, fi := range fwd {
		if rev.Nodes[j].Switch != p.Nodes[fi].Switch {
			t.Fatalf("reverse node %d is switch %d, forward node %d is switch %d",
				j, rev.Nodes[j].Switch, fi, p.Nodes[fi].Switch)
		}
	}
	// Structurally valid (subset coverage allowed for rollback plans).
	if err := rev.Validate(in); err != nil {
		t.Fatalf("reverse plan invalid: %v", err)
	}
	// Every forward edge d→i must appear reversed: pos[d] depends on
	// pos[i].
	pos := make(map[int]int, len(fwd))
	for j, fi := range fwd {
		pos[fi] = j
	}
	for i, nd := range p.Nodes {
		for _, d := range nd.Deps {
			found := false
			for _, rd := range rev.Nodes[pos[d]].Deps {
				if rd == pos[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("forward edge %d→%d has no reverse edge %d→%d", d, i, pos[i], pos[d])
			}
		}
	}
	if rev.NumEdges() != p.NumEdges() {
		t.Fatalf("reverse has %d edges, forward has %d", rev.NumEdges(), p.NumEdges())
	}
}

func TestReverseRejectsNonIdeal(t *testing.T) {
	_, p := fig1Plan(t)
	var dep = -1
	for i := range p.Nodes {
		if len(p.Nodes[i].Deps) > 0 {
			dep = i
			break
		}
	}
	if dep < 0 {
		t.Skip("plan has no dependencies")
	}
	installed := make([]bool, len(p.Nodes))
	installed[dep] = true // its dependency is not installed
	if _, _, err := p.Reverse(installed); err == nil {
		t.Fatal("Reverse accepted a non-down-closed installed set")
	}
}

func TestReverseRejectsBadInput(t *testing.T) {
	_, p := fig1Plan(t)
	if _, _, err := p.Reverse(make([]bool, len(p.Nodes)+1)); err == nil {
		t.Fatal("Reverse accepted a wrong-length installed set")
	}
	full := make([]bool, len(p.Nodes))
	rev, _, err := p.Reverse(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(rev.Nodes) != 0 {
		t.Fatalf("reverse of empty prefix has %d nodes", len(rev.Nodes))
	}
	for i := range full {
		full[i] = true
	}
	rev, _, err = p.Reverse(full)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rev.Reverse(full); err == nil {
		t.Fatal("Reverse of a rollback plan succeeded")
	}
}

// TestReverseIdealCorrespondence pins the safety argument: every order
// ideal I of the reverse plan of an installed prefix corresponds to
// network state base∖I, and that state is an order ideal of the
// forward plan — rolling back never visits a transient state the
// forward plan could not already reach.
func TestReverseIdealCorrespondence(t *testing.T) {
	in, p := fig1Plan(t)
	forward := make(map[string]bool)
	for _, st := range p.IdealStates(in) {
		forward[fmt.Sprint(st)] = true
	}

	for _, prefix := range []int{len(p.Nodes), len(p.Nodes) / 2, 1} {
		// Plan nodes are topologically ordered (deps strictly below), so
		// every index prefix is down-closed.
		installed := make([]bool, len(p.Nodes))
		for i := 0; i < prefix; i++ {
			installed[i] = true
		}
		rev, _, err := p.Reverse(installed)
		if err != nil {
			t.Fatal(err)
		}
		base := rev.BaseState(in)
		cur := base.Clone()
		ideals := 0
		rev.VisitIdeals(
			func(node int, on bool) {
				i := in.NodeIndex(rev.Nodes[node].Switch)
				if on {
					cur.Clear(i) // rollback ideal member = uninstalled
				} else {
					cur.Set(i)
				}
			},
			func() bool {
				ideals++
				if !forward[fmt.Sprint(cur)] {
					t.Errorf("prefix %d: rollback reaches state %v outside the forward ideal set", prefix, cur)
					return false
				}
				return true
			})
		if t.Failed() {
			t.Fatalf("prefix %d: rollback state space not contained in forward's (after %d ideals)", prefix, ideals)
		}
	}
}
