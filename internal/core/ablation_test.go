package core

import (
	"math/rand"
	"testing"

	"tsu/internal/topo"
)

func TestSequentialCorrectOnFamilies(t *testing.T) {
	props := NoBlackhole | RelaxedLoopFreedom
	for name, in := range map[string]*Instance{
		"reversal10": func() *Instance { i := topo.Reversal(10); return MustInstance(i.Old, i.New, 0) }(),
		"nested10":   func() *Instance { i := topo.Nested(10); return MustInstance(i.Old, i.New, 0) }(),
		"fig1":       MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, 0),
	} {
		s, err := Sequential(in, props)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		verifyScheduleBrute(t, in, s, props)
		if s.NumRounds() != in.NumPending() {
			t.Fatalf("%s: sequential rounds %d != pending %d", name, s.NumRounds(), in.NumPending())
		}
	}
}

func TestSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	props := NoBlackhole | RelaxedLoopFreedom
	for trial := 0; trial < 100; trial++ {
		in := randomInstance(rng, 4+rng.Intn(8), false)
		s, err := Sequential(in, props)
		if err != nil {
			t.Fatalf("sequential failed on %v: %v", in, err)
		}
		verifyScheduleBrute(t, in, s, props)
	}
}

func TestSequentialStallsOnJointlyInfeasible(t *testing.T) {
	// Waypoint enforcement plus loop freedom can be jointly infeasible
	// even one switch at a time; find such an instance and pin the
	// stall behaviour.
	rng := rand.New(rand.NewSource(62))
	props := NoBlackhole | WaypointEnforcement | RelaxedLoopFreedom
	for trial := 0; trial < 500; trial++ {
		in := randomInstance(rng, 5+rng.Intn(6), true)
		if in.NumPending() == 0 || in.NumPending() > MaxFeasiblePending {
			continue
		}
		feasible, err := Feasible(in, props)
		if err != nil {
			t.Fatal(err)
		}
		if feasible {
			continue
		}
		if _, err := Sequential(in, props); err == nil {
			t.Fatalf("sequential succeeded on a jointly infeasible instance %v", in)
		}
		return // found and verified one
	}
	t.Skip("no jointly infeasible instance in 500 draws (rare but possible)")
}

// TestBatchingGain pins the ablation headline: Peacock's batching
// collapses the sequential baseline's Θ(n) rounds to a constant.
func TestBatchingGain(t *testing.T) {
	for _, n := range []int{16, 64, 128} {
		ti := topo.Reversal(n)
		in := MustInstance(ti.Old, ti.New, 0)
		p, err := Peacock(in)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Sequential(in, NoBlackhole|RelaxedLoopFreedom)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumRounds() > 3 {
			t.Fatalf("n=%d: peacock %d rounds", n, p.NumRounds())
		}
		if s.NumRounds() != n-1 { // reversal(n) has n-1 pending switches
			t.Fatalf("n=%d: sequential %d rounds, want %d", n, s.NumRounds(), n-1)
		}
	}
}

// TestGreedySLFOptimalOnReversal cross-checks greedy's round count
// against the exact minimal-round solver on small reversal instances —
// on this family consecutive backward rules can never share a round
// (each pairs into a 2-cycle with its target's old rule), so n-2
// rounds (the two forward switches batch, the backward chain is
// sequential) is optimal and greedy must match it.
func TestGreedySLFOptimalOnReversal(t *testing.T) {
	props := NoBlackhole | StrongLoopFreedom
	for _, n := range []int{6, 8, 10} {
		ti := topo.Reversal(n)
		in := MustInstance(ti.Old, ti.New, 0)
		g, err := GreedySLF(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Optimal(in, props)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumRounds() != opt.NumRounds() {
			t.Fatalf("n=%d: greedy %d rounds vs optimal %d", n, g.NumRounds(), opt.NumRounds())
		}
		if opt.NumRounds() != n-2 {
			t.Fatalf("n=%d: optimal %d rounds, want %d", n, opt.NumRounds(), n-2)
		}
	}
}

// TestPeacockOptimalityGap measures Peacock against the exact solver
// on random instances: it may use more rounds (it is a constructive
// heuristic) but never catastrophically more, and never fewer than
// optimal (which would indicate a verifier bug).
func TestPeacockOptimalityGap(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	props := NoBlackhole | RelaxedLoopFreedom
	checked := 0
	for trial := 0; trial < 200 && checked < 40; trial++ {
		in := randomInstance(rng, 4+rng.Intn(5), false)
		if in.NumPending() == 0 || in.NumPending() > 8 {
			continue
		}
		checked++
		p, err := Peacock(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Optimal(in, props)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumRounds() < opt.NumRounds() {
			t.Fatalf("peacock %d < optimal %d on %v — optimal solver unsound", p.NumRounds(), opt.NumRounds(), in)
		}
		if p.NumRounds() > opt.NumRounds()+2 {
			t.Fatalf("peacock %d rounds vs optimal %d on %v — gap too large", p.NumRounds(), opt.NumRounds(), in)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// BenchmarkAblationBatching regenerates the batching ablation:
// rounds for Peacock (full batching) vs Sequential (no batching) vs
// GreedySLF (strong-LF batching) on the reversal family.
func BenchmarkAblationBatching(b *testing.B) {
	ti := topo.Reversal(64)
	in := MustInstance(ti.Old, ti.New, 0)
	b.Run("peacock", func(b *testing.B) {
		rounds := 0
		for i := 0; i < b.N; i++ {
			s, err := Peacock(in)
			if err != nil {
				b.Fatal(err)
			}
			rounds = s.NumRounds()
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("sequential", func(b *testing.B) {
		rounds := 0
		for i := 0; i < b.N; i++ {
			s, err := Sequential(in, NoBlackhole|RelaxedLoopFreedom)
			if err != nil {
				b.Fatal(err)
			}
			rounds = s.NumRounds()
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("greedy-slf", func(b *testing.B) {
		rounds := 0
		for i := 0; i < b.N; i++ {
			s, err := GreedySLF(in)
			if err != nil {
				b.Fatal(err)
			}
			rounds = s.NumRounds()
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkAblationCheckerBudget measures the exact checker's cost
// growth with round size (the budget knob's rationale).
func BenchmarkAblationCheckerBudget(b *testing.B) {
	for _, n := range []int{8, 16, 24} {
		ti := topo.Reversal(n)
		in := MustInstance(ti.Old, ti.New, 0)
		round := in.Pending()
		b.Run("pending="+itoaCore(len(round)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in.CheckRound(nil, round, NoBlackhole|RelaxedLoopFreedom, 1<<22)
			}
		})
	}
}

func itoaCore(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
