package core

import (
	"tsu/internal/topo"
)

// Outcome classifies the forwarding walk from the source under a fixed
// rule state.
type Outcome int

const (
	// Reached: the walk arrived at the destination.
	Reached Outcome = iota
	// Dropped: the walk hit a switch without a matching rule.
	Dropped
	// Looped: the walk revisited a switch (packets cycle forever).
	Looped
)

func (o Outcome) String() string {
	switch o {
	case Reached:
		return "reached"
	case Dropped:
		return "dropped"
	case Looped:
		return "looped"
	}
	return "unknown"
}

// NextHop returns the switch v forwards to under the given updated-set,
// and false when v has no matching rule (packets are dropped) or v is
// the destination.
//
// Rule resolution: a pending switch uses its new rule once updated and
// its old rule (if any) before; a non-pending switch uses its only
// rule — the new successor when on the new path, otherwise the old one.
func (in *Instance) NextHop(v topo.NodeID, updated func(topo.NodeID) bool) (topo.NodeID, bool) {
	if v == in.Dst() {
		return 0, false
	}
	if in.pending[v] {
		if updated != nil && updated(v) {
			return in.newSucc[v], true
		}
		n, ok := in.oldSucc[v]
		return n, ok
	}
	if n, ok := in.newSucc[v]; ok {
		return n, true
	}
	n, ok := in.oldSucc[v]
	return n, ok
}

// nextHopIdx is NextHop over dense indices with a State updated-set:
// shift-and-mask only, no map lookups.
func (in *Instance) nextHopIdx(i int32, updated State) (int32, bool) {
	if i == in.dstIdx {
		return -1, false
	}
	if in.pendingBits.Has(int(i)) {
		if updated.Has(int(i)) {
			return in.newSuccIdx[i], true
		}
		n := in.oldSuccIdx[i]
		return n, n >= 0
	}
	if n := in.newSuccIdx[i]; n >= 0 {
		return n, true
	}
	n := in.oldSuccIdx[i]
	return n, n >= 0
}

// Walk follows the forwarding rules from the source under the given
// updated-set and returns the visited path together with its outcome.
// On a Looped outcome the returned path ends with the first repeated
// switch (included twice).
func (in *Instance) Walk(updated State) (topo.Path, Outcome) {
	path := make(topo.Path, 0, len(in.nodeOf)+1)
	var seenBuf [8]uint64
	var seen State
	if in.words <= len(seenBuf) {
		seen = State(seenBuf[:in.words])
	} else {
		seen = make(State, in.words)
	}
	i := in.srcIdx
	for {
		path = append(path, in.nodeOf[i])
		if i == in.dstIdx {
			return path, Reached
		}
		if seen.Has(int(i)) {
			return path, Looped
		}
		seen.Set(int(i))
		next, ok := in.nextHopIdx(i, updated)
		if !ok {
			return path, Dropped
		}
		i = next
	}
}

// WalkFunc is Walk with a predicate instead of a State set.
func (in *Instance) WalkFunc(updated func(topo.NodeID) bool) (topo.Path, Outcome) {
	var path topo.Path
	seen := in.NewState()
	v := in.Src()
	for {
		path = append(path, v)
		if v == in.Dst() {
			return path, Reached
		}
		i := int(in.idxOf[v])
		if seen.Has(i) {
			return path, Looped
		}
		seen.Set(i)
		next, ok := in.NextHop(v, updated)
		if !ok {
			return path, Dropped
		}
		v = next
	}
}

// CheckState evaluates the requested properties in a single rule state
// and returns the subset of props violated there. StrongLoopFreedom is
// checked over the full rule graph; the walk-based properties over the
// forwarding walk from the source.
func (in *Instance) CheckState(updated State, props Property) Property {
	var violated Property
	path, outcome := in.Walk(updated)
	if props.Has(NoBlackhole) && outcome == Dropped {
		violated |= NoBlackhole
	}
	if props.Has(RelaxedLoopFreedom) && outcome == Looped {
		violated |= RelaxedLoopFreedom
	}
	if props.Has(WaypointEnforcement) && in.Waypoint != 0 && outcome == Reached {
		if !path[:len(path)-1].Contains(in.Waypoint) {
			violated |= WaypointEnforcement
		}
	}
	if props.Has(StrongLoopFreedom) && in.hasRuleCycle(updated) {
		violated |= StrongLoopFreedom
	}
	return violated
}

// hasRuleCycle reports whether the full rule graph (every switch with
// its single current rule) contains a directed cycle.
func (in *Instance) hasRuleCycle(updated State) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	n := len(in.nodeOf)
	var colorBuf [128]uint8
	var color []uint8
	if n <= len(colorBuf) {
		color = colorBuf[:n]
	} else {
		color = make([]uint8, n)
	}
	var visit func(i int32) bool
	visit = func(i int32) bool {
		color[i] = grey
		if next, ok := in.nextHopIdx(i, updated); ok {
			switch color[next] {
			case grey:
				return true
			case white:
				if visit(next) {
					return true
				}
			}
		}
		color[i] = black
		return false
	}
	for i := 0; i < n; i++ {
		if color[i] == white && visit(int32(i)) {
			return true
		}
	}
	return false
}
