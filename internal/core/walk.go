package core

import (
	"tsu/internal/topo"
)

// Outcome classifies the forwarding walk from the source under a fixed
// rule state.
type Outcome int

const (
	// Reached: the walk arrived at the destination.
	Reached Outcome = iota
	// Dropped: the walk hit a switch without a matching rule.
	Dropped
	// Looped: the walk revisited a switch (packets cycle forever).
	Looped
)

func (o Outcome) String() string {
	switch o {
	case Reached:
		return "reached"
	case Dropped:
		return "dropped"
	case Looped:
		return "looped"
	}
	return "unknown"
}

// State is the set of switches whose update has taken effect.
type State map[topo.NodeID]bool

// Clone returns a copy of the state.
func (s State) Clone() State {
	c := make(State, len(s))
	for k, v := range s {
		if v {
			c[k] = true
		}
	}
	return c
}

// StateOf builds a State containing the given switches.
func StateOf(nodes ...topo.NodeID) State {
	s := make(State, len(nodes))
	for _, n := range nodes {
		s[n] = true
	}
	return s
}

// NextHop returns the switch v forwards to under the given updated-set,
// and false when v has no matching rule (packets are dropped) or v is
// the destination.
//
// Rule resolution: a pending switch uses its new rule once updated and
// its old rule (if any) before; a non-pending switch uses its only
// rule — the new successor when on the new path, otherwise the old one.
func (in *Instance) NextHop(v topo.NodeID, updated func(topo.NodeID) bool) (topo.NodeID, bool) {
	if v == in.Dst() {
		return 0, false
	}
	if in.pending[v] {
		if updated != nil && updated(v) {
			return in.newSucc[v], true
		}
		n, ok := in.oldSucc[v]
		return n, ok
	}
	if n, ok := in.newSucc[v]; ok {
		return n, true
	}
	n, ok := in.oldSucc[v]
	return n, ok
}

// Walk follows the forwarding rules from the source under the given
// updated-set and returns the visited path together with its outcome.
// On a Looped outcome the returned path ends with the first repeated
// switch (included twice).
func (in *Instance) Walk(updated State) (topo.Path, Outcome) {
	return in.WalkFunc(func(v topo.NodeID) bool { return updated[v] })
}

// WalkFunc is Walk with a predicate instead of a State set.
func (in *Instance) WalkFunc(updated func(topo.NodeID) bool) (topo.Path, Outcome) {
	var path topo.Path
	seen := make(map[topo.NodeID]bool)
	v := in.Src()
	for {
		path = append(path, v)
		if v == in.Dst() {
			return path, Reached
		}
		if seen[v] {
			return path, Looped
		}
		seen[v] = true
		next, ok := in.NextHop(v, updated)
		if !ok {
			return path, Dropped
		}
		v = next
	}
}

// CheckState evaluates the requested properties in a single rule state
// and returns the subset of props violated there. StrongLoopFreedom is
// checked over the full rule graph; the walk-based properties over the
// forwarding walk from the source.
func (in *Instance) CheckState(updated State, props Property) Property {
	var violated Property
	path, outcome := in.Walk(updated)
	if props.Has(NoBlackhole) && outcome == Dropped {
		violated |= NoBlackhole
	}
	if props.Has(RelaxedLoopFreedom) && outcome == Looped {
		violated |= RelaxedLoopFreedom
	}
	if props.Has(WaypointEnforcement) && in.Waypoint != 0 && outcome == Reached {
		if !path[:len(path)-1].Contains(in.Waypoint) {
			violated |= WaypointEnforcement
		}
	}
	if props.Has(StrongLoopFreedom) && in.hasRuleCycle(updated) {
		violated |= StrongLoopFreedom
	}
	return violated
}

// hasRuleCycle reports whether the full rule graph (every switch with
// its single current rule) contains a directed cycle.
func (in *Instance) hasRuleCycle(updated State) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[topo.NodeID]int)
	var visit func(v topo.NodeID) bool
	visit = func(v topo.NodeID) bool {
		color[v] = grey
		if next, ok := in.NextHop(v, func(n topo.NodeID) bool { return updated[n] }); ok {
			switch color[next] {
			case grey:
				return true
			case white:
				if visit(next) {
					return true
				}
			}
		}
		color[v] = black
		return false
	}
	for _, v := range in.Nodes() {
		if color[v] == white && visit(v) {
			return true
		}
	}
	return false
}
