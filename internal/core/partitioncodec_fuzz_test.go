package core

import (
	"bytes"
	"testing"

	"tsu/internal/topo"
)

// FuzzPartitionRoundTrip fuzzes the partition wire codec:
// DecodePartition must never panic, and because the encoding is
// canonical, every successful decode must re-encode to the identical
// bytes (and decode again to the identical partition).
func FuzzPartitionRoundTrip(f *testing.F) {
	in := MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	for _, name := range Names() {
		for _, sparse := range []bool{false, true} {
			p, err := PlanByName(in, name, 0, sparse)
			if err != nil {
				continue
			}
			for _, sp := range p.Partition() {
				f.Add(EncodePartition(&sp))
			}
		}
	}
	f.Add(EncodePartition(&SwitchPartition{Switch: 7, Algorithm: "empty"}))
	f.Add([]byte("TSQP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := DecodePartition(data)
		if err != nil {
			return
		}
		enc := EncodePartition(sp)
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode→encode not identity:\n in  %x\n out %x", data, enc)
		}
		sp2, err := DecodePartition(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodePartition(sp2), enc) {
			t.Fatal("second round trip diverged")
		}
	})
}
