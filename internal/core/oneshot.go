package core

import "tsu/internal/topo"

// OneShot returns the baseline schedule a consistency-oblivious
// controller produces: every FlowMod in a single round, no barriers in
// between. Under an asynchronous control channel the transient states
// are arbitrary rule mixtures, so no property is guaranteed — this is
// the comparator that exhibits transient loops and waypoint bypasses in
// the experiments.
func OneShot(in *Instance) *Schedule {
	s := &Schedule{Algorithm: AlgoOneShot, Guarantees: 0}
	if pending := in.Pending(); len(pending) > 0 {
		s.Rounds = [][]topo.NodeID{pending}
	}
	return s
}
