package core

import (
	"fmt"

	"tsu/internal/topo"
)

// CounterExample witnesses a transient-consistency violation: a
// reachable intermediate state (completed rounds plus the Updated
// subset of the in-flight round) together with the offending forwarding
// walk. Updated is keyed by the instance's node index; use
// Instance.StateNodes to list the switches.
type CounterExample struct {
	Updated  State     // the violating rule state
	Walk     topo.Path // forwarding walk from the source in that state
	Violated Property  // which property the state violates
}

func (c *CounterExample) String() string {
	return fmt.Sprintf("violation{%s, walk %v}", c.Violated, c.Walk)
}

// DefaultCheckBudget bounds the number of walk steps explored by the
// exact subset checker before it reports inexactness. Each branch point
// doubles the work, so the budget effectively caps rounds at roughly
// 20 walk-reachable in-flight switches.
const DefaultCheckBudget = 1 << 20

// RoundSafeStrongLF reports whether every subset of round, applied on
// top of done, keeps the full rule graph acyclic (strong loop freedom).
//
// The check is exact and polynomial: consider the graph in which
// completed and non-pending switches carry their single current rule
// edge, untouched pending switches their old edge, and in-flight
// switches *both* their old and new edges. Any violating subset's rule
// graph is a subgraph of this double-edge graph, so a cycle there is
// necessary; conversely a double-edge cycle visits each switch at most
// once and therefore picks one edge per in-flight switch — a consistent
// subset realizing the cycle. Hence: all subsets safe ⇔ the double-edge
// graph is acyclic.
func (in *Instance) RoundSafeStrongLF(done State, round []topo.NodeID) bool {
	inRound := in.StateOf(round...)
	const (
		white = 0
		grey  = 1
		black = 2
	)
	n := len(in.nodeOf)
	var colorBuf [128]uint8
	var color []uint8
	if n <= len(colorBuf) {
		color = colorBuf[:n]
	} else {
		color = make([]uint8, n)
	}
	var visit func(i int32) bool
	visit = func(i int32) bool {
		color[i] = grey
		var succ [2]int32 // per-frame: the double-edge successors of i
		ns := 0
		if i != in.dstIdx {
			switch {
			case !in.pendingBits.Has(int(i)):
				if s := in.newSuccIdx[i]; s >= 0 {
					succ[ns] = s
					ns++
				} else if s := in.oldSuccIdx[i]; s >= 0 {
					succ[ns] = s
					ns++
				}
			case done.Has(int(i)):
				succ[ns] = in.newSuccIdx[i]
				ns++
			default:
				if inRound.Has(int(i)) {
					succ[ns] = in.newSuccIdx[i]
					ns++
				}
				if s := in.oldSuccIdx[i]; s >= 0 {
					succ[ns] = s
					ns++
				}
			}
		}
		for k := 0; k < ns; k++ {
			switch color[succ[k]] {
			case grey:
				return true
			case white:
				if visit(succ[k]) {
					return true
				}
			}
		}
		color[i] = black
		return false
	}
	for i := 0; i < n; i++ {
		if color[i] == white && visit(int32(i)) {
			return false
		}
	}
	return true
}

// CheckRound exactly decides whether some subset of round, applied on
// top of done, violates one of the walk-based properties (NoBlackhole,
// RelaxedLoopFreedom, WaypointEnforcement). It returns the first
// counterexample found, or nil when all subsets are safe. StrongLoopFreedom
// in props is delegated to RoundSafeStrongLF.
//
// The search walks from the source, branching (updated / not yet) only
// at in-flight switches the walk actually visits, so the cost is
// 2^(walk-reachable in-flight switches) rather than 2^|round|. The
// budget caps explored steps; exact=false means the budget was
// exhausted before the search completed (no violation found so far).
//
// CheckRound is read-only on the instance and safe to call from
// concurrent goroutines (the parallel verifier does). It allocates
// fresh scratch per call; loops that check many rounds should reuse a
// RoundChecker instead.
func (in *Instance) CheckRound(done State, round []topo.NodeID, props Property, budget int) (cex *CounterExample, exact bool) {
	return NewRoundChecker().Check(in, done, round, props, budget)
}

// RoundChecker is reusable scratch for CheckRound's branching subset
// search: the four per-search bitsets and the walk stack live in one
// backing array that grows to the largest instance seen and is zeroed —
// not reallocated — between calls. One RoundChecker per worker
// goroutine; it is not safe for concurrent use.
type RoundChecker struct {
	c   roundChecker
	buf State // backing array for the four scratch bitsets
}

// NewRoundChecker returns an empty checker; buffers are sized on first
// use.
func NewRoundChecker() *RoundChecker { return &RoundChecker{} }

// Check is CheckRound on this checker's scratch buffers.
func (rc *RoundChecker) Check(in *Instance, done State, round []topo.NodeID, props Property, budget int) (cex *CounterExample, exact bool) {
	if budget <= 0 {
		budget = DefaultCheckBudget
	}
	if props.Has(StrongLoopFreedom) && !in.RoundSafeStrongLF(done, round) {
		// Recover a concrete violating subset by testing singleton
		// growth; as a fallback report the full round.
		cex := in.strongLFCounterExample(done, round)
		return cex, true
	}
	walkProps := props &^ StrongLoopFreedom
	if walkProps == 0 {
		return nil, true
	}
	w := in.words
	if cap(rc.buf) < 4*w {
		rc.buf = make(State, 4*w)
	}
	rc.buf = rc.buf[:4*w]
	for i := range rc.buf {
		rc.buf[i] = 0
	}
	rc.c = roundChecker{
		in:           in,
		done:         done,
		inRound:      rc.buf[0*w : 1*w],
		props:        walkProps,
		budget:       budget,
		assignedMask: rc.buf[1*w : 2*w],
		assignedVal:  rc.buf[2*w : 3*w],
		onWalk:       rc.buf[3*w : 4*w],
		walk:         rc.c.walk[:0], // reuse the walk stack's capacity
	}
	c := &rc.c
	for _, v := range round {
		if i, ok := in.idxOf[v]; ok && in.pendingBits.Has(int(i)) && !done.Has(int(i)) {
			c.inRound.Set(int(i))
		}
	}
	c.step(in.srcIdx)
	return c.cex, !c.exhausted
}

// strongLFCounterExample finds a concrete subset of round whose rule
// graph contains a cycle. RoundSafeStrongLF already established one
// exists.
func (in *Instance) strongLFCounterExample(done State, round []topo.NodeID) *CounterExample {
	// Greedily grow a subset: adding switches one at a time, the first
	// addition that makes the single-state rule graph cyclic is a
	// witness. If no single growth order exhibits it (cycle needs
	// several specific switches in specific rule states), fall back to
	// enumerating subsets for small rounds, else report the full round.
	st := in.CloneState(done)
	for _, v := range round {
		in.Mark(st, v)
		if in.hasRuleCycle(st) {
			walk, _ := in.Walk(st)
			return &CounterExample{Updated: st, Walk: walk, Violated: StrongLoopFreedom}
		}
	}
	if len(round) <= 16 {
		for mask := 0; mask < 1<<len(round); mask++ {
			sub := in.CloneState(done)
			for i, v := range round {
				if mask&(1<<i) != 0 {
					in.Mark(sub, v)
				}
			}
			if in.hasRuleCycle(sub) {
				walk, _ := in.Walk(sub)
				return &CounterExample{Updated: sub, Walk: walk, Violated: StrongLoopFreedom}
			}
		}
	}
	walk, _ := in.Walk(st)
	return &CounterExample{Updated: st, Walk: walk, Violated: StrongLoopFreedom}
}

// roundChecker performs the branching walk search of CheckRound over
// dense node indices. The tri-state per-switch assignment (unassigned /
// updated / not yet) lives in two bitsets: assignedMask marks fixed
// switches, assignedVal their value.
type roundChecker struct {
	in           *Instance
	done         State
	inRound      State
	props        Property
	budget       int
	assignedMask State
	assignedVal  State
	onWalk       State
	walk         []int32

	cex       *CounterExample
	exhausted bool
}

func (c *roundChecker) updated(i int32) bool {
	return c.done.Has(int(i)) || (c.assignedMask.Has(int(i)) && c.assignedVal.Has(int(i)))
}

// report records a counterexample for the current branch. When tail is
// non-negative it is appended to the recorded walk (the destination for
// a bypass, the repeated switch for a loop); the dropping switch of a
// blackhole is already the last walk element.
func (c *roundChecker) report(violated Property, tail int32) {
	st := c.in.CloneState(c.done)
	for w := range st {
		st[w] |= c.assignedMask[w] & c.assignedVal[w]
	}
	walk := make(topo.Path, 0, len(c.walk)+1)
	for _, i := range c.walk {
		walk = append(walk, c.in.nodeOf[i])
	}
	if tail >= 0 {
		walk = append(walk, c.in.nodeOf[tail])
	}
	c.cex = &CounterExample{Updated: st, Walk: walk, Violated: violated}
}

// step explores the walk arriving at i; it returns true when a
// violation has been recorded (callers unwind immediately).
func (c *roundChecker) step(i int32) bool {
	if c.cex != nil {
		return true
	}
	c.budget--
	if c.budget < 0 {
		c.exhausted = true
		return false
	}
	if i == c.in.dstIdx {
		if c.props.Has(WaypointEnforcement) && c.in.wpIdx >= 0 && !c.onWalk.Has(int(c.in.wpIdx)) {
			c.report(WaypointEnforcement, i)
			return true
		}
		return false
	}
	if c.onWalk.Has(int(i)) {
		if c.props.Has(RelaxedLoopFreedom) {
			c.report(RelaxedLoopFreedom, i)
			return true
		}
		// The walk cycles: it will never reach the destination or a
		// drop, so no further property can be violated on this branch.
		return false
	}
	c.onWalk.Set(int(i))
	c.walk = append(c.walk, i)
	defer func() {
		c.onWalk.Clear(int(i))
		c.walk = c.walk[:len(c.walk)-1]
	}()

	if c.inRound.Has(int(i)) && !c.assignedMask.Has(int(i)) {
		c.assignedMask.Set(int(i))
		for _, b := range []bool{true, false} {
			if b {
				c.assignedVal.Set(int(i))
			} else {
				c.assignedVal.Clear(int(i))
			}
			if c.advance(i) {
				return true
			}
			if c.exhausted {
				break
			}
		}
		c.assignedMask.Clear(int(i))
		c.assignedVal.Clear(int(i))
		return false
	}
	return c.advance(i)
}

// advance follows i's rule under the current assignment.
func (c *roundChecker) advance(i int32) bool {
	in := c.in
	var next int32
	if in.pendingBits.Has(int(i)) {
		if c.updated(i) {
			next = in.newSuccIdx[i]
		} else {
			next = in.oldSuccIdx[i]
		}
	} else if in.newSuccIdx[i] >= 0 {
		next = in.newSuccIdx[i]
	} else {
		next = in.oldSuccIdx[i]
	}
	if next < 0 {
		if c.props.Has(NoBlackhole) {
			c.report(NoBlackhole, -1) // i is already the walk's last element
			return true
		}
		return false
	}
	return c.step(next)
}

// hasGuaranteedRule reports whether switch v is guaranteed to have a
// forwarding rule installed in every state from done onward (it is the
// destination, is non-pending, already done, or carries an old rule).
// Only untouched new-path-only switches lack rules. Schedulers use this
// to avoid transient blackholes.
func (in *Instance) hasGuaranteedRule(v topo.NodeID, done State) bool {
	if v == in.Dst() || !in.pending[v] || in.Updated(done, v) {
		return true
	}
	return in.OnOld(v)
}
