package core

import (
	"fmt"

	"tsu/internal/topo"
)

// CounterExample witnesses a transient-consistency violation: a
// reachable intermediate state (completed rounds plus the Updated
// subset of the in-flight round) together with the offending forwarding
// walk.
type CounterExample struct {
	Updated  State     // the violating rule state
	Walk     topo.Path // forwarding walk from the source in that state
	Violated Property  // which property the state violates
}

func (c *CounterExample) String() string {
	return fmt.Sprintf("violation{%s, walk %v}", c.Violated, c.Walk)
}

// DefaultCheckBudget bounds the number of walk steps explored by the
// exact subset checker before it reports inexactness. Each branch point
// doubles the work, so the budget effectively caps rounds at roughly
// 20 walk-reachable in-flight switches.
const DefaultCheckBudget = 1 << 20

// RoundSafeStrongLF reports whether every subset of round, applied on
// top of done, keeps the full rule graph acyclic (strong loop freedom).
//
// The check is exact and polynomial: consider the graph in which
// completed and non-pending switches carry their single current rule
// edge, untouched pending switches their old edge, and in-flight
// switches *both* their old and new edges. Any violating subset's rule
// graph is a subgraph of this double-edge graph, so a cycle there is
// necessary; conversely a double-edge cycle visits each switch at most
// once and therefore picks one edge per in-flight switch — a consistent
// subset realizing the cycle. Hence: all subsets safe ⇔ the double-edge
// graph is acyclic.
func (in *Instance) RoundSafeStrongLF(done State, round []topo.NodeID) bool {
	inRound := make(map[topo.NodeID]bool, len(round))
	for _, v := range round {
		inRound[v] = true
	}
	edges := func(v topo.NodeID) []topo.NodeID {
		if v == in.Dst() {
			return nil
		}
		var out []topo.NodeID
		if !in.pending[v] {
			if n, ok := in.NextHop(v, nil); ok {
				out = append(out, n)
			}
			return out
		}
		if done[v] {
			return append(out, in.newSucc[v])
		}
		if inRound[v] {
			out = append(out, in.newSucc[v])
		}
		if n, ok := in.oldSucc[v]; ok {
			out = append(out, n)
		}
		return out
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[topo.NodeID]int)
	var visit func(v topo.NodeID) bool
	visit = func(v topo.NodeID) bool {
		color[v] = grey
		for _, n := range edges(v) {
			switch color[n] {
			case grey:
				return true
			case white:
				if visit(n) {
					return true
				}
			}
		}
		color[v] = black
		return false
	}
	for _, v := range in.Nodes() {
		if color[v] == white && visit(v) {
			return false
		}
	}
	return true
}

// CheckRound exactly decides whether some subset of round, applied on
// top of done, violates one of the walk-based properties (NoBlackhole,
// RelaxedLoopFreedom, WaypointEnforcement). It returns the first
// counterexample found, or nil when all subsets are safe. StrongLoopFreedom
// in props is delegated to RoundSafeStrongLF.
//
// The search walks from the source, branching (updated / not yet) only
// at in-flight switches the walk actually visits, so the cost is
// 2^(walk-reachable in-flight switches) rather than 2^|round|. The
// budget caps explored steps; exact=false means the budget was
// exhausted before the search completed (no violation found so far).
func (in *Instance) CheckRound(done State, round []topo.NodeID, props Property, budget int) (cex *CounterExample, exact bool) {
	if budget <= 0 {
		budget = DefaultCheckBudget
	}
	if props.Has(StrongLoopFreedom) && !in.RoundSafeStrongLF(done, round) {
		// Recover a concrete violating subset by testing singleton
		// growth; as a fallback report the full round.
		cex := in.strongLFCounterExample(done, round)
		return cex, true
	}
	walkProps := props &^ StrongLoopFreedom
	if walkProps == 0 {
		return nil, true
	}
	c := &roundChecker{
		in:       in,
		done:     done,
		inRound:  make(map[topo.NodeID]bool, len(round)),
		props:    walkProps,
		budget:   budget,
		assigned: make(map[topo.NodeID]bool),
		onWalk:   make(map[topo.NodeID]bool),
	}
	for _, v := range round {
		if in.pending[v] && !done[v] {
			c.inRound[v] = true
		}
	}
	c.step(in.Src())
	return c.cex, !c.exhausted
}

// strongLFCounterExample finds a concrete subset of round whose rule
// graph contains a cycle. RoundSafeStrongLF already established one
// exists.
func (in *Instance) strongLFCounterExample(done State, round []topo.NodeID) *CounterExample {
	// Greedily grow a subset: adding switches one at a time, the first
	// addition that makes the single-state rule graph cyclic is a
	// witness. If no single growth order exhibits it (cycle needs
	// several specific switches in specific rule states), fall back to
	// enumerating subsets for small rounds, else report the full round.
	st := done.Clone()
	for _, v := range round {
		st[v] = true
		if in.hasRuleCycle(st) {
			walk, _ := in.Walk(st)
			return &CounterExample{Updated: st, Walk: walk, Violated: StrongLoopFreedom}
		}
	}
	if len(round) <= 16 {
		for mask := 0; mask < 1<<len(round); mask++ {
			st := done.Clone()
			for i, v := range round {
				if mask&(1<<i) != 0 {
					st[v] = true
				}
			}
			if in.hasRuleCycle(st) {
				walk, _ := in.Walk(st)
				return &CounterExample{Updated: st, Walk: walk, Violated: StrongLoopFreedom}
			}
		}
	}
	walk, _ := in.Walk(st)
	return &CounterExample{Updated: st, Walk: walk, Violated: StrongLoopFreedom}
}

// roundChecker performs the branching walk search of CheckRound.
type roundChecker struct {
	in       *Instance
	done     State
	inRound  map[topo.NodeID]bool
	props    Property
	budget   int
	assigned map[topo.NodeID]bool
	onWalk   map[topo.NodeID]bool
	walk     topo.Path

	cex       *CounterExample
	exhausted bool
}

func (c *roundChecker) updated(v topo.NodeID) bool {
	if c.done[v] {
		return true
	}
	b, ok := c.assigned[v]
	return ok && b
}

// report records a counterexample for the current branch. When tail is
// non-zero it is appended to the recorded walk (the destination for a
// bypass, the repeated switch for a loop); the dropping switch of a
// blackhole is already the last walk element.
func (c *roundChecker) report(violated Property, tail topo.NodeID) {
	st := c.done.Clone()
	for n, b := range c.assigned {
		if b {
			st[n] = true
		}
	}
	walk := c.walk.Clone()
	if tail != 0 {
		walk = append(walk, tail)
	}
	c.cex = &CounterExample{Updated: st, Walk: walk, Violated: violated}
}

// step explores the walk arriving at v; it returns true when a
// violation has been recorded (callers unwind immediately).
func (c *roundChecker) step(v topo.NodeID) bool {
	if c.cex != nil {
		return true
	}
	c.budget--
	if c.budget < 0 {
		c.exhausted = true
		return false
	}
	if v == c.in.Dst() {
		if c.props.Has(WaypointEnforcement) && c.in.Waypoint != 0 && !c.onWalk[c.in.Waypoint] {
			c.report(WaypointEnforcement, v)
			return true
		}
		return false
	}
	if c.onWalk[v] {
		if c.props.Has(RelaxedLoopFreedom) {
			c.report(RelaxedLoopFreedom, v)
			return true
		}
		// The walk cycles: it will never reach the destination or a
		// drop, so no further property can be violated on this branch.
		return false
	}
	c.onWalk[v] = true
	c.walk = append(c.walk, v)
	defer func() {
		delete(c.onWalk, v)
		c.walk = c.walk[:len(c.walk)-1]
	}()

	if c.inRound[v] {
		if _, fixed := c.assigned[v]; !fixed {
			for _, b := range []bool{true, false} {
				c.assigned[v] = b
				if c.advance(v) {
					return true
				}
				if c.exhausted {
					break
				}
			}
			delete(c.assigned, v)
			return false
		}
	}
	return c.advance(v)
}

// advance follows v's rule under the current assignment.
func (c *roundChecker) advance(v topo.NodeID) bool {
	next, ok := c.in.NextHop(v, c.updated)
	if !ok {
		if c.props.Has(NoBlackhole) {
			c.report(NoBlackhole, 0) // v is already the walk's last element
			return true
		}
		return false
	}
	return c.step(next)
}

// hasGuaranteedRule reports whether switch v is guaranteed to have a
// forwarding rule installed in every state from done onward (it is the
// destination, is non-pending, already done, or carries an old rule).
// Only untouched new-path-only switches lack rules. Schedulers use this
// to avoid transient blackholes.
func (in *Instance) hasGuaranteedRule(v topo.NodeID, done State) bool {
	if v == in.Dst() || !in.pending[v] || done[v] {
		return true
	}
	return in.OnOld(v)
}
