package core

import (
	"math/rand"
	"reflect"
	"testing"

	"tsu/internal/topo"
)

func fig1Instance(t *testing.T) *Instance {
	t.Helper()
	return MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
}

// TestPlanFromScheduleRoundTrip pins the lossless conversion: every
// registered scheduler's rounds convert to a layered plan whose
// Rounds()/Schedule() views reproduce the original schedule, with the
// expected shape.
func TestPlanFromScheduleRoundTrip(t *testing.T) {
	in := fig1Instance(t)
	for _, name := range Names() {
		s, err := MustScheduler(name).Schedule(in, 0)
		if err != nil {
			if name == AlgoGreedySLF {
				continue // may stall; not under test here
			}
			t.Fatalf("%s: %v", name, err)
		}
		p := PlanFromSchedule(s)
		if err := p.Validate(in); err != nil {
			t.Fatalf("%s: layered plan invalid: %v", name, err)
		}
		rounds, layered := p.Rounds()
		if !layered {
			t.Fatalf("%s: layered plan not detected as layered", name)
		}
		if !reflect.DeepEqual(rounds, s.Rounds) {
			t.Fatalf("%s: rounds round-trip: got %v want %v", name, rounds, s.Rounds)
		}
		back, ok := p.Schedule()
		if !ok || back.Algorithm != s.Algorithm || back.Guarantees != s.Guarantees {
			t.Fatalf("%s: schedule view = %+v ok=%t", name, back, ok)
		}
		if p.Depth() != s.NumRounds() {
			t.Fatalf("%s: depth %d, want round count %d", name, p.Depth(), s.NumRounds())
		}
		wantWidth := 0
		for _, r := range s.Rounds {
			if len(r) > wantWidth {
				wantWidth = len(r)
			}
		}
		if p.Width() != wantWidth {
			t.Fatalf("%s: width %d, want %d", name, p.Width(), wantWidth)
		}
		if p.CriticalPath() != s.NumRounds()-1 {
			t.Fatalf("%s: critical path %d, want %d", name, p.CriticalPath(), s.NumRounds()-1)
		}
	}
}

// TestLayeredPlanIdealsAreRoundStates pins the state-space equivalence
// the whole plan layer rests on: the order ideals of a layered plan
// are exactly the schedule's reachable round states (completed rounds
// plus any subset of one in-flight round).
func TestLayeredPlanIdealsAreRoundStates(t *testing.T) {
	in := fig1Instance(t)
	s, err := WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	p := PlanFromSchedule(s)
	ideals := p.IdealStates(in)

	// Enumerate round states directly.
	var want []State
	seen := map[string]bool{}
	add := func(st State) {
		k := stateKey(st)
		if !seen[k] {
			seen[k] = true
			want = append(want, st)
		}
	}
	done := in.NewState()
	for _, round := range s.Rounds {
		for mask := 0; mask < 1<<len(round); mask++ {
			st := in.CloneState(done)
			for j, v := range round {
				if mask&(1<<j) != 0 {
					in.Mark(st, v)
				}
			}
			add(st)
		}
		in.Mark(done, round...)
	}
	add(in.CloneState(done))

	if len(ideals) != len(want) {
		t.Fatalf("ideal count %d, want %d round states", len(ideals), len(want))
	}
	got := map[string]bool{}
	for _, st := range ideals {
		got[stateKey(st)] = true
	}
	for _, st := range want {
		if !got[stateKey(st)] {
			t.Fatalf("round state %v missing from plan ideals", in.StateNodes(st))
		}
	}
}

func stateKey(st State) string {
	b := make([]byte, 0, 8*len(st))
	for _, w := range st {
		for k := 0; k < 8; k++ {
			b = append(b, byte(w>>(8*k)))
		}
	}
	return string(b)
}

// TestSparsePlanFig1 pins the sparse derivation on the Fig.1 update
// (no waypoint, so Peacock applies): the only edges are the new-only
// rule chains feeding each old-path switch — 7,8 → 1 and 9,10,11 → 3
// — and the derived plan is safe in every order ideal.
func TestSparsePlanFig1(t *testing.T) {
	in := MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, 0)
	p, err := PlanByName(in, AlgoPeacock, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Sparse {
		t.Fatalf("peacock Fig.1 plan not sparse: %s", p)
	}
	if err := p.Validate(in); err != nil {
		t.Fatal(err)
	}
	if g, w := p.NumEdges(), 5; g != w {
		t.Fatalf("edges = %d, want %d (%s)", g, w, p)
	}
	deps := map[topo.NodeID][]topo.NodeID{}
	for _, nd := range p.Nodes {
		var ds []topo.NodeID
		for _, d := range nd.Deps {
			ds = append(ds, p.Nodes[d].Switch)
		}
		deps[nd.Switch] = ds
	}
	if !reflect.DeepEqual(deps[1], []topo.NodeID{7, 8}) {
		t.Fatalf("deps of 1 = %v, want [7 8]", deps[1])
	}
	if !reflect.DeepEqual(deps[3], []topo.NodeID{9, 10, 11}) {
		t.Fatalf("deps of 3 = %v, want [9 10 11]", deps[3])
	}
	// The sparse plan must still be provably safe: every ideal clean.
	w := in.NewWalker()
	idx := make([]int, len(p.Nodes))
	for i, nd := range p.Nodes {
		idx[i] = in.NodeIndex(nd.Switch)
	}
	complete := p.VisitIdeals(
		func(node int, _ bool) { w.Flip(idx[node]) },
		func() bool { return w.Check(p.Guarantees) == 0 })
	if !complete {
		t.Fatal("sparse plan has a violating order ideal")
	}
}

// TestSparsePlanNeverWeakensGuarantees property-tests the SparsePlan
// backstop: for random two-path instances, every sparse plan emitted
// by a PlanScheduler keeps its guarantees in every order ideal.
func TestSparsePlanNeverWeakensGuarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		ti := topo.RandomTwoPath(rng, 4+rng.Intn(9), false)
		in := MustInstance(ti.Old, ti.New, 0)
		if in.NumPending() == 0 {
			continue
		}
		for _, name := range []string{AlgoPeacock, AlgoGreedySLF} {
			ps, ok := MustScheduler(name).(PlanScheduler)
			if !ok {
				t.Fatalf("%s does not implement PlanScheduler", name)
			}
			p, err := ps.Plan(in, 0)
			if err != nil {
				continue // scheduler declined the instance
			}
			if err := p.Validate(in); err != nil {
				t.Fatalf("%s on %v: invalid plan: %v", name, in, err)
			}
			w := in.NewWalker()
			idx := make([]int, len(p.Nodes))
			for i, nd := range p.Nodes {
				idx[i] = in.NodeIndex(nd.Switch)
			}
			complete := p.VisitIdeals(
				func(node int, _ bool) { w.Flip(idx[node]) },
				func() bool { return w.Check(p.Guarantees) == 0 })
			if !complete {
				t.Fatalf("%s on %v: sparse=%t plan violates %s in some ideal",
					name, in, p.Sparse, p.Guarantees)
			}
		}
	}
}

// TestSparsePlanComb pins the branch-parallel family the dispatch
// benchmark runs on: GreedySLF needs chainLen+1 lock-step rounds on a
// comb, while its sparse plan has depth 2 — each detour chain feeds
// only its own spine switch. The small comb's ideal space fits the
// exhaustive proof; the benchmark-sized one exercises the
// walk-projection argument plus spot-check path. Both must come out
// sparse.
func TestSparsePlanComb(t *testing.T) {
	for _, tc := range []struct{ k, chainLen int }{{3, 4}, {12, 8}} {
		ti := topo.Comb(tc.k, tc.chainLen)
		in := MustInstance(ti.Old, ti.New, 0)
		s, err := GreedySLF(in)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumRounds() != tc.chainLen+1 {
			t.Fatalf("Comb(%d,%d): greedy rounds = %d, want %d",
				tc.k, tc.chainLen, s.NumRounds(), tc.chainLen+1)
		}
		p := SparsePlan(in, s)
		if !p.Sparse {
			t.Fatalf("Comb(%d,%d): plan fell back to layered", tc.k, tc.chainLen)
		}
		if p.Depth() != 2 || p.NumEdges() != tc.k*tc.chainLen {
			t.Fatalf("Comb(%d,%d): depth %d edges %d, want depth 2, %d edges",
				tc.k, tc.chainLen, p.Depth(), p.NumEdges(), tc.k*tc.chainLen)
		}
	}
}

// TestPlanRun drives the dispatch bookkeeping over the Fig.1 sparse
// plan: roots release immediately, each completion releases exactly
// the nodes whose dependencies are all confirmed, and the run drains.
func TestPlanRun(t *testing.T) {
	in := MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, 0)
	p, err := PlanByName(in, AlgoPeacock, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	run := NewPlanRun(p)
	ready := run.Reset(nil)
	if len(ready) != 5 { // the five new-only switches
		t.Fatalf("initial ready = %v, want the 5 roots", ready)
	}
	if run.Remaining() != p.NumNodes() {
		t.Fatalf("remaining = %d", run.Remaining())
	}
	completed := map[int]bool{}
	queue := append([]int(nil), ready...)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, d := range p.Nodes[i].Deps {
			if !completed[d] {
				t.Fatalf("node %d released before dep %d completed", i, d)
			}
		}
		completed[i] = true
		queue = append(queue, run.Complete(i, nil)...)
	}
	if len(completed) != p.NumNodes() || run.Remaining() != 0 {
		t.Fatalf("completed %d of %d, remaining %d", len(completed), p.NumNodes(), run.Remaining())
	}
}

// TestPlanCodecRoundTrip pins decode(encode(p)) == p for layered and
// sparse plans of every registered scheduler.
func TestPlanCodecRoundTrip(t *testing.T) {
	in := fig1Instance(t)
	var plans []*Plan
	for _, name := range Names() {
		s, err := MustScheduler(name).Schedule(in, 0)
		if err != nil {
			continue
		}
		plans = append(plans, PlanFromSchedule(s))
		if p, err := PlanByName(in, name, 0, true); err == nil {
			plans = append(plans, p)
		}
	}
	plans = append(plans, &Plan{Algorithm: "empty"})
	for _, p := range plans {
		enc := EncodePlan(p)
		dec, err := DecodePlan(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", p, err)
		}
		if !reflect.DeepEqual(normalizePlan(p), normalizePlan(dec)) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dec, p)
		}
		reenc := EncodePlan(dec)
		if !reflect.DeepEqual(enc, reenc) {
			t.Fatalf("%s: re-encode differs", p)
		}
	}
}

// normalizePlan maps empty dep slices to nil so DeepEqual compares
// structure, not nil-vs-empty encoding artifacts.
func normalizePlan(p *Plan) *Plan {
	c := *p
	c.Nodes = make([]PlanNode, len(p.Nodes))
	for i, n := range p.Nodes {
		c.Nodes[i] = n
		if len(n.Deps) == 0 {
			c.Nodes[i].Deps = nil
		}
	}
	return &c
}

// TestPlanCodecRejects pins structured failures (never panics) on
// malformed wire bytes.
func TestPlanCodecRejects(t *testing.T) {
	in := fig1Instance(t)
	s, err := WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	good := EncodePlan(PlanFromSchedule(s))
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("NOPE"),
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte{}, good...), 0),
		"bad version":  append([]byte("TSUP"), 99),
		"self dep":     {'T', 'S', 'U', 'P', 1, 0, 0, 0, 1, 1, 1, 0},
		"huge nodes":   {'T', 'S', 'U', 'P', 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"nonminimal":   {'T', 'S', 'U', 'P', 1, 0x80, 0x00, 0, 0, 0},
		"unknown flag": {'T', 'S', 'U', 'P', 1, 0, 0, 8, 0},
		// Node 1 with one dep whose varint is 2^63: int() would wrap
		// negative and index-panic every consumer if accepted.
		"dep overflow": {'T', 'S', 'U', 'P', 1, 0, 0, 0, 2, 1, 0, 1, 1,
			0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01},
	}
	for name, data := range cases {
		p, err := DecodePlan(data)
		if err == nil {
			t.Fatalf("%s: decode accepted %v as %+v", name, data, p)
		}
	}
}
