package core

import (
	"fmt"

	"tsu/internal/topo"
)

// Peacock schedules the update under relaxed (weak) loop freedom — the
// property the paper demonstrates for the Peacock algorithm (Ludwig,
// Marcinkowski, Schmid, PODC'15): in every reachable transient state
// the forwarding walk from the source is loop-free and reaches the
// destination; stale rules at switches no longer reachable from the
// source may disagree. The relaxation is what allows aggressive
// batching: far fewer rounds than strong loop freedom on adversarial
// instances.
//
// The reconstruction batches with two constructive
// lemmas evaluated against the current inter-round walk W:
//
//   - L1 (off-walk): pending switches not on W can all be flipped in
//     one round — flipping switches off the walk never changes the
//     walk, so under every subset they remain unreachable.
//   - L2 (forward landing): pending switches on W whose new-rule chain
//     (through switches already final at round start) lands strictly
//     later on W can be flipped in the same round — every subset turns
//     the walk into W with forward shortcuts, strictly monotone in
//     W-position, hence loop-free, and it still reaches the
//     destination.
//
// Round one flips all new-path-only switches (a special case of L1:
// the initial walk is the old path). Progress is guaranteed: the
// earliest pending switch on W always gains a forward landing once its
// chain is final, and any chain blocker is itself off-walk and flips in
// the current round.
func Peacock(in *Instance) (*Schedule, error) {
	s := &Schedule{Algorithm: AlgoPeacock, Guarantees: NoBlackhole | RelaxedLoopFreedom}
	done := in.NewState()
	pending := in.Pending()
	remaining := make(map[topo.NodeID]bool, len(pending))
	for _, v := range pending {
		remaining[v] = true
	}

	// Round 1: all new-path-only switches. They are off the old-path
	// walk and nothing routes to them until an on-path switch flips in
	// a later round; afterwards every switch has a rule, so no
	// transient blackhole can occur in any later round.
	var newOnly []topo.NodeID
	for _, v := range pending {
		if in.NewOnly(v) {
			newOnly = append(newOnly, v)
		}
	}
	if len(newOnly) > 0 {
		s.Rounds = append(s.Rounds, newOnly)
		for _, v := range newOnly {
			in.Mark(done, v)
			delete(remaining, v)
		}
	}

	for len(remaining) > 0 {
		walk, outcome := in.Walk(done)
		if outcome != Reached {
			return nil, fmt.Errorf("core: peacock invariant broken: inter-round walk %s (%v)", outcome, walk)
		}
		walkPos := make(map[topo.NodeID]int, len(walk))
		for i, v := range walk {
			walkPos[v] = i
		}

		var round []topo.NodeID
		for _, v := range pending { // deterministic new-path order
			if !remaining[v] {
				continue
			}
			if _, onWalk := walkPos[v]; !onWalk {
				round = append(round, v) // L1
				continue
			}
			if land, ok := in.forwardLanding(v, done, walkPos); ok && land > walkPos[v] {
				round = append(round, v) // L2
			}
		}
		if len(round) == 0 {
			return nil, fmt.Errorf("core: peacock stalled with %d pending switches on %v", len(remaining), in)
		}
		s.Rounds = append(s.Rounds, round)
		for _, v := range round {
			in.Mark(done, v)
			delete(remaining, v)
		}
	}
	return s, nil
}

// forwardLanding follows v's new rule through switches that are already
// final (done or never pending) until it hits a walk switch, and
// returns that switch's walk position. It fails when the chain crosses
// a still-pending off-walk switch — such a switch has no stable rule
// within the round, so L2 does not apply (the blocker itself is flipped
// via L1 this round, unblocking v for the next round).
func (in *Instance) forwardLanding(v topo.NodeID, done State, walkPos map[topo.NodeID]int) (int, bool) {
	cur := in.newSucc[v]
	for steps := 0; steps <= len(in.New); steps++ {
		if pos, ok := walkPos[cur]; ok {
			return pos, true
		}
		// Off-walk: the chain may only continue over final switches,
		// whose sole rule is their new-path successor.
		if in.pending[cur] && !in.Updated(done, cur) {
			return 0, false
		}
		next, ok := in.newSucc[cur]
		if !ok {
			// Final switch off the walk without a new-path successor:
			// cur is the destination — but the destination is always on
			// the walk. Defensive: treat as no landing.
			return 0, false
		}
		cur = next
	}
	return 0, false // defensive: new-path chains cannot cycle (path is simple)
}
