package core

import (
	"fmt"

	"tsu/internal/topo"
)

// PlanDraft is a mutable happens-before graph over an instance's
// pending switches — the object a plan synthesizer refines. It starts
// with no edges (install everything concurrently; the ideal space is
// the full powerset) and grows one dependency at a time: adding the
// edge u→v removes from the reachable ideal space exactly the ideals
// that contain v but not u, and removes nothing else. Because every
// reachable transient state of the emitted Plan is an order ideal,
// each accepted counterexample ideal is eliminated permanently by one
// blocking edge — the monotone-progress argument behind the CEGIS
// loop in internal/synth, which also bounds it to at most
// k·(k-1)/2 refinements.
//
// Draft node indices are fixed at construction (Instance.Pending
// order) and independent of the topological positions the emitted
// Plan assigns; Plan() returns the mapping via its node order.
type PlanDraft struct {
	in    *Instance
	nodes []topo.NodeID
	idx   map[topo.NodeID]int
	pred  [][]int // pred[v]: draft indices that must complete before v
	succ  [][]int
	edges int
}

// NewPlanDraft returns the edgeless draft over in's pending switches.
func NewPlanDraft(in *Instance) *PlanDraft {
	nodes := in.Pending()
	d := &PlanDraft{
		in:    in,
		nodes: nodes,
		idx:   make(map[topo.NodeID]int, len(nodes)),
		pred:  make([][]int, len(nodes)),
		succ:  make([][]int, len(nodes)),
	}
	for i, v := range nodes {
		d.idx[v] = i
	}
	return d
}

// NumNodes returns the number of draft nodes (pending switches).
func (d *PlanDraft) NumNodes() int { return len(d.nodes) }

// NumEdges returns the number of happens-before edges added so far.
func (d *PlanDraft) NumEdges() int { return d.edges }

// Switch returns the switch at draft index i.
func (d *PlanDraft) Switch(i int) topo.NodeID { return d.nodes[i] }

// IndexOf returns the draft index of switch v, or -1 when v is not a
// pending switch.
func (d *PlanDraft) IndexOf(v topo.NodeID) int {
	if i, ok := d.idx[v]; ok {
		return i
	}
	return -1
}

// HasEdge reports whether the direct edge u→v is present.
func (d *PlanDraft) HasEdge(u, v int) bool {
	for _, p := range d.pred[v] {
		if p == u {
			return true
		}
	}
	return false
}

// reaches reports whether v is reachable from u along happens-before
// edges (u itself counts).
func (d *PlanDraft) reaches(u, v int) bool {
	if u == v {
		return true
	}
	seen := make([]bool, len(d.nodes))
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range d.succ[w] {
			if s == v {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// AddEdge adds the happens-before edge u→v ("u's barrier before v's
// FlowMod"). It rejects self-loops, duplicates, and edges that would
// close a cycle.
func (d *PlanDraft) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("core: draft edge %d->%d is a self-loop", u, v)
	}
	if u < 0 || v < 0 || u >= len(d.nodes) || v >= len(d.nodes) {
		return fmt.Errorf("core: draft edge %d->%d out of range [0,%d)", u, v, len(d.nodes))
	}
	if d.HasEdge(u, v) {
		return fmt.Errorf("core: draft edge %d->%d already present", u, v)
	}
	if d.reaches(v, u) {
		return fmt.Errorf("core: draft edge %d->%d would close a cycle", u, v)
	}
	d.pred[v] = append(d.pred[v], u)
	d.succ[u] = append(d.succ[u], v)
	d.edges++
	return nil
}

// depthWith returns the plan depth (longest happens-before chain, in
// installs) with the extra edge eu→ev injected; pass (-1, -1) for the
// current depth. The draft is guaranteed acyclic, so plain memoized
// recursion over predecessors suffices.
func (d *PlanDraft) depthWith(eu, ev int) int {
	n := len(d.nodes)
	if n == 0 {
		return 0
	}
	memo := make([]int, n)
	for i := range memo {
		memo[i] = -1
	}
	var height func(v int) int
	height = func(v int) int {
		if memo[v] >= 0 {
			return memo[v]
		}
		h := 0
		for _, u := range d.pred[v] {
			if hu := height(u) + 1; hu > h {
				h = hu
			}
		}
		if v == ev {
			if hu := height(eu) + 1; hu > h {
				h = hu
			}
		}
		memo[v] = h
		return h
	}
	depth := 0
	for v := 0; v < n; v++ {
		if h := height(v) + 1; h > depth {
			depth = h
		}
	}
	return depth
}

// Depth returns the current plan depth (longest chain, in installs).
func (d *PlanDraft) Depth() int { return d.depthWith(-1, -1) }

// DepthWithEdge returns the depth the draft would have after
// AddEdge(u, v), without mutating it — the synthesizer's candidate
// scoring primitive.
func (d *PlanDraft) DepthWithEdge(u, v int) int { return d.depthWith(u, v) }

// Plan emits the draft as a Plan in deterministic topological order
// (Kahn's algorithm, smallest ready draft index first). The result is
// marked Sparse unless its dependency closure happens to be layered,
// in which case the canonical layered form is kept — so the edgeless
// draft emits the one-round concurrent plan and downstream layered
// fast paths still apply.
func (d *PlanDraft) Plan(algorithm string, guarantees Property) *Plan {
	n := len(d.nodes)
	indeg := make([]int, n)
	for v := range d.pred {
		indeg[v] = len(d.pred[v])
	}
	placed := make([]bool, n)
	pos := make([]int, n) // draft index -> plan position
	order := make([]int, 0, n)
	for len(order) < n {
		m := -1
		for v := 0; v < n; v++ {
			if !placed[v] && indeg[v] == 0 {
				m = v
				break
			}
		}
		if m == -1 {
			// Unreachable: AddEdge keeps the draft acyclic.
			panic("core: PlanDraft cycle")
		}
		placed[m] = true
		pos[m] = len(order)
		order = append(order, m)
		for _, s := range d.succ[m] {
			indeg[s]--
		}
	}
	p := &Plan{
		Algorithm:  algorithm,
		Guarantees: guarantees,
		Sparse:     true,
		Nodes:      make([]PlanNode, n),
	}
	for k, v := range order {
		var deps []int
		if len(d.pred[v]) > 0 {
			deps = make([]int, 0, len(d.pred[v]))
			for _, u := range d.pred[v] {
				deps = append(deps, pos[u])
			}
			sortedUniqueInts(&deps)
		}
		p.Nodes[k] = PlanNode{Switch: d.nodes[v], Deps: deps}
	}
	if _, layered := p.Rounds(); layered {
		p.Sparse = false
	}
	return p
}

// BlockingEdges maps a violating order ideal back to the candidate
// happens-before edges that eliminate it: every returned pair (u, v)
// has v ∈ ideal and u ∉ ideal, so after AddEdge(u, v) no reachable
// ideal contains the violating set again. ideal holds draft indices
// and must be down-closed under the current edges (any ideal the
// emitted Plan can reach is). Candidates prefer v maximal in the
// ideal — blocking the last flip that completed the bad state — and
// widen to every v ∈ ideal only when all maximal choices would close
// a cycle. Pairs are emitted in deterministic (v, u) ascending order,
// capped at max when max > 0; an empty result means the ideal cannot
// be blocked without a cycle (a refinement dead end).
func (d *PlanDraft) BlockingEdges(ideal []int, max int) [][2]int {
	n := len(d.nodes)
	inIdeal := make([]bool, n)
	for _, v := range ideal {
		inIdeal[v] = true
	}
	collect := func(maximalOnly bool) [][2]int {
		var out [][2]int
		for _, v := range ideal {
			if maximalOnly {
				// v is maximal iff no direct successor is in the ideal;
				// down-closure makes the direct-edge test equivalent to
				// the reachability one.
				maximal := true
				for _, s := range d.succ[v] {
					if inIdeal[s] {
						maximal = false
						break
					}
				}
				if !maximal {
					continue
				}
			}
			for u := 0; u < n; u++ {
				if inIdeal[u] || d.HasEdge(u, v) || d.reaches(v, u) {
					continue
				}
				out = append(out, [2]int{u, v})
				if max > 0 && len(out) >= max {
					return out
				}
			}
		}
		return out
	}
	// ideal is in oracle order (ascending); candidate order must not
	// depend on it.
	sorted := append([]int(nil), ideal...)
	sortedUniqueInts(&sorted)
	ideal = sorted
	if out := collect(true); len(out) > 0 {
		return out
	}
	return collect(false)
}
