package core

import (
	"bytes"
	"testing"

	"tsu/internal/topo"
)

// FuzzPlanRoundTrip fuzzes the plan wire codec: DecodePlan must never
// panic, and because the encoding is canonical, every successful
// decode must re-encode to the identical bytes (and decode again to
// the identical plan).
func FuzzPlanRoundTrip(f *testing.F) {
	in := MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	for _, name := range Names() {
		if s, err := MustScheduler(name).Schedule(in, 0); err == nil {
			f.Add(EncodePlan(PlanFromSchedule(s)))
		}
		if p, err := PlanByName(in, name, 0, true); err == nil {
			f.Add(EncodePlan(p))
		}
	}
	f.Add(EncodePlan(&Plan{Algorithm: "empty"}))
	f.Add([]byte("TSUP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePlan(data)
		if err != nil {
			return
		}
		enc := EncodePlan(p)
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode→encode not identity:\n in  %x\n out %x", data, enc)
		}
		p2, err := DecodePlan(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodePlan(p2), enc) {
			t.Fatal("second round trip diverged")
		}
	})
}
