package core

import (
	"fmt"

	"tsu/internal/topo"
)

// WayUp schedules the update under waypoint enforcement — the paper's
// "transiently secure" property (after Ludwig, Rost, Foucard, Schmid,
// HotNets'14): in every reachable transient state, any packet that
// reaches the destination has traversed the waypoint, and no packet is
// dropped. WayUp additionally preserves relaxed loop freedom whenever
// that is jointly feasible; HotNets'14 proves joint feasibility cannot
// always be achieved, in which case the schedule keeps waypoint
// enforcement and sets LoopFreedomCompromised.
//
// The reconstruction orders updates in three phases by
// position relative to the waypoint w. Write O1/O2 for strictly
// before/after w on the old path and N1/N2 for the same on the new
// path. The invariant is that packets which have not yet crossed w can
// only ever sit on rules that keep them in the pre-waypoint region:
//
//	Phase A — every pending switch at or after w on the old path
//	  (w itself, N1∩O2, N2∩O2) plus all new-path-only switches.
//	  Throughout this phase the walk from the source still follows the
//	  old prefix (no O1 switch changes), so packets reach these
//	  switches only after crossing w, or not at all; any rule they find
//	  there leads onward to the destination or back across the new
//	  prefix through w again. Safe for every subset.
//
//	Phase B — O1∩N1: switches before w on both paths. Their new rules
//	  steer pre-waypoint packets onto the new prefix, whose switches
//	  are all final after phase A; every rule reachable before w (old
//	  rules along O1, final rules along N1) leads to w before anything
//	  post-waypoint. Safe for every subset.
//
//	Phase C — the dangerous set O1∩N2: before w on the old path,
//	  after w on the new path. Updating such a switch earlier would let
//	  a packet still travelling the old prefix jump to the post-
//	  waypoint suffix, bypassing w. After phase B the source's walk is
//	  the final new prefix up to w, so these switches are no longer
//	  reachable by pre-waypoint packets and any batching is safe for
//	  waypoint enforcement.
//
// Within each phase, rounds are batched with the same constructive
// loop-freedom lemmas Peacock uses (waypoint safety is closed under
// sub-partitioning); when even single-switch rounds would loop, the
// phase is flushed (new-path-only switches first, so no transient
// blackhole appears) and the schedule is flagged. Worst-case round
// count is O(n), matching the HotNets'14 lower bound for waypoint
// enforcement.
func WayUp(in *Instance) (*Schedule, error) {
	if in.Waypoint == 0 {
		return nil, fmt.Errorf("core: wayup requires a waypoint in %v", in)
	}
	s := &Schedule{
		Algorithm:  AlgoWayUp,
		Guarantees: NoBlackhole | WaypointEnforcement,
	}
	wOld := in.OldIndex(in.Waypoint)
	wNew := in.NewIndex(in.Waypoint)
	done := in.NewState()

	var phaseA, phaseB, phaseC []topo.NodeID
	for _, v := range in.Pending() { // new-path order, deterministic
		switch {
		case in.NewOnly(v) || in.OldIndex(v) >= wOld:
			phaseA = append(phaseA, v)
		case in.NewIndex(v) < wNew:
			phaseB = append(phaseB, v)
		default:
			phaseC = append(phaseC, v)
		}
	}

	compromised := false
	for _, phase := range [][]topo.NodeID{phaseA, phaseB, phaseC} {
		compromised = in.appendLoopFreeBatches(s, done, phase) || compromised
	}

	s.LoopFreedomCompromised = compromised
	if !compromised {
		s.Guarantees |= RelaxedLoopFreedom
	}
	return s, nil
}

// appendLoopFreeBatches partitions nodes into rounds that keep the
// forwarding walk loop-free and blackhole-free in every reachable
// state, appending them to the schedule and updating done. When even
// single-switch rounds would loop (waypoint enforcement and loop
// freedom jointly infeasible), the remaining switches are flushed —
// new-path-only switches first so no transient blackhole appears — and
// the function reports the compromise.
//
// Batch construction mirrors Peacock's constructive lemmas (off-walk
// and forward-landing sets, see peacock.go); when the lemmas yield
// nothing it falls back to individually verified switches via the
// exact subset checker.
func (in *Instance) appendLoopFreeBatches(s *Schedule, done State, nodes []topo.NodeID) (compromised bool) {
	remaining := make(map[topo.NodeID]bool, len(nodes))
	for _, v := range nodes {
		remaining[v] = true
	}
	for len(remaining) > 0 {
		var round []topo.NodeID
		walk, outcome := in.Walk(done)
		if outcome == Reached {
			walkPos := make(map[topo.NodeID]int, len(walk))
			for i, v := range walk {
				walkPos[v] = i
			}
			for _, v := range nodes {
				if !remaining[v] {
					continue
				}
				if _, onWalk := walkPos[v]; !onWalk {
					round = append(round, v)
					continue
				}
				if land, ok := in.forwardLanding(v, done, walkPos); ok && land > walkPos[v] {
					round = append(round, v)
				}
			}
		}
		if len(round) == 0 {
			// Lemma-based batching found nothing (or the walk already
			// loops because an earlier phase was compromised). Try
			// individually verified single-switch rounds.
			for _, v := range nodes {
				if !remaining[v] {
					continue
				}
				cex, exact := in.CheckRound(done, []topo.NodeID{v}, NoBlackhole|RelaxedLoopFreedom, 0)
				if exact && cex == nil {
					round = []topo.NodeID{v}
					break
				}
			}
		}
		if len(round) == 0 {
			// Loop freedom is infeasible from here; preserve waypoint
			// enforcement and blackhole freedom and flush the
			// remainder.
			var newOnly, rest []topo.NodeID
			for _, v := range nodes {
				if !remaining[v] {
					continue
				}
				if in.NewOnly(v) {
					newOnly = append(newOnly, v)
				} else {
					rest = append(rest, v)
				}
			}
			for _, flush := range [][]topo.NodeID{newOnly, rest} {
				if len(flush) > 0 {
					s.Rounds = append(s.Rounds, flush)
					in.Mark(done, flush...)
				}
			}
			return true
		}
		s.Rounds = append(s.Rounds, round)
		in.Mark(done, round...)
		for _, v := range round {
			delete(remaining, v)
		}
	}
	return false
}
