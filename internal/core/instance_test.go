package core

import (
	"strings"
	"testing"

	"tsu/internal/topo"
)

func TestNewInstanceValidation(t *testing.T) {
	cases := []struct {
		name string
		old  topo.Path
		new  topo.Path
		wp   topo.NodeID
		ok   bool
	}{
		{"valid", topo.Path{1, 2, 3}, topo.Path{1, 4, 3}, 0, true},
		{"valid-wp", topo.Path{1, 2, 3}, topo.Path{1, 2, 4, 3}, 2, true},
		{"old-too-short", topo.Path{1}, topo.Path{1, 2}, 0, false},
		{"new-too-short", topo.Path{1, 2}, topo.Path{2}, 0, false},
		{"src-mismatch", topo.Path{1, 2, 3}, topo.Path{2, 3}, 0, false},
		{"dst-mismatch", topo.Path{1, 2, 3}, topo.Path{1, 2}, 0, false},
		{"old-not-simple", topo.Path{1, 2, 1, 3}, topo.Path{1, 3}, 0, false},
		{"new-not-simple", topo.Path{1, 3}, topo.Path{1, 2, 2, 3}, 0, false},
		{"wp-not-on-new", topo.Path{1, 2, 3}, topo.Path{1, 4, 3}, 2, false},
		{"wp-is-src", topo.Path{1, 2, 3}, topo.Path{1, 2, 3}, 1, false},
		{"wp-is-dst", topo.Path{1, 2, 3}, topo.Path{1, 2, 3}, 3, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewInstance(c.old, c.new, c.wp)
			if c.ok != (err == nil) {
				t.Fatalf("NewInstance(%v, %v, %d) err = %v, want ok=%v", c.old, c.new, c.wp, err, c.ok)
			}
		})
	}
}

func TestMustInstancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInstance on bad input did not panic")
		}
	}()
	MustInstance(topo.Path{1}, topo.Path{1, 2}, 0)
}

func TestPendingComputation(t *testing.T) {
	// Old 1→2→3→4, new 1→5→3→4: switch 1 changes rule, 5 is new-only,
	// 3 keeps the same successor (4) so it needs no update; 2 is
	// old-only.
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 5, 3, 4}, 0)
	want := []topo.NodeID{1, 5}
	got := in.Pending()
	if len(got) != len(want) {
		t.Fatalf("Pending = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pending = %v, want %v", got, want)
		}
	}
	if in.NumPending() != 2 {
		t.Fatalf("NumPending = %d", in.NumPending())
	}
	if !in.NeedsUpdate(1) || !in.NeedsUpdate(5) {
		t.Fatal("NeedsUpdate wrong for 1/5")
	}
	if in.NeedsUpdate(2) || in.NeedsUpdate(3) || in.NeedsUpdate(4) {
		t.Fatal("NeedsUpdate wrong for 2/3/4")
	}
}

func TestPendingOrderIsNewPathOrder(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4, 5, 6}, topo.Path{1, 5, 4, 3, 2, 6}, 0)
	got := in.Pending()
	// New-path order: 1, 5, 4, 3, 2.
	want := []topo.NodeID{1, 5, 4, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pending = %v, want %v", got, want)
		}
	}
}

func TestInstanceAccessors(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 5, 3, 4}, 3)
	if in.Src() != 1 || in.Dst() != 4 {
		t.Fatal("Src/Dst wrong")
	}
	if n, ok := in.OldSucc(2); !ok || n != 3 {
		t.Fatal("OldSucc(2) wrong")
	}
	if _, ok := in.OldSucc(4); ok {
		t.Fatal("OldSucc(dst) should be absent")
	}
	if _, ok := in.OldSucc(5); ok {
		t.Fatal("OldSucc(new-only) should be absent")
	}
	if n, ok := in.NewSucc(5); !ok || n != 3 {
		t.Fatal("NewSucc(5) wrong")
	}
	if !in.OnOld(2) || in.OnOld(5) {
		t.Fatal("OnOld wrong")
	}
	if !in.OnNew(5) || in.OnNew(2) {
		t.Fatal("OnNew wrong")
	}
	if !in.NewOnly(5) || in.NewOnly(3) || in.NewOnly(2) {
		t.Fatal("NewOnly wrong")
	}
	if in.OldIndex(3) != 2 || in.OldIndex(5) != -1 {
		t.Fatal("OldIndex wrong")
	}
	if in.NewIndex(3) != 2 || in.NewIndex(2) != -1 {
		t.Fatal("NewIndex wrong")
	}
	nodes := in.Nodes()
	if len(nodes) != 5 {
		t.Fatalf("Nodes = %v", nodes)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("Nodes not sorted: %v", nodes)
		}
	}
}

func TestInstanceCopiesPaths(t *testing.T) {
	old := topo.Path{1, 2, 3}
	in := MustInstance(old, topo.Path{1, 3}, 0)
	old[1] = 99
	if in.Old[1] != 2 {
		t.Fatal("Instance aliases caller's path slice")
	}
}

func TestInstanceString(t *testing.T) {
	in := MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 2, 4, 3}, 2)
	s := in.String()
	if !strings.Contains(s, "wp 2") {
		t.Fatalf("String misses waypoint: %q", s)
	}
	in2 := MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 3}, 0)
	if strings.Contains(in2.String(), "wp") {
		t.Fatalf("String mentions waypoint without one: %q", in2.String())
	}
}

func TestPropertyString(t *testing.T) {
	if s := (NoBlackhole | WaypointEnforcement).String(); s != "NoBlackhole|WaypointEnforcement" {
		t.Fatalf("Property.String = %q", s)
	}
	if s := Property(0).String(); s != "None" {
		t.Fatalf("zero Property.String = %q", s)
	}
	if !(NoBlackhole | StrongLoopFreedom).Has(NoBlackhole) {
		t.Fatal("Has wrong")
	}
	if (NoBlackhole).Has(NoBlackhole | StrongLoopFreedom) {
		t.Fatal("Has should require all bits")
	}
}
