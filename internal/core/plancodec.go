package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tsu/internal/topo"
)

// Binary wire codec for Plan: the canonical serialization traces and
// tools use to carry a dependency plan alongside the JSON shape
// summary. The format is versioned, length-prefixed, and strictly
// canonical — decode(encode(p)) == p and encode(decode(b)) == b for
// every valid b — so it is fuzzable for round-trip identity
// (FuzzPlanRoundTrip).
//
//	magic "TSUP", version 1
//	uvarint len(algorithm), algorithm bytes
//	byte guarantees, byte flags (bit0 sparse, bit1 lf-compromised)
//	uvarint numNodes
//	per node: uvarint switch id, uvarint numDeps,
//	          deps as uvarint deltas (first absolute, then gaps-1),
//	          which enforces the sorted-unique-ascending invariant
const (
	planMagic   = "TSUP"
	planVersion = 1

	// maxPlanWireNodes bounds decoded plans; update jobs touch at most
	// a path's worth of switches, so anything larger is corrupt input.
	maxPlanWireNodes = 1 << 20
)

// ErrPlanWire marks malformed plan wire bytes; match with errors.Is.
var ErrPlanWire = errors.New("malformed plan wire encoding")

// AppendTo appends the plan's canonical wire encoding to buf and
// returns the extended slice.
func (p *Plan) AppendTo(buf []byte) []byte {
	buf = append(buf, planMagic...)
	buf = append(buf, planVersion)
	buf = binary.AppendUvarint(buf, uint64(len(p.Algorithm)))
	buf = append(buf, p.Algorithm...)
	buf = append(buf, byte(p.Guarantees))
	var flags byte
	if p.Sparse {
		flags |= 1
	}
	if p.LoopFreedomCompromised {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(p.Nodes)))
	for _, n := range p.Nodes {
		buf = binary.AppendUvarint(buf, uint64(n.Switch))
		buf = binary.AppendUvarint(buf, uint64(len(n.Deps)))
		prev := -1
		for k, d := range n.Deps {
			if k == 0 {
				buf = binary.AppendUvarint(buf, uint64(d))
			} else {
				buf = binary.AppendUvarint(buf, uint64(d-prev-1))
			}
			prev = d
		}
	}
	return buf
}

// EncodePlan returns the plan's canonical wire encoding.
func EncodePlan(p *Plan) []byte { return p.AppendTo(nil) }

// DecodePlan parses a canonical plan wire encoding. It rejects — with
// an error wrapping ErrPlanWire, never a panic — trailing bytes, dep
// indices at or above their node, and non-canonical varints, so every
// successful decode re-encodes to the identical bytes.
func DecodePlan(data []byte) (*Plan, error) {
	d := planDecoder{buf: data}
	if string(d.take(len(planMagic))) != planMagic {
		return nil, fmt.Errorf("core: bad magic: %w", ErrPlanWire)
	}
	if v := d.byte(); v != planVersion {
		return nil, fmt.Errorf("core: plan version %d: %w", v, ErrPlanWire)
	}
	algoLen := d.uvarint()
	if algoLen > 1<<10 {
		return nil, fmt.Errorf("core: algorithm name %d bytes: %w", algoLen, ErrPlanWire)
	}
	p := &Plan{Algorithm: string(d.take(int(algoLen)))}
	p.Guarantees = Property(d.byte())
	flags := d.byte()
	if flags&^3 != 0 {
		return nil, fmt.Errorf("core: unknown plan flags %#x: %w", flags, ErrPlanWire)
	}
	p.Sparse = flags&1 != 0
	p.LoopFreedomCompromised = flags&2 != 0
	numNodes := d.uvarint()
	if numNodes > maxPlanWireNodes {
		return nil, fmt.Errorf("core: %d plan nodes: %w", numNodes, ErrPlanWire)
	}
	if d.err == nil && numNodes > 0 {
		p.Nodes = make([]PlanNode, 0, min(int(numNodes), 1<<12))
	}
	for i := 0; i < int(numNodes) && d.err == nil; i++ {
		n := PlanNode{Switch: topo.NodeID(d.uvarint())}
		numDeps := d.uvarint()
		if numDeps > uint64(i) {
			return nil, fmt.Errorf("core: node %d with %d deps: %w", i, numDeps, ErrPlanWire)
		}
		prev := -1
		for k := 0; k < int(numDeps) && d.err == nil; k++ {
			// Bound the raw varint before the int conversion: values
			// past the node cap would overflow int64 and wrap negative
			// (or, on the delta path, wrap back into range), breaking
			// both the dep >= i check and re-encode identity.
			v := d.uvarint()
			if v > maxPlanWireNodes {
				return nil, fmt.Errorf("core: node %d dep varint %d: %w", i, v, ErrPlanWire)
			}
			dep := int(v)
			if k > 0 {
				dep += prev + 1
			}
			if dep >= i {
				return nil, fmt.Errorf("core: node %d depends on node %d: %w", i, dep, ErrPlanWire)
			}
			n.Deps = append(n.Deps, dep)
			prev = dep
		}
		p.Nodes = append(p.Nodes, n)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("core: %d trailing bytes: %w", len(d.buf)-d.off, ErrPlanWire)
	}
	return p, nil
}

// planDecoder is a cursor over the wire bytes; the first failure
// sticks and every later read returns zero values.
type planDecoder struct {
	buf []byte
	off int
	err error
}

func (d *planDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("core: truncated plan: %w", ErrPlanWire)
	}
}

func (d *planDecoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	out := d.buf[d.off : d.off+n]
	d.off += n
	return out
}

func (d *planDecoder) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *planDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	// Reject non-minimal varints: canonical encodings re-encode
	// byte-identically.
	if n > 1 && d.buf[d.off+n-1] == 0 {
		d.err = fmt.Errorf("core: non-canonical varint: %w", ErrPlanWire)
		return 0
	}
	d.off += n
	return v
}
