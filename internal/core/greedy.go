package core

import (
	"fmt"

	"tsu/internal/topo"
)

// GreedySLF schedules the update under strong loop freedom: in every
// reachable transient state the full rule graph — including rules at
// switches no longer reachable from the source — stays acyclic, and no
// packet is dropped. This is the conservative comparator for Peacock
// (PODC'15 shows strong loop freedom can require Θ(n) rounds where the
// relaxed variant needs O(log n)).
//
// Construction: per round, greedily grow a switch set while (a) the
// polynomial double-edge test proves every subset keeps the rule graph
// acyclic, and (b) every added switch's new successor is guaranteed a
// rule in all states of the round (no transient blackholes — only
// untouched new-path-only switches lack rules). New-path-only switches
// are unreachable until an on-path switch routes to them, so they are
// always eligible themselves.
//
// GreedySLF returns an error when it stalls: no pending switch is
// individually safe. For two-path updates a safe sequential order
// always exists for strong loop freedom (update the earliest pending
// switch of the current walk: its new edge cannot close a cycle with
// the final prefix — see Peacock's progress argument, which applies a
// fortiori here only when the landing is forward), but adversarial
// instances can stall the *global-graph* variant; callers fall back to
// Peacock or Optimal.
func GreedySLF(in *Instance) (*Schedule, error) {
	s := &Schedule{Algorithm: AlgoGreedySLF, Guarantees: NoBlackhole | StrongLoopFreedom | RelaxedLoopFreedom}
	done := in.NewState()
	pending := in.Pending()
	remaining := make(map[topo.NodeID]bool, len(pending))
	for _, v := range pending {
		remaining[v] = true
	}
	for len(remaining) > 0 {
		var round []topo.NodeID
		for _, v := range pending { // deterministic new-path order
			if !remaining[v] {
				continue
			}
			if !in.hasGuaranteedRule(in.newSucc[v], done) {
				continue // successor could still be rule-less mid-round
			}
			trial := append(round, v)
			if in.RoundSafeStrongLF(done, trial) {
				round = trial
			}
		}
		if len(round) == 0 {
			return nil, fmt.Errorf("core: greedy-slf stalled with %d pending switches on %v", len(remaining), in)
		}
		s.Rounds = append(s.Rounds, round)
		for _, v := range round {
			in.Mark(done, v)
			delete(remaining, v)
		}
	}
	return s, nil
}
