package core

import (
	"fmt"
	"sort"

	"tsu/internal/topo"
)

// Instance is a single-policy update problem: replace the old path with
// the new path, both simple paths from the same source to the same
// destination. A non-zero Waypoint must lie strictly inside both paths;
// it marks a middlebox (firewall, IDS) that packets must never bypass.
//
// Every switch on the old path initially carries a rule forwarding to
// its old-path successor. The update installs, at every switch on the
// new path except the destination, a rule forwarding to its new-path
// successor. Switches whose old and new successors coincide need no
// FlowMod and are treated as already final.
type Instance struct {
	Old      topo.Path
	New      topo.Path
	Waypoint topo.NodeID // 0 when the policy has no waypoint

	oldSucc map[topo.NodeID]topo.NodeID
	newSucc map[topo.NodeID]topo.NodeID
	oldPos  map[topo.NodeID]int
	newPos  map[topo.NodeID]int
	pending map[topo.NodeID]bool // switches that need a FlowMod
}

// NewInstance validates and indexes an update problem. It returns an
// error when either path is malformed, the endpoints disagree, or a
// requested waypoint is not strictly interior to both paths.
func NewInstance(old, newPath topo.Path, waypoint topo.NodeID) (*Instance, error) {
	if err := old.Validate(); err != nil {
		return nil, fmt.Errorf("core: old path: %w", err)
	}
	if err := newPath.Validate(); err != nil {
		return nil, fmt.Errorf("core: new path: %w", err)
	}
	if old.Src() != newPath.Src() || old.Dst() != newPath.Dst() {
		return nil, fmt.Errorf("core: endpoint mismatch: old %v vs new %v", old, newPath)
	}
	if waypoint != 0 {
		for _, p := range []topo.Path{old, newPath} {
			i := p.Index(waypoint)
			if i <= 0 || i >= len(p)-1 {
				return nil, fmt.Errorf("core: waypoint %d not strictly interior to path %v", waypoint, p)
			}
		}
	}
	in := &Instance{
		Old:      old.Clone(),
		New:      newPath.Clone(),
		Waypoint: waypoint,
		oldSucc:  make(map[topo.NodeID]topo.NodeID, len(old)),
		newSucc:  make(map[topo.NodeID]topo.NodeID, len(newPath)),
		oldPos:   make(map[topo.NodeID]int, len(old)),
		newPos:   make(map[topo.NodeID]int, len(newPath)),
		pending:  make(map[topo.NodeID]bool),
	}
	for i, v := range in.Old {
		in.oldPos[v] = i
		if i+1 < len(in.Old) {
			in.oldSucc[v] = in.Old[i+1]
		}
	}
	for i, v := range in.New {
		in.newPos[v] = i
		if i+1 < len(in.New) {
			in.newSucc[v] = in.New[i+1]
		}
	}
	for _, v := range in.New[:len(in.New)-1] {
		oldNext, onOld := in.oldSucc[v]
		if !onOld || oldNext != in.newSucc[v] {
			in.pending[v] = true
		}
	}
	return in, nil
}

// MustInstance is NewInstance for statically known-good inputs; it
// panics on error. Intended for tests and examples.
func MustInstance(old, newPath topo.Path, waypoint topo.NodeID) *Instance {
	in, err := NewInstance(old, newPath, waypoint)
	if err != nil {
		panic(err)
	}
	return in
}

// Src returns the common source of both paths.
func (in *Instance) Src() topo.NodeID { return in.Old.Src() }

// Dst returns the common destination of both paths.
func (in *Instance) Dst() topo.NodeID { return in.Old.Dst() }

// NeedsUpdate reports whether v requires a FlowMod (it is on the new
// path, is not the destination, and its forwarding rule changes).
func (in *Instance) NeedsUpdate(v topo.NodeID) bool { return in.pending[v] }

// Pending returns all switches needing updates, ordered by new-path
// position (deterministic).
func (in *Instance) Pending() []topo.NodeID {
	out := make([]topo.NodeID, 0, len(in.pending))
	for v := range in.pending {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return in.newPos[out[i]] < in.newPos[out[j]] })
	return out
}

// NumPending returns the number of switches needing updates.
func (in *Instance) NumPending() int { return len(in.pending) }

// OldSucc returns v's old-path successor, if v is a non-final old-path
// switch.
func (in *Instance) OldSucc(v topo.NodeID) (topo.NodeID, bool) {
	n, ok := in.oldSucc[v]
	return n, ok
}

// NewSucc returns v's new-path successor, if v is a non-final new-path
// switch.
func (in *Instance) NewSucc(v topo.NodeID) (topo.NodeID, bool) {
	n, ok := in.newSucc[v]
	return n, ok
}

// OnOld reports whether v lies on the old path.
func (in *Instance) OnOld(v topo.NodeID) bool {
	_, ok := in.oldPos[v]
	return ok
}

// OnNew reports whether v lies on the new path.
func (in *Instance) OnNew(v topo.NodeID) bool {
	_, ok := in.newPos[v]
	return ok
}

// OldIndex returns v's position on the old path, or -1.
func (in *Instance) OldIndex(v topo.NodeID) int {
	if i, ok := in.oldPos[v]; ok {
		return i
	}
	return -1
}

// NewIndex returns v's position on the new path, or -1.
func (in *Instance) NewIndex(v topo.NodeID) int {
	if i, ok := in.newPos[v]; ok {
		return i
	}
	return -1
}

// NewOnly reports whether v lies on the new path but not the old path
// (such switches carry no rule at all until updated).
func (in *Instance) NewOnly(v topo.NodeID) bool {
	return in.OnNew(v) && !in.OnOld(v)
}

// Nodes returns the union of both paths' switches in ascending ID order.
func (in *Instance) Nodes() []topo.NodeID {
	seen := make(map[topo.NodeID]bool, len(in.Old)+len(in.New))
	var out []topo.NodeID
	for _, p := range []topo.Path{in.Old, in.New} {
		for _, v := range p {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (in *Instance) String() string {
	if in.Waypoint != 0 {
		return fmt.Sprintf("update{old %v, new %v, wp %d}", in.Old, in.New, in.Waypoint)
	}
	return fmt.Sprintf("update{old %v, new %v}", in.Old, in.New)
}
