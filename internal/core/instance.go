package core

import (
	"errors"
	"fmt"
	"sort"

	"tsu/internal/topo"
)

// ErrWaypoint marks waypoint-placement failures: the requested
// waypoint is not strictly interior to both paths. API layers match it
// with errors.Is to classify the rejection.
var ErrWaypoint = errors.New("waypoint not strictly interior")

// Instance is a single-policy update problem: replace the old path with
// the new path, both simple paths from the same source to the same
// destination. A non-zero Waypoint must lie strictly inside both paths;
// it marks a middlebox (firewall, IDS) that packets must never bypass.
//
// Every switch on the old path initially carries a rule forwarding to
// its old-path successor. The update installs, at every switch on the
// new path except the destination, a rule forwarding to its new-path
// successor. Switches whose old and new successors coincide need no
// FlowMod and are treated as already final.
//
// An Instance is immutable after construction and safe for concurrent
// use; the parallel verifier relies on this.
type Instance struct {
	Old      topo.Path
	New      topo.Path
	Waypoint topo.NodeID // 0 when the policy has no waypoint

	oldSucc map[topo.NodeID]topo.NodeID
	newSucc map[topo.NodeID]topo.NodeID
	oldPos  map[topo.NodeID]int
	newPos  map[topo.NodeID]int
	pending map[topo.NodeID]bool // switches that need a FlowMod

	// Dense index layer: every switch of Old ∪ New gets an index in
	// [0, NumNodes), ascending by switch ID. The hot paths — Walk,
	// CheckState, CheckRound's subset search, RoundSafeStrongLF — run
	// entirely on these arrays and State bitsets.
	nodeOf      []topo.NodeID
	idxOf       map[topo.NodeID]int32
	oldSuccIdx  []int32 // -1 when v has no old-path successor
	newSuccIdx  []int32 // -1 when v has no new-path successor
	pendingBits State
	srcIdx      int32
	dstIdx      int32
	wpIdx       int32 // -1 when the policy has no waypoint
	words       int   // State words needed for NumNodes bits
}

// NewInstance validates and indexes an update problem. It returns an
// error when either path is malformed, the endpoints disagree, or a
// requested waypoint is not strictly interior to both paths.
func NewInstance(old, newPath topo.Path, waypoint topo.NodeID) (*Instance, error) {
	if err := old.Validate(); err != nil {
		return nil, fmt.Errorf("core: old path: %w", err)
	}
	if err := newPath.Validate(); err != nil {
		return nil, fmt.Errorf("core: new path: %w", err)
	}
	if old.Src() != newPath.Src() || old.Dst() != newPath.Dst() {
		return nil, fmt.Errorf("core: endpoint mismatch: old %v vs new %v", old, newPath)
	}
	if waypoint != 0 {
		for _, p := range []topo.Path{old, newPath} {
			i := p.Index(waypoint)
			if i <= 0 || i >= len(p)-1 {
				return nil, fmt.Errorf("core: waypoint %d not strictly interior to path %v: %w", waypoint, p, ErrWaypoint)
			}
		}
	}
	in := &Instance{
		Old:      old.Clone(),
		New:      newPath.Clone(),
		Waypoint: waypoint,
		oldSucc:  make(map[topo.NodeID]topo.NodeID, len(old)),
		newSucc:  make(map[topo.NodeID]topo.NodeID, len(newPath)),
		oldPos:   make(map[topo.NodeID]int, len(old)),
		newPos:   make(map[topo.NodeID]int, len(newPath)),
		pending:  make(map[topo.NodeID]bool),
	}
	for i, v := range in.Old {
		in.oldPos[v] = i
		if i+1 < len(in.Old) {
			in.oldSucc[v] = in.Old[i+1]
		}
	}
	for i, v := range in.New {
		in.newPos[v] = i
		if i+1 < len(in.New) {
			in.newSucc[v] = in.New[i+1]
		}
	}
	for _, v := range in.New[:len(in.New)-1] {
		oldNext, onOld := in.oldSucc[v]
		if !onOld || oldNext != in.newSucc[v] {
			in.pending[v] = true
		}
	}
	in.buildIndex()
	return in, nil
}

// buildIndex materializes the dense index layer from the path maps.
func (in *Instance) buildIndex() {
	seen := make(map[topo.NodeID]bool, len(in.Old)+len(in.New))
	for _, p := range []topo.Path{in.Old, in.New} {
		for _, v := range p {
			if !seen[v] {
				seen[v] = true
				in.nodeOf = append(in.nodeOf, v)
			}
		}
	}
	sort.Slice(in.nodeOf, func(i, j int) bool { return in.nodeOf[i] < in.nodeOf[j] })
	in.words = (len(in.nodeOf) + 63) / 64
	in.idxOf = make(map[topo.NodeID]int32, len(in.nodeOf))
	for i, v := range in.nodeOf {
		in.idxOf[v] = int32(i)
	}
	in.oldSuccIdx = make([]int32, len(in.nodeOf))
	in.newSuccIdx = make([]int32, len(in.nodeOf))
	in.pendingBits = in.NewState()
	for i, v := range in.nodeOf {
		in.oldSuccIdx[i], in.newSuccIdx[i] = -1, -1
		if n, ok := in.oldSucc[v]; ok {
			in.oldSuccIdx[i] = in.idxOf[n]
		}
		if n, ok := in.newSucc[v]; ok {
			in.newSuccIdx[i] = in.idxOf[n]
		}
		if in.pending[v] {
			in.pendingBits.Set(i)
		}
	}
	in.srcIdx = in.idxOf[in.Old.Src()]
	in.dstIdx = in.idxOf[in.Old.Dst()]
	in.wpIdx = -1
	if in.Waypoint != 0 {
		in.wpIdx = in.idxOf[in.Waypoint]
	}
}

// MustInstance is NewInstance for statically known-good inputs; it
// panics on error. Intended for tests and examples.
func MustInstance(old, newPath topo.Path, waypoint topo.NodeID) *Instance {
	in, err := NewInstance(old, newPath, waypoint)
	if err != nil {
		panic(err)
	}
	return in
}

// Src returns the common source of both paths.
func (in *Instance) Src() topo.NodeID { return in.Old.Src() }

// Dst returns the common destination of both paths.
func (in *Instance) Dst() topo.NodeID { return in.Old.Dst() }

// NeedsUpdate reports whether v requires a FlowMod (it is on the new
// path, is not the destination, and its forwarding rule changes).
func (in *Instance) NeedsUpdate(v topo.NodeID) bool { return in.pending[v] }

// Pending returns all switches needing updates, ordered by new-path
// position (deterministic).
func (in *Instance) Pending() []topo.NodeID {
	out := make([]topo.NodeID, 0, len(in.pending))
	for v := range in.pending {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return in.newPos[out[i]] < in.newPos[out[j]] })
	return out
}

// NumPending returns the number of switches needing updates.
func (in *Instance) NumPending() int { return len(in.pending) }

// OldSucc returns v's old-path successor, if v is a non-final old-path
// switch.
func (in *Instance) OldSucc(v topo.NodeID) (topo.NodeID, bool) {
	n, ok := in.oldSucc[v]
	return n, ok
}

// NewSucc returns v's new-path successor, if v is a non-final new-path
// switch.
func (in *Instance) NewSucc(v topo.NodeID) (topo.NodeID, bool) {
	n, ok := in.newSucc[v]
	return n, ok
}

// OnOld reports whether v lies on the old path.
func (in *Instance) OnOld(v topo.NodeID) bool {
	_, ok := in.oldPos[v]
	return ok
}

// OnNew reports whether v lies on the new path.
func (in *Instance) OnNew(v topo.NodeID) bool {
	_, ok := in.newPos[v]
	return ok
}

// OldIndex returns v's position on the old path, or -1.
func (in *Instance) OldIndex(v topo.NodeID) int {
	if i, ok := in.oldPos[v]; ok {
		return i
	}
	return -1
}

// NewIndex returns v's position on the new path, or -1.
func (in *Instance) NewIndex(v topo.NodeID) int {
	if i, ok := in.newPos[v]; ok {
		return i
	}
	return -1
}

// NewOnly reports whether v lies on the new path but not the old path
// (such switches carry no rule at all until updated).
func (in *Instance) NewOnly(v topo.NodeID) bool {
	return in.OnNew(v) && !in.OnOld(v)
}

// Nodes returns the union of both paths' switches in ascending ID order.
func (in *Instance) Nodes() []topo.NodeID {
	out := make([]topo.NodeID, len(in.nodeOf))
	copy(out, in.nodeOf)
	return out
}

func (in *Instance) String() string {
	if in.Waypoint != 0 {
		return fmt.Sprintf("update{old %v, new %v, wp %d}", in.Old, in.New, in.Waypoint)
	}
	return fmt.Sprintf("update{old %v, new %v}", in.Old, in.New)
}
