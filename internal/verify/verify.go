// Package verify checks transient consistency of update schedules.
//
// A schedule is transiently consistent for a property set when the
// property holds in every reachable intermediate state: every prefix of
// completed rounds plus every subset of the in-flight round (barriers
// order rounds; asynchrony makes intra-round subsets arbitrary). The
// verifier decides this exactly per round via the core package's
// branching walk search and the polynomial double-edge test for strong
// loop freedom; when a round is too large for the exact search budget
// it falls back to randomized subset sampling and marks the result
// inexact.
//
// The verifier is algorithm-agnostic: every scheduler in this
// repository is validated against it in tests, and the experiment
// harness uses it to count violations of the one-shot baseline.
package verify

import (
	"fmt"
	"math/rand"
	"strings"

	"tsu/internal/core"
	"tsu/internal/topo"
)

// Options configures verification.
type Options struct {
	// Budget bounds the exact per-round subset search (walk steps).
	// Zero selects core.DefaultCheckBudget.
	Budget int

	// Samples is the number of random subsets checked per round when
	// the exact search exhausts its budget. Zero selects 1024.
	Samples int

	// Seed seeds the sampling RNG (deterministic verification).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = core.DefaultCheckBudget
	}
	if o.Samples <= 0 {
		o.Samples = 1024
	}
	return o
}

// RoundResult records the verdict for one round.
type RoundResult struct {
	Round     int
	Size      int
	Exact     bool                 // exhaustive over all subsets vs sampled
	Violation *core.CounterExample // nil when no violation found
}

// Report is the outcome of verifying a schedule.
type Report struct {
	Algorithm  string
	Properties core.Property
	Rounds     []RoundResult

	// FinalStateOK reports whether applying every round yields exactly
	// the new path as the forwarding walk.
	FinalStateOK bool

	// StructureErr holds the schedule-structure failure, if any
	// (rounds not partitioning the pending set).
	StructureErr error
}

// OK reports whether the schedule passed: valid structure, no
// violations in any round, and a correct final state. An inexact
// (sampled) round without violations still counts as passing; check
// Exact per round when exhaustiveness matters.
func (r *Report) OK() bool {
	if r.StructureErr != nil || !r.FinalStateOK {
		return false
	}
	for _, rr := range r.Rounds {
		if rr.Violation != nil {
			return false
		}
	}
	return true
}

// Exact reports whether every round was verified exhaustively.
func (r *Report) Exact() bool {
	for _, rr := range r.Rounds {
		if !rr.Exact {
			return false
		}
	}
	return true
}

// FirstViolation returns the first recorded counterexample, or nil.
func (r *Report) FirstViolation() *core.CounterExample {
	for _, rr := range r.Rounds {
		if rr.Violation != nil {
			return rr.Violation
		}
	}
	return nil
}

// String renders a one-line summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify %s %s: ", r.Algorithm, r.Properties)
	switch {
	case r.StructureErr != nil:
		fmt.Fprintf(&b, "structure error: %v", r.StructureErr)
	case !r.OK():
		fmt.Fprintf(&b, "FAIL (%v)", r.FirstViolation())
	case r.Exact():
		fmt.Fprintf(&b, "ok (exact, %d rounds)", len(r.Rounds))
	default:
		fmt.Fprintf(&b, "ok (sampled, %d rounds)", len(r.Rounds))
	}
	return b.String()
}

// Schedule verifies a schedule against props in every reachable
// transient state.
func Schedule(in *core.Instance, s *core.Schedule, props core.Property, opts Options) *Report {
	opts = opts.withDefaults()
	report := &Report{Algorithm: s.Algorithm, Properties: props}
	if err := s.Validate(in); err != nil {
		report.StructureErr = err
		return report
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	done := make(core.State)
	for i, round := range s.Rounds {
		rr := RoundResult{Round: i, Size: len(round)}
		cex, exact := in.CheckRound(done, round, props, opts.Budget)
		rr.Exact = exact
		rr.Violation = cex
		if !exact && cex == nil {
			rr.Violation = SampleRound(in, done, round, props, opts.Samples, rng)
		}
		report.Rounds = append(report.Rounds, rr)
		for _, v := range round {
			done[v] = true
		}
	}
	walk, outcome := in.Walk(done)
	report.FinalStateOK = outcome == core.Reached && walk.Equal(in.New)
	return report
}

// SampleRound draws random subsets of round on top of done and returns
// the first counterexample found, or nil. It always includes the empty
// and full subsets.
func SampleRound(in *core.Instance, done core.State, round []topo.NodeID, props core.Property, samples int, rng *rand.Rand) *core.CounterExample {
	check := func(st core.State) *core.CounterExample {
		if violated := in.CheckState(st, props); violated != 0 {
			walk, _ := in.Walk(st)
			return &core.CounterExample{Updated: st, Walk: walk, Violated: violated}
		}
		return nil
	}
	full := done.Clone()
	for _, v := range round {
		full[v] = true
	}
	if cex := check(done.Clone()); cex != nil {
		return cex
	}
	if cex := check(full); cex != nil {
		return cex
	}
	for i := 0; i < samples; i++ {
		st := done.Clone()
		for _, v := range round {
			if rng.Intn(2) == 0 {
				st[v] = true
			}
		}
		if cex := check(st); cex != nil {
			return cex
		}
	}
	return nil
}

// Guarantees verifies a schedule against its own declared guarantee
// set — the contract check used throughout the tests and examples.
func Guarantees(in *core.Instance, s *core.Schedule, opts Options) *Report {
	return Schedule(in, s, s.Guarantees, opts)
}
