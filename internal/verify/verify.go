// Package verify checks transient consistency of update schedules.
//
// A schedule is transiently consistent for a property set when the
// property holds in every reachable intermediate state: every prefix of
// completed rounds plus every subset of the in-flight round (barriers
// order rounds; asynchrony makes intra-round subsets arbitrary). The
// verifier decides this exactly per round via the core package's
// branching walk search and the polynomial double-edge test for strong
// loop freedom; when a round is too large for the exact search budget
// it falls back to randomized subset sampling and marks the result
// inexact.
//
// The engine is parallel: rounds are independent work items (the state
// a round starts from is determined by the schedule alone, not by
// earlier verdicts), so they fan out over a worker pool sized by
// Options.Workers, and sampling fallbacks split into fixed-size chunks
// that fan out the same way. Results merge deterministically — the
// report is identical for every worker count, including 1. Batch
// verifies many (instance, schedule) pairs in one pool, which is how
// the experiment harness amortizes across thousands of instances.
//
// The verifier is algorithm-agnostic: every scheduler in this
// repository is validated against it in tests, and the experiment
// harness uses it to count violations of the one-shot baseline.
package verify

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"tsu/internal/core"
	"tsu/internal/topo"
)

// Options configures verification.
type Options struct {
	// Budget bounds the exact per-round subset search (walk steps).
	// Zero selects core.DefaultCheckBudget.
	Budget int

	// Samples is the number of random subsets checked per round when
	// the exact search exhausts its budget. Zero selects 1024.
	Samples int

	// Seed seeds the sampling RNGs. Verification is deterministic in
	// (Seed, Budget, Samples) and independent of Workers.
	Seed int64

	// Workers bounds the verification worker pool. Zero selects
	// runtime.GOMAXPROCS(0); 1 forces serial execution.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = core.DefaultCheckBudget
	}
	if o.Samples <= 0 {
		o.Samples = 1024
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// RoundResult records the verdict for one round.
type RoundResult struct {
	Round     int
	Size      int
	Exact     bool                 // exhaustive over all subsets vs sampled
	Violation *core.CounterExample // nil when no violation found
}

// Report is the outcome of verifying a schedule.
type Report struct {
	Algorithm  string
	Properties core.Property
	Rounds     []RoundResult

	// FinalStateOK reports whether applying every round yields exactly
	// the new path as the forwarding walk.
	FinalStateOK bool

	// StructureErr holds the schedule-structure failure, if any
	// (rounds not partitioning the pending set).
	StructureErr error
}

// OK reports whether the schedule passed: valid structure, no
// violations in any round, and a correct final state. An inexact
// (sampled) round without violations still counts as passing; check
// Exact per round when exhaustiveness matters.
func (r *Report) OK() bool {
	if r.StructureErr != nil || !r.FinalStateOK {
		return false
	}
	for _, rr := range r.Rounds {
		if rr.Violation != nil {
			return false
		}
	}
	return true
}

// Exact reports whether every round was verified exhaustively.
func (r *Report) Exact() bool {
	for _, rr := range r.Rounds {
		if !rr.Exact {
			return false
		}
	}
	return true
}

// FirstViolation returns the first recorded counterexample, or nil.
func (r *Report) FirstViolation() *core.CounterExample {
	for _, rr := range r.Rounds {
		if rr.Violation != nil {
			return rr.Violation
		}
	}
	return nil
}

// String renders a one-line summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify %s %s: ", r.Algorithm, r.Properties)
	switch {
	case r.StructureErr != nil:
		fmt.Fprintf(&b, "structure error: %v", r.StructureErr)
	case !r.OK():
		fmt.Fprintf(&b, "FAIL (%v)", r.FirstViolation())
	case r.Exact():
		fmt.Fprintf(&b, "ok (exact, %d rounds)", len(r.Rounds))
	default:
		fmt.Fprintf(&b, "ok (sampled, %d rounds)", len(r.Rounds))
	}
	return b.String()
}

// Task is one (instance, schedule, properties) verification job for
// Batch.
type Task struct {
	Instance *core.Instance
	Schedule *core.Schedule
	Props    core.Property
}

// Schedule verifies a schedule against props in every reachable
// transient state, fanning the per-round work over Options.Workers.
func Schedule(in *core.Instance, s *core.Schedule, props core.Property, opts Options) *Report {
	return Batch([]Task{{Instance: in, Schedule: s, Props: props}}, opts)[0]
}

// Guarantees verifies a schedule against its own declared guarantee
// set — the contract check used throughout the tests and examples.
func Guarantees(in *core.Instance, s *core.Schedule, opts Options) *Report {
	return Schedule(in, s, s.Guarantees, opts)
}

// Batch verifies many schedules in one worker pool. Per-round work
// items from every task interleave freely across workers; results are
// merged back per task, so reports[i] corresponds to tasks[i] and is
// bit-identical to a serial run.
func Batch(tasks []Task, opts Options) []*Report {
	opts = opts.withDefaults()
	reports := make([]*Report, len(tasks))

	// Materialize every round work item with its (deterministic)
	// pre-round state. The final-state check is cheap and serial.
	type item struct {
		task  int
		round int
		done  core.State
	}
	var items []item
	for t, task := range tasks {
		r := &Report{Algorithm: task.Schedule.Algorithm, Properties: task.Props}
		reports[t] = r
		if err := task.Schedule.Validate(task.Instance); err != nil {
			r.StructureErr = err
			continue
		}
		r.Rounds = make([]RoundResult, len(task.Schedule.Rounds))
		done := task.Instance.NewState()
		for i, round := range task.Schedule.Rounds {
			items = append(items, item{task: t, round: i, done: done.Clone()})
			task.Instance.Mark(done, round...)
		}
		walk, outcome := task.Instance.Walk(done)
		r.FinalStateOK = outcome == core.Reached && walk.Equal(task.Instance.New)
	}

	// Per-worker scratch: the branching search's bitset buffers and
	// the sampling fallback's incremental walker are reused across
	// every work item a worker handles (they rebind per instance), so
	// steady-state verification does not allocate per round.
	scratches := make([]*workerScratch, opts.Workers)
	for w := range scratches {
		scratches[w] = &workerScratch{rc: core.NewRoundChecker(), walker: core.NewWalker()}
	}

	// Phase 1: exact subset search, one work item per round.
	parallelFor(opts.Workers, len(items), func(w, k int) {
		it := items[k]
		task := tasks[it.task]
		round := task.Schedule.Rounds[it.round]
		cex, exact := scratches[w].rc.Check(task.Instance, it.done, round, task.Props, opts.Budget)
		reports[it.task].Rounds[it.round] = RoundResult{
			Round: it.round, Size: len(round), Exact: exact, Violation: cex,
		}
	})

	// Phase 2: sampling fallback for rounds the exact search could not
	// exhaust, split into fixed-size chunks (chunking is independent of
	// the worker count, so results are too).
	type chunk struct {
		item   int // index into items
		offset int // first sample of the chunk
		count  int
	}
	const chunkSamples = 128
	var chunks []chunk
	chunkCex := make(map[int][]*core.CounterExample) // item -> per-chunk result
	for k, it := range items {
		rr := &reports[it.task].Rounds[it.round]
		if rr.Exact || rr.Violation != nil {
			continue
		}
		n := (opts.Samples + chunkSamples - 1) / chunkSamples
		chunkCex[k] = make([]*core.CounterExample, n)
		for c := 0; c < n; c++ {
			count := chunkSamples
			if last := opts.Samples - c*chunkSamples; last < count {
				count = last
			}
			chunks = append(chunks, chunk{item: k, offset: c * chunkSamples, count: count})
		}
	}
	parallelFor(opts.Workers, len(chunks), func(w, j int) {
		ch := chunks[j]
		it := items[ch.item]
		task := tasks[it.task]
		round := task.Schedule.Rounds[it.round]
		seed := opts.Seed ^ (int64(it.task)+1)<<40 ^ (int64(it.round)+1)<<20 ^ int64(ch.offset)
		rng := rand.New(rand.NewSource(seed))
		chunkCex[ch.item][ch.offset/chunkSamples] = scratches[w].sampleChunk(
			task.Instance, it.done, round, task.Props, ch.count, rng, ch.offset == 0)
	})
	for k, cexs := range chunkCex {
		it := items[k]
		rr := &reports[it.task].Rounds[it.round]
		for _, cex := range cexs { // lowest chunk wins: deterministic
			if cex != nil {
				rr.Violation = cex
				break
			}
		}
	}
	return reports
}

// workerScratch is one verification worker's reusable state: the
// branching search's bitset buffers and the sampling fallback's
// incremental walker plus subset bookkeeping. Buffers grow to the
// largest instance seen and rebind per work item.
type workerScratch struct {
	rc     *core.RoundChecker
	walker *core.Walker
	cur    []bool // sampling: current subset membership per round element
	idx    []int  // sampling: dense node index per round element
}

// sampleChunk draws count random subsets of round on top of done and
// returns the first counterexample, or nil. When endpoints is set the
// empty and full subsets are checked first (once per round, by chunk 0).
//
// Successive samples run on the incremental walker: only the switches
// whose membership changed between one random subset and the next are
// flipped (re-walking just the changed suffix), instead of cloning the
// state and re-walking from the source per sample. The subsets drawn —
// one rng.Intn(2) per round element per sample — are unchanged, so
// verdicts are identical to the clone-per-sample implementation.
func (ws *workerScratch) sampleChunk(in *core.Instance, done core.State, round []topo.NodeID, props core.Property, count int, rng *rand.Rand, endpoints bool) *core.CounterExample {
	w := ws.walker.Bind(in)
	w.Reset(done)
	if cap(ws.cur) < len(round) {
		ws.cur = make([]bool, len(round))
		ws.idx = make([]int, len(round))
	}
	cur := ws.cur[:len(round)]
	idx := ws.idx[:len(round)]
	for j, v := range round {
		cur[j] = false
		idx[j] = in.NodeIndex(v)
	}
	check := func() *core.CounterExample {
		if violated := w.Check(props); violated != 0 {
			return &core.CounterExample{Updated: in.CloneState(w.State()), Walk: w.Path(), Violated: violated}
		}
		return nil
	}
	if endpoints {
		if cex := check(); cex != nil { // the empty subset (state = done)
			return cex
		}
		for j := range round { // the full subset
			w.Flip(idx[j])
			cur[j] = true
		}
		if cex := check(); cex != nil {
			return cex
		}
	}
	for i := 0; i < count; i++ {
		for j := range round {
			if want := rng.Intn(2) == 0; want != cur[j] {
				w.Flip(idx[j])
				cur[j] = want
			}
		}
		if cex := check(); cex != nil {
			return cex
		}
	}
	return nil
}

// SampleRound draws random subsets of round on top of done and returns
// the first counterexample found, or nil. It always includes the empty
// and full subsets. This is the serial primitive behind the engine's
// chunked sampling fallback.
func SampleRound(in *core.Instance, done core.State, round []topo.NodeID, props core.Property, samples int, rng *rand.Rand) *core.CounterExample {
	ws := &workerScratch{rc: core.NewRoundChecker(), walker: core.NewWalker()}
	return ws.sampleChunk(in, done, round, props, samples, rng, true)
}

// parallelFor runs f(worker, 0..n-1) over at most workers goroutines.
// Work is handed out via an atomic counter; the worker index lets
// callers give each goroutine private scratch. With workers <= 1 it
// degenerates to a plain loop on worker 0.
func parallelFor(workers, n int, f func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(w, i)
			}
		}(w)
	}
	wg.Wait()
}
