package verify

import (
	"math/rand"
	"testing"

	"tsu/internal/core"
	"tsu/internal/topo"
)

func TestScheduleAcceptsCorrectSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		ti := topo.RandomTwoPath(rng, 4+rng.Intn(12), true)
		in := core.MustInstance(ti.Old, ti.New, ti.Waypoint)

		w, err := core.WayUp(in)
		if err != nil {
			t.Fatal(err)
		}
		r := Guarantees(in, w, Options{})
		if !r.OK() {
			t.Fatalf("wayup rejected: %v", r)
		}

		p, err := core.Peacock(in)
		if err != nil {
			t.Fatal(err)
		}
		r = Guarantees(in, p, Options{})
		if !r.OK() {
			t.Fatalf("peacock rejected: %v", r)
		}
	}
}

func TestScheduleRejectsOneShotOnAdversarial(t *testing.T) {
	ti := topo.Reversal(10)
	in := core.MustInstance(ti.Old, ti.New, 0)
	s := core.OneShot(in)
	r := Schedule(in, s, core.NoBlackhole|core.RelaxedLoopFreedom, Options{})
	if r.OK() {
		t.Fatal("one-shot on reversal(10) must fail relaxed loop freedom")
	}
	cex := r.FirstViolation()
	if cex == nil {
		t.Fatal("no counterexample recorded")
	}
	if got := in.CheckState(cex.Updated, core.NoBlackhole|core.RelaxedLoopFreedom); got == 0 {
		t.Fatalf("counterexample state %v exhibits no violation", cex.Updated)
	}
}

func TestScheduleRejectsWaypointBypass(t *testing.T) {
	in := core.MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 2)
	s := core.OneShot(in)
	r := Schedule(in, s, core.WaypointEnforcement, Options{})
	if r.OK() {
		t.Fatal("one-shot bypass not detected")
	}
	if v := r.FirstViolation(); v == nil || !v.Violated.Has(core.WaypointEnforcement) {
		t.Fatalf("violation = %v, want waypoint", r.FirstViolation())
	}
}

func TestScheduleStructureErrors(t *testing.T) {
	in := core.MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 0)
	bad := &core.Schedule{Algorithm: "bad", Rounds: [][]topo.NodeID{{1}}}
	r := Schedule(in, bad, core.NoBlackhole, Options{})
	if r.OK() || r.StructureErr == nil {
		t.Fatalf("structure error not reported: %v", r)
	}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestScheduleFinalState(t *testing.T) {
	// A structurally valid, per-round safe schedule always ends in the
	// new path; synthesize one manually and check FinalStateOK.
	in := core.MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 4, 3}, 0)
	s := &core.Schedule{Algorithm: "manual", Rounds: [][]topo.NodeID{{4}, {1}}}
	r := Schedule(in, s, core.NoBlackhole|core.RelaxedLoopFreedom, Options{})
	if !r.OK() || !r.FinalStateOK {
		t.Fatalf("manual schedule rejected: %v", r)
	}
}

func TestSampledFallbackOnSafeHugeRound(t *testing.T) {
	// Peacock's bulk round on a large reversal instance is safe but far
	// too large for an exact subset search under a tiny budget: the
	// verifier must fall back to sampling and still pass.
	ti := topo.Reversal(40)
	in := core.MustInstance(ti.Old, ti.New, 0)
	s, err := core.Peacock(in)
	if err != nil {
		t.Fatal(err)
	}
	r := Schedule(in, s, core.RelaxedLoopFreedom|core.NoBlackhole, Options{Budget: 32, Samples: 200, Seed: 1})
	if r.Exact() {
		t.Fatal("expected sampled verification with budget 32")
	}
	if !r.OK() {
		t.Fatalf("sampling rejected a correct schedule: %v", r)
	}
}

func TestInexactButViolatingRoundStillFails(t *testing.T) {
	// One-shot on a big reversal: whether the exact search finishes or
	// not, the violation must surface.
	ti := topo.Reversal(40)
	in := core.MustInstance(ti.Old, ti.New, 0)
	s := core.OneShot(in)
	r := Schedule(in, s, core.RelaxedLoopFreedom|core.NoBlackhole, Options{Budget: 64, Samples: 500, Seed: 1})
	if r.OK() {
		t.Fatal("one-shot violation missed on reversal(40)")
	}
}

func TestSampleRoundFindsFullSubsetViolation(t *testing.T) {
	// Violation only in the full subset: old 1→2→3, new 1→4→3 with
	// round {1} on done {}: subset {1} drops at 4. Empty/full subsets
	// are always included in the sample.
	in := core.MustInstance(topo.Path{1, 2, 3}, topo.Path{1, 4, 3}, 0)
	rng := rand.New(rand.NewSource(2))
	cex := SampleRound(in, nil, []topo.NodeID{1}, core.NoBlackhole, 0, rng)
	if cex == nil || !cex.Violated.Has(core.NoBlackhole) {
		t.Fatalf("cex = %v, want blackhole", cex)
	}
}

func TestReportExactAndOK(t *testing.T) {
	in := core.MustInstance(topo.Path{1, 2, 3, 4}, topo.Path{1, 3, 2, 4}, 0)
	p, err := core.Peacock(in)
	if err != nil {
		t.Fatal(err)
	}
	r := Guarantees(in, p, Options{})
	if !r.OK() || !r.Exact() {
		t.Fatalf("peacock on tiny instance must verify exactly: %v", r)
	}
	if r.FirstViolation() != nil {
		t.Fatal("unexpected violation")
	}
	for _, rr := range r.Rounds {
		if rr.Size == 0 {
			t.Fatal("round size not recorded")
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Budget != core.DefaultCheckBudget || o.Samples != 1024 {
		t.Fatalf("defaults = %+v", o)
	}
	if o.Workers < 1 {
		t.Fatalf("Workers default = %d", o.Workers)
	}
	o = Options{Budget: 5, Samples: 7, Workers: 3}.withDefaults()
	if o.Budget != 5 || o.Samples != 7 || o.Workers != 3 {
		t.Fatalf("overrides lost: %+v", o)
	}
}

// reportsEqual compares everything the engine computes: per-round
// verdicts (including the concrete counterexample state and walk) and
// the overall outcome.
func reportsEqual(t *testing.T, a, b *Report) {
	t.Helper()
	if a.OK() != b.OK() || a.Exact() != b.Exact() || len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("reports differ: %v vs %v", a, b)
	}
	for i := range a.Rounds {
		ra, rb := a.Rounds[i], b.Rounds[i]
		if ra.Exact != rb.Exact || ra.Size != rb.Size || (ra.Violation == nil) != (rb.Violation == nil) {
			t.Fatalf("round %d differs: %+v vs %+v", i, ra, rb)
		}
		if ra.Violation != nil {
			if ra.Violation.Violated != rb.Violation.Violated || !ra.Violation.Walk.Equal(rb.Violation.Walk) {
				t.Fatalf("round %d counterexamples differ: %v vs %v", i, ra.Violation, rb.Violation)
			}
		}
	}
}

// TestParallelMatchesSerial pins the engine's determinism contract: the
// report is identical for every worker count, on safe and unsafe
// schedules, exact and sampled.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		ti := topo.RandomTwoPath(rng, 6+rng.Intn(24), true)
		in := core.MustInstance(ti.Old, ti.New, ti.Waypoint)
		props := core.NoBlackhole | core.WaypointEnforcement | core.RelaxedLoopFreedom
		for _, s := range []*core.Schedule{core.OneShot(in), mustWayUp(t, in)} {
			// A small budget forces the sampling fallback on larger draws,
			// covering the chunked path too.
			opts := Options{Budget: 1 << 10, Samples: 300, Seed: int64(trial)}
			serial := Schedule(in, s, props, Options{Budget: opts.Budget, Samples: opts.Samples, Seed: opts.Seed, Workers: 1})
			for _, workers := range []int{2, 4, 8} {
				par := Schedule(in, s, props, Options{Budget: opts.Budget, Samples: opts.Samples, Seed: opts.Seed, Workers: workers})
				reportsEqual(t, serial, par)
			}
		}
	}
}

func mustWayUp(t *testing.T, in *core.Instance) *core.Schedule {
	t.Helper()
	s, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBatchMatchesIndividualSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var tasks []Task
	for len(tasks) < 24 {
		ti := topo.RandomTwoPath(rng, 4+rng.Intn(10), false)
		in := core.MustInstance(ti.Old, ti.New, 0)
		if in.NumPending() == 0 {
			continue
		}
		p, err := core.Peacock(in)
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks,
			Task{Instance: in, Schedule: core.OneShot(in), Props: core.NoBlackhole | core.RelaxedLoopFreedom},
			Task{Instance: in, Schedule: p, Props: core.NoBlackhole | core.RelaxedLoopFreedom})
	}
	opts := Options{Seed: 3}
	batched := Batch(tasks, opts)
	if len(batched) != len(tasks) {
		t.Fatalf("Batch returned %d reports for %d tasks", len(batched), len(tasks))
	}
	for i, task := range tasks {
		solo := Schedule(task.Instance, task.Schedule, task.Props, opts)
		reportsEqual(t, solo, batched[i])
		if batched[i].Algorithm != task.Schedule.Algorithm {
			t.Fatalf("report %d algorithm %q, want %q", i, batched[i].Algorithm, task.Schedule.Algorithm)
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	if got := Batch(nil, Options{}); len(got) != 0 {
		t.Fatalf("Batch(nil) = %v", got)
	}
}
