package verify

import (
	"math/rand"

	"tsu/internal/core"
)

// Plan verifies a dependency plan: props must hold in every reachable
// transient state, which for a plan means every order ideal
// (down-closed node set) of its DAG — see core.Plan for the
// equivalence argument.
//
// A layered plan's ideals are exactly the round states of its
// schedule view, so layered plans delegate to the round engine and
// the report is bit-identical to Schedule on the equivalent schedule.
// Sparse plans are decided as one DAG: the ideal space is enumerated
// exhaustively (single-flip DFS on the incremental walker) while it
// fits Options.Budget states; past the budget the verifier falls back
// to sampled linear extensions — every prefix of a seeded random
// extension is an ideal — and marks the round inexact.
// Rollback plans (core.Plan.Reverse) reuse the same machinery over a
// shifted state space: an ideal I of the rollback DAG is the set of
// switches already *uninstalled*, so the network state is base∖I where
// base marks every switch the plan covers. The walker starts from base
// and the single-flip enumeration clears bits instead of setting them;
// the final state (everything undone) must recover the old path.
func Plan(in *core.Instance, p *core.Plan, props core.Property, opts Options) *Report {
	if !p.Rollback {
		if s, ok := p.Schedule(); ok {
			return Schedule(in, s, props, opts)
		}
	}
	opts = opts.withDefaults()
	r := &Report{Algorithm: p.Algorithm, Properties: props}
	if err := p.Validate(in); err != nil {
		r.StructureErr = err
		return r
	}
	if p.Rollback {
		walk, outcome := in.Walk(in.NewState())
		r.FinalStateOK = outcome == core.Reached && walk.Equal(in.Old)
	} else {
		full := in.NewState()
		for _, nd := range p.Nodes {
			in.Mark(full, nd.Switch)
		}
		walk, outcome := in.Walk(full)
		r.FinalStateOK = outcome == core.Reached && walk.Equal(in.New)
	}
	r.Rounds = []RoundResult{planIdeals(in, p, props, opts)}
	return r
}

// PlanCounterexample is the synthesizer's certificate oracle: it
// decides the plan's ideal space directly — never delegating layered
// plans to the round engine, so a violating state always comes back
// as an ideal over plan-node indices — and returns the violating
// ideal (ascending node indices), the properties broken there, and
// whether the verdict is exact (exhaustive enumeration within
// Options.Budget rather than sampled extensions). nodes == nil means
// no violation was found; nil with exact false is an undecided
// verdict, which is also what a structurally invalid plan reports
// (callers build plans via PlanDraft, which cannot emit one).
func PlanCounterexample(in *core.Instance, p *core.Plan, props core.Property, opts Options) (nodes []int, violated core.Property, exact bool) {
	opts = opts.withDefaults()
	if err := p.Validate(in); err != nil {
		return nil, 0, false
	}
	rr := planIdeals(in, p, props, opts)
	if rr.Violation == nil {
		return nil, 0, rr.Exact
	}
	for i, nd := range p.Nodes {
		// Forward plans: a node is in the violating ideal when its
		// switch is updated. Rollback plans invert: the ideal is the
		// uninstalled set (state = base∖ideal).
		if in.Updated(rr.Violation.Updated, nd.Switch) != p.Rollback {
			nodes = append(nodes, i)
		}
	}
	return nodes, rr.Violation.Violated, rr.Exact
}

// planIdeals decides one plan's whole ideal space as a single round
// result: exhaustive single-flip DFS within Options.Budget states,
// sampled linear extensions past it.
func planIdeals(in *core.Instance, p *core.Plan, props core.Property, opts Options) RoundResult {
	rr := RoundResult{Round: 0, Size: p.NumNodes()}
	w := in.NewWalker()
	var base core.State // nil for forward plans: the empty ideal is the old state
	if p.Rollback {
		base = p.BaseState(in)
		w.Reset(base)
	}
	idx := make([]int, p.NumNodes())
	for i, nd := range p.Nodes {
		idx[i] = in.NodeIndex(nd.Switch)
	}
	states := 0
	complete := p.VisitIdeals(
		func(node int, _ bool) { w.Flip(idx[node]) },
		func() bool {
			states++
			if states > opts.Budget {
				return false
			}
			if violated := w.Check(props); violated != 0 {
				rr.Violation = &core.CounterExample{
					Updated:  in.CloneState(w.State()),
					Walk:     w.Path(),
					Violated: violated,
				}
				return false
			}
			return true
		})
	rr.Exact = complete || rr.Violation != nil
	if !rr.Exact {
		rr.Violation = samplePlan(in, p, w, base, idx, props, opts)
	}
	return rr
}

// samplePlan replays Options.Samples seeded random linear extensions
// of the plan on the walker, checking every prefix (each prefix is an
// order ideal), and returns the first counterexample found. base is
// the state of the empty ideal: nil for forward plans, the plan's
// BaseState for rollback plans.
func samplePlan(in *core.Instance, p *core.Plan, w *core.Walker, base core.State, idx []int, props core.Property, opts Options) *core.CounterExample {
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x7F4A7C159E3779B9))
	run := core.NewPlanRun(p)
	ready := make([]int, 0, p.NumNodes())
	check := func() *core.CounterExample {
		if violated := w.Check(props); violated != 0 {
			return &core.CounterExample{Updated: in.CloneState(w.State()), Walk: w.Path(), Violated: violated}
		}
		return nil
	}
	w.Reset(base)
	if cex := check(); cex != nil { // the empty ideal
		return cex
	}
	for s := 0; s < opts.Samples; s++ {
		w.Reset(base)
		ready = run.Reset(ready[:0])
		for len(ready) > 0 {
			k := rng.Intn(len(ready))
			i := ready[k]
			ready[k] = ready[len(ready)-1]
			ready = run.Complete(i, ready[:len(ready)-1])
			w.Flip(idx[i])
			if cex := check(); cex != nil {
				return cex
			}
		}
	}
	return nil
}
