package verify

import (
	"testing"

	"tsu/internal/core"
	"tsu/internal/topo"
)

// TestVerifyPlanSparse pins the plan verifier on the Fig.1 sparse
// Peacock plan: the full ideal space is decided exactly and clean,
// and the final state is the new path.
func TestVerifyPlanSparse(t *testing.T) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, 0)
	p, err := core.PlanByName(in, core.AlgoPeacock, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Sparse {
		t.Fatalf("expected sparse plan, got %s", p)
	}
	rep := Plan(in, p, p.Guarantees, Options{})
	if !rep.OK() || !rep.Exact() || !rep.FinalStateOK {
		t.Fatalf("sparse plan verify = %s (final ok %t)", rep, rep.FinalStateOK)
	}
	if len(rep.Rounds) != 1 || rep.Rounds[0].Size != p.NumNodes() {
		t.Fatalf("rounds = %+v", rep.Rounds)
	}
}

// TestVerifyPlanSampledFallback forces the exhaustive budget to zero
// states so the verifier takes the sampled linear-extension path, and
// pins that sampling is deterministic in the seed and still catches a
// broken plan.
func TestVerifyPlanSampledFallback(t *testing.T) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, 0)
	s, err := core.Peacock(in)
	if err != nil {
		t.Fatal(err)
	}
	// A dependency-free plan (with one token edge so it is not
	// layered): old-path switches can flip before their chains.
	broken := &core.Plan{Algorithm: "broken", Guarantees: s.Guarantees, Sparse: true}
	for _, round := range s.Rounds {
		for _, v := range round {
			broken.Nodes = append(broken.Nodes, core.PlanNode{Switch: v})
		}
	}
	broken.Nodes[len(broken.Nodes)-1].Deps = []int{0}
	opts := Options{Budget: 1, Samples: 64, Seed: 42}
	rep := Plan(in, broken, s.Guarantees, opts)
	if rep.OK() {
		t.Fatalf("sampled fallback missed the violation: %s", rep)
	}
	if rep.Rounds[0].Exact {
		t.Fatal("budget 1 must not report an exact verdict without a violation... unless found early")
	}
	again := Plan(in, broken, s.Guarantees, opts)
	if rep.String() != again.String() {
		t.Fatalf("sampled verification not deterministic:\n %s\n %s", rep, again)
	}
}
