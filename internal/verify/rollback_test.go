package verify

import (
	"testing"

	"tsu/internal/core"
	"tsu/internal/topo"
)

// TestRollbackOfVerifiedPlanIsSafe pins the paper-level safety
// argument operationally: reversing any down-closed installed prefix
// of a verified plan yields a rollback plan that verifies against the
// same properties — every transient state on the way back down is one
// the forward plan could reach on its way up.
func TestRollbackOfVerifiedPlanIsSafe(t *testing.T) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.WayUp(in)
	if err != nil {
		t.Fatal(err)
	}
	p := core.PlanFromSchedule(sched)
	if rep := Plan(in, p, sched.Guarantees, Options{}); !rep.OK() {
		t.Fatalf("forward plan does not verify: %v", rep)
	}
	for prefix := 0; prefix <= len(p.Nodes); prefix++ {
		installed := make([]bool, len(p.Nodes))
		for i := 0; i < prefix; i++ {
			installed[i] = true
		}
		rev, _, err := p.Reverse(installed)
		if err != nil {
			t.Fatal(err)
		}
		rep := Plan(in, rev, sched.Guarantees, Options{})
		if !rep.OK() {
			t.Fatalf("rollback of prefix %d does not verify: %v", prefix, rep)
		}
		if !rep.Exact() {
			t.Fatalf("rollback of prefix %d verified inexactly", prefix)
		}
	}
}

// TestRollbackOfOneShotPrefixCanFail pins the genuine stuck path: a
// one-shot plan promises nothing, so an installed prefix may admit
// transient states that violate the instance's natural properties —
// the verifier must refuse such a rollback rather than bless it.
func TestRollbackOfOneShotPrefixCanFail(t *testing.T) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	p := core.PlanFromSchedule(core.OneShot(in))
	props := core.NoBlackhole | core.RelaxedLoopFreedom | core.WaypointEnforcement

	// The forward one-shot plan already violates the natural
	// properties; its full rollback walks the same state space and
	// must be refused too.
	if rep := Plan(in, p, props, Options{}); rep.OK() {
		t.Skip("one-shot plan unexpectedly safe on this instance")
	}
	failed := false
	for prefix := 1; prefix <= len(p.Nodes); prefix++ {
		installed := make([]bool, len(p.Nodes))
		for i := 0; i < prefix; i++ {
			installed[i] = true
		}
		rev, _, err := p.Reverse(installed)
		if err != nil {
			t.Fatal(err)
		}
		if rep := Plan(in, rev, props, Options{}); !rep.OK() {
			failed = true
			if cex := rep.FirstViolation(); cex == nil && rep.FinalStateOK {
				t.Fatalf("rollback of prefix %d rejected without a counterexample or final-state failure", prefix)
			}
		}
	}
	if !failed {
		t.Fatal("every one-shot prefix rollback verified safe; expected at least one refusal")
	}
}

// TestRollbackFinalStateRestoresOld ensures the rollback verifier
// checks the right terminal state: all nodes undone must walk the old
// path, not the new one.
func TestRollbackFinalStateRestoresOld(t *testing.T) {
	in := core.MustInstance(topo.Fig1OldPath, topo.Fig1NewPath, topo.Fig1Waypoint)
	sched, err := core.Peacock(in)
	if err != nil {
		t.Fatal(err)
	}
	p := core.PlanFromSchedule(sched)
	installed := make([]bool, len(p.Nodes))
	for i := range installed {
		installed[i] = true
	}
	rev, _, err := p.Reverse(installed)
	if err != nil {
		t.Fatal(err)
	}
	rep := Plan(in, rev, sched.Guarantees, Options{})
	if !rep.FinalStateOK {
		t.Fatal("rollback final state does not restore the old configuration")
	}
}
