package openflow

import (
	"encoding/binary"
	"fmt"
)

// StatsType enumerates ofp_stats_types of the supported subset.
type StatsType uint16

// Supported statistics kinds.
const (
	StatsFlow StatsType = 1
)

// StatsRequest asks the switch for statistics; the prototype uses flow
// statistics to observe flow-table contents and measure update times.
type StatsRequest struct {
	xid
	Kind  StatsType
	Flags uint16
	Flow  *FlowStatsRequest // body when Kind == StatsFlow
}

// FlowStatsRequest is the ofp_flow_stats_request body.
type FlowStatsRequest struct {
	Match   Match
	TableID uint8
	OutPort uint16
}

const statsRequestFixed = 4
const flowStatsRequestLen = MatchLen + 4

// MsgType returns TypeStatsRequest.
func (*StatsRequest) MsgType() MsgType { return TypeStatsRequest }
func (m *StatsRequest) bodyLen() int {
	if m.Flow != nil {
		return statsRequestFixed + flowStatsRequestLen
	}
	return statsRequestFixed
}
func (m *StatsRequest) encodeBody(b []byte) error {
	binary.BigEndian.PutUint16(b[0:2], uint16(m.Kind))
	binary.BigEndian.PutUint16(b[2:4], m.Flags)
	if m.Flow != nil {
		if m.Kind != StatsFlow {
			return fmt.Errorf("stats request kind %d with flow body", m.Kind)
		}
		m.Flow.Match.encode(b[4 : 4+MatchLen])
		b[4+MatchLen] = m.Flow.TableID
		b[4+MatchLen+1] = 0 // pad
		binary.BigEndian.PutUint16(b[4+MatchLen+2:4+MatchLen+4], m.Flow.OutPort)
	}
	return nil
}
func (m *StatsRequest) decodeBody(b []byte) error {
	if len(b) < statsRequestFixed {
		return fmt.Errorf("stats request body %d bytes, want >= %d", len(b), statsRequestFixed)
	}
	m.Kind = StatsType(binary.BigEndian.Uint16(b[0:2]))
	m.Flags = binary.BigEndian.Uint16(b[2:4])
	rest := b[statsRequestFixed:]
	switch m.Kind {
	case StatsFlow:
		if len(rest) != flowStatsRequestLen {
			return fmt.Errorf("flow stats request body %d bytes, want %d", len(rest), flowStatsRequestLen)
		}
		var fr FlowStatsRequest
		if err := fr.Match.decode(rest[0:MatchLen]); err != nil {
			return err
		}
		fr.TableID = rest[MatchLen]
		fr.OutPort = binary.BigEndian.Uint16(rest[MatchLen+2 : MatchLen+4])
		m.Flow = &fr
		return nil
	default:
		return fmt.Errorf("unsupported stats kind %d", m.Kind)
	}
}

// FlowStats is one ofp_flow_stats entry of a flow-stats reply.
type FlowStats struct {
	TableID      uint8
	Match        Match
	DurationSec  uint32
	DurationNsec uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
	Actions      []Action
}

const flowStatsFixed = 88

func (f *FlowStats) wireLen() int { return flowStatsFixed + actionsWireLen(f.Actions) }

func (f *FlowStats) encode(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(f.wireLen()))
	b[2] = f.TableID
	b[3] = 0 // pad
	f.Match.encode(b[4 : 4+MatchLen])
	off := 4 + MatchLen
	binary.BigEndian.PutUint32(b[off:off+4], f.DurationSec)
	binary.BigEndian.PutUint32(b[off+4:off+8], f.DurationNsec)
	binary.BigEndian.PutUint16(b[off+8:off+10], f.Priority)
	binary.BigEndian.PutUint16(b[off+10:off+12], f.IdleTimeout)
	binary.BigEndian.PutUint16(b[off+12:off+14], f.HardTimeout)
	// 6 pad bytes.
	off += 20
	binary.BigEndian.PutUint64(b[off:off+8], f.Cookie)
	binary.BigEndian.PutUint64(b[off+8:off+16], f.PacketCount)
	binary.BigEndian.PutUint64(b[off+16:off+24], f.ByteCount)
	encodeActions(b[flowStatsFixed:f.wireLen()], f.Actions)
}

func (f *FlowStats) decode(b []byte) (int, error) {
	if len(b) < flowStatsFixed {
		return 0, fmt.Errorf("flow stats entry %d bytes, want >= %d", len(b), flowStatsFixed)
	}
	length := int(binary.BigEndian.Uint16(b[0:2]))
	if length < flowStatsFixed || length > len(b) {
		return 0, fmt.Errorf("flow stats entry length %d out of range (have %d)", length, len(b))
	}
	f.TableID = b[2]
	if err := f.Match.decode(b[4 : 4+MatchLen]); err != nil {
		return 0, err
	}
	off := 4 + MatchLen
	f.DurationSec = binary.BigEndian.Uint32(b[off : off+4])
	f.DurationNsec = binary.BigEndian.Uint32(b[off+4 : off+8])
	f.Priority = binary.BigEndian.Uint16(b[off+8 : off+10])
	f.IdleTimeout = binary.BigEndian.Uint16(b[off+10 : off+12])
	f.HardTimeout = binary.BigEndian.Uint16(b[off+12 : off+14])
	off += 20
	f.Cookie = binary.BigEndian.Uint64(b[off : off+8])
	f.PacketCount = binary.BigEndian.Uint64(b[off+8 : off+16])
	f.ByteCount = binary.BigEndian.Uint64(b[off+16 : off+24])
	actions, err := decodeActions(b[flowStatsFixed:length])
	if err != nil {
		return 0, err
	}
	f.Actions = actions
	return length, nil
}

// StatsReply returns statistics; only flow stats are supported.
type StatsReply struct {
	xid
	Kind  StatsType
	Flags uint16
	Flows []FlowStats
}

// MsgType returns TypeStatsReply.
func (*StatsReply) MsgType() MsgType { return TypeStatsReply }
func (m *StatsReply) bodyLen() int {
	total := statsRequestFixed
	for i := range m.Flows {
		total += m.Flows[i].wireLen()
	}
	return total
}
func (m *StatsReply) encodeBody(b []byte) error {
	binary.BigEndian.PutUint16(b[0:2], uint16(m.Kind))
	binary.BigEndian.PutUint16(b[2:4], m.Flags)
	off := statsRequestFixed
	for i := range m.Flows {
		m.Flows[i].encode(b[off:])
		off += m.Flows[i].wireLen()
	}
	return nil
}
func (m *StatsReply) decodeBody(b []byte) error {
	if len(b) < statsRequestFixed {
		return fmt.Errorf("stats reply body %d bytes, want >= %d", len(b), statsRequestFixed)
	}
	m.Kind = StatsType(binary.BigEndian.Uint16(b[0:2]))
	m.Flags = binary.BigEndian.Uint16(b[2:4])
	if m.Kind != StatsFlow {
		return fmt.Errorf("unsupported stats kind %d", m.Kind)
	}
	m.Flows = nil
	rest := b[statsRequestFixed:]
	for len(rest) > 0 {
		var f FlowStats
		n, err := f.decode(rest)
		if err != nil {
			return err
		}
		m.Flows = append(m.Flows, f)
		rest = rest[n:]
	}
	return nil
}
