// Package openflow implements the OpenFlow 1.0 wire protocol subset the
// prototype uses: the controller↔switch handshake (HELLO, FEATURES),
// rule installation (FLOW_MOD with OUTPUT actions), the barrier
// exchange that delimits update rounds (BARRIER_REQUEST/REPLY), flow
// statistics (STATS_REQUEST/REPLY, used to measure flow-table update
// time), liveness (ECHO), and error reporting.
//
// All encoding is big-endian per the specification, with strict length
// validation on decode: a malformed message yields an error, never a
// partially populated struct. Messages are plain structs; Encode and
// Decode translate between them and wire bytes. Framing over a stream
// (reading exactly one message) lives in package ofconn.
package openflow

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// Version is the only protocol version spoken: OpenFlow 1.0 (0x01).
const Version = 0x01

// HeaderLen is the length of the fixed ofp_header.
const HeaderLen = 8

// MaxMessageLen bounds a message's total length (the header's length
// field is 16-bit).
const MaxMessageLen = 1<<16 - 1

// MsgType enumerates the ofp_type values of OpenFlow 1.0.
type MsgType uint8

// OpenFlow 1.0 message types (ofp_type).
const (
	TypeHello           MsgType = 0
	TypeError           MsgType = 1
	TypeEchoRequest     MsgType = 2
	TypeEchoReply       MsgType = 3
	TypeVendor          MsgType = 4
	TypeFeaturesRequest MsgType = 5
	TypeFeaturesReply   MsgType = 6
	TypePacketIn        MsgType = 10
	TypePacketOut       MsgType = 13
	TypeFlowMod         MsgType = 14
	TypeStatsRequest    MsgType = 16
	TypeStatsReply      MsgType = 17
	TypeBarrierRequest  MsgType = 18
	TypeBarrierReply    MsgType = 19
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeError:
		return "ERROR"
	case TypeEchoRequest:
		return "ECHO_REQUEST"
	case TypeEchoReply:
		return "ECHO_REPLY"
	case TypeVendor:
		return "VENDOR"
	case TypeFeaturesRequest:
		return "FEATURES_REQUEST"
	case TypeFeaturesReply:
		return "FEATURES_REPLY"
	case TypePacketIn:
		return "PACKET_IN"
	case TypeFlowRemoved:
		return "FLOW_REMOVED"
	case TypePortStatus:
		return "PORT_STATUS"
	case TypePacketOut:
		return "PACKET_OUT"
	case TypeFlowMod:
		return "FLOW_MOD"
	case TypeStatsRequest:
		return "STATS_REQUEST"
	case TypeStatsReply:
		return "STATS_REPLY"
	case TypeBarrierRequest:
		return "BARRIER_REQUEST"
	case TypeBarrierReply:
		return "BARRIER_REPLY"
	}
	return fmt.Sprintf("TYPE_%d", uint8(t))
}

// Header is the fixed ofp_header preceding every message.
type Header struct {
	Version uint8
	Type    MsgType
	Length  uint16 // total message length including the header
	Xid     uint32 // transaction id echoed by replies
}

func putHeader(b []byte, t MsgType, length int, xid uint32) {
	b[0] = Version
	b[1] = uint8(t)
	binary.BigEndian.PutUint16(b[2:4], uint16(length))
	binary.BigEndian.PutUint32(b[4:8], xid)
}

// ParseHeader decodes the fixed header and validates version and
// length bounds.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("openflow: header truncated: %d bytes", len(b))
	}
	h := Header{
		Version: b[0],
		Type:    MsgType(b[1]),
		Length:  binary.BigEndian.Uint16(b[2:4]),
		Xid:     binary.BigEndian.Uint32(b[4:8]),
	}
	if h.Version != Version {
		return Header{}, fmt.Errorf("openflow: unsupported version 0x%02x", h.Version)
	}
	if int(h.Length) < HeaderLen {
		return Header{}, fmt.Errorf("openflow: header length %d < %d", h.Length, HeaderLen)
	}
	return h, nil
}

// Message is any OpenFlow message of the supported subset. Xid returns
// the transaction id; SetXid is provided by all implementations via the
// embedded field, so the connection layer can allocate ids uniformly.
type Message interface {
	MsgType() MsgType
	Xid() uint32
	SetXid(uint32)

	// bodyLen returns the encoded body length (total minus header).
	bodyLen() int
	// encodeBody writes the body into b, which has exactly bodyLen()
	// bytes.
	encodeBody(b []byte) error
}

// xid provides the Xid accessors every message embeds.
type xid struct {
	ID uint32
}

// Xid returns the message's transaction id.
func (x *xid) Xid() uint32 { return x.ID }

// SetXid sets the message's transaction id.
func (x *xid) SetXid(v uint32) { x.ID = v }

// Encode serialises m into its complete wire form. It allocates a
// fresh buffer per call; the live deployment path (ofconn) uses
// AppendTo with pooled buffers instead.
func Encode(m Message) ([]byte, error) {
	return AppendTo(nil, m)
}

// AppendTo appends m's complete wire form to buf and returns the
// extended slice. When buf has sufficient capacity no allocation
// occurs, so a caller cycling a scratch buffer (buf[:0] between
// messages) encodes with zero allocations in steady state.
func AppendTo(buf []byte, m Message) ([]byte, error) {
	total := HeaderLen + m.bodyLen()
	if total > MaxMessageLen {
		return nil, fmt.Errorf("openflow: %s message of %d bytes exceeds maximum %d", m.MsgType(), total, MaxMessageLen)
	}
	off := len(buf)
	buf = slices.Grow(buf, total)[:off+total]
	clear(buf[off:]) // encoders rely on zeroed padding bytes
	putHeader(buf[off:], m.MsgType(), total, m.Xid())
	if err := m.encodeBody(buf[off+HeaderLen:]); err != nil {
		return nil, err
	}
	return buf, nil
}

// Decode parses exactly one complete message. The input must contain
// the entire message and nothing more (framing is the caller's job).
func Decode(b []byte) (Message, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return nil, err
	}
	if int(h.Length) != len(b) {
		return nil, fmt.Errorf("openflow: header says %d bytes, got %d", h.Length, len(b))
	}
	body := b[HeaderLen:]
	var m Message
	switch h.Type {
	case TypeHello:
		m = &Hello{}
	case TypeError:
		m = &Error{}
	case TypeEchoRequest:
		m = &EchoRequest{}
	case TypeEchoReply:
		m = &EchoReply{}
	case TypeVendor:
		m = &Vendor{}
	case TypeFeaturesRequest:
		m = &FeaturesRequest{}
	case TypeFeaturesReply:
		m = &FeaturesReply{}
	case TypePacketIn:
		m = &PacketIn{}
	case TypeFlowRemoved:
		m = &FlowRemoved{}
	case TypePortStatus:
		m = &PortStatus{}
	case TypePacketOut:
		m = &PacketOut{}
	case TypeFlowMod:
		m = &FlowMod{}
	case TypeStatsRequest:
		m = &StatsRequest{}
	case TypeStatsReply:
		m = &StatsReply{}
	case TypeBarrierRequest:
		m = &BarrierRequest{}
	case TypeBarrierReply:
		m = &BarrierReply{}
	default:
		return nil, fmt.Errorf("openflow: unsupported message type %s", h.Type)
	}
	if err := decodeBodyInto(m, body); err != nil {
		return nil, fmt.Errorf("openflow: decoding %s: %w", h.Type, err)
	}
	m.SetXid(h.Xid)
	return m, nil
}

// bodyDecoder is implemented by every message to parse its body.
type bodyDecoder interface {
	decodeBody(b []byte) error
}

func decodeBodyInto(m Message, body []byte) error {
	d, ok := m.(bodyDecoder)
	if !ok {
		return fmt.Errorf("message type %s lacks a decoder", m.MsgType())
	}
	return d.decodeBody(body)
}
