package openflow

import (
	"encoding/binary"
	"fmt"
)

// Hello opens the connection; both sides send it first. OpenFlow 1.0
// peers may append hello elements; they are preserved verbatim so a
// decoded hello re-encodes to its exact wire form (this subset never
// interprets them).
type Hello struct {
	xid
	Elements []byte
}

// MsgType returns TypeHello.
func (*Hello) MsgType() MsgType { return TypeHello }
func (h *Hello) bodyLen() int   { return len(h.Elements) }
func (h *Hello) encodeBody(b []byte) error {
	copy(b, h.Elements)
	return nil
}
func (h *Hello) decodeBody(b []byte) error {
	if len(b) > 0 {
		h.Elements = append([]byte(nil), b...)
	}
	return nil
}

// EchoRequest is the liveness probe; the peer echoes Data back.
type EchoRequest struct {
	xid
	Data []byte
}

// MsgType returns TypeEchoRequest.
func (*EchoRequest) MsgType() MsgType { return TypeEchoRequest }
func (m *EchoRequest) bodyLen() int   { return len(m.Data) }
func (m *EchoRequest) encodeBody(b []byte) error {
	copy(b, m.Data)
	return nil
}
func (m *EchoRequest) decodeBody(b []byte) error {
	m.Data = append([]byte(nil), b...)
	return nil
}

// EchoReply answers an EchoRequest with the same Data and Xid.
type EchoReply struct {
	xid
	Data []byte
}

// MsgType returns TypeEchoReply.
func (*EchoReply) MsgType() MsgType { return TypeEchoReply }
func (m *EchoReply) bodyLen() int   { return len(m.Data) }
func (m *EchoReply) encodeBody(b []byte) error {
	copy(b, m.Data)
	return nil
}
func (m *EchoReply) decodeBody(b []byte) error {
	m.Data = append([]byte(nil), b...)
	return nil
}

// Vendor is the OpenFlow 1.0 experimenter escape hatch
// (ofp_vendor_header): a 32-bit vendor id followed by opaque data the peer
// interprets. The prototype uses it to carry decentralized-execution
// control messages (plan partitions down, completion reports up); see
// package planwire for the payload codecs.
type Vendor struct {
	xid
	Vendor uint32
	Data   []byte
}

// MsgType returns TypeVendor.
func (*Vendor) MsgType() MsgType { return TypeVendor }
func (m *Vendor) bodyLen() int   { return 4 + len(m.Data) }
func (m *Vendor) encodeBody(b []byte) error {
	binary.BigEndian.PutUint32(b[0:4], m.Vendor)
	copy(b[4:], m.Data)
	return nil
}
func (m *Vendor) decodeBody(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("vendor body %d bytes, want >= 4", len(b))
	}
	m.Vendor = binary.BigEndian.Uint32(b[0:4])
	if len(b) > 4 {
		m.Data = append([]byte(nil), b[4:]...)
	}
	return nil
}

// FeaturesRequest asks a switch for its datapath identity and
// capabilities.
type FeaturesRequest struct {
	xid
}

// MsgType returns TypeFeaturesRequest.
func (*FeaturesRequest) MsgType() MsgType        { return TypeFeaturesRequest }
func (*FeaturesRequest) bodyLen() int            { return 0 }
func (*FeaturesRequest) encodeBody([]byte) error { return nil }
func (*FeaturesRequest) decodeBody(b []byte) error {
	if len(b) != 0 {
		return fmt.Errorf("features request carries %d unexpected body bytes", len(b))
	}
	return nil
}

// PhyPort describes one switch port (ofp_phy_port).
type PhyPort struct {
	PortNo     uint16
	HWAddr     [6]byte
	Name       string // at most 15 bytes on the wire (NUL-terminated)
	Config     uint32
	State      uint32
	Curr       uint32
	Advertised uint32
	Supported  uint32
	Peer       uint32
}

const phyPortLen = 48

func (p *PhyPort) encode(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], p.PortNo)
	copy(b[2:8], p.HWAddr[:])
	name := p.Name
	if len(name) > 15 {
		name = name[:15]
	}
	copy(b[8:24], name) // remainder stays zero (NUL padding)
	binary.BigEndian.PutUint32(b[24:28], p.Config)
	binary.BigEndian.PutUint32(b[28:32], p.State)
	binary.BigEndian.PutUint32(b[32:36], p.Curr)
	binary.BigEndian.PutUint32(b[36:40], p.Advertised)
	binary.BigEndian.PutUint32(b[40:44], p.Supported)
	binary.BigEndian.PutUint32(b[44:48], p.Peer)
}

func (p *PhyPort) decode(b []byte) {
	p.PortNo = binary.BigEndian.Uint16(b[0:2])
	copy(p.HWAddr[:], b[2:8])
	name := b[8:24]
	end := 0
	for end < len(name) && name[end] != 0 {
		end++
	}
	p.Name = string(name[:end])
	p.Config = binary.BigEndian.Uint32(b[24:28])
	p.State = binary.BigEndian.Uint32(b[28:32])
	p.Curr = binary.BigEndian.Uint32(b[32:36])
	p.Advertised = binary.BigEndian.Uint32(b[36:40])
	p.Supported = binary.BigEndian.Uint32(b[40:44])
	p.Peer = binary.BigEndian.Uint32(b[44:48])
}

// FeaturesReply identifies the switch: its datapath ID is how the
// controller and the paper's REST schema name switches.
type FeaturesReply struct {
	xid
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32
	Ports        []PhyPort
}

const featuresReplyFixed = 24

// MsgType returns TypeFeaturesReply.
func (*FeaturesReply) MsgType() MsgType { return TypeFeaturesReply }
func (m *FeaturesReply) bodyLen() int   { return featuresReplyFixed + len(m.Ports)*phyPortLen }
func (m *FeaturesReply) encodeBody(b []byte) error {
	binary.BigEndian.PutUint64(b[0:8], m.DatapathID)
	binary.BigEndian.PutUint32(b[8:12], m.NBuffers)
	b[12] = m.NTables
	b[13], b[14], b[15] = 0, 0, 0 // pad
	binary.BigEndian.PutUint32(b[16:20], m.Capabilities)
	binary.BigEndian.PutUint32(b[20:24], m.Actions)
	off := featuresReplyFixed
	for i := range m.Ports {
		m.Ports[i].encode(b[off:])
		off += phyPortLen
	}
	return nil
}
func (m *FeaturesReply) decodeBody(b []byte) error {
	if len(b) < featuresReplyFixed {
		return fmt.Errorf("features reply body %d bytes, want >= %d", len(b), featuresReplyFixed)
	}
	if (len(b)-featuresReplyFixed)%phyPortLen != 0 {
		return fmt.Errorf("features reply ports area %d bytes, not a multiple of %d", len(b)-featuresReplyFixed, phyPortLen)
	}
	m.DatapathID = binary.BigEndian.Uint64(b[0:8])
	m.NBuffers = binary.BigEndian.Uint32(b[8:12])
	m.NTables = b[12]
	m.Capabilities = binary.BigEndian.Uint32(b[16:20])
	m.Actions = binary.BigEndian.Uint32(b[20:24])
	m.Ports = nil
	for off := featuresReplyFixed; off < len(b); off += phyPortLen {
		var p PhyPort
		p.decode(b[off:])
		m.Ports = append(m.Ports, p)
	}
	return nil
}

// BarrierRequest asks the switch to finish processing every preceding
// message before replying — the paper's round delimiter.
type BarrierRequest struct {
	xid
}

// MsgType returns TypeBarrierRequest.
func (*BarrierRequest) MsgType() MsgType        { return TypeBarrierRequest }
func (*BarrierRequest) bodyLen() int            { return 0 }
func (*BarrierRequest) encodeBody([]byte) error { return nil }
func (*BarrierRequest) decodeBody(b []byte) error {
	if len(b) != 0 {
		return fmt.Errorf("barrier request carries %d unexpected body bytes", len(b))
	}
	return nil
}

// BarrierReply acknowledges a BarrierRequest with the same Xid.
type BarrierReply struct {
	xid
}

// MsgType returns TypeBarrierReply.
func (*BarrierReply) MsgType() MsgType        { return TypeBarrierReply }
func (*BarrierReply) bodyLen() int            { return 0 }
func (*BarrierReply) encodeBody([]byte) error { return nil }
func (*BarrierReply) decodeBody(b []byte) error {
	if len(b) != 0 {
		return fmt.Errorf("barrier reply carries %d unexpected body bytes", len(b))
	}
	return nil
}

// Error type/code pairs of the supported subset (ofp_error_type).
const (
	ErrTypeBadRequest  uint16 = 1
	ErrTypeBadAction   uint16 = 2
	ErrTypeFlowModFail uint16 = 3

	ErrCodeBadType       uint16 = 1
	ErrCodeBadLen        uint16 = 2
	ErrCodeAllTablesFull uint16 = 0
)

// Error reports a failure back to the message's sender; Data carries at
// least the first 64 bytes of the offending message per the spec.
type Error struct {
	xid
	ErrType uint16
	Code    uint16
	Data    []byte
}

// MsgType returns TypeError.
func (*Error) MsgType() MsgType { return TypeError }
func (m *Error) bodyLen() int   { return 4 + len(m.Data) }
func (m *Error) encodeBody(b []byte) error {
	binary.BigEndian.PutUint16(b[0:2], m.ErrType)
	binary.BigEndian.PutUint16(b[2:4], m.Code)
	copy(b[4:], m.Data)
	return nil
}
func (m *Error) decodeBody(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("error body %d bytes, want >= 4", len(b))
	}
	m.ErrType = binary.BigEndian.Uint16(b[0:2])
	m.Code = binary.BigEndian.Uint16(b[2:4])
	m.Data = append([]byte(nil), b[4:]...)
	return nil
}

func (m *Error) Error() string {
	return fmt.Sprintf("openflow error type=%d code=%d", m.ErrType, m.Code)
}
