package openflow

import (
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	wire, err := Encode(m)
	if err != nil {
		t.Fatalf("encode %s: %v", m.MsgType(), err)
	}
	if len(wire) < HeaderLen {
		t.Fatalf("wire too short: %d", len(wire))
	}
	if got := binary.BigEndian.Uint16(wire[2:4]); int(got) != len(wire) {
		t.Fatalf("header length %d != wire length %d", got, len(wire))
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatalf("decode %s: %v", m.MsgType(), err)
	}
	return back
}

func TestHelloGoldenBytes(t *testing.T) {
	h := &Hello{}
	h.SetXid(0x01020304)
	wire, err := Encode(h)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x01, 0x00, 0x00, 0x08, 0x01, 0x02, 0x03, 0x04}
	if !bytes.Equal(wire, want) {
		t.Fatalf("hello wire = % x, want % x", wire, want)
	}
}

func TestBarrierGoldenBytes(t *testing.T) {
	br := &BarrierRequest{}
	br.SetXid(7)
	wire, err := Encode(br)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x01, 0x12, 0x00, 0x08, 0x00, 0x00, 0x00, 0x07} // type 18
	if !bytes.Equal(wire, want) {
		t.Fatalf("barrier wire = % x, want % x", wire, want)
	}
	bp := &BarrierReply{}
	bp.SetXid(7)
	wire, err = Encode(bp)
	if err != nil {
		t.Fatal(err)
	}
	if wire[1] != 0x13 { // type 19
		t.Fatalf("barrier reply type byte = %#x", wire[1])
	}
}

func TestFlowModGoldenLayout(t *testing.T) {
	fm := &FlowMod{
		Match:    ExactNWDst(net.IPv4(10, 0, 0, 2)),
		Cookie:   0xdeadbeefcafef00d,
		Command:  FlowAdd,
		Priority: 100,
		BufferID: NoBuffer,
		OutPort:  PortNone,
		Actions:  []Action{ActionOutput{Port: 3, MaxLen: 0}},
	}
	fm.SetXid(42)
	wire, err := Encode(fm)
	if err != nil {
		t.Fatal(err)
	}
	// Total: 8 header + 40 match + 24 fixed + 8 action = 80.
	if len(wire) != 80 {
		t.Fatalf("flow mod wire length = %d, want 80", len(wire))
	}
	if wire[1] != 0x0e {
		t.Fatalf("type byte = %#x, want 0x0e", wire[1])
	}
	// Cookie at offset 8+40.
	if got := binary.BigEndian.Uint64(wire[48:56]); got != fm.Cookie {
		t.Fatalf("cookie on wire = %#x", got)
	}
	// nw_dst inside the match at offset 8+32.
	if got := binary.BigEndian.Uint32(wire[40:44]); got != binary.BigEndian.Uint32(net.IPv4(10, 0, 0, 2).To4()) {
		t.Fatalf("nw_dst on wire = %#x", got)
	}
	// Action output port at offset 80-8+4 = 76.
	if got := binary.BigEndian.Uint16(wire[76:78]); got != 3 {
		t.Fatalf("action port on wire = %d", got)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	fm := &FlowMod{
		Match:       ExactNWDst(net.IPv4(10, 0, 0, 9)),
		Cookie:      12345,
		Command:     FlowModify,
		IdleTimeout: 30,
		HardTimeout: 60,
		Priority:    0x8000,
		BufferID:    NoBuffer,
		OutPort:     PortNone,
		Flags:       FlagSendFlowRem,
		Actions:     []Action{ActionOutput{Port: 7, MaxLen: 128}},
	}
	fm.SetXid(99)
	back := roundTrip(t, fm).(*FlowMod)
	if !reflect.DeepEqual(fm, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", fm, back)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	req := &EchoRequest{Data: []byte("ping-1234")}
	req.SetXid(5)
	back := roundTrip(t, req).(*EchoRequest)
	if !bytes.Equal(back.Data, req.Data) || back.Xid() != 5 {
		t.Fatalf("echo round trip: %+v", back)
	}
	rep := &EchoReply{Data: nil}
	rep.SetXid(6)
	back2 := roundTrip(t, rep).(*EchoReply)
	if len(back2.Data) != 0 {
		t.Fatalf("echo reply data = %v", back2.Data)
	}
}

func TestVendorRoundTrip(t *testing.T) {
	v := &Vendor{Vendor: 0x00545355, Data: []byte("partition-bytes")}
	v.SetXid(9)
	back := roundTrip(t, v).(*Vendor)
	if back.Vendor != v.Vendor || !bytes.Equal(back.Data, v.Data) || back.Xid() != 9 {
		t.Fatalf("vendor round trip: %+v", back)
	}
	// Empty data is legal; a body shorter than the vendor id is not.
	empty := &Vendor{Vendor: 1}
	if got := roundTrip(t, empty).(*Vendor); got.Vendor != 1 || len(got.Data) != 0 {
		t.Fatalf("empty vendor round trip: %+v", got)
	}
	short := []byte{Version, byte(TypeVendor), 0, HeaderLen + 2, 0, 0, 0, 1, 0xAA, 0xBB}
	if _, err := Decode(short); err == nil {
		t.Fatal("vendor body shorter than the vendor id decoded without error")
	}
}

func TestFeaturesRoundTrip(t *testing.T) {
	fr := &FeaturesReply{
		DatapathID:   0x0000000000000003,
		NBuffers:     256,
		NTables:      1,
		Capabilities: 0xc7,
		Actions:      0xfff,
		Ports: []PhyPort{
			{PortNo: 1, HWAddr: [6]byte{0, 1, 2, 3, 4, 5}, Name: "eth1", Curr: 0x840},
			{PortNo: 2, HWAddr: [6]byte{0, 1, 2, 3, 4, 6}, Name: "eth2"},
		},
	}
	fr.SetXid(11)
	back := roundTrip(t, fr).(*FeaturesReply)
	if !reflect.DeepEqual(fr, back) {
		t.Fatalf("features round trip mismatch:\n%+v\n%+v", fr, back)
	}
	freq := &FeaturesRequest{}
	freq.SetXid(12)
	if got := roundTrip(t, freq); got.Xid() != 12 {
		t.Fatalf("features request xid = %d", got.Xid())
	}
}

func TestPhyPortNameTruncation(t *testing.T) {
	p := PhyPort{PortNo: 1, Name: "a-very-long-interface-name"}
	var b [phyPortLen]byte
	p.encode(b[:])
	var back PhyPort
	back.decode(b[:])
	if len(back.Name) > 15 {
		t.Fatalf("name %q exceeds 15 bytes", back.Name)
	}
	if back.Name != "a-very-long-int" {
		t.Fatalf("name = %q", back.Name)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := &Error{ErrType: ErrTypeFlowModFail, Code: ErrCodeAllTablesFull, Data: []byte{1, 2, 3}}
	e.SetXid(77)
	back := roundTrip(t, e).(*Error)
	if !reflect.DeepEqual(e, back) {
		t.Fatalf("error round trip mismatch: %+v vs %+v", e, back)
	}
	if back.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestPacketOutRoundTrip(t *testing.T) {
	po := &PacketOut{
		BufferID: NoBuffer,
		InPort:   PortNone,
		Actions:  []Action{ActionOutput{Port: 2}, ActionOutput{Port: PortFlood}},
		Data:     []byte{0xca, 0xfe, 0xba, 0xbe},
	}
	po.SetXid(13)
	back := roundTrip(t, po).(*PacketOut)
	if !reflect.DeepEqual(po, back) {
		t.Fatalf("packet out mismatch:\n%+v\n%+v", po, back)
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	pi := &PacketIn{BufferID: 9, TotalLen: 64, InPort: 4, Reason: PacketInReasonNoMatch, Data: []byte("payload")}
	pi.SetXid(21)
	back := roundTrip(t, pi).(*PacketIn)
	if !reflect.DeepEqual(pi, back) {
		t.Fatalf("packet in mismatch:\n%+v\n%+v", pi, back)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	req := &StatsRequest{
		Kind: StatsFlow,
		Flow: &FlowStatsRequest{Match: ExactNWDst(net.IPv4(10, 0, 0, 2)), TableID: 0xff, OutPort: PortNone},
	}
	req.SetXid(31)
	backReq := roundTrip(t, req).(*StatsRequest)
	if !reflect.DeepEqual(req, backReq) {
		t.Fatalf("stats request mismatch:\n%+v\n%+v", req, backReq)
	}

	rep := &StatsReply{
		Kind: StatsFlow,
		Flows: []FlowStats{
			{
				TableID:     0,
				Match:       ExactNWDst(net.IPv4(10, 0, 0, 2)),
				DurationSec: 12,
				Priority:    100,
				Cookie:      777,
				PacketCount: 1000,
				ByteCount:   64000,
				Actions:     []Action{ActionOutput{Port: 2}},
			},
			{
				TableID: 0,
				Match:   ExactNWDst(net.IPv4(10, 0, 0, 3)),
				Actions: []Action{ActionOutput{Port: 5, MaxLen: 64}},
			},
		},
	}
	rep.SetXid(32)
	backRep := roundTrip(t, rep).(*StatsReply)
	if !reflect.DeepEqual(rep, backRep) {
		t.Fatalf("stats reply mismatch:\n%+v\n%+v", rep, backRep)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	fm := &FlowMod{Match: ExactNWDst(net.IPv4(10, 0, 0, 1)), BufferID: NoBuffer, OutPort: PortNone}
	good, err := Encode(fm)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"short-header":     good[:4],
		"bad-version":      append([]byte{0x09}, good[1:]...),
		"length-lt-header": {0x01, 0x00, 0x00, 0x04, 0, 0, 0, 0},
		"length-mismatch":  good[:len(good)-8],
		"unknown-type":     {0x01, 0x63, 0x00, 0x08, 0, 0, 0, 0},
		"flowmod-truncated": func() []byte {
			b := make([]byte, 40)
			putHeader(b, TypeFlowMod, 40, 1)
			return b
		}(),
		"featreq-with-body": func() []byte {
			b := make([]byte, 12)
			putHeader(b, TypeFeaturesRequest, 12, 1)
			return b
		}(),
		"barrier-with-body": func() []byte {
			b := make([]byte, 10)
			putHeader(b, TypeBarrierRequest, 10, 1)
			return b
		}(),
	}
	for name, wire := range cases {
		if _, err := Decode(wire); err == nil {
			t.Fatalf("%s: malformed message accepted", name)
		}
	}
}

func TestDecodeRejectsBadActions(t *testing.T) {
	fm := &FlowMod{Match: ExactNWDst(net.IPv4(10, 0, 0, 1)), Actions: []Action{ActionOutput{Port: 1}}}
	good, err := Encode(fm)
	if err != nil {
		t.Fatal(err)
	}
	actOff := HeaderLen + flowModFixed

	badType := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(badType[actOff:actOff+2], 0x7777)
	if _, err := Decode(badType); err == nil {
		t.Fatal("unknown action type accepted")
	}

	badLen := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(badLen[actOff+2:actOff+4], 12) // not multiple of 8
	if _, err := Decode(badLen); err == nil {
		t.Fatal("bad action length accepted")
	}

	overrun := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(overrun[actOff+2:actOff+4], 64)
	if _, err := Decode(overrun); err == nil {
		t.Fatal("overrunning action accepted")
	}
}

func TestMatchCovers(t *testing.T) {
	m := ExactNWDst(net.IPv4(10, 0, 0, 2))
	dst := binary.BigEndian.Uint32(net.IPv4(10, 0, 0, 2).To4())
	other := binary.BigEndian.Uint32(net.IPv4(10, 0, 0, 3).To4())
	if !m.Covers(dst) {
		t.Fatal("exact match misses its own address")
	}
	if m.Covers(other) {
		t.Fatal("exact match covers a different address")
	}
	all := Match{Wildcards: WildcardAll}
	if !all.Covers(dst) || !all.Covers(other) {
		t.Fatal("wildcard-all match must cover everything")
	}
	if got := m.NWDstIP().String(); got != "10.0.0.2" {
		t.Fatalf("NWDstIP = %s", got)
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeFlowMod.String() != "FLOW_MOD" || TypeBarrierReply.String() != "BARRIER_REPLY" {
		t.Fatal("MsgType strings wrong")
	}
	if MsgType(99).String() != "TYPE_99" {
		t.Fatalf("unknown type string = %q", MsgType(99).String())
	}
	if FlowDeleteStrict.String() != "DELETE_STRICT" || FlowModCommand(9).String() != "COMMAND_9" {
		t.Fatal("command strings wrong")
	}
}

// TestQuickMatchRoundTrip property-tests the 40-byte match codec.
func TestQuickMatchRoundTrip(t *testing.T) {
	f := func(wc uint32, inPort uint16, src, dst [6]byte, vlan uint16, pcp uint8,
		dlType uint16, tos, proto uint8, nwSrc, nwDst uint32, tpSrc, tpDst uint16) bool {
		m := Match{
			Wildcards: wc, InPort: inPort, DLSrc: src, DLDst: dst,
			DLVLAN: vlan, DLVLANPCP: pcp, DLType: dlType, NWTOS: tos,
			NWProto: proto, NWSrc: nwSrc, NWDst: nwDst, TPSrc: tpSrc, TPDst: tpDst,
		}
		var b [MatchLen]byte
		m.encode(b[:])
		var back Match
		if err := back.decode(b[:]); err != nil {
			return false
		}
		return back == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFlowModRoundTrip property-tests the full FlowMod codec.
func TestQuickFlowModRoundTrip(t *testing.T) {
	f := func(xid uint32, cookie uint64, cmd uint8, idle, hard, prio uint16,
		buf uint32, outPort, flags uint16, nwDst uint32, ports []uint16) bool {
		fm := &FlowMod{
			Match:       Match{Wildcards: WildcardAll &^ WildcardNWDstAll, NWDst: nwDst},
			Cookie:      cookie,
			Command:     FlowModCommand(cmd % 5),
			IdleTimeout: idle,
			HardTimeout: hard,
			Priority:    prio,
			BufferID:    buf,
			OutPort:     outPort,
			Flags:       flags,
		}
		if len(ports) > 32 {
			ports = ports[:32]
		}
		for _, p := range ports {
			fm.Actions = append(fm.Actions, ActionOutput{Port: p})
		}
		fm.SetXid(xid)
		wire, err := Encode(fm)
		if err != nil {
			return false
		}
		back, err := Decode(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(fm, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeNeverPanics fuzzes the decoder with random bytes under
// a valid header envelope: errors are fine, panics are not.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(msgType uint8, xid uint32, body []byte) bool {
		if len(body) > 2048 {
			body = body[:2048]
		}
		wire := make([]byte, HeaderLen+len(body))
		putHeader(wire, MsgType(msgType%24), len(wire), xid)
		copy(wire[HeaderLen:], body)
		_, _ = Decode(wire) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestVLANActionsRoundTrip(t *testing.T) {
	fm := &FlowMod{
		Match:    ExactNWDstVLAN(net.IPv4(10, 0, 0, 2), 2016),
		Command:  FlowAdd,
		Priority: 110,
		BufferID: NoBuffer,
		OutPort:  PortNone,
		Actions: []Action{
			ActionSetVLAN{VLAN: 2016},
			ActionStripVLAN{},
			ActionOutput{Port: 4},
		},
	}
	fm.SetXid(5)
	back := roundTrip(t, fm).(*FlowMod)
	if !reflect.DeepEqual(fm, back) {
		t.Fatalf("vlan actions round trip:\n%+v\n%+v", fm, back)
	}
}

func TestVLANActionGoldenBytes(t *testing.T) {
	var b [8]byte
	ActionSetVLAN{VLAN: 0x0102}.encode(b[:])
	want := []byte{0x00, 0x01, 0x00, 0x08, 0x01, 0x02, 0x00, 0x00}
	if !bytes.Equal(b[:], want) {
		t.Fatalf("set-vlan wire = % x, want % x", b, want)
	}
	ActionStripVLAN{}.encode(b[:])
	want = []byte{0x00, 0x03, 0x00, 0x08, 0x00, 0x00, 0x00, 0x00}
	if !bytes.Equal(b[:], want) {
		t.Fatalf("strip-vlan wire = % x, want % x", b, want)
	}
}

func TestCoversKeyVLANSemantics(t *testing.T) {
	dst := binary.BigEndian.Uint32(net.IPv4(10, 0, 0, 2).To4())
	untaggedRule := ExactNWDst(net.IPv4(10, 0, 0, 2))
	taggedRule := ExactNWDstVLAN(net.IPv4(10, 0, 0, 2), 7)

	// The untagged rule wildcards dl_vlan: matches tagged and untagged.
	if !untaggedRule.CoversKey(UntaggedPacket(dst)) {
		t.Fatal("untagged rule misses untagged packet")
	}
	if !untaggedRule.CoversKey(PacketKey{NWDst: dst, VLAN: 7}) {
		t.Fatal("vlan-wildcard rule must cover tagged packets")
	}
	// The tagged rule pins dl_vlan.
	if taggedRule.CoversKey(UntaggedPacket(dst)) {
		t.Fatal("tagged rule must not cover untagged packets")
	}
	if !taggedRule.CoversKey(PacketKey{NWDst: dst, VLAN: 7}) {
		t.Fatal("tagged rule misses its own tag")
	}
	if taggedRule.CoversKey(PacketKey{NWDst: dst, VLAN: 8}) {
		t.Fatal("tagged rule covers a different tag")
	}
	// nw_dst still applies on tagged rules.
	other := binary.BigEndian.Uint32(net.IPv4(10, 0, 0, 3).To4())
	if taggedRule.CoversKey(PacketKey{NWDst: other, VLAN: 7}) {
		t.Fatal("tagged rule ignores nw_dst")
	}
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	fr := &FlowRemoved{
		Match:        ExactNWDst(net.IPv4(10, 0, 0, 2)),
		Cookie:       99,
		Priority:     100,
		Reason:       FlowRemovedHardTimeout,
		DurationSec:  3,
		DurationNsec: 500,
		IdleTimeout:  30,
		PacketCount:  1234,
		ByteCount:    99999,
	}
	fr.SetXid(44)
	back := roundTrip(t, fr).(*FlowRemoved)
	if !reflect.DeepEqual(fr, back) {
		t.Fatalf("flow removed mismatch:\n%+v\n%+v", fr, back)
	}
}

func TestPortStatusRoundTrip(t *testing.T) {
	ps := &PortStatus{
		Reason: PortModify,
		Port:   PhyPort{PortNo: 3, Name: "s1-eth3", Curr: 0x840},
	}
	ps.SetXid(45)
	back := roundTrip(t, ps).(*PortStatus)
	if !reflect.DeepEqual(ps, back) {
		t.Fatalf("port status mismatch:\n%+v\n%+v", ps, back)
	}
}

func TestFlowRemovedRejectsBadLength(t *testing.T) {
	fr := &FlowRemoved{Match: ExactNWDst(net.IPv4(10, 0, 0, 2))}
	good, err := Encode(fr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(good[:len(good)-4]); err == nil {
		t.Fatal("truncated flow removed accepted")
	}
}
