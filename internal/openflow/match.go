package openflow

import (
	"encoding/binary"
	"fmt"
	"net"
)

// MatchLen is the wire size of ofp_match in OpenFlow 1.0.
const MatchLen = 40

// Wildcard flags of ofp_match (OFPFW_*).
const (
	WildcardInPort     uint32 = 1 << 0
	WildcardDLVLAN     uint32 = 1 << 1
	WildcardDLSrc      uint32 = 1 << 2
	WildcardDLDst      uint32 = 1 << 3
	WildcardDLType     uint32 = 1 << 4
	WildcardNWProto    uint32 = 1 << 5
	WildcardTPSrc      uint32 = 1 << 6
	WildcardTPDst      uint32 = 1 << 7
	WildcardNWSrcShift        = 8
	WildcardNWDstShift        = 14
	// WildcardNWSrcMask / WildcardNWDstMask cover the entire 6-bit
	// prefix-wildcard fields; any value >= 32 in the field wildcards
	// the whole address.
	WildcardNWSrcMask uint32 = 0x3f << WildcardNWSrcShift
	WildcardNWDstMask uint32 = 0x3f << WildcardNWDstShift
	WildcardNWSrcAll  uint32 = 32 << WildcardNWSrcShift
	WildcardNWDstAll  uint32 = 32 << WildcardNWDstShift
	WildcardDLVLANPCP uint32 = 1 << 20
	WildcardNWTOS     uint32 = 1 << 21
	// WildcardAll matches every packet.
	WildcardAll uint32 = (1 << 22) - 1
)

// Match is the OpenFlow 1.0 ofp_match: the 12-tuple flows are
// classified on. The prototype identifies a policy's flow by the
// destination IPv4 address (hosts h1→h2 traffic), wildcarding the
// remaining fields.
type Match struct {
	Wildcards uint32
	InPort    uint16
	DLSrc     [6]byte
	DLDst     [6]byte
	DLVLAN    uint16
	DLVLANPCP uint8
	DLType    uint16
	NWTOS     uint8
	NWProto   uint8
	NWSrc     uint32
	NWDst     uint32
	TPSrc     uint16
	TPDst     uint16
}

// ExactNWDst returns a match on destination IPv4 address only — the
// flow key used for the demo policies (EtherType IPv4 is set so the
// match is well-formed).
func ExactNWDst(ip net.IP) Match {
	v4 := ip.To4()
	var nwDst uint32
	if v4 != nil {
		nwDst = binary.BigEndian.Uint32(v4)
	}
	return Match{
		// Everything wildcarded except dl_type and the full nw_dst
		// (prefix-wildcard field zeroed = exact 32-bit match).
		Wildcards: WildcardAll &^ WildcardNWDstMask &^ WildcardDLType,
		DLType:    0x0800,
		NWDst:     nwDst,
	}
}

// NWDstIP returns the match's destination address as a net.IP.
func (m *Match) NWDstIP() net.IP {
	ip := make(net.IP, 4)
	binary.BigEndian.PutUint32(ip, m.NWDst)
	return ip
}

// VLANNone is the dl_vlan value meaning "packet carries no VLAN tag"
// (OFP_VLAN_NONE).
const VLANNone uint16 = 0xffff

// PacketKey carries the packet fields this subset classifies on: the
// IPv4 destination and the VLAN id (VLANNone when untagged). The
// tagging-based two-phase update mechanism distinguishes policy
// versions by VLAN.
type PacketKey struct {
	NWDst uint32
	VLAN  uint16
}

// UntaggedPacket builds the key of an untagged packet to nwDst.
func UntaggedPacket(nwDst uint32) PacketKey {
	return PacketKey{NWDst: nwDst, VLAN: VLANNone}
}

// Covers reports whether the match accepts an untagged packet with the
// given destination IPv4 address.
func (m *Match) Covers(nwDst uint32) bool {
	return m.CoversKey(UntaggedPacket(nwDst))
}

// CoversKey reports whether the match accepts the packet under this
// subset's semantics: the nw_dst prefix wildcard and the dl_vlan field
// are consulted; the remaining fields are assumed wildcarded by the
// prototype's rules.
func (m *Match) CoversKey(k PacketKey) bool {
	if m.Wildcards&WildcardDLVLAN == 0 && m.DLVLAN != k.VLAN {
		return false
	}
	prefixWild := (m.Wildcards >> WildcardNWDstShift) & 0x3f
	if prefixWild >= 32 {
		return true
	}
	maskBits := 32 - prefixWild
	mask := uint32(0xffffffff) << (32 - maskBits)
	return m.NWDst&mask == k.NWDst&mask
}

// ExactNWDstVLAN returns a match on destination IPv4 address and VLAN
// id — the tagged-rule key of two-phase updates.
func ExactNWDstVLAN(ip net.IP, vlan uint16) Match {
	m := ExactNWDst(ip)
	m.Wildcards &^= WildcardDLVLAN
	m.DLVLAN = vlan
	return m
}

func (m *Match) encode(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], m.Wildcards)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	copy(b[6:12], m.DLSrc[:])
	copy(b[12:18], m.DLDst[:])
	binary.BigEndian.PutUint16(b[18:20], m.DLVLAN)
	b[20] = m.DLVLANPCP
	b[21] = 0 // pad
	binary.BigEndian.PutUint16(b[22:24], m.DLType)
	b[24] = m.NWTOS
	b[25] = m.NWProto
	b[26], b[27] = 0, 0 // pad
	binary.BigEndian.PutUint32(b[28:32], m.NWSrc)
	binary.BigEndian.PutUint32(b[32:36], m.NWDst)
	binary.BigEndian.PutUint16(b[36:38], m.TPSrc)
	binary.BigEndian.PutUint16(b[38:40], m.TPDst)
}

func (m *Match) decode(b []byte) error {
	if len(b) < MatchLen {
		return fmt.Errorf("match truncated: %d bytes", len(b))
	}
	m.Wildcards = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	copy(m.DLSrc[:], b[6:12])
	copy(m.DLDst[:], b[12:18])
	m.DLVLAN = binary.BigEndian.Uint16(b[18:20])
	m.DLVLANPCP = b[20]
	m.DLType = binary.BigEndian.Uint16(b[22:24])
	m.NWTOS = b[24]
	m.NWProto = b[25]
	m.NWSrc = binary.BigEndian.Uint32(b[28:32])
	m.NWDst = binary.BigEndian.Uint32(b[32:36])
	m.TPSrc = binary.BigEndian.Uint16(b[36:38])
	m.TPDst = binary.BigEndian.Uint16(b[38:40])
	return nil
}
