package openflow

import (
	"encoding/binary"
	"fmt"
)

// PacketIn reasons (ofp_packet_in_reason).
const (
	PacketInReasonNoMatch uint8 = 0
	PacketInReasonAction  uint8 = 1
)

// PacketIn delivers a data-plane packet to the controller (table miss
// or explicit output-to-controller action).
type PacketIn struct {
	xid
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   uint8
	Data     []byte
}

const packetInFixed = 10

// MsgType returns TypePacketIn.
func (*PacketIn) MsgType() MsgType { return TypePacketIn }
func (m *PacketIn) bodyLen() int   { return packetInFixed + len(m.Data) }
func (m *PacketIn) encodeBody(b []byte) error {
	binary.BigEndian.PutUint32(b[0:4], m.BufferID)
	binary.BigEndian.PutUint16(b[4:6], m.TotalLen)
	binary.BigEndian.PutUint16(b[6:8], m.InPort)
	b[8] = m.Reason
	b[9] = 0 // pad
	copy(b[packetInFixed:], m.Data)
	return nil
}
func (m *PacketIn) decodeBody(b []byte) error {
	if len(b) < packetInFixed {
		return fmt.Errorf("packet-in body %d bytes, want >= %d", len(b), packetInFixed)
	}
	m.BufferID = binary.BigEndian.Uint32(b[0:4])
	m.TotalLen = binary.BigEndian.Uint16(b[4:6])
	m.InPort = binary.BigEndian.Uint16(b[6:8])
	m.Reason = b[8]
	m.Data = append([]byte(nil), b[packetInFixed:]...)
	return nil
}

// PacketOut injects a data-plane packet through the switch — how the
// probe harness launches measurement traffic during updates.
type PacketOut struct {
	xid
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte
}

const packetOutFixed = 8

// MsgType returns TypePacketOut.
func (*PacketOut) MsgType() MsgType { return TypePacketOut }
func (m *PacketOut) bodyLen() int {
	return packetOutFixed + actionsWireLen(m.Actions) + len(m.Data)
}
func (m *PacketOut) encodeBody(b []byte) error {
	actLen := actionsWireLen(m.Actions)
	binary.BigEndian.PutUint32(b[0:4], m.BufferID)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	binary.BigEndian.PutUint16(b[6:8], uint16(actLen))
	encodeActions(b[packetOutFixed:packetOutFixed+actLen], m.Actions)
	copy(b[packetOutFixed+actLen:], m.Data)
	return nil
}
func (m *PacketOut) decodeBody(b []byte) error {
	if len(b) < packetOutFixed {
		return fmt.Errorf("packet-out body %d bytes, want >= %d", len(b), packetOutFixed)
	}
	m.BufferID = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	actLen := int(binary.BigEndian.Uint16(b[6:8]))
	if packetOutFixed+actLen > len(b) {
		return fmt.Errorf("packet-out actions of %d bytes overrun body of %d", actLen, len(b))
	}
	actions, err := decodeActions(b[packetOutFixed : packetOutFixed+actLen])
	if err != nil {
		return err
	}
	m.Actions = actions
	m.Data = append([]byte(nil), b[packetOutFixed+actLen:]...)
	return nil
}
