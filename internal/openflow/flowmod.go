package openflow

import (
	"encoding/binary"
	"fmt"
)

// FlowModCommand enumerates ofp_flow_mod_command.
type FlowModCommand uint16

// Flow-mod commands.
const (
	FlowAdd          FlowModCommand = 0
	FlowModify       FlowModCommand = 1
	FlowModifyStrict FlowModCommand = 2
	FlowDelete       FlowModCommand = 3
	FlowDeleteStrict FlowModCommand = 4
)

func (c FlowModCommand) String() string {
	switch c {
	case FlowAdd:
		return "ADD"
	case FlowModify:
		return "MODIFY"
	case FlowModifyStrict:
		return "MODIFY_STRICT"
	case FlowDelete:
		return "DELETE"
	case FlowDeleteStrict:
		return "DELETE_STRICT"
	}
	return fmt.Sprintf("COMMAND_%d", uint16(c))
}

// NoBuffer is the buffer_id meaning "not buffered" (OFP_NO_BUFFER).
const NoBuffer uint32 = 0xffffffff

// FlowMod flags (ofp_flow_mod_flags).
const (
	FlagSendFlowRem  uint16 = 1 << 0
	FlagCheckOverlap uint16 = 1 << 1
)

// FlowMod installs, modifies or removes a flow-table entry — the
// update command whose asynchronous delivery the whole scheduling
// machinery exists to tame.
type FlowMod struct {
	xid
	Match       Match
	Cookie      uint64
	Command     FlowModCommand
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []Action
}

const flowModFixed = MatchLen + 24

// MsgType returns TypeFlowMod.
func (*FlowMod) MsgType() MsgType { return TypeFlowMod }
func (m *FlowMod) bodyLen() int   { return flowModFixed + actionsWireLen(m.Actions) }
func (m *FlowMod) encodeBody(b []byte) error {
	m.Match.encode(b[0:MatchLen])
	off := MatchLen
	binary.BigEndian.PutUint64(b[off:off+8], m.Cookie)
	binary.BigEndian.PutUint16(b[off+8:off+10], uint16(m.Command))
	binary.BigEndian.PutUint16(b[off+10:off+12], m.IdleTimeout)
	binary.BigEndian.PutUint16(b[off+12:off+14], m.HardTimeout)
	binary.BigEndian.PutUint16(b[off+14:off+16], m.Priority)
	binary.BigEndian.PutUint32(b[off+16:off+20], m.BufferID)
	binary.BigEndian.PutUint16(b[off+20:off+22], m.OutPort)
	binary.BigEndian.PutUint16(b[off+22:off+24], m.Flags)
	encodeActions(b[flowModFixed:], m.Actions)
	return nil
}
func (m *FlowMod) decodeBody(b []byte) error {
	if len(b) < flowModFixed {
		return fmt.Errorf("flow mod body %d bytes, want >= %d", len(b), flowModFixed)
	}
	if err := m.Match.decode(b[0:MatchLen]); err != nil {
		return err
	}
	off := MatchLen
	m.Cookie = binary.BigEndian.Uint64(b[off : off+8])
	m.Command = FlowModCommand(binary.BigEndian.Uint16(b[off+8 : off+10]))
	m.IdleTimeout = binary.BigEndian.Uint16(b[off+10 : off+12])
	m.HardTimeout = binary.BigEndian.Uint16(b[off+12 : off+14])
	m.Priority = binary.BigEndian.Uint16(b[off+14 : off+16])
	m.BufferID = binary.BigEndian.Uint32(b[off+16 : off+20])
	m.OutPort = binary.BigEndian.Uint16(b[off+20 : off+22])
	m.Flags = binary.BigEndian.Uint16(b[off+22 : off+24])
	actions, err := decodeActions(b[flowModFixed:])
	if err != nil {
		return err
	}
	m.Actions = actions
	return nil
}
