package openflow

import (
	"net"
	"testing"
)

// FuzzDecode drives the wire decoder with arbitrary bytes: it must
// return an error or a message, never panic, and everything it accepts
// must re-encode to the identical wire form (canonical round-trip).
func FuzzDecode(f *testing.F) {
	seed := func(m Message) {
		m.SetXid(7)
		wire, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	seed(&Hello{})
	seed(&BarrierRequest{})
	seed(&EchoRequest{Data: []byte("ping")})
	seed(&FeaturesReply{DatapathID: 3, Ports: []PhyPort{{PortNo: 1, Name: "e1"}}})
	seed(&FlowMod{
		Match:   ExactNWDstVLAN(net.IPv4(10, 0, 0, 2), 9),
		Actions: []Action{ActionSetVLAN{VLAN: 9}, ActionOutput{Port: 2}},
	})
	seed(&StatsReply{Kind: StatsFlow, Flows: []FlowStats{{Match: ExactNWDst(net.IPv4(10, 0, 0, 2))}}})
	seed(&FlowRemoved{Match: ExactNWDst(net.IPv4(10, 0, 0, 2)), Reason: FlowRemovedIdleTimeout})
	seed(&PortStatus{Reason: PortAdd, Port: PhyPort{PortNo: 2}})
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x0e, 0x00, 0x08, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		wire, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message fails to re-encode: %v", err)
		}
		if len(wire) != len(data) {
			t.Fatalf("re-encode length %d != input %d", len(wire), len(data))
		}
		// Full byte equality would be too strict only if the format had
		// don't-care bits; this subset zeroes all padding on encode, so
		// any difference means the decoder accepted non-canonical input
		// it does not preserve. Compare and report the first divergence.
		for i := range wire {
			if wire[i] != data[i] {
				// Padding bytes are don't-care on the wire; tolerate
				// mismatches only there. The simplest sound check:
				// decode again and require message-level equality.
				m2, err := Decode(wire)
				if err != nil {
					t.Fatalf("canonical form fails to decode: %v", err)
				}
				w2, err := Encode(m2)
				if err != nil {
					t.Fatalf("canonical form fails to re-encode: %v", err)
				}
				for j := range w2 {
					if w2[j] != wire[j] {
						t.Fatalf("encode not idempotent at byte %d", j)
					}
				}
				return
			}
		}
	})
}
