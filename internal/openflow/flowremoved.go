package openflow

import (
	"encoding/binary"
	"fmt"
)

// TypeFlowRemoved and TypePortStatus are the asynchronous notification
// message types of OpenFlow 1.0 this subset supports.
const (
	TypeFlowRemoved MsgType = 11
	TypePortStatus  MsgType = 12
)

// Flow-removed reasons (ofp_flow_removed_reason).
const (
	FlowRemovedIdleTimeout uint8 = 0
	FlowRemovedHardTimeout uint8 = 1
	FlowRemovedDelete      uint8 = 2
)

// FlowRemoved notifies the controller that a flow entry expired or was
// deleted (sent when the entry carried FlagSendFlowRem).
type FlowRemoved struct {
	xid
	Match        Match
	Cookie       uint64
	Priority     uint16
	Reason       uint8
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
}

const flowRemovedFixed = MatchLen + 40

// MsgType returns TypeFlowRemoved.
func (*FlowRemoved) MsgType() MsgType { return TypeFlowRemoved }
func (m *FlowRemoved) bodyLen() int   { return flowRemovedFixed }
func (m *FlowRemoved) encodeBody(b []byte) error {
	m.Match.encode(b[0:MatchLen])
	off := MatchLen
	binary.BigEndian.PutUint64(b[off:off+8], m.Cookie)
	binary.BigEndian.PutUint16(b[off+8:off+10], m.Priority)
	b[off+10] = m.Reason
	b[off+11] = 0 // pad
	binary.BigEndian.PutUint32(b[off+12:off+16], m.DurationSec)
	binary.BigEndian.PutUint32(b[off+16:off+20], m.DurationNsec)
	binary.BigEndian.PutUint16(b[off+20:off+22], m.IdleTimeout)
	b[off+22], b[off+23] = 0, 0 // pad
	binary.BigEndian.PutUint64(b[off+24:off+32], m.PacketCount)
	binary.BigEndian.PutUint64(b[off+32:off+40], m.ByteCount)
	return nil
}
func (m *FlowRemoved) decodeBody(b []byte) error {
	if len(b) != flowRemovedFixed {
		return fmt.Errorf("flow removed body %d bytes, want %d", len(b), flowRemovedFixed)
	}
	if err := m.Match.decode(b[0:MatchLen]); err != nil {
		return err
	}
	off := MatchLen
	m.Cookie = binary.BigEndian.Uint64(b[off : off+8])
	m.Priority = binary.BigEndian.Uint16(b[off+8 : off+10])
	m.Reason = b[off+10]
	m.DurationSec = binary.BigEndian.Uint32(b[off+12 : off+16])
	m.DurationNsec = binary.BigEndian.Uint32(b[off+16 : off+20])
	m.IdleTimeout = binary.BigEndian.Uint16(b[off+20 : off+22])
	m.PacketCount = binary.BigEndian.Uint64(b[off+24 : off+32])
	m.ByteCount = binary.BigEndian.Uint64(b[off+32 : off+40])
	return nil
}

// Port-status reasons (ofp_port_reason).
const (
	PortAdd    uint8 = 0
	PortDelete uint8 = 1
	PortModify uint8 = 2
)

// PortStatus notifies the controller of a port change.
type PortStatus struct {
	xid
	Reason uint8
	Port   PhyPort
}

const portStatusFixed = 8

// MsgType returns TypePortStatus.
func (*PortStatus) MsgType() MsgType { return TypePortStatus }
func (m *PortStatus) bodyLen() int   { return portStatusFixed + phyPortLen }
func (m *PortStatus) encodeBody(b []byte) error {
	b[0] = m.Reason
	for i := 1; i < portStatusFixed; i++ {
		b[i] = 0 // pad
	}
	m.Port.encode(b[portStatusFixed:])
	return nil
}
func (m *PortStatus) decodeBody(b []byte) error {
	if len(b) != portStatusFixed+phyPortLen {
		return fmt.Errorf("port status body %d bytes, want %d", len(b), portStatusFixed+phyPortLen)
	}
	m.Reason = b[0]
	m.Port.decode(b[portStatusFixed:])
	return nil
}
