//go:build !race

package openflow

import "testing"

// TestAppendToAllocs pins the pooled encode path at zero allocations:
// AppendTo into a buffer with sufficient capacity — the steady state of
// ofconn's wire-buffer pool — must not allocate, for the flow-mod and
// barrier messages the live update path sends per switch per round.
func TestAppendToAllocs(t *testing.T) {
	fm := &FlowMod{
		Match:    ExactNWDst([]byte{10, 0, 0, 2}),
		Command:  FlowModify,
		Priority: 100,
		BufferID: NoBuffer,
		OutPort:  PortNone,
		Actions:  []Action{ActionOutput{Port: 3}},
	}
	fm.SetXid(1)
	br := &BarrierRequest{}
	br.SetXid(2)

	buf := make([]byte, 0, 256)
	for _, tc := range []struct {
		name string
		msg  Message
	}{
		{"flowmod", fm},
		{"barrier", br},
	} {
		if got := testing.AllocsPerRun(200, func() {
			var err error
			buf, err = AppendTo(buf[:0], tc.msg)
			if err != nil {
				t.Fatal(err)
			}
		}); got != 0 {
			t.Fatalf("AppendTo(%s) = %.1f allocs/op, want 0 in steady state", tc.name, got)
		}
	}

	// The reusable path must produce bytes identical to the
	// allocate-per-call Encode.
	want, err := Encode(fm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AppendTo(buf[:0], fm)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("AppendTo wire bytes differ from Encode:\n%x\nvs\n%x", got, want)
	}
}
