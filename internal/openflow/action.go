package openflow

import (
	"encoding/binary"
	"fmt"
)

// ActionType enumerates ofp_action_type values of the supported subset.
type ActionType uint16

// Supported action types.
const (
	ActionTypeOutput    ActionType = 0
	ActionTypeSetVLAN   ActionType = 1 // OFPAT_SET_VLAN_VID
	ActionTypeStripVLAN ActionType = 3 // OFPAT_STRIP_VLAN
)

// Port numbers with reserved meaning (ofp_port).
const (
	PortMax        uint16 = 0xff00
	PortInPort     uint16 = 0xfff8
	PortTable      uint16 = 0xfff9
	PortNormal     uint16 = 0xfffa
	PortFlood      uint16 = 0xfffb
	PortAll        uint16 = 0xfffc
	PortController uint16 = 0xfffd
	PortLocal      uint16 = 0xfffe
	PortNone       uint16 = 0xffff
)

// Action is a flow-entry action of the supported subset.
type Action interface {
	ActionType() ActionType
	// wireLen is the encoded action length (a multiple of 8).
	wireLen() int
	encode(b []byte)
}

// ActionOutput forwards matching packets to a port
// (ofp_action_output).
type ActionOutput struct {
	Port   uint16
	MaxLen uint16 // bytes to send to the controller when Port is PortController
}

const actionOutputLen = 8

// ActionType returns ActionTypeOutput.
func (a ActionOutput) ActionType() ActionType { return ActionTypeOutput }

func (a ActionOutput) wireLen() int { return actionOutputLen }

func (a ActionOutput) encode(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(ActionTypeOutput))
	binary.BigEndian.PutUint16(b[2:4], actionOutputLen)
	binary.BigEndian.PutUint16(b[4:6], a.Port)
	binary.BigEndian.PutUint16(b[6:8], a.MaxLen)
}

// ActionSetVLAN rewrites the packet's VLAN id
// (ofp_action_vlan_vid) — the tagging primitive of two-phase-commit
// updates.
type ActionSetVLAN struct {
	VLAN uint16
}

const actionSetVLANLen = 8

// ActionType returns ActionTypeSetVLAN.
func (a ActionSetVLAN) ActionType() ActionType { return ActionTypeSetVLAN }

func (a ActionSetVLAN) wireLen() int { return actionSetVLANLen }

func (a ActionSetVLAN) encode(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(ActionTypeSetVLAN))
	binary.BigEndian.PutUint16(b[2:4], actionSetVLANLen)
	binary.BigEndian.PutUint16(b[4:6], a.VLAN)
	b[6], b[7] = 0, 0 // pad
}

// ActionStripVLAN removes the packet's VLAN tag (ofp_action_header
// with no body).
type ActionStripVLAN struct{}

const actionStripVLANLen = 8

// ActionType returns ActionTypeStripVLAN.
func (ActionStripVLAN) ActionType() ActionType { return ActionTypeStripVLAN }

func (ActionStripVLAN) wireLen() int { return actionStripVLANLen }

func (ActionStripVLAN) encode(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(ActionTypeStripVLAN))
	binary.BigEndian.PutUint16(b[2:4], actionStripVLANLen)
	b[4], b[5], b[6], b[7] = 0, 0, 0, 0 // pad
}

func actionsWireLen(actions []Action) int {
	total := 0
	for _, a := range actions {
		total += a.wireLen()
	}
	return total
}

func encodeActions(b []byte, actions []Action) {
	off := 0
	for _, a := range actions {
		a.encode(b[off:])
		off += a.wireLen()
	}
}

// decodeActions parses a packed action list occupying exactly b.
func decodeActions(b []byte) ([]Action, error) {
	var out []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("action header truncated: %d bytes", len(b))
		}
		t := ActionType(binary.BigEndian.Uint16(b[0:2]))
		l := int(binary.BigEndian.Uint16(b[2:4]))
		if l < 8 || l%8 != 0 {
			return nil, fmt.Errorf("action length %d invalid (must be a positive multiple of 8)", l)
		}
		if l > len(b) {
			return nil, fmt.Errorf("action of %d bytes overruns %d remaining", l, len(b))
		}
		switch t {
		case ActionTypeOutput:
			if l != actionOutputLen {
				return nil, fmt.Errorf("output action length %d, want %d", l, actionOutputLen)
			}
			out = append(out, ActionOutput{
				Port:   binary.BigEndian.Uint16(b[4:6]),
				MaxLen: binary.BigEndian.Uint16(b[6:8]),
			})
		case ActionTypeSetVLAN:
			if l != actionSetVLANLen {
				return nil, fmt.Errorf("set-vlan action length %d, want %d", l, actionSetVLANLen)
			}
			out = append(out, ActionSetVLAN{VLAN: binary.BigEndian.Uint16(b[4:6])})
		case ActionTypeStripVLAN:
			if l != actionStripVLANLen {
				return nil, fmt.Errorf("strip-vlan action length %d, want %d", l, actionStripVLANLen)
			}
			out = append(out, ActionStripVLAN{})
		default:
			return nil, fmt.Errorf("unsupported action type %d", t)
		}
		b = b[l:]
	}
	return out, nil
}
