package explore

import (
	"math/rand"
	"sort"
	"testing"

	"tsu/internal/core"
	"tsu/internal/topo"
)

// FuzzExploreTrace fuzzes event-order permutations of random update
// instances and asserts the explorer's two safety contracts:
//
//  1. the per-event fabric walk never panics, for any delivery order
//     and any checked property set;
//  2. counterexample minimization is sound — replaying the minimized
//     trace still violates, the minimized trace is never longer than
//     the original, and it is 1-minimal (dropping any single event
//     makes the replay pass).
func FuzzExploreTrace(f *testing.F) {
	f.Add(int64(1), uint8(6), []byte{3, 1, 2}, uint8(0))
	f.Add(int64(7), uint8(12), []byte{0, 0, 0, 0}, uint8(3))
	f.Add(int64(42), uint8(9), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1}, uint8(15))
	f.Add(int64(-5), uint8(200), []byte{}, uint8(7))

	const allProps = core.NoBlackhole | core.WaypointEnforcement |
		core.RelaxedLoopFreedom | core.StrongLoopFreedom

	f.Fuzz(func(t *testing.T, seed int64, rawN uint8, orderKeys []byte, rawProps uint8) {
		n := 4 + int(rawN%12)
		rng := rand.New(rand.NewSource(seed))
		ti := topo.RandomTwoPath(rng, n, true)
		in, err := core.NewInstance(ti.Old, ti.New, ti.Waypoint)
		if err != nil {
			t.Fatalf("generator produced an invalid instance: %v", err)
		}
		pending := in.Pending()
		if len(pending) == 0 {
			return
		}
		props := core.Property(rawProps) & allProps
		if props == 0 {
			props = core.NoBlackhole | core.RelaxedLoopFreedom
		}

		// Derive a delivery order from the fuzzed key bytes (stable
		// sort keeps it a permutation whatever the bytes are).
		order := append([]topo.NodeID(nil), pending...)
		key := func(i int) byte {
			if len(orderKeys) == 0 {
				return 0
			}
			return orderKeys[i%len(orderKeys)]
		}
		sort.SliceStable(order, func(a, b int) bool { return key(a) < key(b) })

		// Replay event by event: the walk/check must never panic, on
		// this or any prefix state.
		st := in.NewState()
		var trace Trace
		for _, v := range order {
			in.Mark(st, v)
			trace = append(trace, Event{Round: 0, Switch: v})
			violated := in.CheckState(st, props)
			if walk, _ := in.Walk(st); len(walk) > in.NumNodes()+1 {
				t.Fatalf("walk longer than node count + 1: %v", walk)
			}
			if violated == 0 {
				continue
			}
			// A violating prefix: minimization must be sound.
			min, minViolated := Minimize(in, in.NewState(), trace, props)
			if minViolated == 0 {
				t.Fatalf("minimized trace of %s reports no violation", trace)
			}
			if len(min) > len(trace) {
				t.Fatalf("minimization grew the trace: %d -> %d events", len(trace), len(min))
			}
			replay := in.NewState()
			for _, e := range min {
				in.Mark(replay, e.Switch)
			}
			got := in.CheckState(replay, props)
			if got == 0 {
				t.Fatalf("replaying minimized trace %s is clean (original %s violated %s)", min, trace, violated)
			}
			if got != minViolated {
				t.Fatalf("minimize reported %s but replay violates %s", minViolated, got)
			}
			for i := range min {
				reduced := in.NewState()
				for j, e := range min {
					if j != i {
						in.Mark(reduced, e.Switch)
					}
				}
				if in.CheckState(reduced, props) != 0 {
					t.Fatalf("minimized trace %s is not 1-minimal at event %d", min, i)
				}
			}
			return
		}
	})
}
