package explore

import (
	"math/rand"
	"testing"

	"tsu/internal/core"
	"tsu/internal/topo"
)

// TestGrayVisitEnumeratesAllSubsets is the enumeration property behind
// the Gray-code rewrite: for every n ≤ 12, grayVisit must (a) visit
// exactly the 2^n distinct masks — the same state set the old
// ascending-size enumerator covered — and (b) change exactly the
// single reported bit between consecutive masks, the invariant the
// incremental walker relies on.
func TestGrayVisitEnumeratesAllSubsets(t *testing.T) {
	for n := 0; n <= 12; n++ {
		seen := make(map[uint32]bool)
		prev := uint32(0)
		first := true
		grayVisit(n, func(mask uint32, flipped int) {
			if first {
				if mask != 0 || flipped != -1 {
					t.Fatalf("n=%d: first visit = (%b, %d), want (0, -1)", n, mask, flipped)
				}
				first = false
			} else {
				diff := prev ^ mask
				if diff != 1<<uint(flipped) {
					t.Fatalf("n=%d: consecutive masks %b -> %b differ in %b, reported flip bit %d", n, prev, mask, diff, flipped)
				}
			}
			if seen[mask] {
				t.Fatalf("n=%d: mask %b visited twice", n, mask)
			}
			seen[mask] = true
			prev = mask
		})
		if len(seen) != 1<<uint(n) {
			t.Fatalf("n=%d: visited %d masks, want %d", n, len(seen), 1<<uint(n))
		}
	}
}

// ascendingExhaustive is the pre-Gray-code reference enumerator: every
// subset in ascending-size (then ascending-mask) order via Gosper's
// hack, a fresh CloneState and full walk per subset, first hit wins.
// Kept verbatim so the equivalence test (and the benchmark in
// bench_test.go) compare against the real predecessor.
func ascendingExhaustive(in *core.Instance, done core.State, roundIdx int, round []topo.NodeID, props core.Property) (states int, violation *Violation) {
	n := len(round)
	check := func(m uint32) bool {
		st := in.CloneState(done)
		var trace Trace
		for i, v := range round {
			if m&(1<<uint(i)) != 0 {
				in.Mark(st, v)
				trace = append(trace, Event{Round: roundIdx, Switch: v})
			}
		}
		states++
		if violated := in.CheckState(st, props); violated != 0 {
			walk, _ := in.Walk(st)
			violation = &Violation{
				Round:    roundIdx,
				Violated: violated,
				Trace:    trace,
				Walk:     walk,
				Updated:  in.StateNodes(in.StateOf(trace.Switches()...)),
			}
			return true
		}
		return false
	}
	for k := 0; k <= n; k++ {
		if k == 0 {
			if check(0) {
				return states, violation
			}
			continue
		}
		last := uint32(1<<uint(n)) - uint32(1<<uint(n-k))
		for m := uint32(1<<uint(k)) - 1; ; {
			if check(m) {
				return states, violation
			}
			if m == last {
				break
			}
			c := m & -m
			r := m + c
			m = (((r ^ m) >> 2) / c) | r
		}
	}
	return states, violation
}

// TestGrayExhaustiveMatchesAscending compares the Gray-code explorer
// against the ascending-size reference on random one-round instances
// (n ≤ 12): identical verdicts, and when a violation exists, the
// identical minimum counterexample — same trace, same size, same walk
// — because the Gray scan's (size, mask)-minimal post-pass selects
// exactly the reference's first hit.
func TestGrayExhaustiveMatchesAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	props := core.NoBlackhole | core.RelaxedLoopFreedom | core.WaypointEnforcement
	checked, violating := 0, 0
	for trial := 0; checked < 60; trial++ {
		var in *core.Instance
		if trial%4 == 0 {
			ti := topo.Reversal(4 + rng.Intn(8))
			in = core.MustInstance(ti.Old, ti.New, 0)
		} else {
			ti := topo.RandomTwoPath(rng, 4+rng.Intn(10), trial%2 == 0)
			in = core.MustInstance(ti.Old, ti.New, ti.Waypoint)
		}
		if in.NumPending() == 0 || in.NumPending() > 12 {
			continue
		}
		checked++
		sched := core.OneShot(in)
		round := sched.Rounds[0]

		_, want := ascendingExhaustive(in, in.NewState(), 0, round, props)
		rep, err := Schedule(in, sched, Options{Props: props, MaxExhaustive: 12})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Exhaustive() {
			t.Fatalf("%v: round of %d not explored exhaustively", in, len(round))
		}
		if rep.Rounds[0].States != 1<<uint(len(round)) {
			t.Fatalf("%v: Gray scan checked %d states, want full 2^%d", in, rep.Rounds[0].States, len(round))
		}
		got := rep.FirstViolation()
		if (got == nil) != (want == nil) {
			t.Fatalf("%v: gray violation = %v, ascending reference = %v", in, got, want)
		}
		if got == nil {
			continue
		}
		violating++
		if got.Violated != want.Violated {
			t.Fatalf("%v: violated %s, reference %s", in, got.Violated, want.Violated)
		}
		if len(got.Trace) != len(want.Trace) {
			t.Fatalf("%v: counterexample size %d, reference minimum %d", in, len(got.Trace), len(want.Trace))
		}
		for i := range got.Trace {
			if got.Trace[i] != want.Trace[i] {
				t.Fatalf("%v: trace %s, reference %s", in, got.Trace, want.Trace)
			}
		}
		if !got.Walk.Equal(want.Walk) {
			t.Fatalf("%v: walk %v, reference %v", in, got.Walk, want.Walk)
		}
		// Minimum-size ⇒ 1-minimal: every strictly smaller subset was
		// checked clean by both enumerators.
		assertOneMinimal(t, in, in.NewState(), got.Trace, props)
	}
	if violating == 0 {
		t.Fatal("test never exercised a violating instance")
	}
}

// exploreBenchInstance builds the BenchmarkExploreExhaustive workload:
// a single-policy update whose one-shot schedule is one round of
// exactly 16 pending switches (the old path's ingress plus 15 fresh
// new-path switches), on which relaxed loop freedom can never be
// violated — so both enumerators must cover the full 2^16 state
// lattice, making the comparison work-equivalent.
func exploreBenchInstance(b *testing.B) (*core.Instance, *core.Schedule) {
	b.Helper()
	old := topo.Path{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	newPath := topo.Path{1}
	for i := 0; i < 15; i++ {
		newPath = append(newPath, topo.NodeID(101+i))
	}
	newPath = append(newPath, 10)
	in := core.MustInstance(old, newPath, 0)
	sched := core.OneShot(in)
	if sched.NumRounds() != 1 || len(sched.Rounds[0]) != 16 {
		b.Fatalf("unexpected one-shot shape: %s", sched)
	}
	return in, sched
}

// BenchmarkExploreExhaustive is this PR's acceptance benchmark: the
// Gray-code + incremental-walker exhaustive enumerator against the
// pre-PR reference (ascendingExhaustive above — ascending-size Gosper
// masks, a state clone and a full walk from the source per subset) on
// an n=16 round, 65536 states either way. The acceptance bar is ≥5x
// for graycode-incremental over ascending-clone-reference.
func BenchmarkExploreExhaustive(b *testing.B) {
	in, sched := exploreBenchInstance(b)
	props := core.RelaxedLoopFreedom
	states := 1 << 16
	b.Run("graycode-incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := Schedule(in, sched, Options{Props: props, MaxExhaustive: 16, Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			if !rep.OK() || !rep.Exhaustive() || rep.Rounds[0].States != states {
				b.Fatalf("unexpected verdict: %s", rep)
			}
		}
		b.ReportMetric(float64(states), "states")
	})
	b.Run("ascending-clone-reference", func(b *testing.B) {
		b.ReportAllocs()
		done := in.NewState()
		for i := 0; i < b.N; i++ {
			n, violation := ascendingExhaustive(in, done, 0, sched.Rounds[0], props)
			if violation != nil || n != states {
				b.Fatalf("reference enumerator: %d states, violation %v", n, violation)
			}
		}
		b.ReportMetric(float64(states), "states")
	})
}
