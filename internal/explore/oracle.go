package explore

import (
	"fmt"
	"sort"

	"tsu/internal/core"
	"tsu/internal/topo"
)

// IdealCounterexample is a violating transient state of a plan,
// reported as the order ideal that reaches it — the currency of the
// CEGIS loop in internal/synth, which needs the violating node set
// (to map it back to a blocking happens-before edge), not just a
// verdict or a delivery trace.
type IdealCounterexample struct {
	// Nodes holds the violating ideal as plan-node indices, ascending.
	Nodes []int

	// Switches is the same set as switch IDs, aligned with Nodes.
	Switches []topo.NodeID

	// Violated is the property subset broken in the ideal's state.
	Violated core.Property

	// Checked counts per-state property checks spent reaching the
	// verdict.
	Checked int

	// Exact marks counterexamples from exhaustive enumeration: the
	// ideal is the minimum violating one by (size, node mask).
	// Sampled counterexamples are 1-minimal (MinimizePlan) but not
	// necessarily minimum.
	Exact bool
}

func (c *IdealCounterexample) String() string {
	return fmt.Sprintf("ideal{%v %s exact=%t}", c.Switches, c.Violated, c.Exact)
}

// PlanCounterexample is the synthesizer's oracle entry point: it
// attacks the plan's DAG directly — never delegating layered plans to
// the round machinery, so the violating state always comes back as an
// ideal over plan-node indices — and returns the first violating
// ideal found, or (nil, exhaustive) when the adversary found nothing.
// exhaustive true means every reachable ideal was enumerated clean (a
// proof); false means only sampled linear extensions were clean.
// Deterministic in (plan, Options); Workers is ignored (the DAG path
// is serial).
func PlanCounterexample(in *core.Instance, p *core.Plan, opts Options) (cex *IdealCounterexample, exhaustive bool, err error) {
	if err := p.Validate(in); err != nil {
		return nil, false, fmt.Errorf("explore: %w", err)
	}
	opts = opts.withDefaults()
	props := defaultPropsFor(in, p.Guarantees, opts.Props)
	sc := newScratch(in)
	rr := sc.explorePlan(p, props, opts)
	if rr.Violation == nil {
		return nil, rr.Exhaustive, nil
	}
	nodeIdx := make(map[topo.NodeID]int, len(p.Nodes))
	for i, nd := range p.Nodes {
		nodeIdx[nd.Switch] = i
	}
	c := &IdealCounterexample{
		Violated: rr.Violation.Violated,
		Checked:  rr.Events,
		Exact:    rr.Exhaustive,
	}
	for _, e := range rr.Violation.Trace {
		c.Nodes = append(c.Nodes, nodeIdx[e.Switch])
	}
	sort.Ints(c.Nodes)
	for _, i := range c.Nodes {
		c.Switches = append(c.Switches, p.Nodes[i].Switch)
	}
	return c, rr.Exhaustive, nil
}
