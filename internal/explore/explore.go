// Package explore is the adversarial interleaving explorer: for a
// schedule and instance it plays the paper's adversary — the
// asynchronous control channel that delivers a round's FlowMods in any
// order — and checks transient security (loop freedom, waypoint
// enforcement, blackhole freedom) after every single delivery event,
// reporting minimized counterexample event traces.
//
// # Order/state duality
//
// Within one round, barriers constrain nothing: the adversary picks an
// arbitrary delivery order, and a property is violated iff some
// *prefix* of some order produces a violating rule state. The rule
// state after a prefix is exactly the set of switches delivered so
// far, so the states reachable by all orders of a round R on top of
// the completed set D are exactly {D ∪ S : S ⊆ R}. Exhaustively
// checking every subset therefore covers every delivery order of the
// round — n! orders collapse to 2^n states. The explorer enumerates
// those subsets in ascending size for small rounds (the first hit is a
// minimum-size counterexample) and falls back to sampling delivery
// orders for large ones: seeded uniform permutations plus
// heavy-tail-biased orders, where per-switch delivery times are drawn
// from a bounded Pareto distribution (the PAM'15 rule-install stall
// model) and the order is their sort — the adversary the paper's
// measurements say hardware actually implements.
//
// explore complements internal/verify: verify answers "is this
// schedule safe?" as fast as possible (branching walk search, subset
// sampling); explore answers "show me the event trace that breaks it"
// — it produces ordered, minimized delivery traces suitable for
// replay, plus per-event coverage counters, and its timed mode replays
// a schedule on a simclock.Sim under sampled latency distributions so
// a 10k-switch scenario runs in virtual time with a reproducible event
// count.
package explore

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"tsu/internal/core"
	"tsu/internal/netem"
	"tsu/internal/topo"
)

// Options configures an exploration.
type Options struct {
	// Props is the property set checked after every event. Zero
	// selects the schedule's own guarantees; for schedules that
	// guarantee nothing (one-shot) it selects blackhole + relaxed loop
	// freedom, plus waypoint enforcement when the instance has a
	// waypoint — the explorer's purpose being to show what the
	// baseline breaks.
	Props core.Property

	// MaxExhaustive bounds the round size explored exhaustively (all
	// 2^n reachable states, ascending by size). Larger rounds are
	// sampled. Default 12; capped at 20.
	MaxExhaustive int

	// Samples is the number of delivery orders drawn per sampled
	// round. Default 256.
	Samples int

	// HeavyTailBias is the fraction of sampled orders whose delivery
	// times are drawn from the heavy-tailed install-latency model
	// (sorted by time) rather than uniform permutations. Default 0.5.
	HeavyTailBias float64

	// Seed pins the sampling RNG; exploration is deterministic in
	// (Seed, Options).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxExhaustive <= 0 {
		o.MaxExhaustive = 12
	}
	if o.MaxExhaustive > 20 {
		o.MaxExhaustive = 20
	}
	if o.Samples <= 0 {
		o.Samples = 256
	}
	if o.HeavyTailBias <= 0 {
		o.HeavyTailBias = 0.5
	}
	if o.HeavyTailBias > 1 {
		o.HeavyTailBias = 1
	}
	return o
}

// defaultProps resolves the checked property set (see Options.Props).
func defaultProps(in *core.Instance, s *core.Schedule, props core.Property) core.Property {
	if props != 0 {
		return props
	}
	if s.Guarantees != 0 {
		return s.Guarantees
	}
	p := core.NoBlackhole | core.RelaxedLoopFreedom
	if in.Waypoint != 0 {
		p |= core.WaypointEnforcement
	}
	return p
}

// Event is one FlowMod taking effect: switch Switch's rule flips from
// old to new during round Round.
type Event struct {
	Round  int
	Switch topo.NodeID
}

// Trace is an ordered sequence of delivery events.
type Trace []Event

// Switches lists the trace's switches in delivery order.
func (t Trace) Switches() []topo.NodeID {
	out := make([]topo.NodeID, len(t))
	for i, e := range t {
		out[i] = e.Switch
	}
	return out
}

func (t Trace) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range t {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "r%d:%d", e.Round, e.Switch)
	}
	b.WriteByte(']')
	return b.String()
}

// Violation is a found counterexample: a minimized delivery trace
// whose replay (on top of the completed earlier rounds) produces a
// rule state violating Violated.
type Violation struct {
	// Round is the in-flight round the adversary attacked.
	Round int
	// Violated is the property set broken by the minimized trace's
	// final state.
	Violated core.Property
	// Trace is the minimized delivery sequence: replaying exactly
	// these events after rounds < Round still violates, and dropping
	// any single event does not (1-minimality).
	Trace Trace
	// Walk is the offending forwarding walk in the violating state.
	Walk topo.Path
	// Updated lists the violating state's in-flight switches
	// (ascending) — the set view of Trace.
	Updated []topo.NodeID
}

func (v *Violation) String() string {
	return fmt.Sprintf("violation{round %d, %s, trace %s, walk %v}", v.Round, v.Violated, v.Trace, v.Walk)
}

// RoundReport is the exploration verdict for one round.
type RoundReport struct {
	Round int
	Size  int
	// Exhaustive: every reachable intra-round state was checked (the
	// verdict is a proof); otherwise Orders sampled orders were
	// replayed event by event.
	Exhaustive bool
	// States counts distinct rule states checked (exhaustive mode).
	States int
	// Orders counts delivery orders replayed (sampled mode).
	Orders int
	// Events counts per-event property checks performed in this round.
	Events int
	// Violation is the minimized counterexample, nil when none found.
	Violation *Violation
}

// Report is the outcome of exploring a schedule.
type Report struct {
	Algorithm  string
	Properties core.Property
	Rounds     []RoundReport
}

// OK reports whether no interleaving violated the checked properties.
func (r *Report) OK() bool {
	for _, rr := range r.Rounds {
		if rr.Violation != nil {
			return false
		}
	}
	return true
}

// Exhaustive reports whether every round was explored exhaustively.
func (r *Report) Exhaustive() bool {
	for _, rr := range r.Rounds {
		if !rr.Exhaustive {
			return false
		}
	}
	return true
}

// Events returns the total number of per-event property checks.
func (r *Report) Events() int {
	n := 0
	for _, rr := range r.Rounds {
		n += rr.Events
	}
	return n
}

// FirstViolation returns the earliest round's counterexample, or nil.
func (r *Report) FirstViolation() *Violation {
	for _, rr := range r.Rounds {
		if rr.Violation != nil {
			return rr.Violation
		}
	}
	return nil
}

// Fingerprint renders the full verdict — per-round mode, coverage
// counters and minimized traces — as one canonical string. Two
// explorations with equal fingerprints made identical decisions; the
// determinism tests compare these across runs.
func (r *Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s props=%s\n", r.Algorithm, r.Properties)
	for _, rr := range r.Rounds {
		fmt.Fprintf(&b, "round=%d size=%d exhaustive=%t states=%d orders=%d events=%d",
			rr.Round, rr.Size, rr.Exhaustive, rr.States, rr.Orders, rr.Events)
		if v := rr.Violation; v != nil {
			fmt.Fprintf(&b, " violation=%s trace=%s walk=%v", v.Violated, v.Trace, v.Walk)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *Report) String() string {
	if r.OK() {
		mode := "sampled"
		if r.Exhaustive() {
			mode = "exhaustive"
		}
		return fmt.Sprintf("explore %s %s: ok (%s, %d rounds, %d events)",
			r.Algorithm, r.Properties, mode, len(r.Rounds), r.Events())
	}
	return fmt.Sprintf("explore %s %s: FAIL (%v)", r.Algorithm, r.Properties, r.FirstViolation())
}

// Schedule explores every round of s against the adversary and
// returns the per-round verdicts. The schedule must fit the instance.
func Schedule(in *core.Instance, s *core.Schedule, opts Options) (*Report, error) {
	if err := s.Validate(in); err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	opts = opts.withDefaults()
	props := defaultProps(in, s, opts.Props)
	rep := &Report{Algorithm: s.Algorithm, Properties: props, Rounds: make([]RoundReport, 0, len(s.Rounds))}
	done := in.NewState()
	for i, round := range s.Rounds {
		rr := exploreRound(in, done, i, round, props, opts)
		rep.Rounds = append(rep.Rounds, rr)
		in.Mark(done, round...)
	}
	return rep, nil
}

// exploreRound attacks one round: exhaustive subset enumeration when
// it fits the budget, sampled delivery orders otherwise.
func exploreRound(in *core.Instance, done core.State, roundIdx int, round []topo.NodeID, props core.Property, opts Options) RoundReport {
	rr := RoundReport{Round: roundIdx, Size: len(round)}
	if len(round) <= opts.MaxExhaustive {
		rr.Exhaustive = true
		exploreExhaustive(in, done, roundIdx, round, props, &rr)
		return rr
	}
	exploreSampled(in, done, roundIdx, round, props, opts, &rr)
	return rr
}

// exploreExhaustive checks every subset of round in ascending size
// (then ascending bitmask) order, so the first violating subset found
// has minimum size — a minimized counterexample by construction. The
// reported trace delivers that subset in round order.
func exploreExhaustive(in *core.Instance, done core.State, roundIdx int, round []topo.NodeID, props core.Property, rr *RoundReport) {
	n := len(round)
	check := func(m uint32) bool {
		st := in.CloneState(done)
		var trace Trace
		for i, v := range round {
			if m&(1<<i) != 0 {
				in.Mark(st, v)
				trace = append(trace, Event{Round: roundIdx, Switch: v})
			}
		}
		rr.States++
		rr.Events++
		if violated := in.CheckState(st, props); violated != 0 {
			walk, _ := in.Walk(st)
			rr.Violation = &Violation{
				Round:    roundIdx,
				Violated: violated,
				Trace:    trace,
				Walk:     walk,
				Updated:  in.StateNodes(in.StateOf(trace.Switches()...)),
			}
			return true
		}
		return false
	}
	// Per subset size, walk the k-subsets in ascending mask order via
	// Gosper's hack — the same (size, mask) order a sort would give,
	// with no materialized mask slice.
	for k := 0; k <= n; k++ {
		if k == 0 {
			if check(0) {
				return
			}
			continue
		}
		last := uint32(1<<n) - uint32(1<<(n-k)) // highest k-bit mask below 2^n
		for m := uint32(1<<k) - 1; ; {
			if check(m) {
				return
			}
			if m == last {
				break
			}
			c := m & -m
			r := m + c
			m = (((r ^ m) >> 2) / c) | r
		}
	}
}

// exploreSampled replays sampled delivery orders of round event by
// event. The first opts.Samples×HeavyTailBias orders are
// heavy-tail-biased (delivery time per switch from a bounded Pareto,
// order = time sort), the rest uniform permutations; all orders derive
// from opts.Seed and the round index alone. The first violating prefix
// is minimized before reporting.
func exploreSampled(in *core.Instance, done core.State, roundIdx int, round []topo.NodeID, props core.Property, opts Options, rr *RoundReport) {
	rng := rand.New(rand.NewSource(opts.Seed ^ (int64(roundIdx)+1)*0x5851F42D4C957F2D))
	heavy := int(float64(opts.Samples) * opts.HeavyTailBias)
	tail := netem.Pareto{Scale: time.Millisecond, Alpha: 1.1, Cap: 500 * time.Millisecond}
	order := make([]topo.NodeID, len(round))
	// The empty prefix (no event delivered yet) is common to every
	// order; check it once.
	rr.Events++
	if violated := in.CheckState(done, props); violated != 0 {
		walk, _ := in.Walk(done)
		rr.Violation = &Violation{Round: roundIdx, Violated: violated, Trace: Trace{}, Walk: walk}
		return
	}
	for s := 0; s < opts.Samples; s++ {
		copy(order, round)
		if s < heavy {
			// Heavy-tail adversary: one stalled switch delivers long
			// after the rest — the orders real switches produce.
			type delivery struct {
				node topo.NodeID
				at   time.Duration
			}
			ds := make([]delivery, len(order))
			for i, v := range order {
				ds[i] = delivery{node: v, at: tail.Sample(rng)}
			}
			sort.SliceStable(ds, func(a, b int) bool { return ds[a].at < ds[b].at })
			for i, d := range ds {
				order[i] = d.node
			}
		} else {
			rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		}
		rr.Orders++
		st := in.CloneState(done)
		trace := make(Trace, 0, len(order))
		for _, v := range order {
			in.Mark(st, v)
			trace = append(trace, Event{Round: roundIdx, Switch: v})
			rr.Events++
			if violated := in.CheckState(st, props); violated != 0 {
				min, minViolated := Minimize(in, done, trace, props)
				walk := violatingWalk(in, done, min)
				rr.Violation = &Violation{
					Round:    roundIdx,
					Violated: minViolated,
					Trace:    min,
					Walk:     walk,
					Updated:  in.StateNodes(in.StateOf(min.Switches()...)),
				}
				return
			}
		}
	}
}

// violatingWalk returns the forwarding walk in the state reached by
// replaying trace on top of done.
func violatingWalk(in *core.Instance, done core.State, trace Trace) topo.Path {
	st := in.CloneState(done)
	for _, e := range trace {
		in.Mark(st, e.Switch)
	}
	walk, _ := in.Walk(st)
	return walk
}

// Minimize shrinks a violating trace to a 1-minimal one: replaying the
// result on top of done still violates props, and removing any single
// event makes it pass. It returns the minimized trace and the property
// set its replay violates (which may differ from the original trace's
// — shrinking a loop can surface a blackhole first). The input trace
// must violate; Minimize returns it unchanged (with its violation set)
// when it somehow does not.
func Minimize(in *core.Instance, done core.State, trace Trace, props core.Property) (Trace, core.Property) {
	replay := func(tr Trace) core.Property {
		st := in.CloneState(done)
		for _, e := range tr {
			in.Mark(st, e.Switch)
		}
		return in.CheckState(st, props)
	}
	cur := append(Trace(nil), trace...)
	violated := replay(cur)
	if violated == 0 {
		return cur, 0
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := make(Trace, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if v := replay(cand); v != 0 {
				cur, violated, changed = cand, v, true
				break
			}
		}
	}
	return cur, violated
}
